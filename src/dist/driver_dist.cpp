// dist/driver_dist.cpp — multi-domain leapfrog with halo exchange.

#include "dist/driver_dist.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "amt/metrics.hpp"
#include "core/graph_waves.hpp"
#include "core/stage.hpp"

namespace lulesh::dist {

namespace {
namespace k = kernels;

std::string describe_failure(const char* what, int cycle, real_t dt) {
    std::ostringstream os;
    os << what << " (cycle " << cycle << ", dt " << dt << ")";
    return os.str();
}

/// Progress deadline used when the retry layer is on but no explicit
/// halo_timeout was given: exhausted resends must escalate, never hang.
constexpr std::chrono::milliseconds default_retry_deadline{2000};

/// Flips one mantissa bit of the first payload value — *after* the CRC was
/// computed — modeling in-transit corruption for the halo_corrupt site.
void flip_payload_bit(plane_buffer& buf) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, buf.data(), sizeof(bits));
    bits ^= 1ULL;
    std::memcpy(buf.data(), &bits, sizeof(bits));
}

}  // namespace

void dist_driver::ensure_fabric(cluster& c) {
    // The label strings are stable for the cluster's topology: fault plans
    // match sites by string content, and probe()/trace take const char*
    // pointers that must outlive the tasks using them.
    const auto nb =
        static_cast<std::size_t>(std::max<index_t>(0, c.num_slabs() - 1));
    if (labels_.size() != nb) {
        labels_.clear();
        labels_.resize(nb);
        for (std::size_t b = 0; b < nb; ++b) {
            for (int w = 0; w < num_halo_streams; ++w) {
                const std::string suffix =
                    std::string(halo_stream_name(static_cast<halo_stream>(w))) +
                    ":" + std::to_string(b);
                labels_[b].drop[w] = "halo_drop:" + suffix;
                labels_[b].corrupt[w] = "halo_corrupt:" + suffix;
            }
        }
    }
    if (kill_labels_.size() != static_cast<std::size_t>(c.num_slabs())) {
        kill_labels_.clear();
        for (index_t s = 0; s < c.num_slabs(); ++s) {
            kill_labels_.push_back("slab_kill:" + std::to_string(s));
        }
    }
    const bool want_detector = halo_timeout_.count() > 0 || retry_.enabled();
    if (want_detector &&
        (detector_ == nullptr || detector_->num_slabs() != c.num_slabs())) {
        detector_ = std::make_shared<failure_detector>(c.num_slabs());
    }
}

void dist_driver::advance(cluster& c) {
    last_failure_ = slab_failure{};
    ensure_fabric(c);
    if (detector_) detector_->begin_iteration();
    switch (mode_) {
        case exchange_mode::futurized:
            advance_futurized(c, /*eager=*/false);
            break;
        case exchange_mode::eager:
            advance_futurized(c, /*eager=*/true);
            break;
        case exchange_mode::bulk_synchronous:
            advance_bulk_synchronous(c);
            break;
    }
}

void dist_driver::send_halo(cluster& c, index_t s, bool upper, bool corner) {
    domain& d = c.slab(s);
    const index_t b = upper ? s : s - 1;
    const halo_stream which =
        corner ? (upper ? halo_stream::corner_up : halo_stream::corner_down)
               : (upper ? halo_stream::delv_up : halo_stream::delv_down);
    amt::trace::scoped_span halo(amt::trace::event_kind::halo_span,
                                 corner ? "halo:pack_corner" : "halo:pack_delv",
                                 static_cast<std::int32_t>(s));
    const index_t base =
        upper ? d.top_plane_elem_base() : d.bottom_plane_elem_base();
    plane_buffer buf =
        corner ? pack_corner_plane(d, base) : pack_delv_plane(d, base);
    if (detector_) detector_->heartbeat(s);

    boundary_channels& bc = c.boundary(b);
    retransmit_slot& tx = stream_slot(bc, which);
    if (retry_.enabled()) {
        // Park a pristine copy (CRC included) before anything can go wrong
        // in transit; drop/corrupt recovery re-delivers from here.
        std::lock_guard lk(tx.mu);
        tx.payload = buf;
        ++tx.packed_seq;
        tx.attempts = 0;
        tx.last_attempt = std::chrono::steady_clock::now();
    }
    const halo_labels& lab = labels_[static_cast<std::size_t>(b)];
    const int wi = static_cast<int>(which);
    if (amt::fault::decide(lab.drop[wi].c_str())) {
        // Message lost in transit.  With retry on, the wait loop's drop
        // recovery re-delivers the cached copy; without it the receiver
        // starves and the progress deadline escalates.
        amt::resilience().halo_drops.add(1);
        amt::trace::mark("halo:drop", static_cast<std::int32_t>(b));
        return;
    }
    if (amt::fault::decide(lab.corrupt[wi].c_str())) {
        flip_payload_bit(buf);
    }
    if (retry_.enabled()) {
        std::lock_guard lk(tx.mu);
        if (tx.sent_seq >= tx.packed_seq) return;  // resend loop beat us
        tx.sent_seq = tx.packed_seq;
    }
    stream_channel(bc, which).set(std::move(buf));
}

bool dist_driver::resend_from_cache(cluster& c, index_t b, halo_stream which,
                                    bool force) {
    boundary_channels& bc = c.boundary(b);
    retransmit_slot& tx = stream_slot(bc, which);
    const std::uint64_t salt =
        static_cast<std::uint64_t>(b) * num_halo_streams +
        static_cast<std::uint64_t>(which) + 1;
    plane_buffer copy;
    {
        std::lock_guard lk(tx.mu);
        if (tx.packed_seq == 0) return false;  // nothing ever cached
        if (!force) {
            if (tx.sent_seq >= tx.packed_seq) return false;     // delivered
            if (tx.attempts >= retry_.max_attempts) return false;  // exhausted
            const auto wait = retry_.backoff_for(tx.attempts, salt);
            if (std::chrono::steady_clock::now() - tx.last_attempt < wait) {
                return false;  // backoff not elapsed yet
            }
        }
        ++tx.attempts;
        tx.last_attempt = std::chrono::steady_clock::now();
        copy = tx.payload;
    }
    // The resend crosses the same faulty transit as the original: unbounded
    // injection plans keep hitting it, which is how the retry budget is
    // exhausted deterministically in tests.
    const halo_labels& lab = labels_[static_cast<std::size_t>(b)];
    const int wi = static_cast<int>(which);
    if (amt::fault::decide(lab.drop[wi].c_str())) {
        amt::resilience().halo_drops.add(1);
        amt::trace::mark("halo:drop", static_cast<std::int32_t>(b));
        return false;
    }
    if (amt::fault::decide(lab.corrupt[wi].c_str())) {
        flip_payload_bit(copy);
    }
    try {
        stream_channel(bc, which).set(std::move(copy));
    } catch (const amt::channel_closed&) {
        return false;  // fabric already failed; the cascade handles it
    }
    {
        std::lock_guard lk(tx.mu);
        tx.sent_seq = tx.packed_seq;
    }
    amt::resilience().halo_resends.add(1);
    amt::trace::mark("halo:resend", static_cast<std::int32_t>(b));
    return true;
}

void dist_driver::service_resends(cluster& c) {
    for (index_t b = 0; b + 1 < c.num_slabs(); ++b) {
        for (int w = 0; w < num_halo_streams; ++w) {
            resend_from_cache(c, b, static_cast<halo_stream>(w),
                              /*force=*/false);
        }
    }
}

namespace {

/// Shared state of one receive-with-retry chain (receive_halo).
struct recv_ctx {
    amt::channel<plane_buffer> ch;
    retry_policy pol;
    std::uint64_t salt = 0;
    const char* span_name = "";
    index_t slab = -1;
    std::shared_ptr<failure_detector> det;
    std::function<void(const plane_buffer&)> unpack;
    std::function<bool()> request_resend;  // null = retry disabled
    amt::promise<void> done;
    /// Armed-metrics stamp taken when the receive was posted; the
    /// dist_halo_rtt_ns sample closes at successful unpack, so retries and
    /// backoff count into the tail.
    std::chrono::steady_clock::time_point metrics_t0{};
};

amt::metrics::histogram& halo_rtt_hist() {
    static auto& h = amt::metrics::get_histogram(
        "dist_halo_rtt_ns",
        "halo receive round-trip: post to successful unpack, retries "
        "included");
    return h;
}

/// Chains one channel get() → unpack; on a CRC failure with retry budget
/// left, requests a resend (as its own backed-off task — never blocking
/// this continuation) and re-chains for the fresh copy.
void chain_receive(const std::shared_ptr<recv_ctx>& ctx, int attempt) {
    ctx->ch.get().then(
        amt::launch::sync, [ctx, attempt](amt::future<plane_buffer>&& m) {
            try {
                {
                    amt::trace::scoped_span halo(
                        amt::trace::event_kind::halo_span, ctx->span_name,
                        static_cast<std::int32_t>(ctx->slab));
                    ctx->unpack(m.get());
                }
                if (ctx->metrics_t0 !=
                    std::chrono::steady_clock::time_point{}) {
                    halo_rtt_hist().record(static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() -
                            ctx->metrics_t0)
                            .count()));
                }
                if (ctx->det) ctx->det->heartbeat(ctx->slab);
                ctx->done.set_value();
                return;
            } catch (const simulation_error& e) {
                if (e.code() == status::data_corruption &&
                    ctx->request_resend != nullptr &&
                    attempt < ctx->pol.max_attempts) {
                    amt::resilience().halo_crc_failures.add(1);
                    amt::resilience().halo_retries.add(1);
                    amt::trace::mark("halo:retry",
                                     static_cast<std::int32_t>(ctx->slab));
                    const auto backoff =
                        ctx->pol.backoff_for(attempt, ctx->salt);
                    amt::post([ctx, backoff] {
                        if (backoff.count() > 0) {
                            std::this_thread::sleep_for(backoff);
                        }
                        ctx->request_resend();
                    });
                    chain_receive(ctx, attempt + 1);
                    return;
                }
                ctx->done.set_exception(std::current_exception());
            } catch (...) {
                ctx->done.set_exception(std::current_exception());
            }
        });
}

}  // namespace

amt::future<void> dist_driver::receive_halo(
    cluster& c, index_t s, index_t b, halo_stream which, const char* span_name,
    std::function<void(const plane_buffer&)> unpack) {
    auto ctx = std::make_shared<recv_ctx>();
    ctx->ch = stream_channel(c.boundary(b), which);
    ctx->pol = retry_;
    ctx->salt = static_cast<std::uint64_t>(b) * num_halo_streams +
                static_cast<std::uint64_t>(which) + 1;
    ctx->span_name = span_name;
    ctx->slab = s;
    ctx->det = detector_;
    ctx->unpack = std::move(unpack);
    if (amt::metrics::enabled()) {
        ctx->metrics_t0 = std::chrono::steady_clock::now();
    }
    if (retry_.enabled()) {
        cluster* cp = &c;
        ctx->request_resend = [this, cp, b, which] {
            return resend_from_cache(*cp, b, which, /*force=*/true);
        };
    }
    auto fut = ctx->done.get_future();
    chain_receive(ctx, 0);
    return fut;
}

void dist_driver::reduce_constraints(cluster& c) {
    k::dt_constraints combined;
    for (const auto& slab_partials : partials_) {
        for (const auto& partial : slab_partials) {
            combined = k::min_constraints(combined, partial);
        }
    }
    for (index_t s = 0; s < c.num_slabs(); ++s) {
        c.slab(s).dtcourant = combined.dtcourant;
        c.slab(s).dthydro = combined.dthydro;
    }
}

namespace {

/// Builds one element-range wave in either monolithic or eager-split form.
/// In eager mode the bottom/top boundary-plane tasks form their own groups
/// whose completion gates the respective sends — a neighbor's ghost message
/// leaves as soon as the plane it needs is computed, while this slab's
/// interior may still be running.  Returns the whole-wave barrier plus the
/// send-completion futures.
struct staged_wave {
    amt::future<void> barrier;
    std::vector<amt::future<void>> sends;
};

template <class SpawnRange, class SendLower, class SendUpper>
staged_wave spawn_staged(domain& d, bool eager, SpawnRange&& spawn_range,
                         SendLower&& send_lower, SendUpper&& send_upper) {
    const index_t ne = d.numElem();
    const index_t ep = d.elems_per_plane();
    staged_wave out;

    if (!eager || ne <= ep) {
        // Monolithic wave: sends gate on the full barrier (single-plane
        // slabs always take this path — the plane *is* the whole wave).
        amt::shared_future<void> all(
            amt::when_all_void(std::move(spawn_range(0, ne).futures)));
        if (d.has_lower_neighbor()) {
            out.sends.push_back(all.then(
                amt::launch::sync,
                [send_lower](const amt::shared_future<void>& f) {
                    f.get();
                    send_lower();
                }));
        }
        if (d.has_upper_neighbor()) {
            out.sends.push_back(all.then(
                amt::launch::sync,
                [send_upper](const amt::shared_future<void>& f) {
                    f.get();
                    send_upper();
                }));
        }
        out.barrier = all.then(amt::launch::sync,
                               [](const amt::shared_future<void>& f) { f.get(); });
        return out;
    }

    // Eager split: [0, ep) bottom plane, [ne-ep, ne) top plane, interior.
    const index_t top_base = ne - ep;
    amt::shared_future<void> bottom(
        amt::when_all_void(std::move(spawn_range(0, ep).futures)));
    amt::shared_future<void> top(
        amt::when_all_void(std::move(spawn_range(top_base, ne).futures)));
    auto interior =
        top_base > ep
            ? amt::when_all_void(std::move(spawn_range(ep, top_base).futures))
            : amt::make_ready_future();

    if (d.has_lower_neighbor()) {
        out.sends.push_back(bottom.then(
            amt::launch::sync, [send_lower](const amt::shared_future<void>& f) {
                f.get();
                send_lower();
            }));
    }
    if (d.has_upper_neighbor()) {
        out.sends.push_back(top.then(
            amt::launch::sync, [send_upper](const amt::shared_future<void>& f) {
                f.get();
                send_upper();
            }));
    }

    std::vector<amt::future<void>> parts;
    parts.push_back(bottom.then(
        amt::launch::sync, [](const amt::shared_future<void>& f) { f.get(); }));
    parts.push_back(top.then(
        amt::launch::sync, [](const amt::shared_future<void>& f) { f.get(); }));
    parts.push_back(std::move(interior));
    out.barrier = amt::when_all_void(std::move(parts));
    return out;
}

}  // namespace

void dist_driver::advance_futurized(cluster& c, bool eager) {
    const index_t num_slabs = c.num_slabs();
    const real_t dt = c.slab(0).deltatime;
    const index_t p_nodal = parts_.nodal;
    const index_t p_elems = parts_.elems;

    graph::error_flags flags;
    partials_.resize(static_cast<std::size_t>(num_slabs));

    cluster* cp = &c;
    amt::runtime* rt = &rt_;

    std::vector<amt::future<void>> finals;
    finals.reserve(static_cast<std::size_t>(num_slabs));

    for (index_t s = 0; s < num_slabs; ++s) {
        domain* dp = &c.slab(s);

        // ---- wave 1: corner forces with (optionally eager) plane sends --
        auto stage1 = spawn_staged(
            *dp, eager,
            [&](index_t lo, index_t hi) {
                return graph::spawn_force_wave_range(rt_, *dp, lo, hi, p_nodal,
                                                     flags);
            },
            [this, cp, s] {
                send_halo(*cp, s, /*upper=*/false, /*corner=*/true);
            },
            [this, cp, s] {
                send_halo(*cp, s, /*upper=*/true, /*corner=*/true);
            });
        auto b1 = std::move(stage1.barrier);

        // Ghost fills chain directly on the channel futures: this slab
        // proceeds as soon as its own wave and its neighbors' boundary
        // messages are ready — no global synchronization.
        std::vector<amt::future<void>> ready;
        ready.push_back(std::move(b1));
        for (auto& send : stage1.sends) ready.push_back(std::move(send));
        if (dp->has_lower_neighbor()) {
            ready.push_back(receive_halo(
                c, s, s - 1, halo_stream::corner_up, "halo:unpack_corner",
                [dp, s](const plane_buffer& buf) {
                    unpack_corner_ghosts(*dp, dp->ghost_lower_slot(), buf,
                                         {s - 1, "corner_up"});
                }));
        }
        if (dp->has_upper_neighbor()) {
            ready.push_back(receive_halo(
                c, s, s, halo_stream::corner_down, "halo:unpack_corner",
                [dp, s](const plane_buffer& buf) {
                    unpack_corner_ghosts(*dp, dp->ghost_upper_slot(), buf,
                                         {s, "corner_down"});
                }));
        }
        if (amt::fault::armed() || detector_) {
            // Per-slab liveness/kill-switch task: stamps the slab's
            // heartbeat and passes the slab_kill:<s> fault site, the hook a
            // fail-stop test uses to take one specific slab down.
            const char* kill_site =
                kill_labels_[static_cast<std::size_t>(s)].c_str();
            auto det = detector_;
            ready.push_back(amt::async(rt_, [kill_site, det, s] {
                if (det) det->heartbeat(s);
                amt::fault::probe(kill_site);
            }));
        }
        auto halo1 = amt::when_all_void(std::move(ready));

        // ---- wave 2 ------------------------------------------------------
        auto b2 = graph::stage_after(
            std::move(halo1),
            [rt, dp, p_nodal, dt, flags] {
                return graph::spawn_node_wave(*rt, *dp, p_nodal, dt, flags)
                    .futures;
            },
            graph::wave_site::node);

        // ---- wave 3 with the delv_zeta halo for the monotonic-Q stencil --
        // The wave is spawned by a continuation once b2 resolves; its sends
        // are eager-gated the same way as wave 1's.
        auto pr3 = std::make_shared<amt::promise<void>>();
        auto wave3_done = pr3->get_future();
        b2.then(amt::launch::sync, [this, cp, dp, s, p_elems, dt, flags, eager,
                                    pr3](amt::future<void>&& f) {
            try {
                f.get();
                auto stage3 = spawn_staged(
                    *dp, eager,
                    [this, dp, p_elems, dt, flags](index_t lo, index_t hi) {
                        return graph::spawn_elem_wave_range(rt_, *dp, lo, hi,
                                                            p_elems, dt, flags);
                    },
                    [this, cp, s] {
                        send_halo(*cp, s, /*upper=*/false, /*corner=*/false);
                    },
                    [this, cp, s] {
                        send_halo(*cp, s, /*upper=*/true, /*corner=*/false);
                    });
                std::vector<amt::future<void>> parts;
                parts.push_back(std::move(stage3.barrier));
                for (auto& send : stage3.sends) parts.push_back(std::move(send));
                amt::when_all_void(std::move(parts))
                    .then(amt::launch::sync,
                          [pr3](amt::future<void>&& g) mutable {
                              try {
                                  g.get();
                                  pr3->set_value();
                              } catch (...) {
                                  pr3->set_exception(std::current_exception());
                              }
                          });
            } catch (...) {
                pr3->set_exception(std::current_exception());
            }
        });
        std::vector<amt::future<void>> ready3;
        ready3.push_back(std::move(wave3_done));
        if (dp->has_lower_neighbor()) {
            ready3.push_back(receive_halo(
                c, s, s - 1, halo_stream::delv_up, "halo:unpack_delv",
                [dp, s](const plane_buffer& buf) {
                    unpack_delv_ghosts(*dp, dp->ghost_lower_slot(), buf,
                                       {s - 1, "delv_up"});
                }));
        }
        if (dp->has_upper_neighbor()) {
            ready3.push_back(receive_halo(
                c, s, s, halo_stream::delv_down, "halo:unpack_delv",
                [dp, s](const plane_buffer& buf) {
                    unpack_delv_ghosts(*dp, dp->ghost_upper_slot(), buf,
                                       {s, "delv_down"});
                }));
        }
        auto halo3 = amt::when_all_void(std::move(ready3));

        // ---- waves 4 and 5 ------------------------------------------------
        auto b4 = graph::stage_after(
            std::move(halo3),
            [rt, dp, p_elems, flags] {
                return graph::spawn_region_wave(*rt, *dp, p_elems, flags)
                    .futures;
            },
            graph::wave_site::region_eos);

        auto& slab_partials = partials_[static_cast<std::size_t>(s)];
        slab_partials.assign(graph::constraint_slot_count(*dp, p_elems),
                             k::dt_constraints{});
        auto* partials = slab_partials.data();
        finals.push_back(graph::stage_after(
            std::move(b4),
            [rt, dp, p_elems, partials, flags] {
                return graph::spawn_constraint_wave(*rt, *dp, p_elems,
                                                    partials, flags)
                    .futures;
            },
            graph::wave_site::constraints));
    }

    // Failed-slab propagation: each slab's chain settles into one error
    // slot, and the first failure closes *all* channels, so every peer's
    // pending halo get() resolves with channel_closed and its chain settles
    // too (exceptionally) — the barrier below can never hang on a dead
    // neighbor.
    auto errors = std::make_shared<std::vector<std::exception_ptr>>(
        finals.size());
    std::vector<amt::future<void>> settled;
    settled.reserve(finals.size());
    for (std::size_t i = 0; i < finals.size(); ++i) {
        settled.push_back(finals[i].then(
            amt::launch::sync, [cp, errors, i](amt::future<void>&& f) {
                try {
                    f.get();
                } catch (...) {
                    (*errors)[i] = std::current_exception();
                    cp->close_channels();
                }
            }));
    }
    auto all = amt::when_all_void(std::move(settled));

    // The iteration's one blocking wait: every slab's chain plus the halo
    // messages feeding it.  The span closes (RAII) even when get() throws.
    amt::trace::scoped_span halo_wait(amt::trace::event_kind::barrier_span,
                                      "halo_wait",
                                      static_cast<std::int32_t>(num_slabs));
    bool timed_out = false;
    index_t suspect_slab = -1;
    const bool armed = halo_timeout_.count() > 0 || retry_.enabled();
    if (armed) {
        // Per-iteration progress deadline: a whole deadline's worth of
        // polls with zero task completions while the barrier is pending
        // means a halo message is not coming (e.g. a dead peer).  Fail the
        // fabric — the channel_closed cascade settles every chain, so the
        // wait below terminates.  With retry on but no explicit timeout, a
        // default deadline guarantees exhausted retries escalate instead of
        // hanging.  The poll period is finer than the deadline so the drop
        // recovery (service_resends) runs on the backoff timescale.
        const auto deadline =
            halo_timeout_.count() > 0 ? halo_timeout_ : default_retry_deadline;
        auto poll = deadline / 4;
        if (retry_.enabled()) {
            poll = std::min(poll, std::max(retry_.initial_backoff,
                                           std::chrono::milliseconds(1)));
        }
        poll = std::clamp(poll, std::chrono::milliseconds(1),
                          std::chrono::milliseconds(250));
        auto last_finished =
            flags.progress->finished.load(amt::memory_order_relaxed);
        std::chrono::milliseconds stalled_for{0};
        while (!all.wait_for(poll)) {
            if (retry_.enabled()) service_resends(c);
            const auto now_finished =
                flags.progress->finished.load(amt::memory_order_relaxed);
            if (now_finished == last_finished) {
                stalled_for += poll;
                if (!timed_out && stalled_for >= deadline) {
                    timed_out = true;
                    if (detector_) {
                        // Heartbeats name the prime suspect: the slab whose
                        // last sign of life is the most stale.
                        const auto ranked = detector_->suspect();
                        if (!ranked.empty()) suspect_slab = ranked.front();
                        amt::resilience().slab_deaths.add(1);
                        amt::trace::mark("halo:slab_death",
                                         static_cast<std::int32_t>(
                                             suspect_slab));
                    }
                    c.close_channels();
                    // A *simulated* stall (fault injection) parks its task
                    // inside the probe; release it so the stalled slab's
                    // own chain can settle too.  A genuinely hung task body
                    // cannot be recovered in-process — its stall_timeout
                    // fail-safe is the backstop.
                    amt::fault::release_stalls();
                }
            } else {
                stalled_for = std::chrono::milliseconds(0);
            }
            last_finished = now_finished;
        }
    }
    all.get();

    // Surface the root cause: a slab's own failure beats the
    // channel_closed cascade it triggered in its peers.
    std::exception_ptr cascade, root;
    index_t root_slab = -1;
    status root_code = status::ok;
    bool root_transient = false;
    for (std::size_t i = 0; i < errors->size(); ++i) {
        const auto& e = (*errors)[i];
        if (e == nullptr) continue;
        try {
            std::rethrow_exception(e);
        } catch (const amt::channel_closed&) {
            if (cascade == nullptr) cascade = e;
        } catch (const simulation_error& se) {
            if (root == nullptr) {
                root = e;
                root_slab = static_cast<index_t>(i);
                root_code = se.code();
                root_transient = false;
            }
        } catch (const amt::fault::injected_fault&) {
            if (root == nullptr) {
                root = e;
                root_slab = static_cast<index_t>(i);
                root_code = status::task_fault;
                root_transient = true;  // replay at unchanged dt can clear it
            }
        } catch (...) {
            if (root == nullptr) {
                root = e;
                root_slab = static_cast<index_t>(i);
                root_code = status::task_fault;
                root_transient = false;
            }
        }
    }
    if (root != nullptr) {
        try {
            std::rethrow_exception(root);
        } catch (const std::exception& ex) {
            last_failure_ = {root_slab, root_code, root_transient, ex.what()};
        } catch (...) {
            last_failure_ = {root_slab, root_code, root_transient, ""};
        }
        std::rethrow_exception(root);
    }
    if (timed_out) {
        std::string msg =
            "halo exchange timed out (no progress within the deadline)";
        if (suspect_slab >= 0) {
            msg += "; failure detector suspects slab " +
                   std::to_string(suspect_slab);
        }
        last_failure_ = {suspect_slab, status::stalled, false, msg};
        throw simulation_error(status::stalled, msg);
    }
    if (cascade != nullptr) {
        last_failure_ = {-1, status::stalled, false,
                         "halo fabric failed (cascade)"};
        std::rethrow_exception(cascade);
    }

    reduce_constraints(c);

    if (!flags.volume_ok->load(amt::memory_order_relaxed)) {
        last_failure_ = {-1, status::volume_error, false,
                         "non-positive volume detected"};
        throw simulation_error(status::volume_error,
                               "non-positive volume detected");
    }
    if (!flags.qstop_ok->load(amt::memory_order_relaxed)) {
        last_failure_ = {-1, status::qstop_error, false,
                         "artificial viscosity exceeded qstop"};
        throw simulation_error(status::qstop_error,
                               "artificial viscosity exceeded qstop");
    }
}

void dist_driver::advance_bulk_synchronous(cluster& c) {
    const index_t num_slabs = c.num_slabs();
    const real_t dt = c.slab(0).deltatime;
    const index_t p_nodal = parts_.nodal;
    const index_t p_elems = parts_.elems;

    graph::error_flags flags;
    partials_.resize(static_cast<std::size_t>(num_slabs));

    // One global barrier per wave: collect every slab's futures, block.
    auto global_wave = [&](auto&& spawn_for_slab) {
        std::vector<amt::future<void>> all;
        for (index_t s = 0; s < num_slabs; ++s) {
            auto futures = spawn_for_slab(c.slab(s), s);
            for (auto& f : futures) all.push_back(std::move(f));
        }
        amt::trace::scoped_span wait(amt::trace::event_kind::barrier_span,
                                     "global_wave",
                                     static_cast<std::int32_t>(all.size()));
        amt::when_all_void(std::move(all)).get();
    };

    global_wave([&](domain& d, index_t) {
        return graph::spawn_force_wave(rt_, d, p_nodal, flags).futures;
    });
    // Main-thread exchange between the global barriers (the MPI-ish step).
    for (index_t b = 0; b + 1 < num_slabs; ++b) {
        amt::trace::scoped_span halo(amt::trace::event_kind::halo_span,
                                     "halo:exchange_corner",
                                     static_cast<std::int32_t>(b));
        domain& lower = c.slab(b);
        domain& upper = c.slab(b + 1);
        unpack_corner_ghosts(upper, upper.ghost_lower_slot(),
                             pack_corner_plane(lower, lower.top_plane_elem_base()),
                             {b, "corner_up"});
        unpack_corner_ghosts(lower, lower.ghost_upper_slot(),
                             pack_corner_plane(upper, upper.bottom_plane_elem_base()),
                             {b, "corner_down"});
    }

    global_wave([&](domain& d, index_t) {
        return graph::spawn_node_wave(rt_, d, p_nodal, dt, flags).futures;
    });
    global_wave([&](domain& d, index_t) {
        return graph::spawn_elem_wave(rt_, d, p_elems, dt, flags).futures;
    });
    for (index_t b = 0; b + 1 < num_slabs; ++b) {
        amt::trace::scoped_span halo(amt::trace::event_kind::halo_span,
                                     "halo:exchange_delv",
                                     static_cast<std::int32_t>(b));
        domain& lower = c.slab(b);
        domain& upper = c.slab(b + 1);
        unpack_delv_ghosts(upper, upper.ghost_lower_slot(),
                           pack_delv_plane(lower, lower.top_plane_elem_base()),
                           {b, "delv_up"});
        unpack_delv_ghosts(lower, lower.ghost_upper_slot(),
                           pack_delv_plane(upper, upper.bottom_plane_elem_base()),
                           {b, "delv_down"});
    }
    global_wave([&](domain& d, index_t) {
        return graph::spawn_region_wave(rt_, d, p_elems, flags).futures;
    });
    global_wave([&](domain& d, index_t s) {
        auto& slab_partials = partials_[static_cast<std::size_t>(s)];
        slab_partials.assign(graph::constraint_slot_count(d, p_elems),
                             k::dt_constraints{});
        return graph::spawn_constraint_wave(rt_, d, p_elems,
                                            slab_partials.data(), flags)
            .futures;
    });

    reduce_constraints(c);

    if (!flags.volume_ok->load(amt::memory_order_relaxed)) {
        throw simulation_error(status::volume_error,
                               "non-positive volume detected");
    }
    if (!flags.qstop_ok->load(amt::memory_order_relaxed)) {
        throw simulation_error(status::qstop_error,
                               "artificial viscosity exceeded qstop");
    }
}

run_result run_simulation(cluster& c, dist_driver& drv, int max_cycles) {
    run_result result;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        while (c.slab(0).time_ < c.slab(0).stoptime &&
               c.slab(0).cycle < max_cycles) {
            // TimeIncrement runs on every slab with identical inputs
            // (constraints were reduced globally), so dt and time stay in
            // lockstep across the cluster.
            for (index_t s = 0; s < c.num_slabs(); ++s) {
                kernels::time_increment(c.slab(s));
            }
            amt::fault::set_epoch(c.slab(0).cycle);
            drv.advance(c);
        }
    } catch (const simulation_error& err) {
        result.run_status = err.code();
        result.error_message = describe_failure(err.what(), c.slab(0).cycle,
                                                c.slab(0).deltatime);
    } catch (const amt::fault::injected_fault& err) {
        result.run_status = status::task_fault;
        result.error_message = describe_failure(err.what(), c.slab(0).cycle,
                                                c.slab(0).deltatime);
    } catch (const amt::channel_closed& err) {
        // A peer died and took the halo fabric down; the root cause was
        // surfaced on its own slab, this run observed the cascade.
        result.run_status = status::stalled;
        result.error_message = describe_failure(err.what(), c.slab(0).cycle,
                                                c.slab(0).deltatime);
    }
    const auto t1 = std::chrono::steady_clock::now();
    result.cycles = c.slab(0).cycle;
    result.final_time = c.slab(0).time_;
    result.final_dt = c.slab(0).deltatime;
    result.final_origin_energy = c.slab(0).e[0];
    result.elapsed_seconds = std::chrono::duration<double>(t1 - t0).count();
    return result;
}

}  // namespace lulesh::dist
