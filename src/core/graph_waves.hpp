// core/graph_waves.hpp
//
// The five task waves of one leapfrog iteration, as reusable builders: the
// single-domain taskgraph_driver chains them with when_all barriers, and the
// multi-domain dist_driver chains one instance per slab with halo-exchange
// steps in between.  Each builder spawns its tasks on the given runtime and
// returns the per-task futures plus the number of tasks created.

#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "amt/amt.hpp"
#include "amt/atomic.hpp"
#include "amt/hazard.hpp"
#include "core/access.hpp"
#include "lulesh/domain.hpp"
#include "lulesh/kernels.hpp"

namespace lulesh::graph {

struct wave {
    std::vector<amt::future<void>> futures;
    std::size_t tasks = 0;
};

/// The site labels every wave's tasks report to fault probes, the progress
/// tracker, and the watchdog.  Deliberately identical to the
/// phase_profile::name() strings so stall reports read like the profiles.
namespace wave_site {
inline constexpr const char* force = "force";
inline constexpr const char* node = "node";
inline constexpr const char* elem = "elem";
inline constexpr const char* region_eos = "region_eos";
inline constexpr const char* constraints = "constraints";
}  // namespace wave_site

/// Chunk-count arithmetic shared by the wave builders, the declarative
/// model and the compiled-iteration builder.
[[nodiscard]] constexpr index_t wave_chunks(index_t n, index_t p) noexcept {
    return p > 0 ? (n + p - 1) / p : n;
}

/// The fused kernel bodies of the five waves — exactly the code the wave
/// builders put inside their task lambdas, shared with the compiled replay
/// graph (core/compiled_iteration) so the fresh-build and replay execution
/// paths run identical floating-point operations in identical order and
/// stay bitwise equal by construction (tests/core/test_replay.cpp).
namespace wave_body {
void force_stress(domain& d, index_t lo, index_t hi,
                  amt::atomic<bool>& vol_ok);
void force_hourglass(domain& d, index_t lo, index_t hi,
                     amt::atomic<bool>& vol_ok);
void node_gather(domain& d, index_t lo, index_t hi);
void node_velpos(domain& d, index_t lo, index_t hi, real_t dt);
void elem_fused(domain& d, index_t lo, index_t hi, real_t dt,
                amt::atomic<bool>& vol_ok, amt::atomic<bool>& q_ok);
void region_monoq(domain& d, const index_t* list, index_t lo, index_t hi);
void region_eos(domain& d, const index_t* list, index_t lo, index_t hi,
                int rep, kernels::eos_scratch& scratch);
void volume_update(domain& d, index_t lo, index_t hi);
void constraints(domain& d, const index_t* list, index_t lo, index_t hi,
                 kernels::dt_constraints& out);
}  // namespace wave_body

/// Task start/finish counters plus in-flight task labels, updated by every
/// guarded task body.  External observers (the watchdog) hold a shared_ptr
/// and sample it from their own thread: a barrier that stops making
/// `finished` progress while `started` is ahead means a task is stuck.
///
/// `site` is the label of the most recently *started* task — kept for
/// cheap single-label reporting (exact on a 1-worker runtime).  The
/// `worker_site` slots additionally track, per runtime worker, the label
/// of the task it is currently inside (nullptr between tasks), so a stall
/// report can name *every* in-flight site even when other workers started
/// tasks after the hung one.  Slot 0 collects tasks run inline on
/// non-worker threads; worker w uses slot w+1, saturating at the last
/// slot for runtimes wider than max_tracked_workers.
struct progress_state {
    static constexpr std::size_t max_tracked_workers = 64;

    amt::atomic<std::uint64_t> started{0};
    amt::atomic<std::uint64_t> finished{0};
    amt::atomic<const char*> site{nullptr};
    std::array<amt::atomic<const char*>, max_tracked_workers + 1>
        worker_site{};

    /// Labels of all tasks currently in flight (one entry per busy worker).
    [[nodiscard]] std::vector<const char*> in_flight_sites() const {
        std::vector<const char*> sites;
        for (const auto& slot : worker_site) {
            const char* s = slot.load(amt::memory_order_relaxed);
            if (s != nullptr) sites.push_back(s);
        }
        return sites;
    }
};

/// Opt-in per-task instrumentation shared by one iteration's tasks: the
/// dynamic shadow-epoch hazard tracker (amt/hazard) and the NaN sentinel.
/// Null in error_flags by default — spawning then skips building contexts
/// entirely.  Contexts are created at spawn time (wave builders know each
/// task's ranges) and live in stable-address storage until the next
/// iteration begins; in-flight tasks reference them by pointer.
struct iteration_sentinel {
    struct task_ctx {
        std::vector<access> accs;          ///< declared accesses of the task
        amt::hazard::access_set decl;      ///< accs expanded for the tracker
        std::int64_t partition = -1;
    };

    const domain* dom = nullptr;  ///< arena key + connectivity for expansion
    bool track_hazards = false;
    bool scan_nan = false;

    /// Where the NaN scan found trouble (static strings; set once per
    /// episode, first writer wins is not needed — any site will do).
    amt::atomic<const char*> nan_wave_site{nullptr};
    amt::atomic<const char*> nan_field_name{nullptr};

    const task_ctx* add(std::vector<access> accs, std::int64_t partition) {
        std::lock_guard lk(mu_);
        task_ctx& c = storage_.emplace_back();
        c.accs = std::move(accs);
        c.partition = partition;
        if (track_hazards) c.decl = expand_to_hazard_set(c.accs, *dom);
        return &c;
    }

    /// Drops last iteration's contexts (all tasks have finished: the
    /// driver's barrier get() precedes the next begin_iteration()).
    void begin_iteration() {
        std::lock_guard lk(mu_);
        storage_.clear();
    }

private:
    std::mutex mu_;
    std::deque<task_ctx> storage_;
};

/// Shared per-iteration context: error flags aggregated by tasks and
/// checked at iteration end, a cooperative stop flag that lets sibling
/// tasks short-circuit once one task has failed, and the progress tracker.
/// Copies share state (everything is behind shared_ptrs / shared stop
/// state), so capturing by value in task lambdas is the intended use.
struct error_flags {
    std::shared_ptr<amt::atomic<bool>> volume_ok =
        std::make_shared<amt::atomic<bool>>(true);
    std::shared_ptr<amt::atomic<bool>> qstop_ok =
        std::make_shared<amt::atomic<bool>>(true);

    /// Cleared by a task whose NaN scan (sentinel->scan_nan) found a
    /// non-finite value in a field it had just written; checked at the
    /// barrier so a blow-up is reported with its wave site instead of
    /// surfacing as a wrong answer many iterations later.  Always true
    /// when the sentinel is off.
    std::shared_ptr<amt::atomic<bool>> nan_ok =
        std::make_shared<amt::atomic<bool>>(true);

    /// Opt-in dynamic instrumentation (hazard tracking, NaN scanning);
    /// null by default.
    std::shared_ptr<iteration_sentinel> sentinel;

    /// Requested by the first task that throws; later tasks of the
    /// iteration return immediately (their output is about to be thrown
    /// away by the rollback anyway).
    amt::stop_source stop;

    /// Stable across iterations (begin_iteration keeps the object), so a
    /// watchdog can keep observing one shared_ptr for a whole run.
    std::shared_ptr<progress_state> progress =
        std::make_shared<progress_state>();

    void reset() {
        volume_ok->store(true, amt::memory_order_relaxed);
        qstop_ok->store(true, amt::memory_order_relaxed);
        nan_ok->store(true, amt::memory_order_relaxed);
    }

    /// Fresh cancellation scope for a new iteration: error flags reset and
    /// the stop source replaced (a stop request must not leak into the next
    /// iteration), while the progress tracker object stays the same.
    void begin_iteration() {
        reset();
        stop = amt::stop_source();
        if (sentinel) sentinel->begin_iteration();
    }

    [[nodiscard]] bool cancelled() const { return stop.stop_requested(); }
};

/// Wave 1 — corner forces: stress chains ∥ hourglass chains over element
/// partitions of size `p_nodal` (paper trick T4: both launched together).
wave spawn_force_wave(amt::runtime& rt, domain& d, index_t p_nodal,
                      const error_flags& flags);

/// Force tasks restricted to elements [elem_lo, elem_hi) — used by the
/// eager halo exchange to gate boundary-plane sends on just the boundary
/// tasks instead of the whole wave.
wave spawn_force_wave_range(amt::runtime& rt, domain& d, index_t elem_lo,
                            index_t elem_hi, index_t p_nodal,
                            const error_flags& flags);

/// Wave 2 — node chains: gather+acceleration+BC, then velocity→position as
/// a continuation (tricks T2+T3), over node partitions of size `p_nodal`.
wave spawn_node_wave(amt::runtime& rt, domain& d, index_t p_nodal, real_t dt,
                     const error_flags& flags);

/// Wave 3 — element kinematics + strain deviators + monotonic-Q gradients +
/// qstop check + EOS pre-clamp, fused per element partition (T3).
wave spawn_elem_wave(amt::runtime& rt, domain& d, index_t p_elems, real_t dt,
                     const error_flags& flags);

/// Wave-3 tasks restricted to elements [elem_lo, elem_hi) (eager delv_zeta
/// exchange).
wave spawn_elem_wave_range(amt::runtime& rt, domain& d, index_t elem_lo,
                           index_t elem_hi, index_t p_elems, real_t dt,
                           const error_flags& flags);

/// Wave 4 — per-region monotonic-Q → EOS chains (T2+T4+T5, all regions
/// launched together) plus the independent volume update.
wave spawn_region_wave(amt::runtime& rt, domain& d, index_t p_elems,
                       const error_flags& flags);

/// Number of constraint partial slots wave 5 will fill for this domain.
std::size_t constraint_slot_count(const domain& d, index_t p_elems);

/// Wave 5 — Courant/hydro constraint partials, one slot per (region, chunk),
/// written into `partials[0 .. constraint_slot_count)`.
wave spawn_constraint_wave(amt::runtime& rt, domain& d, index_t p_elems,
                           kernels::dt_constraints* partials,
                           const error_flags& flags);

}  // namespace lulesh::graph
