// Tests for the v3 incremental checkpoint chain: dirty-region coalescing,
// mixed base+delta replay, restart-from-chain bitwise identity across all
// four drivers, the entry-snapshot-only resilient mode, periodic re-basing,
// torn-tail tolerance, and the enriched checkpoint_error context.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "amt/amt.hpp"
#include "amt/fault.hpp"
#include "core/driver_foreach.hpp"
#include "core/driver_taskgraph.hpp"
#include "lulesh/checkpoint.hpp"
#include "lulesh/checkpoint_chain.hpp"
#include "lulesh/driver.hpp"
#include "lulesh/driver_parallel_for.hpp"
#include "lulesh/resilient_run.hpp"
#include "lulesh/validate.hpp"
#include "ompsim/ompsim.hpp"

namespace {

using lulesh::dirty_region;
using lulesh::domain;
using lulesh::field;
using lulesh::index_t;
using lulesh::options;
using lulesh::real_t;
using lulesh::resilience_options;

options small_opts() {
    options o;
    o.size = 6;
    o.num_regions = 5;
    return o;
}

struct fault_guard {
    ~fault_guard() {
        amt::fault::disarm();
        amt::fault::reset_stats();
        amt::fault::set_epoch(-1);
    }
};

std::string serialized(const domain& d) {
    std::ostringstream os;
    lulesh::save_checkpoint(d, os);
    return os.str();
}

std::vector<real_t>& field_ref(domain& d, field f) {
    switch (f) {
        case field::x: return d.x;
        case field::y: return d.y;
        case field::z: return d.z;
        case field::xd: return d.xd;
        case field::yd: return d.yd;
        case field::zd: return d.zd;
        case field::e: return d.e;
        case field::p: return d.p;
        case field::q: return d.q;
        case field::v: return d.v;
        default: return d.ss;
    }
}

std::string pack_one(const domain& d, std::vector<dirty_region> regions,
                     bool base) {
    lulesh::state_capture cap(d, std::move(regions), base);
    cap.pack_remaining();
    cap.wait_packed();
    return cap.take_record();
}

// ---------------- dirty_tracker ----------------

TEST(DirtyTracker, CoalescesOverlappingAndAdjacentMarks) {
    const domain d(small_opts());
    lulesh::dirty_tracker t;
    EXPECT_TRUE(t.empty());
    t.mark(field::e, 10, 20);
    t.mark(field::e, 15, 30);  // overlaps -> [10, 30)
    t.mark(field::e, 30, 40);  // adjacent -> [10, 40)
    t.mark(field::e, 50, 60);  // disjoint: stays separate
    EXPECT_FALSE(t.empty());

    const auto regs = t.take(d);
    ASSERT_EQ(regs.size(), 2u);
    EXPECT_EQ(regs[0].f, field::e);
    EXPECT_EQ(regs[0].lo, 10);
    EXPECT_EQ(regs[0].hi, 40);
    EXPECT_EQ(regs[1].lo, 50);
    EXPECT_EQ(regs[1].hi, 60);
    EXPECT_TRUE(t.empty());  // take() clears
}

TEST(DirtyTracker, ClampsToExtentAndIgnoresUntrackedFields) {
    const domain d(small_opts());
    lulesh::dirty_tracker t;
    t.mark(field::x, 0, 1 << 30);  // clamped to numNode
    t.mark(field::fx, 0, 10);      // per-iteration scratch: not checkpointed
    t.mark(field::vnew, 0, 10);
    const auto regs = t.take(d);
    ASSERT_EQ(regs.size(), 1u);
    EXPECT_EQ(regs[0].f, field::x);
    EXPECT_EQ(regs[0].lo, 0);
    EXPECT_EQ(regs[0].hi, d.numNode());
}

// ---------------- record round trips ----------------

TEST(ChainRecords, MixedBaseAndDeltaReplayIsBitwise) {
    const std::string path = "/tmp/lulesh_chain_mixed.ckpt";
    std::remove(path.c_str());

    domain d(small_opts());
    lulesh::serial_driver drv;
    lulesh::run_simulation(d, drv, 5);  // non-trivial state for the base

    std::vector<std::string> records;
    records.push_back(pack_one(d, lulesh::full_coverage(d), /*base=*/true));

    // Random partial-coverage deltas: poke values, capture exactly the
    // poked regions, append.  Replay must land bitwise on the final state.
    std::mt19937 rng(1234);
    for (int n = 0; n < 6; ++n) {
        std::vector<dirty_region> regs;
        for (int r = 0; r < 3; ++r) {
            const field f = lulesh::checkpoint_field_at(
                rng() % lulesh::num_checkpoint_fields);
            auto& vec = field_ref(d, f);
            const auto extent = static_cast<index_t>(vec.size());
            const index_t lo = static_cast<index_t>(
                rng() % static_cast<std::uint32_t>(extent));
            const index_t hi =
                std::min<index_t>(extent, lo + 1 + static_cast<index_t>(
                                                       rng() % 17));
            for (index_t i = lo; i < hi; ++i) {
                vec[static_cast<std::size_t>(i)] +=
                    real_t(1e-3) * real_t(n + 1);
            }
            regs.push_back({f, lo, hi});
        }
        d.cycle += 1;  // deltas may carry scalar changes too
        records.push_back(pack_one(d, std::move(regs), /*base=*/false));
    }
    lulesh::write_chain_file(path, records);

    domain replayed(small_opts());
    lulesh::load_checkpoint_file(replayed, path);
    EXPECT_EQ(lulesh::max_field_difference(d, replayed), 0.0);
    EXPECT_EQ(replayed.cycle, d.cycle);
    EXPECT_EQ(serialized(replayed), serialized(d));
    std::remove(path.c_str());
}

TEST(ChainRecords, TornTailAppendIsIgnoredOnRestore) {
    const std::string path = "/tmp/lulesh_chain_torn.ckpt";
    std::remove(path.c_str());

    domain d(small_opts());
    lulesh::serial_driver drv;
    lulesh::run_simulation(d, drv, 4);
    lulesh::write_chain_file(
        path, {pack_one(d, lulesh::full_coverage(d), /*base=*/true)});

    lulesh::run_simulation(d, drv, 8);
    lulesh::append_chain_record_file(
        path, pack_one(d, lulesh::full_coverage(d), /*base=*/false));
    const std::string committed = serialized(d);

    // A crash mid-append leaves a torn tail: only half of the next record's
    // bytes made it to disk.  Restore must land on the committed state.
    lulesh::run_simulation(d, drv, 12);
    const std::string torn =
        pack_one(d, lulesh::full_coverage(d), /*base=*/false);
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out.write(torn.data(),
                  static_cast<std::streamsize>(torn.size() / 2));
    }

    domain restored(small_opts());
    lulesh::load_checkpoint_file(restored, path);
    EXPECT_EQ(restored.cycle, 8);
    EXPECT_EQ(serialized(restored), committed);
    std::remove(path.c_str());
}

TEST(ChainRecords, FileWithNoCommittedBaseThrowsWithContext) {
    const std::string path = "/tmp/lulesh_chain_nobase.ckpt";
    std::remove(path.c_str());

    domain d(small_opts());
    std::string rec = pack_one(d, lulesh::full_coverage(d), /*base=*/true);
    rec.resize(rec.size() - 8);  // chop through the commit trailer
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(rec.data(), static_cast<std::streamsize>(rec.size()));
    }

    domain restored(small_opts());
    try {
        lulesh::load_checkpoint_file(restored, path);
        FAIL() << "expected checkpoint_error";
    } catch (const lulesh::checkpoint_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
        EXPECT_NE(msg.find("no committed base record"), std::string::npos)
            << msg;
    }
    std::remove(path.c_str());
}

TEST(ChainRecords, MeshShapeMismatchIsNamedNotMisreportedAsTorn) {
    const std::string path = "/tmp/lulesh_chain_shape.ckpt";
    std::remove(path.c_str());

    domain d(small_opts());
    lulesh::write_chain_file(
        path, {pack_one(d, lulesh::full_coverage(d), /*base=*/true)});

    // Loading into a differently-sized mesh must say "shape", not claim
    // the (perfectly committed) base record is missing.
    auto other_opts = small_opts();
    other_opts.size += 2;
    domain other(other_opts);
    try {
        lulesh::load_checkpoint_file(other, path);
        FAIL() << "expected checkpoint_error";
    } catch (const lulesh::checkpoint_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
        EXPECT_NE(msg.find("does not match this domain's shape"),
                  std::string::npos)
            << msg;
    }
    std::remove(path.c_str());
}

TEST(CheckpointErrors, CorruptFileReportsPathCycleAndBothCrcs) {
    const std::string path = "/tmp/lulesh_ckpt_errctx.ckpt";
    std::remove(path.c_str());

    domain d(small_opts());
    lulesh::serial_driver drv;
    lulesh::run_simulation(d, drv, 3);
    lulesh::save_checkpoint_file(d, path);
    {
        // Flip one payload byte (the payload is everything after the fixed
        // header, so the last byte is always payload).
        std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
        f.seekg(-1, std::ios::end);
        char b = 0;
        f.get(b);
        f.seekp(-1, std::ios::end);
        f.put(static_cast<char>(b ^ 0x10));
    }

    domain restored(small_opts());
    try {
        lulesh::load_checkpoint_file(restored, path);
        FAIL() << "expected checkpoint_error";
    } catch (const lulesh::checkpoint_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
        EXPECT_NE(msg.find("cycle 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("expected 0x"), std::string::npos) << msg;
        EXPECT_NE(msg.find("actual 0x"), std::string::npos) << msg;
    }
    std::remove(path.c_str());
}

// ---------------- restart-from-chain, all four drivers ----------------

void chain_restart_roundtrip(lulesh::driver& drv, const std::string& tag) {
    const std::string path = "/tmp/lulesh_chain_restart_" + tag + ".ckpt";
    std::remove(path.c_str());

    domain plain(small_opts());
    lulesh::run_simulation(plain, drv, 24);

    domain res(small_opts());
    resilience_options opt;
    opt.checkpoint_every = 4;
    opt.checkpoint_path = path;
    const auto rr = lulesh::run_resilient(res, drv, opt, 12);
    ASSERT_EQ(rr.result.run_status, lulesh::status::ok);

    // The mirror is a chain (base + deltas); restoring it and resuming
    // with the plain loop must be bitwise identical to never stopping.
    domain resumed(small_opts());
    lulesh::load_checkpoint_file(resumed, path);
    EXPECT_EQ(resumed.cycle, 12);
    lulesh::run_simulation(resumed, drv, 24);
    EXPECT_EQ(lulesh::max_field_difference(plain, resumed), 0.0);
    EXPECT_EQ(serialized(resumed), serialized(plain));
    std::remove(path.c_str());
}

TEST(ChainRestart, SerialDriverIsBitwise) {
    lulesh::serial_driver drv;
    chain_restart_roundtrip(drv, "serial");
}

TEST(ChainRestart, ParallelForDriverIsBitwise) {
    ompsim::team team(2);
    lulesh::parallel_for_driver drv(team);
    chain_restart_roundtrip(drv, "parallel_for");
}

TEST(ChainRestart, ForeachDriverIsBitwise) {
    amt::runtime rt(2);
    lulesh::foreach_driver drv(rt);
    chain_restart_roundtrip(drv, "foreach");
}

TEST(ChainRestart, TaskGraphDriverIsBitwise) {
    amt::runtime rt(2);
    lulesh::taskgraph_driver drv(rt, {256, 256});
    chain_restart_roundtrip(drv, "taskgraph");
}

// ---------------- resilient-loop modes ----------------

TEST(ResilientChain, EntrySnapshotOnlyModeRecoversFromStart) {
    fault_guard guard;
    domain plain(small_opts());
    lulesh::serial_driver d0;
    lulesh::run_simulation(plain, d0, 12);

    amt::fault::plan p;
    p.site = "advance";
    p.epoch = 6;
    p.max_injections = 1;
    amt::fault::arm(p);

    domain res(small_opts());
    lulesh::serial_driver drv;
    resilience_options opt;
    opt.checkpoint_every = 0;  // documented: entry-snapshot-only mode
    const auto rr = lulesh::run_resilient(res, drv, opt, 12);
    amt::fault::disarm();

    EXPECT_EQ(rr.result.run_status, lulesh::status::ok);
    EXPECT_EQ(rr.rollbacks, 1);
    EXPECT_EQ(rr.checkpoints, 0);  // only the (uncounted) entry snapshot
    EXPECT_EQ(rr.dt_halvings, 0);
    EXPECT_EQ(lulesh::max_field_difference(plain, res), 0.0);
    EXPECT_EQ(serialized(res), serialized(plain));
}

TEST(ResilientChain, PeriodicRebaseKeepsTheMirrorLoadable) {
    const std::string path = "/tmp/lulesh_chain_rebase.ckpt";
    std::remove(path.c_str());

    domain res(small_opts());
    lulesh::serial_driver drv;
    resilience_options opt;
    opt.checkpoint_every = 1;
    opt.rebase_every = 3;  // chain never grows past 3 records
    opt.checkpoint_path = path;
    const auto rr = lulesh::run_resilient(res, drv, opt, 10);
    EXPECT_EQ(rr.result.run_status, lulesh::status::ok);
    EXPECT_EQ(rr.checkpoints, 10);

    domain restored(small_opts());
    lulesh::load_checkpoint_file(restored, path);
    EXPECT_EQ(restored.cycle, 10);
    EXPECT_EQ(serialized(restored), serialized(res));
    std::remove(path.c_str());
}

TEST(ResilientChain, OverlappedPackingSurvivesAFaultedPackTask) {
    fault_guard guard;
    domain plain(small_opts());
    {
        amt::runtime rt(2);
        lulesh::taskgraph_driver drv(rt, {256, 256});
        lulesh::run_simulation(plain, drv, 20);
    }

    // Kill one checkpoint pack task.  The iteration must still succeed
    // (packing is off the failure path); the capture is dropped, its
    // regions re-marked dirty, and the run stays bitwise correct.
    amt::fault::plan p;
    p.site = "ckpt.pack";
    p.epoch = 9;  // packs of the cycle-8 capture run inside cycle 9
    p.max_injections = 1;
    amt::fault::arm(p);

    domain res(small_opts());
    {
        amt::runtime rt(2);
        lulesh::taskgraph_driver drv(rt, {256, 256});
        resilience_options opt;
        opt.checkpoint_every = 4;
        const auto rr = lulesh::run_resilient(res, drv, opt, 20);
        EXPECT_EQ(rr.result.run_status, lulesh::status::ok);
        EXPECT_EQ(rr.rollbacks, 0);
    }
    amt::fault::disarm();

    EXPECT_EQ(amt::fault::snapshot().injections, 1u);
    EXPECT_EQ(lulesh::max_field_difference(plain, res), 0.0);
    EXPECT_EQ(serialized(res), serialized(plain));
}

}  // namespace
