// lulesh/driver_parallel_for.hpp
//
// The OpenMP-reference baseline: every reference parallel loop becomes one
// statically-scheduled ompsim loop with an implicit barrier — ~30 distinct
// loops per leapfrog iteration, plus ~20 loops per region per EOS
// repetition, exactly the synchronization structure whose overhead the
// paper's task-based approach removes.

#pragma once

#include "lulesh/driver.hpp"
#include "lulesh/kernels.hpp"
#include "ompsim/ompsim.hpp"

namespace lulesh {

class parallel_for_driver final : public driver {
public:
    /// The team is borrowed; it must outlive the driver.  One driver per
    /// team (scratch buffers are per-driver).
    explicit parallel_for_driver(ompsim::team& team) : team_(team) {}

    [[nodiscard]] std::string name() const override { return "parallel_for"; }
    void advance(domain& d) override;

    [[nodiscard]] ompsim::team& team() noexcept { return team_; }

private:
    ompsim::team& team_;

    // Persistent global scratch mirroring the reference's temporaries.
    std::vector<real_t> sigxx_, sigyy_, sigzz_;
    std::vector<real_t> dvdx_, dvdy_, dvdz_, x8n_, y8n_, z8n_;
    std::vector<real_t> determ_;
    kernels::eos_scratch eos_;
};

}  // namespace lulesh
