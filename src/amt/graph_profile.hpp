// amt/graph_profile.hpp
//
// Critical-path analysis over a sealed static_graph whose nodes carry
// profiling accumulators (static_graph::set_profiling).  The analyzer is a
// pure topology walk — run it while the graph is quiescent, any time after
// one or more profiled replays:
//
//   * per-node mean cost  = accum_ns / timed_runs (recycled nodes integrate
//     across replays, so means tighten as iterations accumulate);
//   * work                = Σ mean over all nodes — one iteration's total
//     compute, the numerator of the speedup bound;
//   * critical path       = the longest mean-weighted dependency chain,
//     found by a Kahn-order DP (dist[v] = mean[v] + max over predecessors);
//     no schedule, however many workers it has, can finish an iteration
//     faster than this;
//   * ideal speedup       = work / critical_path — the graph-shape bound on
//     parallelism (Brent's bound with p → ∞), the cost signal ROADMAP
//     item 5's online autotuner ranks partition candidates by.
//
// Everything is O(nodes + edges) and allocation is confined to the result;
// the hot replay path is untouched.  core/critical_path.{hpp,cpp} layers
// the LULESH phase semantics (per-phase slack, barrier attribution) on top
// of this runtime-generic core.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "amt/static_graph.hpp"

namespace amt {

/// One node's cost summary inside a graph_profile.
struct profiled_node {
    static_graph::node_id id = 0;
    const char* label = "node";
    std::int32_t arg = -1;
    std::uint64_t total_ns = 0;  ///< accumulated over all profiled runs
    std::uint64_t runs = 0;      ///< profiled runs contributing to total_ns
    double mean_ns = 0.0;        ///< total_ns / runs (0 when never timed)
    bool on_critical_path = false;
};

struct graph_profile {
    std::vector<profiled_node> nodes;     ///< indexed by node id
    std::vector<static_graph::node_id> critical_path;  ///< root → sink
    double work_ns = 0.0;           ///< Σ mean over nodes (one iteration)
    double critical_path_ns = 0.0;  ///< longest mean-weighted chain
    double ideal_speedup = 0.0;     ///< work / critical path (1.0 if empty)

    /// The k most expensive nodes by mean cost, descending — the "where
    /// would speeding up one task help" list for reports and the autotuner.
    [[nodiscard]] std::vector<profiled_node> top(std::size_t k) const;
};

/// Analyzes a sealed, quiescent graph.  Nodes that were never profiled
/// weigh zero (the structure still contributes to path length through
/// their edges).
[[nodiscard]] graph_profile profile_graph(const static_graph& g);

}  // namespace amt
