// dist/checkpoint_dist.cpp — per-slab v3 checkpoint chains.

#include "dist/checkpoint_dist.hpp"

#include <string>
#include <utility>
#include <vector>

#include "lulesh/checkpoint.hpp"
#include "lulesh/checkpoint_chain.hpp"

namespace lulesh::dist {

namespace {

/// Packs one record of `d` synchronously (the dist layer does not overlap
/// packing yet — the slab drivers would each need their own pack waves).
std::string pack_record(const domain& d, bool base) {
    state_capture cap(d, full_coverage(d), base);
    cap.pack_remaining();
    cap.wait_packed();
    return cap.take_record();
}

}  // namespace

std::string slab_chain_path(const std::string& path, index_t i) {
    return path + ".slab" + std::to_string(i);
}

void save_cluster_chains(cluster& c, const std::string& path) {
    for (index_t i = 0; i < c.num_slabs(); ++i) {
        write_chain_file(slab_chain_path(path, i),
                         {pack_record(c.slab(i), /*base=*/true)});
    }
}

void append_cluster_deltas(cluster& c, const std::string& path) {
    for (index_t i = 0; i < c.num_slabs(); ++i) {
        append_chain_record_file(slab_chain_path(path, i),
                                 pack_record(c.slab(i), /*base=*/false));
    }
}

void load_cluster_chains(cluster& c, const std::string& path) {
    for (index_t i = 0; i < c.num_slabs(); ++i) {
        load_checkpoint_file(c.slab(i), slab_chain_path(path, i));
    }
}

}  // namespace lulesh::dist
