// ompsim/ompsim.hpp — umbrella header for the ompsim fork-join runtime.

#pragma once

#include "ompsim/team.hpp"
