// lulesh/driver_openmp.cpp — real-OpenMP driver (optional build).
//
// Each reference loop is an `omp parallel` region whose threads run the
// chunk kernel on their static slice — the same contiguous chunking the
// ompsim driver uses, so results are bitwise identical across all drivers.

#include <omp.h>


#include "amt/atomic.hpp"
#include "lulesh/driver_openmp.hpp"

namespace lulesh {

namespace {
namespace k = kernels;

/// Contiguous static chunk of [0, n) for this OpenMP thread.
std::pair<index_t, index_t> my_chunk(index_t n) {
    const auto p = static_cast<index_t>(omp_get_num_threads());
    const auto t = static_cast<index_t>(omp_get_thread_num());
    const index_t base = n / p;
    const index_t rem = n % p;
    const index_t lo = t * base + std::min(t, rem);
    return {lo, lo + base + (t < rem ? 1 : 0)};
}

}  // namespace

openmp_driver::openmp_driver(std::size_t num_threads) : threads_(num_threads) {
    if (threads_ == 0) {
        threads_ = static_cast<std::size_t>(omp_get_max_threads());
    }
}

void openmp_driver::advance(domain& d) {
    const index_t ne = d.numElem();
    const index_t nn = d.numNode();
    const real_t dt = d.deltatime;
    const int nthreads = static_cast<int>(threads_);

    const auto nes = static_cast<std::size_t>(ne);
    sigxx_.resize(nes);
    sigyy_.resize(nes);
    sigzz_.resize(nes);
    dvdx_.resize(nes * 8);
    dvdy_.resize(nes * 8);
    dvdz_.resize(nes * 8);
    x8n_.resize(nes * 8);
    y8n_.resize(nes * 8);
    z8n_.resize(nes * 8);
    determ_.resize(nes);

    amt::atomic<bool> ok{true};
    auto require = [&ok](status code, const char* what) {
        if (!ok.load(amt::memory_order_relaxed)) {
            throw simulation_error(code, what);
        }
    };
    // One work-sharing loop per reference loop; OpenMP's implicit region-end
    // barrier supplies the synchronization.
    auto pf = [&](index_t n, auto&& body) {
#pragma omp parallel num_threads(nthreads)
        {
            const auto [lo, hi] = my_chunk(n);
            body(lo, hi);
        }
    };

    // ---------------- LagrangeNodal ----------------
    pf(ne, [&](index_t lo, index_t hi) {
        k::init_stress_terms(d, lo, hi, sigxx_.data(), sigyy_.data(),
                             sigzz_.data());
    });
    pf(ne, [&](index_t lo, index_t hi) {
        if (!k::integrate_stress(d, lo, hi, sigxx_.data(), sigyy_.data(),
                                 sigzz_.data())) {
            ok.store(false, amt::memory_order_relaxed);
        }
    });
    require(status::volume_error, "non-positive Jacobian in stress integration");

    pf(ne, [&](index_t lo, index_t hi) {
        if (!k::calc_hourglass_control(d, lo, hi, dvdx_.data(), dvdy_.data(),
                                       dvdz_.data(), x8n_.data(), y8n_.data(),
                                       z8n_.data(), determ_.data())) {
            ok.store(false, amt::memory_order_relaxed);
        }
    });
    require(status::volume_error, "non-positive volume in hourglass control");

    if (d.hgcoef > real_t(0.0)) {
        pf(ne, [&](index_t lo, index_t hi) {
            k::calc_fb_hourglass_force(d, lo, hi, dvdx_.data(), dvdy_.data(),
                                       dvdz_.data(), x8n_.data(), y8n_.data(),
                                       z8n_.data(), determ_.data(), d.hgcoef);
        });
    }

    pf(nn, [&](index_t lo, index_t hi) { k::gather_forces(d, lo, hi); });
    pf(nn, [&](index_t lo, index_t hi) { k::calc_acceleration(d, lo, hi); });

#pragma omp parallel num_threads(nthreads)
    {
        // One region, three nowait-style loops (reference BC structure).
        {
            const auto [lo, hi] = my_chunk(static_cast<index_t>(d.symmX.size()));
            k::apply_acceleration_bc_x(d, lo, hi);
        }
        {
            const auto [lo, hi] = my_chunk(static_cast<index_t>(d.symmY.size()));
            k::apply_acceleration_bc_y(d, lo, hi);
        }
        {
            const auto [lo, hi] = my_chunk(static_cast<index_t>(d.symmZ.size()));
            k::apply_acceleration_bc_z(d, lo, hi);
        }
    }

    pf(nn, [&](index_t lo, index_t hi) { k::calc_velocity(d, lo, hi, dt); });
    pf(nn, [&](index_t lo, index_t hi) { k::calc_position(d, lo, hi, dt); });

    // ---------------- LagrangeElements ----------------
    pf(ne, [&](index_t lo, index_t hi) { k::calc_kinematics(d, lo, hi, dt); });
    pf(ne, [&](index_t lo, index_t hi) {
        if (!k::calc_lagrange_deviatoric(d, lo, hi)) {
            ok.store(false, amt::memory_order_relaxed);
        }
    });
    require(status::volume_error, "non-positive new volume in kinematics");

    pf(ne, [&](index_t lo, index_t hi) {
        k::calc_monotonic_q_gradients(d, lo, hi);
    });
    for (index_t r = 0; r < d.numReg(); ++r) {
        const auto& list = d.regElemList(r);
        pf(static_cast<index_t>(list.size()), [&](index_t lo, index_t hi) {
            k::calc_monotonic_q_region(d, list.data(), lo, hi);
        });
    }
    pf(ne, [&](index_t lo, index_t hi) {
        if (!k::check_qstop(d, lo, hi)) {
            ok.store(false, amt::memory_order_relaxed);
        }
    });
    require(status::qstop_error, "artificial viscosity exceeded qstop");

    pf(ne, [&](index_t lo, index_t hi) {
        if (!k::apply_material_vnewc(d, lo, hi)) {
            ok.store(false, amt::memory_order_relaxed);
        }
    });
    require(status::volume_error, "relative volume out of EOS range");

    for (index_t r = 0; r < d.numReg(); ++r) {
        const auto& list = d.regElemList(r);
        const auto count = static_cast<index_t>(list.size());
        if (count == 0) continue;
        eos_.resize(static_cast<std::size_t>(count));
        const index_t* lp = list.data();
        const int rep = k::eos_rep_for_region(d, r);
        for (int j = 0; j < rep; ++j) {
            pf(count, [&](index_t lo, index_t hi) { k::eos_gather_e(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::eos_gather_delv(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::eos_gather_p(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::eos_gather_q(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::eos_gather_qq_ql(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::eos_compression(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::eos_clamp_vmin(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::eos_clamp_vmax(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::eos_zero_work(lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::energy_step1(d, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) {
                k::pressure_bvc(lo, hi, eos_.comp_half_step.data(),
                                eos_.bvc.data(), eos_.pbvc.data());
            });
            pf(count, [&](index_t lo, index_t hi) {
                k::pressure_p(d, lp, lo, hi, eos_.p_half_step.data(),
                              eos_.bvc.data(), eos_.e_new.data());
            });
            pf(count, [&](index_t lo, index_t hi) { k::energy_q_half(d, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::energy_step2(d, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) {
                k::pressure_bvc(lo, hi, eos_.compression.data(),
                                eos_.bvc.data(), eos_.pbvc.data());
            });
            pf(count, [&](index_t lo, index_t hi) {
                k::pressure_p(d, lp, lo, hi, eos_.p_new.data(),
                              eos_.bvc.data(), eos_.e_new.data());
            });
            pf(count, [&](index_t lo, index_t hi) { k::energy_step3(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) {
                k::pressure_bvc(lo, hi, eos_.compression.data(),
                                eos_.bvc.data(), eos_.pbvc.data());
            });
            pf(count, [&](index_t lo, index_t hi) {
                k::pressure_p(d, lp, lo, hi, eos_.p_new.data(),
                              eos_.bvc.data(), eos_.e_new.data());
            });
            pf(count, [&](index_t lo, index_t hi) { k::energy_q_final(d, lp, lo, hi, eos_); });
        }
        pf(count, [&](index_t lo, index_t hi) { k::eos_store(d, lp, lo, hi, eos_); });
        pf(count, [&](index_t lo, index_t hi) { k::eos_sound_speed(d, lp, lo, hi, eos_); });
    }

    pf(ne, [&](index_t lo, index_t hi) { k::update_volumes(d, lo, hi); });

    // ---------------- time constraints ----------------
    kernels::dt_constraints combined;
    for (index_t r = 0; r < d.numReg(); ++r) {
        const auto& list = d.regElemList(r);
        const auto count = static_cast<index_t>(list.size());
        real_t dtc = real_t(1.0e20);
        real_t dth = real_t(1.0e20);
#pragma omp parallel num_threads(nthreads) reduction(min : dtc, dth)
        {
            const auto [lo, hi] = my_chunk(count);
            const auto local = k::calc_time_constraints(d, list.data(), lo, hi);
            dtc = std::min(dtc, local.dtcourant);
            dth = std::min(dth, local.dthydro);
        }
        combined = k::min_constraints(combined, {dtc, dth});
    }
    d.dtcourant = combined.dtcourant;
    d.dthydro = combined.dthydro;
}

}  // namespace lulesh
