#!/usr/bin/env python3
"""Summarize benchmark CSV rows into paper-style tables.

The analogue of the paper artifact's generate-graphs.py, kept text-only so
it runs without plotting dependencies.  Feed it any mix of the results/*.txt
files produced by the bench binaries (they interleave human-readable tables
with machine-readable lines starting with "CSV,<experiment>,...").

Two JSON observability artifacts are also understood and rendered when
passed alongside the text files: the critical-path report
(`lulesh_app --critical-path-report=cp.json`) and the metrics reporter's
JSON-lines file (`--metrics=metrics.json`); the last snapshot of the
latter is summarized.

Usage:
    python3 scripts/generate_tables.py results/*.txt [cp.json metrics.json]
"""

import json
import sys
from collections import defaultdict


def classify_json(path):
    """(kind, payload) for the two JSON observability artifacts; (None, None)
    for plain CSV/text files."""
    try:
        with open(path, encoding="utf-8") as fh:
            first = fh.readline().strip()
        if not first.startswith("{"):
            return None, None
        doc = json.loads(first)
    except (OSError, json.JSONDecodeError):
        return None, None
    if doc.get("experiment") == "critical_path":
        return "critical_path", doc
    if "ts_ms" in doc and "histograms" in doc:
        # Metrics reporter JSON lines: keep the final (cumulative) snapshot.
        last = doc
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    last = json.loads(line)
        return "metrics", last
    return None, None


def load_rows(paths):
    rows = defaultdict(list)
    json_docs = []
    for path in paths:
        kind, doc = classify_json(path)
        if kind is not None:
            json_docs.append((kind, doc))
            continue
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line.startswith("CSV,"):
                    continue
                parts = line.split(",")
                rows[parts[1]].append(parts[2:])
    return rows, json_docs


def fmt(value, width=10):
    try:
        return f"{float(value):{width}.4g}"
    except ValueError:
        return f"{value:>{width}}"


def table(title, header, data):
    print(f"\n### {title}")
    print("  " + "  ".join(f"{h:>10}" for h in header))
    for row in data:
        print("  " + "  ".join(fmt(v) for v in row))


def summarize_fig9(rows):
    # size, threads, omp_s, task_s, speedup
    table("Figure 9 — runtime vs threads (speed-up = omp/task)",
          ["size", "threads", "omp(s)", "task(s)", "speedup"], rows)
    best = defaultdict(lambda: (0.0, None))
    for size, threads, _, _, speedup in rows:
        if float(speedup) > best[size][0]:
            best[size] = (float(speedup), threads)
    print("  best speed-up per size:")
    for size, (s, threads) in sorted(best.items(), key=lambda kv: int(kv[0])):
        print(f"    size {size}: {s:.2f}x at {threads} threads")


def summarize_fig10(rows):
    # size, regions, threads, omp_s, task_s, speedup
    table("Figure 10 — speed-up vs regions",
          ["size", "regions", "threads", "omp(s)", "task(s)", "speedup"], rows)
    sizes = sorted({r[0] for r in rows}, key=int)
    print("  speed-up trend with region count:")
    for size in sizes:
        ordered = sorted((r for r in rows if r[0] == size), key=lambda r: int(r[1]))
        trend = " -> ".join(f"{float(r[5]):.2f}x@r{r[1]}" for r in ordered)
        print(f"    size {size}: {trend}")


def summarize_fig11(rows):
    # size, threads, omp_ratio, task_ratio
    table("Figure 11 — productive-time ratio",
          ["size", "threads", "omp", "task"], rows)
    for size, _, omp, task in rows:
        gap = float(task) / float(omp) if float(omp) > 0 else float("inf")
        print(f"    size {size}: task graph {gap:.2f}x more productive")


def summarize_phase_breakdown(title, rows):
    # phase, workers, window_s, productive_s, steal_s, idle_s, barrier_s,
    # tasks, steals, util — one row per leapfrog phase (tracer attribution).
    table(title,
          ["phase", "workers", "window(s)", "prod(s)", "steal(s)", "idle(s)",
           "barrier(s)", "tasks", "steals", "util"], rows)
    total = sum(float(r[3]) + float(r[4]) + float(r[5]) + float(r[6])
                for r in rows)
    if total <= 0:
        return
    print("  where the worker time goes:")
    for r in sorted(rows, key=lambda r: -(float(r[4]) + float(r[5]) +
                                          float(r[6]))):
        lost = float(r[4]) + float(r[5]) + float(r[6])
        print(f"    {r[0]}: {100 * float(r[3]) / total:5.1f}% productive, "
              f"{100 * lost / total:5.1f}% lost "
              f"(steal {float(r[4]):.4g}s, idle {float(r[5]):.4g}s, "
              f"barrier {float(r[6]):.4g}s)")


def summarize_util_phase(rows):
    summarize_phase_breakdown(
        "Per-phase utilization (--utilization-report)", rows)


def summarize_fig11_phase(rows):
    # size, threads, phase, window_s, productive_s, steal_s, idle_s,
    # barrier_s, tasks, steals, util — reshape to the util_phase layout.
    for (size, threads) in sorted({(r[0], r[1]) for r in rows},
                                  key=lambda k: (int(k[0]), int(k[1]))):
        subset = [[r[2], threads] + r[3:] for r in rows
                  if r[0] == size and r[1] == threads]
        summarize_phase_breakdown(
            f"Figure 11 — per-phase breakdown (size {size}, "
            f"{threads} threads)", subset)


def summarize_table1(rows):
    # size, nodal, elems, seconds
    by_size = defaultdict(list)
    for size, nodal, elems, seconds in rows:
        by_size[size].append((int(nodal), int(elems), float(seconds)))
    print("\n### Table I — best partition sizes")
    for size in sorted(by_size, key=int):
        cells = by_size[size]
        nodal, elems, seconds = min(cells, key=lambda c: c[2])
        worst = max(cells, key=lambda c: c[2])
        print(f"  size {size}: best (nodal={nodal}, elems={elems}) at "
              f"{seconds:.4g}s; worst/best = {worst[2] / seconds:.2f}x")


def summarize_checkpoint_overhead(rows):
    # plain_ms, full_ms, incr_ms, full_pct, incr_pct — iteration cost at
    # checkpoint-every-1, incremental+overlapped vs full stop-and-copy.
    table("Checkpoint overhead at every-cycle cadence (budget: incr < 5%)",
          ["plain(ms)", "full(ms)", "incr(ms)", "full(%)", "incr(%)"], rows)
    for plain, _, _, full_pct, incr_pct in rows:
        saved = float(full_pct) - float(incr_pct)
        print(f"    incremental checkpointing saves {saved:.2f}% of the "
              f"{float(plain):.3g} ms/iter baseline vs a full snapshot")


def summarize_dist_recovery(rows):
    # size, slabs, base_s, armed_s, overhead_pct, mttr_ms, recoveries —
    # fault-free run vs a run with an injected slab_kill that the resilient
    # driver rolls back and replays (bench/dist_recovery).
    table("Distributed recovery — slab_kill rollback cost (MTTR + overhead)",
          ["size", "slabs", "base(s)", "armed(s)", "overhead%", "mttr(ms)",
           "recoveries"], rows)
    for size, slabs, base, armed, overhead, mttr, recoveries in rows:
        per = float(mttr) / float(recoveries) if float(recoveries) > 0 else 0.0
        print(f"    size {size} x {slabs} slabs: {recoveries} recovery(ies), "
              f"{per:.1f} ms MTTR each, run stretched "
              f"{float(armed) - float(base):.3g}s "
              f"({float(overhead):.1f}%) over the fault-free baseline")


def summarize_replay_gate(rows):
    # workers, iters, build_ns_task, replay_ns_task, ratio, build_allocs_iter,
    # replay_allocs_iter — bench/micro_runtime --replay-gate (ctest -L perf).
    table("Compiled-graph replay vs per-iteration build "
          "(gate: ratio >= 1.15, replay allocs = 0)",
          ["workers", "iters", "build ns/t", "replay ns/t", "ratio",
           "build a/it", "replay a/it"], rows)
    for workers, _, _, _, ratio, build_ai, replay_ai in rows:
        verdict = ("PASS" if float(ratio) >= 1.15 and float(replay_ai) == 0
                   else "FAIL")
        print(f"    {workers} workers: replay {float(ratio):.2f}x faster, "
              f"eliminates {float(build_ai):.0f} allocs/iteration "
              f"({verdict})")


def summarize_metrics_overhead(rows):
    # ns_per_probe, iter_ms, tasks_per_iter, disarmed_pct, armed_pct —
    # bench/metrics_overhead's budgets (disarmed < 1%, armed < 3%).
    table("Metrics registry overhead (budget: disarmed < 1%, armed < 3%)",
          ["probe(ns)", "iter(ms)", "tasks/it", "disarmed%", "armed%"], rows)
    for probe, _, tasks, disarmed, armed in rows:
        print(f"    {float(tasks):.0f} tasks x 3 probes at "
              f"{float(probe):.3g} ns bill {float(disarmed):.4f}% disarmed; "
              f"armed run paid {float(armed):.2f}%")


def summarize_critical_path(doc):
    # The JSON twin of `lulesh_app --critical-path-report` (exact integer-ns
    # agreement with the text form is checked by validate_critical_path.py).
    print(f"\n### Critical path — {doc['iterations']} profiled iterations, "
          f"{doc['workers']} workers, {doc['nodes']} nodes")
    work = doc["work_ns"]
    print(f"  work {work / 1e6:.3f} ms/iter, critical path "
          f"{doc['critical_path_ns'] / 1e6:.3f} ms over "
          f"{doc['critical_path_len']} nodes, ideal speedup "
          f"{doc['ideal_speedup']:.4f}x")
    table("per-phase chain analysis",
          ["phase", "tasks", "work(ms)", "chain(ms)", "parallel", "slack(ms)"],
          [[ph["name"], ph["tasks"], ph["work_ns"] / 1e6,
            ph["chain_ns"] / 1e6, ph["parallelism"], ph["slack_ns"] / 1e6]
           for ph in doc["phases"]])
    bound = [ph for ph in doc["phases"] if ph["slack_ns"] > 0]
    for ph in sorted(bound, key=lambda p: -p["slack_ns"]):
        print(f"    {ph['name']}: chain-bound, {ph['slack_ns'] / 1e6:.3f} "
              f"ms/iter unrecoverable by load balancing (split partitions)")


def summarize_metrics_snapshot(doc):
    # Final snapshot of a --metrics JSON-lines file (amt::metrics registry).
    print(f"\n### Metrics snapshot — uptime {doc['uptime_ns'] / 1e9:.2f}s")
    counters = {k: v for k, v in doc.get("counters", {}).items() if v}
    for name in sorted(counters):
        print(f"  {name:<44} {counters[name]}")
    for name in sorted(doc.get("gauges", {})):
        print(f"  {name:<44} {doc['gauges'][name]} (gauge)")
    for name in sorted(doc.get("histograms", {})):
        h = doc["histograms"][name]
        if h["count"] == 0:
            continue
        mean = h["sum"] / h["count"]
        # Buckets are log2: bucket b holds values < 2^b; report the p99
        # bucket bound, the tail signal the registry exists to surface.
        total, seen, p99 = h["count"], 0, 0
        for b, c in enumerate(h["buckets"]):
            seen += c
            if seen >= 0.99 * total:
                p99 = (1 << b) - 1 if b else 0
                break
        print(f"  {name:<44} n={h['count']} mean={mean:.3g} p99<={p99}")


def summarize_generic(name, rows):
    if not rows:
        return
    width = max(len(r) for r in rows)
    table(name, [f"c{i}" for i in range(width)], rows)


def main(paths):
    if not paths:
        print(__doc__)
        return 1
    rows, json_docs = load_rows(paths)
    if not rows and not json_docs:
        print("no CSV rows found in the given files")
        return 1
    handlers = {
        "fig9": summarize_fig9,
        "fig10": summarize_fig10,
        "fig11": summarize_fig11,
        "fig11_phase": summarize_fig11_phase,
        "util_phase": summarize_util_phase,
        "table1": summarize_table1,
        "checkpoint_overhead": summarize_checkpoint_overhead,
        "dist_recovery": summarize_dist_recovery,
        "replay_gate": summarize_replay_gate,
        "metrics_overhead": summarize_metrics_overhead,
    }
    for name in sorted(rows):
        handler = handlers.get(name)
        if handler:
            handler(rows[name])
        else:
            summarize_generic(name, rows[name])
    for kind, doc in json_docs:
        if kind == "critical_path":
            summarize_critical_path(doc)
        else:
            summarize_metrics_snapshot(doc)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
