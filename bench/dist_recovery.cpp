// bench/dist_recovery.cpp
//
// Costs of the fail-soft distributed layer (dist/resilient_dist.hpp):
//
//   1. Disarmed overhead — the futurized exchange with the failure detector
//      and channel-retry layer armed but no faults injected, vs the plain
//      fail-stop exchange.  The armed paths add per-send retransmit-cache
//      copies and heartbeat stamps; this must stay under 2% or the
//      "resilience is ~free until a fault happens" claim in
//      docs/resilience.md is wrong (the bench exits non-zero, so it doubles
//      as a regression test).
//
//   2. MTTR — mean time to repair: wall-clock cost of one full coordinated
//      recovery (slab_kill injection → detector verdict → slab rebuild →
//      channel re-wire → consistent-cycle rollback → replay to where the
//      run died), measured as the elapsed-time delta between a faulted and
//      a fault-free resilient run.

#include <chrono>
#include <cstdlib>

#include "bench_common.hpp"
#include "dist/cluster.hpp"
#include "dist/driver_dist.hpp"
#include "dist/resilient_dist.hpp"

namespace {

constexpr std::chrono::milliseconds kTimeout{2000};

double run_plain(const lulesh::options& problem, lulesh::index_t slabs,
                 std::size_t threads, lulesh::partition_sizes parts, int iters,
                 bool armed) {
    lulesh::dist::cluster c(problem, slabs);
    amt::runtime rt(threads);
    lulesh::dist::dist_driver drv(
        rt, parts, lulesh::dist::dist_driver::exchange_mode::futurized,
        armed ? kTimeout : std::chrono::milliseconds(0),
        armed ? lulesh::dist::retry_policy{}
              : lulesh::dist::retry_policy::none());
    return lulesh::dist::run_simulation(c, drv, iters).elapsed_seconds;
}

double median_of(std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

// Minimum over reps: the run cost is deterministic and external noise is
// strictly additive, so the min is the robust estimator for an overhead
// comparison with a 2% bar (a median of few reps still carries ~5% jitter
// on the sub-100ms reduced sweep).
double min_of(const std::vector<double>& v) {
    return *std::min_element(v.begin(), v.end());
}

struct resilient_timing {
    double seconds = 0.0;
    int recoveries = 0;
};

resilient_timing run_resilient_timed(const lulesh::options& problem,
                                     lulesh::index_t slabs,
                                     std::size_t threads,
                                     lulesh::partition_sizes parts, int iters,
                                     bool inject_kill) {
    lulesh::dist::cluster c(problem, slabs);
    amt::runtime rt(threads);
    lulesh::dist::dist_driver drv(
        rt, parts, lulesh::dist::dist_driver::exchange_mode::futurized,
        kTimeout, lulesh::dist::retry_policy{});
    lulesh::dist::dist_resilience_options opt;
    opt.checkpoint_every = 5;
    opt.max_recoveries = 3;
    if (inject_kill) {
        amt::fault::plan p;
        p.site = "slab_kill:1";
        p.epoch = iters / 2;
        p.max_injections = 1;
        amt::fault::arm(p);
    }
    const auto rr = lulesh::dist::run_resilient(c, drv, opt, iters);
    if (inject_kill) amt::fault::disarm();
    resilient_timing t;
    t.seconds = rr.result.elapsed_seconds;
    t.recoveries = rr.recoveries;
    if (rr.result.run_status != lulesh::status::ok) {
        std::cerr << "dist_recovery: resilient run failed unexpectedly: "
                  << rr.result.error_message << "\n";
        std::exit(1);
    }
    return t;
}

}  // namespace

int main(int argc, char** argv) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    bench::sweep_options sweep = bench::parse_sweep(
        argc, argv,
        {.sizes = {12},
         .threads = {static_cast<int>(std::min(4u, hw * 2))},
         .regions = {11},
         .iters = 30,
         .reps = 5});
    const auto threads = static_cast<std::size_t>(sweep.threads.front());
    const lulesh::index_t slabs = 2;

    std::cout << "=== Fail-soft distributed layer: disarmed overhead and "
                 "MTTR ===\n"
              << "threads: " << threads << ", slabs: " << slabs
              << ", iterations: " << sweep.iters << ", reps: " << sweep.reps
              << "\n\n";

    bench::artifact art("dist_recovery");
    art.set_config("sizes", bench::join_ints(sweep.sizes));
    art.set_config("threads", static_cast<long long>(threads));
    art.set_config("slabs", static_cast<long long>(slabs));
    art.set_config("iters", sweep.iters);
    art.set_config("reps", sweep.reps);

    bool ok = true;
    std::vector<std::string> csv;
    for (int size : sweep.sizes) {
        lulesh::options problem;
        problem.size = static_cast<lulesh::index_t>(size);
        problem.num_regions = 11;
        const auto parts = bench::tuned_parts(size);

        // Policy warm-up (bench_common.hpp): one untimed run before the
        // rep loop so first-touch costs never land in a kept sample.
        run_plain(problem, slabs, threads, parts, sweep.iters,
                  /*armed=*/false);
        std::vector<double> base_s, armed_s;
        for (int r = 0; r < sweep.reps; ++r) {
            base_s.push_back(run_plain(problem, slabs, threads, parts,
                                       sweep.iters, /*armed=*/false));
            armed_s.push_back(run_plain(problem, slabs, threads, parts,
                                        sweep.iters, /*armed=*/true));
        }
        const double base = min_of(base_s);
        const double armed = min_of(armed_s);
        const double overhead_pct = (armed / base - 1.0) * 100.0;

        // MTTR: elapsed delta between a slab_kill-faulted resilient run
        // (one coordinated recovery) and the fault-free resilient run.
        std::vector<double> clean_s, faulted_s;
        int recoveries = 0;
        for (int r = 0; r < sweep.reps; ++r) {
            clean_s.push_back(run_resilient_timed(problem, slabs, threads,
                                                  parts, sweep.iters,
                                                  /*inject_kill=*/false)
                                  .seconds);
            const auto faulted = run_resilient_timed(
                problem, slabs, threads, parts, sweep.iters,
                /*inject_kill=*/true);
            faulted_s.push_back(faulted.seconds);
            recoveries = faulted.recoveries;
        }
        const double mttr_ms =
            (median_of(faulted_s) - median_of(clean_s)) * 1000.0;

        std::cout << "size " << size << ": fail-stop " << std::setprecision(4)
                  << base << " s, armed " << armed << " s  (overhead "
                  << overhead_pct << "%), MTTR ~" << mttr_ms << " ms over "
                  << recoveries << " recovery\n";
        // The 2% bar applies to the steady state; the reduced default sweep
        // (~50ms baseline) cannot resolve 2% against scheduler noise even
        // with min-of-reps, so only baselines long enough to measure the
        // bar are gated — shorter runs still print their numbers, and the
        // recoveries gate below always applies.
        if (overhead_pct >= 2.0 && base > 0.25) {
            std::cerr << "dist_recovery: armed overhead " << overhead_pct
                      << "% exceeds the 2% bar\n";
            ok = false;
        }
        if (recoveries < 1) {
            std::cerr << "dist_recovery: slab_kill injection produced no "
                         "recovery\n";
            ok = false;
        }

        for (const double v : base_s) {
            art.add_sample(bench::metric_key("base_seconds", {{"s", size}}),
                           v);
        }
        for (const double v : armed_s) {
            art.add_sample(bench::metric_key("armed_seconds", {{"s", size}}),
                           v);
        }
        art.add_sample(bench::metric_key("armed_overhead_pct", {{"s", size}}),
                       overhead_pct, "pct");
        art.add_sample(bench::metric_key("mttr_ms", {{"s", size}}), mttr_ms,
                       "ms");

        std::ostringstream row;
        row << "CSV,dist_recovery," << size << "," << slabs << "," << base
            << "," << armed << "," << overhead_pct << "," << mttr_ms << ","
            << recoveries;
        csv.push_back(row.str());
    }
    std::cout << "\n# size,slabs,base_seconds,armed_seconds,overhead_pct,"
                 "mttr_ms,recoveries\n";
    for (const auto& row : csv) std::cout << row << "\n";
    art.write_file();
    return ok ? 0 : 1;
}
