// amt/counters.hpp
//
// Per-worker performance counters, the analogue of HPX's
// /threads/idle-rate counter family that the paper uses for its Figure 11
// utilization experiment.  Each worker owns one cache-line-padded
// `worker_counters`; the runtime aggregates them into snapshots on demand.

#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "amt/atomic.hpp"
#include "amt/config.hpp"

namespace amt {

/// Monotonic clock used for all runtime-internal timing.
using clock = std::chrono::steady_clock;

/// Single-writer event counter readable from other threads.  The owning
/// thread bumps it with add(); snapshot readers do a relaxed load and
/// tolerate slight staleness.  Because only one thread ever writes, add()
/// is a relaxed load/store pair rather than a fetch_add — a plain `add`
/// instruction on x86, no lock prefix — so the counters stay free even on
/// the task-execution fast path.
class relaxed_counter {
public:
    void add(std::uint64_t v) noexcept {
        value_.store(value_.load(amt::memory_order_relaxed) + v,
                     amt::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t load() const noexcept {
        return value_.load(amt::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, amt::memory_order_relaxed); }

private:
    amt::atomic<std::uint64_t> value_{0};
};

/// Multi-writer event counter: any thread may add().  Pays the lock-prefixed
/// fetch_add, so keep these off per-task fast paths — they exist for rare
/// events (retries, recoveries) recorded from whichever thread observes them.
class shared_counter {
public:
    void add(std::uint64_t v) noexcept {
        value_.fetch_add(v, amt::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t load() const noexcept {
        return value_.load(amt::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, amt::memory_order_relaxed); }

private:
    amt::atomic<std::uint64_t> value_{0};
};

/// Process-wide resilience event counters (fail-soft distributed runs —
/// see docs/resilience.md).  Any thread may bump any field: halo retries
/// and resends happen on workers, detector verdicts and recoveries on the
/// driver thread.  Reset between runs the way tests reset fault stats.
struct resilience_counters {
    shared_counter halo_crc_failures;  ///< corrupt halo messages detected
    shared_counter halo_retries;       ///< receiver-side retry rounds begun
    shared_counter halo_resends;       ///< messages re-delivered from cache
    shared_counter halo_drops;         ///< injected in-transit message drops
    shared_counter heartbeats;         ///< liveness stamps recorded
    shared_counter slab_deaths;        ///< detector verdicts naming a slab
    shared_counter recoveries;         ///< coordinated rollbacks performed
    shared_counter entry_fallbacks;    ///< rollbacks that fell back to the
                                       ///< global entry snapshot

    void reset() noexcept {
        halo_crc_failures.reset();
        halo_retries.reset();
        halo_resends.reset();
        halo_drops.reset();
        heartbeats.reset();
        slab_deaths.reset();
        recoveries.reset();
        entry_fallbacks.reset();
    }
};

/// The process-wide resilience counter block.
inline resilience_counters& resilience() {
    static resilience_counters c;
    return c;
}

/// Counters owned by a single worker thread.  Only that worker writes them;
/// snapshot readers load each field relaxed.  Padded to a cache line so
/// counters of different workers never share one.
struct alignas(cache_line_size) worker_counters {
    relaxed_counter tasks_executed;
    relaxed_counter steals;          ///< successful steals from a victim
    relaxed_counter steal_attempts;  ///< victim probes, successful or not
    relaxed_counter productive_ns;   ///< time spent inside task bodies

    // Split of `steals` by victim locality domain (hierarchical stealing:
    // same-domain victims are probed first, cross-domain as fallback).
    relaxed_counter steals_same_domain;
    relaxed_counter steals_cross_domain;

    void reset() noexcept {
        tasks_executed.reset();
        steals.reset();
        steal_attempts.reset();
        productive_ns.reset();
        steals_same_domain.reset();
        steals_cross_domain.reset();
    }
};

/// Aggregated view over all workers at one instant.
struct counters_snapshot {
    std::uint64_t tasks_executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t steal_attempts = 0;
    std::uint64_t productive_ns = 0;
    std::uint64_t steals_same_domain = 0;
    std::uint64_t steals_cross_domain = 0;
    std::uint64_t wall_ns = 0;   ///< wall time since runtime start / last reset
    std::size_t num_workers = 0;

    /// Fraction of total worker-seconds spent executing task bodies —
    /// the quantity plotted in the paper's Figure 11.
    [[nodiscard]] double productive_ratio() const {
        const double denom =
            static_cast<double>(wall_ns) * static_cast<double>(num_workers);
        return denom > 0.0 ? static_cast<double>(productive_ns) / denom : 0.0;
    }
};

/// Difference of two snapshots taken from the same runtime, for measuring a
/// window of execution (e.g. the timed region of a benchmark).
inline counters_snapshot delta(const counters_snapshot& begin,
                               const counters_snapshot& end) {
    counters_snapshot d;
    d.tasks_executed = end.tasks_executed - begin.tasks_executed;
    d.steals = end.steals - begin.steals;
    d.steal_attempts = end.steal_attempts - begin.steal_attempts;
    d.productive_ns = end.productive_ns - begin.productive_ns;
    d.steals_same_domain = end.steals_same_domain - begin.steals_same_domain;
    d.steals_cross_domain = end.steals_cross_domain - begin.steals_cross_domain;
    d.wall_ns = end.wall_ns - begin.wall_ns;
    d.num_workers = end.num_workers;
    return d;
}

}  // namespace amt
