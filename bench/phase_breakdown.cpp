// bench/phase_breakdown.cpp
//
// Per-phase wall-time breakdown of the task-graph iteration across problem
// sizes — the analysis behind the paper's Table I choice of *separate*
// partition sizes for the LagrangeNodal and LagrangeElements phases, and its
// remark that CalcTimeConstraintsForElems is negligible next to the two
// Lagrange phases.

#include "bench_common.hpp"

int main(int argc, char** argv) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    bench::sweep_options sweep = bench::parse_sweep(
        argc, argv,
        {.sizes = {8, 12, 16, 20},
         .threads = {static_cast<int>(std::min(4u, hw * 2))},
         .regions = {11},
         .iters = 30,
         .reps = 1});
    const auto threads = static_cast<std::size_t>(sweep.threads.front());

    std::cout << "=== Phase breakdown of the task-graph iteration ===\n"
              << "threads: " << threads << ", iterations: " << sweep.iters
              << "\n\n";
    std::cout << std::left << std::setw(6) << "size";
    for (std::size_t p = 0; p < lulesh::phase_profile::num_phases; ++p) {
        std::cout << std::setw(13) << lulesh::phase_profile::name(p);
    }
    std::cout << "\n";

    bench::artifact art("phase_breakdown");
    art.set_config("sizes", bench::join_ints(sweep.sizes));
    art.set_config("threads", static_cast<long long>(threads));
    art.set_config("iters", sweep.iters);

    std::vector<std::string> csv;
    for (int size : sweep.sizes) {
        lulesh::options problem;
        problem.size = static_cast<lulesh::index_t>(size);
        problem.num_regions = 11;
        lulesh::domain dom(problem);
        amt::runtime rt(threads);
        lulesh::taskgraph_driver drv(rt, bench::tuned_parts(size));
        // Policy warm-up: the first run pays graph compilation and
        // first-touch faults; the profiled run below starts hot.
        lulesh::run_simulation(dom, drv, sweep.iters);
        lulesh::domain dom2(problem);
        drv.reset_profile();
        lulesh::run_simulation(dom2, drv, sweep.iters);

        const auto& prof = drv.profile();
        std::cout << std::left << std::setw(6) << size;
        std::ostringstream row;
        row << "CSV,phase," << size;
        for (std::size_t p = 0; p < lulesh::phase_profile::num_phases; ++p) {
            const double pct =
                100.0 * prof.share(static_cast<lulesh::phase_profile::phase>(p));
            std::ostringstream cell;
            cell << std::fixed << std::setprecision(1) << pct << "%";
            std::cout << std::setw(13) << cell.str();
            row << "," << prof.seconds[p];
            art.add_sample(
                bench::metric_key(std::string("phase_seconds/") +
                                      lulesh::phase_profile::name(p),
                                  {{"s", size}}),
                prof.seconds[p]);
        }
        std::cout << "\n";
        csv.push_back(row.str());
    }
    std::cout << "\n# size,force_s,node_s,elem_s,region_eos_s,constraints_s\n";
    for (const auto& row : csv) std::cout << row << "\n";
    art.write_file();
    return 0;
}
