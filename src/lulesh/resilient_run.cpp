// lulesh/resilient_run.cpp — rollback-and-retry iteration loop over an
// incremental checkpoint chain.

#include "lulesh/resilient_run.hpp"

#include <chrono>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "amt/fault.hpp"
#include "lulesh/checkpoint.hpp"
#include "lulesh/checkpoint_chain.hpp"
#include "lulesh/kernels.hpp"

namespace lulesh {

namespace {

std::string describe_failure(const char* what, int cycle, real_t dt,
                             int retries) {
    std::ostringstream os;
    os << what << " (cycle " << cycle << ", dt " << dt << "; " << retries
       << " retries exhausted)";
    return os.str();
}

}  // namespace

resilient_result run_resilient(domain& d, driver& drv,
                               const resilience_options& opt,
                               int max_cycles) {
    resilient_result rr;
    const auto t0 = std::chrono::steady_clock::now();

    // The in-memory chain: a base record followed by committed deltas.
    // Rollback replays the longest valid prefix, so "fall back to the
    // previous snapshot" is simply dropping a corrupt tail — the chain
    // subsumes the v2 latest/previous snapshot pair.
    std::vector<std::string> chain;
    dirty_tracker dirty;

    // Retired record buffers, recycled into new captures.  Every re-base
    // frees a chain's worth of large allocations; without reuse each
    // capture faults in fresh pages (the chain keeps the old ones alive),
    // which at checkpoint-every-1 costs more than the packing itself.
    std::vector<std::string> spare;
    const auto spare_buffer = [&]() -> std::string {
        if (spare.empty()) return {};
        std::string buf = std::move(spare.back());
        spare.pop_back();
        return buf;
    };
    const auto retire = [&](std::vector<std::string>&& old) {
        for (std::string& s : old) spare.push_back(std::move(s));
        old.clear();
    };

    // The capture whose packing may still be overlapped with compute.  Its
    // record is appended (and the snapshot hook run) when the next
    // checkpoint is due, on rollback, or at loop exit — always before the
    // domain is mutated by anything but the driver itself.
    std::shared_ptr<state_capture> pending;

    const auto sync_mirror = [&] {
        if (!opt.checkpoint_path.empty()) {
            write_chain_file(opt.checkpoint_path, chain);
        }
    };

    const auto finalize_pending = [&] {
        if (!pending) return;
        auto cap = std::move(pending);
        cap->pack_remaining();
        cap->wait_packed();
        if (cap->failed()) {
            // A pack task faulted: drop the capture, but hand its regions
            // back to the tracker so the next delta still covers them.
            for (std::size_t i = 0; i < cap->num_regions(); ++i) {
                const dirty_region& r = cap->region(i);
                dirty.mark(r.f, r.lo, r.hi);
            }
            return;
        }
        std::string rec = cap->take_record();
        if (opt.snapshot_hook) opt.snapshot_hook(rec);
        if (cap->is_base()) retire(std::move(chain));
        const bool rewrite = cap->is_base();
        chain.push_back(std::move(rec));
        if (!opt.checkpoint_path.empty()) {
            if (rewrite) {
                write_chain_file(opt.checkpoint_path, chain);
            } else {
                append_chain_record_file(opt.checkpoint_path, chain.back());
            }
        }
    };

    // Whatever way this function exits, no pack task may outlive it with a
    // dangling domain reference: claim and finish any in-flight capture.
    struct quiesce_guard {
        std::shared_ptr<state_capture>* p;
        ~quiesce_guard() {
            if (*p != nullptr) {
                (*p)->pack_remaining();
                (*p)->wait_packed();
            }
        }
    } quiesce{&pending};

    // Entry snapshot: the chain's first base record (not counted in
    // rr.checkpoints, like the v2 entry snapshot).  With
    // checkpoint_every <= 0 this stays the only record — still enough to
    // recover, just a full replay.
    {
        state_capture cap(d, full_coverage(d), /*base=*/true);
        cap.pack_remaining();
        std::string rec = cap.take_record();
        if (opt.snapshot_hook) opt.snapshot_hook(rec);
        chain.push_back(std::move(rec));
        sync_mirror();
    }

    const auto rollback = [&](domain& dom) {
        finalize_pending();
        std::size_t applied = 0;
        try {
            for (const std::string& rec : chain) {
                apply_chain_record(dom, rec, "in-memory checkpoint chain");
                ++applied;
            }
        } catch (const checkpoint_error&) {
            // A corrupt record ends the usable prefix.  If not even the
            // base applies there is nothing valid left — propagate.
            if (applied == 0) throw;
        }
        if (applied < chain.size()) {
            // Drop the corrupt tail so later retries don't re-trip on it,
            // and from the file mirror so a restart can't either.
            chain.resize(applied);
            ++rr.snapshot_fallbacks;
            sync_mirror();
        }
    };

    int incident_cycle = -1;  // failing cycle of the open incident, or -1
    int retries = 0;          // retries spent on the open incident

    while (d.time_ < d.stoptime && d.cycle < max_cycles) {
        kernels::time_increment(d);
        amt::fault::set_epoch(d.cycle);
        const int this_cycle = d.cycle;
        const real_t this_dt = d.deltatime;

        try {
            drv.advance(d);
        } catch (const std::exception& e) {
            const auto* sim = dynamic_cast<const simulation_error*>(&e);
            const bool injected =
                dynamic_cast<const amt::fault::injected_fault*>(&e) != nullptr;
            if (sim == nullptr && !injected) throw;  // not retryable

            ++rr.rollbacks;
            if (this_cycle == incident_cycle) {
                ++retries;
            } else {
                incident_cycle = this_cycle;
                retries = 1;
            }
            if (retries > opt.max_retries) {
                rr.result.run_status =
                    injected ? status::task_fault : sim->code();
                rr.result.error_message =
                    describe_failure(e.what(), this_cycle, this_dt, retries - 1);
                // Leave the caller the last *good* state, not the torn
                // fields of the failed iteration.
                rollback(d);
                break;
            }

            rollback(d);
            // A transient fault's first retry replays at the unchanged dt
            // (bitwise-identical recovery); deterministic physics failures
            // and repeat failures halve it — replaying those unchanged
            // would fail identically.
            if (!injected || retries >= 2) {
                d.deltatime *= real_t(0.5);
                ++rr.dt_halvings;
            }
            continue;
        }

        if (incident_cycle >= 0 && d.cycle > incident_cycle) {
            incident_cycle = -1;
            retries = 0;
        }
        if (opt.checkpoint_every > 0) {
            drv.record_dirty(dirty, d);
            if (d.cycle % opt.checkpoint_every == 0) {
                finalize_pending();
                // Re-base periodically so the chain (and every replay)
                // stays bounded; otherwise append a delta of the regions
                // dirtied since the last capture.
                const bool base =
                    chain.empty() ||
                    (opt.rebase_every > 0 &&
                     static_cast<int>(chain.size()) >= opt.rebase_every);
                pending = std::make_shared<state_capture>(
                    d, base ? full_coverage(d) : dirty.take(d), base,
                    spare_buffer());
                if (base) dirty.clear();
                if (!opt.overlap_packing ||
                    !drv.submit_overlapped_capture(pending)) {
                    pending->pack_remaining();
                }
                ++rr.checkpoints;
            }
        }
    }

    finalize_pending();

    const auto t1 = std::chrono::steady_clock::now();
    rr.result.cycles = d.cycle;
    rr.result.final_time = d.time_;
    rr.result.final_dt = d.deltatime;
    rr.result.final_origin_energy = d.e[0];
    rr.result.elapsed_seconds = std::chrono::duration<double>(t1 - t0).count();
    return rr;
}

}  // namespace lulesh
