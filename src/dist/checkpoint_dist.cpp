// dist/checkpoint_dist.cpp — per-slab v3 checkpoint chains.

#include "dist/checkpoint_dist.hpp"

#include <algorithm>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "lulesh/checkpoint.hpp"
#include "lulesh/checkpoint_chain.hpp"

namespace lulesh::dist {

namespace {

/// Packs one record of `d` synchronously (the dist layer does not overlap
/// packing yet — the slab drivers would each need their own pack waves).
std::string pack_record(const domain& d, bool base) {
    state_capture cap(d, full_coverage(d), base);
    cap.pack_remaining();
    cap.wait_packed();
    return cap.take_record();
}

}  // namespace

std::string slab_chain_path(const std::string& path, index_t i) {
    return path + ".slab" + std::to_string(i);
}

void save_cluster_chains(cluster& c, const std::string& path) {
    for (index_t i = 0; i < c.num_slabs(); ++i) {
        write_chain_file(slab_chain_path(path, i),
                         {pack_record(c.slab(i), /*base=*/true)});
    }
}

void append_cluster_deltas(cluster& c, const std::string& path) {
    for (index_t i = 0; i < c.num_slabs(); ++i) {
        append_chain_record_file(slab_chain_path(path, i),
                                 pack_record(c.slab(i), /*base=*/false));
    }
}

void load_cluster_chains(cluster& c, const std::string& path) {
    const auto n = static_cast<std::size_t>(c.num_slabs());
    std::vector<std::vector<std::string>> records(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::string file = slab_chain_path(path, static_cast<index_t>(i));
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            throw checkpoint_error("cannot open checkpoint chain: " + file);
        }
        records[i] = read_chain_records(c.slab(static_cast<index_t>(i)), in,
                                        file);
        if (records[i].empty() || !chain_record_is_base(records[i][0])) {
            throw checkpoint_error("checkpoint chain has no committed base "
                                   "record: " + file);
        }
    }

    // Consistent-cycle replay: the target is the newest cycle every slab
    // has (min of the chain heads — the chains append in lockstep, so that
    // cycle exists in every chain).  A delta that fails full validation
    // during replay truncates its slab's chain and lowers the target; the
    // replay restarts from the bases, which is idempotent because
    // apply_chain_record never partially mutates and a base record fully
    // overwrites the restored state.
    for (;;) {
        int target = chain_record_cycle(records[0].back());
        for (std::size_t i = 1; i < n; ++i) {
            target = std::min(target, chain_record_cycle(records[i].back()));
        }
        bool truncated = false;
        for (std::size_t i = 0; i < n && !truncated; ++i) {
            const std::string file =
                slab_chain_path(path, static_cast<index_t>(i));
            for (std::size_t j = 0; j < records[i].size(); ++j) {
                if (chain_record_cycle(records[i][j]) > target) break;
                try {
                    apply_chain_record(c.slab(static_cast<index_t>(i)),
                                       records[i][j], file);
                } catch (const checkpoint_error&) {
                    if (j == 0) throw;  // base itself is corrupt
                    records[i].resize(j);
                    truncated = true;
                    break;
                }
            }
        }
        if (!truncated) return;
    }
}

}  // namespace lulesh::dist
