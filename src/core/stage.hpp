// core/stage.hpp
//
// stage_after — chain a task wave onto a barrier future: when `prev` becomes
// ready, `spawn` runs inline on the completing worker to create the next
// wave, and the returned future becomes ready when the whole wave has
// finished.  The building block of both task-graph drivers' non-blocking
// iteration pipelines; exceptions from tasks or from `spawn` propagate into
// the returned future.
//
// This is the *build*-mode machinery: each stage_after allocates a promise,
// a continuation node and a when_all block per iteration.  The taskgraph
// driver's default replay mode (core/compiled_iteration) replaces the whole
// chain with barrier nodes of a compiled amt::static_graph, re-armed in
// place each cycle with zero steady-state allocation; stage_after remains
// the ablation baseline and the dist driver's composition primitive.

#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "amt/amt.hpp"

namespace lulesh::graph {

/// `name` labels the stage's continuation-ready trace instant (the moment
/// the previous barrier resolved and this stage's wave gets spawned).
inline amt::future<void> stage_after(
    amt::future<void> prev,
    std::function<std::vector<amt::future<void>>()> spawn,
    const char* name = "stage") {
    auto pr = std::make_shared<amt::promise<void>>();
    auto done = pr->get_future();
    prev.then(amt::launch::sync,
              [spawn = std::move(spawn), pr,
               name](amt::future<void>&& f) mutable {
                  try {
                      f.get();
                      amt::trace::instant(
                          amt::trace::event_kind::continuation_ready, name);
                      auto wave = spawn();
                      amt::when_all_void(std::move(wave))
                          .then(amt::launch::sync,
                                [pr](amt::future<void>&& g) mutable {
                                    try {
                                        g.get();
                                        pr->set_value();
                                    } catch (...) {
                                        pr->set_exception(
                                            std::current_exception());
                                    }
                                });
                  } catch (...) {
                      pr->set_exception(std::current_exception());
                  }
              });
    return done;
}

}  // namespace lulesh::graph
