// amt/scheduler.cpp — work-stealing scheduler implementation.

#include "amt/scheduler.hpp"

#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>

#include "amt/metrics.hpp"
#include "amt/trace.hpp"

namespace amt {

namespace {

// Metric handles are interned once and cached; every update below is gated
// on metrics::enabled() (one relaxed load disarmed, compiled out entirely
// under AMT_METRICS_DISABLE).  Naming per docs/observability.md.
metrics::histogram& task_duration_hist() {
    static auto& h = metrics::get_histogram(
        "amt_task_duration_ns", "task body execution wall time");
    return h;
}

metrics::histogram& steal_latency_hist() {
    static auto& h = metrics::get_histogram(
        "amt_steal_latency_ns",
        "time from a worker's first empty probe to its next acquired task");
    return h;
}

metrics::histogram& queue_depth_hist() {
    static auto& h = metrics::get_histogram(
        "amt_dispatch_queue_depth",
        "posting worker's deque depth sampled after each push");
    return h;
}

metrics::counter& external_post_counter() {
    static auto& c = metrics::get_counter(
        "amt_tasks_posted_external",
        "tasks entering through the global injection queue");
    return c;
}

}  // namespace

amt::atomic<runtime*> runtime::active_{nullptr};

namespace {

thread_local current_worker_info tls_worker{};

/// xorshift64* — cheap thread-local PRNG for victim selection.  Quality
/// requirements are minimal; speed and statelessness across calls matter.
inline std::uint64_t next_rng(std::uint64_t& s) noexcept {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1DULL;
}

}  // namespace

const current_worker_info& current_worker() noexcept { return tls_worker; }

runtime::runtime(runtime_options opts) : opts_(opts) {
    std::size_t n = opts_.num_workers;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0) n = 1;
    }
    // Resolve the steal-domain width: auto groups workers four to a domain
    // once there are enough of them to make locality tiers meaningful.
    domain_size_ = opts_.steal_domain_size;
    if (domain_size_ == 0) domain_size_ = n > 4 ? 4 : n;
    if (domain_size_ > n) domain_size_ = n;
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        workers_.push_back(std::make_unique<worker>(i));
        // Seed must be nonzero for xorshift; mix the index in.
        workers_[i]->rng_state = 0x9E3779B97F4A7C15ULL * (i + 1) + 1;
    }
    start_time_ = clock::now();
    for (std::size_t i = 0; i < n; ++i) {
        worker* w = workers_[i].get();
        w->thread = std::thread([this, w] { worker_loop(*w); });
    }
    active_.store(this, amt::memory_order_release);
}

runtime::~runtime() {
    // Drain: wait until every queue is empty and all workers are idle.  The
    // public contract is that destroying the runtime after all futures the
    // caller cares about are ready is safe; queued fire-and-forget tasks are
    // still completed here.
    for (;;) {
        bool any = false;
        {
            std::lock_guard lk(global_mu_);
            any = global_head_ != nullptr;
        }
        if (!any) {
            for (auto& w : workers_) {
                if (!w->queue.empty_approx()) {
                    any = true;
                    break;
                }
            }
        }
        if (!any) break;
        std::this_thread::yield();
    }

    shutdown_.store(true, amt::memory_order_release);
    {
        std::lock_guard lk(sleep_mu_);
        ++epoch_;
    }
    sleep_cv_.notify_all();
    for (auto& w : workers_) {
        if (w->thread.joinable()) w->thread.join();
    }

    runtime* self = this;
    active_.compare_exchange_strong(self, nullptr, amt::memory_order_acq_rel);
}

runtime* runtime::active() noexcept {
    return active_.load(amt::memory_order_acquire);
}

bool runtime::on_worker_thread() const noexcept {
    return tls_worker.rt == this;
}

void runtime::post(task_ptr t) {
    assert(t && "posting a null task");
    post_raw(t.release());
}

void runtime::post_raw(task_base* raw) {
    assert(raw != nullptr && "posting a null task");
    if (tls_worker.rt == this) {
        auto& q = workers_[tls_worker.index]->queue;
        q.push(raw);
        if (metrics::enabled()) {
            queue_depth_hist().record(q.size_approx());
        }
    } else {
        if (metrics::enabled()) external_post_counter().add(1);
        std::lock_guard lk(global_mu_);
        raw->qnext = nullptr;
        if (global_tail_ != nullptr) {
            global_tail_->qnext = raw;
        } else {
            global_head_ = raw;
        }
        global_tail_ = raw;
    }
    notify_workers();
}

void runtime::notify_workers() {
    {
        std::lock_guard lk(sleep_mu_);
        ++epoch_;
    }
    sleep_cv_.notify_one();
}

task_base* runtime::try_pop_global() {
    std::lock_guard lk(global_mu_);
    task_base* t = global_head_;
    if (t != nullptr) {
        global_head_ = t->qnext;
        if (global_head_ == nullptr) global_tail_ = nullptr;
        t->qnext = nullptr;
    }
    return t;
}

task_base* runtime::try_steal(std::size_t self_index, std::uint64_t& rng_state,
                              bool* same_domain_out) {
    const std::size_t n = workers_.size();
    if (n <= 1) return nullptr;
    // Hierarchical sweep: every same-domain victim first (cheap, shares
    // cache/NUMA locality with the thief), then the rest.  Each tier starts
    // at an independently randomized victim to spread contention.
    const std::uint64_t rot_same = next_rng(rng_state);
    const std::uint64_t rot_cross = next_rng(rng_state);
    task_base* found = nullptr;
    bool same = false;
    for_each_steal_victim(self_index, n, domain_size_, rot_same, rot_cross,
                          [&](std::size_t v, bool same_domain) {
                              if (task_base* t = workers_[v]->queue.steal()) {
                                  found = t;
                                  same = same_domain;
                                  return true;
                              }
                              return false;
                          });
    if (found != nullptr && same_domain_out != nullptr) *same_domain_out = same;
    return found;
}

task_base* runtime::find_work(worker& self) {
    if (task_base* t = self.queue.pop()) return t;
    self.counters.steal_attempts.add(1);
    bool same_domain = false;
    if (task_base* t = try_steal(self.index, self.rng_state, &same_domain)) {
        self.counters.steals.add(1);
        (same_domain ? self.counters.steals_same_domain
                     : self.counters.steals_cross_domain)
            .add(1);
        if (trace::enabled()) {
            trace::instant(trace::event_kind::steal, "steal",
                           static_cast<std::int32_t>(self.index));
        }
        return t;
    }
    return try_pop_global();
}

void runtime::execute(task_base* raw, worker_counters& c,
                      clock::time_point* stamp) {
    // Read ownership BEFORE running the task: executing the final node of a
    // compiled graph can complete the graph, after which its owner may
    // re-arm or destroy the node's storage — touching `raw` again would be
    // a use-after-free.  Owned (make_task) tasks are deleted after running.
    const bool owned = raw->scheduler_owned();
    const bool tracing = trace::enabled();
    const bool metered = metrics::enabled();
    if (opts_.enable_timing || tracing || metered) {
        const auto t0 = stamp != nullptr && *stamp != clock::time_point{}
                            ? *stamp
                            : clock::now();
        raw->execute();
        const auto t1 = clock::now();
        if (stamp != nullptr) *stamp = t1;
        const auto dur_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
        if (opts_.enable_timing) {
            c.productive_ns.add(dur_ns);
        }
        if (metered) {
            task_duration_hist().record(dur_ns);
        }
        if (tracing) {
            // One span per task execution, named by whatever annotation the
            // body left behind (trace::annotate_task, first one wins).
            const auto label = trace::take_task_label();
            trace::emit_span(trace::event_kind::task_span,
                             label.name != nullptr ? label.name : "task", t0,
                             t1, label.arg);
        }
    } else {
        raw->execute();
    }
    if (owned) delete raw;
    c.tasks_executed.add(1);
}

void runtime::worker_loop(worker& self) {
    tls_worker = current_worker_info{this, self.index};
    if (trace::compiled_in) {
        trace::set_thread_name("worker" + std::to_string(self.index));
    }

    // Every interval between two consecutive task executions becomes one
    // coalesced trace span (armed only): from the previous task's end
    // (`anchor`) to the next successful dequeue.  Classified idle if the
    // worker parked during the episode, steal-search if it swept victim
    // deques without success, and dispatch if the next task was found on
    // the first probe (pop overhead plus any OS descheduling); the
    // failed-sweep count is the argument.  Making the non-task time
    // explicit keeps worker timelines hole-free, so the utilization
    // report's four categories sum to wall x workers.
    // The first gap is anchored at runtime construction, not at the first
    // loop iteration: on an oversubscribed machine the OS may schedule this
    // thread well after it became runnable, and that wait is part of the
    // worker's idle time.
    clock::time_point anchor =
        trace::enabled() ? start_time_ : clock::time_point{};
    std::int64_t gap_start = 0;
    std::uint32_t gap_sweeps = 0;
    bool in_gap = false;
    bool gap_parked = false;
    auto close_gap = [&](std::int64_t end_ns) {
        in_gap = false;
        const char* name = gap_parked ? "idle"
                           : gap_sweeps == 0 ? "dispatch"
                                             : "steal-search";
        trace::emit_span(gap_parked ? trace::event_kind::idle_span
                                    : trace::event_kind::search_span,
                         name, gap_start, end_ns,
                         static_cast<std::int32_t>(gap_sweeps));
    };
    // Closes the current gap (opening a zero-sweep dispatch gap first when
    // the task was found on the first probe), runs the task, and re-anchors.
    // The gap end, task begin, task end and next gap begin all share exact
    // clock readings, so consecutive spans tile the timeline with no
    // unattributed slivers.
    auto run_traced = [&](task_base* t) {
        clock::time_point stamp{};
        if (trace::enabled()) {
            stamp = clock::now();
            if (!in_gap && anchor != clock::time_point{}) {
                gap_parked = false;
                gap_sweeps = 0;
                gap_start = trace::to_ns(anchor);
                in_gap = true;
            }
            if (in_gap) close_gap(trace::to_ns(stamp));
        } else {
            in_gap = false;  // disarmed mid-gap: drop the episode
        }
        execute(t, self.counters, &stamp);
        anchor = stamp;  // t1 when traced; reset to {} when disarmed
    };

    // Steal-latency metric: the span from a worker's first empty probe to
    // its next acquired task (by pop, steal or global queue) — the
    // per-episode cost of running dry, as a distribution.  Armed-only clock
    // reads, one per episode boundary.
    clock::time_point search_t0{};
    auto note_acquired = [&] {
        if (search_t0 != clock::time_point{}) {
            steal_latency_hist().record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    clock::now() - search_t0)
                    .count()));
            search_t0 = clock::time_point{};
        }
    };

    std::size_t idle_rounds = 0;
    while (true) {
        if (task_base* t = find_work(self)) {
            note_acquired();
            run_traced(t);
            idle_rounds = 0;
            continue;
        }
        if (metrics::enabled() && search_t0 == clock::time_point{}) {
            search_t0 = clock::now();
        }
        if (trace::enabled()) {
            if (!in_gap) {
                in_gap = true;
                gap_parked = false;
                gap_sweeps = 0;
                gap_start = anchor != clock::time_point{}
                                ? trace::to_ns(anchor)
                                : trace::now_ns();
            }
            ++gap_sweeps;
        }
        if (shutdown_.load(amt::memory_order_acquire)) break;

        if (++idle_rounds < opts_.spin_rounds_before_sleep) {
            std::this_thread::yield();
            continue;
        }

        // Park.  Sample the epoch, do one more probe, and only sleep if no
        // post happened in between (otherwise a task may have been pushed
        // after our probes but before the wait).
        std::uint64_t seen;
        {
            std::lock_guard lk(sleep_mu_);
            seen = epoch_;
        }
        if (task_base* t = find_work(self)) {
            note_acquired();
            run_traced(t);
            idle_rounds = 0;
            continue;
        }
        if (shutdown_.load(amt::memory_order_acquire)) break;
        {
            std::unique_lock lk(sleep_mu_);
            if (epoch_ == seen && !shutdown_.load(amt::memory_order_acquire)) {
                if (in_gap) gap_parked = true;
                // Bounded wait as a belt-and-braces recovery for the rare
                // case of a steal that failed spuriously under contention.
                sleep_cv_.wait_for(lk, std::chrono::milliseconds(2));
            }
        }
        idle_rounds = 0;
    }
    if (in_gap) close_gap(trace::now_ns());

    tls_worker = current_worker_info{};
}

bool runtime::try_run_one() {
    if (tls_worker.rt == this) {
        worker& self = *workers_[tls_worker.index];
        if (task_base* t = find_work(self)) {
            execute(t, self.counters);
            return true;
        }
        return false;
    }
    // External thread: poll the global queue, then steal.
    task_base* t = try_pop_global();
    if (t == nullptr) {
        std::uint64_t rng =
            0xD1B54A32D192ED03ULL ^
            static_cast<std::uint64_t>(
                std::hash<std::thread::id>{}(std::this_thread::get_id()));
        if (rng == 0) rng = 1;
        t = try_steal(workers_.size(), rng);  // self_index out of range: steal from anyone
    }
    if (t == nullptr) return false;
    worker_counters local{};
    execute(t, local);
    {
        std::lock_guard lk(external_mu_);
        external_counters_.tasks_executed.add(local.tasks_executed.load());
        external_counters_.productive_ns.add(local.productive_ns.load());
    }
    return true;
}

counters_snapshot runtime::snapshot_counters() const {
    counters_snapshot s;
    s.num_workers = workers_.size();
    for (const auto& w : workers_) {
        s.tasks_executed += w->counters.tasks_executed.load();
        s.steals += w->counters.steals.load();
        s.steal_attempts += w->counters.steal_attempts.load();
        s.productive_ns += w->counters.productive_ns.load();
        s.steals_same_domain += w->counters.steals_same_domain.load();
        s.steals_cross_domain += w->counters.steals_cross_domain.load();
    }
    {
        std::lock_guard lk(const_cast<std::mutex&>(external_mu_));
        s.tasks_executed += external_counters_.tasks_executed.load();
        s.productive_ns += external_counters_.productive_ns.load();
    }
    s.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_time_)
            .count());
    return s;
}

void runtime::reset_counters() {
    // Workers race with this only benignly (counter deltas may be attributed
    // to either window); reset is intended for use at quiescent points.
    for (auto& w : workers_) w->counters.reset();
    {
        std::lock_guard lk(external_mu_);
        external_counters_.reset();
    }
    start_time_ = clock::now();
}

}  // namespace amt
