// core/autotune.cpp — partition-size auto-tuning.

#include "core/autotune.hpp"

#include <chrono>
#include <limits>
#include <stdexcept>

#include "core/critical_path.hpp"
#include "core/driver_taskgraph.hpp"
#include "lulesh/driver.hpp"
#include "lulesh/kernels.hpp"

namespace lulesh {

autotune_result autotune_partitions(amt::runtime& rt, const options& problem,
                                    const autotune_options& opts) {
    if (opts.candidates.empty()) {
        throw std::invalid_argument("autotune: no candidate partition sizes");
    }
    if (opts.iterations < 1 || opts.repetitions < 1) {
        throw std::invalid_argument("autotune: iterations/repetitions must be >= 1");
    }

    autotune_result result;
    result.best_seconds = std::numeric_limits<double>::infinity();

    for (index_t p_nodal : opts.candidates) {
        for (index_t p_elems : opts.candidates) {
            const partition_sizes parts{p_nodal, p_elems};
            double best_for_pair = std::numeric_limits<double>::infinity();
            autotune_result::candidate_profile prof{};
            prof.parts = parts;
            for (int r = 0; r < opts.repetitions; ++r) {
                // Fresh scratch problem per measurement: every candidate
                // sees the identical workload (the first iterations of the
                // blast), and the caller's state is never touched.
                domain scratch(problem);
                taskgraph_driver drv(rt, parts);
                drv.enable_node_profiling(opts.profile_critical_path);
                // Warm-up iteration (first-touch, queue growth).
                kernels::time_increment(scratch);
                drv.advance(scratch);

                const auto t0 = std::chrono::steady_clock::now();
                for (int i = 0; i < opts.iterations; ++i) {
                    kernels::time_increment(scratch);
                    drv.advance(scratch);
                }
                const double seconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                best_for_pair = std::min(best_for_pair, seconds);
                if (opts.profile_critical_path && drv.compiled() != nullptr) {
                    // Means integrate all this rep's replays; the last rep's
                    // analysis (tightest means) represents the pair.
                    const auto cp = analyze_critical_path(
                        *drv.compiled(), rt.num_workers(), /*top_k=*/0);
                    prof.critical_path_ns = cp.critical_path_ns;
                    prof.ideal_speedup = cp.ideal_speedup;
                }
            }
            prof.seconds = best_for_pair;
            if (opts.profile_critical_path) result.profiles.push_back(prof);
            ++result.pairs_tried;
            result.worst_seconds = std::max(result.worst_seconds, best_for_pair);
            if (best_for_pair < result.best_seconds) {
                result.best_seconds = best_for_pair;
                result.best = parts;
                result.best_ideal_speedup = prof.ideal_speedup;
            }
        }
    }
    return result;
}

}  // namespace lulesh
