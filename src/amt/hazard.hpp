// amt/hazard.hpp
//
// Dynamic shadow-epoch race tracker — the runtime half of the task-graph
// hazard auditor (the static half lives in core/graph_audit).  Tasks open a
// `task_scope` declaring the index sets they will read and write over a set
// of application-defined *fields*; the tracker stamps each declared index
// into a per-field shadow array of atomic tokens while the task is in
// flight and clears them at scope exit.  Two failure classes are caught:
//
//   * **in-flight conflict** — a scope stamps an index already stamped by
//     another live scope with at least one writer.  In a continuation-
//     -chained task graph two *ordered* tasks never overlap in time, so
//     temporally overlapping conflicting stamps are exactly the unordered
//     overlaps the static auditor proves absent — this layer catches the
//     ones a wrong declaration hid from the proof.
//
//   * **undeclared access** — instrumented task bodies call
//     touch()/touch_range(); an access outside the ambient scope's declared
//     set is recorded.  This validates the declarations themselves, closing
//     the loop: the static proof is only as good as the access sets, and
//     the access sets are checked against what the kernels actually do.
//
// The tracker is deliberately application-agnostic: fields are small
// integers, index spaces are flat ranges, and the expansion of mesh
// connectivity into concrete index intervals happens in the layer that
// knows the mesh (core/access).  Sites are `const char*` labels with static
// storage duration, like fault-probe sites.
//
// Cost model (the amt/fault.hpp discipline): when not armed, every probe —
// touch(), task_scope construction — is a single relaxed atomic load and a
// predictable branch; bench/hazard_overhead asserts <1% of a task-graph
// iteration.  Defining AMT_HAZARD_DISABLE compiles the probes out entirely.
// Arming (explicitly or via the AMT_HAZARD_TRACK environment variable)
// switches to the slow path: scopes stamp and clear their whole declared
// set, which is proportional to the data touched — debug-run pricing.
//
// Detection is *best effort* on reads: a reader's token can be displaced by
// a concurrent reader (reader/reader sharing is not a hazard), after which
// one of the readers is invisible to a later writer.  Writer stamps are
// never silently lost, so every WW overlap and the common RW interleavings
// are caught; tests force the deterministic cases.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "amt/atomic.hpp"

namespace amt::hazard {

/// One recorded hazard.  `site_*` are the scope labels (static strings);
/// `other_*` fields are meaningful for in-flight conflicts only.
struct violation {
    enum class kind {
        conflict_ww,       ///< two live scopes both declared a write
        conflict_rw,       ///< a live writer overlaps a live reader
        undeclared_access  ///< touch() outside the ambient declared set
    };

    kind k = kind::undeclared_access;
    int field = 0;
    std::int64_t lo = 0;  ///< offending index range [lo, hi)
    std::int64_t hi = 0;
    const char* site = "?";        ///< scope that detected the violation
    std::int64_t partition = -1;
    const char* other_site = "?";  ///< the conflicting live scope ("?" if gone)
    std::int64_t other_partition = -1;

    [[nodiscard]] std::string describe() const;
};

/// A declared access set, fully expanded: per-field sorted, disjoint,
/// merged index intervals.  Built once per task (by core/access for the
/// LULESH waves) and shared by stamping and touch validation.
struct access_set {
    struct interval {
        int field;
        bool write;
        std::int64_t lo;
        std::int64_t hi;  ///< half-open
    };

    /// Must be sorted by (field, write, lo) with intervals of equal
    /// (field, write) disjoint and non-adjacent-merged; normalize() does it.
    std::vector<interval> intervals;

    void add(int field, bool write, std::int64_t lo, std::int64_t hi);
    /// Sorts and merges; call once after the last add().
    void normalize();

    /// True when [lo, hi) is fully covered by the declared intervals for
    /// `field` (write access requires write intervals; reads accept both —
    /// a declared writer may re-read its own output).
    [[nodiscard]] bool covers(int field, bool write, std::int64_t lo,
                              std::int64_t hi) const;
};

/// Registers a shadow arena for a data domain (e.g. one mesh): one stamp
/// array per field, sized to that field's index-space extent.  `key` is an
/// opaque identity (the domain's address); re-binding the same key replaces
/// the arena.  Arenas are only allocated while the tracker is armed.
void bind_arena(const void* key, const std::vector<std::size_t>& extents);

/// Drops the arena for `key` (e.g. when the domain dies).  No-op if absent.
void release_arena(const void* key);

namespace detail {
extern amt::atomic<bool> g_armed;
void touch_slow(int field, bool write, std::int64_t lo, std::int64_t hi);
}  // namespace detail

/// RAII scope of one in-flight task: stamps the declared set on entry,
/// clears it on exit, and installs itself as the calling thread's ambient
/// scope for touch() validation.  The declared set and site label must
/// outlive the scope.  When the tracker is disarmed (or `decl` is null)
/// construction is a single load-and-branch and the scope is inert.
class task_scope {
public:
    task_scope(const void* arena_key, const char* site, std::int64_t partition,
               const access_set* decl);
    ~task_scope();

    task_scope(const task_scope&) = delete;
    task_scope& operator=(const task_scope&) = delete;

private:
    friend void detail::touch_slow(int, bool, std::int64_t, std::int64_t);
    struct impl;
    impl* impl_ = nullptr;  ///< null when inert
    task_scope* prev_ = nullptr;
};

/// Collected violations since the last take; take clears the log.
[[nodiscard]] std::vector<violation> take_violations();
[[nodiscard]] std::size_t violation_count();
void clear_violations();

/// Arms/disarms the tracker.  Like fault::arm, must not race in-flight
/// scopes — quiesce the graph first.  The AMT_HAZARD_TRACK environment
/// variable (non-empty, not "0") arms it at process start.
void arm();
void disarm();

#if defined(AMT_HAZARD_DISABLE)

inline constexpr bool compiled_in = false;
[[nodiscard]] inline bool armed() noexcept { return false; }

/// Instrumentation point for kernels: declares that the calling task is
/// accessing [lo, hi) of `field`.  Compiled out.
inline void touch(int, bool, std::int64_t, std::int64_t) noexcept {}

#else

inline constexpr bool compiled_in = true;

[[nodiscard]] inline bool armed() noexcept {
    return detail::g_armed.load(amt::memory_order_acquire);
}

/// Instrumentation point for kernels: validates the access [lo, hi) of
/// `field` against the calling thread's ambient scope.  One relaxed load +
/// branch when disarmed; no-op when no scope is ambient (e.g. the serial
/// driver runs the same kernels without scopes).
inline void touch(int field, bool write, std::int64_t lo, std::int64_t hi) {
    if (detail::g_armed.load(amt::memory_order_acquire)) {
        detail::touch_slow(field, write, lo, hi);
    }
}

#endif

}  // namespace amt::hazard
