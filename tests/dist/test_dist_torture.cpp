// Crash-consistency torture test for the *cluster* checkpoint chains: a
// forked child writes every slab's chain (base + two delta appends each, in
// the same interleaved slab-major order the live appenders use) with a
// crash injected at a randomized cumulative byte offset; the parent then
// restores through load_cluster_chains.  The invariant is the
// consistent-cycle rule end to end: whatever byte the writer died at, the
// restart either reports an unusable chain set (crash before some slab's
// base committed) or lands *every* slab on the same committed cycle — even
// when the crash left one slab's chain a full committed delta ahead of its
// neighbor's.

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "amt/amt.hpp"
#include "dist/checkpoint_dist.hpp"
#include "dist/cluster.hpp"
#include "dist/driver_dist.hpp"
#include "lulesh/checkpoint.hpp"
#include "lulesh/checkpoint_chain.hpp"

namespace {

using lulesh::domain;
using lulesh::index_t;
using lulesh::options;
using lulesh::dist::cluster;
using lulesh::dist::dist_driver;
using lulesh::dist::slab_chain_path;

constexpr index_t kSlabs = 2;

options small_opts() {
    options o;
    o.size = 4;  // small: the forked trials must stay fast
    o.num_regions = 3;
    return o;
}

std::string serialized(const domain& d) {
    std::ostringstream os;
    lulesh::save_checkpoint(d, os);
    return os.str();
}

std::string pack_full(const domain& d, bool base) {
    lulesh::state_capture cap(d, lulesh::full_coverage(d), base);
    cap.pack_remaining();
    cap.wait_packed();
    return cap.take_record();
}

/// One committed cluster-wide state: per-slab records plus the per-slab
/// serialized snapshots the parent compares restores against.
struct committed_state {
    int cycle = 0;
    std::vector<std::string> records;     // one per slab
    std::vector<std::string> snapshots;   // one per slab
};

TEST(DistTorture, CrashAtAnyByteRestoresAConsistentCycle) {
    const std::string path = "/tmp/lulesh_dist_chain_torture.ckpt";
    const options o = small_opts();

    // Committed cluster states at cycles 4, 8, 12, captured from a live
    // multi-slab run (the runtime lives only in this scope, so no worker
    // threads exist when the trials below fork).
    std::vector<committed_state> states(3);
    {
        cluster c(o, kSlabs);
        amt::runtime rt(2);
        dist_driver drv(rt, {48, 48});
        const int cycles[3] = {4, 8, 12};
        for (int k = 0; k < 3; ++k) {
            lulesh::dist::run_simulation(c, drv, cycles[k]);
            states[static_cast<std::size_t>(k)].cycle = cycles[k];
            for (index_t s = 0; s < kSlabs; ++s) {
                states[static_cast<std::size_t>(k)].records.push_back(
                    pack_full(c.slab(s), /*base=*/k == 0));
                states[static_cast<std::size_t>(k)].snapshots.push_back(
                    serialized(c.slab(s)));
            }
        }
    }

    long long total = 0;
    for (const auto& st : states) {
        for (const auto& r : st.records) {
            total += static_cast<long long>(r.size());
        }
    }

    std::mt19937 rng(20260808);
    std::uniform_int_distribution<long long> pick(0, total + 64);

    int survived_loads = 0;
    int mixed_head_restores = 0;
    for (int trial = 0; trial < 120; ++trial) {
        const long long crash_at = pick(rng);
        for (index_t s = 0; s < kSlabs; ++s) {
            std::remove(slab_chain_path(path, s).c_str());
            std::remove((slab_chain_path(path, s) + ".tmp").c_str());
        }

        const pid_t pid = fork();
        ASSERT_GE(pid, 0) << "fork failed";
        if (pid == 0) {
            // Child: replay the committed writes in the live appenders'
            // slab-major order with the crash seam armed; report via the
            // exit code (42 = injected crash, set by the seam itself).
            lulesh::set_chain_crash_after_bytes(crash_at);
            try {
                for (index_t s = 0; s < kSlabs; ++s) {
                    lulesh::write_chain_file(
                        slab_chain_path(path, s),
                        {states[0].records[static_cast<std::size_t>(s)]});
                }
                for (std::size_t k = 1; k < 3; ++k) {
                    for (index_t s = 0; s < kSlabs; ++s) {
                        lulesh::append_chain_record_file(
                            slab_chain_path(path, s),
                            states[k].records[static_cast<std::size_t>(s)]);
                    }
                }
            } catch (...) {
                ::_exit(3);
            }
            ::_exit(0);
        }

        int wstatus = 0;
        ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
        ASSERT_TRUE(WIFEXITED(wstatus))
            << "child killed by signal, trial " << trial;
        const int code = WEXITSTATUS(wstatus);
        ASSERT_TRUE(code == 0 || code == 42)
            << "child exit " << code << ", trial " << trial;
        if (code == 0) {
            ASSERT_GE(crash_at, total);
        }

        // Detect the interesting case before restoring: chains whose heads
        // disagree (the crash landed between one slab's append and the
        // next's).  Restoring a mix would desynchronize the lockstep clock;
        // the loader must pick the minimum instead.
        cluster restored(o, kSlabs);
        try {
            lulesh::dist::load_cluster_chains(restored, path);
        } catch (const lulesh::checkpoint_error&) {
            // Legal only if the writer died before every base committed.
            ASSERT_EQ(code, 42) << "trial " << trial;
            continue;
        }
        ++survived_loads;

        const int cycle0 = restored.slab(0).cycle;
        const committed_state* match = nullptr;
        for (const auto& st : states) {
            if (st.cycle == cycle0) match = &st;
        }
        ASSERT_NE(match, nullptr)
            << "trial " << trial << " crash_at " << crash_at
            << " restored to uncommitted cycle " << cycle0;
        bool torn_between_slabs = false;
        for (index_t s = 0; s < kSlabs; ++s) {
            ASSERT_EQ(restored.slab(s).cycle, cycle0)
                << "trial " << trial << " crash_at " << crash_at
                << ": slabs restored to different cycles";
            ASSERT_EQ(serialized(restored.slab(s)),
                      match->snapshots[static_cast<std::size_t>(s)])
                << "trial " << trial << " crash_at " << crash_at << " slab "
                << s << " diverged from the committed cycle-" << cycle0
                << " state";
            // Count trials where this slab's file holds a newer committed
            // record than the restored cycle — proof the consistent-cycle
            // minimum (not per-slab newest) decided the target.
            std::ifstream in(slab_chain_path(path, s), std::ios::binary);
            const auto recs =
                lulesh::read_chain_records(restored.slab(s), in,
                                           slab_chain_path(path, s));
            if (!recs.empty() &&
                lulesh::chain_record_cycle(recs.back()) > cycle0) {
                torn_between_slabs = true;
            }
        }
        if (torn_between_slabs) ++mixed_head_restores;
    }
    // Harness sanity: most offsets land after every base committed, and the
    // between-slab seams are wide enough that some trials actually exercise
    // the mixed-head case.
    EXPECT_GT(survived_loads, 60);
    EXPECT_GT(mixed_head_restores, 0);

    for (index_t s = 0; s < kSlabs; ++s) {
        std::remove(slab_chain_path(path, s).c_str());
        std::remove((slab_chain_path(path, s) + ".tmp").c_str());
    }
}

}  // namespace

#else

TEST(DistTorture, SkippedOnNonUnixPlatforms) { GTEST_SKIP(); }

#endif
