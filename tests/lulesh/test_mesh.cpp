// Tests for mesh construction: geometry, connectivity, gather lists,
// boundary conditions, and Sedov initial conditions.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "lulesh/domain.hpp"
#include "lulesh/elem_geometry.hpp"

namespace {

using lulesh::domain;
using lulesh::index_t;
using lulesh::options;
using lulesh::real_t;

options opts(index_t size, index_t regions = 11) {
    options o;
    o.size = size;
    o.num_regions = regions;
    return o;
}

TEST(Mesh, CountsMatchProblemSize) {
    const domain d(opts(5));
    EXPECT_EQ(d.size_per_edge(), 5);
    EXPECT_EQ(d.numElem(), 125);
    EXPECT_EQ(d.numNode(), 216);
}

TEST(Mesh, SizeOneMesh) {
    const domain d(opts(1, 1));
    EXPECT_EQ(d.numElem(), 1);
    EXPECT_EQ(d.numNode(), 8);
}

TEST(Mesh, InvalidSizeThrows) {
    EXPECT_THROW(domain d(opts(0)), std::invalid_argument);
    options bad = opts(4);
    bad.num_regions = 0;
    EXPECT_THROW(domain d(bad), std::invalid_argument);
}

TEST(Mesh, CoordinatesSpanExpectedCube) {
    const domain d(opts(4));
    real_t max_c = 0;
    real_t min_c = 1e30;
    for (std::size_t i = 0; i < d.x.size(); ++i) {
        max_c = std::max({max_c, d.x[i], d.y[i], d.z[i]});
        min_c = std::min({min_c, d.x[i], d.y[i], d.z[i]});
    }
    EXPECT_DOUBLE_EQ(min_c, 0.0);
    EXPECT_DOUBLE_EQ(max_c, 1.125);
}

TEST(Mesh, NodeSpacingIsUniform) {
    const domain d(opts(3));
    const real_t h = 1.125 / 3.0;
    // First row of nodes along x.
    EXPECT_DOUBLE_EQ(d.x[0], 0.0);
    EXPECT_DOUBLE_EQ(d.x[1], h);
    EXPECT_DOUBLE_EQ(d.x[2], 2 * h);
    EXPECT_DOUBLE_EQ(d.x[3], 3 * h);
}

TEST(Mesh, NodelistIndicesAreValidAndDistinct) {
    const domain d(opts(4));
    for (index_t e = 0; e < d.numElem(); ++e) {
        const index_t* nl = d.nodelist(e);
        std::set<index_t> unique(nl, nl + 8);
        EXPECT_EQ(unique.size(), 8u) << "element " << e;
        for (int c = 0; c < 8; ++c) {
            EXPECT_GE(nl[c], 0);
            EXPECT_LT(nl[c], d.numNode());
        }
    }
}

TEST(Mesh, ElementVolumesArePositiveAndUniform) {
    const domain d(opts(4));
    const real_t expected = std::pow(1.125 / 4.0, 3);
    for (index_t e = 0; e < d.numElem(); ++e) {
        EXPECT_NEAR(d.volo[static_cast<std::size_t>(e)], expected, 1e-12);
        EXPECT_DOUBLE_EQ(d.v[static_cast<std::size_t>(e)], 1.0);
    }
}

TEST(Mesh, TotalVolumeEqualsDomainCube) {
    const domain d(opts(6));
    real_t total = 0;
    for (real_t v : d.volo) total += v;
    EXPECT_NEAR(total, std::pow(1.125, 3), 1e-9);
}

TEST(Mesh, NodalMassSumsToTotalVolume) {
    const domain d(opts(5));
    real_t total = 0;
    for (real_t m : d.nodalMass) total += m;
    EXPECT_NEAR(total, std::pow(1.125, 3), 1e-9);
}

TEST(Mesh, InteriorNodeTouchesEightElements) {
    const domain d(opts(4));
    const index_t en = 5;
    const index_t interior = 2 * en * en + 2 * en + 2;  // node (2,2,2)
    EXPECT_EQ(d.nodeElemCount(interior), 8);
    const index_t corner = 0;  // node (0,0,0) touches exactly 1 element
    EXPECT_EQ(d.nodeElemCount(corner), 1);
}

TEST(Mesh, CornerListsAreConsistentWithNodelist) {
    const domain d(opts(3));
    // Every (elem, corner) pair appears exactly once across all nodes, and
    // at the node the nodelist names.
    std::set<index_t> seen;
    for (index_t n = 0; n < d.numNode(); ++n) {
        const index_t count = d.nodeElemCount(n);
        const index_t* corners = d.nodeElemCornerList(n);
        for (index_t c = 0; c < count; ++c) {
            const index_t corner_id = corners[c];
            EXPECT_TRUE(seen.insert(corner_id).second) << "duplicate corner";
            const index_t elem = corner_id / 8;
            const index_t corner = corner_id % 8;
            EXPECT_EQ(d.nodelist(elem)[corner], n);
        }
    }
    EXPECT_EQ(static_cast<index_t>(seen.size()), d.numElem() * 8);
}

TEST(Mesh, FaceAdjacencyInterior) {
    const domain d(opts(4));
    const index_t s = 4;
    // Interior element (1,1,1) = 1*16 + 1*4 + 1 = 21.
    const index_t e = 21;
    const auto k = static_cast<std::size_t>(e);
    EXPECT_EQ(d.lxim[k], e - 1);
    EXPECT_EQ(d.lxip[k], e + 1);
    EXPECT_EQ(d.letam[k], e - s);
    EXPECT_EQ(d.letap[k], e + s);
    EXPECT_EQ(d.lzetam[k], e - s * s);
    EXPECT_EQ(d.lzetap[k], e + s * s);
    EXPECT_EQ(d.elemBC[k], 0);
}

TEST(Mesh, BoundaryConditionFlags) {
    const domain d(opts(3));
    // Element (0,0,0): symmetry on all three minus faces.
    EXPECT_EQ(d.elemBC[0],
              lulesh::XI_M_SYMM | lulesh::ETA_M_SYMM | lulesh::ZETA_M_SYMM);
    // Element (2,2,2) (last): free on all three plus faces.
    const auto last = static_cast<std::size_t>(d.numElem() - 1);
    EXPECT_EQ(d.elemBC[last],
              lulesh::XI_P_FREE | lulesh::ETA_P_FREE | lulesh::ZETA_P_FREE);
}

TEST(Mesh, EveryBoundaryElementFlagged) {
    const domain d(opts(4));
    int flagged = 0;
    for (index_t e = 0; e < d.numElem(); ++e) {
        if (d.elemBC[static_cast<std::size_t>(e)] != 0) ++flagged;
    }
    // 4^3 = 64 elements; interior is 2^3 = 8, so 56 are on some face.
    EXPECT_EQ(flagged, 56);
}

TEST(Mesh, SymmetryNodeLists) {
    const domain d(opts(4));
    const std::size_t expect = 5 * 5;
    EXPECT_EQ(d.symmX.size(), expect);
    EXPECT_EQ(d.symmY.size(), expect);
    EXPECT_EQ(d.symmZ.size(), expect);
    for (index_t n : d.symmX) {
        EXPECT_DOUBLE_EQ(d.x[static_cast<std::size_t>(n)], 0.0);
    }
    for (index_t n : d.symmY) {
        EXPECT_DOUBLE_EQ(d.y[static_cast<std::size_t>(n)], 0.0);
    }
    for (index_t n : d.symmZ) {
        EXPECT_DOUBLE_EQ(d.z[static_cast<std::size_t>(n)], 0.0);
    }
}

TEST(Mesh, SymmetryMaskMatchesLists) {
    const domain d(opts(4));
    for (index_t n = 0; n < d.numNode(); ++n) {
        const auto i = static_cast<std::size_t>(n);
        const bool on_x = d.x[i] == 0.0;
        const bool on_y = d.y[i] == 0.0;
        const bool on_z = d.z[i] == 0.0;
        EXPECT_EQ((d.symm_mask[i] & lulesh::NODE_SYMM_X) != 0, on_x);
        EXPECT_EQ((d.symm_mask[i] & lulesh::NODE_SYMM_Y) != 0, on_y);
        EXPECT_EQ((d.symm_mask[i] & lulesh::NODE_SYMM_Z) != 0, on_z);
    }
}

TEST(Sedov, EnergyDepositedOnlyInOriginElement) {
    const domain d(opts(6));
    EXPECT_GT(d.e[0], 0.0);
    for (index_t e = 1; e < d.numElem(); ++e) {
        EXPECT_DOUBLE_EQ(d.e[static_cast<std::size_t>(e)], 0.0);
    }
}

TEST(Sedov, InitialEnergyScalesWithSizeCubed) {
    const domain d45(opts(45));
    const domain d90(opts(90));
    EXPECT_NEAR(d45.e[0], 3.948746e+7, 1.0);
    EXPECT_NEAR(d90.e[0] / d45.e[0], 8.0, 1e-9);
}

TEST(Sedov, InitialDeltatimeMatchesFormula) {
    const domain d(opts(45));
    const real_t expected =
        0.5 * std::cbrt(d.volo[0]) / std::sqrt(2.0 * d.e[0]);
    EXPECT_DOUBLE_EQ(d.deltatime, expected);
    EXPECT_GT(d.deltatime, 0.0);
}

TEST(Sedov, InitialStateAtRest) {
    const domain d(opts(4));
    for (std::size_t i = 0; i < d.xd.size(); ++i) {
        EXPECT_EQ(d.xd[i], 0.0);
        EXPECT_EQ(d.yd[i], 0.0);
        EXPECT_EQ(d.zd[i], 0.0);
    }
    for (std::size_t i = 0; i < d.p.size(); ++i) {
        EXPECT_EQ(d.p[i], 0.0);
        EXPECT_EQ(d.q[i], 0.0);
    }
    EXPECT_EQ(d.cycle, 0);
    EXPECT_EQ(d.time_, 0.0);
}

}  // namespace
