// bench/fig9_runtime_vs_threads.cpp
//
// Reproduces Figure 9 of the paper: LULESH runtime of the OpenMP-style
// baseline vs the task-graph implementation for a sweep of problem sizes and
// execution-thread counts.  The paper's claims to check:
//   * the baseline is faster single-threaded (task creation overhead);
//   * the task version overtakes as threads increase, earliest for small
//     problem sizes;
//   * both reach their best runtime at one thread per physical core.
//
// Default parameters are scaled down to finish quickly on a small machine;
// pass --full on a 24-core host for the paper-exact sweep (with the AE
// appendix's per-size iteration caps).

#include "bench_common.hpp"

int main(int argc, char** argv) {
    bench::sweep_options sweep = bench::parse_sweep(
        argc, argv,
        {.sizes = {10, 15, 20},
         .threads = {1, 2, 4},
         .regions = {11},
         .iters = 40,
         .reps = 3});

    const unsigned hw = std::thread::hardware_concurrency();
    std::cout << "=== Figure 9: runtime vs execution threads ===\n"
              << "host hardware threads: " << hw << "\n"
              << "iteration cap: " << sweep.iters
              << " (AE-appendix caps apply to paper sizes)\n\n";
    std::cout << std::left << std::setw(6) << "size" << std::setw(9)
              << "threads" << std::setw(15) << "omp-style(s)" << std::setw(15)
              << "taskgraph(s)" << std::setw(10) << "speedup" << "\n";

    bench::artifact art("fig9");
    art.set_config("sizes", bench::join_ints(sweep.sizes));
    art.set_config("threads", bench::join_ints(sweep.threads));
    art.set_config("iters", sweep.iters);
    art.set_config("reps", sweep.reps);

    std::vector<std::string> csv;
    for (int size : sweep.sizes) {
        lulesh::options problem;
        problem.size = static_cast<lulesh::index_t>(size);
        problem.num_regions = 11;
        const int iters = bench::ae_iteration_cap(size, sweep.iters);
        const auto parts = bench::tuned_parts(size);
        for (int threads : sweep.threads) {
            const auto base_reps = bench::run_config_reps(
                problem, "parallel_for", static_cast<std::size_t>(threads),
                parts, iters, sweep.reps);
            const auto task_reps = bench::run_config_reps(
                problem, "taskgraph", static_cast<std::size_t>(threads), parts,
                iters, sweep.reps);
            const auto base = base_reps.median();
            const auto task = task_reps.median();
            art.add_seconds(
                bench::metric_key("omp_seconds", {{"s", size}, {"t", threads}}),
                base_reps);
            art.add_seconds(
                bench::metric_key("task_seconds",
                                  {{"s", size}, {"t", threads}}),
                task_reps);
            const double speedup =
                task.seconds > 0 ? base.seconds / task.seconds : 0.0;
            std::cout << std::left << std::setw(6) << size << std::setw(9)
                      << threads << std::setw(15) << std::setprecision(4)
                      << base.seconds << std::setw(15) << task.seconds
                      << std::setw(10) << speedup << "\n";
            std::ostringstream row;
            row << "CSV,fig9," << size << "," << threads << "," << base.seconds
                << "," << task.seconds << "," << speedup;
            csv.push_back(row.str());
        }
        std::cout << "\n";
    }
    std::cout << "# size,threads,omp_seconds,task_seconds,speedup\n";
    for (const auto& row : csv) std::cout << row << "\n";
    art.write_file();
    return 0;
}
