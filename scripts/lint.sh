#!/usr/bin/env bash
# One-command amtlint: build the lint binary if needed and scan the tree
# with the checked-in baseline — the same invocation the `amtlint.tree`
# ctest runs (`ctest -L lint`).  Exit 0 clean, 1 on new diagnostics.
# See docs/static-analysis.md for the rules.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ ! -x build/tools/amtlint/amtlint ]; then
  cmake -B build -S . > /dev/null
  cmake --build build --target amtlint -j "$(nproc)" > /dev/null
fi

exec ./build/tools/amtlint/amtlint \
  --root . \
  --baseline tools/amtlint/baseline.txt \
  --exclude src/amt/ \
  src examples
