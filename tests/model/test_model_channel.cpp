// channel reopen litmuses (amt/channel.hpp).  reopen() documents itself as
// only *meaningful* at a quiescent point, but the distributed recovery
// layer still must not corrupt the channel if a straggler set() races the
// close()/reopen() transition — the value may land, be discarded, or bounce
// off the closed window (channel_closed), but the channel must end in a
// coherent state: open, FIFO, and delivering exactly the values that
// landed.  The channel's mutex is amt::mutex, so the model schedules
// through the critical sections instead of collapsing them.

#include <gtest/gtest.h>

#include "amt/channel.hpp"
#include "amt/model.hpp"

namespace {

using amt::model::check;
using amt::model::model_assert;
using amt::model::options;
using amt::model::result;

// One producer racing close()+reopen(): every interleaving ends with an
// open, consistent channel holding either nothing or exactly the
// producer's value.
TEST(ModelChannel, ReopenRacingSetStaysCoherent) {
    options o;
    o.quiet = true;
    o.max_executions = 60000;
    const result r = check(o, [] {
        amt::channel<int> ch;
        bool landed = false;
        amt::model::thread producer([&] {
            try {
                ch.set(42);
                landed = true;
            } catch (const amt::channel_closed&) {
                // Raced into the closed window: a legal outcome.
            }
        });
        ch.close();
        ch.reopen();
        producer.join();
        const std::size_t buffered = ch.size_approx();
        model_assert(buffered <= 1, "reopen conjured extra values");
        if (buffered == 1) {
            model_assert(landed, "value buffered but producer saw closed");
            // The surviving value must be the producer's, delivered once.
            auto f = ch.get();
            model_assert(f.is_ready() && f.get() == 42,
                         "buffered value lost or corrupted across reopen");
        }
        // Whatever happened, the channel must accept values again.
        ch.set(7);
        auto f2 = ch.get();
        model_assert(f2.is_ready() && f2.get() == 7,
                     "reopened channel failed to deliver");
    });
    EXPECT_FALSE(r.failed) << r.reason << "\n" << r.trace;
}

// Two producers racing a close(): whoever lands before the close is
// discarded BY the close (close clears the buffer), whoever lands after
// reopen survives, whoever hits the window throws — but no value may be
// half-delivered and the final set/get roundtrip must stay FIFO.
TEST(ModelChannel, CloseDiscardsReopenAccepts) {
    options o;
    o.quiet = true;
    o.max_executions = 60000;
    const result r = check(o, [] {
        amt::channel<int> ch;
        int threw = 0;
        amt::model::thread p1([&] {
            try {
                ch.set(1);
            } catch (const amt::channel_closed&) {
                ++threw;
            }
        });
        ch.close();
        ch.reopen();
        p1.join();
        model_assert(ch.size_approx() <= 1, "more values than producers");
        ch.set(10);
        ch.set(11);
        // FIFO across the reopen: drain everything buffered; the two
        // post-reopen values must come out last, in order.
        std::vector<int> drained;
        while (ch.size_approx() > 0) {
            auto f = ch.get();
            model_assert(f.is_ready(), "buffered channel returned a pending "
                                       "future");
            drained.push_back(f.get());
        }
        model_assert(drained.size() >= 2, "post-reopen values vanished");
        const std::size_t n = drained.size();
        model_assert(drained[n - 2] == 10 && drained[n - 1] == 11,
                     "FIFO order broken across reopen");
    });
    EXPECT_FALSE(r.failed) << r.reason << "\n" << r.trace;
}

// A getter whose future was failed by close() stays failed after reopen —
// reopen explicitly does not resurrect old getters.
TEST(ModelChannel, ReopenDoesNotResurrectFailedGetters)  {
    options o;
    o.quiet = true;
    const result r = check(o, [] {
        amt::channel<int> ch;
        auto pending = ch.get();  // parks as a getter
        amt::model::thread closer([&] {
            ch.close();
            ch.reopen();
        });
        closer.join();
        model_assert(pending.is_ready(),
                     "close must fail the parked getter");
        bool failed_with_closed = false;
        try {
            (void)pending.get();
        } catch (const amt::channel_closed&) {
            failed_with_closed = true;
        }
        model_assert(failed_with_closed,
                     "parked getter must fail with channel_closed");
        // And a fresh getter after reopen is a NEW getter, fed by set().
        ch.set(5);
        auto fresh = ch.get();
        model_assert(fresh.is_ready() && fresh.get() == 5,
                     "fresh getter after reopen not fed");
    });
    EXPECT_FALSE(r.failed) << r.reason << "\n" << r.trace;
}

}  // namespace
