// ompsim/team.hpp
//
// ompsim — a minimal fork-join runtime reproducing the synchronization
// structure of the OpenMP reference implementation of LULESH:
//
//   * a persistent team of OS threads (like libgomp's thread pool),
//   * `parallel_region(fn)` runs fn on every team member (the calling
//     thread participates as thread 0, like an OpenMP master),
//   * inside a region, `for_static` statically partitions an index range
//     into one contiguous chunk per thread (OpenMP `schedule(static)`),
//   * `barrier()` is a sense-reversing team barrier — the implicit barrier
//     OpenMP places at the end of every work-sharing loop,
//   * `reduce_min` / `reduce_or` model `reduction(min:...)` clauses.
//
// The runtime is deliberately *not* work-stealing and *not* asynchronous:
// its whole point is to be the faithful baseline whose barrier-per-loop
// cost the task-based driver eliminates.  Per-thread productive time is
// recorded inside `for_static` bodies, which is exactly the measurement
// methodology the paper describes for the OpenMP side of its Figure 11.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "amt/atomic.hpp"

namespace ompsim {

using index_t = std::ptrdiff_t;

/// Per-thread and aggregate timing for Figure 11's utilization metric.
struct timing_snapshot {
    std::uint64_t productive_ns = 0;   ///< sum over threads of loop-body time
    std::uint64_t region_wall_ns = 0;  ///< wall time spent inside parallel regions
    std::size_t num_threads = 0;
    std::uint64_t regions_entered = 0;
    std::uint64_t barriers = 0;

    /// Fraction of worker-seconds inside parallel regions spent computing.
    /// Single-threaded program portions are excluded, as in the paper.
    [[nodiscard]] double productive_ratio() const {
        const double denom = static_cast<double>(region_wall_ns) *
                             static_cast<double>(num_threads);
        return denom > 0.0 ? static_cast<double>(productive_ns) / denom : 0.0;
    }
};

class team;

/// Handle passed to the function executing inside a parallel region; one per
/// participating thread.
class region_context {
public:
    [[nodiscard]] std::size_t thread_id() const noexcept { return tid_; }
    [[nodiscard]] std::size_t num_threads() const noexcept;

    /// This thread's contiguous chunk of [begin, end) under a static
    /// schedule (first `rem` chunks get one extra element).
    [[nodiscard]] std::pair<index_t, index_t> static_chunk(index_t begin,
                                                           index_t end) const;

    /// Statically-scheduled loop: calls f(i) for each index of this thread's
    /// chunk, then joins the implicit end-of-loop barrier (like
    /// `#pragma omp for`).  Body time is recorded as productive.
    template <class F>
    void for_static(index_t begin, index_t end, F&& f) {
        for_static_nobarrier(begin, end, std::forward<F>(f));
        barrier();
    }

    /// As above without the trailing barrier (like `#pragma omp for nowait`).
    template <class F>
    void for_static_nobarrier(index_t begin, index_t end, F&& f) {
        const auto [lo, hi] = static_chunk(begin, end);
        const auto t0 = now_ns();
        for (index_t i = lo; i < hi; ++i) f(i);
        add_productive(now_ns() - t0);
    }

    /// Chunk-granular work sharing: calls f(lo, hi) once with this thread's
    /// static chunk, recording the body as productive time.  No trailing
    /// barrier (callers inside regions add their own, or rely on the
    /// region's fork-join).
    template <class F>
    void for_range(index_t begin, index_t end, F&& f) {
        const auto [lo, hi] = static_chunk(begin, end);
        const auto t0 = now_ns();
        f(lo, hi);
        add_productive(now_ns() - t0);
    }

    /// Team barrier (sense-reversing; spins with yield).
    void barrier();

    /// min-reduction across the team.  Includes two barriers; every thread
    /// receives the combined result.
    double reduce_min(double local);

    /// OR-reduction for error flags (volume-error aborts in LULESH).
    bool reduce_or(bool local);

private:
    friend class team;
    region_context(team& t, std::size_t tid, bool& sense)
        : team_(t), tid_(tid), sense_(sense) {}

    static std::uint64_t now_ns();
    void add_productive(std::uint64_t ns);

    team& team_;
    std::size_t tid_;
    bool& sense_;  // this thread's barrier sense, owned by the thread loop
};

/// Persistent fork-join thread team.
class team {
public:
    /// Creates a team of `num_threads` participants; `num_threads - 1` OS
    /// threads are spawned (the caller of parallel_region is thread 0).
    explicit team(std::size_t num_threads);
    team(const team&) = delete;
    team& operator=(const team&) = delete;
    ~team();

    [[nodiscard]] std::size_t num_threads() const noexcept { return n_; }

    /// Runs `fn(ctx)` on all team members and blocks until every member has
    /// finished (fork-join).  Must not be called recursively.
    void parallel_region(const std::function<void(region_context&)>& fn);

    /// Convenience: one statically-scheduled loop as its own region —
    /// `#pragma omp parallel for` — calling f(i) per index.
    template <class F>
    void parallel_for(index_t begin, index_t end, F&& f) {
        parallel_region([&](region_context& ctx) {
            ctx.for_static_nobarrier(begin, end, f);
            // The fork-join join below is the implicit barrier.
        });
    }

    /// Chunk-granular `#pragma omp parallel for`: f(lo, hi) per thread.
    template <class F>
    void parallel_for_range(index_t begin, index_t end, F&& f) {
        parallel_region(
            [&](region_context& ctx) { ctx.for_range(begin, end, f); });
    }

    [[nodiscard]] timing_snapshot snapshot_timing() const;
    void reset_timing();

private:
    friend class region_context;

    void thread_loop(std::size_t tid);
    void run_member(std::size_t tid, bool& sense);

    struct alignas(64) per_thread {
        std::uint64_t productive_ns = 0;
        double reduce_slot = 0.0;
        bool flag_slot = false;
    };

    std::size_t n_;
    std::vector<std::thread> threads_;
    std::vector<per_thread> slots_;

    // Fork-join machinery.
    std::mutex fork_mu_;
    std::condition_variable fork_cv_;
    std::uint64_t generation_ = 0;
    const std::function<void(region_context&)>* current_fn_ = nullptr;
    amt::atomic<std::size_t> done_count_{0};
    amt::atomic<bool> shutdown_{false};

    // Sense-reversing barrier state.
    amt::atomic<std::size_t> barrier_count_;
    amt::atomic<bool> barrier_sense_{false};

    // Reduction rendezvous.
    double reduce_result_ = 0.0;
    bool flag_result_ = false;

    // Barrier sense of thread 0.  Lives in the team (not thread_local) so a
    // single master thread can drive several teams without mixing senses;
    // parallel_region is not reentrant, so only one thread uses it at a time.
    bool master_sense_ = false;

    // Timing.
    amt::atomic<std::uint64_t> region_wall_ns_{0};
    amt::atomic<std::uint64_t> regions_entered_{0};
    amt::atomic<std::uint64_t> barriers_{0};
};

}  // namespace ompsim
