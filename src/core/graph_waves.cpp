// core/graph_waves.cpp — the task-wave builders shared by the single-domain
// and multi-domain task-graph drivers.

#include "core/graph_waves.hpp"

#include <optional>
#include <utility>

namespace lulesh::graph {

namespace wave_body {

namespace k = kernels;

void force_stress(domain& d, index_t lo, index_t hi,
                  amt::atomic<bool>& vol_ok) {
    if (!k::force_stress_chunk(d, lo, hi)) {
        vol_ok.store(false, amt::memory_order_relaxed);
    }
}

void force_hourglass(domain& d, index_t lo, index_t hi,
                     amt::atomic<bool>& vol_ok) {
    if (!k::force_hourglass_chunk(d, lo, hi)) {
        vol_ok.store(false, amt::memory_order_relaxed);
    }
}

void node_gather(domain& d, index_t lo, index_t hi) {
    k::gather_forces(d, lo, hi);
    k::calc_acceleration(d, lo, hi);
    k::apply_acceleration_bc_masked(d, lo, hi);
}

void node_velpos(domain& d, index_t lo, index_t hi, real_t dt) {
    k::velocity_position_chunk(d, lo, hi, dt);
}

void elem_fused(domain& d, index_t lo, index_t hi, real_t dt,
                amt::atomic<bool>& vol_ok, amt::atomic<bool>& q_ok) {
    k::calc_kinematics(d, lo, hi, dt);
    if (!k::calc_lagrange_deviatoric(d, lo, hi)) {
        vol_ok.store(false, amt::memory_order_relaxed);
    }
    k::calc_monotonic_q_gradients(d, lo, hi);
    // q of the previous EOS pass; checked before this iteration's EOS
    // overwrites it (next wave).
    if (!k::check_qstop(d, lo, hi)) {
        q_ok.store(false, amt::memory_order_relaxed);
    }
    if (!k::apply_material_vnewc(d, lo, hi)) {
        vol_ok.store(false, amt::memory_order_relaxed);
    }
}

void region_monoq(domain& d, const index_t* list, index_t lo, index_t hi) {
    k::calc_monotonic_q_region(d, list, lo, hi);
}

void region_eos(domain& d, const index_t* list, index_t lo, index_t hi,
                int rep, kernels::eos_scratch& scratch) {
    scratch.resize(static_cast<std::size_t>(hi - lo));
    k::eval_eos_chunk(d, list, lo, hi, rep, scratch);
}

void volume_update(domain& d, index_t lo, index_t hi) {
    k::update_volumes(d, lo, hi);
}

void constraints(domain& d, const index_t* list, index_t lo, index_t hi,
                 kernels::dt_constraints& out) {
    out = k::calc_time_constraints(d, list, lo, hi);
}

}  // namespace wave_body

namespace {
namespace k = kernels;

index_t num_chunks(index_t n, index_t p) { return wave_chunks(n, p); }

/// The sentinel to use for tasks spawned on `d`, or null when
/// instrumentation is off.  The domain check keeps a sentinel bound to one
/// domain from mis-expanding another's connectivity (the dist driver runs
/// several domains over distinct flags, but belt and braces).
iteration_sentinel* sentinel_for(const error_flags& flags, const domain& d) {
    iteration_sentinel* s = flags.sentinel.get();
    return s != nullptr && s->dom == &d ? s : nullptr;
}

/// Wraps a task body with the iteration's resilience plumbing: a fault
/// probe at the wave's site, cooperative cancellation (once any sibling
/// has failed, remaining tasks return immediately — their output is about
/// to be rolled back anyway), progress counters and per-worker in-flight
/// labels for the watchdog, stop-request propagation when the body throws,
/// a task-span annotation naming the wave site and partition for the
/// tracer, and — when the iteration sentinel is on — a hazard-tracker
/// scope over the task's declared access set plus a NaN scan of its
/// written ranges.
template <class Body>
auto guarded(const error_flags& flags, const char* site, std::int32_t part,
             const iteration_sentinel::task_ctx* ctx, Body body) {
    return [progress = flags.progress, token = flags.stop.get_token(),
            stop = flags.stop, sent = flags.sentinel, nan_ok = flags.nan_ok,
            ctx, site, part, body = std::move(body)]() mutable {
        amt::trace::annotate_task(site, part);
        if (token.stop_requested()) return;
        const auto& wk = amt::current_worker();
        const std::size_t slot =
            wk.rt != nullptr
                ? std::min<std::size_t>(wk.index + 1,
                                        progress_state::max_tracked_workers)
                : 0;
        progress->site.store(site, amt::memory_order_relaxed);
        progress->worker_site[slot].store(site, amt::memory_order_relaxed);
        progress->started.fetch_add(1, amt::memory_order_relaxed);
        try {
            amt::fault::probe(site);
            {
                std::optional<amt::hazard::task_scope> scope;
                if (sent && sent->track_hazards && ctx != nullptr) {
                    scope.emplace(static_cast<const void*>(sent->dom), site,
                                  ctx->partition, &ctx->decl);
                }
                body();
            }
            if (sent && sent->scan_nan && ctx != nullptr) {
                const field bad =
                    scan_written_for_nonfinite(ctx->accs, *sent->dom);
                if (bad != field::count) {
                    nan_ok->store(false, amt::memory_order_relaxed);
                    sent->nan_wave_site.store(site,
                                              amt::memory_order_relaxed);
                    sent->nan_field_name.store(field_name(bad),
                                               amt::memory_order_relaxed);
                }
            }
        } catch (...) {
            stop.request_stop();
            progress->worker_site[slot].store(nullptr,
                                              amt::memory_order_relaxed);
            progress->finished.fetch_add(1, amt::memory_order_relaxed);
            throw;
        }
        progress->worker_site[slot].store(nullptr, amt::memory_order_relaxed);
        progress->finished.fetch_add(1, amt::memory_order_relaxed);
    };
}

/// guarded() adapted to a .then() continuation: the antecedent's exception
/// (if any) is re-propagated without counting a task start, so a failed
/// chain shows up once in the progress counters, not once per link.
template <class Body>
auto guarded_cont(const error_flags& flags, const char* site,
                  std::int32_t part,
                  const iteration_sentinel::task_ctx* ctx, Body body) {
    return [g = guarded(flags, site, part, ctx, std::move(body))](
               amt::future<void>&& f) mutable {
        f.get();
        g();
    };
}

std::int32_t part32(index_t part) { return static_cast<std::int32_t>(part); }

}  // namespace

wave spawn_force_wave_range(amt::runtime& rt, domain& d, index_t elem_lo,
                            index_t elem_hi, index_t p_nodal,
                            const error_flags& flags) {
    wave w;
    w.futures.reserve(static_cast<std::size_t>(
        2 * num_chunks(elem_hi - elem_lo, p_nodal)));
    domain* dp = &d;
    auto vol_ok = flags.volume_ok;
    iteration_sentinel* sent = sentinel_for(flags, d);
    for (index_t lo = elem_lo; lo < elem_hi; lo += p_nodal) {
        const index_t hi = std::min<index_t>(lo + p_nodal, elem_hi);
        const index_t part = lo / p_nodal;
        const auto* stress_ctx =
            sent ? sent->add(force_stress_accesses(lo, hi), part) : nullptr;
        const auto* hg_ctx =
            sent ? sent->add(force_hourglass_accesses(lo, hi), part)
                 : nullptr;
        w.futures.push_back(amt::async(
            rt,
            guarded(flags, wave_site::force, part32(part), stress_ctx,
                    [dp, lo, hi, vol_ok] {
                wave_body::force_stress(*dp, lo, hi, *vol_ok);
            })));
        w.futures.push_back(amt::async(
            rt, guarded(flags, wave_site::force, part32(part), hg_ctx,
                        [dp, lo, hi, vol_ok] {
                wave_body::force_hourglass(*dp, lo, hi, *vol_ok);
            })));
    }
    w.tasks = w.futures.size();
    return w;
}

wave spawn_force_wave(amt::runtime& rt, domain& d, index_t p_nodal,
                      const error_flags& flags) {
    return spawn_force_wave_range(rt, d, 0, d.numElem(), p_nodal, flags);
}

wave spawn_node_wave(amt::runtime& rt, domain& d, index_t p_nodal, real_t dt,
                     const error_flags& flags) {
    wave w;
    const index_t nn = d.numNode();
    w.futures.reserve(static_cast<std::size_t>(num_chunks(nn, p_nodal)));
    domain* dp = &d;
    iteration_sentinel* sent = sentinel_for(flags, d);
    for (index_t lo = 0; lo < nn; lo += p_nodal) {
        const index_t hi = std::min<index_t>(lo + p_nodal, nn);
        const index_t part = lo / p_nodal;
        const auto* gather_ctx =
            sent ? sent->add(node_gather_accesses(lo, hi), part) : nullptr;
        const auto* velpos_ctx =
            sent ? sent->add(node_velpos_accesses(lo, hi), part) : nullptr;
        w.futures.push_back(
            amt::async(rt, guarded(flags, wave_site::node, part32(part),
                                   gather_ctx,
                                   [dp, lo, hi] {
                                       wave_body::node_gather(*dp, lo, hi);
                                   }))
                .then(guarded_cont(flags, wave_site::node, part32(part),
                                   velpos_ctx,
                                   [dp, lo, hi, dt] {
                                       wave_body::node_velpos(*dp, lo, hi,
                                                              dt);
                                   })));
    }
    w.tasks = 2 * w.futures.size();
    return w;
}

wave spawn_elem_wave_range(amt::runtime& rt, domain& d, index_t elem_lo,
                           index_t elem_hi, index_t p_elems, real_t dt,
                           const error_flags& flags) {
    wave w;
    w.futures.reserve(
        static_cast<std::size_t>(num_chunks(elem_hi - elem_lo, p_elems)));
    domain* dp = &d;
    auto vol_ok = flags.volume_ok;
    auto q_ok = flags.qstop_ok;
    iteration_sentinel* sent = sentinel_for(flags, d);
    for (index_t lo = elem_lo; lo < elem_hi; lo += p_elems) {
        const index_t hi = std::min<index_t>(lo + p_elems, elem_hi);
        const auto* ctx =
            sent ? sent->add(elem_wave_accesses(lo, hi), lo / p_elems)
                 : nullptr;
        w.futures.push_back(amt::async(
            rt,
            guarded(flags, wave_site::elem, part32(lo / p_elems), ctx,
                    [dp, lo, hi, dt, vol_ok, q_ok] {
                wave_body::elem_fused(*dp, lo, hi, dt, *vol_ok, *q_ok);
            })));
    }
    w.tasks = w.futures.size();
    return w;
}

wave spawn_elem_wave(amt::runtime& rt, domain& d, index_t p_elems, real_t dt,
                     const error_flags& flags) {
    return spawn_elem_wave_range(rt, d, 0, d.numElem(), p_elems, dt, flags);
}

wave spawn_region_wave(amt::runtime& rt, domain& d, index_t p_elems,
                       const error_flags& flags) {
    wave w;
    const index_t ne = d.numElem();
    domain* dp = &d;
    iteration_sentinel* sent = sentinel_for(flags, d);
    index_t part = 0;
    for (index_t r = 0; r < d.numReg(); ++r) {
        const auto& list = d.regElemList(r);
        const auto count = static_cast<index_t>(list.size());
        const int rep = k::eos_rep_for_region(d, r);
        const index_t* lp = list.data();
        for (index_t lo = 0; lo < count; lo += p_elems, ++part) {
            const index_t hi = std::min<index_t>(lo + p_elems, count);
            const auto* monoq_ctx =
                sent ? sent->add(region_monoq_accesses(lp, lo, hi), part)
                     : nullptr;
            const auto* eos_ctx =
                sent ? sent->add(region_eos_accesses(lp, lo, hi), part)
                     : nullptr;
            w.futures.push_back(
                amt::async(rt, guarded(flags, wave_site::region_eos,
                                       part32(part), monoq_ctx,
                                       [dp, lp, lo, hi] {
                                           wave_body::region_monoq(*dp, lp,
                                                                   lo, hi);
                                       }))
                    .then(guarded_cont(
                        flags, wave_site::region_eos, part32(part), eos_ctx,
                        [dp, lp, lo, hi, rep] {
                            // Task-local EOS scratch, sized to the chunk (T5).
                            k::eos_scratch scratch;
                            wave_body::region_eos(*dp, lp, lo, hi, rep,
                                                  scratch);
                        })));
            w.tasks += 2;
        }
    }
    for (index_t lo = 0; lo < ne; lo += p_elems) {
        const index_t hi = std::min<index_t>(lo + p_elems, ne);
        const auto* vol_ctx =
            sent ? sent->add(volume_update_accesses(lo, hi), lo / p_elems)
                 : nullptr;
        w.futures.push_back(amt::async(
            rt, guarded(flags, wave_site::region_eos, part32(lo / p_elems),
                        vol_ctx, [dp, lo, hi] {
                wave_body::volume_update(*dp, lo, hi);
            })));
        ++w.tasks;
    }
    return w;
}

std::size_t constraint_slot_count(const domain& d, index_t p_elems) {
    std::size_t slots = 0;
    for (index_t r = 0; r < d.numReg(); ++r) {
        slots += static_cast<std::size_t>(num_chunks(
            static_cast<index_t>(d.regElemList(r).size()), p_elems));
    }
    return slots;
}

wave spawn_constraint_wave(amt::runtime& rt, domain& d, index_t p_elems,
                           kernels::dt_constraints* partials,
                           const error_flags& flags) {
    wave w;
    domain* dp = &d;
    iteration_sentinel* sent = sentinel_for(flags, d);
    std::size_t slot = 0;
    for (index_t r = 0; r < d.numReg(); ++r) {
        const auto& list = d.regElemList(r);
        const auto count = static_cast<index_t>(list.size());
        const index_t* lp = list.data();
        for (index_t lo = 0; lo < count; lo += p_elems) {
            const index_t hi = std::min<index_t>(lo + p_elems, count);
            k::dt_constraints* out = partials + slot;
            const auto* ctx =
                sent ? sent->add(constraint_accesses(
                                     lp, lo, hi,
                                     static_cast<index_t>(slot)),
                                 static_cast<std::int64_t>(slot))
                     : nullptr;
            ++slot;
            w.futures.push_back(amt::async(
                rt, guarded(flags, wave_site::constraints,
                            static_cast<std::int32_t>(slot - 1), ctx,
                            [dp, lp, lo, hi, out] {
                                wave_body::constraints(*dp, lp, lo, hi, *out);
                            })));
        }
    }
    w.tasks = w.futures.size();
    return w;
}

}  // namespace lulesh::graph
