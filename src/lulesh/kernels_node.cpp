// lulesh/kernels_node.cpp — LagrangeNodal kernels: stress and hourglass
// forces (element-wise producers), nodal force gather, acceleration,
// boundary conditions, velocity, and position.

#include <cmath>

#include "lulesh/elem_geometry.hpp"
#include "lulesh/fields.hpp"
#include "lulesh/kernels.hpp"

namespace lulesh::kernels {

namespace {

/// Corner forces of one element from its stress state; writes
/// d.fx_elem[k*8 .. k*8+7] (and y/z).  Returns the Jacobian determinant.
inline real_t stress_corner_forces_elem(domain& d, index_t k, real_t sxx,
                                        real_t syy, real_t szz) {
    real_t B[3][8];
    real_t x_local[8], y_local[8], z_local[8];
    const index_t* nl = d.nodelist(k);
    for (int i = 0; i < 8; ++i) {
        const auto n = static_cast<std::size_t>(nl[i]);
        x_local[i] = d.x[n];
        y_local[i] = d.y[n];
        z_local[i] = d.z[n];
    }
    real_t determ;
    geom::calc_elem_shape_function_derivatives(x_local, y_local, z_local, B,
                                               &determ);
    geom::calc_elem_node_normals(B[0], B[1], B[2], x_local, y_local, z_local);
    const auto base = static_cast<std::size_t>(k) * 8;
    geom::sum_elem_stresses_to_node_forces(B, sxx, syy, szz,
                                           &d.fx_elem[base], &d.fy_elem[base],
                                           &d.fz_elem[base]);
    return determ;
}

/// Hourglass control of one element: volume derivatives and corner
/// coordinates.  Returns volo * v (the hourglass "determ").
inline real_t hourglass_control_elem(const domain& d, index_t i, real_t* dvdx8,
                                     real_t* dvdy8, real_t* dvdz8, real_t* x8,
                                     real_t* y8, real_t* z8) {
    real_t x1[8], y1[8], z1[8];
    real_t pfx[8], pfy[8], pfz[8];
    const index_t* nl = d.nodelist(i);
    for (int c = 0; c < 8; ++c) {
        const auto n = static_cast<std::size_t>(nl[c]);
        x1[c] = d.x[n];
        y1[c] = d.y[n];
        z1[c] = d.z[n];
    }
    geom::calc_elem_volume_derivative(pfx, pfy, pfz, x1, y1, z1);
    for (int c = 0; c < 8; ++c) {
        dvdx8[c] = pfx[c];
        dvdy8[c] = pfy[c];
        dvdz8[c] = pfz[c];
        x8[c] = x1[c];
        y8[c] = y1[c];
        z8[c] = z1[c];
    }
    return d.volo[static_cast<std::size_t>(i)] *
           d.v[static_cast<std::size_t>(i)];
}

/// FB hourglass force of one element; writes d.fx_elem_hg[i2*8..] (and y/z).
inline void fb_hourglass_elem(domain& d, index_t i2, const real_t* dvdx8,
                              const real_t* dvdy8, const real_t* dvdz8,
                              const real_t* x8, const real_t* y8,
                              const real_t* z8, real_t determ,
                              real_t hourg) {
    real_t hourgam[8][4];
    for (int i1 = 0; i1 < 4; ++i1) {
        const real_t* gam = geom::hourglass_gamma[i1];
        real_t hourmodx = 0, hourmody = 0, hourmodz = 0;
        for (int c = 0; c < 8; ++c) {
            hourmodx += x8[c] * gam[c];
            hourmody += y8[c] * gam[c];
            hourmodz += z8[c] * gam[c];
        }
        const real_t volinv = real_t(1.0) / determ;
        for (int c = 0; c < 8; ++c) {
            hourgam[c][i1] =
                gam[c] - volinv * (dvdx8[c] * hourmodx + dvdy8[c] * hourmody +
                                   dvdz8[c] * hourmodz);
        }
    }

    const auto k = static_cast<std::size_t>(i2);
    const real_t ss1 = d.ss[k];
    const real_t mass1 = d.elemMass[k];
    const real_t volume13 = std::cbrt(determ);
    const real_t coefficient =
        -hourg * real_t(0.01) * ss1 * mass1 / volume13;

    real_t xd1[8], yd1[8], zd1[8];
    const index_t* nl = d.nodelist(i2);
    for (int c = 0; c < 8; ++c) {
        const auto n = static_cast<std::size_t>(nl[c]);
        xd1[c] = d.xd[n];
        yd1[c] = d.yd[n];
        zd1[c] = d.zd[n];
    }
    const auto base = k * 8;
    geom::calc_elem_fb_hourglass_force(xd1, yd1, zd1, hourgam, coefficient,
                                       &d.fx_elem_hg[base],
                                       &d.fy_elem_hg[base],
                                       &d.fz_elem_hg[base]);
}

}  // namespace

void init_stress_terms(const domain& d, index_t lo, index_t hi, real_t* sigxx,
                       real_t* sigyy, real_t* sigzz) {
    for (index_t k = lo; k < hi; ++k) {
        const auto i = static_cast<std::size_t>(k);
        sigxx[k] = sigyy[k] = sigzz[k] = -d.p[i] - d.q[i];
    }
}

bool integrate_stress(domain& d, index_t lo, index_t hi, const real_t* sigxx,
                      const real_t* sigyy, const real_t* sigzz) {
    bool ok = true;
    for (index_t k = lo; k < hi; ++k) {
        const real_t determ =
            stress_corner_forces_elem(d, k, sigxx[k], sigyy[k], sigzz[k]);
        if (determ <= real_t(0.0)) ok = false;
    }
    return ok;
}

bool calc_hourglass_control(domain& d, index_t lo, index_t hi, real_t* dvdx,
                            real_t* dvdy, real_t* dvdz, real_t* x8n,
                            real_t* y8n, real_t* z8n, real_t* determ) {
    bool ok = true;
    for (index_t i = lo; i < hi; ++i) {
        const auto base = static_cast<std::size_t>(i) * 8;
        determ[i] = hourglass_control_elem(d, i, &dvdx[base], &dvdy[base],
                                           &dvdz[base], &x8n[base], &y8n[base],
                                           &z8n[base]);
        if (d.v[static_cast<std::size_t>(i)] <= real_t(0.0)) ok = false;
    }
    return ok;
}

void calc_fb_hourglass_force(domain& d, index_t lo, index_t hi,
                             const real_t* dvdx, const real_t* dvdy,
                             const real_t* dvdz, const real_t* x8n,
                             const real_t* y8n, const real_t* z8n,
                             const real_t* determ, real_t hgcoef) {
    for (index_t i = lo; i < hi; ++i) {
        const auto base = static_cast<std::size_t>(i) * 8;
        fb_hourglass_elem(d, i, &dvdx[base], &dvdy[base], &dvdz[base],
                          &x8n[base], &y8n[base], &z8n[base], determ[i],
                          hgcoef);
    }
}

bool force_stress_chunk(domain& d, index_t lo, index_t hi) {
    // Task-local sigma temporaries (paper trick T5): one value per element in
    // the chunk instead of a mesh-sized global array.
    hazard_touch(field::p, false, lo, hi);
    hazard_touch(field::q, false, lo, hi);
    hazard_touch(field::fx_elem, true, lo, hi);
    hazard_touch(field::fy_elem, true, lo, hi);
    hazard_touch(field::fz_elem, true, lo, hi);
    hazard_covers(field::x);   // corner gather through nodelist (elem_nodes)
    hazard_covers(field::y);
    hazard_covers(field::z);
    bool ok = true;
    for (index_t k = lo; k < hi; ++k) {
        const auto i = static_cast<std::size_t>(k);
        const real_t sig = -d.p[i] - d.q[i];
        const real_t determ = stress_corner_forces_elem(d, k, sig, sig, sig);
        if (determ <= real_t(0.0)) ok = false;
    }
    return ok;
}

bool force_hourglass_chunk(domain& d, index_t lo, index_t hi) {
    // Fuses hourglass control and FB force per element with stack-local
    // temporaries (tricks T3+T5).
    hazard_touch(field::v, false, lo, hi);
    hazard_touch(field::ss, false, lo, hi);
    hazard_touch(field::volo, false, lo, hi);
    hazard_touch(field::elem_mass, false, lo, hi);
    hazard_touch(field::fx_elem_hg, true, lo, hi);
    hazard_touch(field::fy_elem_hg, true, lo, hi);
    hazard_touch(field::fz_elem_hg, true, lo, hi);
    hazard_covers(field::x);   // corner gather through nodelist (elem_nodes)
    hazard_covers(field::y);
    hazard_covers(field::z);
    hazard_covers(field::xd);
    hazard_covers(field::yd);
    hazard_covers(field::zd);
    bool ok = true;
    for (index_t i = lo; i < hi; ++i) {
        real_t dvdx8[8], dvdy8[8], dvdz8[8], x8[8], y8[8], z8[8];
        const real_t determ =
            hourglass_control_elem(d, i, dvdx8, dvdy8, dvdz8, x8, y8, z8);
        if (d.v[static_cast<std::size_t>(i)] <= real_t(0.0)) ok = false;
        if (d.hgcoef > real_t(0.0)) {
            fb_hourglass_elem(d, i, dvdx8, dvdy8, dvdz8, x8, y8, z8, determ,
                              d.hgcoef);
        }
    }
    return ok;
}

void gather_forces(domain& d, index_t lo, index_t hi) {
    hazard_touch(field::fx, true, lo, hi);
    hazard_touch(field::fy, true, lo, hi);
    hazard_touch(field::fz, true, lo, hi);
    // Corner-force reads go through nodeElemCornerList: a node range maps to
    // a scattered set of corner positions (node_corners closure).
    hazard_covers(field::fx_elem);
    hazard_covers(field::fy_elem);
    hazard_covers(field::fz_elem);
    hazard_covers(field::fx_elem_hg);
    hazard_covers(field::fy_elem_hg);
    hazard_covers(field::fz_elem_hg);
    for (index_t n = lo; n < hi; ++n) {
        const index_t count = d.nodeElemCount(n);
        const index_t* corners = d.nodeElemCornerList(n);
        real_t fx_stress = 0, fy_stress = 0, fz_stress = 0;
        for (index_t c = 0; c < count; ++c) {
            const auto pos = static_cast<std::size_t>(corners[c]);
            fx_stress += d.fx_elem[pos];
            fy_stress += d.fy_elem[pos];
            fz_stress += d.fz_elem[pos];
        }
        real_t fx_hg = 0, fy_hg = 0, fz_hg = 0;
        for (index_t c = 0; c < count; ++c) {
            const auto pos = static_cast<std::size_t>(corners[c]);
            fx_hg += d.fx_elem_hg[pos];
            fy_hg += d.fy_elem_hg[pos];
            fz_hg += d.fz_elem_hg[pos];
        }
        const auto i = static_cast<std::size_t>(n);
        d.fx[i] = fx_stress + fx_hg;
        d.fy[i] = fy_stress + fy_hg;
        d.fz[i] = fz_stress + fz_hg;
    }
}

void calc_acceleration(domain& d, index_t lo, index_t hi) {
    hazard_touch(field::xdd, true, lo, hi);
    hazard_touch(field::ydd, true, lo, hi);
    hazard_touch(field::zdd, true, lo, hi);
    hazard_touch(field::fx, false, lo, hi);
    hazard_touch(field::fy, false, lo, hi);
    hazard_touch(field::fz, false, lo, hi);
    hazard_touch(field::nodal_mass, false, lo, hi);
    for (index_t n = lo; n < hi; ++n) {
        const auto i = static_cast<std::size_t>(n);
        d.xdd[i] = d.fx[i] / d.nodalMass[i];
        d.ydd[i] = d.fy[i] / d.nodalMass[i];
        d.zdd[i] = d.fz[i] / d.nodalMass[i];
    }
}

void apply_acceleration_bc_masked(domain& d, index_t lo, index_t hi) {
    for (index_t n = lo; n < hi; ++n) {
        const auto i = static_cast<std::size_t>(n);
        const std::uint8_t m = d.symm_mask[i];
        if (m == 0) continue;
        if (m & NODE_SYMM_X) d.xdd[i] = real_t(0.0);
        if (m & NODE_SYMM_Y) d.ydd[i] = real_t(0.0);
        if (m & NODE_SYMM_Z) d.zdd[i] = real_t(0.0);
    }
}

void apply_acceleration_bc_x(domain& d, index_t lo, index_t hi) {
    for (index_t j = lo; j < hi; ++j) {
        d.xdd[static_cast<std::size_t>(d.symmX[static_cast<std::size_t>(j)])] =
            real_t(0.0);
    }
}

void apply_acceleration_bc_y(domain& d, index_t lo, index_t hi) {
    for (index_t j = lo; j < hi; ++j) {
        d.ydd[static_cast<std::size_t>(d.symmY[static_cast<std::size_t>(j)])] =
            real_t(0.0);
    }
}

void apply_acceleration_bc_z(domain& d, index_t lo, index_t hi) {
    for (index_t j = lo; j < hi; ++j) {
        d.zdd[static_cast<std::size_t>(d.symmZ[static_cast<std::size_t>(j)])] =
            real_t(0.0);
    }
}

void calc_velocity(domain& d, index_t lo, index_t hi, real_t dt) {
    const real_t u_cut = d.u_cut;
    for (index_t n = lo; n < hi; ++n) {
        const auto i = static_cast<std::size_t>(n);
        real_t xdtmp = d.xd[i] + d.xdd[i] * dt;
        if (std::fabs(xdtmp) < u_cut) xdtmp = real_t(0.0);
        d.xd[i] = xdtmp;

        real_t ydtmp = d.yd[i] + d.ydd[i] * dt;
        if (std::fabs(ydtmp) < u_cut) ydtmp = real_t(0.0);
        d.yd[i] = ydtmp;

        real_t zdtmp = d.zd[i] + d.zdd[i] * dt;
        if (std::fabs(zdtmp) < u_cut) zdtmp = real_t(0.0);
        d.zd[i] = zdtmp;
    }
}

void calc_position(domain& d, index_t lo, index_t hi, real_t dt) {
    for (index_t n = lo; n < hi; ++n) {
        const auto i = static_cast<std::size_t>(n);
        d.x[i] += d.xd[i] * dt;
        d.y[i] += d.yd[i] * dt;
        d.z[i] += d.zd[i] * dt;
    }
}

void velocity_position_chunk(domain& d, index_t lo, index_t hi, real_t dt) {
    hazard_touch(field::xdd, false, lo, hi);
    hazard_touch(field::ydd, false, lo, hi);
    hazard_touch(field::zdd, false, lo, hi);
    hazard_touch(field::xd, true, lo, hi);
    hazard_touch(field::yd, true, lo, hi);
    hazard_touch(field::zd, true, lo, hi);
    hazard_touch(field::x, true, lo, hi);
    hazard_touch(field::y, true, lo, hi);
    hazard_touch(field::z, true, lo, hi);
    // Two separate loops within one task body — the loops are deliberately
    // *not* fused element-wise, preserving the reference's computational
    // structure (paper Section IV, Figure 7).
    calc_velocity(d, lo, hi, dt);
    calc_position(d, lo, hi, dt);
}

}  // namespace lulesh::kernels
