// Replay-equivalence and fault-interplay tests for the compiled-graph
// replay mode of the task-graph driver.
//
// The central property: N iterations executed by re-arming the compiled
// graph are BITWISE identical to N iterations executed by rebuilding the
// future/when_all web every cycle (and hence, by the driver-equivalence
// suite, to the serial reference).  Plus the compiled-form structural
// audit, the re-arm counting invariant, and the interplay with fault
// injection and the checkpoint chain: a replay killed mid-flight must
// leave the graph re-armable with fresh stop state, and the resilient
// loop must recover a faulted replay bitwise.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "amt/amt.hpp"
#include "amt/fault.hpp"
#include "core/driver_taskgraph.hpp"
#include "lulesh/checkpoint.hpp"
#include "lulesh/driver.hpp"
#include "lulesh/resilient_run.hpp"
#include "lulesh/validate.hpp"

namespace {

using lulesh::domain;
using lulesh::graph_mode;
using lulesh::options;
using lulesh::partition_sizes;

options opts(lulesh::index_t size, lulesh::index_t regions) {
    options o;
    o.size = size;
    o.num_regions = regions;
    return o;
}

std::string serialized(const domain& d) {
    std::ostringstream os;
    lulesh::save_checkpoint(d, os);
    return os.str();
}

std::unique_ptr<domain> evolve(const options& o, graph_mode mode, int iters,
                               std::size_t threads = 4,
                               partition_sizes parts = {64, 64}) {
    auto d = std::make_unique<domain>(o);
    amt::runtime rt(threads);
    lulesh::taskgraph_driver drv(rt, parts);
    drv.set_graph_mode(mode);
    const auto rr = lulesh::run_simulation(*d, drv, iters);
    EXPECT_EQ(rr.run_status, lulesh::status::ok);
    return d;
}

struct fault_guard {
    ~fault_guard() {
        amt::fault::disarm();
        amt::fault::reset_stats();
        amt::fault::set_epoch(-1);
    }
};

// ---------------- equivalence ----------------

struct ReplayParam {
    lulesh::index_t size;
    lulesh::index_t regions;
};

class ReplayEquivalence : public ::testing::TestWithParam<ReplayParam> {};

TEST_P(ReplayEquivalence, ReplayBitwiseIdenticalToFreshBuild) {
    const auto& p = GetParam();
    const options o = opts(p.size, p.regions);
    constexpr int iters = 4;
    auto built = evolve(o, graph_mode::build, iters);
    auto replayed = evolve(o, graph_mode::replay, iters);
    EXPECT_EQ(lulesh::max_field_difference(*built, *replayed), 0.0);
    EXPECT_EQ(replayed->cycle, built->cycle);
    EXPECT_EQ(replayed->time_, built->time_);
    EXPECT_EQ(replayed->deltatime, built->deltatime);
    EXPECT_EQ(replayed->dtcourant, built->dtcourant);
    EXPECT_EQ(replayed->dthydro, built->dthydro);
    EXPECT_EQ(serialized(*replayed), serialized(*built));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRegions, ReplayEquivalence,
    ::testing::Values(ReplayParam{8, 1}, ReplayParam{8, 11},
                      ReplayParam{16, 1}, ReplayParam{16, 11},
                      ReplayParam{24, 1}, ReplayParam{24, 11}),
    [](const ::testing::TestParamInfo<ReplayParam>& pinfo) {
        return "s" + std::to_string(pinfo.param.size) + "_r" +
               std::to_string(pinfo.param.regions);
    });

TEST(ReplayEquivalence, OneIterationGraphIsRecompiledWhenShapeChanges) {
    // Same driver, two domains with different partitioning state: the
    // compiled graph must not be reused across a shape change.
    amt::runtime rt(2);
    lulesh::taskgraph_driver drv(rt, {64, 64});
    domain d1(opts(8, 3));
    lulesh::run_simulation(d1, drv, 2);
    const auto* first = drv.compiled();
    ASSERT_NE(first, nullptr);

    domain d2(opts(10, 3));
    lulesh::run_simulation(d2, drv, 2);
    ASSERT_NE(drv.compiled(), nullptr);
    // The driver recompiled for d2 (fresh generation count, matching
    // domain) rather than replaying d1's graph.
    EXPECT_EQ(drv.compiled()->replays(), 2u);

    // Reference check: d2 evolved through the shape change matches a
    // domain evolved from scratch.
    auto fresh = evolve(opts(10, 3), graph_mode::replay, 2, 2);
    EXPECT_EQ(serialized(d2), serialized(*fresh));
}

TEST(ReplayEquivalence, ReplayCountMatchesCyclesRun) {
    domain d(opts(8, 11));
    amt::runtime rt(4);
    lulesh::taskgraph_driver drv(rt, {64, 64});
    const auto rr = lulesh::run_simulation(d, drv, 5);
    EXPECT_EQ(rr.run_status, lulesh::status::ok);
    ASSERT_NE(drv.compiled(), nullptr);
    EXPECT_EQ(drv.compiled()->replays(), 5u);
    // One execution per node per replay — the graph engine's invariant,
    // re-checked end to end through the driver.
    const auto& g = drv.compiled()->graph();
    EXPECT_EQ(g.generation(), 5u);
}

TEST(ReplayEquivalence, CompiledAuditPassesOnTheRearmedGraph) {
    // The structural audit exercised by --audit-graph: every model task,
    // edge and barrier present in the compiled form after re-arming.
    const std::string err =
        lulesh::audit_compiled_replay(opts(8, 11), {64, 64}, 4);
    EXPECT_EQ(err, "");
    const std::string err_small =
        lulesh::audit_compiled_replay(opts(6, 1), {32, 32}, 2);
    EXPECT_EQ(err_small, "");
}

// ---------------- fault / cancel interplay ----------------

TEST(ReplayFault, RearmedTasksObserveFreshStopState) {
    fault_guard guard;
    domain d(opts(8, 5));
    amt::runtime rt(4);
    lulesh::taskgraph_driver drv(rt, {64, 64});

    // Warm the compiled graph, then kill one replay mid-flight: the
    // injected fault requests stop, skips the remaining bodies of that
    // replay, and surfaces as task_fault.
    lulesh::run_simulation(d, drv, 3);
    amt::fault::plan p;
    p.site = "region_eos";
    p.epoch = 4;  // the first cycle of the continuation run below
    p.max_injections = 1;
    amt::fault::arm(p);
    const auto faulted = lulesh::run_simulation(d, drv, 6);
    amt::fault::disarm();
    EXPECT_EQ(faulted.run_status, lulesh::status::task_fault);
    EXPECT_EQ(amt::fault::snapshot().injections, 1u);

    // The SAME driver (same compiled graph) keeps going: re-arming resets
    // the consumed stop state, so subsequent replays run all bodies again.
    ASSERT_NE(drv.compiled(), nullptr);
    const auto replays_before = drv.compiled()->replays();
    const auto resumed = lulesh::run_simulation(d, drv, 8);
    EXPECT_EQ(resumed.run_status, lulesh::status::ok);
    EXPECT_EQ(resumed.cycles, 8);
    EXPECT_GT(drv.compiled()->replays(), replays_before);
}

TEST(ReplayFault, FaultMidReplayRecoversBitwiseViaCheckpointChain) {
    fault_guard guard;
    const options o = opts(6, 5);

    // Clean baseline through the replay driver.
    auto clean = evolve(o, graph_mode::replay, 20, 2, {32, 32});

    // Same run with a fault injected into cycle 6's EOS wave; the
    // resilient loop rolls back to the PR 5 checkpoint chain and retries.
    amt::fault::plan p;
    p.site = "region_eos";
    p.epoch = 6;
    p.max_injections = 1;
    amt::fault::arm(p);

    domain d(o);
    amt::runtime rt(2);
    lulesh::taskgraph_driver drv(rt, {32, 32});
    lulesh::resilience_options ropt;
    ropt.checkpoint_every = 2;
    const auto rr = lulesh::run_resilient(d, drv, ropt, 20);
    amt::fault::disarm();

    EXPECT_EQ(rr.result.run_status, lulesh::status::ok);
    EXPECT_EQ(rr.rollbacks, 1);
    EXPECT_EQ(amt::fault::snapshot().injections, 1u);
    EXPECT_EQ(lulesh::max_field_difference(*clean, d), 0.0);
    EXPECT_EQ(serialized(d), serialized(*clean));
}

TEST(ReplayFault, BuildAndReplayFaultReportsAgree) {
    // The fault surfaces identically in both modes (same site, same cycle,
    // same status), so tooling built on the reports is mode-agnostic.
    for (const auto mode : {graph_mode::build, graph_mode::replay}) {
        fault_guard guard;
        amt::fault::plan p;
        p.site = "force";
        p.epoch = 2;
        p.max_injections = 1;
        amt::fault::arm(p);
        domain d(opts(8, 3));
        amt::runtime rt(2);
        lulesh::taskgraph_driver drv(rt, {64, 64});
        drv.set_graph_mode(mode);
        const auto rr = lulesh::run_simulation(d, drv, 5);
        amt::fault::disarm();
        EXPECT_EQ(rr.run_status, lulesh::status::task_fault);
        EXPECT_EQ(rr.cycles, 2);
        EXPECT_NE(rr.error_message.find("cycle 2"), std::string::npos);
        EXPECT_EQ(amt::fault::snapshot().injections, 1u);
    }
}

}  // namespace
