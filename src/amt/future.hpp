// amt/future.hpp
//
// Futures, promises and continuations — the "futurization" primitives of the
// amt runtime, API-compatible in spirit with hpx::future / hpx::promise:
//
//   amt::future<int> f1 = amt::async(do_some_work, 42);
//   amt::future<int> f2 = f1.then([](amt::future<int>&& f) {
//       return do_more_work(f.get());
//   });
//   int result = f2.get();
//
// Key semantic choices (documented because they shape the LULESH drivers):
//  * then() consumes the source future and schedules the continuation as a
//    new task by default (launch::async); launch::sync runs it inline on
//    whichever thread makes the antecedent ready.
//  * get()/wait() on a *worker* thread blocks cooperatively: the worker
//    executes other pending tasks while waiting, which models HPX's
//    lightweight-thread suspension without stackful coroutines and makes
//    nested blocking deadlock-free.
//  * get()/wait() on an external (non-worker) thread blocks on a condition
//    variable, so a runtime with N workers has exactly N computing threads.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <future>  // std::future_error, std::future_errc
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "amt/scheduler.hpp"
#include "amt/task.hpp"
#include "amt/unique_function.hpp"

namespace amt {

template <class T>
class future;
template <class T>
class promise;

/// Continuation launch policy, mirroring hpx::launch.
enum class launch {
    async,  ///< schedule the continuation as a new task (default)
    sync    ///< run the continuation inline when the antecedent completes
};

namespace detail {

/// State shared between a promise/task and its future.  Holds readiness,
/// the value or exception, and the continuation callbacks registered via
/// then()/when_all().
class shared_state_base {
public:
    shared_state_base() = default;
    shared_state_base(const shared_state_base&) = delete;
    shared_state_base& operator=(const shared_state_base&) = delete;
    virtual ~shared_state_base() = default;

    [[nodiscard]] bool is_ready() const {
        std::lock_guard lk(mu_);
        return ready_;
    }

    void set_exception(std::exception_ptr e) {
        std::unique_lock lk(mu_);
        if (ready_) throw std::future_error(std::future_errc::promise_already_satisfied);
        error_ = std::move(e);
        mark_ready(lk);
    }

    /// Registers `cb` to run exactly once when the state becomes ready; runs
    /// it immediately (on the calling thread) if it already is.
    void add_callback(unique_function<void()> cb) {
        {
            std::lock_guard lk(mu_);
            if (!ready_) {
                callbacks_.push_back(std::move(cb));
                return;
            }
        }
        cb();
    }

    /// Blocks until ready.  Cooperative on worker threads (see file header).
    void wait() const {
        {
            std::lock_guard lk(mu_);
            if (ready_) return;
        }
        runtime* rt = runtime::active();
        if (rt != nullptr && rt->on_worker_thread()) {
            while (!is_ready()) {
                if (!rt->try_run_one()) std::this_thread::yield();
            }
            return;
        }
        std::unique_lock lk(mu_);
        cv_.wait(lk, [this] { return ready_; });
    }

    /// Waits until ready or `deadline`, whichever comes first; returns
    /// whether the state is ready.  Cooperative on worker threads, like
    /// wait().  The building block for watchdogs and halo-exchange
    /// timeouts, where "still not done" is information, not a bug.
    bool wait_until(std::chrono::steady_clock::time_point deadline) const {
        {
            std::lock_guard lk(mu_);
            if (ready_) return true;
        }
        runtime* rt = runtime::active();
        if (rt != nullptr && rt->on_worker_thread()) {
            while (!is_ready()) {
                if (std::chrono::steady_clock::now() >= deadline) return false;
                if (!rt->try_run_one()) std::this_thread::yield();
            }
            return true;
        }
        std::unique_lock lk(mu_);
        return cv_.wait_until(lk, deadline, [this] { return ready_; });
    }

protected:
    /// Precondition: `lk` holds `mu_` and the value/error is stored.
    /// Publishes readiness, then runs the callbacks outside the lock.
    void mark_ready(std::unique_lock<std::mutex>& lk) {
        ready_ = true;
        std::vector<unique_function<void()>> cbs;
        cbs.swap(callbacks_);
        cv_.notify_all();
        lk.unlock();
        for (auto& cb : cbs) cb();
    }

    void rethrow_if_error() const {
        if (error_) std::rethrow_exception(error_);
    }

    mutable std::mutex mu_;
    mutable std::condition_variable cv_;
    bool ready_ = false;
    std::exception_ptr error_;
    std::vector<unique_function<void()>> callbacks_;
};

template <class T>
class shared_state final : public shared_state_base {
public:
    template <class U>
    void set_value(U&& v) {
        std::unique_lock lk(mu_);
        if (ready_) throw std::future_error(std::future_errc::promise_already_satisfied);
        value_.emplace(std::forward<U>(v));
        mark_ready(lk);
    }

    /// Precondition: ready.  Rethrows a stored exception; otherwise moves
    /// the value out (one-shot, like std::future::get).
    T take_value() {
        rethrow_if_error();
        T v = std::move(*value_);
        value_.reset();
        return v;
    }

    /// Precondition: ready.  Rethrows a stored exception; otherwise returns
    /// a reference to the value without consuming it (shared_future::get).
    const T& peek_value() const {
        rethrow_if_error();
        return *value_;
    }

private:
    std::optional<T> value_;
};

template <>
class shared_state<void> final : public shared_state_base {
public:
    void set_value() {
        std::unique_lock lk(mu_);
        if (ready_) throw std::future_error(std::future_errc::promise_already_satisfied);
        mark_ready(lk);
    }

    void take_value() { rethrow_if_error(); }
    void peek_value() const { rethrow_if_error(); }
};

template <class T>
using state_ptr = std::shared_ptr<shared_state<T>>;

/// Invokes `fn(args...)` and routes the result (value or exception) into
/// `st`.  Central helper shared by async(), then() and dataflow().
template <class R, class F, class... Args>
void fulfill(const state_ptr<R>& st, F& fn, Args&&... args) {
    try {
        if constexpr (std::is_void_v<R>) {
            fn(std::forward<Args>(args)...);
            st->set_value();
        } else {
            st->set_value(fn(std::forward<Args>(args)...));
        }
    } catch (...) {
        st->set_exception(std::current_exception());
    }
}

}  // namespace detail

/// One-shot handle to an asynchronous result (see file header).
template <class T>
class future {
public:
    using value_type = T;

    future() noexcept = default;
    explicit future(detail::state_ptr<T> st) : state_(std::move(st)) {}

    future(future&&) noexcept = default;
    future& operator=(future&&) noexcept = default;
    future(const future&) = delete;
    future& operator=(const future&) = delete;

    /// True if this future refers to a shared state (not default-constructed
    /// or consumed by get()/then()).
    [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

    [[nodiscard]] bool is_ready() const {
        return state_ != nullptr && state_->is_ready();
    }

    void wait() const {
        throw_if_invalid();
        state_->wait();
    }

    /// Waits up to `timeout`; returns whether the future became ready.
    /// Does not consume the future.
    template <class Rep, class Period>
    bool wait_for(std::chrono::duration<Rep, Period> timeout) const {
        throw_if_invalid();
        return state_->wait_until(std::chrono::steady_clock::now() + timeout);
    }

    /// Blocks until ready, then returns the value (or rethrows the stored
    /// exception).  Consumes the future.
    T get() {
        throw_if_invalid();
        state_->wait();
        auto st = std::move(state_);
        return st->take_value();
    }

    /// Attaches a continuation `f(future<T>&&)`; returns a future for its
    /// result.  Consumes this future.  With launch::async (default) the
    /// continuation is scheduled on the active runtime; a library user who
    /// attaches continuations with no runtime alive gets inline execution.
    template <class F>
    auto then(launch policy, F&& f) -> future<std::invoke_result_t<F, future<T>&&>> {
        using R = std::invoke_result_t<F, future<T>&&>;
        throw_if_invalid();
        auto next = std::make_shared<detail::shared_state<R>>();
        auto st = std::move(state_);

        auto run = [st, next, fn = std::forward<F>(f)]() mutable {
            detail::fulfill(next, fn, future<T>(std::move(st)));
        };
        if (policy == launch::sync) {
            st->add_callback(std::move(run));
        } else {
            st->add_callback([run = std::move(run)]() mutable {
                if (runtime* rt = runtime::active()) {
                    rt->post_fn(std::move(run));
                } else {
                    run();
                }
            });
        }
        return future<R>(std::move(next));
    }

    template <class F>
    auto then(F&& f) {
        return then(launch::async, std::forward<F>(f));
    }

    /// Internal: shared state access for combinators (when_all, dataflow).
    [[nodiscard]] const detail::state_ptr<T>& raw_state() const noexcept {
        return state_;
    }

private:
    void throw_if_invalid() const {
        if (state_ == nullptr) throw std::future_error(std::future_errc::no_state);
    }

    detail::state_ptr<T> state_;
};

/// Producer side of a future, mirroring hpx::promise / std::promise.
template <class T>
class promise {
public:
    promise() : state_(std::make_shared<detail::shared_state<T>>()) {}
    promise(promise&&) noexcept = default;
    promise& operator=(promise&&) noexcept = default;
    promise(const promise&) = delete;
    promise& operator=(const promise&) = delete;

    ~promise() {
        if (state_ != nullptr && !state_->is_ready() && future_retrieved_) {
            state_->set_exception(std::make_exception_ptr(
                std::future_error(std::future_errc::broken_promise)));
        }
    }

    future<T> get_future() {
        if (state_ == nullptr) throw std::future_error(std::future_errc::no_state);
        if (future_retrieved_) {
            throw std::future_error(std::future_errc::future_already_retrieved);
        }
        future_retrieved_ = true;
        return future<T>(state_);
    }

    template <class U = T>
    void set_value(U&& v) {
        require_state();
        state_->set_value(std::forward<U>(v));
    }

    void set_value()
        requires std::is_void_v<T>
    {
        require_state();
        state_->set_value();
    }

    void set_exception(std::exception_ptr e) {
        require_state();
        state_->set_exception(std::move(e));
    }

private:
    void require_state() const {
        if (state_ == nullptr) throw std::future_error(std::future_errc::no_state);
    }

    detail::state_ptr<T> state_;
    bool future_retrieved_ = false;
};

/// An already-ready future holding `v`.
template <class T>
future<std::decay_t<T>> make_ready_future(T&& v) {
    auto st = std::make_shared<detail::shared_state<std::decay_t<T>>>();
    st->set_value(std::forward<T>(v));
    return future<std::decay_t<T>>(std::move(st));
}

inline future<void> make_ready_future() {
    auto st = std::make_shared<detail::shared_state<void>>();
    st->set_value();
    return future<void>(std::move(st));
}

template <class T>
future<T> make_exceptional_future(std::exception_ptr e) {
    auto st = std::make_shared<detail::shared_state<T>>();
    st->set_exception(std::move(e));
    return future<T>(std::move(st));
}

}  // namespace amt
