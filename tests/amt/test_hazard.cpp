// tests/amt/test_hazard.cpp — the shadow-epoch race tracker: access-set
// algebra, deliberate in-flight conflicts, undeclared-access validation,
// and the disarmed fast path staying inert.

#include "amt/hazard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "amt/scheduler.hpp"

namespace hz = amt::hazard;

namespace {

/// Arms the tracker and binds a small two-field arena for the duration of
/// one test; restores the disarmed, clean global state afterwards so tests
/// cannot leak violations or stamps into each other.
class HazardTracker : public ::testing::Test {
protected:
    static constexpr int field_a = 0;
    static constexpr int field_b = 1;

    void SetUp() override {
        hz::clear_violations();
        hz::arm();
        hz::bind_arena(arena_key(), {64, 64});
    }

    void TearDown() override {
        hz::release_arena(arena_key());
        hz::disarm();
        hz::clear_violations();
    }

    const void* arena_key() const { return this; }

    static hz::access_set make_set(int field, bool write, std::int64_t lo,
                                   std::int64_t hi) {
        hz::access_set s;
        s.add(field, write, lo, hi);
        s.normalize();
        return s;
    }
};

TEST(HazardAccessSet, NormalizeMergesOverlappingAndAdjacent) {
    hz::access_set s;
    s.add(0, true, 10, 20);
    s.add(0, true, 15, 30);   // overlaps
    s.add(0, true, 30, 40);   // adjacent
    s.add(0, false, 0, 5);    // different mode: kept separate
    s.add(1, true, 10, 20);   // different field: kept separate
    s.add(0, true, 7, 7);     // empty: dropped
    s.normalize();
    ASSERT_EQ(s.intervals.size(), 3u);
    EXPECT_TRUE(s.covers(0, true, 10, 40));
    EXPECT_FALSE(s.covers(0, true, 9, 40));
    EXPECT_FALSE(s.covers(0, true, 10, 41));
}

TEST(HazardAccessSet, WritesRequireWriteIntervals) {
    hz::access_set s;
    s.add(0, false, 0, 100);
    s.normalize();
    EXPECT_TRUE(s.covers(0, false, 20, 40));
    EXPECT_FALSE(s.covers(0, true, 20, 40));
}

TEST(HazardAccessSet, ReadsAcceptWriteIntervalsPiecewise) {
    // A declared writer may re-read its own output; reads may also span a
    // read interval and a write interval back to back.
    hz::access_set s;
    s.add(0, true, 0, 50);
    s.add(0, false, 50, 100);
    s.normalize();
    EXPECT_TRUE(s.covers(0, false, 0, 100));
    EXPECT_TRUE(s.covers(0, false, 40, 60));
    EXPECT_FALSE(s.covers(0, false, 40, 101));
}

TEST(HazardAccessSet, EmptyRangeAlwaysCovered) {
    const hz::access_set s;
    EXPECT_TRUE(s.covers(3, true, 10, 10));
}

TEST_F(HazardTracker, DisjointLiveScopesAreClean) {
    const auto a = make_set(field_a, true, 0, 32);
    const auto b = make_set(field_a, true, 32, 64);
    hz::task_scope sa(arena_key(), "task.a", 0, &a);
    hz::task_scope sb(arena_key(), "task.b", 1, &b);
    EXPECT_EQ(hz::violation_count(), 0u);
}

TEST_F(HazardTracker, OverlappingLiveWritersAreAWriteWriteConflict) {
    const auto a = make_set(field_a, true, 0, 40);
    const auto b = make_set(field_a, true, 24, 64);
    hz::task_scope sa(arena_key(), "task.a", 0, &a);
    hz::task_scope sb(arena_key(), "task.b", 1, &b);

    const auto vs = hz::take_violations();
    ASSERT_EQ(vs.size(), 1u);  // contiguous run coalesces to one record
    EXPECT_EQ(vs[0].k, hz::violation::kind::conflict_ww);
    EXPECT_EQ(vs[0].field, field_a);
    EXPECT_EQ(vs[0].lo, 24);
    EXPECT_EQ(vs[0].hi, 40);
    EXPECT_STREQ(vs[0].site, "task.b");        // the scope that stamped second
    EXPECT_EQ(vs[0].partition, 1);
    EXPECT_STREQ(vs[0].other_site, "task.a");  // attributed to the live owner
    EXPECT_EQ(vs[0].other_partition, 0);
}

TEST_F(HazardTracker, WriterOverLiveReaderIsAReadWriteConflict) {
    const auto rd = make_set(field_b, false, 10, 30);
    const auto wr = make_set(field_b, true, 20, 25);
    hz::task_scope sr(arena_key(), "task.reader", 2, &rd);
    hz::task_scope sw(arena_key(), "task.writer", 3, &wr);

    const auto vs = hz::take_violations();
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].k, hz::violation::kind::conflict_rw);
    EXPECT_EQ(vs[0].field, field_b);
    EXPECT_EQ(vs[0].lo, 20);
    EXPECT_EQ(vs[0].hi, 25);
    EXPECT_STREQ(vs[0].other_site, "task.reader");
}

TEST_F(HazardTracker, ReaderOverLiveWriterIsAReadWriteConflict) {
    const auto wr = make_set(field_b, true, 0, 16);
    const auto rd = make_set(field_b, false, 8, 12);
    hz::task_scope sw(arena_key(), "task.writer", 0, &wr);
    hz::task_scope sr(arena_key(), "task.reader", 1, &rd);

    const auto vs = hz::take_violations();
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].k, hz::violation::kind::conflict_rw);
    EXPECT_STREQ(vs[0].site, "task.reader");
    EXPECT_STREQ(vs[0].other_site, "task.writer");
}

TEST_F(HazardTracker, ConcurrentReadersAreBenignSharing) {
    const auto a = make_set(field_a, false, 0, 64);
    const auto b = make_set(field_a, false, 0, 64);
    hz::task_scope sa(arena_key(), "task.a", 0, &a);
    hz::task_scope sb(arena_key(), "task.b", 1, &b);
    EXPECT_EQ(hz::violation_count(), 0u);
}

TEST_F(HazardTracker, SequentialScopesNeverConflict) {
    // Ordered tasks (continuation chains) never overlap in time; the exited
    // scope's stamps are cleared, so re-stamping the same range is clean.
    const auto w = make_set(field_a, true, 0, 64);
    { hz::task_scope s1(arena_key(), "task.first", 0, &w); }
    { hz::task_scope s2(arena_key(), "task.second", 0, &w); }
    EXPECT_EQ(hz::violation_count(), 0u);
}

TEST_F(HazardTracker, TouchOutsideDeclarationIsFlagged) {
    const auto decl = make_set(field_a, true, 0, 10);
    hz::task_scope scope(arena_key(), "task.shrunk", 0, &decl);
    hz::touch(field_a, true, 0, 10);   // within: clean
    EXPECT_EQ(hz::violation_count(), 0u);
    hz::touch(field_a, true, 8, 14);   // spills past the declared hi
    hz::touch(field_b, false, 0, 1);   // undeclared field entirely

    const auto vs = hz::take_violations();
    ASSERT_EQ(vs.size(), 2u);
    EXPECT_EQ(vs[0].k, hz::violation::kind::undeclared_access);
    EXPECT_EQ(vs[0].field, field_a);
    EXPECT_EQ(vs[0].lo, 8);
    EXPECT_EQ(vs[0].hi, 14);
    EXPECT_STREQ(vs[0].site, "task.shrunk");
    EXPECT_EQ(vs[1].field, field_b);
}

TEST_F(HazardTracker, ReadTouchAcceptsDeclaredWrite) {
    const auto decl = make_set(field_a, true, 0, 10);
    hz::task_scope scope(arena_key(), "task.rmw", 0, &decl);
    hz::touch(field_a, false, 0, 10);  // re-reading own output
    EXPECT_EQ(hz::violation_count(), 0u);
}

TEST_F(HazardTracker, TouchWithoutAmbientScopeIsIgnored) {
    // The serial driver runs instrumented kernels with no scope open.
    hz::touch(field_a, true, 0, 64);
    EXPECT_EQ(hz::violation_count(), 0u);
}

TEST_F(HazardTracker, UnknownArenaStaysInert) {
    const auto decl = make_set(field_a, true, 0, 10);
    const int other = 0;
    hz::task_scope scope(&other, "task.stranger", 0, &decl);
    hz::touch(field_a, true, 50, 60);  // no ambient scope installed either
    EXPECT_EQ(hz::violation_count(), 0u);
}

TEST_F(HazardTracker, RacyTwoTaskGraphIsCaughtInFlight) {
    // The end-to-end shape of the bug the tracker exists for: two runtime
    // tasks with overlapping declared writes and *no ordering edge*, held
    // in flight simultaneously.  Each scope must observe the other's live
    // stamps on the shared range.
    const auto a = make_set(field_a, true, 0, 32);
    const auto b = make_set(field_a, true, 16, 48);
    std::atomic<int> in_scope{0};
    {
        amt::runtime rt(2);
        auto body = [&](const char* site, std::int64_t part,
                        const hz::access_set* decl) {
            hz::task_scope scope(arena_key(), site, part, decl);
            in_scope.fetch_add(1, std::memory_order_acq_rel);
            // Keep the scope open until both tasks have stamped, so the
            // temporal overlap is deterministic, not scheduling luck.
            while (in_scope.load(std::memory_order_acquire) < 2) {
                std::this_thread::yield();
            }
        };
        rt.post_fn([&] { body("task.a", 0, &a); });
        rt.post_fn([&] { body("task.b", 1, &b); });
    }  // runtime destructor drains both tasks

    const auto vs = hz::take_violations();
    ASSERT_FALSE(vs.empty());
    std::int64_t lo = vs.front().lo, hi = vs.front().hi;
    for (const auto& v : vs) {
        EXPECT_EQ(v.k, hz::violation::kind::conflict_ww);
        EXPECT_EQ(v.field, field_a);
        lo = std::min(lo, v.lo);
        hi = std::max(hi, v.hi);
    }
    // The recorded conflicts lie exactly in the shared range [16, 32).
    EXPECT_GE(lo, 16);
    EXPECT_LE(hi, 32);
}

TEST_F(HazardTracker, TakeViolationsDrainsTheLog) {
    const auto a = make_set(field_a, true, 0, 8);
    const auto b = make_set(field_a, true, 0, 8);
    {
        hz::task_scope sa(arena_key(), "task.a", 0, &a);
        hz::task_scope sb(arena_key(), "task.b", 1, &b);
    }
    EXPECT_EQ(hz::violation_count(), 1u);
    const auto vs = hz::take_violations();
    EXPECT_EQ(vs.size(), 1u);
    EXPECT_EQ(hz::violation_count(), 0u);
    EXPECT_FALSE(vs[0].describe().empty());
}

TEST(HazardDisarmed, ScopesAndTouchesAreInertWhenNotArmed) {
    ASSERT_FALSE(hz::armed());
    const int key = 0;
    hz::bind_arena(&key, {16});
    hz::access_set a;
    a.add(0, true, 0, 16);
    a.normalize();
    hz::access_set b = a;
    {
        hz::task_scope sa(&key, "task.a", 0, &a);
        hz::task_scope sb(&key, "task.b", 1, &b);
        hz::touch(0, true, 0, 999);
    }
    EXPECT_EQ(hz::violation_count(), 0u);
    hz::release_arena(&key);
}

}  // namespace
