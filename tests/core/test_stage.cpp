// Unit tests for graph::stage_after — the barrier-to-wave chaining
// primitive both task-graph drivers are built from.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "amt/amt.hpp"
#include "core/stage.hpp"

namespace {

using lulesh::graph::stage_after;

TEST(StageAfter, SpawnRunsOnlyAfterPrevCompletes) {
    amt::runtime rt(2);
    amt::promise<void> gate;
    std::atomic<bool> spawned{false};
    auto done = stage_after(gate.get_future(), [&spawned] {
        spawned.store(true);
        std::vector<amt::future<void>> wave;
        wave.push_back(amt::make_ready_future());
        return wave;
    });
    EXPECT_FALSE(spawned.load());
    EXPECT_FALSE(done.is_ready());
    gate.set_value();
    done.get();
    EXPECT_TRUE(spawned.load());
}

TEST(StageAfter, CompletesOnlyAfterWholeWave) {
    amt::runtime rt(2);
    std::atomic<int> completed{0};
    auto done = stage_after(amt::make_ready_future(), [&completed] {
        std::vector<amt::future<void>> wave;
        for (int i = 0; i < 16; ++i) {
            wave.push_back(amt::async([&completed] {
                completed.fetch_add(1, std::memory_order_relaxed);
            }));
        }
        return wave;
    });
    done.get();
    EXPECT_EQ(completed.load(), 16);
}

TEST(StageAfter, EmptyWaveIsImmediatelyDone) {
    amt::runtime rt(1);
    auto done = stage_after(amt::make_ready_future(),
                            [] { return std::vector<amt::future<void>>{}; });
    EXPECT_NO_THROW(done.get());
}

TEST(StageAfter, ChainsOfStagesRunInOrder) {
    amt::runtime rt(2);
    std::vector<int> order;
    std::mutex mu;
    auto record = [&](int id) {
        return [&, id] {
            std::vector<amt::future<void>> wave;
            wave.push_back(amt::async([&, id] {
                std::lock_guard lk(mu);
                order.push_back(id);
            }));
            return wave;
        };
    };
    auto s1 = stage_after(amt::make_ready_future(), record(1));
    auto s2 = stage_after(std::move(s1), record(2));
    auto s3 = stage_after(std::move(s2), record(3));
    s3.get();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(StageAfter, PrevErrorSkipsSpawnAndPropagates) {
    amt::runtime rt(1);
    std::atomic<bool> spawned{false};
    auto bad = amt::make_exceptional_future<void>(
        std::make_exception_ptr(std::runtime_error("upstream")));
    auto done = stage_after(std::move(bad), [&spawned] {
        spawned.store(true);
        return std::vector<amt::future<void>>{};
    });
    EXPECT_THROW(done.get(), std::runtime_error);
    EXPECT_FALSE(spawned.load());
}

TEST(StageAfter, SpawnErrorPropagates) {
    amt::runtime rt(1);
    auto done = stage_after(amt::make_ready_future(),
                            []() -> std::vector<amt::future<void>> {
                                throw std::logic_error("spawn failed");
                            });
    EXPECT_THROW(done.get(), std::logic_error);
}

TEST(StageAfter, WaveTaskErrorPropagates) {
    amt::runtime rt(2);
    auto done = stage_after(amt::make_ready_future(), [] {
        std::vector<amt::future<void>> wave;
        wave.push_back(amt::async([] { throw std::runtime_error("task"); }));
        wave.push_back(amt::async([] {}));
        return wave;
    });
    EXPECT_THROW(done.get(), std::runtime_error);
}

TEST(StageAfter, ManyIterationsOfFiveStagePipelines) {
    // The drivers' usage pattern: five chained stages per iteration, many
    // iterations back-to-back.
    amt::runtime rt(2);
    std::atomic<int> total{0};
    for (int iter = 0; iter < 50; ++iter) {
        auto spawn = [&total] {
            std::vector<amt::future<void>> wave;
            for (int i = 0; i < 4; ++i) {
                wave.push_back(amt::async(
                    [&total] { total.fetch_add(1, std::memory_order_relaxed); }));
            }
            return wave;
        };
        auto stage = stage_after(amt::make_ready_future(), spawn);
        for (int s = 1; s < 5; ++s) {
            stage = stage_after(std::move(stage), spawn);
        }
        stage.get();
    }
    EXPECT_EQ(total.load(), 50 * 5 * 4);
}

}  // namespace
