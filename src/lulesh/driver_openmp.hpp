// lulesh/driver_openmp.hpp
//
// Optional driver using *real* OpenMP (built only when the toolchain
// provides it; see LULESH_AMT_HAVE_OPENMP in CMake).  Identical loop and
// barrier structure to parallel_for_driver, but with `#pragma omp` work
// sharing instead of the ompsim team — used to cross-validate that ompsim
// faithfully models the OpenMP reference's behaviour, both in results
// (bitwise) and in cost structure (micro/ablation benches).

#pragma once

#include "lulesh/driver.hpp"
#include "lulesh/kernels.hpp"

namespace lulesh {

class openmp_driver final : public driver {
public:
    /// Sets the OpenMP thread count for this driver's loops (0 = runtime
    /// default).
    explicit openmp_driver(std::size_t num_threads = 0);

    [[nodiscard]] std::string name() const override { return "openmp"; }
    void advance(domain& d) override;

    [[nodiscard]] std::size_t num_threads() const noexcept { return threads_; }

private:
    std::size_t threads_;

    std::vector<real_t> sigxx_, sigyy_, sigzz_;
    std::vector<real_t> dvdx_, dvdy_, dvdz_, x8n_, y8n_, z8n_;
    std::vector<real_t> determ_;
    kernels::eos_scratch eos_;
};

}  // namespace lulesh
