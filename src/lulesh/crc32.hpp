// lulesh/crc32.hpp
//
// Software CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) used to
// checksum checkpoint payloads and dist halo messages.  Table-driven,
// byte-at-a-time — integrity checking here guards against corruption in
// storage and transport, not adversaries, and the data volumes (one
// checkpoint per K cycles, one plane per halo message) make throughput a
// non-issue.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace lulesh {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            }
            t[i] = c;
        }
        return t;
    }();
    return table;
}

}  // namespace detail

/// Incremental CRC-32 accumulator: feed byte ranges, read `value()` at any
/// point (does not consume the state).
class crc32 {
public:
    void update(const void* data, std::size_t n) {
        const auto& table = detail::crc32_table();
        const auto* p = static_cast<const unsigned char*>(data);
        std::uint32_t c = state_;
        for (std::size_t i = 0; i < n; ++i) {
            c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
        }
        state_ = c;
    }

    [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }

private:
    std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a byte range.
inline std::uint32_t crc32_of(const void* data, std::size_t n) {
    crc32 c;
    c.update(data, n);
    return c.value();
}

}  // namespace lulesh
