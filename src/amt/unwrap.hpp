// amt/unwrap.hpp
//
// unwrap(future<future<T>>) → future<T>: collapses one level of future
// nesting, the way hpx::future::then does implicitly.  Useful when a
// continuation itself launches asynchronous work and returns its future.

#pragma once

#include <utility>

#include "amt/future.hpp"

namespace amt {

template <class T>
future<T> unwrap(future<future<T>>&& outer) {
    auto st = std::make_shared<detail::shared_state<T>>();
    outer.then(launch::sync, [st](future<future<T>>&& of) {
        try {
            future<T> inner = of.get();
            inner.then(launch::sync, [st](future<T>&& f) {
                try {
                    if constexpr (std::is_void_v<T>) {
                        f.get();
                        st->set_value();
                    } else {
                        st->set_value(f.get());
                    }
                } catch (...) {
                    st->set_exception(std::current_exception());
                }
            });
        } catch (...) {
            st->set_exception(std::current_exception());
        }
    });
    return future<T>(std::move(st));
}

}  // namespace amt
