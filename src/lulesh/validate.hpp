// lulesh/validate.hpp
//
// Solution validation utilities mirroring the reference's
// VerifyAndWriteFinalOutput: symmetry of the Sedov solution across the three
// coordinate permutations, and cross-run field comparison used by the test
// suite to prove driver equivalence.

#pragma once

#include <string>

#include "lulesh/domain.hpp"

namespace lulesh {

/// Measured asymmetry of the energy field under coordinate permutation.
/// The Sedov problem and mesh are symmetric under any permutation of the
/// (i, j, k) element indices, so e(i,j,k) must equal e(j,i,k) etc. up to
/// floating-point noise.
struct symmetry_report {
    real_t max_abs_diff = 0.0;
    real_t total_abs_diff = 0.0;
    real_t max_rel_diff = 0.0;
};

/// Checks e(i,j,k) against all index permutations.
symmetry_report check_energy_symmetry(const domain& d);

/// Field-by-field comparison of two domains (same problem size required).
/// Returns the maximum absolute difference over the primary state fields
/// (x, y, z, xd, yd, zd, e, p, q, v, ss); 0.0 means bitwise identical.
real_t max_field_difference(const domain& a, const domain& b);

/// Human-readable end-of-run report in the style of the reference output.
std::string final_report(const domain& d, const run_result& result);

}  // namespace lulesh
