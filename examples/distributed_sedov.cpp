// examples/distributed_sedov.cpp
//
// The paper's future-work direction, runnable: the Sedov problem decomposed
// into z-slabs that exchange halos through channels, in both exchange
// styles — futurized (slabs overlap freely, HPX-style) and bulk-synchronous
// (global barrier per wave, MPI-style) — and a check that both match the
// single-domain solution exactly.
//
//   ./distributed_sedov -s 12 -i 50 -t 4        # 4 slabs by default
//   ./distributed_sedov -s 16 -i 80 -t 2 -r 21

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "amt/amt.hpp"
#include "dist/cluster.hpp"
#include "dist/driver_dist.hpp"
#include "dist/halo_audit.hpp"
#include "dist/resilient_dist.hpp"
#include "lulesh/driver.hpp"
#include "lulesh/validate.hpp"

namespace {

/// Max |e − single-domain| over every slab slice — 0.0 means bitwise.
lulesh::real_t max_energy_diff(lulesh::dist::cluster& c,
                               const lulesh::domain& global) {
    lulesh::real_t max_diff = 0.0;
    for (lulesh::index_t s = 0; s < c.num_slabs(); ++s) {
        const auto& d = c.slab(s);
        const lulesh::index_t eoff = d.elem_offset();
        for (lulesh::index_t e = 0; e < d.numElem(); ++e) {
            max_diff = std::max(
                max_diff,
                std::fabs(d.e[static_cast<std::size_t>(e)] -
                          global.e[static_cast<std::size_t>(eoff + e)]));
        }
    }
    return max_diff;
}

/// Per-slab halo traffic drained from the trace: halo_span events carry the
/// slab id in `arg` (pack spans stamped on the sender, unpack spans on the
/// receiver), so grouping by arg splits the exchange cost per slab.
struct slab_halo_stats {
    double pack_s = 0.0;
    std::uint64_t pack_count = 0;
    double unpack_s = 0.0;
    std::uint64_t unpack_count = 0;
};

std::vector<slab_halo_stats> per_slab_halo(
    const amt::trace::trace_snapshot& snap, lulesh::index_t num_slabs) {
    std::vector<slab_halo_stats> slabs(static_cast<std::size_t>(num_slabs));
    for (const auto& th : snap.threads) {
        for (const auto& ev : th.events) {
            if (ev.kind != amt::trace::event_kind::halo_span) continue;
            if (ev.arg < 0 ||
                ev.arg >= static_cast<std::int32_t>(num_slabs)) {
                continue;
            }
            auto& s = slabs[static_cast<std::size_t>(ev.arg)];
            const double sec = static_cast<double>(ev.dur_ns) * 1e-9;
            if (std::strncmp(ev.name, "halo:pack", 9) == 0) {
                s.pack_s += sec;
                ++s.pack_count;
            } else {
                s.unpack_s += sec;
                ++s.unpack_count;
            }
        }
    }
    return slabs;
}

/// The standard utilization report plus a per-slab halo breakdown: the JSON
/// form appends a "slabs" array to the usual document (a schema superset —
/// every consumer of the plain report keeps working), the text form appends
/// a section.
bool write_utilization_with_slabs(
    const std::string& path, const amt::trace::utilization_report& rep,
    const std::vector<slab_halo_stats>& slabs) {
    std::ofstream os(path, std::ios::trunc);
    if (!os) return false;
    const bool json = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".json") == 0;
    if (json) {
        std::ostringstream base;
        amt::trace::write_utilization_json(base, rep);
        std::string body = base.str();
        while (!body.empty() &&
               (body.back() == '\n' || body.back() == ' ')) {
            body.pop_back();
        }
        if (!body.empty() && body.back() == '}') body.pop_back();
        os << body << ",\n  \"slabs\": [\n";
        os << std::fixed << std::setprecision(6);
        for (std::size_t s = 0; s < slabs.size(); ++s) {
            os << "    {\"slab\": " << s
               << ", \"halo_pack_s\": " << slabs[s].pack_s
               << ", \"halo_pack_count\": " << slabs[s].pack_count
               << ", \"halo_unpack_s\": " << slabs[s].unpack_s
               << ", \"halo_unpack_count\": " << slabs[s].unpack_count << "}"
               << (s + 1 < slabs.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
    } else {
        amt::trace::write_utilization_text(os, rep);
        os << "\nper-slab halo traffic (worker-seconds):\n";
        os << std::fixed << std::setprecision(6);
        for (std::size_t s = 0; s < slabs.size(); ++s) {
            os << "  slab " << s << ": pack " << slabs[s].pack_s << " s ("
               << slabs[s].pack_count << " spans), unpack "
               << slabs[s].unpack_s << " s (" << slabs[s].unpack_count
               << " spans)\n";
        }
    }
    return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
    lulesh::cli_options cli;
    try {
        cli = lulesh::parse_cli(argc, argv);
    } catch (const std::exception& err) {
        std::cerr << err.what() << "\n" << lulesh::usage_text(argv[0]);
        return 1;
    }
    if (cli.show_help) {
        std::cout << lulesh::usage_text(argv[0])
                  << "  (-t selects both the worker-thread and slab count "
                     "here)\n";
        return 0;
    }
    if (cli.problem.max_cycles == std::numeric_limits<int>::max()) {
        cli.problem.max_cycles = 50;
    }
    const std::size_t threads =
        cli.threads != 0 ? cli.threads
                         : std::max(1u, std::thread::hardware_concurrency());
    const auto num_slabs = static_cast<lulesh::index_t>(
        std::min<std::size_t>(threads, static_cast<std::size_t>(cli.problem.size)));
    const auto parts = cli.partitions.value_or(
        lulesh::partition_sizes::tuned_for(cli.problem.size));

    std::cout << "Distributed Sedov: size " << cli.problem.size << "^3 over "
              << num_slabs << " slabs, " << threads << " worker threads, "
              << cli.problem.max_cycles << " iterations\n\n";

    if (cli.audit_graph) {
        // Prove each slab's wave graph *plus* its halo pack/unpack tasks
        // race-free for this exact decomposition before trusting any
        // exchange mode with a run.
        lulesh::dist::cluster probe(cli.problem, num_slabs);
        const auto audits = lulesh::dist::audit_cluster(probe, parts);
        std::cout << lulesh::dist::format_cluster_audit(audits);
        if (!lulesh::dist::cluster_audit_ok(audits)) {
            return lulesh::exit_code_for(lulesh::status::hazard);
        }
        std::cout << "\n";
    }

    // Ground truth: single-domain serial run.
    lulesh::domain global(cli.problem);
    {
        lulesh::serial_driver drv;
        lulesh::run_simulation(global, drv, cli.problem.max_cycles);
    }

    const bool want_trace =
        !cli.trace_file.empty() || !cli.utilization_report_file.empty();
    if (want_trace) {
        if (!amt::trace::compiled_in) {
            std::cerr << "lulesh: tracing was compiled out "
                         "(AMT_TRACE_DISABLE); rebuild to use --trace\n";
            return 1;
        }
        amt::trace::set_thread_name("main");
        amt::trace::arm();
    }

    std::unique_ptr<amt::metrics::reporter> metrics_reporter;
    if (!cli.metrics_file.empty()) {
        if (!amt::metrics::compiled_in) {
            std::cerr << "lulesh: metrics were compiled out "
                         "(AMT_METRICS_DISABLE); rebuild to use --metrics\n";
            return 1;
        }
        // Arms the registry and starts interval snapshots; stopped (with a
        // final flush) after every exchange mode has run.
        metrics_reporter = std::make_unique<amt::metrics::reporter>(
            amt::metrics::reporter::options{
                cli.metrics_file,
                std::chrono::milliseconds(cli.metrics_interval_ms)});
    }

    amt::runtime rt(threads);
    for (const auto mode : {lulesh::dist::dist_driver::exchange_mode::eager,
                            lulesh::dist::dist_driver::exchange_mode::futurized,
                            lulesh::dist::dist_driver::exchange_mode::bulk_synchronous}) {
        lulesh::dist::cluster c(cli.problem, num_slabs);
        lulesh::dist::dist_driver drv(
            rt, parts, mode,
            std::chrono::milliseconds(cli.halo_timeout_ms));
        const auto result =
            lulesh::dist::run_simulation(c, drv, cli.problem.max_cycles);

        // Validate every slab slice against the single-domain solution.
        const lulesh::real_t max_diff = max_energy_diff(c, global);
        std::cout << drv.name() << ": " << result.cycles << " cycles in "
                  << result.elapsed_seconds << " s, origin energy "
                  << result.final_origin_energy
                  << ", max |e - single-domain| = " << max_diff
                  << (max_diff == 0.0 ? "  (bitwise identical)" : "") << "\n";
    }

    int exit_status = 0;
    if (cli.checkpoint_every > 0) {
        // Fail-soft mode: the futurized exchange under the failure detector
        // and the channel-level retry layer, with coordinated rollback over
        // per-slab checkpoint chains.  Fault-injection campaigns (slab_kill,
        // halo_drop, halo_corrupt sites — see docs/resilience.md) recover
        // bitwise-identically here instead of exiting.
        amt::resilience().reset();
        lulesh::dist::cluster c(cli.problem, num_slabs);
        lulesh::dist::dist_driver drv(
            rt, parts, lulesh::dist::dist_driver::exchange_mode::futurized,
            std::chrono::milliseconds(cli.halo_timeout_ms),
            lulesh::dist::retry_policy{});
        lulesh::dist::dist_resilience_options ropt;
        ropt.checkpoint_every = cli.checkpoint_every;
        ropt.max_recoveries = cli.max_recoveries;
        ropt.checkpoint_path = cli.checkpoint_save;
        const auto rr =
            lulesh::dist::run_resilient(c, drv, ropt, cli.problem.max_cycles);
        const auto& rc = amt::resilience();
        std::cout << "dist_resilient: " << rr.result.cycles << " cycles in "
                  << rr.result.elapsed_seconds << " s, origin energy "
                  << rr.result.final_origin_energy
                  << ", max |e - single-domain| = " << max_energy_diff(c, global)
                  << "\n  recoveries " << rr.recoveries << " (slab rebuilds "
                  << rr.slab_rebuilds << ", entry fallbacks "
                  << rr.entry_fallbacks << ", dt halvings " << rr.dt_halvings
                  << "), checkpoints " << rr.checkpoints
                  << "\n  counters: crc_failures " << rc.halo_crc_failures.load()
                  << ", retries " << rc.halo_retries.load() << ", resends "
                  << rc.halo_resends.load() << ", drops "
                  << rc.halo_drops.load() << ", slab_deaths "
                  << rc.slab_deaths.load() << ", heartbeats "
                  << rc.heartbeats.load() << "\n";
        if (rr.result.run_status != lulesh::status::ok) {
            std::cerr << "dist_resilient: " << rr.result.error_message << "\n";
            exit_status = lulesh::exit_code_for(rr.result.run_status);
        }
    }

    if (want_trace) {
        // All exchange modes have completed and every future was
        // consumed — the rings are quiescent even though the runtime is
        // still alive.
        amt::trace::disarm();
        const auto snap = amt::trace::drain();
        if (!cli.trace_file.empty()) {
            if (!amt::trace::write_chrome_trace_file(cli.trace_file, snap)) {
                std::cerr << "lulesh: cannot write trace file '"
                          << cli.trace_file << "'\n";
                return 1;
            }
            std::cout << "Trace written to '" << cli.trace_file << "'\n";
        }
        if (!cli.utilization_report_file.empty()) {
            const auto report = amt::trace::build_utilization(snap);
            const auto slabs = per_slab_halo(snap, num_slabs);
            if (!write_utilization_with_slabs(cli.utilization_report_file,
                                              report, slabs)) {
                std::cerr << "lulesh: cannot write utilization report '"
                          << cli.utilization_report_file << "'\n";
                return 1;
            }
            std::cout << "Utilization report written to '"
                      << cli.utilization_report_file << "'\n";
        }
    }

    if (metrics_reporter) {
        // Every exchange mode has completed and all futures were consumed —
        // counter shards are quiescent, so the final snapshot is complete.
        if (!metrics_reporter->stop()) {
            std::cerr << "lulesh: cannot write metrics snapshots to '"
                      << cli.metrics_file << "'\n";
            return 1;
        }
        std::cout << "Metrics snapshots ("
                  << metrics_reporter->snapshots_written()
                  << ") written to '" << cli.metrics_file << "'\n";
    }

    std::cout << "\nper-slab plane ranges:\n";
    lulesh::dist::cluster census(cli.problem, num_slabs);
    for (lulesh::index_t s = 0; s < census.num_slabs(); ++s) {
        const auto& ext = census.slab(s).slab();
        std::cout << "  slab " << s << ": planes [" << ext.plane_begin << ", "
                  << ext.plane_end << ") — " << census.slab(s).numElem()
                  << " elements\n";
    }
    return exit_status;
}
