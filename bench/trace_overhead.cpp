// bench/trace_overhead.cpp
//
// Measures the cost of the task tracer in both of its cheap states:
//
//   (1) disarmed (the default): every probe on the task hot path is one
//       relaxed atomic load plus a predictable branch.  A calibration loop
//       prices the probe, the task-graph iteration provides tasks/iter, and
//       the projected bill (probes/task × ns/probe ÷ ns/iter) must stay
//       under 1% — the same bar fault_overhead and hazard_overhead set.
//   (2) armed with a deliberately tiny ring: recording drops events rather
//       than blocking, so the run completes at full task throughput, the
//       drop counter reports what was lost, and the kept prefix is still a
//       valid trace.
//
// The binary exits non-zero if either property is violated, so it doubles
// as a regression test.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <thread>

#include "bench_common.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

/// ns per disarmed probe, averaged over a long loop.  annotate_task is the
/// probe the kernel-side call sites pay; it reads the global armed flag, so
/// the compiler cannot hoist it out of the loop.
double probe_cost_ns(std::uint64_t iterations) {
    const auto t0 = clock_type::now();
    for (std::uint64_t i = 0; i < iterations; ++i) {
        amt::trace::annotate_task("bench", 0);
    }
    return seconds_since(t0) * 1e9 / static_cast<double>(iterations);
}

/// Disarmed probes on the path of one task: the wave builder's
/// annotate_task, the scheduler's pre-execute gap check, the execute()
/// tracing check, and the post-execute anchor check.
constexpr double probes_per_task = 4.0;

}  // namespace

int main() {
    if (!amt::trace::compiled_in) {
        std::cout << "trace probes compiled out (AMT_TRACE_DISABLE); "
                     "overhead is exactly zero\n";
        return 0;
    }
    amt::trace::disarm();

    // (1) raw disarmed probe cost.
    probe_cost_ns(1'000'000);  // warm-up
    const double ns_per_probe = probe_cost_ns(20'000'000);

    lulesh::options problem;
    problem.size = 16;
    problem.num_regions = 11;
    constexpr int iters = 30;

    double ns_per_iter = 0.0;
    double tasks_per_iter = 0.0;
    {
        lulesh::domain dom(problem);
        amt::runtime rt(std::max(1u, std::thread::hardware_concurrency()));
        lulesh::taskgraph_driver drv(rt, {512, 512});
        lulesh::run_simulation(dom, drv, iters);  // policy warm-up
        lulesh::domain dom2(problem);
        const auto t0 = clock_type::now();
        lulesh::run_simulation(dom2, drv, iters);
        ns_per_iter = seconds_since(t0) * 1e9 / iters;
        tasks_per_iter = static_cast<double>(drv.tasks_last_iteration());
    }

    const double overhead =
        tasks_per_iter * probes_per_task * ns_per_probe / ns_per_iter * 100.0;

    std::cout << std::fixed << std::setprecision(3)
              << "disarmed probe cost:     " << ns_per_probe << " ns\n"
              << "task-graph iteration:    " << ns_per_iter / 1e6 << " ms ("
              << tasks_per_iter << " tasks, " << probes_per_task
              << " probes/task)\n"
              << "projected trace overhead: " << std::setprecision(4)
              << overhead << " % of iteration time\n";

    // (2) armed with a tiny ring: the run must complete (drop-not-block)
    // and account for the overflow in the drop counter.
    amt::trace::reset();
    amt::trace::set_ring_capacity(256);
    amt::trace::set_thread_name("main");
    amt::trace::arm();
    double armed_ns_per_iter = 0.0;
    {
        lulesh::domain dom(problem);
        amt::runtime rt(std::max(1u, std::thread::hardware_concurrency()));
        lulesh::taskgraph_driver drv(rt, {512, 512});
        const auto t0 = clock_type::now();
        lulesh::run_simulation(dom, drv, iters);
        armed_ns_per_iter = seconds_since(t0) * 1e9 / iters;
    }
    amt::trace::disarm();
    const auto snap = amt::trace::drain();
    std::size_t kept = 0;
    for (const auto& t : snap.threads) kept += t.events.size();
    const auto report = amt::trace::build_utilization(snap);
    const double armed_ratio = armed_ns_per_iter / ns_per_iter;

    std::cout << "armed (256-event rings): " << std::setprecision(3)
              << armed_ns_per_iter / 1e6 << " ms/iter ("
              << std::setprecision(2) << armed_ratio
              << "x disarmed), kept " << kept << " events, dropped "
              << snap.dropped << "\n";
    std::cout << "CSV,trace_overhead," << std::setprecision(3) << ns_per_probe
              << "," << ns_per_iter / 1e6 << "," << tasks_per_iter << ","
              << std::setprecision(4) << overhead << "," << kept << ","
              << snap.dropped << "\n";

    bench::artifact art("trace_overhead");
    art.set_config("size", problem.size);
    art.set_config("iters", iters);
    art.add_sample("ns_per_probe", ns_per_probe, "ns");
    art.add_sample("disarmed_overhead_pct", overhead, "pct");
    art.add_sample("armed_ratio", armed_ratio, "ratio");
    art.write_file();

    bool ok = true;
    if (!(overhead < 1.0)) {
        std::cerr << "FAIL: disarmed trace-probe overhead " << overhead
                  << "% exceeds the 1% budget\n";
        ok = false;
    }
    if (snap.dropped == 0) {
        std::cerr << "FAIL: 256-event rings held a full reduced run — "
                     "overflow path not exercised\n";
        ok = false;
    }
    if (report.dropped != snap.dropped) {
        std::cerr << "FAIL: utilization report lost the drop counter ("
                  << report.dropped << " != " << snap.dropped << ")\n";
        ok = false;
    }
    if (kept == 0) {
        std::cerr << "FAIL: armed run recorded nothing\n";
        ok = false;
    }
    if (!ok) return 1;
    std::cout << "PASS: disarmed within the 1% budget; armed drops, never "
                 "blocks\n";
    return 0;
}
