// bench/table1_partition_sweep.cpp
//
// Reproduces Table I of the paper: for each problem size, sweep the task
// partition sizes of the LagrangeNodal and LagrangeElements phases and
// report the runtime of every combination plus the best one.  The paper's
// claims to check:
//   * partition size matters — too fine explodes scheduling overhead, too
//     coarse starves the load balancer;
//   * the optimum moves to larger nodal partitions as the problem grows,
//     saturating at 8192, while the element phase prefers mid-size
//     partitions (and even *smaller* ones for the largest problems).

#include "bench_common.hpp"

int main(int argc, char** argv) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    bench::sweep_options sweep = bench::parse_sweep(
        argc, argv,
        {.sizes = {12, 16},
         .threads = {static_cast<int>(std::min(4u, hw * 2))},
         .regions = {11},
         .iters = 30,
         .reps = 2});
    const int threads = sweep.full ? 24 : sweep.threads.front();

    // Partition candidates; --full uses the paper's range.
    std::vector<int> candidates = sweep.full
                                      ? std::vector<int>{1024, 2048, 4096,
                                                         8192, 16384}
                                      : std::vector<int>{64, 128, 256, 512,
                                                         1024};

    std::cout << "=== Table I: partition-size sweep ===\n"
              << "threads: " << threads << "\n\n";

    bench::artifact art("table1");
    art.set_config("sizes", bench::join_ints(sweep.sizes));
    art.set_config("threads", threads);
    art.set_config("candidates", bench::join_ints(candidates));
    art.set_config("iters", sweep.iters);
    art.set_config("reps", sweep.reps);

    std::vector<std::string> csv;
    for (int size : sweep.sizes) {
        lulesh::options problem;
        problem.size = static_cast<lulesh::index_t>(size);
        problem.num_regions = 11;
        const int iters = bench::ae_iteration_cap(size, sweep.iters);

        std::cout << "size " << size << " (rows: nodal partition, columns: "
                  << "element partition; cell: seconds)\n";
        std::cout << std::left << std::setw(8) << "nod\\el";
        for (int pe : candidates) std::cout << std::setw(11) << pe;
        std::cout << "\n";

        double best = 1e300;
        int best_nodal = 0;
        int best_elems = 0;
        for (int pn : candidates) {
            std::cout << std::left << std::setw(8) << pn;
            for (int pe : candidates) {
                lulesh::partition_sizes parts{
                    static_cast<lulesh::index_t>(pn),
                    static_cast<lulesh::index_t>(pe)};
                const auto reps = bench::run_config_reps(
                    problem, "taskgraph", static_cast<std::size_t>(threads),
                    parts, iters, sweep.reps);
                const auto m = reps.median();
                art.add_seconds(
                    bench::metric_key(
                        "seconds", {{"s", size}, {"pn", pn}, {"pe", pe}}),
                    reps);
                std::cout << std::setw(11) << std::setprecision(4) << m.seconds;
                if (m.seconds < best) {
                    best = m.seconds;
                    best_nodal = pn;
                    best_elems = pe;
                }
                std::ostringstream row;
                row << "CSV,table1," << size << "," << pn << "," << pe << ","
                    << m.seconds;
                csv.push_back(row.str());
            }
            std::cout << "\n";
        }
        std::cout << "best for size " << size << ": nodal " << best_nodal
                  << ", elems " << best_elems << " (" << std::setprecision(4)
                  << best << " s); paper Table I tuned values: nodal "
                  << bench::tuned_parts(size).nodal << ", elems "
                  << bench::tuned_parts(size).elems << "\n\n";
    }
    std::cout << "# size,nodal_partition,elem_partition,seconds\n";
    for (const auto& row : csv) std::cout << row << "\n";
    art.write_file();
    return 0;
}
