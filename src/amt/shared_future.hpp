// amt/shared_future.hpp
//
// shared_future<T> — a copyable handle to a shared state, allowing multiple
// consumers and multiple continuations on one result (hpx::shared_future
// analogue).  get() returns a const reference to the stored value rather
// than moving it out; then() does not consume the handle.

#pragma once

#include <type_traits>
#include <utility>

#include "amt/future.hpp"

namespace amt {

template <class T>
class shared_future {
public:
    shared_future() noexcept = default;

    /// Converts (consumes) a unique future into a shared one.
    shared_future(future<T>&& f) : state_(f.raw_state()) {
        // Take ownership: the source future is emptied via move-out.
        future<T> consumed = std::move(f);
        state_ = consumed.raw_state();
    }

    shared_future(const shared_future&) = default;
    shared_future& operator=(const shared_future&) = default;
    shared_future(shared_future&&) noexcept = default;
    shared_future& operator=(shared_future&&) noexcept = default;

    [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
    [[nodiscard]] bool is_ready() const {
        return state_ != nullptr && state_->is_ready();
    }

    void wait() const {
        throw_if_invalid();
        state_->wait();
    }

    /// Blocks until ready; returns a const reference to the value (void for
    /// T = void).  Unlike future::get, does not consume and may be called
    /// any number of times from any thread.
    decltype(auto) get() const {
        throw_if_invalid();
        state_->wait();
        if constexpr (std::is_void_v<T>) {
            state_->peek_value();
        } else {
            return state_->peek_value();
        }
    }

    /// Attaches a continuation `f(const shared_future<T>&)`; the handle
    /// stays valid and more continuations may be attached.
    template <class F>
    auto then(launch policy, F&& f)
        -> future<std::invoke_result_t<F, const shared_future<T>&>> {
        using R = std::invoke_result_t<F, const shared_future<T>&>;
        throw_if_invalid();
        auto next = std::make_shared<detail::shared_state<R>>();
        auto self = *this;

        auto run = [self, next, fn = std::forward<F>(f)]() mutable {
            detail::fulfill(next, fn, static_cast<const shared_future<T>&>(self));
        };
        if (policy == launch::sync) {
            state_->add_callback(std::move(run));
        } else {
            state_->add_callback([run = std::move(run)]() mutable {
                if (runtime* rt = runtime::active()) {
                    rt->post_fn(std::move(run));
                } else {
                    run();
                }
            });
        }
        return future<R>(std::move(next));
    }

    template <class F>
    auto then(F&& f) {
        return then(launch::async, std::forward<F>(f));
    }

    [[nodiscard]] const detail::state_ptr<T>& raw_state() const noexcept {
        return state_;
    }

private:
    void throw_if_invalid() const {
        if (state_ == nullptr) throw std::future_error(std::future_errc::no_state);
    }

    detail::state_ptr<T> state_;
};

/// future<T>::share() free-function form.
template <class T>
shared_future<T> share(future<T>&& f) {
    return shared_future<T>(std::move(f));
}

}  // namespace amt
