// amt/dataflow.hpp
//
// amt::dataflow — run a function once a heterogeneous set of futures is
// ready, the analogue of hpx::dataflow.  The function receives the (ready)
// futures by rvalue, exactly like a then() continuation receives its single
// antecedent.

#pragma once

#include <memory>
#include <tuple>
#include <type_traits>
#include <utility>

#include "amt/atomic.hpp"
#include "amt/future.hpp"
#include "amt/scheduler.hpp"

namespace amt {

/// dataflow(f, f1, f2, ...): when every fi is ready, schedules
/// f(std::move(f1), std::move(f2), ...) as a new task and returns a future
/// for its result.
template <class F, class... Ts>
auto dataflow(F&& f, future<Ts>&&... fs)
    -> future<std::invoke_result_t<std::decay_t<F>, future<Ts>&&...>> {
    using R = std::invoke_result_t<std::decay_t<F>, future<Ts>&&...>;
    static_assert(sizeof...(Ts) > 0, "dataflow needs at least one future");

    struct ctx_t {
        explicit ctx_t(std::decay_t<F>&& fn_, future<Ts>&&... fs_)
            : fn(std::move(fn_)), inputs(std::move(fs_)...) {}
        amt::atomic<std::size_t> remaining{sizeof...(Ts)};
        std::decay_t<F> fn;
        std::tuple<future<Ts>...> inputs;
        detail::state_ptr<R> st = std::make_shared<detail::shared_state<R>>();
    };
    auto ctx = std::make_shared<ctx_t>(std::decay_t<F>(std::forward<F>(f)),
                                       std::move(fs)...);
    auto result = future<R>(ctx->st);

    auto arm = [&ctx](auto& input) {
        input.raw_state()->add_callback([ctx] {
            if (ctx->remaining.fetch_sub(1, amt::memory_order_acq_rel) != 1) {
                return;
            }
            auto run = [ctx] {
                std::apply(
                    [&](auto&... ready) {
                        detail::fulfill(ctx->st, ctx->fn, std::move(ready)...);
                    },
                    ctx->inputs);
            };
            if (runtime* rt = runtime::active()) {
                rt->post_fn(std::move(run));
            } else {
                run();
            }
        });
    };
    std::apply([&](auto&... inputs) { (arm(inputs), ...); }, ctx->inputs);
    return result;
}

}  // namespace amt
