// amt/scheduler.hpp
//
// The amt work-stealing task scheduler, modelled after HPX's default
// "priority local" scheduling policy (without priorities, which the paper
// explicitly does not use): every worker owns a private Chase-Lev deque and
// services it LIFO; idle workers steal FIFO from random victims, falling
// back to a global injection queue that receives tasks posted from
// non-worker threads.
//
// Lifetime model: a `runtime` is an ordinary object.  Constructing one
// registers it as the *active* runtime (an ambient pointer used by the free
// functions amt::async / amt::post); destroying it waits for the workers to
// drain and unregisters it.  Benchmarks that sweep thread counts simply
// construct one runtime per configuration.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "amt/config.hpp"
#include "amt/counters.hpp"
#include "amt/deque.hpp"
#include "amt/task.hpp"

namespace amt {

struct runtime_options {
    /// Number of OS worker threads.  0 selects hardware_concurrency().
    std::size_t num_workers = 0;

    /// Record per-task productive time (needed for counters_snapshot::
    /// productive_ratio, i.e. the paper's Figure 11).  Costs two steady_clock
    /// reads per task; disable for task-spawn microbenchmarks.
    bool enable_timing = true;

    /// Rounds of (local pop + full steal sweep + global poll) an idle worker
    /// performs before parking on the wakeup condition variable.
    std::size_t spin_rounds_before_sleep = 64;
};

class runtime {
public:
    explicit runtime(runtime_options opts);
    explicit runtime(std::size_t num_workers)
        : runtime(runtime_options{.num_workers = num_workers}) {}
    runtime() : runtime(runtime_options{}) {}

    runtime(const runtime&) = delete;
    runtime& operator=(const runtime&) = delete;

    /// Blocks until all queued tasks have run, then joins the workers.
    ~runtime();

    /// Submits a task for asynchronous execution.  Callable from any thread.
    /// From a worker thread the task goes to that worker's own deque (the
    /// cheap, common path for continuations); otherwise to the global
    /// injection queue.
    void post(task_ptr t);

    template <class F>
    void post_fn(F&& f) {
        post(make_task(std::forward<F>(f)));
    }

    [[nodiscard]] std::size_t num_workers() const noexcept {
        return workers_.size();
    }

    /// True when the calling thread is one of this runtime's workers.
    [[nodiscard]] bool on_worker_thread() const noexcept;

    /// Executes at most one pending task on the calling thread.  Used by
    /// futures for cooperative waiting on worker threads.  Returns false if
    /// no runnable task was found.
    bool try_run_one();

    /// Aggregated counters since construction or the last reset_counters().
    [[nodiscard]] counters_snapshot snapshot_counters() const;
    void reset_counters();

    /// The most recently constructed, still-alive runtime, or nullptr.
    /// Free functions (amt::async etc.) target this runtime.
    static runtime* active() noexcept;

private:
    struct worker;

    void worker_loop(worker& self);
    task_base* find_work(worker& self);
    task_base* try_pop_global();
    task_base* try_steal(std::size_t self_index, std::uint64_t& rng_state);
    /// Runs one task.  `stamp` (optional, tracing only) carries the
    /// already-read task start time in and the task end time out, so the
    /// worker loop's gap spans and the task span share exact endpoints
    /// (no unattributed slivers between consecutive trace spans).
    void execute(task_base* raw, worker_counters& c,
                 clock::time_point* stamp = nullptr);
    void notify_workers();

    struct alignas(cache_line_size) worker {
        explicit worker(std::size_t idx) : index(idx) {}
        std::size_t index;
        ws_deque queue;
        worker_counters counters;
        std::uint64_t rng_state = 0;
        std::thread thread;
    };

    runtime_options opts_;
    std::vector<std::unique_ptr<worker>> workers_;

    // Global injection queue for tasks posted from non-worker threads.
    std::mutex global_mu_;
    std::deque<task_base*> global_queue_;

    // Wakeup machinery.  `epoch_` increments on every post; a worker that is
    // about to park re-checks the epoch it sampled before its final queue
    // probe, which closes the lost-wakeup window.
    std::mutex sleep_mu_;
    std::condition_variable sleep_cv_;
    std::uint64_t epoch_ = 0;
    std::atomic<bool> shutdown_{false};

    // Counters not owned by a specific worker: tasks executed cooperatively
    // by external threads inside future waits.
    worker_counters external_counters_;
    std::mutex external_mu_;

    clock::time_point start_time_;

    static std::atomic<runtime*> active_;
};

/// RAII helper: true while the calling thread is inside runtime::execute,
/// used to distinguish "worker executing a task" from "worker in scheduler
/// bookkeeping" for assertions and for nested-blocking decisions.
struct current_worker_info {
    runtime* rt = nullptr;
    std::size_t index = 0;
};

/// Worker context of the calling thread (nullptr runtime if not a worker).
const current_worker_info& current_worker() noexcept;

}  // namespace amt
