// lulesh/run.cpp — the main iteration loop, mirroring the reference main():
// TimeIncrement followed by LagrangeLeapFrog each cycle, until stoptime or
// the iteration cap.

#include <chrono>

#include "lulesh/driver.hpp"
#include "lulesh/kernels.hpp"

namespace lulesh {

run_result run_simulation(domain& d, driver& drv, int max_cycles) {
    run_result result;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        while (d.time_ < d.stoptime && d.cycle < max_cycles) {
            kernels::time_increment(d);
            drv.advance(d);
        }
    } catch (const simulation_error& err) {
        result.run_status = err.code();
    }
    const auto t1 = std::chrono::steady_clock::now();
    result.cycles = d.cycle;
    result.final_time = d.time_;
    result.final_dt = d.deltatime;
    result.final_origin_energy = d.e[0];
    result.elapsed_seconds = std::chrono::duration<double>(t1 - t0).count();
    return result;
}

}  // namespace lulesh
