// lulesh/mesh.cpp — mesh geometry, connectivity, boundary conditions, and
// the Sedov blast initial conditions, following the reference setup for the
// single-node (tp = 1) case.  Slab-aware: a build for the z-plane range
// [plane_begin, plane_end) of a larger problem produces the exact slice of
// the global mesh, with ghost corner-list entries at interior boundaries so
// that nodal force gathers sum in global element order (bitwise equal to the
// single-domain build once the halo exchange has filled the ghosts).

#include <cmath>

#include "lulesh/domain.hpp"
#include "lulesh/elem_geometry.hpp"

namespace lulesh {

namespace {

/// Coordinate of global lattice plane/row/column `i` (identical expression
/// everywhere so coordinates are bitwise equal across slab decompositions).
real_t lattice_coord(index_t i, index_t edge_elems) {
    return real_t(1.125) * static_cast<real_t>(i) /
           static_cast<real_t>(edge_elems);
}

/// Volume of the global element (col, row, gplane), reconstructed from the
/// lattice formula; used for ghost mass contributions and for the origin
/// element's blast parameters on slabs that do not own it.
real_t global_elem_volume(index_t col, index_t row, index_t gplane,
                          index_t edge_elems) {
    real_t ex[8], ey[8], ez[8];
    const index_t ci[8] = {col, col + 1, col + 1, col,
                           col, col + 1, col + 1, col};
    const index_t ri[8] = {row, row, row + 1, row + 1,
                           row, row, row + 1, row + 1};
    const index_t pi[8] = {gplane,     gplane,     gplane,     gplane,
                           gplane + 1, gplane + 1, gplane + 1, gplane + 1};
    for (int c = 0; c < 8; ++c) {
        ex[c] = lattice_coord(ci[c], edge_elems);
        ey[c] = lattice_coord(ri[c], edge_elems);
        ez[c] = lattice_coord(pi[c], edge_elems);
    }
    return geom::calc_elem_volume(ex, ey, ez);
}

/// Gathers one element's corner coordinates.
void collect_domain_nodes(const domain& d, const index_t* elem_nodes,
                          real_t ex[8], real_t ey[8], real_t ez[8]) {
    for (int i = 0; i < 8; ++i) {
        const auto n = static_cast<std::size_t>(elem_nodes[i]);
        ex[i] = d.x[n];
        ey[i] = d.y[n];
        ez[i] = d.z[n];
    }
}

}  // namespace

void build_mesh(domain& d, const options& opts) {
    (void)opts;
    const index_t edge_elems = d.edge_elems_;
    const index_t edge_nodes = d.edge_nodes_;
    const slab_extent slab = d.slab();
    const index_t local_planes = slab.local_planes();
    const index_t plane_elems = d.elems_per_plane();

    // --- nodal coordinates: uniform lattice spanning [0, 1.125]^3 -------
    index_t nidx = 0;
    for (index_t plane = 0; plane <= local_planes; ++plane) {
        const real_t tz =
            lattice_coord(slab.plane_begin + plane, edge_elems);
        for (index_t row = 0; row < edge_nodes; ++row) {
            const real_t ty = lattice_coord(row, edge_elems);
            for (index_t col = 0; col < edge_nodes; ++col) {
                const auto n = static_cast<std::size_t>(nidx);
                d.x[n] = lattice_coord(col, edge_elems);
                d.y[n] = ty;
                d.z[n] = tz;
                ++nidx;
            }
        }
    }

    // --- element → node connectivity (reference ordering) ----------------
    index_t zidx = 0;
    for (index_t plane = 0; plane < local_planes; ++plane) {
        for (index_t row = 0; row < edge_elems; ++row) {
            for (index_t col = 0; col < edge_elems; ++col) {
                const index_t base =
                    plane * edge_nodes * edge_nodes + row * edge_nodes + col;
                index_t* local =
                    &d.node_list_[static_cast<std::size_t>(zidx) * 8];
                local[0] = base;
                local[1] = base + 1;
                local[2] = base + edge_nodes + 1;
                local[3] = base + edge_nodes;
                local[4] = base + edge_nodes * edge_nodes;
                local[5] = base + edge_nodes * edge_nodes + 1;
                local[6] = base + edge_nodes * edge_nodes + edge_nodes + 1;
                local[7] = base + edge_nodes * edge_nodes + edge_nodes;
                ++zidx;
            }
        }
    }

    // --- node → element-corner gather lists (CSR) -----------------------
    // Entries are in ascending *global* element order: lower ghosts first,
    // then local elements, then upper ghosts — which makes nodal force sums
    // bitwise identical to the single-domain build.
    const index_t num_elem = d.num_elem_;
    const index_t num_node = d.num_node_;

    struct contribution {
        index_t node;
        index_t corner_slot;  // slot*8 + corner into the corner arrays
    };
    std::vector<contribution> contribs;
    contribs.reserve(static_cast<std::size_t>(num_elem) * 8 +
                     static_cast<std::size_t>(plane_elems) * 8);

    // Lower ghost plane: elements below the slab touch the bottom node plane
    // via their top corners (4..7).
    if (d.has_lower_neighbor()) {
        const index_t slot_base = d.ghost_lower_slot();
        for (index_t row = 0; row < edge_elems; ++row) {
            for (index_t col = 0; col < edge_elems; ++col) {
                const index_t slot = slot_base + row * edge_elems + col;
                const index_t n00 = row * edge_nodes + col;
                contribs.push_back({n00, slot * 8 + 4});
                contribs.push_back({n00 + 1, slot * 8 + 5});
                contribs.push_back({n00 + edge_nodes + 1, slot * 8 + 6});
                contribs.push_back({n00 + edge_nodes, slot * 8 + 7});
            }
        }
    }
    for (index_t el = 0; el < num_elem; ++el) {
        const index_t* nl = d.nodelist(el);
        for (index_t c = 0; c < 8; ++c) {
            contribs.push_back({nl[c], el * 8 + c});
        }
    }
    // Upper ghost plane: elements above touch the top node plane via their
    // bottom corners (0..3).
    if (d.has_upper_neighbor()) {
        const index_t slot_base = d.ghost_upper_slot();
        const index_t top_nodes = local_planes * edge_nodes * edge_nodes;
        for (index_t row = 0; row < edge_elems; ++row) {
            for (index_t col = 0; col < edge_elems; ++col) {
                const index_t slot = slot_base + row * edge_elems + col;
                const index_t n00 = top_nodes + row * edge_nodes + col;
                contribs.push_back({n00, slot * 8 + 0});
                contribs.push_back({n00 + 1, slot * 8 + 1});
                contribs.push_back({n00 + edge_nodes + 1, slot * 8 + 2});
                contribs.push_back({n00 + edge_nodes, slot * 8 + 3});
            }
        }
    }

    std::vector<index_t> counts(static_cast<std::size_t>(num_node), 0);
    for (const auto& c : contribs) ++counts[static_cast<std::size_t>(c.node)];
    d.node_elem_start_.assign(static_cast<std::size_t>(num_node) + 1, 0);
    for (index_t n = 0; n < num_node; ++n) {
        d.node_elem_start_[static_cast<std::size_t>(n) + 1] =
            d.node_elem_start_[static_cast<std::size_t>(n)] +
            counts[static_cast<std::size_t>(n)];
    }
    d.node_elem_corner_list_.assign(contribs.size(), 0);
    std::vector<index_t> fill(static_cast<std::size_t>(num_node), 0);
    for (const auto& c : contribs) {
        const auto n = static_cast<std::size_t>(c.node);
        const index_t pos = d.node_elem_start_[n] + fill[n];
        d.node_elem_corner_list_[static_cast<std::size_t>(pos)] = c.corner_slot;
        ++fill[n];
    }

    // --- face adjacency (reference lxim/lxip/... construction) -----------
    // Boundary entries reference the element itself (masked by elemBC),
    // except interior slab boundaries in zeta, which point into the ghost
    // slots the halo exchange fills.
    d.lxim[0] = 0;
    for (index_t i = 1; i < num_elem; ++i) {
        d.lxim[static_cast<std::size_t>(i)] = i - 1;
        d.lxip[static_cast<std::size_t>(i) - 1] = i;
    }
    d.lxip[static_cast<std::size_t>(num_elem) - 1] = num_elem - 1;

    for (index_t i = 0; i < edge_elems; ++i) {
        d.letam[static_cast<std::size_t>(i)] = i;
        d.letap[static_cast<std::size_t>(num_elem - edge_elems + i)] =
            num_elem - edge_elems + i;
    }
    for (index_t i = edge_elems; i < num_elem; ++i) {
        d.letam[static_cast<std::size_t>(i)] = i - edge_elems;
        d.letap[static_cast<std::size_t>(i) - static_cast<std::size_t>(edge_elems)] = i;
    }

    for (index_t i = 0; i < plane_elems; ++i) {
        d.lzetam[static_cast<std::size_t>(i)] =
            d.has_lower_neighbor() ? d.ghost_lower_slot() + i : i;
        d.lzetap[static_cast<std::size_t>(num_elem - plane_elems + i)] =
            d.has_upper_neighbor() ? d.ghost_upper_slot() + i
                                   : num_elem - plane_elems + i;
    }
    for (index_t i = plane_elems; i < num_elem; ++i) {
        d.lzetam[static_cast<std::size_t>(i)] = i - plane_elems;
        d.lzetap[static_cast<std::size_t>(i) - static_cast<std::size_t>(plane_elems)] = i;
    }

    // --- boundary conditions ----------------------------------------------
    // Symmetry at the three global minimum faces, free surfaces at the
    // global maxima; interior slab boundaries carry no flags (the neighbor
    // value arrives via the ghost slots).
    for (index_t plane = 0; plane < local_planes; ++plane) {
        const index_t gplane = slab.plane_begin + plane;
        for (index_t row = 0; row < edge_elems; ++row) {
            for (index_t col = 0; col < edge_elems; ++col) {
                const auto el = static_cast<std::size_t>(
                    plane * plane_elems + row * edge_elems + col);
                int mask = 0;
                if (col == 0) mask |= XI_M_SYMM;
                if (col == edge_elems - 1) mask |= XI_P_FREE;
                if (row == 0) mask |= ETA_M_SYMM;
                if (row == edge_elems - 1) mask |= ETA_P_FREE;
                if (gplane == 0) mask |= ZETA_M_SYMM;
                if (gplane == slab.total_planes - 1) mask |= ZETA_P_FREE;
                d.elemBC[el] = mask;
            }
        }
    }

    // Symmetry-plane node lists and per-node masks.  The z symmetry plane
    // belongs to the bottom slab only.
    const index_t local_nplanes = local_planes + 1;
    d.symmX.reserve(static_cast<std::size_t>(edge_nodes) * local_nplanes);
    d.symmY.reserve(static_cast<std::size_t>(edge_nodes) * local_nplanes);
    for (index_t i = 0; i < local_nplanes; ++i) {
        const index_t plane_inc = i * edge_nodes * edge_nodes;
        for (index_t j = 0; j < edge_nodes; ++j) {
            d.symmX.push_back(plane_inc + j * edge_nodes);
            d.symmY.push_back(plane_inc + j);
        }
    }
    if (slab.plane_begin == 0) {
        d.symmZ.reserve(static_cast<std::size_t>(edge_nodes) * edge_nodes);
        for (index_t i = 0; i < edge_nodes; ++i) {
            const index_t row_inc = i * edge_nodes;
            for (index_t j = 0; j < edge_nodes; ++j) {
                d.symmZ.push_back(row_inc + j);
            }
        }
    }
    for (index_t n : d.symmX) d.symm_mask[static_cast<std::size_t>(n)] |= NODE_SYMM_X;
    for (index_t n : d.symmY) d.symm_mask[static_cast<std::size_t>(n)] |= NODE_SYMM_Y;
    for (index_t n : d.symmZ) d.symm_mask[static_cast<std::size_t>(n)] |= NODE_SYMM_Z;

    // --- initial field values (Sedov) --------------------------------------
    // Nodal mass accumulates element volumes / 8 in ascending global element
    // order: lower ghosts, local elements, upper ghosts.
    if (d.has_lower_neighbor()) {
        const index_t gplane = slab.plane_begin - 1;
        for (index_t row = 0; row < edge_elems; ++row) {
            for (index_t col = 0; col < edge_elems; ++col) {
                const real_t volume =
                    global_elem_volume(col, row, gplane, edge_elems);
                const index_t n00 = row * edge_nodes + col;
                const index_t touched[4] = {n00, n00 + 1,
                                            n00 + edge_nodes + 1,
                                            n00 + edge_nodes};
                for (index_t n : touched) {
                    d.nodalMass[static_cast<std::size_t>(n)] +=
                        volume / real_t(8.0);
                }
            }
        }
    }
    for (index_t el = 0; el < num_elem; ++el) {
        real_t ex[8], ey[8], ez[8];
        collect_domain_nodes(d, d.nodelist(el), ex, ey, ez);
        const real_t volume = geom::calc_elem_volume(ex, ey, ez);
        const auto k = static_cast<std::size_t>(el);
        d.volo[k] = volume;
        d.elemMass[k] = volume;
        const index_t* nl = d.nodelist(el);
        for (int c = 0; c < 8; ++c) {
            d.nodalMass[static_cast<std::size_t>(nl[c])] +=
                volume / real_t(8.0);
        }
    }
    if (d.has_upper_neighbor()) {
        const index_t gplane = slab.plane_end;
        const index_t top_nodes = local_planes * edge_nodes * edge_nodes;
        for (index_t row = 0; row < edge_elems; ++row) {
            for (index_t col = 0; col < edge_elems; ++col) {
                const real_t volume =
                    global_elem_volume(col, row, gplane, edge_elems);
                const index_t n00 = top_nodes + row * edge_nodes + col;
                const index_t touched[4] = {n00, n00 + 1,
                                            n00 + edge_nodes + 1,
                                            n00 + edge_nodes};
                for (index_t n : touched) {
                    d.nodalMass[static_cast<std::size_t>(n)] +=
                        volume / real_t(8.0);
                }
            }
        }
    }

    // Deposit the blast energy in the global origin element, scaled so the
    // solution is size-independent (reference ebase 3.948746e+7 at s = 45).
    const real_t ebase = real_t(3.948746e+7);
    const real_t scale = static_cast<real_t>(edge_elems) / real_t(45.0);
    const real_t einit = ebase * scale * scale * scale;
    if (slab.plane_begin == 0) {
        d.e[0] = einit;
    }

    // Initial time increment from the global origin element's size and
    // energy; identical on every slab.
    const real_t origin_volume = global_elem_volume(0, 0, 0, edge_elems);
    d.deltatime =
        (real_t(.5) * std::cbrt(origin_volume)) / std::sqrt(real_t(2.0) * einit);
}

}  // namespace lulesh
