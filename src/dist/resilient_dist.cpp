// dist/resilient_dist.cpp — coordinated rollback-and-replay for clusters.

#include "dist/resilient_dist.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "amt/amt.hpp"
#include "dist/checkpoint_dist.hpp"
#include "lulesh/checkpoint.hpp"
#include "lulesh/checkpoint_chain.hpp"
#include "lulesh/kernels.hpp"

namespace lulesh::dist {

namespace {

std::string describe_failure(const char* what, int cycle, real_t dt,
                             int recoveries) {
    std::ostringstream os;
    os << what << " (cycle " << cycle << ", dt " << dt << "; " << recoveries
       << " recoveries exhausted)";
    return os.str();
}

/// One committed record plus the cycle it was captured at.  The cycle is
/// cached at capture time because the record bytes may be corrupted later
/// (the record_hook test seam, bit rot) — the rollback target computation
/// must not depend on re-parsing possibly-bad headers.
struct chain_entry {
    int cycle = 0;
    std::string record;
};

std::string pack_record(const domain& d, bool base) {
    state_capture cap(d, full_coverage(d), base);
    cap.pack_remaining();
    cap.wait_packed();
    return cap.take_record();
}

}  // namespace

dist_resilient_result run_resilient(cluster& c, dist_driver& drv,
                                    const dist_resilience_options& opt,
                                    int max_cycles) {
    dist_resilient_result rr;
    const auto t0 = std::chrono::steady_clock::now();
    const auto n = static_cast<std::size_t>(c.num_slabs());

    // Per-slab in-memory chains (entry base + deltas, record_hook applied),
    // plus the pristine pre-hook entry bases — the fallback of last resort.
    std::vector<std::vector<chain_entry>> chains(n);
    std::vector<std::string> entry_base(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto s = static_cast<index_t>(i);
        entry_base[i] = pack_record(c.slab(s), /*base=*/true);
        std::string rec = entry_base[i];
        if (opt.record_hook) opt.record_hook(s, rec);
        chains[i].push_back({c.slab(s).cycle, std::move(rec)});
        if (!opt.checkpoint_path.empty()) {
            write_chain_file(slab_chain_path(opt.checkpoint_path, s),
                             {chains[i].back().record});
        }
    }

    // Consistent-cycle rollback over the in-memory chains: restore every
    // slab to the newest cycle every chain holds (the on-disk loader's rule
    // — see load_cluster_chains).  A corrupt delta truncates its chain and
    // lowers the target for everyone; a corrupt base abandons the chains
    // and restores the pristine entry snapshot.  Returns the restored
    // cycle.
    const auto rollback = [&]() -> int {
        for (;;) {
            int target = chains[0].back().cycle;
            for (std::size_t i = 1; i < n; ++i) {
                target = std::min(target, chains[i].back().cycle);
            }
            bool truncated = false;
            bool base_corrupt = false;
            for (std::size_t i = 0; i < n && !truncated; ++i) {
                for (std::size_t j = 0; j < chains[i].size(); ++j) {
                    if (chains[i][j].cycle > target) break;
                    try {
                        apply_chain_record(c.slab(static_cast<index_t>(i)),
                                           chains[i][j].record,
                                           "in-memory cluster chain");
                    } catch (const checkpoint_error&) {
                        if (j == 0) {
                            base_corrupt = true;
                        } else {
                            chains[i].resize(j);
                        }
                        truncated = true;
                        break;
                    }
                }
            }
            if (base_corrupt) {
                // The whole chain of some slab is unusable.  Restore every
                // slab from its pristine entry capture and reset the chains
                // — losing history, not correctness.
                ++rr.entry_fallbacks;
                amt::trace::mark("dist:entry_fallback", 0);
                for (std::size_t i = 0; i < n; ++i) {
                    const auto s = static_cast<index_t>(i);
                    apply_chain_record(c.slab(s), entry_base[i],
                                       "entry snapshot");
                    chains[i].assign(1, {c.slab(s).cycle, entry_base[i]});
                }
                amt::resilience().entry_fallbacks.add(1);
                return c.slab(0).cycle;
            }
            if (!truncated) return target;
        }
    };

    int incident_cycle = -1;  // failing cycle of the open incident, or -1
    int attempts = 0;         // recoveries spent on the open incident

    while (c.slab(0).time_ < c.slab(0).stoptime &&
           c.slab(0).cycle < max_cycles) {
        for (index_t s = 0; s < c.num_slabs(); ++s) {
            kernels::time_increment(c.slab(s));
        }
        amt::fault::set_epoch(c.slab(0).cycle);
        const int this_cycle = c.slab(0).cycle;
        const real_t this_dt = c.slab(0).deltatime;

        try {
            drv.advance(c);
        } catch (const std::exception& e) {
            const auto* sim = dynamic_cast<const simulation_error*>(&e);
            const bool injected =
                dynamic_cast<const amt::fault::injected_fault*>(&e) != nullptr;
            const bool cascade =
                dynamic_cast<const amt::channel_closed*>(&e) != nullptr;
            if (sim == nullptr && !injected && !cascade) throw;

            const slab_failure failure = drv.last_failure();
            if (this_cycle == incident_cycle) {
                ++attempts;
            } else {
                incident_cycle = this_cycle;
                attempts = 1;
            }
            if (attempts > opt.max_recoveries) {
                // Budget exhausted: degrade to exactly the status (and
                // process exit code) the fail-stop path maps this failure
                // to — stalled peers, injected faults, physics errors all
                // keep their established codes.
                status code = status::task_fault;
                if (failure.code != status::ok) {
                    code = failure.transient ? status::task_fault
                                             : failure.code;
                } else if (sim != nullptr) {
                    code = sim->code();
                } else if (cascade) {
                    code = status::stalled;
                }
                rr.result.run_status = code;
                rr.result.error_message = describe_failure(
                    e.what(), this_cycle, this_dt, attempts - 1);
                c.reopen_channels();  // quiescent; make the state inspectable
                rr.last_rollback_cycle = rollback();  // last good state
                break;
            }

            ++rr.recoveries;
            amt::resilience().recoveries.add(1);
            amt::trace::scoped_span recovery(
                amt::trace::event_kind::checkpoint_span, "dist:recovery",
                static_cast<std::int32_t>(failure.slab));
            if (failure.slab >= 0) {
                // The driver named a dead slab: rebuild its domain from
                // scratch (the old memory is presumed lost/poisoned); the
                // rollback below restores it from its chain.
                c.rebuild_slab(failure.slab);
                ++rr.slab_rebuilds;
                amt::trace::mark("dist:slab_rebuild",
                                 static_cast<std::int32_t>(failure.slab));
            }
            c.reopen_channels();
            rr.last_rollback_cycle = rollback();
            // A transient fault's first replay runs at the unchanged dt
            // (bitwise-identical recovery).  Repeat failures of the same
            // cycle and deterministic physics failures halve it — an
            // unchanged replay would fail identically.
            if (!(failure.transient || injected) || attempts >= 2) {
                for (index_t s = 0; s < c.num_slabs(); ++s) {
                    c.slab(s).deltatime *= real_t(0.5);
                }
                ++rr.dt_halvings;
            }
            continue;
        }

        if (incident_cycle >= 0 && c.slab(0).cycle > incident_cycle) {
            incident_cycle = -1;
            attempts = 0;
        }
        if (opt.checkpoint_every > 0 &&
            c.slab(0).cycle % opt.checkpoint_every == 0) {
            // The dist layer's deltas are conservative full-coverage
            // captures (see dist/checkpoint_dist.hpp), appended in lockstep
            // — which is what makes the consistent-cycle minimum a cycle
            // every chain actually holds.
            for (std::size_t i = 0; i < n; ++i) {
                const auto s = static_cast<index_t>(i);
                std::string rec = pack_record(c.slab(s), /*base=*/false);
                if (opt.record_hook) opt.record_hook(s, rec);
                chains[i].push_back({c.slab(s).cycle, std::move(rec)});
                if (!opt.checkpoint_path.empty()) {
                    append_chain_record_file(
                        slab_chain_path(opt.checkpoint_path, s),
                        chains[i].back().record);
                }
            }
            ++rr.checkpoints;
        }
    }

    const auto t1 = std::chrono::steady_clock::now();
    rr.result.cycles = c.slab(0).cycle;
    rr.result.final_time = c.slab(0).time_;
    rr.result.final_dt = c.slab(0).deltatime;
    rr.result.final_origin_energy = c.slab(0).e[0];
    rr.result.elapsed_seconds = std::chrono::duration<double>(t1 - t0).count();
    return rr;
}

}  // namespace lulesh::dist
