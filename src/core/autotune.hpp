// core/autotune.hpp
//
// Runtime partition-size auto-tuning.  The paper derives its Table I
// partition sizes "through experimentation"; this utility automates that
// experiment: it runs a few timed leapfrog iterations per candidate pair on
// a scratch copy of the problem and returns the fastest configuration.  The
// scratch domain is discarded, so tuning does not disturb the caller's
// simulation state.

#pragma once

#include <vector>

#include "amt/amt.hpp"
#include "lulesh/options.hpp"

namespace lulesh {

struct autotune_options {
    /// Candidate partition sizes tried for both phases (all pairs).
    std::vector<index_t> candidates{512, 1024, 2048, 4096, 8192};
    /// Timed iterations per candidate pair (after one warm-up iteration).
    int iterations = 5;
    /// Repetitions per pair; the best (minimum) time is kept, which filters
    /// scheduling noise better than the mean for short measurements.
    int repetitions = 1;
    /// Additionally profile each candidate's compiled graph and attach the
    /// critical-path analysis (core/critical_path.hpp) to the result: the
    /// measured iteration time says which pair won on this machine today,
    /// the ideal-speedup bound says how much headroom each shape leaves —
    /// the pair of signals ROADMAP item 5's online tuner steers by.  Costs
    /// two clock reads per task during tuning; the winning configuration's
    /// production replays are unaffected.
    bool profile_critical_path = false;
};

struct autotune_result {
    partition_sizes best;
    double best_seconds = 0.0;       ///< time of the winning measurement
    double worst_seconds = 0.0;      ///< slowest candidate, for the spread
    int pairs_tried = 0;

    /// Per-candidate critical-path summary (profile_critical_path only),
    /// in sweep order.
    struct candidate_profile {
        partition_sizes parts;
        double seconds = 0.0;          ///< this pair's best measurement
        double critical_path_ns = 0.0;
        double ideal_speedup = 0.0;
    };
    std::vector<candidate_profile> profiles;
    /// The winning pair's ideal-speedup bound (0 when not profiled).
    double best_ideal_speedup = 0.0;
};

/// Measures every candidate pair on a scratch domain built from `problem`
/// and returns the fastest.  `rt` supplies the workers (the same runtime
/// the real run will use, so the tuning reflects the deployment).
autotune_result autotune_partitions(amt::runtime& rt, const options& problem,
                                    const autotune_options& opts = {});

}  // namespace lulesh
