// lulesh/resilient_run.hpp
//
// Checkpoint-based recovery wrapper around the plain iteration loop: works
// with any driver (serial, parallel_for, foreach, taskgraph).  The loop
// snapshots the simulation state every K cycles (in memory, optionally
// mirrored to an atomically-written file) and, when an iteration fails with
// an injected fault or a simulation_error, rolls the domain back to the
// last snapshot and retries:
//
//   * The first retry after an *injected* (transient) fault replays at the
//     unchanged dt.  Every driver is deterministic and checkpoints are
//     bitwise, so the recovered trajectory — and the final state — is
//     bitwise identical to a fault-free run (tests verify this).
//   * A repeat failure of the same incident, or any deterministic physics
//     failure (volume/qstop), halves dt before replaying; the reference's
//     dt-growth bound (deltatimemultub) restores the step size over the
//     following cycles once the run is healthy again.
//   * Retries are bounded per incident; exhausting them ends the run with
//     the mapped failure status instead of looping forever.
//
// An incident is one failing cycle: it ends when the run advances past it,
// at which point the retry budget re-arms for future faults.
//
// The multi-slab analogue is dist::run_resilient (dist/resilient_dist.hpp):
// same incident/budget/dt rules, but the rollback is coordinated — every
// slab restores to one consistent cycle and the halo fabric is re-wired.
// docs/resilience.md covers both and the distributed recovery matrix.

#pragma once

#include <functional>
#include <limits>
#include <string>

#include "lulesh/driver.hpp"

namespace lulesh {

struct resilience_options {
    /// Checkpoint every K successful cycles.  K <= 0 is the documented
    /// *entry-snapshot-only* mode: the chain holds just the base record
    /// captured before the first iteration — still enough to recover from
    /// any fault, at the cost of replaying the whole run (tested in
    /// tests/lulesh/test_checkpoint_chain.cpp).
    int checkpoint_every = 10;

    /// Retry budget per incident (failing cycle); each retry rolls back to
    /// the chain's last committed state.
    int max_retries = 3;

    /// Append a full base record (instead of a delta) once the chain holds
    /// this many records, bounding chain length and replay cost.  <= 0
    /// never re-bases (the chain grows one delta per checkpoint).
    int rebase_every = 16;

    /// When false, checkpoint regions are always packed synchronously at
    /// capture time even if the driver could overlap them with the next
    /// iteration's compute.  Exists so bench/checkpoint_overhead can
    /// measure the critical-path cost the overlap removes.
    bool overlap_packing = true;

    /// When non-empty, the chain is mirrored to this file: base records
    /// rewrite it with the atomic temp+fsync+rename protocol, deltas are
    /// appended and fsync'd.  A crash at any byte leaves a loadable chain
    /// (a torn appended record is simply uncommitted).
    std::string checkpoint_path;

    /// Test seam: invoked on each finished record's bytes just before it
    /// is committed to the chain.  Corruption tests flip a byte here to
    /// prove that rollback detects the invalid record and replays the
    /// shorter prefix instead of silently restoring corrupt state.
    std::function<void(std::string&)> snapshot_hook;
};

struct resilient_result {
    run_result result;

    int rollbacks = 0;            ///< rollback-and-retry attempts performed
    int checkpoints = 0;          ///< snapshots taken after the entry one
    int dt_halvings = 0;          ///< retries that reduced dt before replay
    int snapshot_fallbacks = 0;   ///< rollbacks that found the latest snapshot
                                  ///< corrupt and restored the previous one
};

/// Runs `drv` on `d` to stoptime / `max_cycles` with rollback recovery as
/// described above.  Exceptions other than injected faults and
/// simulation_error are not retryable and propagate to the caller.
///
/// Checkpoints form an incremental chain (lulesh/checkpoint_chain.hpp): a
/// base record plus per-checkpoint delta records covering the regions the
/// driver's write-sets dirtied, each individually CRC-protected and
/// commit-stamped.  Rollback replays the longest valid prefix, so a record
/// corrupted after capture (bit rot, a bad copy) just shortens the replay
/// to the previous committed state (counted in snapshot_fallbacks).  Only
/// if the base record itself is corrupt does the checkpoint_error
/// propagate.  Drivers that can (the task graph) pack the capture as
/// ordinary tasks overlapped with the next iteration's compute, taking the
/// serialization off the critical path.
resilient_result run_resilient(domain& d, driver& drv,
                               const resilience_options& opt,
                               int max_cycles = std::numeric_limits<int>::max());

}  // namespace lulesh
