// core/critical_path.hpp
//
// LULESH-aware critical-path report over a profiled compiled iteration:
// amt::profile_graph supplies the runtime-generic longest-path analysis
// (per-node means, whole-iteration critical path, ideal speedup); this
// layer adds the leapfrog phase semantics — every compute node is binned
// into its wave (phase_profile::name order) via compiled_iteration's
// stage table, and each phase gets
//
//   work        Σ mean node cost of the phase (one iteration);
//   chain       the longest dependency chain *within* the phase (edges
//               crossing a barrier belong to the global path, not here);
//   parallelism work / chain — how many workers the phase can actually
//               feed, the per-phase Table-I signal;
//   slack       max(0, chain − work/workers): the wall time per iteration
//               the phase spends chain-bound — no amount of load balancing
//               recovers it, only splitting the chain (smaller partitions)
//               does.  0 means the phase is work-bound at this worker
//               count and partition splitting cannot help.
//
// Reported behind `lulesh_app --critical-path-report[=PATH]` as both
// human-readable text and a JSON document (scripts/validate_critical_path.py
// checks the two agree); core/autotune ranks partition candidates by the
// ideal-speedup bound, closing ROADMAP item 5's measurement loop.

#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/driver_taskgraph.hpp"

namespace lulesh {

struct critical_path_report {
    struct phase_stats {
        const char* name = "";
        std::size_t tasks = 0;
        double work_ns = 0.0;
        double chain_ns = 0.0;
        double parallelism = 0.0;
        double slack_ns = 0.0;
    };
    struct task_stats {
        const char* label = "";
        std::int32_t arg = -1;
        int stage = -1;  ///< phase_profile index 0..4; -1 for barriers
        double mean_ns = 0.0;
        std::uint64_t runs = 0;
        bool on_critical_path = false;
    };

    std::uint64_t iterations = 0;  ///< profiled replays behind the means
    std::size_t workers = 0;
    std::size_t nodes = 0;
    double work_ns = 0.0;           ///< one iteration's total compute
    double critical_path_ns = 0.0;  ///< longest mean-weighted chain
    double ideal_speedup = 0.0;     ///< work / critical path
    std::array<phase_stats, phase_profile::num_phases> phases{};
    std::vector<task_stats> critical_path;  ///< root → sink node sequence
    std::vector<task_stats> top;            ///< top-k by mean cost
};

/// Analyzes the profiled compiled iteration (quiescent; requires
/// cfg.profile_nodes replays to have run — iterations == 0 means the means
/// are empty and the report says so).  `workers` prices the slack bound.
[[nodiscard]] critical_path_report analyze_critical_path(
    const graph::compiled_iteration& ci, std::size_t workers,
    std::size_t top_k = 10);

/// Human-readable report (durations in integer ns, so the JSON round-trip
/// is exact — scripts/validate_critical_path.py depends on that).
void write_critical_path_text(std::ostream& os,
                              const critical_path_report& r);

/// Single JSON document mirroring every field of the text report.
void write_critical_path_json(std::ostream& os,
                              const critical_path_report& r);

}  // namespace lulesh
