// bench/fig11_utilization.cpp
//
// Reproduces Figure 11 of the paper: the average ratio of productive time
// (worker threads executing kernel bodies) to total execution time, for the
// OpenMP-style baseline and the task-graph implementation across problem
// sizes.  Methodology mirrors the paper:
//   * baseline: per-thread time inside parallel-loop bodies vs wall time of
//     the parallel regions (single-threaded program parts excluded);
//   * task graph: the runtime's productive-time counters (HPX idle-rate
//     analogue) vs total worker wall time — task creation included.
// Claims to check: the task version reaches a higher ratio at every size
// (70% → ~96% vs 54% → ≤ 87% in the paper), both improve with size, and
// the ratio correlates with the Figure 10 speed-ups.

#include "bench_common.hpp"

int main(int argc, char** argv) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    bench::sweep_options sweep = bench::parse_sweep(
        argc, argv,
        {.sizes = {8, 10, 15, 20},
         .threads = {static_cast<int>(std::min(4u, hw * 2))},
         .regions = {11},
         .iters = 40,
         .reps = 3});
    const int threads = sweep.full ? 24 : sweep.threads.front();

    std::cout << "=== Figure 11: productive-time ratio ===\n"
              << "threads: " << threads << " (paper: 24)\n\n";
    std::cout << std::left << std::setw(6) << "size" << std::setw(16)
              << "omp-style" << std::setw(16) << "taskgraph" << "\n";

    std::vector<std::string> csv;
    for (int size : sweep.sizes) {
        lulesh::options problem;
        problem.size = static_cast<lulesh::index_t>(size);
        problem.num_regions = 11;
        const int iters = bench::ae_iteration_cap(size, sweep.iters);
        const auto parts = bench::tuned_parts(size);
        const auto base = bench::run_config_median(
            problem, "parallel_for", static_cast<std::size_t>(threads), parts,
            iters, sweep.reps);
        const auto task = bench::run_config_median(
            problem, "taskgraph", static_cast<std::size_t>(threads), parts,
            iters, sweep.reps);
        std::cout << std::left << std::setw(6) << size << std::setw(16)
                  << std::setprecision(4) << base.productive_ratio
                  << std::setw(16) << task.productive_ratio << "\n";
        std::ostringstream row;
        row << "CSV,fig11," << size << "," << threads << ","
            << base.productive_ratio << "," << task.productive_ratio;
        csv.push_back(row.str());
    }
    std::cout << "\n# size,threads,omp_ratio,task_ratio\n";
    for (const auto& row : csv) std::cout << row << "\n";
    return 0;
}
