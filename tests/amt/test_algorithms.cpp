// Tests for bulk_async / parallel_for_each / parallel_reduce — including
// property-style parameterized sweeps over range and chunk sizes verifying
// that every index is covered exactly once (the invariant the LULESH task
// partitioning relies on).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "amt/algorithms.hpp"
#include "amt/scheduler.hpp"
#include "amt/when_all.hpp"

namespace {

using amt::index_t;

TEST(BulkAsync, EmptyRangeGivesNoTasks) {
    amt::runtime rt(2);
    auto fs = amt::bulk_async(0, 0, 16, [](index_t, index_t) { FAIL(); });
    EXPECT_TRUE(fs.empty());
}

TEST(BulkAsync, ReversedRangeGivesNoTasks) {
    amt::runtime rt(2);
    auto fs = amt::bulk_async(10, 5, 16, [](index_t, index_t) { FAIL(); });
    EXPECT_TRUE(fs.empty());
}

TEST(BulkAsync, ChunkCountMatchesCeilDiv) {
    amt::runtime rt(2);
    auto fs = amt::bulk_async(0, 100, 16, [](index_t, index_t) {});
    EXPECT_EQ(fs.size(), 7u);  // ceil(100/16)
    amt::wait_all(fs);
}

TEST(BulkAsync, NonPositiveChunkClampedToOne) {
    amt::runtime rt(2);
    auto fs = amt::bulk_async(0, 5, 0, [](index_t lo, index_t hi) {
        EXPECT_EQ(hi - lo, 1);
    });
    EXPECT_EQ(fs.size(), 5u);
    amt::wait_all(fs);
}

TEST(BulkAsync, ThrowsWithoutRuntime) {
    ASSERT_EQ(amt::runtime::active(), nullptr);
    EXPECT_THROW((void)amt::bulk_async(0, 10, 2, [](index_t, index_t) {}),
                 std::runtime_error);
}

struct RangeChunkParam {
    index_t n;
    index_t chunk;
};

class BulkAsyncCoverage : public ::testing::TestWithParam<RangeChunkParam> {};

// Property: each index in [0, n) is visited exactly once, regardless of how
// n relates to the chunk size.
TEST_P(BulkAsyncCoverage, EveryIndexVisitedExactlyOnce) {
    const auto [n, chunk] = GetParam();
    amt::runtime rt(3);
    std::vector<std::atomic<int>> visits(static_cast<std::size_t>(n));
    auto fs = amt::bulk_async(0, n, chunk, [&visits](index_t lo, index_t hi) {
        for (index_t i = lo; i < hi; ++i) {
            visits[static_cast<std::size_t>(i)].fetch_add(1,
                                                          std::memory_order_relaxed);
        }
    });
    amt::when_all_void(std::move(fs)).get();
    for (index_t i = 0; i < n; ++i) {
        EXPECT_EQ(visits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    RangeChunkSweep, BulkAsyncCoverage,
    ::testing::Values(RangeChunkParam{1, 1}, RangeChunkParam{1, 100},
                      RangeChunkParam{7, 3}, RangeChunkParam{64, 64},
                      RangeChunkParam{65, 64}, RangeChunkParam{100, 1},
                      RangeChunkParam{1000, 128}, RangeChunkParam{1000, 999},
                      RangeChunkParam{1024, 256}, RangeChunkParam{12345, 1000}),
    [](const ::testing::TestParamInfo<RangeChunkParam>& pinfo) {
        return "n" + std::to_string(pinfo.param.n) + "_c" +
               std::to_string(pinfo.param.chunk);
    });

TEST(ParallelForEach, AppliesFunctionToEachIndex) {
    amt::runtime rt(3);
    std::vector<int> data(1000, 0);
    amt::parallel_for_each(rt, 0, 1000, 64,
                           [&data](index_t i) { data[static_cast<std::size_t>(i)] = static_cast<int>(i); });
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(data[static_cast<std::size_t>(i)], i);
}

TEST(ParallelForEach, PropagatesExceptions) {
    amt::runtime rt(2);
    EXPECT_THROW(amt::parallel_for_each(rt, 0, 100, 10,
                                        [](index_t i) {
                                            if (i == 55) {
                                                throw std::runtime_error("bad index");
                                            }
                                        }),
                 std::runtime_error);
}

TEST(ParallelReduce, SumsRange) {
    amt::runtime rt(3);
    const long long n = 10000;
    auto sum = amt::parallel_reduce<long long>(
        rt, 0, n, 128, 0LL, [](index_t i) { return static_cast<long long>(i); },
        [](long long a, long long b) { return a + b; });
    EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
    amt::runtime rt(2);
    auto v = amt::parallel_reduce<int>(
        rt, 5, 5, 8, -7, [](index_t) { return 1; },
        [](int a, int b) { return a + b; });
    EXPECT_EQ(v, -7);
}

TEST(ParallelReduce, MinReductionMatchesSerial) {
    amt::runtime rt(3);
    std::vector<double> data(5000);
    // Deterministic pseudo-random content.
    std::uint64_t s = 12345;
    for (auto& v : data) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        v = static_cast<double>(s >> 11) / static_cast<double>(1ULL << 53);
    }
    const double serial_min = *std::min_element(data.begin(), data.end());
    auto parallel_min = amt::parallel_reduce<double>(
        rt, 0, static_cast<index_t>(data.size()), 97, 1e300,
        [&data](index_t i) { return data[static_cast<std::size_t>(i)]; },
        [](double a, double b) { return std::min(a, b); });
    EXPECT_DOUBLE_EQ(parallel_min, serial_min);
}

class ParallelReduceChunks : public ::testing::TestWithParam<index_t> {};

// Property: for an associative+commutative op the result is chunk-size
// independent; for float sums with fixed chunking it is deterministic.
TEST_P(ParallelReduceChunks, SumIndependentOfChunkSize) {
    amt::runtime rt(2);
    const index_t n = 4097;
    auto sum = amt::parallel_reduce<long long>(
        rt, 0, n, GetParam(), 0LL,
        [](index_t i) { return static_cast<long long>(i * i % 97); },
        [](long long a, long long b) { return a + b; });
    long long expect = 0;
    for (index_t i = 0; i < n; ++i) expect += static_cast<long long>(i * i % 97);
    EXPECT_EQ(sum, expect);
}

INSTANTIATE_TEST_SUITE_P(ChunkSweep, ParallelReduceChunks,
                         ::testing::Values(1, 2, 16, 100, 1000, 4096, 5000));

TEST(BulkAsyncChains, ContinuationPerChunkWithoutIntermediateBarrier) {
    // The paper's Figure 6 pattern: two dependent element-wise kernels as a
    // per-chunk chain with a single final barrier.
    amt::runtime rt(3);
    const index_t n = 2048;
    std::vector<double> vel(static_cast<std::size_t>(n), 0.0);
    std::vector<double> pos(static_cast<std::size_t>(n), 0.0);

    std::vector<amt::future<void>> chains;
    const index_t chunk = 256;
    for (index_t lo = 0; lo < n; lo += chunk) {
        const index_t hi = std::min<index_t>(lo + chunk, n);
        chains.push_back(
            amt::async([&vel, lo, hi] {
                for (index_t i = lo; i < hi; ++i) {
                    vel[static_cast<std::size_t>(i)] = static_cast<double>(i);
                }
            }).then([&vel, &pos, lo, hi](amt::future<void>&& f) {
                f.get();
                for (index_t i = lo; i < hi; ++i) {
                    pos[static_cast<std::size_t>(i)] =
                        2.0 * vel[static_cast<std::size_t>(i)];
                }
            }));
    }
    amt::when_all_void(std::move(chains)).get();
    for (index_t i = 0; i < n; ++i) {
        EXPECT_DOUBLE_EQ(pos[static_cast<std::size_t>(i)], 2.0 * static_cast<double>(i));
    }
}

}  // namespace
