// bench/fig11_utilization.cpp
//
// Reproduces Figure 11 of the paper: the average ratio of productive time
// (worker threads executing kernel bodies) to total execution time, for the
// OpenMP-style baseline and the task-graph implementation across problem
// sizes.  Methodology mirrors the paper:
//   * baseline: per-thread time inside parallel-loop bodies vs wall time of
//     the parallel regions (single-threaded program parts excluded);
//   * task graph: the runtime's productive-time counters (HPX idle-rate
//     analogue) vs total worker wall time — task creation included.
// Claims to check: the task version reaches a higher ratio at every size
// (70% → ~96% vs 54% → ≤ 87% in the paper), both improve with size, and
// the ratio correlates with the Figure 10 speed-ups.
//
// A second section breaks the task-graph ratio down per leapfrog phase with
// the task tracer (amt/trace): worker time in each phase window attributed
// to productive / steal / idle / barrier, i.e. *where* the non-productive
// time lives, which the aggregate counters cannot show.

#include "bench_common.hpp"

namespace {

/// One traced task-graph run; returns the per-phase attribution.
amt::trace::utilization_report traced_run(const lulesh::options& problem,
                                          std::size_t threads,
                                          lulesh::partition_sizes parts,
                                          int iters) {
    amt::trace::reset();
    amt::trace::set_thread_name("main");
    amt::trace::arm();
    {
        lulesh::domain dom(problem);
        amt::runtime rt(threads);
        lulesh::taskgraph_driver drv(rt, parts);
        lulesh::run_simulation(dom, drv, iters);
    }
    amt::trace::disarm();
    return amt::trace::build_utilization(amt::trace::drain());
}

}  // namespace

int main(int argc, char** argv) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    bench::sweep_options sweep = bench::parse_sweep(
        argc, argv,
        {.sizes = {8, 10, 15, 20},
         .threads = {static_cast<int>(std::min(4u, hw * 2))},
         .regions = {11},
         .iters = 40,
         .reps = 3});
    const int threads = sweep.full ? 24 : sweep.threads.front();

    std::cout << "=== Figure 11: productive-time ratio ===\n"
              << "threads: " << threads << " (paper: 24)\n\n";
    std::cout << std::left << std::setw(6) << "size" << std::setw(16)
              << "omp-style" << std::setw(16) << "taskgraph" << "\n";

    bench::artifact art("fig11");
    art.set_config("sizes", bench::join_ints(sweep.sizes));
    art.set_config("threads", threads);
    art.set_config("iters", sweep.iters);
    art.set_config("reps", sweep.reps);

    std::vector<std::string> csv;
    for (int size : sweep.sizes) {
        lulesh::options problem;
        problem.size = static_cast<lulesh::index_t>(size);
        problem.num_regions = 11;
        const int iters = bench::ae_iteration_cap(size, sweep.iters);
        const auto parts = bench::tuned_parts(size);
        const auto base = bench::run_config_median(
            problem, "parallel_for", static_cast<std::size_t>(threads), parts,
            iters, sweep.reps);
        const auto task = bench::run_config_median(
            problem, "taskgraph", static_cast<std::size_t>(threads), parts,
            iters, sweep.reps);
        art.add_sample(bench::metric_key("omp_ratio", {{"s", size}}),
                       base.productive_ratio, "ratio", "higher");
        art.add_sample(bench::metric_key("task_ratio", {{"s", size}}),
                       task.productive_ratio, "ratio", "higher");
        std::cout << std::left << std::setw(6) << size << std::setw(16)
                  << std::setprecision(4) << base.productive_ratio
                  << std::setw(16) << task.productive_ratio << "\n";
        std::ostringstream row;
        row << "CSV,fig11," << size << "," << threads << ","
            << base.productive_ratio << "," << task.productive_ratio;
        csv.push_back(row.str());
    }
    std::cout << "\n# size,threads,omp_ratio,task_ratio\n";
    for (const auto& row : csv) std::cout << row << "\n";

    // Per-phase breakdown (task tracer) for the largest swept size.
    const int size = sweep.sizes.back();
    lulesh::options problem;
    problem.size = static_cast<lulesh::index_t>(size);
    problem.num_regions = 11;
    const auto report = traced_run(
        problem, static_cast<std::size_t>(threads), bench::tuned_parts(size),
        bench::ae_iteration_cap(size, sweep.iters));

    std::cout << "\n=== per-phase breakdown (size " << size << ", "
              << report.workers << " workers, traced) ===\n";
    std::cout << std::left << std::setw(14) << "phase" << std::right
              << std::setw(12) << "productive" << std::setw(10) << "steal"
              << std::setw(10) << "idle" << std::setw(10) << "barrier"
              << std::setw(8) << "util" << "\n";
    for (const auto& p : report.phases) {
        std::cout << std::left << std::setw(14) << p.name << std::right
                  << std::fixed << std::setprecision(4) << std::setw(12)
                  << p.productive_s << std::setw(10) << p.steal_s
                  << std::setw(10) << p.idle_s << std::setw(10) << p.barrier_s
                  << std::setprecision(3) << std::setw(8) << p.utilization()
                  << "\n";
    }
    std::cout << "coverage " << std::setprecision(3) << report.coverage()
              << ", overall utilization " << report.utilization()
              << ", dropped " << report.dropped << "\n";
    std::cout << "# CSV,fig11_phase,size,threads,phase,window_s,productive_s,"
                 "steal_s,idle_s,barrier_s,tasks,steals,util\n";
    for (const auto& p : report.phases) {
        std::cout << "CSV,fig11_phase," << size << "," << threads << ","
                  << p.name << "," << std::setprecision(6) << p.window_s
                  << "," << p.productive_s << "," << p.steal_s << ","
                  << p.idle_s << "," << p.barrier_s << "," << p.tasks << ","
                  << p.steals << "," << std::setprecision(4)
                  << p.utilization() << "\n";
    }
    for (const auto& p : report.phases) {
        art.add_sample("phase_util/" + p.name, p.utilization(), "ratio",
                       "higher");
    }
    art.add_sample("coverage", report.coverage(), "ratio", "higher");
    art.write_file();
    return 0;
}
