// dist/cluster.cpp — slab construction and halo pack/unpack.

#include "dist/cluster.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "lulesh/crc32.hpp"
#include "lulesh/driver.hpp"

namespace lulesh::dist {

namespace {

// Halo messages carry a trailing real_t slot whose low 4 bytes hold a
// CRC-32 of the payload (bit-copied, never interpreted as a double — the
// arbitrary bit pattern could be a signalling NaN).  pack_* appends it,
// unpack_* strips and verifies it: a payload corrupted in transit fails the
// iteration through the data_corruption status instead of silently skewing
// the neighbor's force sums.

void append_crc(plane_buffer& buf) {
    const std::uint32_t crc = crc32_of(buf.data(), buf.size() * sizeof(real_t));
    real_t slot = real_t(0);
    std::memcpy(&slot, &crc, sizeof(crc));
    buf.push_back(slot);
}

std::string hex32(std::uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08X", v);
    return buf;
}

void verify_crc(const plane_buffer& buf, std::size_t payload, const char* what,
                const halo_message_info& info) {
    std::uint32_t stored = 0;
    std::memcpy(&stored, &buf[payload], sizeof(stored));
    const std::uint32_t actual = crc32_of(buf.data(), payload * sizeof(real_t));
    if (actual != stored) {
        // Reporting parity with checkpoint_error: name where the message
        // came from and both CRCs, so a corrupt halo is as attributable as
        // a corrupt checkpoint record.
        std::string where =
            info.boundary >= 0
                ? "boundary " + std::to_string(info.boundary) + ", direction " +
                      info.direction
                : std::string("direct unpack");
        throw simulation_error(
            status::data_corruption,
            std::string("lulesh::dist: ") + what +
                " halo message failed its CRC check (" + where +
                ", expected " + hex32(stored) + ", actual " + hex32(actual) +
                ")");
    }
}

}  // namespace

const char* halo_stream_name(halo_stream which) noexcept {
    switch (which) {
        case halo_stream::corner_up: return "corner_up";
        case halo_stream::corner_down: return "corner_down";
        case halo_stream::delv_up: return "delv_up";
        default: return "delv_down";
    }
}

amt::channel<plane_buffer>& stream_channel(boundary_channels& b,
                                           halo_stream which) {
    switch (which) {
        case halo_stream::corner_up: return b.corner_up;
        case halo_stream::corner_down: return b.corner_down;
        case halo_stream::delv_up: return b.delv_up;
        default: return b.delv_down;
    }
}

retransmit_slot& stream_slot(boundary_channels& b, halo_stream which) {
    switch (which) {
        case halo_stream::corner_up: return b.corner_up_tx;
        case halo_stream::corner_down: return b.corner_down_tx;
        case halo_stream::delv_up: return b.delv_up_tx;
        default: return b.delv_down_tx;
    }
}

cluster::cluster(const options& opts, index_t num_slabs) : opts_(opts) {
    if (num_slabs < 1 || num_slabs > opts.size) {
        throw std::invalid_argument(
            "lulesh::dist: num_slabs must be in [1, size]");
    }
    const index_t base = opts.size / num_slabs;
    const index_t rem = opts.size % num_slabs;
    index_t begin = 0;
    slabs_.reserve(static_cast<std::size_t>(num_slabs));
    for (index_t i = 0; i < num_slabs; ++i) {
        const index_t planes = base + (i < rem ? 1 : 0);
        slabs_.push_back(std::make_unique<domain>(
            opts, slab_extent{begin, begin + planes, opts.size}));
        begin += planes;
    }
    channels_.reserve(static_cast<std::size_t>(num_slabs - 1));
    for (index_t b = 0; b + 1 < num_slabs; ++b) {
        channels_.push_back(std::make_unique<boundary_channels>());
    }
}

void cluster::reopen_channels() {
    for (auto& b : channels_) {
        b->corner_up.reopen();
        b->corner_down.reopen();
        b->delv_up.reopen();
        b->delv_down.reopen();
        b->corner_up_tx.reset();
        b->corner_down_tx.reset();
        b->delv_up_tx.reset();
        b->delv_down_tx.reset();
    }
}

void cluster::rebuild_slab(index_t i) {
    const slab_extent extent = slab(i).slab();
    slabs_[static_cast<std::size_t>(i)] =
        std::make_unique<domain>(opts_, extent);
}

plane_buffer pack_corner_plane(const domain& d, index_t elem_base) {
    const auto n = static_cast<std::size_t>(d.elems_per_plane()) * 8;
    plane_buffer buf(6 * n);
    const auto base = static_cast<std::size_t>(elem_base) * 8;
    const std::vector<real_t>* arrays[6] = {&d.fx_elem,    &d.fy_elem,
                                            &d.fz_elem,    &d.fx_elem_hg,
                                            &d.fy_elem_hg, &d.fz_elem_hg};
    for (std::size_t a = 0; a < 6; ++a) {
        const real_t* src = arrays[a]->data() + base;
        real_t* dst = buf.data() + a * n;
        for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
    }
    append_crc(buf);
    return buf;
}

void unpack_corner_ghosts(domain& d, index_t ghost_slot,
                          const plane_buffer& buf,
                          const halo_message_info& info) {
    const auto n = static_cast<std::size_t>(d.elems_per_plane()) * 8;
    if (buf.size() != 6 * n + 1) {
        throw std::invalid_argument("lulesh::dist: corner message size mismatch");
    }
    verify_crc(buf, 6 * n, "corner", info);
    const auto base = static_cast<std::size_t>(ghost_slot) * 8;
    std::vector<real_t>* arrays[6] = {&d.fx_elem,    &d.fy_elem,
                                      &d.fz_elem,    &d.fx_elem_hg,
                                      &d.fy_elem_hg, &d.fz_elem_hg};
    for (std::size_t a = 0; a < 6; ++a) {
        const real_t* src = buf.data() + a * n;
        real_t* dst = arrays[a]->data() + base;
        for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
    }
}

plane_buffer pack_delv_plane(const domain& d, index_t elem_base) {
    const auto n = static_cast<std::size_t>(d.elems_per_plane());
    plane_buffer buf(n);
    const real_t* src = d.delv_zeta.data() + static_cast<std::size_t>(elem_base);
    for (std::size_t i = 0; i < n; ++i) buf[i] = src[i];
    append_crc(buf);
    return buf;
}

void unpack_delv_ghosts(domain& d, index_t ghost_slot, const plane_buffer& buf,
                        const halo_message_info& info) {
    const auto n = static_cast<std::size_t>(d.elems_per_plane());
    if (buf.size() != n + 1) {
        throw std::invalid_argument("lulesh::dist: delv message size mismatch");
    }
    verify_crc(buf, n, "delv", info);
    real_t* dst = d.delv_zeta.data() + static_cast<std::size_t>(ghost_slot);
    for (std::size_t i = 0; i < n; ++i) dst[i] = buf[i];
}

}  // namespace lulesh::dist
