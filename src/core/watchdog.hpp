// core/watchdog.hpp
//
// Barrier-progress watchdog for the task-graph drivers.  A wave that stops
// making progress — a task started but never finished within a deadline —
// would otherwise hang the single blocking b5.get() of the iteration
// forever.  The watchdog samples the driver's shared progress_state from
// its own OS thread and fires a callback with a report naming the wave the
// stuck task belongs to, so the run loop can abort, diagnose, or release
// injected stalls instead of hanging.
//
// Detection heuristic: `started > finished` (at least one task is in
// flight) while `finished` has not advanced for `deadline`.  The report
// carries both the single most-recently-started label (`site`, exact on a
// 1-worker runtime) and the per-worker in-flight labels (`sites`, one per
// busy worker), so with several workers the hung task's wave is always
// named even when other workers started tasks after it.  The watchdog
// fires once per stall episode and re-arms itself when `finished` moves
// again, so a long run with several injected stalls reports each one.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "amt/atomic.hpp"
#include "core/graph_waves.hpp"

namespace lulesh {

class watchdog {
public:
    struct report {
        std::string site;          ///< wave label of the stuck task ("?" if unknown)
        std::uint64_t started = 0;
        std::uint64_t finished = 0;
        std::chrono::milliseconds stalled_for{0};
        /// Labels of *all* in-flight tasks at detection time, one per busy
        /// worker (progress_state::worker_site).  With several workers the
        /// single `site` above is only the latest-started label; the hung
        /// task's wave is always one of these.
        std::vector<std::string> sites;
    };

    using callback = std::function<void(const report&)>;

    /// Starts the monitor thread immediately.  `progress` is sampled every
    /// `poll`; `on_stall` runs on the watchdog thread when a stall episode
    /// is detected.
    watchdog(std::shared_ptr<const graph::progress_state> progress,
             std::chrono::milliseconds deadline, callback on_stall,
             std::chrono::milliseconds poll = std::chrono::milliseconds(10));

    /// Joins the monitor thread.
    ~watchdog();

    watchdog(const watchdog&) = delete;
    watchdog& operator=(const watchdog&) = delete;

    /// Whether any stall episode has been reported since construction.
    [[nodiscard]] bool fired() const noexcept {
        return fired_.load(amt::memory_order_acquire);
    }

    /// The most recent report (valid once fired() is true).
    [[nodiscard]] report last_report() const;

    /// Asks the monitor thread to exit and joins it (idempotent; also run
    /// by the destructor).
    void stop();

private:
    void run();

    std::shared_ptr<const graph::progress_state> progress_;
    std::chrono::milliseconds deadline_;
    std::chrono::milliseconds poll_;
    callback on_stall_;

    amt::atomic<bool> fired_{false};
    mutable std::mutex mu_;       // guards last_ and stop signalling
    std::condition_variable cv_;  // wakes the poll loop for prompt shutdown
    bool stopping_ = false;
    report last_;

    std::thread thread_;
};

}  // namespace lulesh
