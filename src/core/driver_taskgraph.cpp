// core/driver_taskgraph.cpp — the many-task leapfrog iteration, built from
// the shared wave builders in graph_waves and chained through non-blocking
// when_all barriers with stage-spawner continuations.

#include "core/driver_taskgraph.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "amt/hazard.hpp"
#include "core/access.hpp"
#include "core/graph_waves.hpp"
#include "core/stage.hpp"

namespace lulesh {

namespace {

using clock_t_ = std::chrono::steady_clock;

/// Stamps the completion instant of a barrier future (runs inline on the
/// completing worker) and forwards readiness.
amt::future<void> stamp(amt::future<void> f, clock_t_::time_point* out) {
    return f.then(amt::launch::sync, [out](amt::future<void>&& g) {
        g.get();
        *out = clock_t_::now();
    });
}

bool env_enabled(const char* name) {
    const char* v = std::getenv(name);
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

void taskgraph_driver::enable_instrumentation(bool track_hazards,
                                              bool scan_nan) {
    instrumentation_checked_ = true;
    if (!track_hazards && !scan_nan) {
        flags_.sentinel.reset();
        return;
    }
    if (!flags_.sentinel) {
        flags_.sentinel = std::make_shared<graph::iteration_sentinel>();
    }
    flags_.sentinel->track_hazards = track_hazards && amt::hazard::compiled_in;
    flags_.sentinel->scan_nan = scan_nan;
}

void taskgraph_driver::prepare_instrumentation(domain& d) {
    if (!instrumentation_checked_) {
        // Environment opt-in, resolved once: AMT_HAZARD_TRACK also arms the
        // generic tracker at process start (amt/hazard.cpp), so armed()
        // reflects it here.
        enable_instrumentation(amt::hazard::armed(),
                               env_enabled("LULESH_NAN_SCAN"));
    }
    auto& sent = flags_.sentinel;
    if (!sent) return;
    sent->dom = &d;
    if (sent->track_hazards && hazard_arena_for_ != &d) {
        amt::hazard::bind_arena(
            &d, graph::arena_extents(
                    d, graph::constraint_slot_count(d, parts_.elems)));
        hazard_arena_for_ = &d;
    }
}

void taskgraph_driver::advance(domain& d) {
    namespace k = kernels;
    const real_t dt = d.deltatime;
    const index_t p_nodal = parts_.nodal;
    const index_t p_elems = parts_.elems;

    prepare_instrumentation(d);

    // Fresh cancellation scope for this iteration; the progress tracker
    // object survives so an external watchdog keeps observing it.  Copies
    // of error_flags share state, so capturing `flags` by value below is
    // aliasing, not snapshotting.
    flags_.begin_iteration();
    graph::error_flags flags = flags_;
    auto counter = std::make_shared<std::atomic<std::size_t>>(0);
    domain* dp = &d;
    amt::runtime* rt = &rt_;

    const auto t0 = clock_t_::now();
    amt::trace::mark("cycle", d.cycle);
    std::array<clock_t_::time_point, phase_profile::num_phases> stamps{};

    // Wave 1 spawned directly; waves 2-5 spawned by continuation stages so
    // the whole iteration flows asynchronously and the driver blocks exactly
    // once, at the end.
    auto w1 = graph::spawn_force_wave(rt_, d, p_nodal, flags);
    counter->fetch_add(w1.tasks, std::memory_order_relaxed);
    auto b1 = stamp(amt::when_all_void(std::move(w1.futures)),
                    &stamps[phase_profile::force]);

    auto b2 = stamp(
        graph::stage_after(std::move(b1),
                           [rt, dp, p_nodal, dt, flags, counter] {
                               auto w = graph::spawn_node_wave(*rt, *dp,
                                                               p_nodal, dt,
                                                               flags);
                               counter->fetch_add(w.tasks,
                                                  std::memory_order_relaxed);
                               return std::move(w.futures);
                           },
                           graph::wave_site::node),
        &stamps[phase_profile::node]);

    auto b3 = stamp(
        graph::stage_after(std::move(b2),
                           [rt, dp, p_elems, dt, flags, counter] {
                               auto w = graph::spawn_elem_wave(*rt, *dp,
                                                               p_elems, dt,
                                                               flags);
                               counter->fetch_add(w.tasks,
                                                  std::memory_order_relaxed);
                               return std::move(w.futures);
                           },
                           graph::wave_site::elem),
        &stamps[phase_profile::elem]);

    auto b4 = stamp(
        graph::stage_after(std::move(b3),
                           [rt, dp, p_elems, flags, counter] {
                               auto w = graph::spawn_region_wave(*rt, *dp,
                                                                 p_elems,
                                                                 flags);
                               counter->fetch_add(w.tasks,
                                                  std::memory_order_relaxed);
                               return std::move(w.futures);
                           },
                           graph::wave_site::region_eos),
        &stamps[phase_profile::region_eos]);

    constraint_partials_.assign(graph::constraint_slot_count(d, p_elems),
                                k::dt_constraints{});
    auto* partials = constraint_partials_.data();
    auto b5 = stamp(
        graph::stage_after(std::move(b4),
                           [rt, dp, p_elems, partials, flags, counter] {
                               auto w = graph::spawn_constraint_wave(
                                   *rt, *dp, p_elems, partials, flags);
                               counter->fetch_add(w.tasks,
                                                  std::memory_order_relaxed);
                               return std::move(w.futures);
                           },
                           graph::wave_site::constraints),
        &stamps[phase_profile::constraints]);

    // The single blocking synchronization of the iteration.  On failure,
    // make sure the stop request is visible (guarded() already requested it
    // from the throwing task; a failure surfaced by the barrier machinery
    // itself would not have) before propagating the first exception.
    const bool tracing = amt::trace::enabled();
    const auto wait0 = tracing ? clock_t_::now() : clock_t_::time_point{};
    try {
        b5.get();
    } catch (...) {
        flags_.stop.request_stop();
        tasks_last_iteration_ = counter->load(std::memory_order_relaxed);
        throw;
    }
    tasks_last_iteration_ = counter->load(std::memory_order_relaxed);
    if (tracing) {
        amt::trace::emit_span(amt::trace::event_kind::barrier_span,
                              "iteration_barrier", wait0, clock_t_::now(),
                              static_cast<std::int32_t>(tasks_last_iteration_));
    }

    // Per-phase durations from the barrier-completion stamps.  The tracer
    // gets the same windows as retroactive phase spans (on a dedicated
    // pseudo-thread, so they cannot break nesting on this thread's
    // timeline) — the per-phase utilization report attributes worker time
    // to these windows.
    auto prev = t0;
    for (std::size_t ph = 0; ph < phase_profile::num_phases; ++ph) {
        profile_.seconds[ph] +=
            std::chrono::duration<double>(stamps[ph] - prev).count();
        if (tracing) {
            const std::int64_t b = amt::trace::to_ns(prev);
            const std::int64_t e = amt::trace::to_ns(stamps[ph]);
            amt::trace::emit_phase(phase_profile::name(ph), b, e - b,
                                   d.cycle);
        }
        prev = stamps[ph];
    }
    ++profile_.iterations;

    k::dt_constraints combined;
    for (const auto& partial : constraint_partials_) {
        combined = k::min_constraints(combined, partial);
    }
    d.dtcourant = combined.dtcourant;
    d.dthydro = combined.dthydro;

    if (!flags.volume_ok->load(std::memory_order_relaxed)) {
        throw simulation_error(status::volume_error,
                               "non-positive volume detected");
    }
    if (!flags.qstop_ok->load(std::memory_order_relaxed)) {
        throw simulation_error(status::qstop_error,
                               "artificial viscosity exceeded qstop");
    }
    if (!flags.nan_ok->load(std::memory_order_relaxed)) {
        std::string msg = "non-finite field value detected";
        if (flags.sentinel) {
            const char* site = flags.sentinel->nan_wave_site.load(
                std::memory_order_relaxed);
            const char* fname = flags.sentinel->nan_field_name.load(
                std::memory_order_relaxed);
            if (fname != nullptr) msg += std::string(" in ") + fname;
            if (site != nullptr) msg += std::string(" at wave ") + site;
        }
        throw simulation_error(status::data_corruption, msg);
    }
    if (flags.sentinel && flags.sentinel->track_hazards &&
        amt::hazard::violation_count() > 0) {
        const auto violations = amt::hazard::take_violations();
        throw simulation_error(status::hazard,
                               "shadow tracker: " + violations.front()
                                   .describe());
    }
}

}  // namespace lulesh
