// failure_detector litmuses (dist/failure_detector.hpp).  Heartbeats are
// relaxed stamps from any thread; the verdict path reads them only after
// establishing that progress stopped.  The model verifies the parts that
// are actual concurrency contracts: beat counts survive racing stampers
// (fetch_add), begin_iteration's re-stamp never tears a slot, and the
// suspect() ranking is a permutation no matter how reads interleave with
// writers.  Staleness ORDER between slabs is deliberately not asserted
// mid-race — relaxed stamps promise nothing until the race quiesces, which
// is why the driver only calls suspect() after its deadline.

#include <gtest/gtest.h>

#include "amt/model.hpp"
#include "dist/failure_detector.hpp"

namespace {

using amt::model::check;
using amt::model::model_assert;
using amt::model::options;
using amt::model::result;

// Two slabs, two stampers racing the driver's begin_iteration re-stamp:
// beats are per-slab fetch_adds and must all survive; last_ns must always
// hold SOME written stamp (no torn/invented values under relaxed stores).
TEST(ModelDetector, RacingHeartbeatsAllSurvive) {
    options o;
    o.quiet = true;
    o.max_executions = 60000;
    const result r = check(o, [] {
        lulesh::dist::failure_detector fd(2);
        amt::model::thread s0([&] {
            fd.heartbeat(0);
            fd.heartbeat(0);
        });
        amt::model::thread s1([&] { fd.heartbeat(1); });
        fd.begin_iteration();  // driver re-stamp racing both stampers
        s0.join();
        s1.join();
        model_assert(fd.beats(0) == 2, "slab 0 lost a beat");
        model_assert(fd.beats(1) == 1, "slab 1 lost a beat");
    });
    EXPECT_FALSE(r.failed) << r.reason << "\n" << r.trace;
}

// suspect() racing a stamper returns a permutation of all slabs — the
// recovery layer indexes domains by it, so duplicates or holes would
// rebuild the wrong slab.
TEST(ModelDetector, SuspectRankingIsAlwaysAPermutation) {
    options o;
    o.quiet = true;
    const result r = check(o, [] {
        lulesh::dist::failure_detector fd(3);
        amt::model::thread stamper([&] {
            fd.heartbeat(2);
            fd.heartbeat(0);
        });
        const std::vector<lulesh::index_t> ranked = fd.suspect();
        stamper.join();
        model_assert(ranked.size() == 3, "ranking dropped a slab");
        bool seen[3] = {false, false, false};
        for (lulesh::index_t s : ranked) {
            model_assert(s >= 0 && s < 3, "ranking invented a slab");
            model_assert(!seen[s], "ranking listed a slab twice");
            seen[s] = true;
        }
    });
    EXPECT_FALSE(r.failed) << r.reason << "\n" << r.trace;
}

// Quiesced staleness: once the stampers are joined, the slab that never
// beat after the iteration re-stamp ranks most stale.  This is the
// driver's actual verdict sequence (deadline passed -> everyone quiet ->
// suspect()), checked over every interleaving of the preceding race.
TEST(ModelDetector, QuiescedVerdictNamesTheSilentSlab) {
    options o;
    o.quiet = true;
    o.max_executions = 60000;
    const result r = check(o, [] {
        lulesh::dist::failure_detector fd(2);
        fd.begin_iteration();
        amt::model::thread alive([&] { fd.heartbeat(1); });
        alive.join();  // quiesce: slab 0 stayed silent this iteration
        const std::vector<lulesh::index_t> ranked = fd.suspect();
        model_assert(ranked.size() == 2, "ranking dropped a slab");
        model_assert(ranked.front() == 0,
                     "silent slab 0 must rank most stale");
    });
    EXPECT_FALSE(r.failed) << r.reason << "\n" << r.trace;
}

}  // namespace
