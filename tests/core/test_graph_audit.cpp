// tests/core/test_graph_audit.cpp — the static hazard auditor: the real
// iteration model must be proven race-free on concrete meshes, and
// adversarial mutations of the model (a deleted continuation edge, a write
// range grown past its partition) must be flagged as exactly the hazard the
// mutation introduces, with the offending tasks, field, and range named.

#include "core/graph_audit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/access.hpp"
#include "lulesh/checkpoint_chain.hpp"
#include "lulesh/domain.hpp"

namespace {

using lulesh::domain;
using lulesh::index_t;
using lulesh::options;
using lulesh::partition_sizes;
namespace graph = lulesh::graph;
using graph::field;

options small_opts(index_t size = 6, index_t regions = 11) {
    options o;
    o.size = size;
    o.num_regions = regions;
    return o;
}

TEST(GraphAudit, RealIterationModelIsProvenRaceFree) {
    const domain d(small_opts());
    const auto model = graph::build_iteration_model(d, {64, 64});
    const auto res = graph::audit_graph(model, d);
    EXPECT_TRUE(res.ok()) << graph::format_audit(res, model);
    EXPECT_GT(res.tasks, 0u);
    EXPECT_GT(res.edges, 0u);  // the node and region chains contribute edges
    EXPECT_GT(res.accesses, 0u);
    EXPECT_GT(res.indices_stamped, 0u);
    EXPECT_NE(graph::format_audit(res, model).find("PASS"), std::string::npos);
}

TEST(GraphAudit, PassesAcrossPartitionSweep) {
    // Autotune moves partition sizes at runtime; every decomposition the
    // sweep can reach must stay race-free, including ragged last chunks.
    const domain d(small_opts());
    for (const partition_sizes parts :
         {partition_sizes{16, 16}, partition_sizes{50, 40},
          partition_sizes{512, 512}, partition_sizes{1024, 1024}}) {
        const auto model = graph::build_iteration_model(d, parts);
        const auto res = graph::audit_graph(model, d);
        EXPECT_TRUE(res.ok()) << "parts {" << parts.nodal << ", " << parts.elems
                              << "}:\n"
                              << graph::format_audit(res, model);
    }
}

TEST(GraphAudit, PassesOnMultiRegionAndSlabDomains) {
    {
        const domain d(small_opts(8, 11));
        const auto model = graph::build_iteration_model(d, {64, 64});
        EXPECT_TRUE(graph::audit_graph(model, d).ok());
    }
    {
        // Interior slab of a decomposed run: ghost corner slots widen the
        // corner space, region lists are slab-local.
        const domain d(small_opts(6, 1), lulesh::slab_extent{2, 4, 6});
        const auto model = graph::build_iteration_model(d, {64, 64});
        EXPECT_TRUE(graph::audit_graph(model, d).ok());
    }
}

TEST(GraphAuditAdversarial, DeletedNodeChainEdgeIsFlaggedAsReadWrite) {
    const domain d(small_opts());
    auto model = graph::build_iteration_model(d, {64, 64});

    // Cut the gather→velpos continuation edge of one node chunk: velpos
    // reads the accelerations its gather writes, so without the edge the
    // pair is an unordered read-write overlap.
    const auto velpos = std::find_if(
        model.tasks.begin(), model.tasks.end(), [](const graph::task_decl& t) {
            return std::string(t.site) == "node.velpos" && t.partition == 1;
        });
    ASSERT_NE(velpos, model.tasks.end());
    ASSERT_FALSE(velpos->deps.empty());
    const auto& gather =
        model.tasks[static_cast<std::size_t>(velpos->deps.front())];
    EXPECT_STREQ(gather.site, "node.gather");
    velpos->deps.clear();

    const auto res = graph::audit_graph(model, d);
    ASSERT_FALSE(res.ok());
    for (const auto& h : res.hazards) {
        EXPECT_EQ(h.k, graph::hazard_report::kind::read_write);
        // Exactly the accelerations flow across the cut edge.
        EXPECT_TRUE(h.f == field::xdd || h.f == field::ydd || h.f == field::zdd);
        const auto& a = model.tasks[static_cast<std::size_t>(h.task_a)];
        const auto& b = model.tasks[static_cast<std::size_t>(h.task_b)];
        EXPECT_TRUE((std::string(a.site) == "node.gather" &&
                     std::string(b.site) == "node.velpos") ||
                    (std::string(a.site) == "node.velpos" &&
                     std::string(b.site) == "node.gather"));
        // The offending range is the severed chunk, not the whole mesh.
        EXPECT_EQ(h.lo, velpos->lo);
        EXPECT_EQ(h.hi, velpos->hi);
        const std::string line = h.describe(model);
        EXPECT_NE(line.find("node.gather"), std::string::npos) << line;
        EXPECT_NE(line.find("node.velpos"), std::string::npos) << line;
        EXPECT_NE(line.find("[1]"), std::string::npos) << line;
    }
    // One hazard per severed acceleration component, coalesced by range.
    EXPECT_EQ(res.hazards.size(), 3u);
}

TEST(GraphAuditAdversarial, WriteRangeGrownPastItsPartitionIsWriteWrite) {
    const domain d(small_opts());
    auto model = graph::build_iteration_model(d, {64, 64});

    // Grow one volume-update task's write range by one element: it now
    // writes v into the next chunk's territory with no ordering edge.
    const auto vol = std::find_if(
        model.tasks.begin(), model.tasks.end(), [](const graph::task_decl& t) {
            return std::string(t.site) == "region_eos.volume" &&
                   t.partition == 0;
        });
    ASSERT_NE(vol, model.tasks.end());
    for (auto& a : vol->accesses) {
        if (a.f == field::v && a.m == graph::mode::write) a.hi += 1;
    }

    const auto res = graph::audit_graph(model, d);
    ASSERT_FALSE(res.ok());
    ASSERT_EQ(res.hazards.size(), 1u);
    const auto& h = res.hazards.front();
    EXPECT_EQ(h.k, graph::hazard_report::kind::write_write);
    EXPECT_EQ(h.f, field::v);
    EXPECT_EQ(h.hi - h.lo, 1);  // exactly the one stolen element
    const std::string line = h.describe(model);
    EXPECT_NE(line.find("region_eos.volume"), std::string::npos) << line;
    EXPECT_NE(line.find("write-write"), std::string::npos) << line;
}

TEST(GraphAuditCheckpoint, PackExtendedModelIsProvenRaceFree) {
    // The overlapped-packing proof: the iteration model plus the pack tasks
    // the task-graph driver actually spawns (one read-only task per
    // checkpointed field, node packs in stage 0, elem packs spanning stages
    // 0-2) must still audit clean.
    const domain d(small_opts());
    auto model = graph::build_iteration_model(d, {64, 64});
    const std::size_t before = model.tasks.size();
    graph::add_checkpoint_pack_tasks(model, d);
    EXPECT_EQ(model.tasks.size(), before + lulesh::num_checkpoint_fields);

    std::size_t node_packs = 0, elem_packs = 0;
    for (const auto& t : model.tasks) {
        if (std::string(t.site) == "ckpt.pack.node") {
            ++node_packs;
            EXPECT_EQ(t.stage, 0);
            EXPECT_EQ(t.stage_last, 0);
        } else if (std::string(t.site) == "ckpt.pack.elem") {
            ++elem_packs;
            EXPECT_EQ(t.stage, 0);
            EXPECT_EQ(t.stage_last, 2);
        }
    }
    EXPECT_EQ(node_packs, 6u);  // x y z xd yd zd
    EXPECT_EQ(elem_packs, 5u);  // e p q v ss

    const auto res = graph::audit_graph(model, d);
    EXPECT_TRUE(res.ok()) << graph::format_audit(res, model);
}

TEST(GraphAuditCheckpoint, ElemPackHeldIntoRegionStageIsFlagged) {
    // Adversarial: let one element-field pack stay in flight one barrier
    // too long — through stage 3, where the region wave writes e/p/q/ss/v.
    // The audit must flag the unordered read-write overlap; this is what
    // would happen if the driver joined elem packs into B4 instead of B3.
    const domain d(small_opts());
    auto model = graph::build_iteration_model(d, {64, 64});
    graph::add_checkpoint_pack_tasks(model, d);

    const auto pack = std::find_if(
        model.tasks.begin(), model.tasks.end(), [](const graph::task_decl& t) {
            return std::string(t.site) == "ckpt.pack.elem" &&
                   t.accesses.front().f == field::e;
        });
    ASSERT_NE(pack, model.tasks.end());
    pack->stage_last = 3;

    const auto res = graph::audit_graph(model, d);
    ASSERT_FALSE(res.ok());
    for (const auto& h : res.hazards) {
        EXPECT_EQ(h.k, graph::hazard_report::kind::read_write);
        EXPECT_EQ(h.f, field::e);
        const std::string line = h.describe(model);
        EXPECT_NE(line.find("ckpt.pack.elem"), std::string::npos) << line;
    }
}

TEST(GraphAuditCheckpoint, NodePackHeldIntoNodeStageIsFlagged) {
    // Same seam on the node side: a coordinate pack surviving into stage 1
    // races the node wave's position update.
    const domain d(small_opts());
    auto model = graph::build_iteration_model(d, {64, 64});
    graph::add_checkpoint_pack_tasks(model, d);

    const auto pack = std::find_if(
        model.tasks.begin(), model.tasks.end(), [](const graph::task_decl& t) {
            return std::string(t.site) == "ckpt.pack.node" &&
                   t.accesses.front().f == field::x;
        });
    ASSERT_NE(pack, model.tasks.end());
    pack->stage_last = 1;

    const auto res = graph::audit_graph(model, d);
    ASSERT_FALSE(res.ok());
    for (const auto& h : res.hazards) {
        EXPECT_EQ(h.k, graph::hazard_report::kind::read_write);
        EXPECT_EQ(h.f, field::x);
    }
}

// ---------------- hand-built toy models ----------------------------------

graph::task_decl toy_task(const char* site, index_t part, int stage,
                          field f, graph::mode m, index_t lo, index_t hi,
                          std::vector<int> deps = {}) {
    graph::task_decl t;
    t.site = site;
    t.partition = part;
    t.lo = lo;
    t.hi = hi;
    t.stage = stage;
    t.accesses.push_back({f, m, lo, hi, nullptr, graph::closure::none});
    t.deps = std::move(deps);
    return t;
}

TEST(GraphAuditToy, UnorderedOverlappingWritersAreFlagged) {
    const domain d(small_opts());
    graph::graph_model m;
    m.num_stages = 1;
    m.tasks.push_back(toy_task("toy.a", 0, 0, field::e, graph::mode::write,
                               0, 10));
    m.tasks.push_back(toy_task("toy.b", 1, 0, field::e, graph::mode::write,
                               5, 15));
    const auto res = graph::audit_graph(m, d);
    ASSERT_EQ(res.hazards.size(), 1u);
    EXPECT_EQ(res.hazards[0].k, graph::hazard_report::kind::write_write);
    EXPECT_EQ(res.hazards[0].lo, 5);
    EXPECT_EQ(res.hazards[0].hi, 10);
}

TEST(GraphAuditToy, AContinuationEdgeOrdersTheOverlap) {
    const domain d(small_opts());
    graph::graph_model m;
    m.num_stages = 1;
    m.tasks.push_back(toy_task("toy.a", 0, 0, field::e, graph::mode::write,
                               0, 10));
    m.tasks.push_back(toy_task("toy.b", 1, 0, field::e, graph::mode::write,
                               5, 15, {0}));
    EXPECT_TRUE(graph::audit_graph(m, d).ok());
}

TEST(GraphAuditToy, OrderingIsTransitiveAlongChains) {
    // a → b → c declared; a and c overlap with no direct edge — the
    // transitive closure must order them.
    const domain d(small_opts());
    graph::graph_model m;
    m.num_stages = 1;
    m.tasks.push_back(toy_task("toy.a", 0, 0, field::e, graph::mode::write,
                               0, 10));
    m.tasks.push_back(toy_task("toy.b", 1, 0, field::p, graph::mode::write,
                               0, 10, {0}));
    m.tasks.push_back(toy_task("toy.c", 2, 0, field::e, graph::mode::write,
                               0, 10, {1}));
    EXPECT_TRUE(graph::audit_graph(m, d).ok());
}

TEST(GraphAuditToy, BarriersOrderAcrossStages) {
    // The same overlap split across two stages needs no edge: the surviving
    // when_all barrier between stages is the ordering.
    const domain d(small_opts());
    graph::graph_model m;
    m.num_stages = 2;
    m.tasks.push_back(toy_task("toy.a", 0, 0, field::e, graph::mode::write,
                               0, 10));
    m.tasks.push_back(toy_task("toy.b", 0, 1, field::e, graph::mode::write,
                               0, 10));
    EXPECT_TRUE(graph::audit_graph(m, d).ok());
}

TEST(GraphAuditToy, ReadersOfOneWriterDoNotConflictWithEachOther) {
    const domain d(small_opts());
    graph::graph_model m;
    m.num_stages = 1;
    m.tasks.push_back(toy_task("toy.w", 0, 0, field::e, graph::mode::write,
                               0, 10));
    m.tasks.push_back(toy_task("toy.r1", 1, 0, field::e, graph::mode::read,
                               0, 10, {0}));
    m.tasks.push_back(toy_task("toy.r2", 2, 0, field::e, graph::mode::read,
                               0, 10, {0}));
    EXPECT_TRUE(graph::audit_graph(m, d).ok());
}

}  // namespace
