// lulesh/fields.hpp
//
// The catalog of domain fields the task waves touch, as a small enum shared
// by three layers: the kernels (which instrument their contiguous accesses
// with hazard touch probes), the declarative access sets (core/access), and
// the static/dynamic hazard auditors.  Scalar control state (dt, cut-offs,
// monoq coefficients) is excluded — scalars are read-only during an
// iteration and cannot race.
//
// Depends only on types.hpp so the kernels can use it without pulling in
// the core layer; the generic shadow tracker (amt/hazard.hpp) identifies
// fields by their integer value.

#pragma once

#include <cstdint>

#include "amt/hazard.hpp"
#include "lulesh/types.hpp"

namespace lulesh {

enum class field : std::uint8_t {
    // node-centered: [0, numNode)
    x,
    y,
    z,
    xd,
    yd,
    zd,
    xdd,
    ydd,
    zdd,
    fx,
    fy,
    fz,
    nodal_mass,
    symm_mask,
    // element-centered: [0, numElem)
    e,
    p,
    q,
    ql,
    qq,
    v,
    volo,
    delv,
    vdov,
    arealg,
    ss,
    elem_mass,
    elem_bc,
    dxx,
    dyy,
    dzz,
    delv_xi,
    delv_eta,
    delv_zeta,
    delx_xi,
    delx_eta,
    delx_zeta,
    vnew,
    vnewc,
    // corner-centered: [0, corner extent), laid out elem*8 + corner.  The
    // corner extent can exceed numElem*8 (halo ghost planes in dist slabs).
    fx_elem,
    fy_elem,
    fz_elem,
    fx_elem_hg,
    fy_elem_hg,
    fz_elem_hg,
    // per-task reduction slots: [0, constraint_slot_count)
    dt_partial,
    count
};

constexpr std::size_t num_fields = static_cast<std::size_t>(field::count);

/// Index space a field is defined over.
enum class space : std::uint8_t { node, elem, corner, slot };

constexpr space field_space(field f) noexcept {
    switch (f) {
        case field::x:
        case field::y:
        case field::z:
        case field::xd:
        case field::yd:
        case field::zd:
        case field::xdd:
        case field::ydd:
        case field::zdd:
        case field::fx:
        case field::fy:
        case field::fz:
        case field::nodal_mass:
        case field::symm_mask:
            return space::node;
        case field::fx_elem:
        case field::fy_elem:
        case field::fz_elem:
        case field::fx_elem_hg:
        case field::fy_elem_hg:
        case field::fz_elem_hg:
            return space::corner;
        case field::dt_partial:
            return space::slot;
        default:
            return space::elem;
    }
}

constexpr const char* field_name(field f) noexcept {
    switch (f) {
        case field::x: return "x";
        case field::y: return "y";
        case field::z: return "z";
        case field::xd: return "xd";
        case field::yd: return "yd";
        case field::zd: return "zd";
        case field::xdd: return "xdd";
        case field::ydd: return "ydd";
        case field::zdd: return "zdd";
        case field::fx: return "fx";
        case field::fy: return "fy";
        case field::fz: return "fz";
        case field::nodal_mass: return "nodalMass";
        case field::symm_mask: return "symm_mask";
        case field::e: return "e";
        case field::p: return "p";
        case field::q: return "q";
        case field::ql: return "ql";
        case field::qq: return "qq";
        case field::v: return "v";
        case field::volo: return "volo";
        case field::delv: return "delv";
        case field::vdov: return "vdov";
        case field::arealg: return "arealg";
        case field::ss: return "ss";
        case field::elem_mass: return "elemMass";
        case field::elem_bc: return "elemBC";
        case field::dxx: return "dxx";
        case field::dyy: return "dyy";
        case field::dzz: return "dzz";
        case field::delv_xi: return "delv_xi";
        case field::delv_eta: return "delv_eta";
        case field::delv_zeta: return "delv_zeta";
        case field::delx_xi: return "delx_xi";
        case field::delx_eta: return "delx_eta";
        case field::delx_zeta: return "delx_zeta";
        case field::vnew: return "vnew";
        case field::vnewc: return "vnewc";
        case field::fx_elem: return "fx_elem";
        case field::fy_elem: return "fy_elem";
        case field::fz_elem: return "fz_elem";
        case field::fx_elem_hg: return "fx_elem_hg";
        case field::fy_elem_hg: return "fy_elem_hg";
        case field::fz_elem_hg: return "fz_elem_hg";
        case field::dt_partial: return "dt_partial";
        case field::count: break;
    }
    return "?";
}

/// Kernel-side hazard probe: declares that the calling task accesses the
/// interval [lo, hi) of `f`'s index space (element ids for corner fields —
/// the probe converts to corner positions).  One relaxed load + branch when
/// the tracker is disarmed; a no-op outside any task scope (serial and
/// parallel-for drivers run the same kernels unscoped).
inline void hazard_touch(field f, bool write, index_t lo, index_t hi) {
    if (field_space(f) == space::corner) {
        amt::hazard::touch(static_cast<int>(f), write,
                           static_cast<std::int64_t>(lo) * 8,
                           static_cast<std::int64_t>(hi) * 8);
    } else {
        amt::hazard::touch(static_cast<int>(f), write, lo, hi);
    }
}

/// Declarative sibling of hazard_touch for *indirect* accesses: a kernel
/// that reaches `f` through a gather/scatter map (elem→node corners,
/// node→element corner list, region element lists) touches an index set
/// that is not a contiguous range in f's own space, so an interval probe
/// here would stamp the wrong indices and mis-fire the shadow tracker.
/// Those closures are declared to the graph auditor in core/access instead;
/// this marker exists so the source-level lint (tools/amtlint, rule AMT003)
/// can still verify the kernel's full field footprint is declared.
/// Deliberately a no-op — second argument mirrors hazard_touch's `write`.
inline void hazard_covers(field, bool = false) {}

}  // namespace lulesh
