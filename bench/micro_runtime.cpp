// bench/micro_runtime.cpp
//
// google-benchmark microbenchmarks of the runtime substrates: the costs the
// paper's tricks trade against each other — task spawn, continuation
// chaining, when_all fan-in, deque throughput, fork-join barrier cost, and
// the loop primitives of both runtimes on identical work.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <vector>

#include "amt/amt.hpp"
#include "ompsim/ompsim.hpp"

namespace {

// ---------- amt primitives ----------

void BM_AmtTaskSpawnAndGet(benchmark::State& state) {
    amt::runtime rt(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto f = amt::async([] { return 1; });
        benchmark::DoNotOptimize(f.get());
    }
}
BENCHMARK(BM_AmtTaskSpawnAndGet)->Arg(1)->Arg(2);

void BM_AmtContinuationChain(benchmark::State& state) {
    amt::runtime rt(1);
    const int depth = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto f = amt::async([] { return 0; });
        for (int i = 0; i < depth; ++i) {
            f = f.then([](amt::future<int>&& v) { return v.get() + 1; });
        }
        benchmark::DoNotOptimize(f.get());
    }
    state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_AmtContinuationChain)->Arg(16)->Arg(128);

void BM_AmtWhenAllFanIn(benchmark::State& state) {
    amt::runtime rt(2);
    const int width = static_cast<int>(state.range(0));
    for (auto _ : state) {
        std::vector<amt::future<void>> fs;
        fs.reserve(static_cast<std::size_t>(width));
        for (int i = 0; i < width; ++i) fs.push_back(amt::async([] {}));
        amt::when_all_void(std::move(fs)).get();
    }
    state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_AmtWhenAllFanIn)->Arg(64)->Arg(512);

void BM_WsDequePushPop(benchmark::State& state) {
    amt::ws_deque d;
    for (auto _ : state) {
        d.push(amt::make_task([] {}).release());
        delete d.pop();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WsDequePushPop);

void BM_UniqueFunctionInvokeSmall(benchmark::State& state) {
    int x = 0;
    amt::unique_function<void()> f([&x] { ++x; });
    for (auto _ : state) f();
    benchmark::DoNotOptimize(x);
}
BENCHMARK(BM_UniqueFunctionInvokeSmall);

void BM_ChannelSetGet(benchmark::State& state) {
    amt::channel<int> ch;
    for (auto _ : state) {
        ch.set(1);
        benchmark::DoNotOptimize(ch.get().get());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelSetGet);

void BM_ChannelHaloPattern(benchmark::State& state) {
    // One plane-sized message per direction per "iteration", like the
    // distributed driver's corner exchange at s = 20 (400 elements/plane).
    amt::runtime rt(2);
    amt::channel<std::vector<double>> up;
    amt::channel<std::vector<double>> down;
    const std::size_t plane = 400 * 8 * 6;
    std::vector<double> buf(plane, 1.0);
    for (auto _ : state) {
        up.set(buf);
        down.set(buf);
        benchmark::DoNotOptimize(up.get().get());
        benchmark::DoNotOptimize(down.get().get());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * plane * sizeof(double)));
}
BENCHMARK(BM_ChannelHaloPattern);

void BM_LatchCountdown(benchmark::State& state) {
    for (auto _ : state) {
        amt::latch l(64);
        for (int i = 0; i < 64; ++i) l.count_down();
        l.wait();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_LatchCountdown);

// ---------- ompsim primitives ----------

void BM_OmpsimForkJoin(benchmark::State& state) {
    ompsim::team team(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        team.parallel_region([](ompsim::region_context&) {});
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OmpsimForkJoin)->Arg(1)->Arg(2)->Arg(4);

void BM_OmpsimBarrier(benchmark::State& state) {
    ompsim::team team(static_cast<std::size_t>(state.range(0)));
    const int rounds = 64;
    for (auto _ : state) {
        team.parallel_region([&](ompsim::region_context& ctx) {
            for (int i = 0; i < rounds; ++i) ctx.barrier();
        });
    }
    state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_OmpsimBarrier)->Arg(2)->Arg(4);

// ---------- loop primitives on identical work ----------

constexpr ompsim::index_t loop_n = 1 << 16;

void BM_OmpsimParallelFor(benchmark::State& state) {
    ompsim::team team(static_cast<std::size_t>(state.range(0)));
    std::vector<double> data(static_cast<std::size_t>(loop_n), 1.0);
    for (auto _ : state) {
        team.parallel_for(0, loop_n, [&data](ompsim::index_t i) {
            data[static_cast<std::size_t>(i)] *= 1.0000001;
        });
    }
    state.SetItemsProcessed(state.iterations() * loop_n);
}
BENCHMARK(BM_OmpsimParallelFor)->Arg(1)->Arg(2);

void BM_AmtBulkChunks(benchmark::State& state) {
    amt::runtime rt(static_cast<std::size_t>(state.range(0)));
    std::vector<double> data(static_cast<std::size_t>(loop_n), 1.0);
    for (auto _ : state) {
        auto wave = amt::bulk_async(
            rt, 0, loop_n, 4096, [&data](amt::index_t lo, amt::index_t hi) {
                for (amt::index_t i = lo; i < hi; ++i) {
                    data[static_cast<std::size_t>(i)] *= 1.0000001;
                }
            });
        amt::when_all_void(std::move(wave)).get();
    }
    state.SetItemsProcessed(state.iterations() * loop_n);
}
BENCHMARK(BM_AmtBulkChunks)->Arg(1)->Arg(2);

// The paper's central trade: four dependent loops as 4 barriers (Figure 5)
// vs per-chunk continuation chains with 1 barrier (Figure 6).

void BM_FourLoopsFourBarriers(benchmark::State& state) {
    amt::runtime rt(2);
    std::vector<double> data(static_cast<std::size_t>(loop_n), 1.0);
    auto body = [&data](amt::index_t lo, amt::index_t hi) {
        for (amt::index_t i = lo; i < hi; ++i) {
            data[static_cast<std::size_t>(i)] *= 1.0000001;
        }
    };
    for (auto _ : state) {
        for (int loop = 0; loop < 4; ++loop) {
            auto wave = amt::bulk_async(rt, 0, loop_n, 4096, body);
            amt::when_all_void(std::move(wave)).get();  // barrier per loop
        }
    }
    state.SetItemsProcessed(state.iterations() * loop_n * 4);
}
BENCHMARK(BM_FourLoopsFourBarriers);

void BM_FourLoopsChainedOneBarrier(benchmark::State& state) {
    amt::runtime rt(2);
    std::vector<double> data(static_cast<std::size_t>(loop_n), 1.0);
    for (auto _ : state) {
        std::vector<amt::future<void>> chains;
        for (amt::index_t lo = 0; lo < loop_n; lo += 4096) {
            const amt::index_t hi = std::min<amt::index_t>(lo + 4096, loop_n);
            auto body = [&data, lo, hi] {
                for (amt::index_t i = lo; i < hi; ++i) {
                    data[static_cast<std::size_t>(i)] *= 1.0000001;
                }
            };
            chains.push_back(amt::async(body)
                                 .then([body](amt::future<void>&& f) mutable {
                                     f.get();
                                     body();
                                 })
                                 .then([body](amt::future<void>&& f) mutable {
                                     f.get();
                                     body();
                                 })
                                 .then([body](amt::future<void>&& f) mutable {
                                     f.get();
                                     body();
                                 }));
        }
        amt::when_all_void(std::move(chains)).get();  // single barrier
    }
    state.SetItemsProcessed(state.iterations() * loop_n * 4);
}
BENCHMARK(BM_FourLoopsChainedOneBarrier);

}  // namespace

BENCHMARK_MAIN();
