#!/usr/bin/env python3
"""Round-trip check for `lulesh_app --critical-path-report`.

Runs the app (or consumes pre-captured output), then verifies that the
human-readable text report and the JSON document describe the SAME
analysis.  The writers make this checkable without tolerances: durations
cross both boundaries as the same llround()ed integer nanoseconds and
ratios as the same %.4f strings (core/critical_path.cpp), so every number
is compared for exact equality.

Checks (all hard failures, exit code 1):
  * the JSON parses, is the "critical_path" experiment, and carries every
    field of the report (iterations/workers/nodes/work_ns/
    critical_path_ns/critical_path_len/ideal_speedup, 5 phases, the path
    node sequence, the top-k table);
  * internal invariants: critical path <= total work, ideal_speedup ==
    work/critical rounded to 4 decimals, critical_path_len == the path
    array length, every path node flagged "critical", per-phase
    parallelism == work/chain, slack >= 0, top sorted by mean cost;
  * text/JSON agreement: header counts, work, critical path length and
    node count, ideal speedup, each phase row (tasks, work, chain,
    parallelism, slack), and each top-task line (label, stage, mean, runs)
    match exactly.

Usage:
  validate_critical_path.py --app build/examples/lulesh_app \\
      --json out.json [-- app args...]
  validate_critical_path.py --json out.json --text report.txt
"""

import argparse
import json
import re
import subprocess
import sys

NUM_PHASES = 5


def fail(msg):
    print(f"validate_critical_path: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def ratio(v):
    return f"{v:.4f}"


def ratio_consistent(reported, num, den):
    """reported (a %.4f-rendered ratio of unrounded doubles) vs num/den
    recomputed from the llround()ed integers: agreement up to the +-0.5 ns
    rounding of numerator and denominator plus the 4-decimal rendering."""
    if den <= 0:
        return num == 0
    slack = 0.5 * (1.0 + abs(reported)) / den + 5.5e-5
    return abs(reported - num / den) <= slack


def load_json(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load JSON report {path}: {e}")
    for key in ("experiment", "iterations", "workers", "nodes", "work_ns",
                "critical_path_ns", "critical_path_len", "ideal_speedup",
                "phases", "critical_path", "top"):
        if key not in doc:
            fail(f"JSON report missing key {key!r}")
    if doc["experiment"] != "critical_path":
        fail(f"unexpected experiment {doc['experiment']!r}")
    return doc


def check_invariants(doc):
    work = doc["work_ns"]
    path_ns = doc["critical_path_ns"]
    if doc["iterations"] <= 0:
        fail("report has zero profiled iterations")
    if not 0 < path_ns <= work + 1:
        fail(f"critical path {path_ns} ns vs work {work} ns is impossible")
    if not ratio_consistent(doc["ideal_speedup"], work, path_ns):
        fail(f"ideal_speedup {doc['ideal_speedup']} != work/critical "
             f"{work / path_ns:.6f}")
    if len(doc["phases"]) != NUM_PHASES:
        fail(f"expected {NUM_PHASES} phases, got {len(doc['phases'])}")
    if doc["critical_path_len"] != len(doc["critical_path"]):
        fail("critical_path_len disagrees with the path array")
    for t in doc["critical_path"]:
        if not t["critical"]:
            fail(f"path node {t['label']!r} not flagged critical")
    # The path's per-node means are llround()ed independently, so their sum
    # may differ from the llround()ed total by half an ns per node.
    path_sum = sum(t["mean_ns"] for t in doc["critical_path"])
    if abs(path_sum - path_ns) > max(1, len(doc["critical_path"])):
        fail(f"path node means sum to {path_sum}, report says {path_ns}")
    for ph in doc["phases"]:
        if ph["tasks"] <= 0:
            fail(f"phase {ph['name']!r} binned no tasks")
        if ph["chain_ns"] > ph["work_ns"] + 1:
            fail(f"phase {ph['name']!r}: chain exceeds work")
        if ph["chain_ns"] > 0 and not ratio_consistent(
                ph["parallelism"], ph["work_ns"], ph["chain_ns"]):
            fail(f"phase {ph['name']!r}: parallelism != work/chain")
        if ph["slack_ns"] < 0:
            fail(f"phase {ph['name']!r}: negative slack")
    tops = doc["top"]
    for a, b in zip(tops, tops[1:]):
        if a["mean_ns"] < b["mean_ns"]:
            fail("top tasks not sorted by mean cost")


def check_text_agreement(text, doc):
    m = re.search(r"critical-path report: (\d+) profiled iterations, "
                  r"(\d+) workers, (\d+) nodes", text)
    if not m:
        fail("text report header not found")
    if [int(g) for g in m.groups()] != \
            [doc["iterations"], doc["workers"], doc["nodes"]]:
        fail(f"text header {m.groups()} disagrees with JSON")

    def expect(needle, what):
        if needle not in text:
            fail(f"text/JSON mismatch: {what}: {needle!r} not in text")

    expect(f"iteration work:  {doc['work_ns']} ns", "work_ns")
    expect(f"critical path:   {doc['critical_path_ns']} ns over "
           f"{doc['critical_path_len']} nodes", "critical_path_ns")
    expect(f"ideal speedup:   {ratio(doc['ideal_speedup'])}x",
           "ideal_speedup")
    for ph in doc["phases"]:
        row = re.search(
            rf"^  {re.escape(ph['name'])}\s+(\d+)\s+(-?\d+)\s+(-?\d+)"
            rf"\s+(\d+\.\d{{4}})\s+(-?\d+)\s*$", text, re.M)
        if not row:
            fail(f"phase row for {ph['name']!r} not found in text")
        got = [row.group(1), row.group(2), row.group(3), row.group(4),
               row.group(5)]
        want = [str(ph["tasks"]), str(ph["work_ns"]), str(ph["chain_ns"]),
                ratio(ph["parallelism"]), str(ph["slack_ns"])]
        if got != want:
            fail(f"phase {ph['name']!r}: text row {got} != JSON {want}")
    for i, t in enumerate(doc["top"]):
        label = t["label"] + (f"[{t['arg']}]" if t["arg"] >= 0 else "")
        expect(f"    {i + 1}. {label} stage={t['stage']} "
               f"mean_ns={t['mean_ns']} runs={t['runs']}",
               f"top task #{i + 1}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--app", help="lulesh_app binary; runs it with "
                    "--critical-path-report=<--json> and the extra args")
    ap.add_argument("--json", required=True,
                    help="JSON report path (output when --app is given)")
    ap.add_argument("--text",
                    help="pre-captured text report (instead of --app)")
    ap.add_argument("args", nargs="*",
                    help="extra app arguments after '--'")
    opts = ap.parse_args()

    if bool(opts.app) == bool(opts.text):
        ap.error("exactly one of --app or --text is required")

    if opts.app:
        cmd = [opts.app, f"--critical-path-report={opts.json}"] + opts.args
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=280)
        if proc.returncode != 0:
            fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
        text = proc.stdout
    else:
        with open(opts.text, encoding="utf-8") as fh:
            text = fh.read()

    doc = load_json(opts.json)
    check_invariants(doc)
    check_text_agreement(text, doc)
    print(f"validate_critical_path: OK: {doc['nodes']} nodes, "
          f"{doc['iterations']} iterations, ideal speedup "
          f"{ratio(doc['ideal_speedup'])}x, text and JSON agree")


if __name__ == "__main__":
    main()
