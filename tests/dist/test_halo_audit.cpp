// tests/dist/test_halo_audit.cpp — the halo-exchange extension of the
// static graph audit.  The slab model (iteration waves + pack/unpack tasks
// per interior boundary) must be proven race-free for real clusters, and
// adversarial mutations — an unpack retargeted at the owned plane, a pack
// whose plane gating is severed — must surface as exactly the hazard the
// mutation introduces.

#include "dist/halo_audit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/access.hpp"
#include "dist/cluster.hpp"
#include "lulesh/domain.hpp"

namespace {

using lulesh::domain;
using lulesh::index_t;
using lulesh::options;
using lulesh::partition_sizes;
using lulesh::dist::audit_cluster;
using lulesh::dist::build_slab_model;
using lulesh::dist::cluster;
using lulesh::dist::cluster_audit_ok;
using lulesh::dist::format_cluster_audit;
namespace graph = lulesh::graph;

options opts(index_t size, index_t regions = 11) {
    options o;
    o.size = size;
    o.num_regions = regions;
    return o;
}

bool is_halo_site(const graph::task_decl& t) {
    return std::string(t.site).rfind("halo.", 0) == 0;
}

std::size_t count_site(const graph::graph_model& m, const std::string& site) {
    return static_cast<std::size_t>(std::count_if(
        m.tasks.begin(), m.tasks.end(), [&](const graph::task_decl& t) {
            return std::string(t.site) == site;
        }));
}

graph::task_decl* find_halo_task(graph::graph_model& m,
                                 const std::string& site) {
    const auto it = std::find_if(
        m.tasks.begin(), m.tasks.end(), [&](const graph::task_decl& t) {
            return std::string(t.site) == site;
        });
    return it == m.tasks.end() ? nullptr : &*it;
}

// ---------------- model shape ----------------

TEST(HaloAuditModel, InteriorSlabGetsFourTasksPerBoundary) {
    cluster c(opts(6), 3);
    const domain& mid = c.slab(1);
    ASSERT_TRUE(mid.has_lower_neighbor());
    ASSERT_TRUE(mid.has_upper_neighbor());

    const auto base = graph::build_iteration_model(mid, {64, 64});
    const auto m = build_slab_model(mid, {64, 64});
    EXPECT_EQ(m.tasks.size(), base.tasks.size() + 8);
    for (const char* site : {"halo.pack_corner", "halo.unpack_corner",
                             "halo.pack_delv", "halo.unpack_delv"}) {
        EXPECT_EQ(count_site(m, site), 2u) << site;
    }
}

TEST(HaloAuditModel, EdgeSlabsGetOneBoundaryEach) {
    cluster c(opts(6), 3);
    const auto bottom = build_slab_model(c.slab(0), {64, 64});
    const auto top = build_slab_model(c.slab(2), {64, 64});
    EXPECT_EQ(count_site(bottom, "halo.pack_corner"), 1u);
    EXPECT_EQ(count_site(top, "halo.pack_corner"), 1u);
    EXPECT_EQ(count_site(bottom, "halo.unpack_delv"), 1u);
}

TEST(HaloAuditModel, NeighborlessDomainDegeneratesToPlainModel) {
    const domain d(opts(6));
    const auto base = graph::build_iteration_model(d, {64, 64});
    const auto m = build_slab_model(d, {64, 64});
    EXPECT_EQ(m.tasks.size(), base.tasks.size());
    EXPECT_EQ(std::count_if(m.tasks.begin(), m.tasks.end(), is_halo_site), 0);
}

TEST(HaloAuditModel, PacksAreGatedOnThePlaneProducers) {
    // The pack's deps model spawn_staged's eager-send gating: every stage-0
    // force task (and stage-2 elem task) whose range intersects the boundary
    // plane must be ordered before the pack that reads it.
    cluster c(opts(6), 2);
    auto m = build_slab_model(c.slab(0), {64, 64});
    const graph::task_decl* pack = find_halo_task(m, "halo.pack_corner");
    ASSERT_NE(pack, nullptr);
    ASSERT_FALSE(pack->deps.empty());
    for (int dep : pack->deps) {
        const auto& p = m.tasks[static_cast<std::size_t>(dep)];
        EXPECT_EQ(p.stage, 0);
        EXPECT_EQ(std::string(p.site).rfind("force.", 0), 0u) << p.site;
        EXPECT_TRUE(p.lo < pack->hi && pack->lo < p.hi)
            << "dep range must intersect the packed plane";
    }
    const graph::task_decl* dpack = find_halo_task(m, "halo.pack_delv");
    ASSERT_NE(dpack, nullptr);
    ASSERT_FALSE(dpack->deps.empty());
    for (int dep : dpack->deps) {
        EXPECT_EQ(m.tasks[static_cast<std::size_t>(dep)].stage, 2);
    }
}

// ---------------- the audit proof ----------------

TEST(HaloAudit, RealClustersAreProvenRaceFree) {
    for (const index_t slabs : {1, 2, 3}) {
        cluster c(opts(6), slabs);
        const auto audits = audit_cluster(c, {64, 64});
        ASSERT_EQ(audits.size(), static_cast<std::size_t>(slabs));
        EXPECT_TRUE(cluster_audit_ok(audits))
            << slabs << " slabs:\n" << format_cluster_audit(audits);
    }
}

TEST(HaloAudit, OnePlaneSlabsAndPartitionSweepStayRaceFree) {
    // 6 slabs over size 6 → one plane per slab: the packed plane is the
    // whole slab, the tightest ghost/owned adjacency the decomposition can
    // produce.  Small partitions maximize the task count.
    cluster c(opts(6), 6);
    for (const partition_sizes parts :
         {partition_sizes{16, 16}, partition_sizes{64, 64},
          partition_sizes{1024, 1024}}) {
        const auto audits = audit_cluster(c, parts);
        EXPECT_TRUE(cluster_audit_ok(audits))
            << "parts {" << parts.nodal << ", " << parts.elems << "}:\n"
            << format_cluster_audit(audits);
    }
}

TEST(HaloAudit, FormatNamesEverySlab) {
    cluster c(opts(6), 3);
    const auto audits = audit_cluster(c, {64, 64});
    const std::string text = format_cluster_audit(audits);
    EXPECT_NE(text.find("slab 0: "), std::string::npos) << text;
    EXPECT_NE(text.find("slab 2: "), std::string::npos) << text;
    EXPECT_NE(text.find("PASS"), std::string::npos) << text;
}

// ---------------- adversarial mutations ----------------

TEST(HaloAuditAdversarial, UnpackRetargetedAtTheOwnedPlaneIsWriteWrite) {
    // The unpack carries no ordering edge — the audit's safety argument is
    // that the ghost region is disjoint from every owned access.  Aim the
    // unpack's writes at the owned boundary plane instead and it must
    // collide with the force tasks writing that plane.
    cluster c(opts(6), 2);
    const domain& d = c.slab(1);
    auto m = build_slab_model(d, {64, 64});
    graph::task_decl* unpack = find_halo_task(m, "halo.unpack_corner");
    ASSERT_NE(unpack, nullptr);
    const index_t plane = d.bottom_plane_elem_base();
    const index_t ep = d.elems_per_plane();
    for (auto& a : unpack->accesses) {
        a.lo = plane;
        a.hi = plane + ep;
    }

    const auto res = graph::audit_graph(m, d);
    ASSERT_FALSE(res.ok());
    bool saw_force_collision = false;
    for (const auto& h : res.hazards) {
        const std::string line = h.describe(m);
        EXPECT_NE(line.find("halo.unpack_corner"), std::string::npos) << line;
        if (h.k == graph::hazard_report::kind::write_write &&
            line.find("force.") != std::string::npos) {
            saw_force_collision = true;
        }
    }
    EXPECT_TRUE(saw_force_collision)
        << "expected a write-write against the force wave:\n"
        << graph::format_audit(res, m);
}

TEST(HaloAuditAdversarial, DelvUnpackIntoOwnedRangeCollidesWithElemWave) {
    cluster c(opts(6), 2);
    const domain& d = c.slab(0);
    auto m = build_slab_model(d, {64, 64});
    graph::task_decl* unpack = find_halo_task(m, "halo.unpack_delv");
    ASSERT_NE(unpack, nullptr);
    const index_t plane = d.top_plane_elem_base();
    for (auto& a : unpack->accesses) {
        a.lo = plane;
        a.hi = plane + d.elems_per_plane();
    }

    const auto res = graph::audit_graph(m, d);
    ASSERT_FALSE(res.ok());
    bool saw_elem_collision = false;
    for (const auto& h : res.hazards) {
        EXPECT_EQ(h.f, graph::field::delv_zeta);
        const std::string line = h.describe(m);
        if (line.find("elem") != std::string::npos) saw_elem_collision = true;
    }
    EXPECT_TRUE(saw_elem_collision) << graph::format_audit(res, m);
}

TEST(HaloAuditAdversarial, SeveredPlaneGatingIsReadWrite) {
    // Cut the pack's dependency edges: it now reads the boundary plane
    // concurrently with the force tasks writing it — the race spawn_staged's
    // plane gating exists to prevent.
    cluster c(opts(6), 2);
    const domain& d = c.slab(0);
    auto m = build_slab_model(d, {64, 64});
    graph::task_decl* pack = find_halo_task(m, "halo.pack_corner");
    ASSERT_NE(pack, nullptr);
    pack->deps.clear();

    const auto res = graph::audit_graph(m, d);
    ASSERT_FALSE(res.ok());
    for (const auto& h : res.hazards) {
        EXPECT_EQ(h.k, graph::hazard_report::kind::read_write);
        const std::string line = h.describe(m);
        EXPECT_NE(line.find("halo.pack_corner"), std::string::npos) << line;
        EXPECT_NE(line.find("force."), std::string::npos) << line;
    }
}

// ---------------- the extent fix backing the ghost stamps ----------------

TEST(HaloAudit, ElemSpaceExtentCoversGhostPlanes) {
    // The writer map for elem-space fields must span the ghost-extended
    // delv_zeta of a slab, or the unpack's ghost stamps would index past it.
    cluster c(opts(6), 3);
    const domain& mid = c.slab(1);
    EXPECT_EQ(graph::space_extent(graph::space::elem, mid, 0),
              mid.delv_zeta.size());
    EXPECT_GT(mid.delv_zeta.size(),
              static_cast<std::size_t>(mid.numElem()));
    const domain single(opts(6));
    EXPECT_EQ(graph::space_extent(graph::space::elem, single, 0),
              static_cast<std::size_t>(single.numElem()));
}

}  // namespace
