// Tests for command-line parsing and the Table I partition-size defaults.

#include <gtest/gtest.h>

#include "lulesh/options.hpp"

namespace {

using lulesh::cli_options;
using lulesh::parse_cli;
using lulesh::partition_sizes;

cli_options parse(std::initializer_list<const char*> args) {
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return parse_cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, DefaultsMatchReference) {
    const auto cli = parse({});
    EXPECT_EQ(cli.problem.size, 30);
    EXPECT_EQ(cli.problem.num_regions, 11);
    EXPECT_EQ(cli.problem.balance, 1);
    EXPECT_EQ(cli.problem.cost, 1);
    EXPECT_EQ(cli.driver, "taskgraph");
    EXPECT_EQ(cli.threads, 0u);
    EXPECT_FALSE(cli.quiet);
    EXPECT_FALSE(cli.partitions.has_value());
}

TEST(Cli, ParsesReferenceStyleFlags) {
    const auto cli = parse({"-s", "90", "-r", "16", "-i", "770", "-q"});
    EXPECT_EQ(cli.problem.size, 90);
    EXPECT_EQ(cli.problem.num_regions, 16);
    EXPECT_EQ(cli.problem.max_cycles, 770);
    EXPECT_TRUE(cli.quiet);
}

TEST(Cli, ParsesDoubleDashVariants) {
    const auto cli = parse({"--s", "45", "--r", "21", "--q"});
    EXPECT_EQ(cli.problem.size, 45);
    EXPECT_EQ(cli.problem.num_regions, 21);
    EXPECT_TRUE(cli.quiet);
}

TEST(Cli, ParsesDriverAndThreads) {
    const auto cli = parse({"-d", "parallel_for", "-t", "24"});
    EXPECT_EQ(cli.driver, "parallel_for");
    EXPECT_EQ(cli.threads, 24u);
}

TEST(Cli, ParsesPartitionPair) {
    const auto cli = parse({"-p", "4096", "2048"});
    ASSERT_TRUE(cli.partitions.has_value());
    EXPECT_EQ(cli.partitions->nodal, 4096);
    EXPECT_EQ(cli.partitions->elems, 2048);
}

TEST(Cli, ParsesBalanceAndCost) {
    const auto cli = parse({"-b", "2", "-c", "3"});
    EXPECT_EQ(cli.problem.balance, 2);
    EXPECT_EQ(cli.problem.cost, 3);
}

TEST(Cli, HelpFlagSetsShowHelp) {
    EXPECT_TRUE(parse({"-h"}).show_help);
    EXPECT_TRUE(parse({"--help"}).show_help);
}

TEST(Cli, RejectsUnknownFlag) {
    EXPECT_THROW(parse({"--bogus"}), std::invalid_argument);
}

TEST(Cli, RejectsMissingValue) {
    EXPECT_THROW(parse({"-s"}), std::invalid_argument);
    EXPECT_THROW(parse({"-p", "1024"}), std::invalid_argument);
}

TEST(Cli, RejectsNonNumericValue) {
    EXPECT_THROW(parse({"-s", "abc"}), std::invalid_argument);
}

TEST(Cli, RejectsInvalidDriver) {
    EXPECT_THROW(parse({"-d", "cuda"}), std::invalid_argument);
}

TEST(Cli, RejectsOutOfRangeValues) {
    EXPECT_THROW(parse({"-s", "0"}), std::invalid_argument);
    EXPECT_THROW(parse({"-r", "0"}), std::invalid_argument);
    EXPECT_THROW(parse({"-i", "0"}), std::invalid_argument);
}

TEST(Cli, CheckpointEveryAcceptsZeroAndRejectsNegatives) {
    // k = 0 is the documented entry-snapshot-only resilient mode; anything
    // negative is meaningless and must be rejected at parse time.
    EXPECT_EQ(parse({"--checkpoint-every", "0"}).checkpoint_every, 0);
    EXPECT_EQ(parse({"--checkpoint-every", "7"}).checkpoint_every, 7);
    EXPECT_THROW(parse({"--checkpoint-every", "-1"}), std::invalid_argument);
    EXPECT_THROW(parse({"--checkpoint-every", "-100"}), std::invalid_argument);
}

TEST(Cli, UsageDocumentsEntrySnapshotOnlyMode) {
    const std::string text = lulesh::usage_text("prog");
    EXPECT_NE(text.find("--checkpoint-every"), std::string::npos);
    EXPECT_NE(text.find("entry-snapshot-only"), std::string::npos);
}

TEST(Cli, RejectsNonPositivePartitions) {
    EXPECT_THROW(parse({"-p", "0", "64"}), std::invalid_argument);
    EXPECT_THROW(parse({"-p", "64", "0"}), std::invalid_argument);
    EXPECT_THROW(parse({"-p", "-2048", "2048"}), std::invalid_argument);
}

// ---------------- --audit-graph and its environment twin ----------------

cli_options parse_env(std::initializer_list<const char*> args,
                      lulesh::env_lookup env) {
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return parse_cli(static_cast<int>(argv.size()), argv.data(), env);
}

const char* no_env(const char*) { return nullptr; }

TEST(CliAudit, FlagEnablesAuditOnTaskGraphDrivers) {
    EXPECT_TRUE(parse_env({"--audit-graph"}, no_env).audit_graph);
    EXPECT_TRUE(
        parse_env({"--audit-graph", "-d", "foreach"}, no_env).audit_graph);
    EXPECT_FALSE(parse_env({}, no_env).audit_graph);
}

TEST(CliAudit, FlagWithGraphlessDriverIsRejected) {
    // serial and parallel_for never spawn the task graph the audit models —
    // silently auditing a graph that will not run would be a false proof.
    EXPECT_THROW(parse_env({"--audit-graph", "-d", "serial"}, no_env),
                 std::invalid_argument);
    EXPECT_THROW(parse_env({"-d", "parallel_for", "--audit-graph"}, no_env),
                 std::invalid_argument);
}

TEST(CliAudit, EnvFlagEnablesAudit) {
    const auto cli = parse_env({}, [](const char* name) -> const char* {
        return std::string(name) == "LULESH_AUDIT_GRAPH" ? "1" : nullptr;
    });
    EXPECT_TRUE(cli.audit_graph);
}

TEST(CliAudit, UnsetEmptyAndZeroEnvLeaveAuditOff) {
    EXPECT_FALSE(parse_env({}, no_env).audit_graph);
    EXPECT_FALSE(parse_env({}, [](const char*) -> const char* {
                     return "";
                 }).audit_graph);
    EXPECT_FALSE(parse_env({}, [](const char*) -> const char* {
                     return "0";
                 }).audit_graph);
}

TEST(CliAudit, MalformedEnvValuesAreRejected) {
    for (const char* bad : {"yes", "2", "true", " 1", "on"}) {
        static const char* value;
        value = bad;
        EXPECT_THROW(parse_env({}, [](const char*) -> const char* {
                         return value;
                     }),
                     std::invalid_argument)
            << "LULESH_AUDIT_GRAPH=" << bad;
    }
}

// ---------------- --graph-mode and its environment twin ----------------

TEST(CliGraphMode, DefaultsToEmptyMeaningReplay) {
    EXPECT_EQ(parse_env({}, no_env).graph_mode, "");
}

TEST(CliGraphMode, FlagSelectsMode) {
    EXPECT_EQ(parse_env({"--graph-mode", "replay"}, no_env).graph_mode,
              "replay");
    EXPECT_EQ(parse_env({"--graph-mode", "build"}, no_env).graph_mode,
              "build");
    EXPECT_EQ(parse_env({"--graph-mode=build"}, no_env).graph_mode, "build");
}

TEST(CliGraphMode, UnknownModeIsRejected) {
    EXPECT_THROW(parse_env({"--graph-mode", "compiled"}, no_env),
                 std::invalid_argument);
    EXPECT_THROW(parse_env({"--graph-mode", ""}, no_env),
                 std::invalid_argument);
    EXPECT_THROW(parse_env({"--graph-mode"}, no_env), std::invalid_argument);
}

TEST(CliGraphMode, RejectedWithNonTaskgraphDrivers) {
    // The mode selects how the taskgraph driver realizes its iteration
    // graph; every other driver has no such graph.
    for (const char* drv : {"serial", "parallel_for", "foreach"}) {
        static const char* d;
        d = drv;
        EXPECT_THROW(parse_env({"--graph-mode", "build", "-d", d}, no_env),
                     std::invalid_argument)
            << drv;
    }
    EXPECT_EQ(
        parse_env({"--graph-mode", "build", "-d", "taskgraph"}, no_env)
            .graph_mode,
        "build");
}

TEST(CliGraphMode, EnvTwinAppliesAndFlagWins) {
    const auto env = [](const char* name) -> const char* {
        return std::string(name) == "LULESH_GRAPH_MODE" ? "build" : nullptr;
    };
    EXPECT_EQ(parse_env({}, env).graph_mode, "build");
    EXPECT_EQ(parse_env({"--graph-mode", "replay"}, env).graph_mode,
              "replay");
}

TEST(CliGraphMode, MalformedEnvValueIsRejected) {
    const auto env = [](const char* name) -> const char* {
        return std::string(name) == "LULESH_GRAPH_MODE" ? "fast" : nullptr;
    };
    EXPECT_THROW(parse_env({}, env), std::invalid_argument);
}

TEST(CliGraphMode, UsageDocumentsTheFlag) {
    const std::string text = lulesh::usage_text("prog");
    EXPECT_NE(text.find("--graph-mode"), std::string::npos);
    EXPECT_NE(text.find("LULESH_GRAPH_MODE"), std::string::npos);
}

TEST(CliAudit, EnvFlagHonorsTheDriverValidation) {
    EXPECT_THROW(parse_env({"-d", "serial"},
                           [](const char*) -> const char* { return "1"; }),
                 std::invalid_argument);
    // An explicit 0 is not a request, so any driver is fine.  (Scoped to
    // the audit variable: for the path-valued twins "0" is a filename.)
    EXPECT_NO_THROW(
        parse_env({"-d", "serial"}, [](const char* name) -> const char* {
            return std::string(name) == "LULESH_AUDIT_GRAPH" ? "0" : nullptr;
        }));
}

TEST(CliAudit, UsageTextDocumentsBothSpellings) {
    const auto text = lulesh::usage_text("prog");
    EXPECT_NE(text.find("--audit-graph"), std::string::npos);
    EXPECT_NE(text.find("LULESH_AUDIT_GRAPH"), std::string::npos);
}

// ---------------- --trace / --utilization-report and env twins ----------

TEST(CliTrace, FlagsCarryPathsInBothSpellings) {
    auto cli = parse_env({"--trace", "a.json", "--utilization-report",
                          "u.txt"},
                         no_env);
    EXPECT_EQ(cli.trace_file, "a.json");
    EXPECT_EQ(cli.utilization_report_file, "u.txt");
    cli = parse_env({"--trace=b.json", "--utilization-report=v.json"},
                    no_env);
    EXPECT_EQ(cli.trace_file, "b.json");
    EXPECT_EQ(cli.utilization_report_file, "v.json");
    EXPECT_TRUE(parse_env({}, no_env).trace_file.empty());
}

TEST(CliTrace, EmptyPathsAreRejected) {
    EXPECT_THROW(parse_env({"--trace="}, no_env), std::invalid_argument);
    EXPECT_THROW(parse_env({"--utilization-report="}, no_env),
                 std::invalid_argument);
    EXPECT_THROW(parse_env({"--trace"}, no_env), std::invalid_argument);
}

TEST(CliTrace, GraphlessDriversAreRejected) {
    // serial and parallel_for never spawn scheduler tasks, so a trace of
    // them would be an empty lie — same policy as --audit-graph.
    EXPECT_THROW(parse_env({"--trace=t.json", "-d", "serial"}, no_env),
                 std::invalid_argument);
    EXPECT_THROW(parse_env({"-d", "parallel_for",
                            "--utilization-report=u.txt"},
                           no_env),
                 std::invalid_argument);
    EXPECT_NO_THROW(parse_env({"--trace=t.json", "-d", "foreach"}, no_env));
}

TEST(CliTrace, EnvTwinsFillOnlyUnsetFlags) {
    const auto env = [](const char* name) -> const char* {
        if (std::string(name) == "LULESH_TRACE") return "env.json";
        if (std::string(name) == "LULESH_UTILIZATION_REPORT") {
            return "env.txt";
        }
        return nullptr;
    };
    auto cli = parse_env({}, env);
    EXPECT_EQ(cli.trace_file, "env.json");
    EXPECT_EQ(cli.utilization_report_file, "env.txt");
    // The flag wins over the twin.
    cli = parse_env({"--trace=cli.json"}, env);
    EXPECT_EQ(cli.trace_file, "cli.json");
    EXPECT_EQ(cli.utilization_report_file, "env.txt");
    // Empty env values are not requests.
    EXPECT_TRUE(parse_env({}, [](const char*) -> const char* {
                    return "";
                }).trace_file.empty());
}

TEST(CliTrace, EnvTwinsHonorTheDriverValidation) {
    EXPECT_THROW(
        parse_env({"-d", "serial"},
                  [](const char* name) -> const char* {
                      return std::string(name) == "LULESH_TRACE" ? "t.json"
                                                                 : nullptr;
                  }),
        std::invalid_argument);
}

TEST(CliTrace, UsageTextDocumentsAllSpellings) {
    const auto text = lulesh::usage_text("prog");
    EXPECT_NE(text.find("--trace"), std::string::npos);
    EXPECT_NE(text.find("--utilization-report"), std::string::npos);
    EXPECT_NE(text.find("LULESH_TRACE"), std::string::npos);
    EXPECT_NE(text.find("LULESH_UTILIZATION_REPORT"), std::string::npos);
}

// ------------- --halo-timeout / --max-recoveries (fail-soft dist) -------------

TEST(CliHaloTimeout, ParsesBothSpellingsAndDefaultsToZero) {
    EXPECT_EQ(parse_env({}, no_env).halo_timeout_ms, 0);
    EXPECT_EQ(parse_env({"--halo-timeout", "250"}, no_env).halo_timeout_ms,
              250);
    EXPECT_EQ(parse_env({"--halo-timeout=1500"}, no_env).halo_timeout_ms,
              1500);
}

TEST(CliHaloTimeout, RejectsMalformedValues) {
    EXPECT_THROW(parse_env({"--halo-timeout"}, no_env),
                 std::invalid_argument);  // missing value
    EXPECT_THROW(parse_env({"--halo-timeout", "-1"}, no_env),
                 std::invalid_argument);
    EXPECT_THROW(parse_env({"--halo-timeout", "soon"}, no_env),
                 std::invalid_argument);
    EXPECT_THROW(parse_env({"--halo-timeout=-250"}, no_env),
                 std::invalid_argument);
}

TEST(CliHaloTimeout, EnvTwinParsesAndFlagWins) {
    const auto env = [](const char* name) -> const char* {
        return std::string(name) == "LULESH_HALO_TIMEOUT" ? "400" : nullptr;
    };
    EXPECT_EQ(parse_env({}, env).halo_timeout_ms, 400);
    EXPECT_EQ(parse_env({"--halo-timeout", "100"}, env).halo_timeout_ms, 100);
    // The flag wins even at its default value 0 (explicit disable).
    EXPECT_EQ(parse_env({"--halo-timeout", "0"}, env).halo_timeout_ms, 0);
    // Empty env values are not requests.
    EXPECT_EQ(parse_env({}, [](const char*) -> const char* {
                  return "";
              }).halo_timeout_ms,
              0);
}

TEST(CliHaloTimeout, MalformedEnvTwinIsRejected) {
    EXPECT_THROW(parse_env({},
                           [](const char* name) -> const char* {
                               return std::string(name) ==
                                              "LULESH_HALO_TIMEOUT"
                                          ? "-5"
                                          : nullptr;
                           }),
                 std::invalid_argument);
    EXPECT_THROW(parse_env({},
                           [](const char* name) -> const char* {
                               return std::string(name) ==
                                              "LULESH_HALO_TIMEOUT"
                                          ? "later"
                                          : nullptr;
                           }),
                 std::invalid_argument);
}

TEST(CliHaloTimeout, RejectedWithDriversThatNeverExchangeHalos) {
    // serial and parallel_for never perform the distributed halo exchange
    // the deadline guards — accepting the flag would silently do nothing.
    EXPECT_THROW(parse_env({"--halo-timeout", "250", "-d", "serial"}, no_env),
                 std::invalid_argument);
    EXPECT_THROW(
        parse_env({"-d", "parallel_for", "--halo-timeout=250"}, no_env),
        std::invalid_argument);
    EXPECT_THROW(parse_env({"-d", "serial"},
                           [](const char* name) -> const char* {
                               return std::string(name) ==
                                              "LULESH_HALO_TIMEOUT"
                                          ? "250"
                                          : nullptr;
                           }),
                 std::invalid_argument);
    // Zero (disabled) stays compatible with every driver.
    EXPECT_EQ(parse_env({"--halo-timeout", "0", "-d", "serial"}, no_env)
                  .halo_timeout_ms,
              0);
    EXPECT_EQ(
        parse_env({"--halo-timeout", "250", "-d", "foreach"}, no_env)
            .halo_timeout_ms,
        250);
}

TEST(CliMaxRecoveries, ParsesAndRejectsNegative) {
    EXPECT_EQ(parse_env({}, no_env).max_recoveries, 3);
    EXPECT_EQ(parse_env({"--max-recoveries", "0"}, no_env).max_recoveries, 0);
    EXPECT_EQ(parse_env({"--max-recoveries", "7"}, no_env).max_recoveries, 7);
    EXPECT_THROW(parse_env({"--max-recoveries", "-1"}, no_env),
                 std::invalid_argument);
    EXPECT_THROW(parse_env({"--max-recoveries"}, no_env),
                 std::invalid_argument);
}

TEST(CliHaloTimeout, UsageTextDocumentsAllSpellings) {
    const auto text = lulesh::usage_text("prog");
    EXPECT_NE(text.find("--halo-timeout"), std::string::npos);
    EXPECT_NE(text.find("LULESH_HALO_TIMEOUT"), std::string::npos);
    EXPECT_NE(text.find("--max-recoveries"), std::string::npos);
}

TEST(Cli, UsageTextMentionsAllFlags) {
    const auto text = lulesh::usage_text("prog");
    for (const char* flag : {"-s", "-r", "-i", "-b", "-c", "-d", "-t", "-p", "-q"}) {
        EXPECT_NE(text.find(flag), std::string::npos) << flag;
    }
}

TEST(PartitionSizes, TunedValuesMatchPaperTableI) {
    struct row {
        lulesh::index_t size, nodal, elems;
    };
    // Table I of the paper.
    const row table[] = {{45, 2048, 2048},  {60, 4096, 2048},
                         {75, 8192, 4096},  {90, 8192, 4096},
                         {120, 8192, 2048}, {150, 8192, 2048}};
    for (const auto& r : table) {
        const auto p = partition_sizes::tuned_for(r.size);
        EXPECT_EQ(p.nodal, r.nodal) << "size " << r.size;
        EXPECT_EQ(p.elems, r.elems) << "size " << r.size;
    }
}

TEST(PartitionSizes, SmallProblemsGetSmallPartitions) {
    const auto p = partition_sizes::tuned_for(10);
    EXPECT_LE(p.nodal, 512);
    EXPECT_LE(p.elems, 512);
    EXPECT_GE(p.nodal, 1);
}

}  // namespace
