// amt/async.hpp
//
// amt::async — create a task and immediately return a future for its result,
// the analogue of hpx::async.  The calling thread never blocks; the task is
// executed later by one of the runtime's workers.

#pragma once

#include <stdexcept>
#include <tuple>
#include <type_traits>
#include <utility>

#include "amt/future.hpp"
#include "amt/scheduler.hpp"

namespace amt {

/// Schedules `f(args...)` on `rt` and returns a future for the result.
/// Arguments are decay-copied into the task (like std::async); use
/// std::ref/std::cref for by-reference capture.
template <class F, class... Args>
auto async(runtime& rt, F&& f, Args&&... args)
    -> future<std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>...>> {
    using R = std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>...>;
    auto st = std::make_shared<detail::shared_state<R>>();
    rt.post_fn([st, fn = std::decay_t<F>(std::forward<F>(f)),
                tup = std::make_tuple(std::decay_t<Args>(
                    std::forward<Args>(args))...)]() mutable {
        auto call = [&fn, &tup]() -> R { return std::apply(fn, std::move(tup)); };
        detail::fulfill(st, call);
    });
    return future<R>(std::move(st));
}

/// As above, targeting the active runtime.  Throws std::runtime_error when
/// no runtime is alive — async with nowhere to run is a programming error we
/// surface early rather than silently executing inline.
template <class F, class... Args,
          class = std::enable_if_t<!std::is_same_v<std::decay_t<F>, runtime>>>
auto async(F&& f, Args&&... args) {
    runtime* rt = runtime::active();
    if (rt == nullptr) {
        throw std::runtime_error("amt::async: no active amt::runtime");
    }
    return async(*rt, std::forward<F>(f), std::forward<Args>(args)...);
}

/// Fire-and-forget submission to the active runtime (hpx::post analogue).
template <class F>
void post(F&& f) {
    runtime* rt = runtime::active();
    if (rt == nullptr) {
        throw std::runtime_error("amt::post: no active amt::runtime");
    }
    rt->post_fn(std::forward<F>(f));
}

}  // namespace amt
