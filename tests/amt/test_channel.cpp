// Tests for amt::channel and amt::when_any — the communication primitives
// the distributed LULESH extension builds its halo exchange from.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "amt/async.hpp"
#include "amt/channel.hpp"
#include "amt/scheduler.hpp"
#include "amt/when_all.hpp"
#include "amt/when_any.hpp"

namespace {

using amt::channel;
using amt::channel_closed;
using amt::future;

TEST(Channel, SetThenGetDeliversValue) {
    channel<int> ch;
    ch.set(42);
    auto f = ch.get();
    ASSERT_TRUE(f.is_ready());
    EXPECT_EQ(f.get(), 42);
}

TEST(Channel, GetThenSetCompletesPendingFuture) {
    channel<int> ch;
    auto f = ch.get();
    EXPECT_FALSE(f.is_ready());
    ch.set(7);
    ASSERT_TRUE(f.is_ready());
    EXPECT_EQ(f.get(), 7);
}

TEST(Channel, ValuesDeliveredInFifoOrder) {
    channel<int> ch;
    ch.set(1);
    ch.set(2);
    ch.set(3);
    EXPECT_EQ(ch.get().get(), 1);
    EXPECT_EQ(ch.get().get(), 2);
    EXPECT_EQ(ch.get().get(), 3);
}

TEST(Channel, GettersServedInFifoOrder) {
    channel<int> ch;
    auto f1 = ch.get();
    auto f2 = ch.get();
    ch.set(10);
    EXPECT_TRUE(f1.is_ready());
    EXPECT_FALSE(f2.is_ready());
    ch.set(20);
    EXPECT_EQ(f1.get(), 10);
    EXPECT_EQ(f2.get(), 20);
}

TEST(Channel, MoveOnlyValues) {
    channel<std::unique_ptr<int>> ch;
    ch.set(std::make_unique<int>(5));
    auto v = ch.get().get();
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, 5);
}

TEST(Channel, HandleCopiesShareTheQueue) {
    channel<int> a;
    channel<int> b = a;
    a.set(99);
    EXPECT_EQ(b.get().get(), 99);
}

TEST(Channel, SizeApproxCountsBufferedValues) {
    channel<int> ch;
    EXPECT_EQ(ch.size_approx(), 0u);
    ch.set(1);
    ch.set(2);
    EXPECT_EQ(ch.size_approx(), 2u);
    (void)ch.get().get();
    EXPECT_EQ(ch.size_approx(), 1u);
}

TEST(Channel, CloseFailsPendingGetters) {
    channel<int> ch;
    auto f = ch.get();
    ch.close();
    ASSERT_TRUE(f.is_ready());
    EXPECT_THROW(f.get(), channel_closed);
}

TEST(Channel, CloseFailsSubsequentGetters) {
    channel<int> ch;
    ch.close();
    EXPECT_THROW(ch.get().get(), channel_closed);
}

TEST(Channel, SetOnClosedChannelThrows) {
    channel<int> ch;
    ch.close();
    EXPECT_THROW(ch.set(1), channel_closed);
}

TEST(Channel, CloseIsIdempotent) {
    channel<int> ch;
    ch.close();
    EXPECT_NO_THROW(ch.close());
}

TEST(Channel, ReopenAcceptsValuesAgainOnEveryHandle) {
    channel<int> a;
    channel<int> b = a;  // handle copy shares the state
    a.close();
    EXPECT_THROW(a.set(1), channel_closed);
    a.reopen();
    b.set(5);
    EXPECT_EQ(a.get().get(), 5);
}

TEST(Channel, ReopenStartsEmptyAndIsIdempotent) {
    channel<int> ch;
    ch.set(1);  // buffered value must not survive the close/reopen cycle
    ch.close();
    ch.reopen();
    EXPECT_EQ(ch.size_approx(), 0u);
    EXPECT_NO_THROW(ch.reopen());  // idempotent, and a no-op when open
    ch.set(2);
    EXPECT_EQ(ch.get().get(), 2);
}

TEST(Channel, GettersPendingAtCloseStayFailedAfterReopen) {
    // Reopening must not resurrect futures that were already failed with
    // channel_closed — the recovery layer re-issues fresh get() calls.
    channel<int> ch;
    auto stale = ch.get();
    ch.close();
    ch.reopen();
    EXPECT_THROW(stale.get(), channel_closed);
    ch.set(9);
    EXPECT_EQ(ch.get().get(), 9);
}

TEST(Channel, ReopenRacingSendsStressStaysCoherent) {
    // Native counterpart of the tests/model reopen litmuses: producers spam
    // set() while the main thread cycles close()/reopen(), the shape a
    // retransmit cache produces when recovery re-wires a halo fabric under
    // load.  Any individual set() may land, be discarded by a later close,
    // or bounce off the closed window — but once quiescent the channel must
    // hold only values that were actually sent, each at most once, and must
    // still do a clean FIFO roundtrip.
    channel<int> ch;
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 2000;
    constexpr int kCycles = 200;
    std::atomic<bool> go{false};
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&ch, &go, p] {
            while (!go.load()) {
            }
            for (int i = 0; i < kPerProducer; ++i) {
                try {
                    ch.set(p * kPerProducer + i);  // globally unique tag
                } catch (const channel_closed&) {
                    // Raced into a closed window: a legal outcome.
                }
            }
        });
    }
    go.store(true);
    for (int c = 0; c < kCycles; ++c) {
        ch.close();
        ch.reopen();
    }
    for (auto& t : producers) t.join();

    // Quiescent: whatever survived the last reopen must be unique, valid
    // tags — no duplicated, torn, or invented values.
    std::vector<bool> seen(kProducers * kPerProducer, false);
    std::size_t drained = 0;
    while (ch.size_approx() > 0) {
        auto f = ch.get();
        ASSERT_TRUE(f.is_ready());
        const int v = f.get();
        ASSERT_GE(v, 0);
        ASSERT_LT(v, kProducers * kPerProducer);
        EXPECT_FALSE(seen[v]) << "value " << v << " delivered twice";
        seen[v] = true;
        ++drained;
    }
    EXPECT_LE(drained, static_cast<std::size_t>(kProducers * kPerProducer));

    // And the channel is fully functional after the storm.
    ch.set(-1);
    ch.set(-2);
    EXPECT_EQ(ch.get().get(), -1);
    EXPECT_EQ(ch.get().get(), -2);
}

TEST(Channel, ProducerConsumerAcrossThreads) {
    channel<int> ch;
    constexpr int n = 1000;
    std::thread producer([&ch] {
        for (int i = 0; i < n; ++i) ch.set(i);
    });
    long long sum = 0;
    for (int i = 0; i < n; ++i) {
        auto f = ch.get();
        sum += f.get();
    }
    producer.join();
    EXPECT_EQ(sum, static_cast<long long>(n) * (n - 1) / 2);
}

TEST(Channel, HaloExchangePatternWithContinuations) {
    // Two "localities" exchange boundary planes and each continues with a
    // dependent computation — the distributed-LULESH communication pattern.
    amt::runtime rt(2);
    channel<std::vector<double>> a_to_b;
    channel<std::vector<double>> b_to_a;

    auto locality = [](channel<std::vector<double>> send,
                       channel<std::vector<double>> recv, double base) {
        // Produce the boundary, send it, then combine with the neighbor's.
        return amt::async([send, base]() mutable {
                   std::vector<double> boundary(8, base);
                   send.set(boundary);
                   return boundary;
               })
            .then([recv](future<std::vector<double>>&& own) mutable {
                auto mine = own.get();
                auto theirs = recv.get().get();  // future chained; may wait
                double sum = 0;
                for (std::size_t i = 0; i < mine.size(); ++i) {
                    sum += mine[i] + theirs[i];
                }
                return sum;
            });
    };

    auto fa = locality(a_to_b, b_to_a, 1.0);
    auto fb = locality(b_to_a, a_to_b, 2.0);
    EXPECT_DOUBLE_EQ(fa.get(), 8 * 3.0);
    EXPECT_DOUBLE_EQ(fb.get(), 8 * 3.0);
}

// ---------------- when_any ----------------

TEST(WhenAny, EmptyInputIsReady) {
    std::vector<future<int>> fs;
    auto any = amt::when_any(std::move(fs));
    ASSERT_TRUE(any.is_ready());
    EXPECT_TRUE(any.get().futures.empty());
}

TEST(WhenAny, FiresOnFirstCompletion) {
    amt::promise<int> p1;
    amt::promise<int> p2;
    std::vector<future<int>> fs;
    fs.push_back(p1.get_future());
    fs.push_back(p2.get_future());
    auto any = amt::when_any(std::move(fs));
    EXPECT_FALSE(any.is_ready());
    p2.set_value(20);
    ASSERT_TRUE(any.is_ready());
    auto result = any.get();
    EXPECT_EQ(result.index, 1u);
    EXPECT_EQ(result.futures[1].get(), 20);
    EXPECT_TRUE(result.futures[0].valid());  // still pending, still owned
    p1.set_value(10);
    EXPECT_EQ(result.futures[0].get(), 10);
}

TEST(WhenAny, AlreadyReadyInputWinsImmediately) {
    std::vector<future<int>> fs;
    fs.push_back(amt::make_ready_future(5));
    amt::promise<int> p;
    fs.push_back(p.get_future());
    auto any = amt::when_any(std::move(fs));
    ASSERT_TRUE(any.is_ready());
    EXPECT_EQ(any.get().index, 0u);
    p.set_value(0);  // avoid broken-promise noise
}

TEST(WhenAny, WithRuntimeTasks) {
    amt::runtime rt(2);
    std::atomic<bool> release{false};
    std::vector<future<int>> fs;
    fs.push_back(amt::async([&release] {
        while (!release.load()) std::this_thread::yield();
        return 1;
    }));
    fs.push_back(amt::async([] { return 2; }));
    auto result = amt::when_any(std::move(fs)).get();
    EXPECT_EQ(result.index, 1u);
    release.store(true);
    EXPECT_EQ(result.futures[0].get(), 1);
    EXPECT_EQ(result.futures[1].get(), 2);
}

}  // namespace
