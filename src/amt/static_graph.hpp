// amt/static_graph.hpp
//
// A compiled, replayable task graph: the allocation side of the paper's T6
// trick taken to its end point.  Where amt::async / stage_after build a
// fresh web of heap-allocated tasks, shared states and continuation nodes
// every iteration, a static_graph is compiled ONCE — nodes live in
// arena-style storage (a std::deque of recycled node objects), dependency
// edges are flattened into a CSR successor table, and readiness is tracked
// by per-node generation counters — and then *replayed*: arm() resets every
// counter, start() posts the roots, and the same node objects flow through
// the scheduler again.  A steady-state replay iteration performs zero heap
// allocations (tests/amt/test_alloc_count.cpp proves this end to end).
//
// Lifecycle:    compile (add_node/add_edge) → seal → [arm → start → wait]*
//
//   * add_node/add_edge — build the topology.  Bodies are plain nullary
//     callables; labels/args feed the tracer (trace::annotate_task).
//   * seal() — freezes the topology: computes initial dependency counts,
//     the CSR successor table and the root set.  No further structural
//     changes are allowed.
//   * arm(rt) — re-arms every node for one replay: remaining := initial
//     deps + external deps, pending := node count, stop/error cleared,
//     generation += 1.  Must only be called when the graph is quiescent
//     (before the first start() or after wait() returned).
//   * set_external_deps(id, n) — adds n dependencies satisfied by calls to
//     satisfy_external(id) rather than by graph nodes (e.g. checkpoint
//     pack tasks that overlap the iteration).  Consumed by the next arm()
//     and then reset to zero: external gating is per-replay opt-in.
//   * start() — posts every root whose armed dependency count is zero.
//     Roots gated by external deps are posted by satisfy_external().
//   * wait() — blocks until ALL nodes completed (cooperatively running
//     tasks when called from a worker thread), then rethrows the first
//     body exception, if any.
//
// Error/stop semantics: a body exception (or request_stop()) flips the
// graph's stop flag.  Remaining nodes still *complete* — they are posted,
// counted and finish the graph — but their bodies are skipped, exactly
// like the stop-token early-return in the fresh-build driver path.  The
// graph therefore always drains fully and is immediately re-armable; the
// next arm() starts from fresh stop state (re-armed tasks observe no stale
// cancellation).
//
// Ownership: nodes are task_base subclasses constructed NOT scheduler-owned
// — the scheduler executes them but never deletes them (see task.hpp).
// The graph must outlive any in-flight replay; wait() is the sync point.

#pragma once

#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <utility>
#include <vector>

#include "amt/atomic.hpp"
#include "amt/scheduler.hpp"
#include "amt/task.hpp"
#include "amt/unique_function.hpp"

namespace amt {

class static_graph {
public:
    using node_id = std::uint32_t;

    static_graph() = default;
    static_graph(const static_graph&) = delete;
    static_graph& operator=(const static_graph&) = delete;
    ~static_graph();

    /// Compile phase.  `label`/`arg` become the trace span annotation.
    node_id add_node(unique_function<void()> body, const char* label = "node",
                     std::int32_t arg = -1);
    void add_edge(node_id from, node_id to);
    void seal();

    [[nodiscard]] bool sealed() const noexcept { return sealed_; }
    [[nodiscard]] std::size_t node_count() const noexcept {
        return nodes_.size();
    }
    [[nodiscard]] std::size_t edge_count() const noexcept {
        return sealed_ ? succ_.size() : edges_.size();
    }

    /// Replay protocol — see the file comment for ordering rules.
    void set_external_deps(node_id id, std::uint32_t count);
    void satisfy_external(node_id id);
    void arm(runtime& rt);
    void start();
    void wait();

    /// arm + start + wait in one call (no external deps in flight).
    void run(runtime& rt) {
        arm(rt);
        start();
        wait();
    }

    /// Cooperative cancellation: remaining bodies in the current replay are
    /// skipped (their nodes still complete, so wait() returns).  Cleared by
    /// the next arm().
    void request_stop() noexcept {
        stop_.store(true, amt::memory_order_release);
    }
    [[nodiscard]] bool stop_requested() const noexcept {
        return stop_.load(amt::memory_order_acquire);
    }

    /// Number of completed arm() calls (the replay generation).
    [[nodiscard]] std::uint64_t generation() const noexcept {
        return generation_;
    }

    /// Per-node wall-time profiling for the critical-path analyzer
    /// (amt/graph_profile.hpp).  While enabled, every profiled body run adds
    /// its steady_clock duration to the node's accumulator; recycled nodes
    /// therefore integrate cost across replays and the mean converges as
    /// iterations accumulate.  Toggle and read only while quiescent (same
    /// rule as arm()); the two clock reads per node are the entire armed
    /// cost, priced by bench/metrics_overhead.
    void set_profiling(bool on) noexcept { profiling_ = on; }
    [[nodiscard]] bool profiling() const noexcept { return profiling_; }
    /// Accumulated body nanoseconds / number of profiled runs for one node.
    [[nodiscard]] std::uint64_t node_time_ns(node_id id) const;
    [[nodiscard]] std::uint64_t node_timed_runs(node_id id) const;
    /// Zeroes every node's accumulator (quiescent only), so one profile
    /// window can exclude warm-up replays.
    void reset_node_times();

    /// Introspection for audits/tests; call only while quiescent.
    /// `executions(id)` counts successful body runs across all replays — on
    /// a healthy graph it equals generation() for every node, which is the
    /// re-arm invariant the compiled-form auditor checks.
    [[nodiscard]] std::uint64_t executions(node_id id) const;
    [[nodiscard]] std::uint32_t dependency_count(node_id id) const;
    [[nodiscard]] std::vector<node_id> successors(node_id id) const;
    [[nodiscard]] const char* node_label(node_id id) const;
    [[nodiscard]] std::int32_t node_arg(node_id id) const;
    [[nodiscard]] bool has_edge(node_id from, node_id to) const;

private:
    struct node final : task_base {
        node() : task_base(/*scheduler_owned=*/false) {}
        static_graph* graph = nullptr;
        unique_function<void()> body;
        const char* name = "node";
        std::int32_t arg = -1;
        std::uint32_t init_deps = 0;   ///< edges into this node (seal())
        std::uint32_t ext_deps = 0;    ///< pending set_external_deps value
        std::uint32_t armed_ext = 0;   ///< external deps of the current replay
        std::uint32_t succ_begin = 0;  ///< CSR range into static_graph::succ_
        std::uint32_t succ_count = 0;
        amt::atomic<std::uint32_t> remaining{0};
        std::uint64_t execs = 0;  ///< successful body runs (see executions())
        // Profiling accumulators: written only by the single worker running
        // this node (one task is never in flight twice), read quiescent.
        std::uint64_t accum_ns = 0;
        std::uint64_t timed_runs = 0;

        void execute() noexcept override;
    };

    void on_complete(node& n) noexcept;
    void record_error(std::exception_ptr e) noexcept;
    void finish_graph() noexcept;

    // Node storage: deque for stable addresses while growing (nodes are
    // posted to the scheduler by pointer).
    std::deque<node> nodes_;
    std::vector<std::pair<node_id, node_id>> edges_;  // pre-seal only
    std::vector<node_id> succ_;                       // CSR post-seal
    std::vector<node_id> roots_;                      // init_deps == 0
    bool sealed_ = false;
    bool armed_ = false;
    bool profiling_ = false;  ///< mutated quiescent, read by node::execute
    std::uint64_t generation_ = 0;
    runtime* rt_ = nullptr;

    amt::atomic<bool> stop_{false};
    amt::atomic<std::size_t> pending_{0};

    std::mutex gate_mu_;
    std::condition_variable gate_cv_;
    bool done_ = true;

    std::mutex err_mu_;
    std::exception_ptr error_;
};

}  // namespace amt
