// Tests for the checkpoint-based recovery loop: transient injected faults
// recover bitwise identically to a fault-free run (for both the
// parallel-for and task-graph drivers), persistent faults exhaust the
// bounded retry budget with the mapped status, deterministic physics
// failures halve dt immediately, and the optional file mirror follows the
// atomic write protocol.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "amt/amt.hpp"
#include "amt/fault.hpp"
#include "core/driver_taskgraph.hpp"
#include "lulesh/checkpoint.hpp"
#include "lulesh/driver.hpp"
#include "lulesh/driver_parallel_for.hpp"
#include "lulesh/resilient_run.hpp"
#include "lulesh/validate.hpp"
#include "ompsim/ompsim.hpp"

namespace {

using lulesh::domain;
using lulesh::options;
using lulesh::resilience_options;

options small_opts() {
    options o;
    o.size = 6;
    o.num_regions = 5;
    return o;
}

struct fault_guard {
    ~fault_guard() {
        amt::fault::disarm();
        amt::fault::reset_stats();
        amt::fault::set_epoch(-1);
    }
};

std::string serialized(const domain& d) {
    std::ostringstream os;
    lulesh::save_checkpoint(d, os);
    return os.str();
}

bool file_exists(const std::string& path) {
    return std::ifstream(path).good();
}

TEST(ResilientRun, FaultFreeRunMatchesPlainLoop) {
    domain plain(small_opts());
    lulesh::serial_driver d1;
    const auto base = lulesh::run_simulation(plain, d1, 20);

    domain res(small_opts());
    lulesh::serial_driver d2;
    resilience_options opt;
    opt.checkpoint_every = 5;
    const auto rr = lulesh::run_resilient(res, d2, opt, 20);

    EXPECT_EQ(rr.result.run_status, lulesh::status::ok);
    EXPECT_EQ(rr.rollbacks, 0);
    EXPECT_EQ(rr.dt_halvings, 0);
    EXPECT_GT(rr.checkpoints, 0);
    EXPECT_EQ(rr.result.cycles, base.cycles);
    EXPECT_EQ(serialized(res), serialized(plain));
}

TEST(ResilientRun, TransientFaultRecoversBitwiseParallelFor) {
    fault_guard guard;
    // Fault-free baseline.
    domain plain(small_opts());
    {
        ompsim::team team(2);
        lulesh::parallel_for_driver drv(team);
        lulesh::run_simulation(plain, drv, 20);
    }

    // Same run with one transient fault injected into cycle 6's advance.
    amt::fault::plan p;
    p.site = "advance";
    p.epoch = 6;
    p.max_injections = 1;
    amt::fault::arm(p);

    domain res(small_opts());
    {
        ompsim::team team(2);
        lulesh::parallel_for_driver drv(team);
        resilience_options opt;
        opt.checkpoint_every = 4;
        const auto rr = lulesh::run_resilient(res, drv, opt, 20);
        EXPECT_EQ(rr.result.run_status, lulesh::status::ok);
        EXPECT_EQ(rr.rollbacks, 1);
        EXPECT_EQ(rr.dt_halvings, 0);  // transient: first retry keeps dt
        EXPECT_EQ(rr.result.final_origin_energy, plain.e[0]);
    }
    amt::fault::disarm();

    EXPECT_EQ(amt::fault::snapshot().injections, 1u);
    EXPECT_EQ(lulesh::max_field_difference(plain, res), 0.0);
    EXPECT_EQ(serialized(res), serialized(plain));
}

TEST(ResilientRun, TransientFaultRecoversBitwiseTaskGraph) {
    fault_guard guard;
    domain plain(small_opts());
    {
        amt::runtime rt(2);
        lulesh::taskgraph_driver drv(rt, {256, 256});
        lulesh::run_simulation(plain, drv, 20);
    }

    // Kill one wave task mid-graph: the stop token cancels the rest of the
    // iteration, the barrier surfaces the injected fault, and the loop
    // rolls back.
    amt::fault::plan p;
    p.site = "region_eos";
    p.epoch = 7;
    p.max_injections = 1;
    amt::fault::arm(p);

    domain res(small_opts());
    {
        amt::runtime rt(2);
        lulesh::taskgraph_driver drv(rt, {256, 256});
        resilience_options opt;
        opt.checkpoint_every = 4;
        const auto rr = lulesh::run_resilient(res, drv, opt, 20);
        EXPECT_EQ(rr.result.run_status, lulesh::status::ok);
        EXPECT_EQ(rr.rollbacks, 1);
        EXPECT_EQ(rr.dt_halvings, 0);
    }
    amt::fault::disarm();

    EXPECT_EQ(amt::fault::snapshot().injections, 1u);
    EXPECT_EQ(lulesh::max_field_difference(plain, res), 0.0);
    EXPECT_EQ(serialized(res), serialized(plain));
}

TEST(ResilientRun, PersistentFaultExhaustsBoundedRetries) {
    fault_guard guard;
    amt::fault::plan p;
    p.site = "advance";
    p.epoch = 5;
    p.max_injections = -1;  // cycle 5 fails every time it is replayed
    amt::fault::arm(p);

    domain res(small_opts());
    lulesh::serial_driver drv;
    resilience_options opt;
    opt.checkpoint_every = 2;
    opt.max_retries = 2;
    const auto rr = lulesh::run_resilient(res, drv, opt, 20);
    amt::fault::disarm();

    EXPECT_EQ(rr.result.run_status, lulesh::status::task_fault);
    EXPECT_EQ(lulesh::exit_code_for(rr.result.run_status), 4);
    EXPECT_EQ(rr.rollbacks, opt.max_retries + 1);
    EXPECT_EQ(rr.dt_halvings, 1);  // first retry keeps dt, second halves
    EXPECT_NE(rr.result.error_message.find("cycle 5"), std::string::npos);
    // The domain is left at the last good snapshot, not mid-cycle.
    EXPECT_LT(res.cycle, 5);
    EXPECT_EQ(res.cycle % opt.checkpoint_every, 0);
}

TEST(ResilientRun, SimulationErrorHalvesDtImmediately) {
    // A deterministic physics failure (not an injected fault) must not be
    // replayed at the same dt — the loop halves before the first retry.
    struct flaky_driver final : lulesh::driver {
        lulesh::serial_driver inner;
        int calls = 0;
        [[nodiscard]] std::string name() const override { return "flaky"; }
        void advance(domain& d) override {
            if (++calls == 3) {
                throw lulesh::simulation_error(lulesh::status::volume_error,
                                               "synthetic volume error");
            }
            inner.advance(d);
        }
    };

    domain res(small_opts());
    flaky_driver drv;
    resilience_options opt;
    opt.checkpoint_every = 1;
    const auto rr = lulesh::run_resilient(res, drv, opt, 12);

    EXPECT_EQ(rr.result.run_status, lulesh::status::ok);
    EXPECT_EQ(rr.rollbacks, 1);
    EXPECT_EQ(rr.dt_halvings, 1);
    EXPECT_EQ(rr.result.cycles, 12);
}

TEST(ResilientRun, NonRetryableExceptionsPropagate) {
    struct broken_driver final : lulesh::driver {
        [[nodiscard]] std::string name() const override { return "broken"; }
        void advance(domain&) override {
            throw std::logic_error("not a fault, a bug");
        }
    };
    domain res(small_opts());
    broken_driver drv;
    EXPECT_THROW(lulesh::run_resilient(res, drv, {}, 5), std::logic_error);
}

TEST(ResilientRun, CorruptSnapshotFallsBackToThePreviousOne) {
    fault_guard guard;
    // Fault-free baseline for the bitwise comparison.
    domain plain(small_opts());
    lulesh::serial_driver d0;
    lulesh::run_simulation(plain, d0, 20);

    // One transient fault at cycle 6 forces a rollback; the snapshot the
    // rollback wants (taken at cycle 4 — the 3rd hook call after entry and
    // cycle 2) has a flipped payload byte, so its checksum fails and the
    // loop must fall back to the cycle-2 snapshot and replay from there.
    amt::fault::plan p;
    p.site = "advance";
    p.epoch = 6;
    p.max_injections = 1;
    amt::fault::arm(p);

    domain res(small_opts());
    lulesh::serial_driver drv;
    resilience_options opt;
    opt.checkpoint_every = 2;
    int snaps = 0;
    opt.snapshot_hook = [&snaps](std::string& bytes) {
        if (++snaps == 3) bytes[bytes.size() - 9] ^= 0x10;
    };
    const auto rr = lulesh::run_resilient(res, drv, opt, 20);
    amt::fault::disarm();

    EXPECT_EQ(rr.result.run_status, lulesh::status::ok);
    EXPECT_EQ(rr.rollbacks, 1);
    EXPECT_EQ(rr.snapshot_fallbacks, 1);
    EXPECT_EQ(rr.dt_halvings, 0);  // transient: the replay keeps dt
    // The longer replay (from cycle 2 instead of 4) is still bitwise exact.
    EXPECT_EQ(lulesh::max_field_difference(plain, res), 0.0);
    EXPECT_EQ(serialized(res), serialized(plain));
}

TEST(ResilientRun, BothSnapshotsCorruptPropagatesCheckpointError) {
    fault_guard guard;
    amt::fault::plan p;
    p.site = "advance";
    p.epoch = 6;
    p.max_injections = 1;
    amt::fault::arm(p);

    domain res(small_opts());
    lulesh::serial_driver drv;
    resilience_options opt;
    opt.checkpoint_every = 2;
    opt.snapshot_hook = [](std::string& bytes) {
        bytes[bytes.size() - 9] ^= 0x10;  // corrupt *every* snapshot
    };
    EXPECT_THROW(lulesh::run_resilient(res, drv, opt, 20),
                 lulesh::checkpoint_error);
    amt::fault::disarm();
}

TEST(ResilientRun, FileMirrorIsAtomicAndLoadable) {
    const std::string path = "/tmp/lulesh_resilient_mirror.ckpt";
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());

    domain res(small_opts());
    lulesh::serial_driver drv;
    resilience_options opt;
    opt.checkpoint_every = 4;
    opt.checkpoint_path = path;
    const auto rr = lulesh::run_resilient(res, drv, opt, 10);

    EXPECT_EQ(rr.result.run_status, lulesh::status::ok);
    EXPECT_GT(rr.checkpoints, 0);
    EXPECT_TRUE(file_exists(path));
    EXPECT_FALSE(file_exists(path + ".tmp"));  // rename, never a torn file

    domain restored(small_opts());
    lulesh::load_checkpoint_file(restored, path);
    EXPECT_GT(restored.cycle, 0);
    EXPECT_EQ(restored.cycle % opt.checkpoint_every, 0);

    std::remove(path.c_str());
}

}  // namespace
