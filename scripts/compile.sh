#!/usr/bin/env bash
# Build everything (the analogue of the paper artifact's compile.sh).
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build
echo "Build complete. Binaries in build/{examples,bench,tests}."
