// dist/driver_dist.cpp — multi-domain leapfrog with halo exchange.

#include "dist/driver_dist.hpp"

#include <chrono>
#include <exception>
#include <memory>
#include <sstream>

#include "core/graph_waves.hpp"
#include "core/stage.hpp"

namespace lulesh::dist {

namespace {
namespace k = kernels;

std::string describe_failure(const char* what, int cycle, real_t dt) {
    std::ostringstream os;
    os << what << " (cycle " << cycle << ", dt " << dt << ")";
    return os.str();
}
}  // namespace

void dist_driver::advance(cluster& c) {
    switch (mode_) {
        case exchange_mode::futurized:
            advance_futurized(c, /*eager=*/false);
            break;
        case exchange_mode::eager:
            advance_futurized(c, /*eager=*/true);
            break;
        case exchange_mode::bulk_synchronous:
            advance_bulk_synchronous(c);
            break;
    }
}

void dist_driver::reduce_constraints(cluster& c) {
    k::dt_constraints combined;
    for (const auto& slab_partials : partials_) {
        for (const auto& partial : slab_partials) {
            combined = k::min_constraints(combined, partial);
        }
    }
    for (index_t s = 0; s < c.num_slabs(); ++s) {
        c.slab(s).dtcourant = combined.dtcourant;
        c.slab(s).dthydro = combined.dthydro;
    }
}

namespace {

/// Builds one element-range wave in either monolithic or eager-split form.
/// In eager mode the bottom/top boundary-plane tasks form their own groups
/// whose completion gates the respective sends — a neighbor's ghost message
/// leaves as soon as the plane it needs is computed, while this slab's
/// interior may still be running.  Returns the whole-wave barrier plus the
/// send-completion futures.
struct staged_wave {
    amt::future<void> barrier;
    std::vector<amt::future<void>> sends;
};

template <class SpawnRange, class SendLower, class SendUpper>
staged_wave spawn_staged(domain& d, bool eager, SpawnRange&& spawn_range,
                         SendLower&& send_lower, SendUpper&& send_upper) {
    const index_t ne = d.numElem();
    const index_t ep = d.elems_per_plane();
    staged_wave out;

    if (!eager || ne <= ep) {
        // Monolithic wave: sends gate on the full barrier (single-plane
        // slabs always take this path — the plane *is* the whole wave).
        amt::shared_future<void> all(
            amt::when_all_void(std::move(spawn_range(0, ne).futures)));
        if (d.has_lower_neighbor()) {
            out.sends.push_back(all.then(
                amt::launch::sync,
                [send_lower](const amt::shared_future<void>& f) {
                    f.get();
                    send_lower();
                }));
        }
        if (d.has_upper_neighbor()) {
            out.sends.push_back(all.then(
                amt::launch::sync,
                [send_upper](const amt::shared_future<void>& f) {
                    f.get();
                    send_upper();
                }));
        }
        out.barrier = all.then(amt::launch::sync,
                               [](const amt::shared_future<void>& f) { f.get(); });
        return out;
    }

    // Eager split: [0, ep) bottom plane, [ne-ep, ne) top plane, interior.
    const index_t top_base = ne - ep;
    amt::shared_future<void> bottom(
        amt::when_all_void(std::move(spawn_range(0, ep).futures)));
    amt::shared_future<void> top(
        amt::when_all_void(std::move(spawn_range(top_base, ne).futures)));
    auto interior =
        top_base > ep
            ? amt::when_all_void(std::move(spawn_range(ep, top_base).futures))
            : amt::make_ready_future();

    if (d.has_lower_neighbor()) {
        out.sends.push_back(bottom.then(
            amt::launch::sync, [send_lower](const amt::shared_future<void>& f) {
                f.get();
                send_lower();
            }));
    }
    if (d.has_upper_neighbor()) {
        out.sends.push_back(top.then(
            amt::launch::sync, [send_upper](const amt::shared_future<void>& f) {
                f.get();
                send_upper();
            }));
    }

    std::vector<amt::future<void>> parts;
    parts.push_back(bottom.then(
        amt::launch::sync, [](const amt::shared_future<void>& f) { f.get(); }));
    parts.push_back(top.then(
        amt::launch::sync, [](const amt::shared_future<void>& f) { f.get(); }));
    parts.push_back(std::move(interior));
    out.barrier = amt::when_all_void(std::move(parts));
    return out;
}

}  // namespace

void dist_driver::advance_futurized(cluster& c, bool eager) {
    const index_t num_slabs = c.num_slabs();
    const real_t dt = c.slab(0).deltatime;
    const index_t p_nodal = parts_.nodal;
    const index_t p_elems = parts_.elems;

    graph::error_flags flags;
    partials_.resize(static_cast<std::size_t>(num_slabs));

    cluster* cp = &c;
    amt::runtime* rt = &rt_;

    std::vector<amt::future<void>> finals;
    finals.reserve(static_cast<std::size_t>(num_slabs));

    for (index_t s = 0; s < num_slabs; ++s) {
        domain* dp = &c.slab(s);

        // ---- wave 1: corner forces with (optionally eager) plane sends --
        auto stage1 = spawn_staged(
            *dp, eager,
            [&](index_t lo, index_t hi) {
                return graph::spawn_force_wave_range(rt_, *dp, lo, hi, p_nodal,
                                                     flags);
            },
            [cp, dp, s] {
                amt::trace::scoped_span halo(
                    amt::trace::event_kind::halo_span, "halo:pack_corner",
                    static_cast<std::int32_t>(s));
                cp->boundary(s - 1).corner_down.set(
                    pack_corner_plane(*dp, dp->bottom_plane_elem_base()));
            },
            [cp, dp, s] {
                amt::trace::scoped_span halo(
                    amt::trace::event_kind::halo_span, "halo:pack_corner",
                    static_cast<std::int32_t>(s));
                cp->boundary(s).corner_up.set(
                    pack_corner_plane(*dp, dp->top_plane_elem_base()));
            });
        auto b1 = std::move(stage1.barrier);

        // Ghost fills chain directly on the channel futures: this slab
        // proceeds as soon as its own wave and its neighbors' boundary
        // messages are ready — no global synchronization.
        std::vector<amt::future<void>> ready;
        ready.push_back(std::move(b1));
        for (auto& send : stage1.sends) ready.push_back(std::move(send));
        if (dp->has_lower_neighbor()) {
            ready.push_back(cp->boundary(s - 1).corner_up.get().then(
                amt::launch::sync, [dp, s](amt::future<plane_buffer>&& m) {
                    amt::trace::scoped_span halo(
                        amt::trace::event_kind::halo_span,
                        "halo:unpack_corner", static_cast<std::int32_t>(s));
                    unpack_corner_ghosts(*dp, dp->ghost_lower_slot(), m.get());
                }));
        }
        if (dp->has_upper_neighbor()) {
            ready.push_back(cp->boundary(s).corner_down.get().then(
                amt::launch::sync, [dp, s](amt::future<plane_buffer>&& m) {
                    amt::trace::scoped_span halo(
                        amt::trace::event_kind::halo_span,
                        "halo:unpack_corner", static_cast<std::int32_t>(s));
                    unpack_corner_ghosts(*dp, dp->ghost_upper_slot(), m.get());
                }));
        }
        auto halo1 = amt::when_all_void(std::move(ready));

        // ---- wave 2 ------------------------------------------------------
        auto b2 = graph::stage_after(
            std::move(halo1),
            [rt, dp, p_nodal, dt, flags] {
                return graph::spawn_node_wave(*rt, *dp, p_nodal, dt, flags)
                    .futures;
            },
            graph::wave_site::node);

        // ---- wave 3 with the delv_zeta halo for the monotonic-Q stencil --
        // The wave is spawned by a continuation once b2 resolves; its sends
        // are eager-gated the same way as wave 1's.
        auto pr3 = std::make_shared<amt::promise<void>>();
        auto wave3_done = pr3->get_future();
        b2.then(amt::launch::sync, [this, cp, dp, s, p_elems, dt, flags, eager,
                                    pr3](amt::future<void>&& f) {
            try {
                f.get();
                auto stage3 = spawn_staged(
                    *dp, eager,
                    [this, dp, p_elems, dt, flags](index_t lo, index_t hi) {
                        return graph::spawn_elem_wave_range(rt_, *dp, lo, hi,
                                                            p_elems, dt, flags);
                    },
                    [cp, dp, s] {
                        amt::trace::scoped_span halo(
                            amt::trace::event_kind::halo_span,
                            "halo:pack_delv", static_cast<std::int32_t>(s));
                        cp->boundary(s - 1).delv_down.set(pack_delv_plane(
                            *dp, dp->bottom_plane_elem_base()));
                    },
                    [cp, dp, s] {
                        amt::trace::scoped_span halo(
                            amt::trace::event_kind::halo_span,
                            "halo:pack_delv", static_cast<std::int32_t>(s));
                        cp->boundary(s).delv_up.set(pack_delv_plane(
                            *dp, dp->top_plane_elem_base()));
                    });
                std::vector<amt::future<void>> parts;
                parts.push_back(std::move(stage3.barrier));
                for (auto& send : stage3.sends) parts.push_back(std::move(send));
                amt::when_all_void(std::move(parts))
                    .then(amt::launch::sync,
                          [pr3](amt::future<void>&& g) mutable {
                              try {
                                  g.get();
                                  pr3->set_value();
                              } catch (...) {
                                  pr3->set_exception(std::current_exception());
                              }
                          });
            } catch (...) {
                pr3->set_exception(std::current_exception());
            }
        });
        std::vector<amt::future<void>> ready3;
        ready3.push_back(std::move(wave3_done));
        if (dp->has_lower_neighbor()) {
            ready3.push_back(cp->boundary(s - 1).delv_up.get().then(
                amt::launch::sync, [dp, s](amt::future<plane_buffer>&& m) {
                    amt::trace::scoped_span halo(
                        amt::trace::event_kind::halo_span, "halo:unpack_delv",
                        static_cast<std::int32_t>(s));
                    unpack_delv_ghosts(*dp, dp->ghost_lower_slot(), m.get());
                }));
        }
        if (dp->has_upper_neighbor()) {
            ready3.push_back(cp->boundary(s).delv_down.get().then(
                amt::launch::sync, [dp, s](amt::future<plane_buffer>&& m) {
                    amt::trace::scoped_span halo(
                        amt::trace::event_kind::halo_span, "halo:unpack_delv",
                        static_cast<std::int32_t>(s));
                    unpack_delv_ghosts(*dp, dp->ghost_upper_slot(), m.get());
                }));
        }
        auto halo3 = amt::when_all_void(std::move(ready3));

        // ---- waves 4 and 5 ------------------------------------------------
        auto b4 = graph::stage_after(
            std::move(halo3),
            [rt, dp, p_elems, flags] {
                return graph::spawn_region_wave(*rt, *dp, p_elems, flags)
                    .futures;
            },
            graph::wave_site::region_eos);

        auto& slab_partials = partials_[static_cast<std::size_t>(s)];
        slab_partials.assign(graph::constraint_slot_count(*dp, p_elems),
                             k::dt_constraints{});
        auto* partials = slab_partials.data();
        finals.push_back(graph::stage_after(
            std::move(b4),
            [rt, dp, p_elems, partials, flags] {
                return graph::spawn_constraint_wave(*rt, *dp, p_elems,
                                                    partials, flags)
                    .futures;
            },
            graph::wave_site::constraints));
    }

    // Failed-slab propagation: each slab's chain settles into one error
    // slot, and the first failure closes *all* channels, so every peer's
    // pending halo get() resolves with channel_closed and its chain settles
    // too (exceptionally) — the barrier below can never hang on a dead
    // neighbor.
    auto errors = std::make_shared<std::vector<std::exception_ptr>>(
        finals.size());
    std::vector<amt::future<void>> settled;
    settled.reserve(finals.size());
    for (std::size_t i = 0; i < finals.size(); ++i) {
        settled.push_back(finals[i].then(
            amt::launch::sync, [cp, errors, i](amt::future<void>&& f) {
                try {
                    f.get();
                } catch (...) {
                    (*errors)[i] = std::current_exception();
                    cp->close_channels();
                }
            }));
    }
    auto all = amt::when_all_void(std::move(settled));

    // The iteration's one blocking wait: every slab's chain plus the halo
    // messages feeding it.  The span closes (RAII) even when get() throws.
    amt::trace::scoped_span halo_wait(amt::trace::event_kind::barrier_span,
                                      "halo_wait",
                                      static_cast<std::int32_t>(num_slabs));
    bool timed_out = false;
    if (halo_timeout_.count() > 0) {
        // Per-iteration progress deadline: a full timeout window with zero
        // task completions while the barrier is pending means a halo
        // message is not coming (e.g. a stalled peer).  Fail the fabric —
        // the channel_closed cascade settles every chain, so the wait
        // below terminates.
        auto last_finished =
            flags.progress->finished.load(std::memory_order_relaxed);
        while (!all.wait_for(halo_timeout_)) {
            const auto now_finished =
                flags.progress->finished.load(std::memory_order_relaxed);
            if (now_finished == last_finished) {
                timed_out = true;
                c.close_channels();
                // A *simulated* stall (fault injection) parks its task
                // inside the probe; release it so the stalled slab's own
                // chain can settle too.  A genuinely hung task body cannot
                // be recovered in-process — its stall_timeout fail-safe is
                // the backstop.
                amt::fault::release_stalls();
            }
            last_finished = now_finished;
        }
    }
    all.get();

    // Surface the root cause: a slab's own failure beats the
    // channel_closed cascade it triggered in its peers.
    std::exception_ptr cascade, root;
    for (const auto& e : *errors) {
        if (e == nullptr) continue;
        try {
            std::rethrow_exception(e);
        } catch (const amt::channel_closed&) {
            if (cascade == nullptr) cascade = e;
        } catch (...) {
            if (root == nullptr) root = e;
        }
    }
    if (root != nullptr) std::rethrow_exception(root);
    if (timed_out) {
        throw simulation_error(status::stalled,
                               "halo exchange timed out (no progress within "
                               "the deadline)");
    }
    if (cascade != nullptr) std::rethrow_exception(cascade);

    reduce_constraints(c);

    if (!flags.volume_ok->load(std::memory_order_relaxed)) {
        throw simulation_error(status::volume_error,
                               "non-positive volume detected");
    }
    if (!flags.qstop_ok->load(std::memory_order_relaxed)) {
        throw simulation_error(status::qstop_error,
                               "artificial viscosity exceeded qstop");
    }
}

void dist_driver::advance_bulk_synchronous(cluster& c) {
    const index_t num_slabs = c.num_slabs();
    const real_t dt = c.slab(0).deltatime;
    const index_t p_nodal = parts_.nodal;
    const index_t p_elems = parts_.elems;

    graph::error_flags flags;
    partials_.resize(static_cast<std::size_t>(num_slabs));

    // One global barrier per wave: collect every slab's futures, block.
    auto global_wave = [&](auto&& spawn_for_slab) {
        std::vector<amt::future<void>> all;
        for (index_t s = 0; s < num_slabs; ++s) {
            auto futures = spawn_for_slab(c.slab(s), s);
            for (auto& f : futures) all.push_back(std::move(f));
        }
        amt::trace::scoped_span wait(amt::trace::event_kind::barrier_span,
                                     "global_wave",
                                     static_cast<std::int32_t>(all.size()));
        amt::when_all_void(std::move(all)).get();
    };

    global_wave([&](domain& d, index_t) {
        return graph::spawn_force_wave(rt_, d, p_nodal, flags).futures;
    });
    // Main-thread exchange between the global barriers (the MPI-ish step).
    for (index_t b = 0; b + 1 < num_slabs; ++b) {
        amt::trace::scoped_span halo(amt::trace::event_kind::halo_span,
                                     "halo:exchange_corner",
                                     static_cast<std::int32_t>(b));
        domain& lower = c.slab(b);
        domain& upper = c.slab(b + 1);
        unpack_corner_ghosts(upper, upper.ghost_lower_slot(),
                             pack_corner_plane(lower, lower.top_plane_elem_base()));
        unpack_corner_ghosts(lower, lower.ghost_upper_slot(),
                             pack_corner_plane(upper, upper.bottom_plane_elem_base()));
    }

    global_wave([&](domain& d, index_t) {
        return graph::spawn_node_wave(rt_, d, p_nodal, dt, flags).futures;
    });
    global_wave([&](domain& d, index_t) {
        return graph::spawn_elem_wave(rt_, d, p_elems, dt, flags).futures;
    });
    for (index_t b = 0; b + 1 < num_slabs; ++b) {
        amt::trace::scoped_span halo(amt::trace::event_kind::halo_span,
                                     "halo:exchange_delv",
                                     static_cast<std::int32_t>(b));
        domain& lower = c.slab(b);
        domain& upper = c.slab(b + 1);
        unpack_delv_ghosts(upper, upper.ghost_lower_slot(),
                           pack_delv_plane(lower, lower.top_plane_elem_base()));
        unpack_delv_ghosts(lower, lower.ghost_upper_slot(),
                           pack_delv_plane(upper, upper.bottom_plane_elem_base()));
    }
    global_wave([&](domain& d, index_t) {
        return graph::spawn_region_wave(rt_, d, p_elems, flags).futures;
    });
    global_wave([&](domain& d, index_t s) {
        auto& slab_partials = partials_[static_cast<std::size_t>(s)];
        slab_partials.assign(graph::constraint_slot_count(d, p_elems),
                             k::dt_constraints{});
        return graph::spawn_constraint_wave(rt_, d, p_elems,
                                            slab_partials.data(), flags)
            .futures;
    });

    reduce_constraints(c);

    if (!flags.volume_ok->load(std::memory_order_relaxed)) {
        throw simulation_error(status::volume_error,
                               "non-positive volume detected");
    }
    if (!flags.qstop_ok->load(std::memory_order_relaxed)) {
        throw simulation_error(status::qstop_error,
                               "artificial viscosity exceeded qstop");
    }
}

run_result run_simulation(cluster& c, dist_driver& drv, int max_cycles) {
    run_result result;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        while (c.slab(0).time_ < c.slab(0).stoptime &&
               c.slab(0).cycle < max_cycles) {
            // TimeIncrement runs on every slab with identical inputs
            // (constraints were reduced globally), so dt and time stay in
            // lockstep across the cluster.
            for (index_t s = 0; s < c.num_slabs(); ++s) {
                kernels::time_increment(c.slab(s));
            }
            amt::fault::set_epoch(c.slab(0).cycle);
            drv.advance(c);
        }
    } catch (const simulation_error& err) {
        result.run_status = err.code();
        result.error_message = describe_failure(err.what(), c.slab(0).cycle,
                                                c.slab(0).deltatime);
    } catch (const amt::fault::injected_fault& err) {
        result.run_status = status::task_fault;
        result.error_message = describe_failure(err.what(), c.slab(0).cycle,
                                                c.slab(0).deltatime);
    } catch (const amt::channel_closed& err) {
        // A peer died and took the halo fabric down; the root cause was
        // surfaced on its own slab, this run observed the cascade.
        result.run_status = status::stalled;
        result.error_message = describe_failure(err.what(), c.slab(0).cycle,
                                                c.slab(0).deltatime);
    }
    const auto t1 = std::chrono::steady_clock::now();
    result.cycles = c.slab(0).cycle;
    result.final_time = c.slab(0).time_;
    result.final_dt = c.slab(0).deltatime;
    result.final_origin_energy = c.slab(0).e[0];
    result.elapsed_seconds = std::chrono::duration<double>(t1 - t0).count();
    return result;
}

}  // namespace lulesh::dist
