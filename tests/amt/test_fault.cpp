// Tests for the deterministic fault-injection harness: site/epoch filters,
// seeded probability patterns, injection budgets, delay and stall actions,
// and the disarmed fast path.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "amt/fault.hpp"

namespace {

namespace fault = amt::fault;

// Every test leaves the global harness clean, whatever path it exits by.
class Fault : public ::testing::Test {
protected:
    void SetUp() override {
        fault::disarm();
        fault::reset_stats();
        fault::set_epoch(-1);
    }
    void TearDown() override {
        fault::disarm();
        fault::reset_stats();
        fault::set_epoch(-1);
    }
};

fault::plan throw_plan() {
    fault::plan p;
    p.kind = fault::action::throw_exception;
    return p;
}

TEST_F(Fault, DisarmedProbeIsANoOp) {
    EXPECT_FALSE(fault::armed());
    for (int i = 0; i < 100; ++i) {
        EXPECT_NO_THROW(fault::probe("anywhere"));
    }
    const auto s = fault::snapshot();
    EXPECT_EQ(s.probes, 0u);
    EXPECT_EQ(s.injections, 0u);
}

TEST_F(Fault, ThrowInjectionFiresExactlyOnce) {
    auto p = throw_plan();
    p.max_injections = 1;
    fault::arm(p);
    EXPECT_TRUE(fault::armed());

    int thrown = 0;
    for (int i = 0; i < 10; ++i) {
        try {
            fault::probe("site");
        } catch (const fault::injected_fault&) {
            ++thrown;
        }
    }
    EXPECT_EQ(thrown, 1);
    const auto s = fault::snapshot();
    EXPECT_EQ(s.probes, 10u);
    EXPECT_EQ(s.injections, 1u);
}

TEST_F(Fault, SiteFilterOnlyMatchesNamedSite) {
    auto p = throw_plan();
    p.site = "elem";
    p.max_injections = -1;
    fault::arm(p);

    EXPECT_NO_THROW(fault::probe("force"));
    EXPECT_NO_THROW(fault::probe("node"));
    EXPECT_THROW(fault::probe("elem"), fault::injected_fault);
}

TEST_F(Fault, EpochFilterOnlyMatchesPublishedEpoch) {
    auto p = throw_plan();
    p.epoch = 7;
    p.max_injections = -1;
    fault::arm(p);

    fault::set_epoch(3);
    EXPECT_NO_THROW(fault::probe("site"));
    fault::set_epoch(7);
    EXPECT_EQ(fault::epoch(), 7);
    EXPECT_THROW(fault::probe("site"), fault::injected_fault);
    fault::set_epoch(8);
    EXPECT_NO_THROW(fault::probe("site"));
}

TEST_F(Fault, ProbabilityPatternIsSeedDeterministic) {
    auto p = throw_plan();
    p.probability = 0.5;
    p.seed = 42;
    p.max_injections = -1;

    const auto pattern = [&] {
        std::vector<bool> hits;
        fault::arm(p);
        for (int i = 0; i < 64; ++i) {
            bool hit = false;
            try {
                fault::probe("site");
            } catch (const fault::injected_fault&) {
                hit = true;
            }
            hits.push_back(hit);
        }
        fault::disarm();
        return hits;
    };

    const auto first = pattern();
    const auto second = pattern();
    EXPECT_EQ(first, second);

    // Sanity: p=0.5 over 64 draws should hit both outcomes.
    EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
    EXPECT_NE(std::count(first.begin(), first.end(), false), 0);

    // A different seed yields a different pattern.
    p.seed = 43;
    const auto other = pattern();
    EXPECT_NE(first, other);
}

TEST_F(Fault, BudgetCapsTotalInjections) {
    auto p = throw_plan();
    p.max_injections = 3;
    fault::arm(p);

    int thrown = 0;
    for (int i = 0; i < 20; ++i) {
        try {
            fault::probe("site");
        } catch (const fault::injected_fault&) {
            ++thrown;
        }
    }
    EXPECT_EQ(thrown, 3);
    EXPECT_EQ(fault::snapshot().injections, 3u);
}

TEST_F(Fault, RearmResetsBudgetAndProbeIndex) {
    auto p = throw_plan();
    p.max_injections = 1;
    fault::arm(p);
    EXPECT_THROW(fault::probe("site"), fault::injected_fault);
    EXPECT_NO_THROW(fault::probe("site"));

    fault::arm(p);  // same plan again: budget re-arms
    EXPECT_THROW(fault::probe("site"), fault::injected_fault);
}

TEST_F(Fault, DelayActionSleepsWithoutThrowing) {
    fault::plan p;
    p.kind = fault::action::delay;
    p.delay = std::chrono::milliseconds(30);
    p.max_injections = 1;
    fault::arm(p);

    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_NO_THROW(fault::probe("site"));
    const auto took = std::chrono::steady_clock::now() - t0;
    EXPECT_GE(took, std::chrono::milliseconds(20));
    EXPECT_EQ(fault::snapshot().injections, 1u);

    // Budget exhausted: the next probe returns immediately.
    const auto t1 = std::chrono::steady_clock::now();
    EXPECT_NO_THROW(fault::probe("site"));
    EXPECT_LT(std::chrono::steady_clock::now() - t1,
              std::chrono::milliseconds(20));
}

TEST_F(Fault, StallParksUntilReleased) {
    fault::plan p;
    p.kind = fault::action::stall;
    p.max_injections = 1;
    p.stall_timeout = std::chrono::seconds(30);  // fail-safe only
    fault::arm(p);

    std::thread t([] { fault::probe("site"); });
    // Wait for the probe to park.
    for (int i = 0; i < 500 && fault::stalled_now() == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(fault::stalled_now(), 1);

    fault::release_stalls();
    t.join();
    EXPECT_EQ(fault::stalled_now(), 0);
    EXPECT_EQ(fault::snapshot().injections, 1u);
}

TEST_F(Fault, DisarmReleasesParkedStalls) {
    fault::plan p;
    p.kind = fault::action::stall;
    p.max_injections = 1;
    p.stall_timeout = std::chrono::seconds(30);
    fault::arm(p);

    std::thread t([] { fault::probe("site"); });
    for (int i = 0; i < 500 && fault::stalled_now() == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(fault::stalled_now(), 1);

    fault::disarm();
    t.join();
    EXPECT_EQ(fault::stalled_now(), 0);
    EXPECT_FALSE(fault::armed());
}

TEST_F(Fault, StallTimeoutIsAFailSafe) {
    fault::plan p;
    p.kind = fault::action::stall;
    p.max_injections = 1;
    p.stall_timeout = std::chrono::milliseconds(50);
    fault::arm(p);

    // Nobody releases: the probe must come back on its own.
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_NO_THROW(fault::probe("site"));
    EXPECT_GE(std::chrono::steady_clock::now() - t0,
              std::chrono::milliseconds(30));
}

TEST_F(Fault, ResetStatsClearsCounters) {
    auto p = throw_plan();
    p.max_injections = 1;
    fault::arm(p);
    EXPECT_THROW(fault::probe("site"), fault::injected_fault);
    fault::disarm();

    EXPECT_GT(fault::snapshot().probes, 0u);
    fault::reset_stats();
    const auto s = fault::snapshot();
    EXPECT_EQ(s.probes, 0u);
    EXPECT_EQ(s.injections, 0u);
}

}  // namespace
