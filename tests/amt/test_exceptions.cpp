// Exception-propagation semantics the recovery machinery depends on:
// when_all* surfaces the *first* failed input in input order (and only after
// draining every input), continuations propagate both their own and their
// antecedent's exceptions, and the bulk algorithms surface a body that
// throws mid-range without leaking or wedging the runtime.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "amt/algorithms.hpp"
#include "amt/async.hpp"
#include "amt/future.hpp"
#include "amt/scheduler.hpp"
#include "amt/when_all.hpp"

namespace {

using amt::future;
using amt::promise;

std::string message_of(future<void>&& f) {
    try {
        f.get();
    } catch (const std::exception& e) {
        return e.what();
    }
    return "";
}

TEST(Exceptions, WhenAllVoidSurfacesFirstInputOrderException) {
    // Inputs 0 and 2 both fail; input order, not completion order, decides
    // which exception the barrier rethrows.
    promise<int> p0, p1, p2;
    std::vector<future<int>> fs;
    fs.push_back(p0.get_future());
    fs.push_back(p1.get_future());
    fs.push_back(p2.get_future());
    auto all = amt::when_all_void(std::move(fs));

    // Completion order deliberately reversed: 2 fails first.
    p2.set_exception(
        std::make_exception_ptr(std::runtime_error("error from input 2")));
    p1.set_value(1);
    p0.set_exception(
        std::make_exception_ptr(std::runtime_error("error from input 0")));

    EXPECT_EQ(message_of(std::move(all)), "error from input 0");
}

TEST(Exceptions, WhenAllVoidDrainsBeforeThrowing) {
    // The barrier must wait for *every* input — including the ones after the
    // failed one — before resolving, so no task is still running (or leaked)
    // when the caller handles the error.
    amt::runtime rt(2);
    std::atomic<int> completed{0};
    std::vector<future<void>> fs;
    fs.push_back(amt::async(rt, [] {
        throw std::runtime_error("first failure");
    }));
    for (int i = 0; i < 8; ++i) {
        fs.push_back(amt::async(rt, [&completed] {
            completed.fetch_add(1, std::memory_order_relaxed);
        }));
    }
    auto all = amt::when_all_void(std::move(fs));
    EXPECT_EQ(message_of(std::move(all)), "first failure");
    // Barrier resolved => every input resolved, so all 8 bodies ran.
    EXPECT_EQ(completed.load(), 8);
}

TEST(Exceptions, ConcurrentFailuresAreDeterministic) {
    // All tasks fail concurrently with distinct messages; repeated runs must
    // always surface input 0's exception.
    amt::runtime rt(3);
    for (int round = 0; round < 10; ++round) {
        std::vector<future<void>> fs;
        for (int i = 0; i < 6; ++i) {
            fs.push_back(amt::async(rt, [i] {
                throw std::runtime_error("task " + std::to_string(i));
            }));
        }
        auto all = amt::when_all_void(std::move(fs));
        EXPECT_EQ(message_of(std::move(all)), "task 0");
    }
}

TEST(Exceptions, ThrowInsideThenContinuationPropagates) {
    amt::runtime rt(2);
    auto f = amt::async(rt, [] { return 21; }).then([](future<int>&& v) {
        if (v.get() == 21) {
            throw std::logic_error("continuation failed");
        }
    });
    EXPECT_THROW(f.get(), std::logic_error);
}

TEST(Exceptions, ContinuationSeesAntecedentException) {
    amt::runtime rt(2);
    auto f = amt::async(rt, []() -> int {
                 throw std::runtime_error("antecedent failed");
             }).then([](future<int>&& v) {
        return v.get() + 1;  // rethrows the antecedent's exception
    });
    try {
        f.get();
        FAIL() << "expected the antecedent's exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "antecedent failed");
    }
}

TEST(Exceptions, BulkAsyncThrowMidRangeSurfacesAndDrains) {
    amt::runtime rt(2);
    std::atomic<int> visited{0};
    auto fs = amt::bulk_async(
        rt, amt::index_t{0}, amt::index_t{100}, amt::index_t{10},
        [&](amt::index_t lo, amt::index_t hi) {
            for (amt::index_t i = lo; i < hi; ++i) {
                if (i == 37) {
                    throw std::runtime_error("element 37");
                }
                visited.fetch_add(1, std::memory_order_relaxed);
            }
        });
    auto all = amt::when_all_void(std::move(fs));
    EXPECT_EQ(message_of(std::move(all)), "element 37");
    // Only the chunk containing 37 stops early; every other chunk completes.
    EXPECT_GE(visited.load(), 90);
}

TEST(Exceptions, ParallelForEachThrowMidRangePropagates) {
    amt::runtime rt(2);
    EXPECT_THROW(
        amt::parallel_for_each(rt, amt::index_t{0}, amt::index_t{64},
                               amt::index_t{8},
                               [](amt::index_t i) {
                                   if (i == 19) {
                                       throw std::runtime_error("mid-range");
                                   }
                               }),
        std::runtime_error);

    // The runtime stays healthy: the next algorithm runs to completion.
    std::atomic<int> count{0};
    amt::parallel_for_each(rt, amt::index_t{0}, amt::index_t{64},
                           amt::index_t{8}, [&](amt::index_t) {
                               count.fetch_add(1, std::memory_order_relaxed);
                           });
    EXPECT_EQ(count.load(), 64);
}

}  // namespace
