// core/compiled_iteration.cpp — compiles one leapfrog iteration into a
// replayable static graph, mirroring build_iteration_model's task order
// exactly: compiled node i corresponds to model task i, which is what lets
// verify() check the two structures against each other index by index.

#include "core/compiled_iteration.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>

namespace lulesh::graph {

namespace k = kernels;

compiled_iteration::compiled_iteration(amt::runtime& rt, domain& d,
                                       const config& cfg,
                                       const error_flags& flags)
    : rt_(rt), dom_(&d), cfg_(cfg), flags_(flags) {
    const index_t pe = cfg_.parts.elems > 0 ? cfg_.parts.elems : d.numElem();
    slots_ = constraint_slot_count(d, pe);
    partials_.assign(slots_, k::dt_constraints{});
    compile(d);
    graph_.seal();
    graph_.set_profiling(cfg_.profile_nodes);
}

int compiled_iteration::node_stage(
    amt::static_graph::node_id id) const noexcept {
    for (const node_info& n : compute_nodes_) {
        if (n.id == id) return n.stage;
    }
    return -1;
}

bool compiled_iteration::matches(const domain& d, const config& cfg,
                                 const error_flags& flags) const noexcept {
    return dom_ == &d && cfg_.parts.nodal == cfg.parts.nodal &&
           cfg_.parts.elems == cfg.parts.elems &&
           cfg_.track_hazards == cfg.track_hazards &&
           cfg_.scan_nan == cfg.scan_nan &&
           cfg_.profile_nodes == cfg.profile_nodes &&
           flags_.sentinel.get() == flags.sentinel.get();
}

void compiled_iteration::set_pack_deps(std::size_t node_packs,
                                       std::size_t elem_packs) {
    graph_.set_external_deps(barrier_[0],
                             static_cast<std::uint32_t>(node_packs));
    graph_.set_external_deps(barrier_[2],
                             static_cast<std::uint32_t>(elem_packs));
}

void compiled_iteration::arm(real_t dt) {
    dt_ = dt;
    std::fill(partials_.begin(), partials_.end(), k::dt_constraints{});
    stamps_.fill(amt::clock::time_point{});
    graph_.arm(rt_);
}

void compiled_iteration::pack_done(space s) {
    graph_.satisfy_external(s == space::node ? barrier_[0] : barrier_[2]);
}

// Replicates graph_waves' guarded() minus what the graph engine already
// provides: the trace annotation (node::execute annotates from the node's
// label/arg), the stop-token early-return (the engine skips bodies once the
// graph's stop flag is set), and stop propagation on throw (the engine's
// record_error sets the stop flag).  Everything else — fault probe at the
// wave site, progress counters and per-worker in-flight labels, the
// optional hazard scope and NaN scan — is kept identical so watchdogs,
// fault plans and the sentinel observe replayed tasks exactly as they
// observe fresh-built ones.
template <class Body>
amt::static_graph::node_id compiled_iteration::add_task(
    const char* site, int stage, std::int64_t part, std::vector<access> accs,
    Body body) {
    std::shared_ptr<iteration_sentinel> sent;
    if (flags_.sentinel != nullptr && flags_.sentinel->dom == dom_ &&
        (cfg_.track_hazards || cfg_.scan_nan)) {
        sent = flags_.sentinel;
    }
    const iteration_sentinel::task_ctx* ctx = nullptr;
    if (sent != nullptr) {
        iteration_sentinel::task_ctx& c = ctxs_.emplace_back();
        c.accs = std::move(accs);
        c.partition = part;
        if (cfg_.track_hazards) c.decl = expand_to_hazard_set(c.accs, *dom_);
        ctx = &c;
    }
    auto wrapped = [progress = flags_.progress, sent = std::move(sent),
                    nan_ok = flags_.nan_ok, ctx, site,
                    body = std::move(body)]() {
        const auto& wk = amt::current_worker();
        const std::size_t slot =
            wk.rt != nullptr
                ? std::min<std::size_t>(wk.index + 1,
                                        progress_state::max_tracked_workers)
                : 0;
        progress->site.store(site, amt::memory_order_relaxed);
        progress->worker_site[slot].store(site, amt::memory_order_relaxed);
        progress->started.fetch_add(1, amt::memory_order_relaxed);
        try {
            amt::fault::probe(site);
            {
                std::optional<amt::hazard::task_scope> scope;
                if (sent && sent->track_hazards && ctx != nullptr) {
                    scope.emplace(static_cast<const void*>(sent->dom), site,
                                  ctx->partition, &ctx->decl);
                }
                body();
            }
            if (sent && sent->scan_nan && ctx != nullptr) {
                const field bad =
                    scan_written_for_nonfinite(ctx->accs, *sent->dom);
                if (bad != field::count) {
                    nan_ok->store(false, amt::memory_order_relaxed);
                    sent->nan_wave_site.store(site,
                                              amt::memory_order_relaxed);
                    sent->nan_field_name.store(field_name(bad),
                                               amt::memory_order_relaxed);
                }
            }
        } catch (...) {
            progress->worker_site[slot].store(nullptr,
                                              amt::memory_order_relaxed);
            progress->finished.fetch_add(1, amt::memory_order_relaxed);
            throw;
        }
        progress->worker_site[slot].store(nullptr, amt::memory_order_relaxed);
        progress->finished.fetch_add(1, amt::memory_order_relaxed);
    };
    const auto id = graph_.add_node(std::move(wrapped), site,
                                    static_cast<std::int32_t>(part));
    compute_nodes_.push_back({site, id, stage, part});
    ++task_count_;
    return id;
}

void compiled_iteration::compile(domain& d) {
    domain* dp = &d;
    const index_t ne = d.numElem();
    const index_t nn = d.numNode();
    const index_t pn = cfg_.parts.nodal > 0 ? cfg_.parts.nodal : ne;
    const index_t pe = cfg_.parts.elems > 0 ? cfg_.parts.elems : ne;
    auto vol_ok = flags_.volume_ok;
    auto q_ok = flags_.qstop_ok;
    const real_t* dtp = &dt_;

    // Barrier nodes first (B1..B5), chained so stage k+1 cannot start
    // before stage k's barrier completed — the replay analogue of the
    // fresh path's stage_after(b_k, ...) sequencing.  Bodies stamp the
    // phase-completion instants for the profile/tracer.
    for (std::size_t b = 0; b < num_barriers; ++b) {
        amt::clock::time_point* out = &stamps_[b];
        barrier_[b] =
            graph_.add_node([out] { *out = amt::clock::now(); },
                            "graph:barrier", static_cast<std::int32_t>(b));
    }
    for (std::size_t b = 0; b + 1 < num_barriers; ++b) {
        graph_.add_edge(barrier_[b], barrier_[b + 1]);
    }

    // Chain-head/tail barrier wiring: a task with no in-wave predecessor
    // hangs off the previous stage's barrier (stage 0 tasks are roots); a
    // task nothing in its wave depends on feeds its stage's barrier.
    auto head = [this](int stage, amt::static_graph::node_id id) {
        if (stage > 0) {
            graph_.add_edge(barrier_[static_cast<std::size_t>(stage - 1)],
                            id);
        }
    };
    auto tail = [this](int stage, amt::static_graph::node_id id) {
        graph_.add_edge(id, barrier_[static_cast<std::size_t>(stage)]);
    };

    // Stage 0 — force wave: stress ∥ hourglass per element chunk of p_nodal.
    index_t part = 0;
    for (index_t lo = 0; lo < ne; lo += pn, ++part) {
        const index_t hi = std::min<index_t>(lo + pn, ne);
        const auto stress = add_task(
            wave_site::force, 0, part, force_stress_accesses(lo, hi),
            [dp, lo, hi, vol_ok] {
                wave_body::force_stress(*dp, lo, hi, *vol_ok);
            });
        head(0, stress);
        tail(0, stress);
        const auto hg = add_task(
            wave_site::force, 0, part, force_hourglass_accesses(lo, hi),
            [dp, lo, hi, vol_ok] {
                wave_body::force_hourglass(*dp, lo, hi, *vol_ok);
            });
        head(0, hg);
        tail(0, hg);
    }

    // Stage 1 — node chains: gather → velpos per node chunk.
    part = 0;
    for (index_t lo = 0; lo < nn; lo += pn, ++part) {
        const index_t hi = std::min<index_t>(lo + pn, nn);
        const auto gather =
            add_task(wave_site::node, 1, part, node_gather_accesses(lo, hi),
                     [dp, lo, hi] { wave_body::node_gather(*dp, lo, hi); });
        const auto velpos = add_task(
            wave_site::node, 1, part, node_velpos_accesses(lo, hi),
            [dp, lo, hi, dtp] {
                wave_body::node_velpos(*dp, lo, hi, *dtp);
            });
        head(1, gather);
        graph_.add_edge(gather, velpos);
        tail(1, velpos);
    }

    // Stage 2 — fused element wave per p_elems chunk.
    part = 0;
    for (index_t lo = 0; lo < ne; lo += pe, ++part) {
        const index_t hi = std::min<index_t>(lo + pe, ne);
        const auto elem = add_task(
            wave_site::elem, 2, part, elem_wave_accesses(lo, hi),
            [dp, lo, hi, dtp, vol_ok, q_ok] {
                wave_body::elem_fused(*dp, lo, hi, *dtp, *vol_ok, *q_ok);
            });
        head(2, elem);
        tail(2, elem);
    }

    // Stage 3 — per-(region, chunk) monoq → EOS chains plus the independent
    // volume update.  Each EOS node owns a persistent scratch (T5, recycled
    // across replays; every scratch array is written before read).
    part = 0;
    for (index_t r = 0; r < d.numReg(); ++r) {
        const auto& list = d.regElemList(r);
        const auto count = static_cast<index_t>(list.size());
        const int rep = k::eos_rep_for_region(d, r);
        const index_t* lp = list.data();
        for (index_t lo = 0; lo < count; lo += pe, ++part) {
            const index_t hi = std::min<index_t>(lo + pe, count);
            const auto monoq = add_task(
                wave_site::region_eos, 3, part,
                region_monoq_accesses(lp, lo, hi), [dp, lp, lo, hi] {
                    wave_body::region_monoq(*dp, lp, lo, hi);
                });
            k::eos_scratch* scr = &eos_scratch_.emplace_back();
            const auto eos = add_task(
                wave_site::region_eos, 3, part,
                region_eos_accesses(lp, lo, hi), [dp, lp, lo, hi, rep, scr] {
                    wave_body::region_eos(*dp, lp, lo, hi, rep, *scr);
                });
            head(3, monoq);
            graph_.add_edge(monoq, eos);
            tail(3, eos);
        }
    }
    part = 0;
    for (index_t lo = 0; lo < ne; lo += pe, ++part) {
        const auto hi = std::min<index_t>(lo + pe, ne);
        const auto vol = add_task(
            wave_site::region_eos, 3, part, volume_update_accesses(lo, hi),
            [dp, lo, hi] { wave_body::volume_update(*dp, lo, hi); });
        head(3, vol);
        tail(3, vol);
    }

    // Stage 4 — constraint partials, one slot per (region, chunk).
    index_t slot = 0;
    for (index_t r = 0; r < d.numReg(); ++r) {
        const auto& list = d.regElemList(r);
        const auto count = static_cast<index_t>(list.size());
        const index_t* lp = list.data();
        for (index_t lo = 0; lo < count; lo += pe, ++slot) {
            const index_t hi = std::min<index_t>(lo + pe, count);
            k::dt_constraints* out =
                partials_.data() + static_cast<std::size_t>(slot);
            const auto c = add_task(
                wave_site::constraints, 4, slot,
                constraint_accesses(lp, lo, hi, slot), [dp, lp, lo, hi, out] {
                    wave_body::constraints(*dp, lp, lo, hi, *out);
                });
            head(4, c);
            tail(4, c);
        }
    }
}

std::string compiled_iteration::verify(const graph_model& m) const {
    std::ostringstream err;
    if (m.tasks.size() != compute_nodes_.size()) {
        err << "compiled graph has " << compute_nodes_.size()
            << " compute nodes, model has " << m.tasks.size() << " tasks";
        return err.str();
    }
    if (m.num_slots != slots_) {
        err << "compiled slot count " << slots_ << " != model num_slots "
            << m.num_slots;
        return err.str();
    }
    for (std::size_t b = 0; b + 1 < num_barriers; ++b) {
        if (!graph_.has_edge(barrier_[b], barrier_[b + 1])) {
            err << "missing barrier chain edge B" << b + 1 << " -> B"
                << b + 2;
            return err.str();
        }
    }
    std::vector<char> has_consumer(m.tasks.size(), 0);
    for (const task_decl& td : m.tasks) {
        for (int dep : td.deps) {
            has_consumer[static_cast<std::size_t>(dep)] = 1;
        }
    }
    const std::uint64_t gen = graph_.generation();
    for (std::size_t i = 0; i < m.tasks.size(); ++i) {
        const task_decl& td = m.tasks[i];
        const node_info& ni = compute_nodes_[i];
        auto fail = [&](const char* what) {
            err << "task " << i << " (" << td.site << " partition "
                << td.partition << "): " << what;
            return err.str();
        };
        // Model sites are dotted sub-sites of the runtime wave_site label
        // ("region_eos.monoq" vs "region_eos"), so prefix-match.
        if (std::strncmp(td.site, ni.site, std::strlen(ni.site)) != 0) {
            return fail("site mismatch");
        }
        if (td.stage != ni.stage) return fail("stage mismatch");
        if (static_cast<std::int64_t>(td.partition) != ni.partition) {
            return fail("partition mismatch");
        }
        for (int dep : td.deps) {
            const node_info& from =
                compute_nodes_[static_cast<std::size_t>(dep)];
            if (!graph_.has_edge(from.id, ni.id)) {
                return fail("declared continuation edge missing");
            }
        }
        if (td.deps.empty()) {
            if (td.stage > 0) {
                const auto b =
                    barrier_[static_cast<std::size_t>(td.stage - 1)];
                if (!graph_.has_edge(b, ni.id)) {
                    return fail("chain head not gated on previous barrier");
                }
            } else if (graph_.dependency_count(ni.id) != 0) {
                return fail("stage-0 task is not a graph root");
            }
        }
        if (!has_consumer[i] &&
            !graph_.has_edge(ni.id,
                             barrier_[static_cast<std::size_t>(td.stage)])) {
            return fail("chain tail not joined into its stage barrier");
        }
        if (gen > 0 && graph_.executions(ni.id) != gen) {
            err << "task " << i << " (" << td.site << " partition "
                << td.partition << "): executed " << graph_.executions(ni.id)
                << " times over " << gen
                << " replays (re-arm invariant violated)";
            return err.str();
        }
    }
    if (gen > 0) {
        for (std::size_t b = 0; b < num_barriers; ++b) {
            if (graph_.executions(barrier_[b]) != gen) {
                err << "barrier B" << b + 1 << " executed "
                    << graph_.executions(barrier_[b]) << " times over " << gen
                    << " replays";
                return err.str();
            }
        }
    }
    return {};
}

}  // namespace lulesh::graph
