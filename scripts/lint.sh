#!/usr/bin/env bash
# One-command amtlint: build the lint binary if needed and scan the tree
# with the checked-in baseline — the same invocations the `amtlint.tree`
# and `amtlint.atomics` ctests run (`ctest -L lint`).  Exit 0 clean, 1 on
# new diagnostics.  See docs/static-analysis.md for the rules; for the
# model-checker litmus gate, run scripts/modelcheck.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ ! -x build/tools/amtlint/amtlint ]; then
  cmake -B build -S . > /dev/null
  cmake --build build --target amtlint -j "$(nproc)" > /dev/null
fi

./build/tools/amtlint/amtlint \
  --root . \
  --baseline tools/amtlint/baseline.txt \
  --exclude src/amt/ \
  src examples

# AMT006 sweep of the runtime layer itself (the `amtlint.atomics` ctest):
# src/amt is exempt from the task-usage rules but not from the raw-atomic
# rule — only the shim and the model checker may touch std::atomic.
exec ./build/tools/amtlint/amtlint \
  --root . \
  --baseline tools/amtlint/baseline.txt \
  --atomics-only \
  --exclude src/amt/atomic.hpp \
  --exclude src/amt/model.hpp \
  --exclude src/amt/model.cpp \
  src/amt
