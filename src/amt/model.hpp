// amt/model.hpp — deterministic schedule explorer for the runtime's
// lock-free core (loom/relacy-style stateless model checking).
//
// A litmus test hands model::check() a body function.  The body runs as
// model thread 0; it may spawn model::thread workers, which execute REAL
// code built on the amt::atomic / amt::mutex shim (amt/atomic.hpp).  The
// controller serializes the threads cooperatively — exactly one runs at a
// time, and every shim operation is a schedule point — then explores the
// space of interleavings:
//
//   * mode exhaustive — bounded-exhaustive DFS over (thread, read-choice)
//     decisions with sleep-set pruning and optional preemption bounding.
//     Suited to small litmus cases (2–4 threads, tens of ops).
//   * mode random — PCT-style random-priority exploration (Burckhardt et
//     al.): per-iteration random thread priorities plus a few priority
//     change points, driven by a replayable 64-bit seed.  Suited to
//     larger state spaces where exhaustion is out of reach.
//
// Weak memory: the controller keeps a store-buffer model — per-variable
// store histories with vector-clock happens-before — so a relaxed or
// acquire/release load may return any *coherently stale* value the C++
// memory model permits, even though the host is x86.  Reads-from choices
// are part of the explored decision space, which is how ARM-only bugs
// surface on an x86 test box.
//
// Every failure (assertion, deadlock, step-cap livelock) produces a
// result carrying the exact interleaving trace and a replay token
// ("dfs:<decision path>" or "pct:<seed>"); feeding the token back through
// options::replay re-executes that single schedule deterministically.
//
// Documented conservative simplifications (may miss exotic behaviors,
// never invent impossible ones — see docs/static-analysis.md):
//   * modification order equals commit order (stores serialize in the
//     execution interleaving);
//   * seq_cst loads and all RMWs read the newest store only;
//   * weak CAS never fails spuriously;
//   * consume is promoted to acquire;
//   * notify_one wakes waiters FIFO; no spurious wakeups (a lost notify
//     therefore reports as a deadlock).

#pragma once

#if !AMT_MODEL_CHECK
#error "amt/model.hpp is only usable in AMT_MODEL_CHECK builds (preset: model)"
#endif

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace amt::model {

/// Hard ceiling on live model threads per execution (vector clocks are
/// fixed-size arrays).  Litmus cases use 2–4.
inline constexpr int kMaxThreads = 8;

struct options {
    enum class mode_t { exhaustive, random };
    mode_t mode = mode_t::exhaustive;

    /// random mode: base seed; iteration i runs with splitmix64(seed ^ i),
    /// and a failing result reports that derived per-iteration seed.
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
    /// random mode: number of schedules to sample.
    int iterations = 2000;
    /// random mode: PCT depth d (d-1 priority change points per run).
    int pct_depth = 3;

    /// exhaustive mode: stop (result.complete = false) after this many
    /// executions even if the space is not exhausted.
    long max_executions = 100000;
    /// exhaustive mode: CHESS-style preemption bound; -1 = unbounded.
    int max_preemptions = -1;

    /// Per-execution schedule-point budget; exceeding it fails the
    /// execution as a livelock.
    int max_steps = 20000;

    /// Non-null: skip exploration and deterministically re-run the single
    /// schedule this token (from result::replay) describes.
    const char* replay = nullptr;

    /// Print each failing trace to stderr (failures always land in
    /// result::trace regardless).
    bool quiet = false;
};

struct result {
    bool failed = false;
    /// exhaustive mode: true when the whole (bounded) space was explored.
    bool complete = false;
    long executions = 0;
    /// What went wrong: "assertion failed: ...", "deadlock: ...", ...
    std::string reason;
    /// Human-readable interleaving of the failing execution.
    std::string trace;
    /// Replay token for the failing execution ("dfs:…" / "pct:…").
    std::string replay;
    /// random mode: derived seed of the failing iteration.
    std::uint64_t seed = 0;
};

/// Explore `body` under `opts`.  One check runs at a time per process.
result check(const options& opts, std::function<void()> body);
inline result check(std::function<void()> body) {
    return check(options{}, std::move(body));
}

/// Fails the current execution (recording trace + replay token) when
/// `cond` is false.  Outside an execution, falls back to a hard assert.
void model_assert(bool cond, const char* msg);

/// True while the calling thread is a registered thread of an active
/// model::check() execution.
[[nodiscard]] bool active() noexcept;

/// Extra schedule point with no memory effect (models "the scheduler may
/// preempt here even with no atomic op").
void yield();

/// Attach a display name to an atomic/mutex/cv address for traces.
void set_name(const void* addr, const char* nm);

/// std::thread stand-in whose spawn/join are schedule points.  Must be
/// join()ed before destruction (aborted executions clean up themselves).
class thread {
public:
    thread() = default;
    explicit thread(std::function<void()> fn);
    thread(const thread&) = delete;
    thread& operator=(const thread&) = delete;
    thread(thread&& other) noexcept;
    thread& operator=(thread&& other) noexcept;
    ~thread();

    void join();

private:
    std::thread os_;
    int tid_ = -1;
    bool model_joined_ = false;
};

/// Thrown through user code to unwind threads of an aborted execution;
/// the controller catches it at the thread trampoline.  Litmus code must
/// not swallow it (rethrow from any catch(...)).
struct execution_aborted {};

}  // namespace amt::model
