#!/usr/bin/env bash
# One-command amtcheck: build the AMT_MODEL_CHECK instrumented tree (the
# `model` preset, build-model/) and run every model litmus (`ctest -L
# model`), then verify no raw std::atomic has crept in outside the shim
# (amtlint AMT006 over the whole tree, both scan passes).  This is the
# gate a memory-ordering change must pass before relaxing or reordering
# anything in src/amt — see docs/static-analysis.md ("memory-model
# conventions") for how to read a failure and replay its seed.
# Exit 0 clean; non-zero on a litmus counterexample or a new AMT006 hit.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset model > /dev/null
cmake --build --preset model -j "$(nproc)"
ctest --preset model --output-on-failure

# AMT006: every atomic goes through amt/atomic.hpp.  Pass 1 is the normal
# tree gate (src + examples, runtime layer excluded); pass 2 sweeps the
# runtime layer itself, exempting only the shim and the model checker.
if [ ! -x build-model/tools/amtlint/amtlint ]; then
  cmake --build --preset model --target amtlint -j "$(nproc)" > /dev/null
fi
./build-model/tools/amtlint/amtlint \
  --root . \
  --baseline tools/amtlint/baseline.txt \
  --exclude src/amt/ \
  src examples
./build-model/tools/amtlint/amtlint \
  --root . \
  --baseline tools/amtlint/baseline.txt \
  --atomics-only \
  --exclude src/amt/atomic.hpp \
  --exclude src/amt/model.hpp \
  --exclude src/amt/model.cpp \
  src/amt
