// Property-style parameterized sweeps: randomized problem configurations
// where every driver must agree bitwise with the serial ground truth, EOS
// path equivalence (fused task body vs loop-granular phases), and chunk-
// order independence of the force kernels.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "amt/amt.hpp"
#include "core/driver_taskgraph.hpp"
#include "lulesh/driver.hpp"
#include "lulesh/kernels.hpp"
#include "lulesh/validate.hpp"

namespace {

using lulesh::domain;
using lulesh::index_t;
using lulesh::options;
using lulesh::partition_sizes;
using lulesh::real_t;
namespace k = lulesh::kernels;

// ---------------- randomized cross-driver agreement ----------------

class RandomizedEquivalence : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RandomizedEquivalence, TaskgraphMatchesSerialOnRandomConfig) {
    std::mt19937 rng(GetParam());
    options o;
    o.size = static_cast<index_t>(3 + rng() % 8);           // 3..10
    o.num_regions = static_cast<index_t>(1 + rng() % 15);   // 1..15
    o.cost = static_cast<int>(1 + rng() % 3);
    o.balance = static_cast<int>(rng() % 3);
    o.region_seed = rng();
    const partition_sizes parts{static_cast<index_t>(1 + rng() % 300),
                                static_cast<index_t>(1 + rng() % 300)};
    const std::size_t threads = 1 + rng() % 4;
    const int iters = static_cast<int>(5 + rng() % 20);

    domain reference(o);
    {
        lulesh::serial_driver drv;
        lulesh::run_simulation(reference, drv, iters);
    }
    domain candidate(o);
    {
        amt::runtime rt(threads);
        lulesh::taskgraph_driver drv(rt, parts);
        lulesh::run_simulation(candidate, drv, iters);
    }
    EXPECT_EQ(lulesh::max_field_difference(reference, candidate), 0.0)
        << "size=" << o.size << " regions=" << o.num_regions
        << " cost=" << o.cost << " balance=" << o.balance
        << " parts=" << parts.nodal << "/" << parts.elems
        << " threads=" << threads << " iters=" << iters;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedEquivalence,
                         ::testing::Range(0u, 12u));

// ---------------- EOS path equivalence across rep values ----------------

class EosPathEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EosPathEquivalence, FusedChunkMatchesLoopGranularPhases) {
    const int rep = GetParam();
    options o;
    o.size = 5;
    o.num_regions = 1;
    // Evolve a few steps to get a nontrivial EOS input state.
    domain a(o);
    domain b(o);
    lulesh::serial_driver drv;
    for (int i = 0; i < 4; ++i) {
        k::time_increment(a);
        drv.advance(a);
        k::time_increment(b);
        drv.advance(b);
    }

    const auto& list = a.regElemList(0);
    const auto count = static_cast<index_t>(list.size());
    const index_t* lp = list.data();

    // Path A: fused chunk, several chunks.
    {
        k::eos_scratch s;
        const index_t chunk = 37;
        for (index_t lo = 0; lo < count; lo += chunk) {
            const index_t hi = std::min<index_t>(lo + chunk, count);
            s.resize(static_cast<std::size_t>(hi - lo));
            k::eval_eos_chunk(a, lp, lo, hi, rep, s);
        }
    }
    // Path B: loop-granular phases over the full region, rep times.
    {
        k::eos_scratch s;
        s.resize(static_cast<std::size_t>(count));
        const index_t* blp = b.regElemList(0).data();
        for (int j = 0; j < rep; ++j) {
            k::eos_gather_e(b, blp, 0, count, s);
            k::eos_gather_delv(b, blp, 0, count, s);
            k::eos_gather_p(b, blp, 0, count, s);
            k::eos_gather_q(b, blp, 0, count, s);
            k::eos_gather_qq_ql(b, blp, 0, count, s);
            k::eos_compression(b, blp, 0, count, s);
            k::eos_clamp_vmin(b, blp, 0, count, s);
            k::eos_clamp_vmax(b, blp, 0, count, s);
            k::eos_zero_work(0, count, s);
            k::energy_step1(b, 0, count, s);
            k::pressure_bvc(0, count, s.comp_half_step.data(), s.bvc.data(),
                            s.pbvc.data());
            k::pressure_p(b, blp, 0, count, s.p_half_step.data(), s.bvc.data(),
                          s.e_new.data());
            k::energy_q_half(b, 0, count, s);
            k::energy_step2(b, 0, count, s);
            k::pressure_bvc(0, count, s.compression.data(), s.bvc.data(),
                            s.pbvc.data());
            k::pressure_p(b, blp, 0, count, s.p_new.data(), s.bvc.data(),
                          s.e_new.data());
            k::energy_step3(b, blp, 0, count, s);
            k::pressure_bvc(0, count, s.compression.data(), s.bvc.data(),
                            s.pbvc.data());
            k::pressure_p(b, blp, 0, count, s.p_new.data(), s.bvc.data(),
                          s.e_new.data());
            k::energy_q_final(b, blp, 0, count, s);
        }
        k::eos_store(b, blp, 0, count, s);
        k::eos_sound_speed(b, blp, 0, count, s);
    }

    for (std::size_t i = 0; i < a.e.size(); ++i) {
        ASSERT_EQ(a.e[i], b.e[i]) << "elem " << i;
        ASSERT_EQ(a.p[i], b.p[i]) << "elem " << i;
        ASSERT_EQ(a.q[i], b.q[i]) << "elem " << i;
        ASSERT_EQ(a.ss[i], b.ss[i]) << "elem " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Reps, EosPathEquivalence,
                         ::testing::Values(1, 2, 20));

// ---------------- chunk-order independence ----------------

TEST(ChunkOrderIndependence, ForceKernelsCommuteAcrossChunkPermutations) {
    options o;
    o.size = 6;
    o.num_regions = 3;
    domain a(o);
    domain b(o);
    lulesh::serial_driver drv;
    for (int i = 0; i < 3; ++i) {
        k::time_increment(a);
        drv.advance(a);
        k::time_increment(b);
        drv.advance(b);
    }

    const index_t ne = a.numElem();
    const index_t chunk = 17;
    std::vector<std::pair<index_t, index_t>> chunks;
    for (index_t lo = 0; lo < ne; lo += chunk) {
        chunks.emplace_back(lo, std::min<index_t>(lo + chunk, ne));
    }

    // a: natural order; b: reversed + interleaved stress/hourglass.
    for (const auto& [lo, hi] : chunks) {
        ASSERT_TRUE(k::force_stress_chunk(a, lo, hi));
    }
    for (const auto& [lo, hi] : chunks) {
        ASSERT_TRUE(k::force_hourglass_chunk(a, lo, hi));
    }
    for (auto it = chunks.rbegin(); it != chunks.rend(); ++it) {
        ASSERT_TRUE(k::force_hourglass_chunk(b, it->first, it->second));
        ASSERT_TRUE(k::force_stress_chunk(b, it->first, it->second));
    }

    k::gather_forces(a, 0, a.numNode());
    k::gather_forces(b, 0, b.numNode());
    for (std::size_t i = 0; i < a.fx.size(); ++i) {
        ASSERT_EQ(a.fx[i], b.fx[i]) << "node " << i;
        ASSERT_EQ(a.fy[i], b.fy[i]);
        ASSERT_EQ(a.fz[i], b.fz[i]);
    }
}

TEST(ChunkOrderIndependence, GatherSplitsArbitrarily) {
    options o;
    o.size = 5;
    o.num_regions = 2;
    domain d(o);
    lulesh::serial_driver drv;
    for (int i = 0; i < 2; ++i) {
        k::time_increment(d);
        drv.advance(d);
    }
    ASSERT_TRUE(k::force_stress_chunk(d, 0, d.numElem()));
    ASSERT_TRUE(k::force_hourglass_chunk(d, 0, d.numElem()));

    std::vector<real_t> whole_fx;
    k::gather_forces(d, 0, d.numNode());
    whole_fx = d.fx;

    // Re-gather in tiny scrambled node ranges.
    std::fill(d.fx.begin(), d.fx.end(), -1.0);
    std::vector<index_t> starts;
    for (index_t lo = 0; lo < d.numNode(); lo += 7) starts.push_back(lo);
    std::mt19937 rng(7);
    std::shuffle(starts.begin(), starts.end(), rng);
    for (index_t lo : starts) {
        k::gather_forces(d, lo, std::min<index_t>(lo + 7, d.numNode()));
    }
    for (std::size_t i = 0; i < whole_fx.size(); ++i) {
        ASSERT_EQ(d.fx[i], whole_fx[i]) << "node " << i;
    }
}

// ---------------- conservation-style invariants ----------------

TEST(Invariants, TotalMomentumAlongFreeDirectionsStaysFinite) {
    // The Sedov blast with symmetry planes pushes material outward; momenta
    // must stay finite and velocities bounded by a sane magnitude.
    options o;
    o.size = 8;
    o.num_regions = 11;
    domain d(o);
    lulesh::serial_driver drv;
    lulesh::run_simulation(d, drv, 80);
    real_t max_speed = 0;
    for (std::size_t i = 0; i < d.xd.size(); ++i) {
        const real_t speed = std::sqrt(d.xd[i] * d.xd[i] + d.yd[i] * d.yd[i] +
                                       d.zd[i] * d.zd[i]);
        ASSERT_TRUE(std::isfinite(speed));
        max_speed = std::max(max_speed, speed);
    }
    EXPECT_GT(max_speed, 0.0);
    EXPECT_LT(max_speed, 1e6);
}

TEST(Invariants, MassIsExactlyConserved) {
    // Lagrange formulation: element and nodal masses never change.
    options o;
    o.size = 6;
    o.num_regions = 5;
    domain d(o);
    const std::vector<real_t> elem_mass0 = d.elemMass;
    const std::vector<real_t> nodal_mass0 = d.nodalMass;
    lulesh::serial_driver drv;
    lulesh::run_simulation(d, drv, 50);
    EXPECT_EQ(d.elemMass, elem_mass0);
    EXPECT_EQ(d.nodalMass, nodal_mass0);
}

TEST(Invariants, EnergyFieldStaysNonNegativeForSedov) {
    // With pmin = 0 and the blast as the only source, element energies stay
    // at or above the emin clamp and practically non-negative.
    options o;
    o.size = 6;
    o.num_regions = 11;
    domain d(o);
    lulesh::serial_driver drv;
    lulesh::run_simulation(d, drv, 60);
    for (real_t e : d.e) {
        ASSERT_GE(e, d.emin);
        ASSERT_TRUE(std::isfinite(e));
    }
}

TEST(Invariants, PressureRespectsPminClamp) {
    options o;
    o.size = 6;
    domain d(o);
    lulesh::serial_driver drv;
    lulesh::run_simulation(d, drv, 60);
    for (real_t p : d.p) {
        ASSERT_GE(p, d.pmin);
        ASSERT_TRUE(std::isfinite(p));
    }
}

}  // namespace
