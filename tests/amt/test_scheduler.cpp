// Tests for the amt runtime: task execution, async, cooperative blocking,
// work distribution, counters, and stress behaviour.

#include "amt/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "amt/async.hpp"
#include "amt/future.hpp"
#include "amt/static_graph.hpp"
#include "amt/trace.hpp"
#include "amt/when_all.hpp"

namespace {

using namespace std::chrono_literals;

TEST(Runtime, ConstructsRequestedWorkerCount) {
    amt::runtime rt(3);
    EXPECT_EQ(rt.num_workers(), 3u);
}

TEST(Runtime, ZeroWorkersDefaultsToHardware) {
    amt::runtime rt(amt::runtime_options{.num_workers = 0});
    EXPECT_GE(rt.num_workers(), 1u);
}

TEST(Runtime, ActivePointsToMostRecentRuntime) {
    EXPECT_EQ(amt::runtime::active(), nullptr);
    {
        amt::runtime rt(1);
        EXPECT_EQ(amt::runtime::active(), &rt);
    }
    EXPECT_EQ(amt::runtime::active(), nullptr);
}

TEST(Runtime, PostedTaskRuns) {
    amt::runtime rt(2);
    std::atomic<bool> ran{false};
    rt.post_fn([&ran] { ran.store(true); });
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (!ran.load() && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
    }
    EXPECT_TRUE(ran.load());
}

TEST(Runtime, DestructorDrainsQueuedTasks) {
    std::atomic<int> count{0};
    {
        amt::runtime rt(2);
        for (int i = 0; i < 100; ++i) {
            rt.post_fn([&count] { count.fetch_add(1); });
        }
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(Async, ReturnsValue) {
    amt::runtime rt(2);
    auto f = amt::async([] { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(Async, ForwardsArgumentsByValue) {
    amt::runtime rt(2);
    auto f = amt::async([](int a, int b) { return a + b; }, 40, 2);
    EXPECT_EQ(f.get(), 42);
}

TEST(Async, RefWrapperPassesByReference) {
    amt::runtime rt(2);
    int target = 0;
    auto f = amt::async([](int& t) { t = 99; }, std::ref(target));
    f.get();
    EXPECT_EQ(target, 99);
}

TEST(Async, VoidResult) {
    amt::runtime rt(2);
    std::atomic<bool> ran{false};
    auto f = amt::async([&ran] { ran.store(true); });
    f.get();
    EXPECT_TRUE(ran.load());
}

TEST(Async, ExplicitRuntimeOverload) {
    amt::runtime rt(1);
    auto f = amt::async(rt, [] { return 5; });
    EXPECT_EQ(f.get(), 5);
}

TEST(Async, ThrowsWithoutActiveRuntime) {
    ASSERT_EQ(amt::runtime::active(), nullptr);
    EXPECT_THROW((void)amt::async([] { return 1; }), std::runtime_error);
}

TEST(Async, ExceptionInTaskPropagates) {
    amt::runtime rt(2);
    auto f = amt::async([]() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(Async, ContinuationRunsOnRuntime) {
    amt::runtime rt(2);
    auto f = amt::async([] { return 20; }).then([](amt::future<int>&& v) {
        return v.get() + 22;
    });
    EXPECT_EQ(f.get(), 42);
}

TEST(Async, LongContinuationChainCompletes) {
    amt::runtime rt(2);
    auto f = amt::async([] { return 0; });
    for (int i = 0; i < 200; ++i) {
        f = f.then([](amt::future<int>&& v) { return v.get() + 1; });
    }
    EXPECT_EQ(f.get(), 200);
}

TEST(Runtime, TasksSpreadAcrossWorkers) {
    // With several workers and many slow-ish tasks posted from outside, at
    // least two distinct worker threads should execute something.
    amt::runtime rt(4);
    std::mutex mu;
    std::set<std::thread::id> ids;
    std::vector<amt::future<void>> fs;
    fs.reserve(64);
    for (int i = 0; i < 64; ++i) {
        fs.push_back(amt::async([&] {
            std::this_thread::sleep_for(1ms);
            std::lock_guard lk(mu);
            ids.insert(std::this_thread::get_id());
        }));
    }
    amt::wait_all(fs);
    EXPECT_GE(ids.size(), 2u);
}

TEST(Runtime, NestedBlockingGetDoesNotDeadlockOnOneWorker) {
    // A task that spawns a subtask and blocks on it: with a single worker
    // this only completes because blocked workers execute pending tasks
    // cooperatively.
    amt::runtime rt(1);
    auto f = amt::async([] {
        auto inner = amt::async([] { return 21; });
        return inner.get() * 2;
    });
    EXPECT_EQ(f.get(), 42);
}

TEST(Runtime, DeepNestedBlockingCompletes) {
    amt::runtime rt(1);
    // Recursive fork-join (fib-style) exercises nested cooperative waits.
    struct fib {
        static int run(int n) {
            if (n < 2) return n;
            auto a = amt::async([n] { return run(n - 1); });
            int b = run(n - 2);
            return a.get() + b;
        }
    };
    auto f = amt::async([] { return fib::run(12); });
    EXPECT_EQ(f.get(), 144);
}

TEST(Runtime, TryRunOneFromExternalThreadExecutesWork) {
    amt::runtime rt(1);
    // Saturate the single worker with a long task, then post more work and
    // help from the external thread.  Wait until the worker has actually
    // started the blocker — otherwise the external helper below could pop
    // the blocker itself and spin in it.
    std::atomic<bool> started{false};
    std::atomic<bool> release{false};
    auto blocker = amt::async([&started, &release] {
        started.store(true);
        while (!release.load()) std::this_thread::yield();
    });
    while (!started.load()) std::this_thread::yield();
    std::atomic<int> done{0};
    for (int i = 0; i < 10; ++i) {
        rt.post_fn([&done] { done.fetch_add(1); });
    }
    while (done.load() < 10) {
        rt.try_run_one();  // external help
    }
    EXPECT_EQ(done.load(), 10);
    release.store(true);
    blocker.get();
}

TEST(RuntimeCounters, CountsExecutedTasks) {
    amt::runtime rt(2);
    rt.reset_counters();
    std::vector<amt::future<void>> fs;
    for (int i = 0; i < 50; ++i) fs.push_back(amt::async([] {}));
    amt::wait_all(fs);
    // The last task bumps the counter just after fulfilling its future;
    // poll briefly instead of snapshotting once (as below).
    auto s = rt.snapshot_counters();
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (s.tasks_executed < 50u &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
        s = rt.snapshot_counters();
    }
    EXPECT_GE(s.tasks_executed, 50u);
    EXPECT_EQ(s.num_workers, 2u);
    EXPECT_GT(s.wall_ns, 0u);
}

TEST(RuntimeCounters, ProductiveTimeGrowsWithWork) {
    amt::runtime rt(1);
    rt.reset_counters();
    auto f = amt::async([] {
        volatile double x = 0;
        for (int i = 0; i < 2000000; ++i) x = x + 1.0;
    });
    f.get();
    // The worker publishes its productive time just after fulfilling the
    // future, so poll briefly instead of snapshotting once.
    auto s = rt.snapshot_counters();
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (s.productive_ns == 0 && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
        s = rt.snapshot_counters();
    }
    EXPECT_GT(s.productive_ns, 0u);
    EXPECT_GT(s.productive_ratio(), 0.0);
    EXPECT_LE(s.productive_ratio(), 1.0 + 1e-9);
}

TEST(RuntimeCounters, ResetZeroesCounters) {
    amt::runtime rt(1);
    amt::async([] {}).get();
    rt.reset_counters();
    auto s = rt.snapshot_counters();
    EXPECT_EQ(s.tasks_executed, 0u);
    EXPECT_EQ(s.productive_ns, 0u);
}

TEST(RuntimeCounters, DeltaComputesWindow) {
    amt::runtime rt(1);
    auto a = rt.snapshot_counters();
    amt::async([] {}).get();
    // tasks_executed is bumped just after the future is fulfilled; poll
    // briefly instead of snapshotting once (as above).
    auto b = rt.snapshot_counters();
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (b.tasks_executed == a.tasks_executed &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
        b = rt.snapshot_counters();
    }
    auto d = amt::delta(a, b);
    EXPECT_GE(d.tasks_executed, 1u);
    EXPECT_GT(d.wall_ns, 0u);
}

TEST(Runtime, TimingCanBeDisabled) {
    amt::runtime rt(amt::runtime_options{.num_workers = 1,
                                         .enable_timing = false});
    amt::async([] {
        volatile int x = 0;
        for (int i = 0; i < 100000; ++i) x = x + 1;
    }).get();
    // Counters are published just after the future is fulfilled; poll.
    auto s = rt.snapshot_counters();
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (s.tasks_executed < 1 && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
        s = rt.snapshot_counters();
    }
    EXPECT_GE(s.tasks_executed, 1u);
    EXPECT_EQ(s.productive_ns, 0u);  // timing disabled: no productive time
}

TEST(Runtime, StealsHappenUnderImbalance) {
    // Saturate one worker with a long task while posting many small tasks
    // from outside: the other worker must steal or drain the global queue.
    amt::runtime rt(3);
    rt.reset_counters();
    std::vector<amt::future<void>> fs;
    fs.reserve(512);
    for (int i = 0; i < 512; ++i) {
        fs.push_back(amt::async([] {
            volatile double x = 1.0;
            for (int j = 0; j < 5000; ++j) x = x * 1.0000001;
        }));
    }
    amt::wait_all(fs);
    // Counters are published just after each future is fulfilled; poll.
    auto s = rt.snapshot_counters();
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (s.tasks_executed < 512 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
        s = rt.snapshot_counters();
    }
    EXPECT_EQ(s.tasks_executed, 512u);
    EXPECT_GT(s.steal_attempts, 0u);
}

TEST(RuntimeStress, ManySmallTasksAllExecute) {
    amt::runtime rt(4);
    constexpr int n = 50000;
    std::atomic<int> count{0};
    std::vector<amt::future<void>> fs;
    fs.reserve(n);
    for (int i = 0; i < n; ++i) {
        fs.push_back(amt::async([&count] { count.fetch_add(1, std::memory_order_relaxed); }));
    }
    amt::wait_all(fs);
    EXPECT_EQ(count.load(), n);
}

TEST(RuntimeStress, TasksSpawningTasks) {
    amt::runtime rt(4);
    constexpr int width = 100;
    constexpr int children = 50;
    std::atomic<int> count{0};
    std::vector<amt::future<void>> roots;
    roots.reserve(width);
    for (int i = 0; i < width; ++i) {
        roots.push_back(amt::async([&count] {
            std::vector<amt::future<void>> kids;
            kids.reserve(children);
            for (int j = 0; j < children; ++j) {
                kids.push_back(amt::async(
                    [&count] { count.fetch_add(1, std::memory_order_relaxed); }));
            }
            amt::wait_all(kids);
        }));
    }
    amt::wait_all(roots);
    EXPECT_EQ(count.load(), width * children);
}

// ---------------------------------------------------------------------------
// Hierarchical (locality-domain-aware) steal-victim selection.  The victim
// order is a pure function (for_each_steal_victim), so the policy — every
// same-domain victim before any cross-domain one — is asserted exactly,
// with no scheduling nondeterminism involved.

namespace steal_order {

struct visit_log {
    std::vector<std::size_t> same, cross;
    bool saw_cross_before_same_end = false;
};

visit_log sweep(std::size_t self, std::size_t n, std::size_t ds,
                std::uint64_t rot_same = 0, std::uint64_t rot_cross = 0) {
    visit_log log;
    amt::for_each_steal_victim(
        self, n, ds, rot_same, rot_cross,
        [&log](std::size_t v, bool same_domain) {
            if (same_domain) {
                if (!log.cross.empty()) log.saw_cross_before_same_end = true;
                log.same.push_back(v);
            } else {
                log.cross.push_back(v);
            }
            return false;
        });
    return log;
}

}  // namespace steal_order

TEST(StealVictims, SameDomainVictimsSweptBeforeCrossDomain) {
    // 8 workers in domains {0..3} and {4..7}; thief is worker 1.
    const auto log = steal_order::sweep(1, 8, 4);
    EXPECT_FALSE(log.saw_cross_before_same_end);
    EXPECT_EQ(std::set<std::size_t>(log.same.begin(), log.same.end()),
              (std::set<std::size_t>{0, 2, 3}));
    EXPECT_EQ(std::set<std::size_t>(log.cross.begin(), log.cross.end()),
              (std::set<std::size_t>{4, 5, 6, 7}));
}

TEST(StealVictims, RotationPermutesButNeverChangesTheVictimSets) {
    const auto base = steal_order::sweep(5, 8, 4, 0, 0);
    for (std::uint64_t rot = 1; rot < 9; ++rot) {
        const auto log = steal_order::sweep(5, 8, 4, rot, rot * 3);
        EXPECT_FALSE(log.saw_cross_before_same_end);
        EXPECT_EQ(std::set<std::size_t>(log.same.begin(), log.same.end()),
                  std::set<std::size_t>(base.same.begin(), base.same.end()));
        EXPECT_EQ(std::set<std::size_t>(log.cross.begin(), log.cross.end()),
                  std::set<std::size_t>(base.cross.begin(), base.cross.end()));
    }
    // Rotation actually rotates: some rotation starts the same-domain sweep
    // at a different victim.
    bool order_varies = false;
    for (std::uint64_t rot = 1; rot < 4 && !order_varies; ++rot) {
        order_varies = steal_order::sweep(5, 8, 4, rot, 0).same != base.same;
    }
    EXPECT_TRUE(order_varies);
}

TEST(StealVictims, ThiefNeverVisitsItself) {
    for (std::size_t self = 0; self < 8; ++self) {
        const auto log = steal_order::sweep(self, 8, 4, 2, 5);
        for (std::size_t v : log.same) EXPECT_NE(v, self);
        for (std::size_t v : log.cross) EXPECT_NE(v, self);
        EXPECT_EQ(log.same.size() + log.cross.size(), 7u);
    }
}

TEST(StealVictims, ExternalThiefTreatsEveryWorkerAsCrossDomain) {
    // self >= n encodes a non-worker thread: no home domain.
    const auto log = steal_order::sweep(8, 8, 4);
    EXPECT_TRUE(log.same.empty());
    EXPECT_EQ(std::set<std::size_t>(log.cross.begin(), log.cross.end()),
              (std::set<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(StealVictims, SingletonDomainsMakeEveryVictimCrossDomain) {
    const auto log = steal_order::sweep(2, 4, 1);
    EXPECT_TRUE(log.same.empty());
    EXPECT_EQ(std::set<std::size_t>(log.cross.begin(), log.cross.end()),
              (std::set<std::size_t>{0, 1, 3}));
}

TEST(StealVictims, FlatDomainMakesEveryVictimSameDomain) {
    // domain_size 0 resolves to n inside the sweep: one flat domain.
    const auto log = steal_order::sweep(3, 6, 0);
    EXPECT_TRUE(log.cross.empty());
    EXPECT_EQ(std::set<std::size_t>(log.same.begin(), log.same.end()),
              (std::set<std::size_t>{0, 1, 2, 4, 5}));
}

TEST(StealVictims, TailDomainNarrowerThanWidth) {
    // n = 6, width 4: the tail domain is {4, 5}.
    const auto log = steal_order::sweep(5, 6, 4);
    EXPECT_EQ(log.same, std::vector<std::size_t>{4});
    EXPECT_EQ(std::set<std::size_t>(log.cross.begin(), log.cross.end()),
              (std::set<std::size_t>{0, 1, 2, 3}));
    EXPECT_FALSE(log.saw_cross_before_same_end);
}

TEST(StealVictims, VisitorReturningTrueStopsTheSweep) {
    int visits = 0;
    amt::for_each_steal_victim(0, 8, 4, 0, 0,
                               [&visits](std::size_t, bool) {
                                   ++visits;
                                   return true;
                               });
    EXPECT_EQ(visits, 1);
}

TEST(StealVictims, RuntimeResolvesDomainSize) {
    {
        amt::runtime rt(2);
        EXPECT_EQ(rt.steal_domain_size(), 2u);  // auto: <= 4 workers → flat
    }
    {
        amt::runtime rt(amt::runtime_options{.num_workers = 6});
        EXPECT_EQ(rt.steal_domain_size(), 4u);  // auto: > 4 workers → 4
    }
    {
        amt::runtime rt(
            amt::runtime_options{.num_workers = 6, .steal_domain_size = 2});
        EXPECT_EQ(rt.steal_domain_size(), 2u);
    }
    {
        amt::runtime rt(
            amt::runtime_options{.num_workers = 2, .steal_domain_size = 16});
        EXPECT_EQ(rt.steal_domain_size(), 2u);  // clamped to n
    }
}

namespace {

/// Fan-out workload that produces stealable work: worker-resident roots
/// each push children into their own deque while other workers are idle.
void run_steal_workload() {
    constexpr int roots = 16, children = 64;
    std::atomic<int> count{0};
    std::vector<amt::future<void>> fs;
    fs.reserve(roots);
    for (int i = 0; i < roots; ++i) {
        fs.push_back(amt::async([&count] {
            std::vector<amt::future<void>> kids;
            kids.reserve(children);
            for (int j = 0; j < children; ++j) {
                kids.push_back(amt::async([&count] {
                    count.fetch_add(1, std::memory_order_relaxed);
                }));
            }
            amt::wait_all(kids);
        }));
    }
    amt::wait_all(fs);
    ASSERT_EQ(count.load(), roots * children);
}

}  // namespace

// The domain-split counters are asserted through invariants that hold for
// ANY steal count (including zero on a single-core machine), so these are
// deterministic rather than load-dependent.

TEST(StealVictims, FlatDomainCountsEveryStealAsSameDomain) {
    amt::runtime rt(
        amt::runtime_options{.num_workers = 4, .steal_domain_size = 4});
    run_steal_workload();
    const auto s = rt.snapshot_counters();
    EXPECT_EQ(s.steals_cross_domain, 0u);
    EXPECT_EQ(s.steals_same_domain, s.steals);
}

TEST(StealVictims, SingletonDomainsCountEveryStealAsCrossDomain) {
    amt::runtime rt(
        amt::runtime_options{.num_workers = 4, .steal_domain_size = 1});
    run_steal_workload();
    const auto s = rt.snapshot_counters();
    EXPECT_EQ(s.steals_same_domain, 0u);
    EXPECT_EQ(s.steals_cross_domain, s.steals);
}

TEST(StealVictims, DomainSplitCountersSumToTotalSteals) {
    amt::runtime rt(
        amt::runtime_options{.num_workers = 8, .steal_domain_size = 4});
    run_steal_workload();
    const auto s = rt.snapshot_counters();
    EXPECT_EQ(s.steals_same_domain + s.steals_cross_domain, s.steals);
}

// ---------------------------------------------------------------------------
// Steal/idle regression over compiled-graph replay, measured with the task
// tracer's per-phase utilization attribution (PR 4).  A wide 5-stage graph
// (64 independent spin tasks per stage, stages joined by barrier nodes, the
// shape of one compiled LULESH iteration) is replayed repeatedly; each
// replay emits one phase window.  The acceptance bound adapts to
// oversubscription: on a machine with fewer cores than workers, idle share
// rises because parked workers cannot make progress, so the productive
// floor scales with min(hw, w)/w.

namespace {

amt::trace::utilization_report replay_utilization(std::size_t workers) {
    amt::trace::reset();
    amt::trace::set_thread_name("main");
    amt::trace::arm();
    {
        amt::runtime rt(workers);
        amt::static_graph g;
        constexpr int stages = 5, width = 64;
        amt::static_graph::node_id barrier_prev{};
        for (int s = 0; s < stages; ++s) {
            const auto barrier = g.add_node([] {}, "stage_barrier", s);
            for (int i = 0; i < width; ++i) {
                const auto node = g.add_node([] {
                    const auto until = std::chrono::steady_clock::now() +
                                       std::chrono::microseconds(20);
                    while (std::chrono::steady_clock::now() < until) {
                    }
                });
                if (s > 0) g.add_edge(barrier_prev, node);
                g.add_edge(node, barrier);
            }
            barrier_prev = barrier;
        }
        g.seal();
        g.run(rt);  // warm-up replay outside any phase window
        constexpr int replays = 6;
        for (int r = 0; r < replays; ++r) {
            const std::int64_t b = amt::trace::now_ns();
            g.run(rt);
            amt::trace::emit_phase("replay", b, amt::trace::now_ns() - b, r);
        }
    }
    amt::trace::disarm();
    const auto report = amt::trace::build_utilization(amt::trace::drain());
    amt::trace::reset();
    return report;
}

/// Steal+idle ceiling: workers can be collectively productive for at most
/// min(hw, w) of their w threads' time; grant half of that as the floor.
double steal_idle_bound(std::size_t workers) {
    const double hw =
        std::max(1u, std::thread::hardware_concurrency());
    const double w = static_cast<double>(workers);
    return 1.0 - 0.5 * std::min(hw, w) / w;
}

}  // namespace

TEST(CompiledGraphStealIdleShare, StaysUnderBoundAcrossWorkerCounts) {
    if (!amt::trace::compiled_in) {
        GTEST_SKIP() << "tracing compiled out (AMT_TRACE_DISABLE)";
    }
    for (const std::size_t workers : {2u, 4u, 8u}) {
        const auto report = replay_utilization(workers);
        ASSERT_GT(report.accounted_s(), 0.0) << "workers=" << workers;
        EXPECT_GT(report.tasks, 0u) << "workers=" << workers;
        const double bound = steal_idle_bound(workers);
        const double share =
            (report.steal_s + report.idle_s) / report.accounted_s();
        EXPECT_LE(share, bound)
            << "workers=" << workers << " steal_s=" << report.steal_s
            << " idle_s=" << report.idle_s
            << " productive_s=" << report.productive_s
            << " barrier_s=" << report.barrier_s;
        // Per-phase: every "replay" window obeys the same ceiling.
        for (const auto& ph : report.phases) {
            const double denom =
                ph.productive_s + ph.steal_s + ph.idle_s + ph.barrier_s;
            ASSERT_GT(denom, 0.0) << "workers=" << workers << " " << ph.name;
            EXPECT_LE((ph.steal_s + ph.idle_s) / denom, bound)
                << "workers=" << workers << " phase=" << ph.name;
        }
    }
}

TEST(RuntimeStress, SequentialRuntimesWithDifferentWorkerCounts) {
    // The benchmark harness constructs one runtime per thread-count sweep
    // point; make sure back-to-back construction/destruction is clean.
    for (std::size_t n : {1u, 2u, 4u, 3u, 1u}) {
        amt::runtime rt(n);
        std::atomic<int> c{0};
        std::vector<amt::future<void>> fs;
        for (int i = 0; i < 100; ++i) fs.push_back(amt::async([&c] { c.fetch_add(1); }));
        amt::wait_all(fs);
        EXPECT_EQ(c.load(), 100);
        EXPECT_EQ(rt.num_workers(), n);
    }
}

}  // namespace
