// lulesh/checkpoint_chain.cpp — v3 incremental checkpoint chains.

#include "lulesh/checkpoint_chain.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <utility>

#include "amt/metrics.hpp"
#include "lulesh/crc32c.hpp"
#include "lulesh/driver.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define LULESH_CHECKPOINT_HAVE_FSYNC 1
#endif

namespace lulesh {

namespace {

constexpr std::uint64_t record_magic = 0x4C554C4553485F33ULL;   // "LULESH_3"
constexpr std::uint64_t commit_magic = 0x434F4D4D49545F33ULL;   // "COMMIT_3"
constexpr std::uint32_t chain_version = 3;
constexpr std::uint32_t kind_base = 0;
constexpr std::uint32_t kind_delta = 1;

struct record_header {
    std::uint64_t magic = record_magic;
    std::uint32_t version = chain_version;
    std::uint32_t kind = kind_base;
    std::uint32_t num_regions = 0;
    std::uint32_t header_crc = 0;  // CRC over this header with the field zeroed
    std::int32_t size = 0;
    std::int32_t plane_begin = 0;
    std::int32_t plane_end = 0;
    std::int32_t num_elem = 0;
    std::int32_t num_node = 0;
    std::int32_t cycle = 0;
    double time = 0;
    double deltatime = 0;
    double dtcourant = 0;
    double dthydro = 0;
};
static_assert(sizeof(record_header) == 80, "record header must be packed");

struct region_entry {
    std::uint32_t slot = 0;         // checkpoint slot, not the raw field enum
    std::uint32_t payload_crc = 0;  // CRC-32C over this region's doubles
    std::int64_t lo = 0;
    std::int64_t hi = 0;
};
static_assert(sizeof(region_entry) == 24, "region entry must be packed");

// Written last: a record without (or with a corrupt) trailer was never
// committed and the restore path ignores it.
struct commit_trailer {
    std::uint64_t magic = commit_magic;
    std::uint32_t header_crc = 0;   // must echo the record header's CRC
    std::uint32_t regions_crc = 0;  // CRC-32C over the region entry blocks
};
static_assert(sizeof(commit_trailer) == 16, "commit trailer must be packed");

constexpr field checkpoint_fields[num_checkpoint_fields] = {
    field::x, field::y,  field::z, field::xd, field::yd, field::zd,
    field::e, field::p,  field::q, field::v,  field::ss,
};

const std::vector<real_t>* field_vector(const domain& d, field f) {
    switch (f) {
        case field::x: return &d.x;
        case field::y: return &d.y;
        case field::z: return &d.z;
        case field::xd: return &d.xd;
        case field::yd: return &d.yd;
        case field::zd: return &d.zd;
        case field::e: return &d.e;
        case field::p: return &d.p;
        case field::q: return &d.q;
        case field::v: return &d.v;
        case field::ss: return &d.ss;
        default: return nullptr;
    }
}

std::vector<real_t>* field_vector(domain& d, field f) {
    return const_cast<std::vector<real_t>*>(
        field_vector(static_cast<const domain&>(d), f));
}

index_t field_extent(const domain& d, field f) {
    return field_space(f) == space::node ? d.numNode() : d.numElem();
}

std::uint32_t crc_of(const void* p, std::size_t n) {
    crc32c c;
    c.update(p, n);
    return c.value();
}

std::uint32_t header_crc_of(record_header h) {
    h.header_crc = 0;
    return crc_of(&h, sizeof(h));
}

std::string hex32(std::uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08X", v);
    return buf;
}

[[noreturn]] void record_fail(const std::string& context,
                              const std::string& why) {
    throw checkpoint_error("lulesh: chain record invalid in " + context +
                           ": " + why);
}

// --- crash-injection seam for the torture test ---------------------------
//
// Every chain-file byte goes through chain_write(); when the budget is
// armed (in a forked child only) the write stops partway and the process
// exits, simulating a crash at an arbitrary byte offset.

amt::atomic<long long> g_crash_after{-1};

void chain_write(std::ofstream& out, const char* p, std::size_t n) {
    const long long budget = g_crash_after.load(amt::memory_order_relaxed);
    if (budget >= 0) {
        if (static_cast<long long>(n) >= budget) {
            out.write(p, static_cast<std::streamsize>(budget));
            out.flush();
#if LULESH_CHECKPOINT_HAVE_FSYNC
            ::_exit(42);
#endif
        }
        g_crash_after.store(budget - static_cast<long long>(n),
                            amt::memory_order_relaxed);
    }
    out.write(p, static_cast<std::streamsize>(n));
    if (!out) throw checkpoint_error("lulesh: chain write failed");
}

void fsync_path(const std::string& path) {
#if LULESH_CHECKPOINT_HAVE_FSYNC
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
#else
    (void)path;
#endif
}

}  // namespace

void set_chain_crash_after_bytes(long long n) noexcept {
    g_crash_after.store(n, amt::memory_order_relaxed);
}

field checkpoint_field_at(std::size_t slot) noexcept {
    return checkpoint_fields[slot];
}

int checkpoint_slot(field f) noexcept {
    for (std::size_t s = 0; s < num_checkpoint_fields; ++s) {
        if (checkpoint_fields[s] == f) return static_cast<int>(s);
    }
    return -1;
}

std::vector<dirty_region> full_coverage(const domain& d) {
    std::vector<dirty_region> out;
    out.reserve(num_checkpoint_fields);
    for (field f : checkpoint_fields) out.push_back({f, 0, field_extent(d, f)});
    return out;
}

// --- dirty_tracker -------------------------------------------------------

void dirty_tracker::mark(field f, index_t lo, index_t hi) {
    const int slot = checkpoint_slot(f);
    if (slot < 0 || lo >= hi) return;
    marks_[slot].emplace_back(lo, hi);
}

bool dirty_tracker::empty() const noexcept {
    for (const auto& m : marks_) {
        if (!m.empty()) return false;
    }
    return true;
}

void dirty_tracker::clear() noexcept {
    for (auto& m : marks_) m.clear();
}

std::vector<dirty_region> dirty_tracker::take(const domain& d) {
    std::vector<dirty_region> out;
    for (std::size_t s = 0; s < num_checkpoint_fields; ++s) {
        auto& m = marks_[s];
        if (m.empty()) continue;
        const field f = checkpoint_fields[s];
        const index_t extent = field_extent(d, f);
        std::sort(m.begin(), m.end());
        index_t lo = -1;
        index_t hi = -1;
        for (auto [a, b] : m) {
            a = std::max<index_t>(a, 0);
            b = std::min(b, extent);
            if (a >= b) continue;
            if (lo < 0) {
                lo = a;
                hi = b;
            } else if (a <= hi) {  // overlapping or adjacent: extend
                hi = std::max(hi, b);
            } else {
                out.push_back({f, lo, hi});
                lo = a;
                hi = b;
            }
        }
        if (lo >= 0) out.push_back({f, lo, hi});
        m.clear();
    }
    return out;
}

// --- state_capture -------------------------------------------------------

state_capture::state_capture(const domain& d, std::vector<dirty_region> regions,
                             bool base, std::string recycled)
    : d_(&d), regions_(std::move(regions)), buf_(std::move(recycled)),
      base_(base), cycle_(d.cycle) {
    record_header h;
    h.kind = base ? kind_base : kind_delta;
    h.num_regions = static_cast<std::uint32_t>(regions_.size());
    h.size = d.size_per_edge();
    h.plane_begin = d.slab().plane_begin;
    h.plane_end = d.slab().plane_end;
    h.num_elem = d.numElem();
    h.num_node = d.numNode();
    h.cycle = d.cycle;
    h.time = d.time_;
    h.deltatime = d.deltatime;
    h.dtcourant = d.dtcourant;
    h.dthydro = d.dthydro;
    h.header_crc = header_crc_of(h);

    std::size_t total = sizeof(record_header) + sizeof(commit_trailer);
    for (const auto& r : regions_) {
        total += sizeof(region_entry) +
                 static_cast<std::size_t>(r.hi - r.lo) * sizeof(real_t);
    }
    buf_.resize(total);
    std::memcpy(buf_.data(), &h, sizeof(h));

    payload_offset_.reserve(regions_.size());
    std::size_t off = sizeof(record_header);
    for (const auto& r : regions_) {
        region_entry e;
        e.slot = static_cast<std::uint32_t>(checkpoint_slot(r.f));
        e.lo = r.lo;
        e.hi = r.hi;
        std::memcpy(buf_.data() + off, &e, sizeof(e));
        off += sizeof(e);
        payload_offset_.push_back(off);
        off += static_cast<std::size_t>(r.hi - r.lo) * sizeof(real_t);
    }

    claims_ = std::make_unique<amt::atomic<int>[]>(regions_.size());
    // relaxed: single-threaded setup — pack tasks are spawned after this
    // constructor returns, and the spawn itself publishes the array.
    for (std::size_t i = 0; i < regions_.size(); ++i)
        claims_[i].store(0, amt::memory_order_relaxed);
}

bool state_capture::pack_region(std::size_t i) noexcept {
    int expected = 0;
    // relaxed: the claim token only arbitrates WHICH packer runs; the field
    // data it packs was written before the pack tasks were spawned, so
    // visibility comes from the spawn edge, not from this CAS.
    if (!claims_[i].compare_exchange_strong(expected, 1,
                                            amt::memory_order_relaxed)) {
        return false;
    }
    static auto& pack_hist = amt::metrics::get_histogram(
        "lulesh_checkpoint_pack_ns",
        "per-region fused copy+CRC32C checkpoint packing time");
    amt::metrics::scoped_timer pack_timer(pack_hist);
    const dirty_region& r = regions_[i];
    const std::vector<real_t>* src = field_vector(*d_, r.f);
    const std::size_t bytes =
        static_cast<std::size_t>(r.hi - r.lo) * sizeof(real_t);
    hazard_touch(r.f, /*write=*/false, r.lo, r.hi);
    // One pass over the source: fused copy + checksum, streaming the
    // payload past the cache (the record is only read back on restore).
    const std::uint32_t crc =
        crc32c_copy(buf_.data() + payload_offset_[i], src->data() + r.lo,
                    bytes);
    // The payload CRC lives at offset 4 of this region's entry.
    std::memcpy(buf_.data() + payload_offset_[i] - sizeof(region_entry) +
                    offsetof(region_entry, payload_crc),
                &crc, sizeof(crc));
    // release: marks this region's payload+CRC bytes in buf_ complete for
    // anyone who observes state 2 (restore-side validation reads them).
    claims_[i].store(2, amt::memory_order_release);
    // acq_rel: the final packer's increment must carry every earlier
    // packer's buf_ writes to the wait_packed() acquire load below.
    if (packed_.fetch_add(1, amt::memory_order_acq_rel) + 1 ==
        regions_.size()) {
        std::lock_guard<std::mutex> lk(mu_);
        cv_.notify_all();
    }
    return true;
}

void state_capture::pack_remaining() noexcept {
    for (std::size_t i = 0; i < regions_.size(); ++i) pack_region(i);
}

void state_capture::mark_failed() noexcept {
    // relaxed: pure flag, no payload handoff (see failed() accessor).
    failed_.store(true, amt::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(mu_);
    cv_.notify_all();
}

void state_capture::wait_packed() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
        // acquire on packed_ pairs with the packers' acq_rel increments so
        // take_record() may read buf_ afterwards; failed_ stays relaxed
        // (flag only).
        return failed_.load(amt::memory_order_relaxed) ||
               packed_.load(amt::memory_order_acquire) == regions_.size();
    });
}

std::string state_capture::take_record() {
    crc32c regions_crc;
    std::size_t off = sizeof(record_header);
    for (const auto& r : regions_) {
        regions_crc.update(buf_.data() + off, sizeof(region_entry));
        off += sizeof(region_entry) +
               static_cast<std::size_t>(r.hi - r.lo) * sizeof(real_t);
    }
    commit_trailer t;
    std::memcpy(&t.header_crc, buf_.data() + offsetof(record_header, header_crc),
                sizeof(t.header_crc));
    t.regions_crc = regions_crc.value();
    std::memcpy(buf_.data() + buf_.size() - sizeof(t), &t, sizeof(t));
    return std::move(buf_);
}

// --- record validation + apply -------------------------------------------

void apply_chain_record(domain& d, std::string_view record,
                        const std::string& context) {
    const char* p = record.data();
    const std::size_t n = record.size();
    if (n < sizeof(record_header) + sizeof(commit_trailer)) {
        record_fail(context, "record truncated");
    }
    record_header h;
    std::memcpy(&h, p, sizeof(h));
    if (h.magic != record_magic) record_fail(context, "bad record magic");
    if (h.version != chain_version) {
        record_fail(context, "unsupported chain version");
    }
    if (header_crc_of(h) != h.header_crc) {
        record_fail(context, "header checksum mismatch (expected " +
                                 hex32(header_crc_of(h)) + ", actual " +
                                 hex32(h.header_crc) + ")");
    }
    if (h.size != d.size_per_edge() || h.plane_begin != d.slab().plane_begin ||
        h.plane_end != d.slab().plane_end || h.num_elem != d.numElem() ||
        h.num_node != d.numNode()) {
        throw checkpoint_error("lulesh: chain record in " + context +
                               " does not match this domain's shape");
    }
    const std::string cycle_ctx = " (cycle " + std::to_string(h.cycle) + ")";

    // Walk the region entries: bounds-check everything before trusting any
    // size, and accumulate the entry CRC the trailer must echo.
    std::vector<region_entry> entries(h.num_regions);
    std::vector<std::size_t> payload_off(h.num_regions);
    crc32c regions_crc;
    std::size_t off = sizeof(record_header);
    const std::size_t payload_end = n - sizeof(commit_trailer);
    for (std::uint32_t i = 0; i < h.num_regions; ++i) {
        if (off + sizeof(region_entry) > payload_end) {
            record_fail(context, "region table truncated" + cycle_ctx);
        }
        region_entry e;
        std::memcpy(&e, p + off, sizeof(e));
        regions_crc.update(p + off, sizeof(e));
        off += sizeof(e);
        if (e.slot >= num_checkpoint_fields) {
            record_fail(context, "unknown field slot" + cycle_ctx);
        }
        const field f = checkpoint_fields[e.slot];
        const auto extent = static_cast<std::int64_t>(field_extent(d, f));
        if (e.lo < 0 || e.lo > e.hi || e.hi > extent) {
            record_fail(context, "region range out of bounds for field " +
                                     std::string(field_name(f)) + cycle_ctx);
        }
        const std::size_t bytes =
            static_cast<std::size_t>(e.hi - e.lo) * sizeof(real_t);
        if (off + bytes > payload_end) {
            record_fail(context, "region payload truncated" + cycle_ctx);
        }
        entries[i] = e;
        payload_off[i] = off;
        off += bytes;
    }
    if (off != payload_end) {
        record_fail(context, "trailing bytes after last region" + cycle_ctx);
    }
    commit_trailer t;
    std::memcpy(&t, p + off, sizeof(t));
    if (t.magic != commit_magic || t.header_crc != h.header_crc) {
        record_fail(context, "commit trailer missing or torn" + cycle_ctx);
    }
    if (t.regions_crc != regions_crc.value()) {
        record_fail(context, "region table checksum mismatch" + cycle_ctx +
                                 " (expected " + hex32(regions_crc.value()) +
                                 ", actual " + hex32(t.regions_crc) + ")");
    }
    for (std::uint32_t i = 0; i < h.num_regions; ++i) {
        const std::size_t bytes =
            static_cast<std::size_t>(entries[i].hi - entries[i].lo) *
            sizeof(real_t);
        const std::uint32_t actual = crc_of(p + payload_off[i], bytes);
        if (actual != entries[i].payload_crc) {
            throw checkpoint_error(
                "lulesh: checkpoint payload checksum mismatch in " + context +
                cycle_ctx + " for field " +
                field_name(checkpoint_fields[entries[i].slot]) +
                " (expected " + hex32(entries[i].payload_crc) + ", actual " +
                hex32(actual) + ")");
        }
    }

    // Everything verified — only now touch the domain.
    for (std::uint32_t i = 0; i < h.num_regions; ++i) {
        const region_entry& e = entries[i];
        std::vector<real_t>* dst =
            field_vector(d, checkpoint_fields[e.slot]);
        std::memcpy(dst->data() + e.lo, p + payload_off[i],
                    static_cast<std::size_t>(e.hi - e.lo) * sizeof(real_t));
    }
    d.cycle = h.cycle;
    d.time_ = h.time;
    d.deltatime = h.deltatime;
    d.dtcourant = h.dtcourant;
    d.dthydro = h.dthydro;
}

// --- stream/file restore -------------------------------------------------

bool stream_is_chain(std::istream& in) {
    const auto pos = in.tellg();
    std::uint64_t magic = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    const bool ok =
        in.gcount() == static_cast<std::streamsize>(sizeof(magic)) &&
        magic == record_magic;
    in.clear();
    in.seekg(pos);
    return ok;
}

namespace {

/// Reads one record's bytes from the stream, using the (CRC-protected)
/// header to find its end.  Returns false on clean EOF or any torn/invalid
/// framing — the caller treats that as the end of the committed chain.
bool extract_record(std::istream& in, const domain& d, std::string& out) {
    record_header h;
    in.read(reinterpret_cast<char*>(&h), sizeof(h));
    if (in.gcount() != static_cast<std::streamsize>(sizeof(h))) return false;
    if (h.magic != record_magic || h.version != chain_version ||
        header_crc_of(h) != h.header_crc) {
        return false;
    }
    // Bound each region by the domain's extents before trusting its size;
    // a corrupt entry fails here or at trailer validation, never causes an
    // unbounded read.
    std::size_t total = sizeof(record_header) + sizeof(commit_trailer);
    std::vector<char> entry_buf(static_cast<std::size_t>(h.num_regions) *
                                sizeof(region_entry));
    out.assign(reinterpret_cast<const char*>(&h), sizeof(h));
    for (std::uint32_t i = 0; i < h.num_regions; ++i) {
        region_entry e;
        in.read(reinterpret_cast<char*>(&e), sizeof(e));
        if (in.gcount() != static_cast<std::streamsize>(sizeof(e))) {
            return false;
        }
        out.append(reinterpret_cast<const char*>(&e), sizeof(e));
        if (e.slot >= num_checkpoint_fields || e.lo < 0 || e.lo > e.hi) {
            return false;
        }
        const auto extent = static_cast<std::int64_t>(
            field_extent(d, checkpoint_fields[e.slot]));
        if (e.hi > extent) return false;
        const std::size_t bytes =
            static_cast<std::size_t>(e.hi - e.lo) * sizeof(real_t);
        const std::size_t old = out.size();
        out.resize(old + bytes);
        in.read(out.data() + old, static_cast<std::streamsize>(bytes));
        if (in.gcount() != static_cast<std::streamsize>(bytes)) return false;
        total += sizeof(region_entry) + bytes;
    }
    commit_trailer t;
    in.read(reinterpret_cast<char*>(&t), sizeof(t));
    if (in.gcount() != static_cast<std::streamsize>(sizeof(t))) return false;
    out.append(reinterpret_cast<const char*>(&t), sizeof(t));
    (void)total;
    return true;
}

}  // namespace

void restore_chain_stream(domain& d, std::istream& in,
                          const std::string& context) {
    // A committed chain for a *different mesh* must say so.  Without this
    // peek it would be misreported: extract_record bounds every region by
    // this domain's extents, so a shape-mismatched record looks torn and
    // the error would claim no committed base record exists.
    {
        const auto start = in.tellg();
        record_header h;
        in.read(reinterpret_cast<char*>(&h), sizeof(h));
        if (in.gcount() == static_cast<std::streamsize>(sizeof(h)) &&
            h.magic == record_magic && h.version == chain_version &&
            header_crc_of(h) == h.header_crc &&
            (h.size != d.size_per_edge() ||
             h.plane_begin != d.slab().plane_begin ||
             h.plane_end != d.slab().plane_end ||
             h.num_elem != d.numElem() || h.num_node != d.numNode())) {
            throw checkpoint_error("lulesh: chain record in " + context +
                                   " does not match this domain's shape");
        }
        in.clear();
        in.seekg(start);
    }
    std::size_t applied = 0;
    std::string record;
    while (extract_record(in, d, record)) {
        if (applied == 0) {
            record_header h;
            std::memcpy(&h, record.data(), sizeof(h));
            if (h.kind != kind_base) {
                record_fail(context, "chain does not start with a base record");
            }
        }
        try {
            apply_chain_record(d, record, context);
        } catch (const checkpoint_error&) {
            if (applied == 0) throw;
            break;  // corrupt tail: keep the longest valid prefix
        }
        ++applied;
    }
    if (applied == 0) {
        record_fail(context, "no committed base record found");
    }
}

std::vector<std::string> read_chain_records(const domain& d, std::istream& in,
                                            const std::string& context) {
    // Same shape peek as restore_chain_stream: a committed chain for a
    // different mesh must be reported as such, not as "no records".
    {
        const auto start = in.tellg();
        record_header h;
        in.read(reinterpret_cast<char*>(&h), sizeof(h));
        if (in.gcount() == static_cast<std::streamsize>(sizeof(h)) &&
            h.magic == record_magic && h.version == chain_version &&
            header_crc_of(h) == h.header_crc &&
            (h.size != d.size_per_edge() ||
             h.plane_begin != d.slab().plane_begin ||
             h.plane_end != d.slab().plane_end ||
             h.num_elem != d.numElem() || h.num_node != d.numNode())) {
            throw checkpoint_error("lulesh: chain record in " + context +
                                   " does not match this domain's shape");
        }
        in.clear();
        in.seekg(start);
    }
    std::vector<std::string> records;
    std::string record;
    while (extract_record(in, d, record)) {
        records.push_back(record);
    }
    return records;
}

int chain_record_cycle(std::string_view record) noexcept {
    record_header h;
    if (record.size() < sizeof(h)) return -1;
    std::memcpy(&h, record.data(), sizeof(h));
    if (h.magic != record_magic || h.version != chain_version ||
        header_crc_of(h) != h.header_crc) {
        return -1;
    }
    return h.cycle;
}

bool chain_record_is_base(std::string_view record) noexcept {
    record_header h;
    if (record.size() < sizeof(h)) return false;
    std::memcpy(&h, record.data(), sizeof(h));
    if (h.magic != record_magic || h.version != chain_version ||
        header_crc_of(h) != h.header_crc) {
        return false;
    }
    return h.kind == kind_base;
}

void write_chain_file(const std::string& path,
                      const std::vector<std::string>& records) {
    // Same atomic protocol as v2 checkpoints: temp file, fsync, rename.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw checkpoint_error("lulesh: cannot open '" + tmp +
                                   "' for writing");
        }
        try {
            for (const auto& r : records) chain_write(out, r.data(), r.size());
            out.flush();
            if (!out) throw checkpoint_error("lulesh: chain write failed");
        } catch (...) {
            out.close();
            std::remove(tmp.c_str());
            throw;
        }
    }
    fsync_path(tmp);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw checkpoint_error("lulesh: cannot rename '" + tmp + "' to '" +
                               path + "'");
    }
}

void append_chain_record_file(const std::string& path,
                              std::string_view record) {
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        if (!out) {
            throw checkpoint_error("lulesh: cannot open '" + path +
                                   "' for appending");
        }
        chain_write(out, record.data(), record.size());
        out.flush();
        if (!out) throw checkpoint_error("lulesh: chain append failed");
    }
    fsync_path(path);
}

// --- driver defaults -----------------------------------------------------
//
// Defined here (not in driver.hpp) so the driver interface only needs the
// forward declarations: a driver that does not track write-sets dirties
// everything, and one that cannot overlap packing declines the capture so
// the resilient loop packs synchronously.

void driver::record_dirty(dirty_tracker& t, const domain& d) const {
    for (std::size_t s = 0; s < num_checkpoint_fields; ++s) {
        const field f = checkpoint_field_at(s);
        t.mark(f, 0, field_extent(d, f));
    }
}

bool driver::submit_overlapped_capture(std::shared_ptr<state_capture>) {
    return false;
}

}  // namespace lulesh
