// dist/driver_dist.hpp
//
// Multi-domain leapfrog driver: advances every slab of a cluster by one
// iteration, inserting halo exchanges between the task waves.  Two exchange
// modes contrast the paper's future-work hypothesis:
//
//   futurized        — each slab's waves chain through per-slab barriers and
//                      *channel futures*: a slab continues as soon as its own
//                      wave and its neighbors' boundary messages are ready,
//                      so slabs overlap freely (the "asynchronous mechanisms
//                      of HPX" style).
//   eager            — futurized, plus fine-grained sends: a boundary plane
//                      is pushed into its channel as soon as the tasks
//                      covering *that plane* finish, before the rest of the
//                      slab's wave — maximal communication/computation
//                      overlap (neighbors unblock while this slab's interior
//                      is still computing).
//   bulk_synchronous — a global barrier after every wave, with the exchange
//                      performed between barriers (the "mostly synchronous
//                      data exchange mechanisms of MPI" style).
//
// All modes produce results bitwise identical to the single-domain drivers.

#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "amt/amt.hpp"
#include "dist/cluster.hpp"
#include "dist/failure_detector.hpp"
#include "dist/retry_policy.hpp"
#include "lulesh/driver.hpp"
#include "lulesh/kernels.hpp"

namespace lulesh::dist {

/// What the driver learned about the last failed iteration: which slab
/// failed (-1 when unattributable — e.g. a global volume error), the status
/// the failure maps to, and whether it was transient (an injected/dropped
/// fault that a replay at unchanged dt can clear).  The recovery layer
/// (dist/resilient_dist) uses this to decide which slab to rebuild.
struct slab_failure {
    index_t slab = -1;
    status code = status::ok;
    bool transient = false;
    std::string message;
};

class dist_driver {
public:
    enum class exchange_mode { futurized, eager, bulk_synchronous };

    /// `halo_timeout` > 0 arms a progress deadline on the futurized
    /// exchanges: if no task of the iteration finishes for a whole timeout
    /// window while the final barrier is pending, the halo fabric is failed
    /// (channels closed) and the iteration aborts with status::stalled
    /// instead of waiting forever on a peer that will never send.  With a
    /// timeout armed the failure detector's per-slab heartbeats name the
    /// suspect slab in last_failure().
    ///
    /// `retry` (when enabled) arms the transient-fault retry layer on the
    /// futurized exchanges: every boundary send parks a pristine copy in
    /// the boundary's retransmit cache, a CRC-corrupt delivery triggers a
    /// backed-off resend-request round-trip, and a dropped (fault-injected)
    /// message is re-delivered by the driver's wait loop — bounded by
    /// retry_policy::max_attempts before the failure escalates.  Disabled
    /// (the default), the send/receive paths are exactly the fail-stop
    /// ones.
    dist_driver(amt::runtime& rt, partition_sizes parts,
                exchange_mode mode = exchange_mode::futurized,
                std::chrono::milliseconds halo_timeout =
                    std::chrono::milliseconds(0),
                retry_policy retry = retry_policy::none())
        : rt_(rt),
          parts_(parts),
          mode_(mode),
          halo_timeout_(halo_timeout),
          retry_(retry) {}

    dist_driver(const dist_driver&) = delete;
    dist_driver& operator=(const dist_driver&) = delete;

    [[nodiscard]] std::string name() const {
        switch (mode_) {
            case exchange_mode::futurized:
                return "dist_futurized";
            case exchange_mode::eager:
                return "dist_eager";
            default:
                return "dist_bsp";
        }
    }
    [[nodiscard]] exchange_mode mode() const noexcept { return mode_; }

    /// One global leapfrog iteration: all slabs advance, constraints are
    /// min-reduced across slabs and written back to every slab.  Throws
    /// simulation_error on volume/qstop violations in any slab.
    void advance(cluster& c);

    /// The retry policy the exchange layer runs under.
    [[nodiscard]] const retry_policy& retry() const noexcept { return retry_; }

    /// Diagnosis of the last advance() that threw: slab attribution, mapped
    /// status, transience.  Reset at the start of every advance().
    [[nodiscard]] const slab_failure& last_failure() const noexcept {
        return last_failure_;
    }

    /// Re-delivers the cached copy of one boundary message (recovery
    /// plumbing; public for the receive-retry chain and tests).  With
    /// `force` false, only an in-flight (packed > sent), overdue,
    /// within-budget message is resent — the wait loop's drop recovery.
    /// With `force` true the delivered/overdue checks are skipped: the
    /// receiver found the delivered copy corrupt and asks for a fresh one.
    /// The resend passes the same halo_drop/halo_corrupt fault sites as the
    /// original send, so unbounded injection plans exhaust the retry budget
    /// deterministically.  Returns true if a message entered the channel.
    bool resend_from_cache(cluster& c, index_t b, halo_stream which,
                           bool force);

private:
    void advance_futurized(cluster& c, bool eager);
    void advance_bulk_synchronous(cluster& c);
    void reduce_constraints(cluster& c);

    /// Packs and sends one boundary plane, routing through the retransmit
    /// cache and the halo_drop/halo_corrupt fault sites when retry is on.
    void send_halo(cluster& c, index_t s, bool upper, bool corner);

    /// Future for one incoming boundary message, unpacked by `unpack`.
    /// When retry is enabled a CRC-corrupt delivery requests a backed-off
    /// resend (bounded by the policy) before the error escalates.
    amt::future<void> receive_halo(cluster& c, index_t s, index_t b,
                                   halo_stream which, const char* span_name,
                                   std::function<void(const plane_buffer&)>
                                       unpack);

    /// Scans every retransmit slot for overdue undelivered messages and
    /// resends them (called from the armed wait loop).
    void service_resends(cluster& c);

    /// (Re)builds the per-boundary fault-site labels, per-slab kill-switch
    /// labels, and the failure detector for `c`'s topology.  The label
    /// strings are stable for the cluster's lifetime — fault plans compare
    /// site strings by content, and the tracer requires outliving storage.
    void ensure_fabric(cluster& c);

    amt::runtime& rt_;
    partition_sizes parts_;
    exchange_mode mode_;
    std::chrono::milliseconds halo_timeout_{0};
    retry_policy retry_;
    std::vector<std::vector<kernels::dt_constraints>> partials_;

    /// Per-boundary fault-injection site labels, e.g. "halo_drop:corner_up:2"
    /// = drop the corner_up message of boundary 2 (see docs/resilience.md).
    struct halo_labels {
        std::string drop[num_halo_streams];
        std::string corrupt[num_halo_streams];
    };
    std::vector<halo_labels> labels_;
    std::vector<std::string> kill_labels_;  ///< "slab_kill:<s>" per slab
    std::shared_ptr<failure_detector> detector_;
    slab_failure last_failure_;
};

/// Iteration loop over a cluster, mirroring lulesh::run_simulation: shared
/// TimeIncrement (identical on every slab), then dist_driver::advance, until
/// stoptime or the cycle cap.  The reported final origin energy comes from
/// the slab owning the global origin element (slab 0).
run_result run_simulation(cluster& c, dist_driver& drv,
                          int max_cycles = std::numeric_limits<int>::max());

}  // namespace lulesh::dist
