// bench/hazard_overhead.cpp
//
// Measures the cost of the hazard tracker when disarmed — the price every
// production run pays for having the shadow-epoch instrumentation compiled
// in.  Three measurements:
//
//   (1) the raw per-probe cost of a disarmed touch() (a relaxed atomic load
//       + predictable branch, same as the fault probes),
//   (2) the cost of constructing/destructing a disarmed task_scope (one
//       load-and-branch, no allocation), and
//   (3) the task-graph iteration time and task count, giving the projected
//       per-iteration bill: every wave task opens one scope and the
//       instrumented kernels issue a handful of touches.
//
// The projected overhead must stay under 1% of an iteration — the
// disarmed-cost bar the hazard auditor promises.  The binary exits non-zero
// when the bound is violated, so it doubles as a regression test.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <thread>

#include "amt/hazard.hpp"
#include "bench_common.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

/// ns per disarmed touch(), averaged over a long loop.  The probe reads a
/// global atomic, so the compiler cannot hoist it out of the loop.
double touch_cost_ns(std::uint64_t iterations) {
    const auto t0 = clock_type::now();
    for (std::uint64_t i = 0; i < iterations; ++i) {
        amt::hazard::touch(0, true, 0, 1);
    }
    return seconds_since(t0) * 1e9 / static_cast<double>(iterations);
}

/// ns per disarmed task_scope open/close pair.
double scope_cost_ns(std::uint64_t iterations) {
    const amt::hazard::access_set decl;  // never consulted while disarmed
    const int key = 0;
    const auto t0 = clock_type::now();
    for (std::uint64_t i = 0; i < iterations; ++i) {
        amt::hazard::task_scope scope(&key, "bench", 0, &decl);
    }
    return seconds_since(t0) * 1e9 / static_cast<double>(iterations);
}

/// Upper bound on instrumentation points per task: one scope plus the
/// touch probes the busiest instrumented kernel issues (<= 6 today).
constexpr double touches_per_task = 6.0;

}  // namespace

int main() {
    if (!amt::hazard::compiled_in) {
        std::cout << "hazard probes compiled out (AMT_HAZARD_DISABLE); "
                     "overhead is exactly zero\n";
        return 0;
    }
    amt::hazard::disarm();

    // (1) + (2): raw disarmed probe costs.
    touch_cost_ns(1'000'000);  // warm-up
    const double ns_per_touch = touch_cost_ns(20'000'000);
    scope_cost_ns(1'000'000);  // warm-up
    const double ns_per_scope = scope_cost_ns(20'000'000);

    // (3) task-graph iteration time and task count.
    lulesh::options problem;
    problem.size = 16;
    problem.num_regions = 11;
    lulesh::domain dom(problem);
    amt::runtime rt(std::max(1u, std::thread::hardware_concurrency()));
    lulesh::taskgraph_driver drv(rt, {512, 512});

    constexpr int iters = 30;
    lulesh::run_simulation(dom, drv, iters);  // policy warm-up
    lulesh::domain dom2(problem);
    const auto t0 = clock_type::now();
    lulesh::run_simulation(dom2, drv, iters);
    const double ns_per_iter = seconds_since(t0) * 1e9 / iters;
    const auto tasks_per_iter =
        static_cast<double>(drv.tasks_last_iteration());

    const double ns_per_task = ns_per_scope + touches_per_task * ns_per_touch;
    const double overhead = tasks_per_iter * ns_per_task / ns_per_iter * 100.0;

    std::cout << std::fixed << std::setprecision(3)
              << "disarmed touch cost:      " << ns_per_touch << " ns\n"
              << "disarmed scope cost:      " << ns_per_scope << " ns\n"
              << "task-graph iteration:     " << ns_per_iter / 1e6 << " ms ("
              << tasks_per_iter << " tasks)\n"
              << "projected hazard overhead: " << std::setprecision(4)
              << overhead << " % of iteration time\n"
              << "CSV,hazard_overhead," << ns_per_touch << "," << ns_per_scope
              << "," << ns_per_iter / 1e6 << "," << tasks_per_iter << ","
              << overhead << "\n";

    bench::artifact art("hazard_overhead");
    art.set_config("size", problem.size);
    art.set_config("iters", iters);
    art.add_sample("ns_per_touch", ns_per_touch, "ns");
    art.add_sample("ns_per_scope", ns_per_scope, "ns");
    art.add_sample("disarmed_overhead_pct", overhead, "pct");
    art.write_file();

    if (!(overhead < 1.0)) {
        std::cerr << "FAIL: disarmed hazard-probe overhead " << overhead
                  << "% exceeds the 1% budget\n";
        return 1;
    }
    std::cout << "PASS: overhead within the 1% budget\n";
    return 0;
}
