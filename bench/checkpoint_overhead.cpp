// bench/checkpoint_overhead.cpp
//
// Measures what checkpointing at the harshest cadence — every cycle —
// actually costs on the task-graph driver, in three configurations:
//
//   plain : run_simulation, no resilience wrapper at all;
//   full  : run_resilient with checkpoint_every=1, rebase_every=1,
//           overlap_packing=false — a full serialization of every
//           checkpointed field sits on the critical path each cycle
//           (the naive stop-and-copy baseline);
//   incr  : run_resilient with checkpoint_every=1 and the defaults —
//           delta records covering only the model-derived write-sets,
//           packed by graph tasks overlapped with the next iteration's
//           compute.
//
// Both overheads (full vs plain, incr vs plain) are printed; the
// acceptance bar is that the incremental+overlapped configuration costs
// <5% of iteration time even at checkpoint-every-1.  The binary exits
// non-zero when the bar is missed, so it doubles as a regression test.

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "lulesh/resilient_run.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

constexpr int kCycles = 120;

lulesh::options problem() {
    lulesh::options o;
    o.size = 16;
    o.num_regions = 11;
    return o;
}

double run_once(amt::runtime& rt, const lulesh::resilience_options* opt) {
    lulesh::domain d(problem());
    lulesh::taskgraph_driver drv(rt, {512, 512});
    const auto t0 = clock_type::now();
    if (opt != nullptr) {
        lulesh::run_resilient(d, drv, *opt, kCycles);
    } else {
        lulesh::run_simulation(d, drv, kCycles);
    }
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

}  // namespace

int main() {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    amt::runtime rt(std::min(hw, 4u));

    lulesh::resilience_options full;
    full.checkpoint_every = 1;
    full.rebase_every = 1;        // every record is a full base snapshot
    full.overlap_packing = false; // packed synchronously, on the critical path

    lulesh::resilience_options incr;
    incr.checkpoint_every = 1;    // deltas + overlapped packing (defaults)

    // Warm-up: fault tables, allocator arenas, scheduler, recycled-buffer
    // pools — then interleaved trials.  The overhead of each configuration
    // is computed *within* a rep, against that same rep's plain run, so
    // slow machine drift (frequency scaling, CPU quota on a shared box)
    // cancels out; the configuration order rotates per rep so within-rep
    // position bias averages out too.  Checkpoint cost is strictly
    // additive, so noise can only inflate an overhead ratio — the minimum
    // over reps is the fairest estimate.
    run_once(rt, nullptr);
    run_once(rt, &full);
    run_once(rt, &incr);

    const lulesh::resilience_options* cfg[3] = {nullptr, &full, &incr};
    double t[3] = {0, 0, 0};           // latest rep's times, for the report
    double full_pct = 1e30, incr_pct = 1e30;
    double t_plain = 1e30, t_full = 1e30, t_incr = 1e30;
    for (int rep = 0; rep < 9; ++rep) {
        for (int k = 0; k < 3; ++k) {
            const int i = (rep + k) % 3;
            t[i] = run_once(rt, cfg[i]);
        }
        full_pct = std::min(full_pct, (t[1] - t[0]) / t[0] * 100.0);
        incr_pct = std::min(incr_pct, (t[2] - t[0]) / t[0] * 100.0);
        t_plain = std::min(t_plain, t[0]);
        t_full = std::min(t_full, t[1]);
        t_incr = std::min(t_incr, t[2]);
    }

    std::cout << std::fixed << std::setprecision(3)
              << "plain run:                    " << t_plain * 1e3 / kCycles
              << " ms/iter\n"
              << "full snapshot every cycle:    " << t_full * 1e3 / kCycles
              << " ms/iter  (+" << std::setprecision(2) << full_pct
              << " %)\n" << std::setprecision(3)
              << "incremental + overlapped:     " << t_incr * 1e3 / kCycles
              << " ms/iter  (+" << std::setprecision(2) << incr_pct
              << " %)\n"
              << "CSV,checkpoint_overhead," << std::setprecision(6)
              << t_plain * 1e3 / kCycles << "," << t_full * 1e3 / kCycles
              << "," << t_incr * 1e3 / kCycles << "," << full_pct << ","
              << incr_pct << "\n";

    bench::artifact art("checkpoint_overhead");
    art.set_config("size", problem().size);
    art.set_config("cycles", kCycles);
    art.add_sample("plain_ms_per_iter", t_plain * 1e3 / kCycles, "ms");
    art.add_sample("full_ms_per_iter", t_full * 1e3 / kCycles, "ms");
    art.add_sample("incr_ms_per_iter", t_incr * 1e3 / kCycles, "ms");
    art.add_sample("full_overhead_pct", full_pct, "pct");
    art.add_sample("incr_overhead_pct", incr_pct, "pct");
    art.write_file();

    if (!(incr_pct < 5.0)) {
        std::cerr << "FAIL: incremental checkpoint-every-1 overhead "
                  << incr_pct << "% exceeds the 5% budget\n";
        return 1;
    }
    std::cout << "PASS: incremental overhead within the 5% budget\n";
    return 0;
}
