// amt/scheduler.hpp
//
// The amt work-stealing task scheduler, modelled after HPX's default
// "priority local" scheduling policy (without priorities, which the paper
// explicitly does not use): every worker owns a private Chase-Lev deque and
// services it LIFO; idle workers steal FIFO from random victims, falling
// back to a global injection queue that receives tasks posted from
// non-worker threads.
//
// Lifetime model: a `runtime` is an ordinary object.  Constructing one
// registers it as the *active* runtime (an ambient pointer used by the free
// functions amt::async / amt::post); destroying it waits for the workers to
// drain and unregisters it.  Benchmarks that sweep thread counts simply
// construct one runtime per configuration.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "amt/atomic.hpp"
#include "amt/config.hpp"
#include "amt/counters.hpp"
#include "amt/deque.hpp"
#include "amt/task.hpp"

namespace amt {

struct runtime_options {
    /// Number of OS worker threads.  0 selects hardware_concurrency().
    std::size_t num_workers = 0;

    /// Record per-task productive time (needed for counters_snapshot::
    /// productive_ratio, i.e. the paper's Figure 11).  Costs two steady_clock
    /// reads per task; disable for task-spawn microbenchmarks.
    bool enable_timing = true;

    /// Rounds of (local pop + full steal sweep + global poll) an idle worker
    /// performs before parking on the wakeup condition variable.
    std::size_t spin_rounds_before_sleep = 64;

    /// Locality-domain width for hierarchical work stealing: workers are
    /// grouped into consecutive domains of this many workers, and an idle
    /// worker sweeps same-domain victims before falling back to a sweep of
    /// the remaining workers (the NUMA-aware victim policy of HPX-style
    /// runtimes, scaled down to one process).  0 = auto: domains of 4 when
    /// more than 4 workers exist, one flat domain otherwise.
    std::size_t steal_domain_size = 0;
};

/// Enumerates steal victims for a thief at `self` among `n` workers grouped
/// into consecutive locality domains of `domain_size`: every same-domain
/// victim first (one rotated sweep starting at `rot_same`), then every
/// worker outside the thief's domain (rotated by `rot_cross`).  `self >= n`
/// means an external thread: no home domain, everything is a cross-domain
/// victim.  `visit(victim, same_domain)` returns true to stop the sweep (a
/// steal succeeded).  Exposed as a pure function so the victim order is
/// unit-testable; allocation-free by construction.
template <class Visit>
void for_each_steal_victim(std::size_t self, std::size_t n,
                           std::size_t domain_size, std::uint64_t rot_same,
                           std::uint64_t rot_cross, Visit&& visit) {
    if (n <= 1) return;
    const std::size_t ds = domain_size == 0 ? n : domain_size;
    const std::size_t dom_begin = self < n ? (self / ds) * ds : n;
    const std::size_t dom_end =
        dom_begin + ds < n ? dom_begin + ds : n;
    const std::size_t dn = dom_end > dom_begin ? dom_end - dom_begin : 0;
    if (dn > 1) {
        const std::size_t start =
            dom_begin + static_cast<std::size_t>(rot_same % dn);
        for (std::size_t k = 0; k < dn; ++k) {
            std::size_t v = start + k;
            if (v >= dom_end) v -= dn;
            if (v == self) continue;
            if (visit(v, true)) return;
        }
    }
    const std::size_t cn = n - dn;
    if (cn == 0) return;
    // The cross-domain victims are [0, dom_begin) ++ [dom_end, n); index
    // that virtual sequence with a rotated counter.
    const std::size_t start = static_cast<std::size_t>(rot_cross % cn);
    for (std::size_t k = 0; k < cn; ++k) {
        std::size_t j = start + k;
        if (j >= cn) j -= cn;
        const std::size_t v = j < dom_begin ? j : j + dn;
        if (visit(v, false)) return;
    }
}

class runtime {
public:
    explicit runtime(runtime_options opts);
    explicit runtime(std::size_t num_workers)
        : runtime(runtime_options{.num_workers = num_workers}) {}
    runtime() : runtime(runtime_options{}) {}

    runtime(const runtime&) = delete;
    runtime& operator=(const runtime&) = delete;

    /// Blocks until all queued tasks have run, then joins the workers.
    ~runtime();

    /// Submits a task for asynchronous execution.  Callable from any thread.
    /// From a worker thread the task goes to that worker's own deque (the
    /// cheap, common path for continuations); otherwise to the global
    /// injection queue.
    void post(task_ptr t);

    /// Submits a task the scheduler does NOT own: it is executed but never
    /// deleted.  This is the replay fast path for compiled-graph nodes —
    /// recycled task objects whose storage belongs to their graph.  The
    /// caller must keep `t` alive until it has executed.  Allocation-free:
    /// from a worker thread the task lands in that worker's deque; from any
    /// other thread it is linked into the global injection queue through
    /// its intrusive `qnext` field.
    void post_raw(task_base* t);

    template <class F>
    void post_fn(F&& f) {
        post(make_task(std::forward<F>(f)));
    }

    [[nodiscard]] std::size_t num_workers() const noexcept {
        return workers_.size();
    }

    /// Resolved locality-domain width used for hierarchical stealing.
    [[nodiscard]] std::size_t steal_domain_size() const noexcept {
        return domain_size_;
    }

    /// True when the calling thread is one of this runtime's workers.
    [[nodiscard]] bool on_worker_thread() const noexcept;

    /// Executes at most one pending task on the calling thread.  Used by
    /// futures for cooperative waiting on worker threads.  Returns false if
    /// no runnable task was found.
    bool try_run_one();

    /// Aggregated counters since construction or the last reset_counters().
    [[nodiscard]] counters_snapshot snapshot_counters() const;
    void reset_counters();

    /// The most recently constructed, still-alive runtime, or nullptr.
    /// Free functions (amt::async etc.) target this runtime.
    static runtime* active() noexcept;

private:
    struct worker;

    void worker_loop(worker& self);
    task_base* find_work(worker& self);
    task_base* try_pop_global();
    /// Hierarchical steal sweep (same-domain victims first).  On success
    /// `same_domain_out` (when non-null) reports which tier the victim was
    /// found in, for the steals_same_domain / steals_cross_domain counters.
    task_base* try_steal(std::size_t self_index, std::uint64_t& rng_state,
                         bool* same_domain_out = nullptr);
    /// Runs one task.  `stamp` (optional, tracing only) carries the
    /// already-read task start time in and the task end time out, so the
    /// worker loop's gap spans and the task span share exact endpoints
    /// (no unattributed slivers between consecutive trace spans).
    void execute(task_base* raw, worker_counters& c,
                 clock::time_point* stamp = nullptr);
    void notify_workers();

    struct alignas(cache_line_size) worker {
        explicit worker(std::size_t idx) : index(idx) {}
        std::size_t index;
        ws_deque queue;
        worker_counters counters;
        std::uint64_t rng_state = 0;
        std::thread thread;
    };

    runtime_options opts_;
    std::vector<std::unique_ptr<worker>> workers_;
    std::size_t domain_size_ = 1;  ///< resolved steal_domain_size

    // Global injection queue for tasks posted from non-worker threads:
    // an intrusive FIFO linked through task_base::qnext, so posting
    // allocates nothing (a plain container would allocate bookkeeping
    // nodes and break the zero-allocation replay guarantee).
    std::mutex global_mu_;
    task_base* global_head_ = nullptr;
    task_base* global_tail_ = nullptr;

    // Wakeup machinery.  `epoch_` increments on every post; a worker that is
    // about to park re-checks the epoch it sampled before its final queue
    // probe, which closes the lost-wakeup window.
    std::mutex sleep_mu_;
    std::condition_variable sleep_cv_;
    std::uint64_t epoch_ = 0;
    amt::atomic<bool> shutdown_{false};

    // Counters not owned by a specific worker: tasks executed cooperatively
    // by external threads inside future waits.
    worker_counters external_counters_;
    std::mutex external_mu_;

    clock::time_point start_time_;

    static amt::atomic<runtime*> active_;
};

/// RAII helper: true while the calling thread is inside runtime::execute,
/// used to distinguish "worker executing a task" from "worker in scheduler
/// bookkeeping" for assertions and for nested-blocking decisions.
struct current_worker_info {
    runtime* rt = nullptr;
    std::size_t index = 0;
};

/// Worker context of the calling thread (nullptr runtime if not a worker).
const current_worker_info& current_worker() noexcept;

}  // namespace amt
