// lulesh/checkpoint.hpp
//
// Binary checkpoint/restart of the simulation state.  A checkpoint captures
// exactly the fields that carry state across leapfrog iterations
// (coordinates, velocities, EOS state, relative volumes, sound speed, and
// the time/cycle controls); everything else is per-iteration scratch that
// the next advance() recomputes.  Restarting from a checkpoint therefore
// continues **bitwise identically** to the uninterrupted run (covered by
// tests), for any driver.
//
// Format: a fixed little-endian header (magic, version, problem shape, and
// a CRC-32 over the payload) followed by raw IEEE-754 doubles.  Checkpoints
// are only loadable into a domain built with the same problem shape (size
// and slab extent); mismatches throw, and so does a payload whose bytes no
// longer match the stored checksum — a bit flipped on disk is reported as
// checkpoint_error instead of silently corrupting the restarted run.

#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "lulesh/domain.hpp"

namespace lulesh {

/// Thrown on malformed checkpoints or shape mismatches.
class checkpoint_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Writes the domain's simulation state to `out`.
void save_checkpoint(const domain& d, std::ostream& out);

/// Restores state saved by save_checkpoint into `d`, which must have been
/// constructed with the same problem shape.
void load_checkpoint(domain& d, std::istream& in);

/// File convenience wrappers; throw checkpoint_error on I/O failure.
/// save_checkpoint_file writes atomically (temp file, fsync, rename):
/// a crash leaves either the previous checkpoint or the new one intact.
/// load_checkpoint_file auto-detects the format by magic: a monolithic v2
/// checkpoint is loaded directly, a v3 incremental chain (see
/// lulesh/checkpoint_chain.hpp) is replayed base-plus-committed-deltas.
void save_checkpoint_file(const domain& d, const std::string& path);
void load_checkpoint_file(domain& d, const std::string& path);

}  // namespace lulesh
