#!/usr/bin/env python3
"""Diff two lulesh-bench-v1 artifacts and fail on perf regressions.

Every bench binary writes BENCH_<name>.json (see bench/bench_artifact.hpp):
named metrics with full sample lists plus min/median/mean/max summaries and
a direction ("lower" for durations, "higher" for speedups/ratios).  This
script compares two such artifacts metric-by-metric:

    python3 scripts/bench_compare.py old/BENCH_fig9.json new/BENCH_fig9.json

and exits non-zero when any shared metric moved in the WORSE direction by
more than the noise threshold (default 10%, override with --threshold 0.05).
Metrics present in only one artifact are reported but never fail the
comparison (sweep configurations legitimately change between builds).

The summary statistic defaults to the artifacts' own policy ("min", the
least-noise estimator once the warm-up rep has absorbed cold-start costs);
--summary median/mean/max selects another.

--self-test runs the comparator against the fixtures in
tests/fixtures/bench_compare/ and exits 0 only if improvements pass and the
injected regression is caught — the ctest under the "metrics" label.
"""

import argparse
import json
import os
import sys

DEFAULT_THRESHOLD = 0.10
SCHEMA = "lulesh-bench-v1"


def load_artifact(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA:
        raise SystemExit(
            f"bench_compare: {path}: schema {doc.get('schema')!r} "
            f"is not {SCHEMA!r}"
        )
    if not isinstance(doc.get("metrics"), dict):
        raise SystemExit(f"bench_compare: {path}: no metrics object")
    return doc


def compare(old, new, threshold, summary):
    """Returns (lines, regressions): a report and the failing metric names."""
    lines = []
    regressions = []
    old_metrics = old["metrics"]
    new_metrics = new["metrics"]
    shared = [k for k in old_metrics if k in new_metrics]
    for key in shared:
        om, nm = old_metrics[key], new_metrics[key]
        ov, nv = om[summary], nm[summary]
        direction = nm.get("direction", "lower")
        if ov == 0:
            delta = 0.0 if nv == 0 else float("inf")
        else:
            delta = (nv - ov) / abs(ov)
        worse = delta > threshold if direction == "lower" else -delta > threshold
        better = -delta > threshold if direction == "lower" else delta > threshold
        tag = "REGRESSION" if worse else ("improved" if better else "ok")
        lines.append(
            f"  {tag:<10} {key}: {ov:g} -> {nv:g} {nm.get('unit', '')} "
            f"({delta:+.1%}, {direction} is better)"
        )
        if worse:
            regressions.append(key)
    for key in old_metrics:
        if key not in new_metrics:
            lines.append(f"  only-old   {key} (not compared)")
    for key in new_metrics:
        if key not in old_metrics:
            lines.append(f"  only-new   {key} (not compared)")
    if not shared:
        lines.append("  (no shared metrics)")
    return lines, regressions


def run_compare(old_path, new_path, threshold, summary):
    old = load_artifact(old_path)
    new = load_artifact(new_path)
    if old.get("name") != new.get("name"):
        print(
            f"bench_compare: comparing different benches "
            f"({old.get('name')!r} vs {new.get('name')!r})",
            file=sys.stderr,
        )
    print(f"bench_compare: {old.get('name')} [{summary}, ±{threshold:.0%}]")
    lines, regressions = compare(old, new, threshold, summary)
    print("\n".join(lines))
    if regressions:
        print(
            f"FAIL: {len(regressions)} metric(s) regressed beyond "
            f"{threshold:.0%}: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print("PASS: no regression beyond the threshold")
    return 0


def self_test(fixtures_dir, threshold, summary):
    base = os.path.join(fixtures_dir, "baseline.json")
    improved = os.path.join(fixtures_dir, "improved.json")
    regressed = os.path.join(fixtures_dir, "regressed.json")
    failures = []

    print("== self-test: baseline vs baseline (expect pass) ==")
    if run_compare(base, base, threshold, summary) != 0:
        failures.append("identical artifacts flagged as regression")

    print("\n== self-test: baseline vs improved (expect pass) ==")
    if run_compare(base, improved, threshold, summary) != 0:
        failures.append("improvement flagged as regression")

    print("\n== self-test: baseline vs regressed (expect FAIL) ==")
    if run_compare(base, regressed, threshold, summary) == 0:
        failures.append("injected regression not caught")

    # The regressed fixture also degrades a "higher is better" metric, so a
    # comparator that only looks at "lower" metrics cannot pass.
    doc = load_artifact(regressed)
    directions = {m.get("direction") for m in doc["metrics"].values()}
    if "higher" not in directions:
        failures.append("regressed fixture lost its higher-is-better metric")

    print()
    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
        return 1
    print("SELF-TEST PASS")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old", nargs="?", help="baseline BENCH_<name>.json")
    ap.add_argument("new", nargs="?", help="candidate BENCH_<name>.json")
    ap.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative noise threshold (default 0.10 = 10%%)",
    )
    ap.add_argument(
        "--summary",
        choices=["min", "median", "mean", "max"],
        default="min",
        help="summary statistic to compare (default: min, per artifact policy)",
    )
    ap.add_argument(
        "--self-test",
        metavar="FIXTURES_DIR",
        help="run against the fixtures directory and verify the comparator "
        "itself (pass tests/fixtures/bench_compare)",
    )
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test(args.self_test, args.threshold, args.summary))
    if not args.old or not args.new:
        ap.error("old and new artifact paths are required (or --self-test)")
    sys.exit(run_compare(args.old, args.new, args.threshold, args.summary))


if __name__ == "__main__":
    main()
