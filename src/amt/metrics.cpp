// amt/metrics.cpp — registry storage, aggregation, export writers and the
// interval reporter.  The hot paths live in the header; everything here is
// cold (registration, collect, I/O).

#include "amt/metrics.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "amt/counters.hpp"

namespace amt::metrics {

namespace detail {
amt::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

enum class kind { counter, gauge, histogram };

struct entry {
    const char* name;
    const char* help;
    kind k;
    counter* c = nullptr;
    gauge* g = nullptr;
    histogram* h = nullptr;
};

/// Registry storage: deques give stable element addresses across growth, so
/// the references handed out by get_* never move.  Registration is
/// mutex-guarded and rare (call sites cache the reference in a function
/// local static); collect() copies the entry table under the lock and reads
/// shards outside it.
struct registry_state {
    amt::mutex mu;
    std::deque<counter> counters;
    std::deque<gauge> gauges;
    std::deque<histogram> histograms;
    std::vector<entry> entries;
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
};

registry_state& state() {
    static registry_state s;
    return s;
}

entry* find(registry_state& s, const char* name) {
    for (auto& e : s.entries) {
        if (std::strcmp(e.name, name) == 0) return &e;
    }
    return nullptr;
}

[[noreturn]] void kind_clash(const char* name) {
    throw std::logic_error(std::string("amt::metrics: metric '") + name +
                           "' re-registered with a different kind");
}

/// Arm at process start when AMT_METRICS is set (mirrors AMT_TRACE).
[[maybe_unused]] const bool g_env_armed = [] {
    const char* v = std::getenv("AMT_METRICS");
    if (v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0) {
        arm();
        return true;
    }
    return false;
}();

void json_escape(std::ostream& os, const char* s) {
    for (; *s != '\0'; ++s) {
        const char c = *s;
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
}

}  // namespace

counter& get_counter(const char* name, const char* help) {
    auto& s = state();
    std::lock_guard<amt::mutex> lk(s.mu);
    if (entry* e = find(s, name)) {
        if (e->k != kind::counter) kind_clash(name);
        return *e->c;
    }
    s.counters.emplace_back();
    s.entries.push_back({name, help, kind::counter, &s.counters.back(),
                         nullptr, nullptr});
    return s.counters.back();
}

gauge& get_gauge(const char* name, const char* help) {
    auto& s = state();
    std::lock_guard<amt::mutex> lk(s.mu);
    if (entry* e = find(s, name)) {
        if (e->k != kind::gauge) kind_clash(name);
        return *e->g;
    }
    s.gauges.emplace_back();
    s.entries.push_back({name, help, kind::gauge, nullptr, &s.gauges.back(),
                         nullptr});
    return s.gauges.back();
}

histogram& get_histogram(const char* name, const char* help) {
    auto& s = state();
    std::lock_guard<amt::mutex> lk(s.mu);
    if (entry* e = find(s, name)) {
        if (e->k != kind::histogram) kind_clash(name);
        return *e->h;
    }
    s.histograms.emplace_back();
    s.entries.push_back({name, help, kind::histogram, nullptr, nullptr,
                         &s.histograms.back()});
    return s.histograms.back();
}

void arm() { detail::g_armed.store(true, amt::memory_order_relaxed); }
void disarm() { detail::g_armed.store(false, amt::memory_order_relaxed); }
bool armed() noexcept {
    return detail::g_armed.load(amt::memory_order_relaxed);
}

void reset() {
    auto& s = state();
    std::lock_guard<amt::mutex> lk(s.mu);
    for (auto& e : s.entries) {
        switch (e.k) {
            case kind::counter: e.c->reset(); break;
            case kind::gauge: e.g->reset(); break;
            case kind::histogram: e.h->reset(); break;
        }
    }
}

std::uint64_t histogram_value::quantile_bound(double q) const {
    if (count == 0) return 0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count) + 0.5);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        seen += buckets[b];
        if (seen >= target) {
            return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
        }
    }
    return (std::uint64_t{1} << (num_buckets - 1)) - 1;
}

snapshot collect() {
    auto& s = state();
    std::vector<entry> entries;
    std::chrono::steady_clock::time_point epoch;
    {
        std::lock_guard<amt::mutex> lk(s.mu);
        entries = s.entries;
        epoch = s.epoch;
    }

    snapshot out;
    out.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
    out.uptime_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - epoch)
                        .count();

    for (const auto& e : entries) {
        switch (e.k) {
            case kind::counter:
                out.counters.push_back({e.name, e.help, e.c->value()});
                break;
            case kind::gauge:
                out.gauges.push_back({e.name, e.help, e.g->value()});
                break;
            case kind::histogram: {
                histogram_value hv{e.name, e.help, 0, 0,
                                   std::vector<std::uint64_t>(num_buckets, 0)};
                for (std::size_t b = 0; b < num_buckets; ++b) {
                    hv.buckets[b] = e.h->bucket_count(b);
                    hv.count += hv.buckets[b];
                }
                hv.sum = e.h->sum();
                out.histograms.push_back(std::move(hv));
                break;
            }
        }
    }

    // Bridge the process-wide resilience block so one scrape sees both
    // planes; kept as plain counters under a reserved prefix.
    const auto& r = amt::resilience();
    const std::pair<const char*, std::uint64_t> bridged[] = {
        {"amt_resilience_halo_crc_failures", r.halo_crc_failures.load()},
        {"amt_resilience_halo_retries", r.halo_retries.load()},
        {"amt_resilience_halo_resends", r.halo_resends.load()},
        {"amt_resilience_halo_drops", r.halo_drops.load()},
        {"amt_resilience_heartbeats", r.heartbeats.load()},
        {"amt_resilience_slab_deaths", r.slab_deaths.load()},
        {"amt_resilience_recoveries", r.recoveries.load()},
        {"amt_resilience_entry_fallbacks", r.entry_fallbacks.load()},
    };
    for (const auto& [name, v] : bridged) {
        out.counters.push_back({name, "amt::resilience() bridge", v});
    }
    return out;
}

void write_json(std::ostream& os, const snapshot& s) {
    os << "{\"ts_ms\":" << s.wall_ms << ",\"uptime_ns\":" << s.uptime_ns;
    os << ",\"counters\":{";
    bool first = true;
    for (const auto& c : s.counters) {
        if (!first) os << ',';
        first = false;
        os << '"';
        json_escape(os, c.name);
        os << "\":" << c.value;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& g : s.gauges) {
        if (!first) os << ',';
        first = false;
        os << '"';
        json_escape(os, g.name);
        os << "\":" << g.value;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& h : s.histograms) {
        if (!first) os << ',';
        first = false;
        os << '"';
        json_escape(os, h.name);
        os << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
           << ",\"buckets\":[";
        // Trailing zero buckets are elided; consumers pad to num_buckets.
        std::size_t last = h.buckets.size();
        while (last > 0 && h.buckets[last - 1] == 0) --last;
        for (std::size_t b = 0; b < last; ++b) {
            if (b != 0) os << ',';
            os << h.buckets[b];
        }
        os << "]}";
    }
    os << "}}";
}

void write_prometheus(std::ostream& os, const snapshot& s) {
    for (const auto& c : s.counters) {
        if (c.help[0] != '\0') {
            os << "# HELP " << c.name << ' ' << c.help << '\n';
        }
        os << "# TYPE " << c.name << " counter\n";
        os << c.name << ' ' << c.value << '\n';
    }
    for (const auto& g : s.gauges) {
        if (g.help[0] != '\0') {
            os << "# HELP " << g.name << ' ' << g.help << '\n';
        }
        os << "# TYPE " << g.name << " gauge\n";
        os << g.name << ' ' << g.value << '\n';
    }
    for (const auto& h : s.histograms) {
        if (h.help[0] != '\0') {
            os << "# HELP " << h.name << ' ' << h.help << '\n';
        }
        os << "# TYPE " << h.name << " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            cum += h.buckets[b];
            // Bucket b holds values < 2^b; emit only buckets in use plus
            // the mandatory +Inf.
            if (h.buckets[b] == 0 && b != 0) continue;
            os << h.name << "_bucket{le=\"" << (std::uint64_t{1} << b)
               << "\"} " << cum << '\n';
        }
        os << h.name << "_bucket{le=\"+Inf\"} " << h.count << '\n';
        os << h.name << "_sum " << h.sum << '\n';
        os << h.name << "_count " << h.count << '\n';
    }
}

// ---- reporter ------------------------------------------------------------

reporter::reporter(options opts) : opts_(std::move(opts)) {
    const auto& p = opts_.path;
    prometheus_ = p.size() >= 5 && p.compare(p.size() - 5, 5, ".prom") == 0;
    if (!prometheus_) {
        // JSON lines accumulate across the run; start from a clean file so
        // the artifact describes exactly this process.
        std::ofstream truncate(p, std::ios::trunc);
        ok_ = static_cast<bool>(truncate);
    }
    arm();
    thread_ = std::thread([this] { run(); });
}

reporter::~reporter() { stop(); }

bool reporter::stop() {
    if (!stopped_) {
        {
            std::lock_guard<amt::mutex> lk(mu_);
            quit_ = true;
        }
        cv_.notify_all();
        thread_.join();
        if (!write_once()) ok_ = false;
        stopped_ = true;
    }
    return ok_;
}

void reporter::run() {
    std::unique_lock<amt::mutex> lk(mu_);
    while (!quit_) {
        if (cv_.wait_for(lk, opts_.interval, [this] { return quit_; })) {
            break;
        }
        lk.unlock();
        if (!write_once()) ok_ = false;
        lk.lock();
    }
}

bool reporter::write_once() {
    const snapshot s = collect();
    std::ofstream os(opts_.path, prometheus_
                                     ? std::ios::trunc
                                     : (std::ios::app | std::ios::ate));
    if (!os) return false;
    if (prometheus_) {
        write_prometheus(os, s);
    } else {
        write_json(os, s);
        os << '\n';
    }
    os.flush();
    if (os) ++written_;
    return static_cast<bool>(os);
}

}  // namespace amt::metrics
