// Unit and stress tests for the Chase-Lev work-stealing deque.

#include "amt/deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "amt/task.hpp"

namespace {

using amt::make_task;
using amt::task_base;
using amt::ws_deque;

// A task that records its own identity into a sink when executed.
amt::task_ptr id_task(int id, std::vector<int>& sink) {
    return make_task([id, &sink] { sink.push_back(id); });
}

TEST(WsDeque, StartsEmpty) {
    ws_deque d;
    EXPECT_EQ(d.pop(), nullptr);
    EXPECT_EQ(d.steal(), nullptr);
    EXPECT_TRUE(d.empty_approx());
}

TEST(WsDeque, PushPopIsLifo) {
    ws_deque d;
    std::vector<int> sink;
    d.push(id_task(1, sink).release());
    d.push(id_task(2, sink).release());
    d.push(id_task(3, sink).release());

    for (int i = 0; i < 3; ++i) {
        amt::task_ptr t(d.pop());
        ASSERT_NE(t, nullptr);
        t->execute();
    }
    EXPECT_EQ(sink, (std::vector<int>{3, 2, 1}));
    EXPECT_EQ(d.pop(), nullptr);
}

TEST(WsDeque, StealIsFifo) {
    ws_deque d;
    std::vector<int> sink;
    d.push(id_task(1, sink).release());
    d.push(id_task(2, sink).release());
    d.push(id_task(3, sink).release());

    for (int i = 0; i < 3; ++i) {
        amt::task_ptr t(d.steal());
        ASSERT_NE(t, nullptr);
        t->execute();
    }
    EXPECT_EQ(sink, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(d.steal(), nullptr);
}

TEST(WsDeque, SizeApproxTracksQuiescentSize) {
    ws_deque d;
    std::vector<int> sink;
    EXPECT_EQ(d.size_approx(), 0u);
    d.push(id_task(1, sink).release());
    d.push(id_task(2, sink).release());
    EXPECT_EQ(d.size_approx(), 2u);
    delete d.pop();
    EXPECT_EQ(d.size_approx(), 1u);
}

TEST(WsDeque, GrowsPastInitialCapacity) {
    ws_deque d(4);  // tiny initial ring to force several growth steps
    std::vector<int> sink;
    constexpr int n = 1000;
    for (int i = 0; i < n; ++i) d.push(id_task(i, sink).release());
    EXPECT_EQ(d.size_approx(), static_cast<std::size_t>(n));

    // Steal drains oldest-first: ids must come out 0..n-1.
    for (int i = 0; i < n; ++i) {
        amt::task_ptr t(d.steal());
        ASSERT_NE(t, nullptr);
        t->execute();
    }
    EXPECT_EQ(static_cast<int>(sink.size()), n);
    for (int i = 0; i < n; ++i) EXPECT_EQ(sink[static_cast<std::size_t>(i)], i);
}

TEST(WsDeque, InterleavedPushPopKeepsAllElements) {
    ws_deque d(8);
    std::vector<int> sink;
    int executed = 0;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 7; ++i) d.push(id_task(round * 7 + i, sink).release());
        for (int i = 0; i < 5; ++i) {
            amt::task_ptr t(d.pop());
            ASSERT_NE(t, nullptr);
            t->execute();
            ++executed;
        }
    }
    while (amt::task_ptr t = amt::task_ptr(d.pop())) {
        t->execute();
        ++executed;
    }
    EXPECT_EQ(executed, 50 * 7);
}

TEST(WsDeque, DestructorDrainsUnexecutedTasks) {
    // Tasks capture a shared counter; destroying a non-empty deque must
    // release the task objects (no leak under ASan).
    auto alive = std::make_shared<std::atomic<int>>(0);
    {
        ws_deque d;
        for (int i = 0; i < 10; ++i) {
            d.push(make_task([alive] { alive->fetch_add(1); }).release());
        }
    }
    EXPECT_EQ(alive->load(), 0);  // never executed, but freed
    EXPECT_EQ(alive.use_count(), 1);
}

// --- concurrency stress -----------------------------------------------

// One owner pushes/pops while several thieves steal; every task must execute
// exactly once across all participants.
TEST(WsDequeStress, OwnerAndThievesExecuteEachTaskExactlyOnce) {
    constexpr int num_tasks = 20000;
    constexpr int num_thieves = 3;

    ws_deque d(16);
    std::atomic<int> executed{0};
    std::atomic<bool> done{false};

    std::vector<std::thread> thieves;
    thieves.reserve(num_thieves);
    for (int t = 0; t < num_thieves; ++t) {
        thieves.emplace_back([&] {
            while (!done.load(std::memory_order_acquire)) {
                if (task_base* raw = d.steal()) {
                    amt::task_ptr task(raw);
                    task->execute();
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }

    // Owner: pushes in bursts and pops in between.
    int pushed = 0;
    while (pushed < num_tasks) {
        const int burst = std::min(64, num_tasks - pushed);
        for (int i = 0; i < burst; ++i) {
            d.push(make_task([&executed] {
                       executed.fetch_add(1, std::memory_order_relaxed);
                   }).release());
            ++pushed;
        }
        for (int i = 0; i < burst / 2; ++i) {
            if (task_base* raw = d.pop()) {
                amt::task_ptr task(raw);
                task->execute();
            }
        }
    }
    // Owner drains the rest.
    while (task_base* raw = d.pop()) {
        amt::task_ptr task(raw);
        task->execute();
    }
    // Let thieves finish any task they already grabbed.
    while (executed.load(std::memory_order_acquire) < num_tasks) {
        std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
    for (auto& th : thieves) th.join();

    EXPECT_EQ(executed.load(), num_tasks);
    EXPECT_EQ(d.pop(), nullptr);
    EXPECT_EQ(d.steal(), nullptr);
}

// Thieves-only drain: checks the steal CAS protocol under contention and that
// no element is lost or duplicated (ids recorded per thief, then merged).
TEST(WsDequeStress, ConcurrentStealsSeeDisjointTasks) {
    constexpr int num_tasks = 10000;
    constexpr int num_thieves = 4;

    ws_deque d(16);
    std::vector<std::vector<int>> per_thief(num_thieves);
    std::atomic<int> remaining{num_tasks};

    for (int i = 0; i < num_tasks; ++i) {
        // The captured id is recorded by whichever thief executes the task;
        // sink selection happens at execution time via thread-local index.
        d.push(make_task([i, &remaining] {
                   (void)i;
                   remaining.fetch_sub(1, std::memory_order_relaxed);
               }).release());
    }

    std::vector<std::thread> thieves;
    std::atomic<int> total_steals{0};
    for (int t = 0; t < num_thieves; ++t) {
        thieves.emplace_back([&, t] {
            int my_steals = 0;
            while (remaining.load(std::memory_order_acquire) > 0) {
                if (task_base* raw = d.steal()) {
                    amt::task_ptr task(raw);
                    task->execute();
                    ++my_steals;
                } else if (d.empty_approx()) {
                    break;
                }
            }
            per_thief[static_cast<std::size_t>(t)].push_back(my_steals);
            total_steals.fetch_add(my_steals);
        });
    }
    for (auto& th : thieves) th.join();

    EXPECT_EQ(remaining.load(), 0);
    EXPECT_EQ(total_steals.load(), num_tasks);
}

}  // namespace
