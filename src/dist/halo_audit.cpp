// dist/halo_audit.cpp — slab model construction for the halo-exchange
// audit.  See halo_audit.hpp for the task/edge semantics.

#include "dist/halo_audit.hpp"

#include <algorithm>
#include <sstream>

namespace lulesh::dist {

namespace {

using graph::access;
using graph::closure;
using graph::graph_model;
using graph::mode;
using graph::task_decl;

namespace halo_site {
inline constexpr const char* pack_corner = "halo.pack_corner";
inline constexpr const char* unpack_corner = "halo.unpack_corner";
inline constexpr const char* pack_delv = "halo.pack_delv";
inline constexpr const char* unpack_delv = "halo.unpack_delv";
}  // namespace halo_site

/// The six corner-force arrays over elements [lo, hi) (pack reads the
/// owned boundary plane; unpack writes the ghost plane).
std::vector<access> corner_plane_accesses(index_t lo, index_t hi, mode m) {
    return {
        {field::fx_elem, m, lo, hi},    {field::fy_elem, m, lo, hi},
        {field::fz_elem, m, lo, hi},    {field::fx_elem_hg, m, lo, hi},
        {field::fy_elem_hg, m, lo, hi}, {field::fz_elem_hg, m, lo, hi},
    };
}

std::vector<access> delv_plane_accesses(index_t lo, index_t hi, mode m) {
    return {{field::delv_zeta, m, lo, hi}};
}

/// Task ids of stage `stage` whose primary element range intersects
/// [lo, hi) and whose site matches `prefix` — the tasks that produce the
/// plane a pack task reads, i.e. the orderings spawn_staged's plane gating
/// guarantees before a send fires.
std::vector<int> producers_of(const graph_model& m, int stage,
                              const char* prefix, index_t lo, index_t hi) {
    std::vector<int> deps;
    const std::string want(prefix);
    for (std::size_t t = 0; t < m.tasks.size(); ++t) {
        const task_decl& td = m.tasks[t];
        if (td.stage != stage) continue;
        if (std::string(td.site).rfind(want, 0) != 0) continue;
        if (td.lo < hi && lo < td.hi) deps.push_back(static_cast<int>(t));
    }
    return deps;
}

}  // namespace

graph_model build_slab_model(const domain& d, partition_sizes parts) {
    graph_model m = graph::build_iteration_model(d, parts);
    const index_t ep = d.elems_per_plane();

    auto add = [&m](const char* site, index_t partition, index_t lo,
                    index_t hi, int stage, std::vector<access> accs,
                    std::vector<int> deps = {}) {
        m.tasks.push_back({site, partition, lo, hi, stage, std::move(accs),
                           std::move(deps)});
    };

    // Boundary descriptors: partition 0 = lower neighbor, 1 = upper.
    struct boundary {
        index_t ordinal;
        index_t plane_base;  ///< owned plane sent to the neighbor
        index_t ghost_slot;  ///< ghost plane received from the neighbor
    };
    std::vector<boundary> bounds;
    if (d.has_lower_neighbor()) {
        bounds.push_back({0, d.bottom_plane_elem_base(),
                          d.ghost_lower_slot()});
    }
    if (d.has_upper_neighbor()) {
        bounds.push_back({1, d.top_plane_elem_base(), d.ghost_upper_slot()});
    }

    for (const boundary& b : bounds) {
        // Stage 0: corner-force exchange feeding the node gather of wave 2.
        add(halo_site::pack_corner, b.ordinal, b.plane_base, b.plane_base + ep,
            0, corner_plane_accesses(b.plane_base, b.plane_base + ep,
                                     mode::read),
            producers_of(m, 0, "force.", b.plane_base, b.plane_base + ep));
        add(halo_site::unpack_corner, b.ordinal, b.ghost_slot,
            b.ghost_slot + ep,
            0, corner_plane_accesses(b.ghost_slot, b.ghost_slot + ep,
                                     mode::write));

        // Stage 2: delv_zeta exchange feeding the monotonic-Q stencil of
        // wave 4 (stage 3 reads the ghosts through face_neighbors).
        add(halo_site::pack_delv, b.ordinal, b.plane_base, b.plane_base + ep,
            2, delv_plane_accesses(b.plane_base, b.plane_base + ep,
                                   mode::read),
            producers_of(m, 2, "elem", b.plane_base, b.plane_base + ep));
        add(halo_site::unpack_delv, b.ordinal, b.ghost_slot, b.ghost_slot + ep,
            2, delv_plane_accesses(b.ghost_slot, b.ghost_slot + ep,
                                   mode::write));
    }
    return m;
}

std::vector<slab_audit> audit_cluster(const cluster& c,
                                      partition_sizes parts) {
    std::vector<slab_audit> audits;
    audits.reserve(static_cast<std::size_t>(c.num_slabs()));
    for (index_t s = 0; s < c.num_slabs(); ++s) {
        const domain& d = c.slab(s);
        slab_audit a;
        a.slab = s;
        a.model = build_slab_model(d, parts);
        a.result = graph::audit_graph(a.model, d);
        audits.push_back(std::move(a));
    }
    return audits;
}

bool cluster_audit_ok(const std::vector<slab_audit>& audits) {
    return std::all_of(audits.begin(), audits.end(),
                       [](const slab_audit& a) { return a.result.ok(); });
}

std::string format_cluster_audit(const std::vector<slab_audit>& audits) {
    std::ostringstream os;
    for (const slab_audit& a : audits) {
        os << "slab " << a.slab << ": "
           << graph::format_audit(a.result, a.model);
    }
    return os.str();
}

}  // namespace lulesh::dist
