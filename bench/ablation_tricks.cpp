// bench/ablation_tricks.cpp
//
// Ablation over the paper's optimization tricks (Section IV):
//
//   serial           — no parallel runtime at all (cost floor reference)
//   parallel_for     — the OpenMP-reference structure (static chunks, a
//                      barrier after every loop)
//   foreach          — trick "none": the naive 1:1 hpx::for_each port of the
//                      related work [16]; task creation per loop plus a
//                      barrier per loop.  The paper reports this loses to
//                      OpenMP — this target reproduces that observation.
//   taskgraph-fine   — all tricks, deliberately too-small partitions
//   taskgraph-tuned  — all tricks, Table I partitions (the paper's config)
//   taskgraph-coarse — all tricks but one task per wave (partition = ∞),
//                      isolating the value of partitioning (T1): no
//                      intra-wave parallelism remains.

#include "bench_common.hpp"

int main(int argc, char** argv) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    bench::sweep_options sweep = bench::parse_sweep(
        argc, argv,
        {.sizes = {12},
         .threads = {static_cast<int>(std::min(4u, hw * 2))},
         .regions = {11},
         .iters = 30,
         .reps = 3});
    const int threads = sweep.threads.front();

    std::cout << "=== Ablation: the paper's tricks, one at a time ===\n"
              << "threads: " << threads << ", iterations: " << sweep.iters
              << "\n\n";

    bench::artifact art("ablation");
    art.set_config("sizes", bench::join_ints(sweep.sizes));
    art.set_config("threads", threads);
    art.set_config("iters", sweep.iters);
    art.set_config("reps", sweep.reps);

    std::vector<std::string> csv;
    for (int size : sweep.sizes) {
        lulesh::options problem;
        problem.size = static_cast<lulesh::index_t>(size);
        problem.num_regions = 11;
        const auto tuned = bench::tuned_parts(size);
        const lulesh::index_t inf = 1 << 30;

        struct config {
            const char* label;
            const char* slug;  // artifact metric key segment
            const char* driver;
            lulesh::partition_sizes parts;
        };
        const config configs[] = {
            {"serial", "serial", "serial", tuned},
            {"parallel_for (omp-style)", "parallel_for", "parallel_for",
             tuned},
            {"foreach (naive port)", "foreach", "foreach", tuned},
            {"taskgraph fine (P=32)", "taskgraph_fine", "taskgraph", {32, 32}},
            {"taskgraph tuned (Table I)", "taskgraph_tuned", "taskgraph",
             tuned},
            {"taskgraph coarse (P=inf)", "taskgraph_coarse", "taskgraph",
             {inf, inf}},
        };

        std::cout << "size " << size << ":\n";
        double serial_seconds = 0.0;
        for (const auto& cfg : configs) {
            const auto reps = bench::run_config_reps(
                problem, cfg.driver, static_cast<std::size_t>(threads),
                cfg.parts, sweep.iters, sweep.reps);
            const auto m = reps.median();
            art.add_seconds(bench::metric_key(std::string("seconds/") +
                                                  cfg.slug,
                                              {{"s", size}}),
                            reps);
            if (cfg.driver == std::string("serial")) serial_seconds = m.seconds;
            std::cout << "  " << std::left << std::setw(28) << cfg.label
                      << std::setprecision(4) << std::setw(11) << m.seconds
                      << "s";
            if (serial_seconds > 0.0) {
                std::cout << "  (" << std::setprecision(3)
                          << serial_seconds / m.seconds << "x vs serial)";
            }
            if (m.tasks_per_iteration != 0) {
                std::cout << "  [" << m.tasks_per_iteration << " tasks/iter]";
            }
            std::cout << "\n";
            std::ostringstream row;
            row << "CSV,ablation," << size << "," << cfg.label << ","
                << m.seconds;
            csv.push_back(row.str());
        }
        std::cout << "\n";
    }
    std::cout << "# size,config,seconds\n";
    for (const auto& row : csv) std::cout << row << "\n";
    art.write_file();
    return 0;
}
