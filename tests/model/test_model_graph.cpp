// static_graph arm/replay dependency-count handoff litmuses.  The engine
// (amt/static_graph.cpp) hangs its whole replay design on two orderings:
//
//   * successor handoff — predecessors finish, each does
//     remaining.fetch_sub(1, acq_rel); whoever hits 1 posts the node and
//     must observe every predecessor's writes;
//   * re-arm publication — arm() rewrites every node's remaining with
//     relaxed stores and publishes them with one release store to
//     pending_, paired with the workers' acq_rel decrements.
//
// These litmuses mirror exactly those protocols on the shim types the
// engine itself uses, then break each ordering to prove the checker sees
// why the comments in static_graph.cpp say what they say.

#include <gtest/gtest.h>

#include "amt/atomic.hpp"
#include "amt/model.hpp"

namespace {

using amt::model::check;
using amt::model::model_assert;
using amt::model::options;
using amt::model::result;

// Two predecessors, one successor with remaining=2.  Each predecessor
// writes its output (relaxed, like task bodies writing mesh fields) then
// decrements.  Exactly one decrementer observes 1, and that winner must
// see BOTH outputs — the acq_rel pairing on `remaining` is what carries
// the sibling predecessor's writes.
result run_handoff(amt::memory_order dec_mo, const options& o) {
    return check(o, [=] {
        amt::atomic<int> out_a{0};
        amt::atomic<int> out_b{0};
        amt::atomic<int> remaining{2};
        int posted = 0;
        auto finish = [&](amt::atomic<int>& my_out) {
            my_out.store(1, amt::memory_order_relaxed);
            if (remaining.fetch_sub(1, dec_mo) == 1) {
                // Successor "runs here": dependency handoff must make
                // every predecessor's output visible.
                model_assert(out_a.load(amt::memory_order_relaxed) == 1 &&
                                 out_b.load(amt::memory_order_relaxed) == 1,
                             "handoff: successor ran before a predecessor's "
                             "writes were visible");
                ++posted;
            }
        };
        amt::model::thread worker([&] { finish(out_a); });
        finish(out_b);
        worker.join();
        model_assert(posted == 1, "handoff: node posted zero or two times");
    });
}

TEST(ModelGraph, AcqRelHandoffPostsOnceWithAllWritesVisible) {
    options o;
    o.quiet = true;
    const result r = run_handoff(amt::memory_order_acq_rel, o);
    EXPECT_FALSE(r.failed) << r.reason << "\n" << r.trace;
    EXPECT_TRUE(r.complete);
}

TEST(ModelGraph, RelaxedHandoffLeaksStalePredecessorWrites) {
    options o;
    o.quiet = true;
    const result r = run_handoff(amt::memory_order_relaxed, o);
    ASSERT_TRUE(r.failed)
        << "relaxed decrements must allow a stale predecessor read";
    EXPECT_NE(r.reason.find("handoff"), std::string::npos) << r.reason;
    EXPECT_FALSE(r.replay.empty());
}

// arm()'s publication shape: relaxed per-node re-arm stores, one release
// store to pending_, worker completes with an acq_rel decrement and — on
// hitting zero — must observe the re-armed values, not last replay's.
result run_rearm(amt::memory_order publish_mo, const options& o) {
    return check(o, [=] {
        amt::atomic<int> node_remaining{0};  // "stale from last replay"
        amt::atomic<std::size_t> pending{0};
        bool worker_saw_rearm = false;
        amt::model::thread worker([&] {
            // Worker spins on the armed graph appearing (bounded: the
            // model explores both orders; 0 means arm not published yet).
            if (pending.load(amt::memory_order_acquire) == 1) {
                if (pending.fetch_sub(1, amt::memory_order_acq_rel) == 1) {
                    worker_saw_rearm =
                        node_remaining.load(amt::memory_order_relaxed) == 7;
                }
            }
        });
        node_remaining.store(7, amt::memory_order_relaxed);  // re-arm write
        pending.store(1, publish_mo);                        // publication
        worker.join();
        // Only constraint: IF the worker consumed the publication, the
        // re-arm write must have been visible.
        model_assert(!(pending.load(amt::memory_order_relaxed) == 0 &&
                       !worker_saw_rearm),
                     "re-arm: worker consumed pending_ but saw last "
                     "replay's node state");
    });
}

TEST(ModelGraph, ReleasePublicationCarriesRearmWrites) {
    options o;
    o.quiet = true;
    const result r = run_rearm(amt::memory_order_release, o);
    EXPECT_FALSE(r.failed) << r.reason << "\n" << r.trace;
    EXPECT_TRUE(r.complete);
}

TEST(ModelGraph, RelaxedPublicationIsCaught) {
    options o;
    o.quiet = true;
    const result r = run_rearm(amt::memory_order_relaxed, o);
    ASSERT_TRUE(r.failed)
        << "relaxed pending_ store must leak stale node state";
    EXPECT_NE(r.reason.find("re-arm"), std::string::npos) << r.reason;
}

// The error path: record_error stores stop_ with release before the next
// node's execute() acquires it.  If a body observes stop_ set, the first
// error must already be visible (mirrored here with a relaxed error word
// standing in for the err_mu_-guarded exception slot).
TEST(ModelGraph, StopFlagReleaseAcquirePairsWithErrorRecord) {
    options o;
    o.quiet = true;
    const result r = check(o, [] {
        amt::atomic<int> error_word{0};
        amt::atomic<bool> stop{false};
        amt::model::thread failing([&] {
            error_word.store(42, amt::memory_order_relaxed);
            stop.store(true, amt::memory_order_release);
        });
        if (stop.load(amt::memory_order_acquire)) {
            model_assert(error_word.load(amt::memory_order_relaxed) == 42,
                         "stop observed before its error was recorded");
        }
        failing.join();
    });
    EXPECT_FALSE(r.failed) << r.reason << "\n" << r.trace;
    EXPECT_TRUE(r.complete);
}

}  // namespace
