// lulesh/options.cpp — command-line parsing for the examples and benchmark
// executables, following the reference binary's flag names.

#include "lulesh/options.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace lulesh {

namespace {

long parse_long(const std::string& flag, const char* text) {
    char* end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0') {
        throw std::invalid_argument("lulesh: flag " + flag +
                                    " expects an integer, got '" + text + "'");
    }
    return v;
}

const char* require_value(const std::string& flag, int argc,
                          const char* const* argv, int& i) {
    if (i + 1 >= argc) {
        throw std::invalid_argument("lulesh: flag " + flag +
                                    " requires a value");
    }
    return argv[++i];
}

}  // namespace

cli_options parse_cli(int argc, const char* const* argv) {
    return parse_cli(argc, argv,
                     [](const char* name) -> const char* {
                         return std::getenv(name);
                     });
}

cli_options parse_cli(int argc, const char* const* argv, env_lookup env) {
    cli_options cli;
    bool halo_timeout_flag = false;
    bool graph_mode_flag = false;
    bool metrics_interval_flag = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-s" || arg == "--s") {
            cli.problem.size =
                static_cast<index_t>(parse_long(arg, require_value(arg, argc, argv, i)));
        } else if (arg == "-r" || arg == "--r") {
            cli.problem.num_regions =
                static_cast<index_t>(parse_long(arg, require_value(arg, argc, argv, i)));
        } else if (arg == "-i" || arg == "--i") {
            cli.problem.max_cycles =
                static_cast<int>(parse_long(arg, require_value(arg, argc, argv, i)));
        } else if (arg == "-b" || arg == "--b") {
            cli.problem.balance =
                static_cast<int>(parse_long(arg, require_value(arg, argc, argv, i)));
        } else if (arg == "-c" || arg == "--c") {
            cli.problem.cost =
                static_cast<int>(parse_long(arg, require_value(arg, argc, argv, i)));
        } else if (arg == "-t" || arg == "--t" || arg == "--threads") {
            cli.threads = static_cast<std::size_t>(
                parse_long(arg, require_value(arg, argc, argv, i)));
        } else if (arg == "-d" || arg == "--d" || arg == "--driver") {
            cli.driver = require_value(arg, argc, argv, i);
            if (cli.driver != "serial" && cli.driver != "parallel_for" &&
                cli.driver != "taskgraph" && cli.driver != "foreach") {
                throw std::invalid_argument(
                    "lulesh: unknown driver '" + cli.driver +
                    "' (expected serial|parallel_for|taskgraph|foreach)");
            }
        } else if (arg == "-p" || arg == "--p" || arg == "--partitions") {
            partition_sizes p;
            p.nodal = static_cast<index_t>(
                parse_long(arg, require_value(arg, argc, argv, i)));
            p.elems = static_cast<index_t>(
                parse_long(arg, require_value(arg, argc, argv, i)));
            cli.partitions = p;
        } else if (arg == "--checkpoint-save") {
            cli.checkpoint_save = require_value(arg, argc, argv, i);
        } else if (arg == "--checkpoint-load") {
            cli.checkpoint_load = require_value(arg, argc, argv, i);
        } else if (arg == "--checkpoint-every") {
            cli.checkpoint_every = static_cast<int>(
                parse_long(arg, require_value(arg, argc, argv, i)));
        } else if (arg == "--retries") {
            cli.max_retries = static_cast<int>(
                parse_long(arg, require_value(arg, argc, argv, i)));
        } else if (arg == "--halo-timeout") {
            cli.halo_timeout_ms = static_cast<int>(
                parse_long(arg, require_value(arg, argc, argv, i)));
            halo_timeout_flag = true;
        } else if (arg.rfind("--halo-timeout=", 0) == 0) {
            cli.halo_timeout_ms = static_cast<int>(parse_long(
                "--halo-timeout",
                arg.substr(std::string("--halo-timeout=").size()).c_str()));
            halo_timeout_flag = true;
        } else if (arg == "--max-recoveries") {
            cli.max_recoveries = static_cast<int>(
                parse_long(arg, require_value(arg, argc, argv, i)));
        } else if (arg == "--graph-mode") {
            cli.graph_mode = require_value(arg, argc, argv, i);
            graph_mode_flag = true;
        } else if (arg.rfind("--graph-mode=", 0) == 0) {
            cli.graph_mode = arg.substr(std::string("--graph-mode=").size());
            graph_mode_flag = true;
        } else if (arg == "--audit-graph") {
            cli.audit_graph = true;
        } else if (arg == "--trace") {
            cli.trace_file = require_value(arg, argc, argv, i);
        } else if (arg.rfind("--trace=", 0) == 0) {
            cli.trace_file = arg.substr(std::string("--trace=").size());
            if (cli.trace_file.empty()) {
                throw std::invalid_argument(
                    "lulesh: --trace requires a non-empty file name");
            }
        } else if (arg == "--utilization-report") {
            cli.utilization_report_file = require_value(arg, argc, argv, i);
        } else if (arg.rfind("--utilization-report=", 0) == 0) {
            cli.utilization_report_file =
                arg.substr(std::string("--utilization-report=").size());
            if (cli.utilization_report_file.empty()) {
                throw std::invalid_argument(
                    "lulesh: --utilization-report requires a non-empty file "
                    "name");
            }
        } else if (arg == "--metrics") {
            cli.metrics_file = "metrics.json";
        } else if (arg.rfind("--metrics=", 0) == 0) {
            cli.metrics_file = arg.substr(std::string("--metrics=").size());
            if (cli.metrics_file.empty()) {
                throw std::invalid_argument(
                    "lulesh: --metrics= requires a non-empty file name "
                    "(bare --metrics defaults to metrics.json)");
            }
        } else if (arg == "--metrics-interval") {
            cli.metrics_interval_ms = static_cast<int>(
                parse_long(arg, require_value(arg, argc, argv, i)));
            metrics_interval_flag = true;
        } else if (arg.rfind("--metrics-interval=", 0) == 0) {
            cli.metrics_interval_ms = static_cast<int>(parse_long(
                "--metrics-interval",
                arg.substr(std::string("--metrics-interval=").size())
                    .c_str()));
            metrics_interval_flag = true;
        } else if (arg == "--critical-path-report") {
            cli.critical_path_report = true;
        } else if (arg.rfind("--critical-path-report=", 0) == 0) {
            cli.critical_path_report = true;
            cli.critical_path_json =
                arg.substr(std::string("--critical-path-report=").size());
            if (cli.critical_path_json.empty()) {
                throw std::invalid_argument(
                    "lulesh: --critical-path-report= requires a non-empty "
                    "file name (bare --critical-path-report prints text "
                    "only)");
            }
        } else if (arg == "-q" || arg == "--q" || arg == "--quiet") {
            cli.quiet = true;
        } else if (arg == "-h" || arg == "--help") {
            cli.show_help = true;
        } else {
            throw std::invalid_argument("lulesh: unknown flag '" + arg + "'");
        }
    }
    if (cli.problem.size < 1) {
        throw std::invalid_argument("lulesh: -s must be >= 1");
    }
    if (cli.problem.num_regions < 1) {
        throw std::invalid_argument("lulesh: -r must be >= 1");
    }
    if (cli.problem.max_cycles < 1) {
        throw std::invalid_argument("lulesh: -i must be >= 1");
    }
    if (cli.checkpoint_every < 0) {
        throw std::invalid_argument("lulesh: --checkpoint-every must be >= 0");
    }
    if (cli.max_retries < 0) {
        throw std::invalid_argument("lulesh: --retries must be >= 0");
    }
    if (cli.halo_timeout_ms < 0) {
        throw std::invalid_argument("lulesh: --halo-timeout must be >= 0");
    }
    if (cli.max_recoveries < 0) {
        throw std::invalid_argument("lulesh: --max-recoveries must be >= 0");
    }
    if (cli.partitions &&
        (cli.partitions->nodal < 1 || cli.partitions->elems < 1)) {
        throw std::invalid_argument("lulesh: -p sizes must be >= 1");
    }
    if (const char* raw = env("LULESH_AUDIT_GRAPH");
        raw != nullptr && *raw != '\0') {
        const std::string v = raw;
        if (v == "1") {
            cli.audit_graph = true;
        } else if (v != "0") {
            throw std::invalid_argument(
                "lulesh: LULESH_AUDIT_GRAPH must be empty, 0, or 1, got '" +
                v + "'");
        }
    }
    if (cli.audit_graph &&
        (cli.driver == "serial" || cli.driver == "parallel_for")) {
        throw std::invalid_argument(
            "lulesh: --audit-graph (or LULESH_AUDIT_GRAPH=1) audits the "
            "pre-built task graph, which driver '" + cli.driver +
            "' never spawns — use taskgraph or foreach");
    }
    // Environment twin of --graph-mode.  The explicit flag wins; either
    // spelling must name a known mode and combines only with the taskgraph
    // driver (serial/parallel_for run no task graph at all, and foreach
    // rebuilds per-kernel bulk tasks with no iteration graph to compile).
    // "" and "0" mean unset, matching the other LULESH_* twins.
    if (const char* raw = env("LULESH_GRAPH_MODE");
        raw != nullptr && *raw != '\0' && std::string(raw) != "0" &&
        !graph_mode_flag) {
        cli.graph_mode = raw;
    }
    if (graph_mode_flag || !cli.graph_mode.empty()) {
        if (cli.graph_mode != "replay" && cli.graph_mode != "build") {
            throw std::invalid_argument(
                "lulesh: --graph-mode (or LULESH_GRAPH_MODE) must be "
                "replay or build, got '" + cli.graph_mode + "'");
        }
        if (cli.driver != "taskgraph") {
            throw std::invalid_argument(
                "lulesh: --graph-mode (or LULESH_GRAPH_MODE) selects how "
                "the taskgraph driver realizes its iteration graph; driver "
                "'" + cli.driver + "' has no such graph — use taskgraph");
        }
    }
    // Environment twin of --halo-timeout.  The value must parse as a
    // non-negative integer (milliseconds); the explicit flag wins.
    if (const char* raw = env("LULESH_HALO_TIMEOUT");
        raw != nullptr && *raw != '\0' && !halo_timeout_flag) {
        const long v = parse_long("LULESH_HALO_TIMEOUT", raw);
        if (v < 0) {
            throw std::invalid_argument(
                "lulesh: LULESH_HALO_TIMEOUT must be >= 0, got '" +
                std::string(raw) + "'");
        }
        cli.halo_timeout_ms = static_cast<int>(v);
    }
    if (cli.halo_timeout_ms > 0 &&
        (cli.driver == "serial" || cli.driver == "parallel_for")) {
        throw std::invalid_argument(
            "lulesh: --halo-timeout (or LULESH_HALO_TIMEOUT) guards the "
            "distributed halo exchange, which driver '" + cli.driver +
            "' never performs — use taskgraph or foreach");
    }
    // Environment twins of --trace / --utilization-report.  A non-empty
    // value is an output path; the explicit flag takes precedence.
    if (const char* raw = env("LULESH_TRACE");
        raw != nullptr && *raw != '\0' && cli.trace_file.empty()) {
        cli.trace_file = raw;
    }
    if (const char* raw = env("LULESH_UTILIZATION_REPORT");
        raw != nullptr && *raw != '\0' &&
        cli.utilization_report_file.empty()) {
        cli.utilization_report_file = raw;
    }
    if ((!cli.trace_file.empty() || !cli.utilization_report_file.empty()) &&
        (cli.driver == "serial" || cli.driver == "parallel_for")) {
        throw std::invalid_argument(
            "lulesh: --trace/--utilization-report (or LULESH_TRACE/"
            "LULESH_UTILIZATION_REPORT) observe scheduler tasks, which "
            "driver '" + cli.driver +
            "' never spawns — use taskgraph or foreach");
    }
    // Environment twin of --metrics; a non-empty value is the reporter
    // path, the explicit flag wins.  Same driver rule as the tracer: the
    // registry's instrumented sites live in the scheduler.
    if (const char* raw = env("LULESH_METRICS");
        raw != nullptr && *raw != '\0' && cli.metrics_file.empty()) {
        cli.metrics_file = raw;
    }
    if (!cli.metrics_file.empty() &&
        (cli.driver == "serial" || cli.driver == "parallel_for")) {
        throw std::invalid_argument(
            "lulesh: --metrics (or LULESH_METRICS) samples scheduler task "
            "metrics, which driver '" + cli.driver +
            "' never produces — use taskgraph or foreach");
    }
    if (metrics_interval_flag && cli.metrics_file.empty()) {
        throw std::invalid_argument(
            "lulesh: --metrics-interval paces the metrics reporter — "
            "combine it with --metrics[=PATH] or LULESH_METRICS");
    }
    if (cli.metrics_interval_ms < 1) {
        throw std::invalid_argument(
            "lulesh: --metrics-interval must be >= 1 (milliseconds)");
    }
    // Environment twin of --critical-path-report: "1" → text-only report,
    // any other non-empty non-"0" value → JSON output path too.
    if (const char* raw = env("LULESH_CRITICAL_PATH_REPORT");
        raw != nullptr && *raw != '\0' && std::string(raw) != "0" &&
        !cli.critical_path_report) {
        cli.critical_path_report = true;
        if (std::string(raw) != "1") cli.critical_path_json = raw;
    }
    if (cli.critical_path_report) {
        if (cli.driver != "taskgraph") {
            throw std::invalid_argument(
                "lulesh: --critical-path-report (or "
                "LULESH_CRITICAL_PATH_REPORT) profiles the compiled "
                "iteration graph, which driver '" + cli.driver +
                "' never compiles — use taskgraph");
        }
        if (cli.graph_mode == "build") {
            throw std::invalid_argument(
                "lulesh: --critical-path-report needs the compiled replay "
                "graph; --graph-mode build rebuilds the future web every "
                "iteration and keeps no recycled nodes to profile");
        }
    }
    return cli;
}

std::string usage_text(const std::string& program) {
    std::ostringstream os;
    os << "Usage: " << program << " [options]\n"
       << "  -s <n>          problem size (elements per edge, default 30)\n"
       << "  -r <n>          number of material regions (default 11)\n"
       << "  -i <n>          iteration cap (default: run to stoptime)\n"
       << "  -b <n>          region balance exponent (default 1)\n"
       << "  -c <n>          region cost multiplier (default 1)\n"
       << "  -d <driver>     serial | parallel_for | taskgraph | foreach\n"
       << "  -t <n>          execution threads (default: hardware)\n"
       << "  -p <nod> <el>   task partition sizes (default: paper Table I)\n"
       << "  -q              quiet (suppress per-run banner)\n"
       << "  --checkpoint-save <path>   write a checkpoint after the run\n"
       << "  --checkpoint-load <path>   restore state before the run\n"
       << "  --checkpoint-every <k>     resilient mode: checkpoint every k\n"
       << "                             cycles, roll back + retry on faults\n"
       << "                             (k = 0: entry-snapshot-only — faults\n"
       << "                             roll back to the run's start state)\n"
       << "  --retries <n>   retry budget per incident (default 3)\n"
       << "  --halo-timeout <ms>        distributed runs: fail the halo\n"
       << "                             fabric after <ms> of zero progress\n"
       << "                             (status: stalled) instead of hanging\n"
       << "                             on a dead slab (0 = no deadline; env\n"
       << "                             twin: LULESH_HALO_TIMEOUT, flag\n"
       << "                             wins; needs a task-spawning driver)\n"
       << "  --max-recoveries <n>       distributed resilient mode: bound\n"
       << "                             coordinated rollback-and-replay\n"
       << "                             attempts per incident (default 3)\n"
       << "  --graph-mode <m>           taskgraph driver only: replay\n"
       << "                             (default — compile the iteration\n"
       << "                             graph once, re-arm it every cycle;\n"
       << "                             zero steady-state allocation) or\n"
       << "                             build (reconstruct the future web\n"
       << "                             every iteration; ablation baseline).\n"
       << "                             Env twin: LULESH_GRAPH_MODE, flag\n"
       << "                             wins\n"
       << "  --audit-graph   statically audit the task graph for unordered\n"
       << "                  read-write/write-write overlaps before running\n"
       << "                  (env twin: LULESH_AUDIT_GRAPH=1; needs a\n"
       << "                  task-graph driver)\n"
       << "  --trace <file>  record per-task trace events and write a Chrome\n"
       << "                  trace-event JSON (load in Perfetto / chrome://\n"
       << "                  tracing; env twin: LULESH_TRACE=<file>; needs a\n"
       << "                  task-spawning driver)\n"
       << "  --utilization-report <file>\n"
       << "                  write a per-phase utilization report (.json →\n"
       << "                  JSON, else text; env twin:\n"
       << "                  LULESH_UTILIZATION_REPORT=<file>)\n"
       << "  --metrics[=<file>]\n"
       << "                  arm the metrics registry and write interval\n"
       << "                  snapshots to <file> (default metrics.json;\n"
       << "                  .prom → Prometheus text rewritten per\n"
       << "                  interval, else JSON lines; env twin:\n"
       << "                  LULESH_METRICS=<file>, flag wins; needs a\n"
       << "                  task-spawning driver)\n"
       << "  --metrics-interval <ms>    reporter snapshot cadence (default\n"
       << "                             1000; needs --metrics)\n"
       << "  --critical-path-report[=<file>]\n"
       << "                  profile compiled-graph nodes and print the\n"
       << "                  critical-path report (path length, per-phase\n"
       << "                  slack, top tasks) after the run; =<file> also\n"
       << "                  writes it as JSON (env twin:\n"
       << "                  LULESH_CRITICAL_PATH_REPORT=1|<file>; needs\n"
       << "                  the taskgraph driver in replay mode)\n"
       << "  -h              this help\n"
       << "Exit codes: 0 ok, 1 usage, 2 volume error, 3 qstop exceeded,\n"
       << "            4 task fault, 5 stalled, 6 graph hazard,\n"
       << "            7 data corruption\n";
    return os.str();
}

}  // namespace lulesh
