// lulesh/checkpoint_chain.hpp
//
// Incremental, crash-consistent checkpointing (format v3).  Instead of a
// monolithic snapshot on the critical path every K cycles, the resilient
// loop appends *delta records* — the (field × index-range) regions the
// declared task write-sets dirtied since the last checkpoint — over a
// periodic full base record.  A chain is a byte sequence of records:
//
//   [base record][delta record][delta record]...
//
// Every record is self-delimiting and individually verifiable:
//
//   record_header   magic, version, kind (base/delta), region count,
//                   a CRC-32C over the header itself, the problem shape,
//                   and the scalar time/cycle controls
//   region × N      {slot, payload CRC-32C, lo, hi} + payload doubles
//   commit trailer  magic + header-CRC echo + CRC-32C over region entries
//
// The trailer is written last, so a record is *committed* only once its
// final byte is on disk.  Restore replays the longest valid prefix of
// committed records; a crash at any byte leaves either the previous chain
// (torn tail ignored) or the new one — never a torn state.  Base records
// are written with the same temp+fsync+rename protocol as v2 checkpoints;
// delta records are appended and fsync'd in place, which is crash-safe
// because an incomplete append simply fails trailer validation.
//
// Packing a record is decomposed into independent per-region copies
// (state_capture) so the task-graph driver can run them as ordinary graph
// tasks overlapped with the next iteration's compute — see
// docs/resilience.md for the non-interference argument and the recovery
// matrix.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "amt/atomic.hpp"
#include "lulesh/checkpoint.hpp"
#include "lulesh/domain.hpp"
#include "lulesh/fields.hpp"

namespace lulesh {

/// The 11 fields that carry state across iterations, in v2 payload order:
/// x, y, z, xd, yd, zd (node), then e, p, q, v, ss (elem).
inline constexpr std::size_t num_checkpoint_fields = 11;

/// Field for a checkpoint slot in [0, num_checkpoint_fields).
field checkpoint_field_at(std::size_t slot) noexcept;

/// Slot for a field, or -1 if the field is not part of the checkpoint.
int checkpoint_slot(field f) noexcept;

inline bool is_checkpointed_field(field f) noexcept {
    return checkpoint_slot(f) >= 0;
}

/// A half-open dirty interval [lo, hi) of one checkpointed field.
struct dirty_region {
    field f = field::x;
    index_t lo = 0;
    index_t hi = 0;
};

/// Full coverage of every checkpointed field — the region set of a base
/// record (and the conservative fallback for drivers that do not report
/// write-sets).
std::vector<dirty_region> full_coverage(const domain& d);

/// Accumulates the (field × index-range) write-sets the drivers report
/// after each advance().  Marks on non-checkpointed fields are ignored;
/// take() clamps to the domain's extents and coalesces overlapping or
/// adjacent intervals per field.  Not thread-safe: the resilient loop
/// feeds it between iterations.
class dirty_tracker {
public:
    void mark(field f, index_t lo, index_t hi);
    [[nodiscard]] bool empty() const noexcept;
    void clear() noexcept;

    /// Returns the coalesced dirty regions (in checkpoint slot order) and
    /// clears the tracker.
    std::vector<dirty_region> take(const domain& d);

private:
    std::vector<std::pair<index_t, index_t>> marks_[num_checkpoint_fields];
};

/// One in-flight checkpoint record: the scalars are captured and the record
/// buffer laid out at construction time (cheap), then each region's payload
/// is copied + checksummed by pack_region() — either synchronously via
/// pack_remaining() or as overlapped graph tasks that claim regions with a
/// CAS.  take_record() finalizes the commit trailer after wait_packed().
///
/// The capture holds a pointer to the source domain; the caller must keep
/// the domain's state unchanged (for the captured regions) until packing
/// completes — the task-graph driver guarantees this by joining region
/// packs into the barrier *before* the wave that first writes that field.
class state_capture {
public:
    /// `recycled` (optional) donates its heap allocation as the record
    /// buffer — the resilient loop feeds retired chain records back in so
    /// steady-state checkpointing touches no fresh pages.  Every byte of
    /// the buffer is overwritten before take_record() returns it, so stale
    /// contents are harmless.
    state_capture(const domain& d, std::vector<dirty_region> regions,
                  bool base, std::string recycled = {});

    [[nodiscard]] const domain* source() const noexcept { return d_; }
    [[nodiscard]] std::size_t num_regions() const noexcept {
        return regions_.size();
    }
    [[nodiscard]] const dirty_region& region(std::size_t i) const {
        return regions_[i];
    }
    [[nodiscard]] bool is_base() const noexcept { return base_; }
    [[nodiscard]] int cycle() const noexcept { return cycle_; }

    /// Claims and packs region i; returns false if another packer already
    /// claimed it.  Safe to call concurrently for distinct or identical i.
    bool pack_region(std::size_t i) noexcept;

    /// Synchronously packs every unclaimed region (the no-overlap path and
    /// the finalization path for regions the driver never got to).
    void pack_remaining() noexcept;

    /// Marks the capture unusable (a pack task faulted); wait_packed()
    /// returns and take_record() must not be called.
    void mark_failed() noexcept;
    // relaxed: failed_ is a pure flag — no data is published under it, the
    // record buffer is only read after wait_packed()'s acquire on packed_.
    [[nodiscard]] bool failed() const noexcept {
        return failed_.load(amt::memory_order_relaxed);
    }

    /// Blocks until every claimed region finished packing (call
    /// pack_remaining() first to claim leftovers, or this can wait on
    /// regions nobody owns).
    void wait_packed();

    /// Moves the finished record out (trailer is computed here).  Only
    /// valid after wait_packed() on a non-failed capture.
    [[nodiscard]] std::string take_record();

private:
    const domain* d_;
    std::vector<dirty_region> regions_;
    std::vector<std::size_t> payload_offset_;  // payload byte offset in buf_
    std::string buf_;
    bool base_;
    int cycle_ = 0;
    std::unique_ptr<amt::atomic<int>[]> claims_;  // 0 free, 1 packing, 2 done
    amt::atomic<std::size_t> packed_{0};
    amt::atomic<bool> failed_{false};
    std::mutex mu_;
    std::condition_variable cv_;
};

/// Fully validates `record` (header CRC, commit trailer, per-region
/// payload CRCs, shape) and only then applies it to `d`.  Throws
/// checkpoint_error — with `context`, the record's cycle, and
/// expected-vs-actual CRCs where applicable — without having modified `d`.
void apply_chain_record(domain& d, std::string_view record,
                        const std::string& context);

/// True if the stream starts with the v3 chain record magic (peeks; the
/// stream position is restored).
bool stream_is_chain(std::istream& in);

/// Replays the longest valid prefix of committed records from `in` into
/// `d` (torn or corrupt tails are ignored).  Throws checkpoint_error if no
/// valid leading base record exists.  Used by load_checkpoint_file when it
/// detects a chain.
void restore_chain_stream(domain& d, std::istream& in,
                          const std::string& context);

/// Splits the longest validly *framed* prefix of `in` into individual
/// record byte strings without applying them (payload CRCs are validated
/// later, by apply_chain_record).  Torn or invalid framing ends the list,
/// exactly like restore_chain_stream; a committed leading record for a
/// different mesh shape throws checkpoint_error.  The distributed
/// consistent-cycle loader uses this to inspect every slab's chain before
/// deciding which cycle to restore.
std::vector<std::string> read_chain_records(const domain& d, std::istream& in,
                                            const std::string& context);

/// The cycle recorded in `record`'s header, or -1 if the header is torn or
/// fails its CRC.  Cheap (header-only); does not validate payloads.
int chain_record_cycle(std::string_view record) noexcept;

/// True if `record`'s (CRC-valid) header marks a base record; false for a
/// delta or an invalid header.
bool chain_record_is_base(std::string_view record) noexcept;

/// Writes a whole chain atomically: temp file, fsync, rename — a crash
/// leaves the previous file intact.
void write_chain_file(const std::string& path,
                      const std::vector<std::string>& records);

/// Appends one committed record to an existing chain file and fsyncs.  A
/// crash mid-append leaves a torn tail that restore_chain_stream ignores.
void append_chain_record_file(const std::string& path,
                              std::string_view record);

/// Test seam for the crash-consistency torture harness: after `n` more
/// bytes of chain-file writes, the process _exit()s mid-write.  Negative
/// disables (the default).  Only meaningful in a forked child.
void set_chain_crash_after_bytes(long long n) noexcept;

}  // namespace lulesh
