// dist/cluster.hpp
//
// Multi-domain (distributed-style) LULESH: the global problem is decomposed
// into z-slabs, each owning a `domain` slice with ghost storage at interior
// boundaries.  Slabs communicate through amt channels — the in-process
// analogue of HPX's distributed channels — exchanging per-iteration:
//
//   (1) boundary element-plane corner forces (stress + hourglass), so that
//       nodal force gathers on shared node planes sum the contributions of
//       both slabs in global element order (bitwise equal to a single-domain
//       run, which the tests verify);
//   (2) boundary element-plane delv_zeta values for the monotonic-Q
//       face-neighbor stencil.
//
// Time-step constraints are min-reduced across slabs, so the global dt —
// and therefore the entire simulation — matches the single-domain run
// exactly.  This implements the paper's future-work direction ("extend to
// multi-node environments ... benefits from asynchronous mechanisms of HPX
// instead of the mostly synchronous data exchanges of MPI") as a
// single-process simulation of the decomposition.

#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "amt/channel.hpp"
#include "lulesh/domain.hpp"

namespace lulesh::dist {

/// Flat halo message.  Corner messages hold 6 arrays (fx, fy, fz stress then
/// hourglass) of elems_per_plane*8 values; delv messages hold
/// elems_per_plane values.  Every message carries one extra trailing real_t
/// slot whose bytes hold a CRC-32 of the payload; unpack_* verifies it and
/// fails the iteration (simulation_error with status::data_corruption) if a
/// bit flipped in transit.
using plane_buffer = std::vector<real_t>;

/// Retransmit cache for one directed message stream of a boundary.  When
/// the driver's retry layer is enabled, the sender parks a pristine copy of
/// each packed message here before committing it to the channel; a dropped
/// or corrupt delivery is then healed by re-delivering the cached copy
/// (dist/retry_policy.hpp) instead of failing the iteration.  `packed_seq`
/// advances when a message is cached, `sent_seq` when it is delivered —
/// packed_seq > sent_seq marks an in-flight message the driver's poll loop
/// may need to resend.
struct retransmit_slot {
    std::mutex mu;
    plane_buffer payload;
    std::uint64_t packed_seq = 0;
    std::uint64_t sent_seq = 0;
    int attempts = 0;  ///< delivery attempts beyond the original send
    std::chrono::steady_clock::time_point last_attempt{};

    void reset() {
        std::lock_guard lk(mu);
        payload.clear();
        packed_seq = 0;
        sent_seq = 0;
        attempts = 0;
        last_attempt = {};
    }
};

/// Channels across one interior boundary (between slab b and slab b+1).
/// "up" flows from slab b to slab b+1.  Each channel pairs with the
/// retransmit cache of its sender.
struct boundary_channels {
    amt::channel<plane_buffer> corner_up;
    amt::channel<plane_buffer> corner_down;
    amt::channel<plane_buffer> delv_up;
    amt::channel<plane_buffer> delv_down;

    retransmit_slot corner_up_tx;
    retransmit_slot corner_down_tx;
    retransmit_slot delv_up_tx;
    retransmit_slot delv_down_tx;
};

/// The four directed message streams of a boundary, in the order the
/// members of boundary_channels are declared.  Used to index channels,
/// retransmit slots, and fault-site labels uniformly.
enum class halo_stream : int {
    corner_up = 0,
    corner_down = 1,
    delv_up = 2,
    delv_down = 3
};
inline constexpr int num_halo_streams = 4;

[[nodiscard]] const char* halo_stream_name(halo_stream which) noexcept;
[[nodiscard]] amt::channel<plane_buffer>& stream_channel(boundary_channels& b,
                                                         halo_stream which);
[[nodiscard]] retransmit_slot& stream_slot(boundary_channels& b,
                                           halo_stream which);

/// The set of slab domains plus their connecting channels.
class cluster {
public:
    /// Splits `opts.size` element planes as evenly as possible over
    /// `num_slabs` slabs (the first size % num_slabs slabs get one extra
    /// plane).  Requires 1 <= num_slabs <= opts.size.
    cluster(const options& opts, index_t num_slabs);

    [[nodiscard]] index_t num_slabs() const noexcept {
        return static_cast<index_t>(slabs_.size());
    }
    [[nodiscard]] domain& slab(index_t i) {
        return *slabs_[static_cast<std::size_t>(i)];
    }
    [[nodiscard]] const domain& slab(index_t i) const {
        return *slabs_[static_cast<std::size_t>(i)];
    }
    /// Channels between slab b and slab b+1, b in [0, num_slabs-1).
    [[nodiscard]] boundary_channels& boundary(index_t b) {
        return *channels_[static_cast<std::size_t>(b)];
    }

    /// Fails the whole halo fabric: closes every channel of every boundary,
    /// so all pending and future get() futures resolve with
    /// amt::channel_closed instead of waiting for a message that is never
    /// coming.  This is how a failed slab propagates its error to its
    /// peers — every slab's chain resolves (exceptionally) and the driver's
    /// final barrier cannot hang.  Idempotent and thread-safe; the cluster
    /// is not reusable for further iterations afterwards.
    void close_channels() {
        for (auto& b : channels_) {
            b->corner_up.close();
            b->corner_down.close();
            b->delv_up.close();
            b->delv_down.close();
        }
    }

    /// Re-wires a halo fabric failed by close_channels(): every channel is
    /// reopened (same channel objects — the driver's cached handles stay
    /// valid) and every retransmit cache is cleared, so the next iteration
    /// starts from a clean fabric.  Only valid at a quiescent point — after
    /// the failed iteration's chains have all settled — which the recovery
    /// layer (dist/resilient_dist) guarantees by construction.
    void reopen_channels();

    /// Replaces slab `i` with a freshly constructed domain over the same
    /// extent — the recovery path for a confirmed slab death, where the old
    /// domain's memory is presumed lost/poisoned.  The new domain is at the
    /// entry state; the caller restores it from the slab's checkpoint chain.
    void rebuild_slab(index_t i);

    [[nodiscard]] const options& problem() const noexcept { return opts_; }

    /// Shared simulation clock (all slabs advance in lockstep; slab 0 is
    /// authoritative for reporting).
    [[nodiscard]] real_t time() const { return slab(0).time_; }
    [[nodiscard]] int cycle() const { return slab(0).cycle; }

private:
    options opts_;
    std::vector<std::unique_ptr<domain>> slabs_;
    // unique_ptr because boundary_channels holds mutexes (retransmit
    // slots), which are neither movable nor copyable.
    std::vector<std::unique_ptr<boundary_channels>> channels_;
};

// --- halo pack/unpack helpers -------------------------------------------

/// Where a halo message came from, for CRC-failure reporting parity with
/// checkpoint_error: the boundary index and direction name make a corrupt
/// message attributable.  Default (-1, "") marks a direct pack/unpack with
/// no fabric context (the BSP exchange and unit tests).
struct halo_message_info {
    index_t boundary = -1;
    const char* direction = "";
};

/// Packs the corner forces (stress + hourglass) of the element plane
/// starting at `elem_base` into a flat buffer.
plane_buffer pack_corner_plane(const domain& d, index_t elem_base);

/// Unpacks a neighbor's corner-plane message into the ghost slots starting
/// at `ghost_slot`.  A CRC mismatch throws simulation_error with
/// status::data_corruption naming the boundary/direction (when given) and
/// the expected-vs-actual CRC.
void unpack_corner_ghosts(domain& d, index_t ghost_slot,
                          const plane_buffer& buf,
                          const halo_message_info& info = {});

/// Packs delv_zeta of the element plane starting at `elem_base`.
plane_buffer pack_delv_plane(const domain& d, index_t elem_base);

/// Unpacks a neighbor's delv_zeta plane into the ghost slots.  CRC-failure
/// reporting as for unpack_corner_ghosts.
void unpack_delv_ghosts(domain& d, index_t ghost_slot, const plane_buffer& buf,
                        const halo_message_info& info = {});

}  // namespace lulesh::dist
