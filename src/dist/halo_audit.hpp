// dist/halo_audit.hpp
//
// Extends the static task-graph audit (core/graph_audit) to the dist halo
// exchange.  The single-domain model (core/access::build_iteration_model)
// covers the five leapfrog waves; a slab additionally runs, per interior
// boundary:
//
//   stage 0  pack_corner   reads the boundary plane of the six corner-force
//                          arrays — ordered after the force tasks that write
//                          that plane (exactly the eager-send gating of
//                          spawn_staged, which is the *weakest* ordering any
//                          exchange mode provides);
//            unpack_corner writes the neighbor's plane into the ghost slots
//                          — declared with NO intra-stage ordering edge, so
//                          the audit must prove the ghost region disjoint
//                          from every owned-plane access of the wave;
//   stage 2  pack_delv     reads the boundary plane of delv_zeta (same
//                          gating as pack_corner);
//            unpack_delv   writes the delv_zeta ghost plane, again with no
//                          edge — disjointness is the safety argument.
//
// The audit is per-slab: slabs share no arrays (channels pass buffers by
// value), so cross-slab ordering is the channel set→get dependency the
// runtime enforces by construction, while every intra-slab hazard — ghost
// slots colliding with owned ranges, a send racing the plane it reads — is
// in scope here.

#pragma once

#include <string>
#include <vector>

#include "core/graph_audit.hpp"
#include "dist/cluster.hpp"

namespace lulesh::dist {

/// The declarative model of one slab's advance: the five-wave iteration
/// model plus the halo pack/unpack tasks for each interior boundary the
/// slab touches.  `d` must be a slab domain (cluster::slab); on a domain
/// with no neighbors this degenerates to the plain iteration model.
graph::graph_model build_slab_model(const domain& d, partition_sizes parts);

/// One slab's audit outcome within a cluster audit.
struct slab_audit {
    index_t slab = 0;
    graph::graph_model model;
    graph::audit_result result;
};

/// Audits every slab of the cluster with build_slab_model.
std::vector<slab_audit> audit_cluster(const cluster& c, partition_sizes parts);

[[nodiscard]] bool cluster_audit_ok(const std::vector<slab_audit>& audits);

/// Per-slab "slab N: ..." lines in format_audit's format.
std::string format_cluster_audit(const std::vector<slab_audit>& audits);

}  // namespace lulesh::dist
