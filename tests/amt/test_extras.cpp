// Tests for the extended amt API: shared_future, unwrap, latch, barrier,
// counting_semaphore.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "amt/amt.hpp"

namespace {

using namespace std::chrono_literals;

// ---------------- shared_future ----------------

TEST(SharedFuture, DefaultConstructedIsInvalid) {
    amt::shared_future<int> sf;
    EXPECT_FALSE(sf.valid());
    EXPECT_THROW(sf.get(), std::future_error);
}

TEST(SharedFuture, ConversionConsumesUniqueFuture) {
    auto f = amt::make_ready_future(5);
    amt::shared_future<int> sf(std::move(f));
    EXPECT_FALSE(f.valid());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(sf.valid());
    EXPECT_EQ(sf.get(), 5);
}

TEST(SharedFuture, GetIsRepeatable) {
    amt::shared_future<int> sf(amt::make_ready_future(7));
    EXPECT_EQ(sf.get(), 7);
    EXPECT_EQ(sf.get(), 7);
    EXPECT_TRUE(sf.valid());
}

TEST(SharedFuture, CopiesShareTheResult) {
    amt::promise<std::string> p;
    amt::shared_future<std::string> a(p.get_future());
    amt::shared_future<std::string> b = a;
    p.set_value("shared");
    EXPECT_EQ(a.get(), "shared");
    EXPECT_EQ(b.get(), "shared");
}

TEST(SharedFuture, VoidSpecialization) {
    amt::shared_future<void> sf(amt::make_ready_future());
    EXPECT_NO_THROW(sf.get());
    EXPECT_NO_THROW(sf.get());
}

TEST(SharedFuture, ExceptionRethrownOnEveryGet) {
    amt::shared_future<int> sf(amt::make_exceptional_future<int>(
        std::make_exception_ptr(std::runtime_error("persistent"))));
    EXPECT_THROW(sf.get(), std::runtime_error);
    EXPECT_THROW(sf.get(), std::runtime_error);
}

TEST(SharedFuture, MultipleContinuationsAllRun) {
    amt::promise<int> p;
    amt::shared_future<int> sf(p.get_future());
    auto a = sf.then(amt::launch::sync,
                     [](const amt::shared_future<int>& v) { return v.get() + 1; });
    auto b = sf.then(amt::launch::sync,
                     [](const amt::shared_future<int>& v) { return v.get() * 2; });
    auto c = sf.then(amt::launch::sync,
                     [](const amt::shared_future<int>& v) { return v.get() - 3; });
    p.set_value(10);
    EXPECT_EQ(a.get(), 11);
    EXPECT_EQ(b.get(), 20);
    EXPECT_EQ(c.get(), 7);
    EXPECT_EQ(sf.get(), 10);  // source still usable
}

TEST(SharedFuture, FanOutOnRuntime) {
    amt::runtime rt(2);
    amt::shared_future<int> sf(amt::async([] { return 21; }));
    std::vector<amt::future<int>> results;
    for (int i = 0; i < 8; ++i) {
        results.push_back(
            sf.then([i](const amt::shared_future<int>& v) { return v.get() + i; }));
    }
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(results[static_cast<std::size_t>(i)].get(), 21 + i);
    }
}

// ---------------- unwrap ----------------

TEST(Unwrap, CollapsesReadyNesting) {
    auto nested = amt::make_ready_future(amt::make_ready_future(42));
    auto flat = amt::unwrap(std::move(nested));
    EXPECT_EQ(flat.get(), 42);
}

TEST(Unwrap, WorksWithAsyncInnerLaunch) {
    amt::runtime rt(2);
    auto outer = amt::async([] { return amt::async([] { return 6 * 7; }); });
    auto flat = amt::unwrap(std::move(outer));
    EXPECT_EQ(flat.get(), 42);
}

TEST(Unwrap, VoidNesting) {
    amt::runtime rt(2);
    std::atomic<bool> ran{false};
    auto outer = amt::async([&ran] { return amt::async([&ran] { ran = true; }); });
    amt::unwrap(std::move(outer)).get();
    EXPECT_TRUE(ran.load());
}

TEST(Unwrap, OuterExceptionPropagates) {
    auto outer = amt::make_exceptional_future<amt::future<int>>(
        std::make_exception_ptr(std::runtime_error("outer")));
    auto flat = amt::unwrap(std::move(outer));
    EXPECT_THROW(flat.get(), std::runtime_error);
}

TEST(Unwrap, InnerExceptionPropagates) {
    auto outer = amt::make_ready_future(amt::make_exceptional_future<int>(
        std::make_exception_ptr(std::logic_error("inner"))));
    auto flat = amt::unwrap(std::move(outer));
    EXPECT_THROW(flat.get(), std::logic_error);
}

// ---------------- latch ----------------

TEST(Latch, ZeroLatchIsImmediatelyReady) {
    amt::latch l(0);
    EXPECT_TRUE(l.try_wait());
    l.wait();  // must not block
}

TEST(Latch, CountDownReleasesWaiter) {
    amt::latch l(3);
    EXPECT_FALSE(l.try_wait());
    l.count_down();
    l.count_down(2);
    EXPECT_TRUE(l.try_wait());
    l.wait();
}

TEST(Latch, ReleasesBlockedExternalThread) {
    amt::latch l(1);
    std::atomic<bool> released{false};
    std::thread waiter([&] {
        l.wait();
        released.store(true);
    });
    std::this_thread::sleep_for(5ms);
    EXPECT_FALSE(released.load());
    l.count_down();
    waiter.join();
    EXPECT_TRUE(released.load());
}

TEST(Latch, CooperativeWaitInsideTasks) {
    // One worker: a task waits on a latch that later tasks count down — only
    // completes because latch::wait executes pending tasks.
    amt::runtime rt(1);
    amt::latch l(2);
    auto waiter = amt::async([&l] { l.wait(); return 1; });
    auto a = amt::async([&l] { l.count_down(); });
    auto b = amt::async([&l] { l.count_down(); });
    EXPECT_EQ(waiter.get(), 1);
    a.get();
    b.get();
}

// ---------------- barrier ----------------

TEST(Barrier, SynchronizesExternalThreads) {
    constexpr int participants = 4;
    constexpr int rounds = 25;
    amt::barrier bar(participants);
    std::vector<int> counters(participants, 0);
    std::atomic<bool> skew{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < participants; ++t) {
        threads.emplace_back([&, t] {
            for (int r = 0; r < rounds; ++r) {
                counters[static_cast<std::size_t>(t)]++;
                bar.arrive_and_wait();
                for (int c : counters) {
                    if (c != r + 1) skew.store(true);
                }
                bar.arrive_and_wait();
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_FALSE(skew.load());
}

TEST(Barrier, SingleParticipantNeverBlocks) {
    amt::barrier bar(1);
    for (int i = 0; i < 10; ++i) bar.arrive_and_wait();
}

// ---------------- counting_semaphore ----------------

TEST(Semaphore, AcquireConsumesPermits) {
    amt::counting_semaphore sem(2);
    EXPECT_TRUE(sem.try_acquire());
    EXPECT_TRUE(sem.try_acquire());
    EXPECT_FALSE(sem.try_acquire());
    sem.release();
    EXPECT_TRUE(sem.try_acquire());
    EXPECT_EQ(sem.value(), 0);
}

TEST(Semaphore, BlockingAcquireWaitsForRelease) {
    amt::counting_semaphore sem(0);
    std::atomic<bool> acquired{false};
    std::thread waiter([&] {
        sem.acquire();
        acquired.store(true);
    });
    std::this_thread::sleep_for(5ms);
    EXPECT_FALSE(acquired.load());
    sem.release();
    waiter.join();
    EXPECT_TRUE(acquired.load());
}

TEST(Semaphore, ThrottlesTaskFanOut) {
    // Bound in-flight tasks to 2 while producing 50 from a worker task —
    // the intended use for very large task-graph generation.
    amt::runtime rt(2);
    amt::counting_semaphore sem(2);
    std::atomic<int> in_flight{0};
    std::atomic<int> max_in_flight{0};
    std::atomic<int> done{0};

    auto producer = amt::async([&] {
        std::vector<amt::future<void>> fs;
        for (int i = 0; i < 50; ++i) {
            sem.acquire();
            fs.push_back(amt::async([&] {
                const int now = in_flight.fetch_add(1) + 1;
                int seen = max_in_flight.load();
                while (seen < now && !max_in_flight.compare_exchange_weak(seen, now)) {
                }
                std::this_thread::yield();
                in_flight.fetch_sub(1);
                done.fetch_add(1);
                sem.release();
            }));
        }
        amt::wait_all(fs);
    });
    producer.get();
    EXPECT_EQ(done.load(), 50);
    EXPECT_LE(max_in_flight.load(), 2);
}

}  // namespace
