// amt/model.cpp — schedule controller for AMT_MODEL_CHECK builds (see
// amt/model.hpp for the user-facing docs).  Compiled empty in normal
// builds so the amt library's source list stays configuration-independent.

#include "amt/atomic.hpp"

#if AMT_MODEL_CHECK

#include "amt/model.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace amt::model {
namespace {

using detail::rmw_fn;

std::uint64_t splitmix64(std::uint64_t& s) {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

struct vclock {
    std::array<std::uint32_t, kMaxThreads> c{};
    void join(const vclock& o) {
        for (int i = 0; i < kMaxThreads; ++i) c[i] = std::max(c[i], o.c[i]);
    }
};

enum class op_kind : std::uint8_t {
    begin, load, store, rmw, cas, fence,
    mtx_lock, mtx_try_lock, mtx_unlock,
    cv_wait, cv_relock, cv_notify,
    spawn, join_, yield_,
};

struct op_desc {
    op_kind kind = op_kind::begin;
    const void* addr = nullptr;   // atomic var / mutex / cv
    const void* addr2 = nullptr;  // cv_wait: the mutex
    std::memory_order mo = std::memory_order_seq_cst;
    std::memory_order mo2 = std::memory_order_seq_cst;  // CAS failure order
    std::uint64_t init = 0;       // committed value at first sighting
    std::uint64_t operand = 0;    // store value / rmw operand
    std::uint64_t desired = 0;    // CAS desired
    std::uint64_t expected = 0;   // CAS expected
    rmw_fn fn = nullptr;
    int target = -1;              // join target tid / notify_all flag
};

struct store_rec {
    std::uint64_t bits = 0;
    int tid = -1;             // -1 = initial value (hb-before everything)
    std::uint32_t when = 0;   // storing thread's local clock at the store
    vclock msg;               // clock an acquiring reader joins
};

struct var_state {
    std::vector<store_rec> hist;
};

struct mutex_state {
    int holder = -1;
    vclock msg;  // accumulated release clock: lock() acquires it
};

struct cv_waiter {
    int tid = -1;
    const void* mtx = nullptr;
};

struct cv_state {
    std::vector<cv_waiter> waiters;  // FIFO
};

enum class tstate : std::uint8_t { runnable, running, cv_waiting, done };

struct per_thread {
    int tid = -1;
    tstate st = tstate::runnable;
    bool has_pending = false;
    op_desc pending{};
    bool granted = false;
    int read_choice = 0;  // offset from newest feasible store (0 = latest)
    int pri = 0;          // PCT priority
    // memory-model view
    vclock clk;
    vclock acq_pending;   // msgs from relaxed loads awaiting an acquire fence
    vclock rel_fence;     // clock snapshot at the last release fence
    bool has_rel_fence = false;
    std::unordered_map<const void*, std::uint32_t> floor;  // coherence floor
    // op results handed back to the shim
    std::uint64_t op_result = 0;
    bool op_flag = false;
    std::function<void()> fn;  // thread body, set before the OS thread starts
};

struct alt {
    int tid = 0;
    int choice = 0;
};

struct dfs_frame {
    std::vector<alt> alts;
    std::size_t cur = 0;
    std::array<bool, kMaxThreads> sleep{};  // sleep set at entry to this node
    op_desc chosen_op{};                    // op executed for alts[cur]
};

constexpr bool acquire_part(std::memory_order mo) {
    return mo == std::memory_order_acquire || mo == std::memory_order_consume ||
           mo == std::memory_order_acq_rel || mo == std::memory_order_seq_cst;
}
constexpr bool release_part(std::memory_order mo) {
    return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
           mo == std::memory_order_seq_cst;
}

const char* mo_name(std::memory_order mo) {
    switch (mo) {
        case std::memory_order_relaxed: return "relaxed";
        case std::memory_order_consume: return "consume";
        case std::memory_order_acquire: return "acquire";
        case std::memory_order_release: return "release";
        case std::memory_order_acq_rel: return "acq_rel";
        default: return "seq_cst";
    }
}

bool is_mem(op_kind k) {
    return k == op_kind::load || k == op_kind::store || k == op_kind::rmw ||
           k == op_kind::cas;
}
bool is_mutexish(op_kind k) {
    return k == op_kind::mtx_lock || k == op_kind::mtx_try_lock ||
           k == op_kind::mtx_unlock || k == op_kind::cv_relock;
}

/// Independence relation for sleep-set pruning: conservative — anything
/// structural (fences, sc ops, spawn/join, cv traffic) is dependent with
/// everything, so pruning can only drop genuinely commuting pairs.
bool independent(const op_desc& a, const op_desc& b) {
    if (a.kind == op_kind::yield_ || b.kind == op_kind::yield_) return true;
    auto structural = [](const op_desc& o) {
        return o.kind == op_kind::fence || o.kind == op_kind::begin ||
               o.kind == op_kind::spawn || o.kind == op_kind::join_ ||
               o.kind == op_kind::cv_wait || o.kind == op_kind::cv_notify;
    };
    if (structural(a) || structural(b)) return false;
    auto sc_op = [](const op_desc& o) {
        return is_mem(o.kind) &&
               (o.mo == std::memory_order_seq_cst ||
                (o.kind == op_kind::cas && o.mo2 == std::memory_order_seq_cst));
    };
    if (sc_op(a) && sc_op(b)) return false;  // both touch the SC order
    if (is_mem(a.kind) && is_mem(b.kind)) {
        if (a.addr != b.addr) return true;
        return a.kind == op_kind::load && b.kind == op_kind::load;
    }
    if (is_mutexish(a.kind) && is_mutexish(b.kind)) return a.addr != b.addr;
    return true;  // atomic vs mutex: distinct objects
}

struct controller;

thread_local controller* t_ctrl = nullptr;
thread_local per_thread* t_self = nullptr;

std::mutex g_check_mu;  // one model::check() at a time per process

struct controller {
    // ---- immutable per check() ----
    options opts;
    const std::function<void()>* body = nullptr;

    // ---- exploration state (survives across executions) ----
    std::vector<dfs_frame> stack;  // exhaustive DFS
    long executions = 0;
    std::vector<alt> forced;       // "dfs:" replay decisions
    bool dfs_replay = false;
    bool pct_mode = false;
    std::uint64_t pct_seed = 0;    // seed of the current iteration
    int last_len = 48;             // PCT change-point horizon

    // ---- per-execution state ----
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::unique_ptr<per_thread>> threads;
    std::unordered_map<const void*, var_state> vars;
    std::unordered_map<const void*, mutex_state> mutexes;
    std::unordered_map<const void*, cv_state> cvs;
    std::unordered_map<const void*, std::string> names;  // kept across runs
    vclock sc_clock;
    std::vector<alt> taken;
    std::string trace;
    int step = 0;
    int live = 0;
    int last_granted = -1;
    int preemptions = 0;
    bool abort = false;
    bool finished = false;
    bool exec_failed = false;
    std::string fail_reason;
    std::uint64_t rng = 0;
    std::vector<int> change_points;
    int pct_low = -1;  // next demoted priority (counts down)

    // ---------------- naming / formatting ----------------

    std::string nm(const void* addr) {
        auto it = names.find(addr);
        if (it != names.end()) return it->second;
        char buf[32];
        std::snprintf(buf, sizeof buf, "@%p", addr);
        return buf;
    }

    void tline(int tid, const std::string& text) {
        char head[32];
        std::snprintf(head, sizeof head, "  #%-3d T%d ", step, tid);
        trace += head;
        trace += text;
        trace += '\n';
    }

    std::string describe(const per_thread& t) {
        if (t.st == tstate::cv_waiting)
            return "parked on cv " + nm_of_waiting_cv(t.tid);
        if (!t.has_pending) return "running";
        const op_desc& o = t.pending;
        switch (o.kind) {
            case op_kind::mtx_lock: return "lock " + nm(o.addr);
            case op_kind::mtx_try_lock: return "try_lock " + nm(o.addr);
            case op_kind::mtx_unlock: return "unlock " + nm(o.addr);
            case op_kind::cv_relock:
                return "reacquire " + nm(o.addr) + " after cv wake";
            case op_kind::cv_wait: return "wait on cv " + nm(o.addr);
            case op_kind::cv_notify: return "notify cv " + nm(o.addr);
            case op_kind::join_:
                return "join T" + std::to_string(o.target);
            case op_kind::load: return "load " + nm(o.addr);
            case op_kind::store: return "store " + nm(o.addr);
            case op_kind::rmw: return "rmw " + nm(o.addr);
            case op_kind::cas: return "cas " + nm(o.addr);
            case op_kind::fence: return "fence";
            case op_kind::begin: return "begin";
            case op_kind::spawn: return "spawn";
            case op_kind::yield_: return "yield";
        }
        return "?";
    }

    std::string nm_of_waiting_cv(int tid) {
        for (auto& [addr, st] : cvs)
            for (const cv_waiter& w : st.waiters)
                if (w.tid == tid) return nm(addr);
        return "?";
    }

    // ---------------- failure ----------------

    [[noreturn]] void fail(std::string reason) {
        exec_failed = true;
        fail_reason = std::move(reason);
        abort = true;
        cv.notify_all();
        throw execution_aborted{};
    }

    // ---------------- registration ----------------

    void ensure_var(const void* addr, std::uint64_t init) {
        auto [it, fresh] = vars.try_emplace(addr);
        if (fresh) it->second.hist.push_back(store_rec{init, -1, 0, {}});
    }

    int register_thread(const per_thread* parent) {
        const int tid = static_cast<int>(threads.size());
        if (tid >= kMaxThreads)
            fail("thread limit exceeded (kMaxThreads = " +
                 std::to_string(kMaxThreads) + ")");
        auto t = std::make_unique<per_thread>();
        t->tid = tid;
        t->st = tstate::runnable;
        t->has_pending = true;
        t->pending = op_desc{};  // begin
        if (parent != nullptr) t->clk = parent->clk;
        t->pri = pct_mode ? static_cast<int>(splitmix64(rng) % 100000) : 0;
        ++live;
        threads.push_back(std::move(t));
        return tid;
    }

    // ---------------- enabledness & read feasibility ----------------

    bool enabled(const per_thread& t) {
        if (t.st != tstate::runnable || !t.has_pending) return false;
        const op_desc& o = t.pending;
        switch (o.kind) {
            case op_kind::mtx_lock:
            case op_kind::cv_relock:
                return mutexes[o.addr].holder == -1;
            case op_kind::join_:
                return threads[static_cast<std::size_t>(o.target)]->st ==
                       tstate::done;
            default:
                return true;
        }
    }

    /// Oldest store index thread t may still read on var v: the newest of
    /// (its own coherence floor, the newest store it hb-knows).
    std::uint32_t read_floor(const per_thread& t, const var_state& v,
                             const void* addr) {
        std::uint32_t lo = 0;
        auto it = t.floor.find(addr);
        if (it != t.floor.end()) lo = it->second;
        for (std::size_t i = v.hist.size(); i-- > lo + 1;) {
            const store_rec& s = v.hist[i];
            const bool known = s.tid == -1 || s.tid == t.tid ||
                               t.clk.c[s.tid] >= s.when;
            if (known) {
                lo = std::max(lo, static_cast<std::uint32_t>(i));
                break;
            }
        }
        return lo;
    }

    int feasible_reads(const per_thread& t) {
        const op_desc& o = t.pending;
        if (o.kind != op_kind::load) return 1;
        if (o.mo == std::memory_order_seq_cst) return 1;
        const var_state& v = vars[o.addr];
        return static_cast<int>(v.hist.size() - read_floor(t, v, o.addr));
    }

    // ---------------- scheduling ----------------

    void wait_for_grant(std::unique_lock<std::mutex>& lk, per_thread& me) {
        cv.wait(lk, [&] { return abort || me.granted; });
        me.granted = false;
        if (abort) throw execution_aborted{};
    }

    std::vector<int> enabled_list() {
        std::vector<int> out;
        for (auto& t : threads)
            if (enabled(*t)) out.push_back(t->tid);
        return out;
    }

    void decide_and_grant(std::unique_lock<std::mutex>&) {
        if (abort) throw execution_aborted{};
        const std::vector<int> en = enabled_list();
        if (en.empty()) {
            if (live == 0) {
                finished = true;
                cv.notify_all();
                return;
            }
            std::string why = "deadlock:";
            for (auto& t : threads)
                if (t->st != tstate::done)
                    why += " [T" + std::to_string(t->tid) + " " +
                           describe(*t) + "]";
            fail(why);
        }
        if (static_cast<int>(taken.size()) >= opts.max_steps)
            fail("step limit exceeded (" + std::to_string(opts.max_steps) +
                 " schedule points) — possible livelock");

        const alt a = pct_mode ? choose_pct(en) : choose_dfs(en);
        if (last_granted >= 0 && a.tid != last_granted) {
            const per_thread& prev =
                *threads[static_cast<std::size_t>(last_granted)];
            if (enabled(prev)) ++preemptions;
        }
        taken.push_back(a);
        per_thread& t = *threads[static_cast<std::size_t>(a.tid)];
        t.granted = true;
        t.read_choice = a.choice;
        last_granted = a.tid;
        cv.notify_all();
    }

    alt choose_dfs(const std::vector<int>& en) {
        const std::size_t idx = taken.size();
        if (dfs_replay) {
            if (idx < forced.size()) {
                const alt f = forced[idx];
                per_thread* ft = nullptr;
                for (int tid : en)
                    if (tid == f.tid)
                        ft = threads[static_cast<std::size_t>(tid)].get();
                if (ft == nullptr || f.choice >= feasible_reads(*ft))
                    fail("replay diverged at step " + std::to_string(idx) +
                         " (code changed since the token was recorded?)");
                return f;
            }
            // Token exhausted: the recorded failure should already have
            // reproduced; run out the rest on the default schedule.
            return alt{en.front(),
                       0};
        }
        if (idx < stack.size()) {
            dfs_frame& f = stack[idx];
            const alt a = f.alts[f.cur];
            const bool ok =
                std::find(en.begin(), en.end(), a.tid) != en.end() &&
                a.choice <
                    feasible_reads(*threads[static_cast<std::size_t>(a.tid)]);
            if (!ok)
                fail("exploration diverged at step " + std::to_string(idx) +
                     " (body is not deterministic between executions)");
            f.chosen_op = threads[static_cast<std::size_t>(a.tid)]->pending;
            return a;
        }
        // New frontier node: build its sleep set from the parent, then its
        // alternative list (read choices expand per candidate thread).
        dfs_frame f;
        if (idx > 0) {
            const dfs_frame& p = stack[idx - 1];
            const int chosen = p.alts[p.cur].tid;
            std::array<bool, kMaxThreads> asleep{};
            for (const auto& t : threads) {
                const int u = t->tid;
                if (u == chosen || t->st == tstate::done || !t->has_pending)
                    continue;
                bool slept = u < kMaxThreads && p.sleep[static_cast<std::size_t>(u)];
                if (!slept)
                    for (std::size_t j = 0; j < p.cur && !slept; ++j)
                        slept = p.alts[j].tid == u;
                if (slept && independent(t->pending, p.chosen_op))
                    asleep[static_cast<std::size_t>(u)] = true;
            }
            f.sleep = asleep;
        }
        std::vector<int> cands;
        for (int tid : en)
            if (!f.sleep[static_cast<std::size_t>(tid)]) cands.push_back(tid);
        if (cands.empty()) cands.push_back(en.front());  // pruned: one path out
        if (opts.max_preemptions >= 0 && preemptions >= opts.max_preemptions &&
            last_granted >= 0) {
            const bool cur_ok =
                std::find(cands.begin(), cands.end(), last_granted) !=
                cands.end();
            if (cur_ok) cands.assign(1, last_granted);
        }
        for (int tid : cands) {
            const int n =
                feasible_reads(*threads[static_cast<std::size_t>(tid)]);
            for (int c = 0; c < n; ++c) f.alts.push_back(alt{tid, c});
        }
        f.cur = 0;
        f.chosen_op = threads[static_cast<std::size_t>(f.alts[0].tid)]->pending;
        stack.push_back(std::move(f));
        return stack.back().alts[0];
    }

    alt choose_pct(const std::vector<int>& en) {
        const int now = static_cast<int>(taken.size());
        if (last_granted >= 0 &&
            std::find(change_points.begin(), change_points.end(), now) !=
                change_points.end())
            threads[static_cast<std::size_t>(last_granted)]->pri = pct_low--;
        int best = en.front();
        for (int tid : en)
            if (threads[static_cast<std::size_t>(tid)]->pri >
                threads[static_cast<std::size_t>(best)]->pri)
                best = tid;
        per_thread& t = *threads[static_cast<std::size_t>(best)];
        const int n = feasible_reads(t);
        const int c = n > 1 ? static_cast<int>(splitmix64(rng) %
                                               static_cast<unsigned>(n))
                            : 0;
        return alt{best, c};
    }

    // ---------------- op semantics ----------------

    void perform(per_thread& me, const op_desc& o) {
        ++step;
        switch (o.kind) {
            case op_kind::begin:
                me.clk.c[me.tid] += 1;
                tline(me.tid, "begins");
                break;
            case op_kind::load: perform_load(me, o, me.read_choice); break;
            case op_kind::store: perform_store(me, o); break;
            case op_kind::rmw: perform_rmw(me, o); break;
            case op_kind::cas: perform_cas(me, o); break;
            case op_kind::fence: perform_fence(me, o); break;
            case op_kind::mtx_lock: {
                mutex_state& m = mutexes[o.addr];
                if (m.holder == me.tid) fail("recursive lock of " + nm(o.addr));
                me.clk.c[me.tid] += 1;
                me.clk.join(m.msg);
                m.holder = me.tid;
                tline(me.tid, "locks " + nm(o.addr));
                break;
            }
            case op_kind::mtx_try_lock: {
                mutex_state& m = mutexes[o.addr];
                me.clk.c[me.tid] += 1;
                if (m.holder == -1) {
                    me.clk.join(m.msg);
                    m.holder = me.tid;
                    me.op_flag = true;
                } else {
                    me.op_flag = false;
                }
                tline(me.tid, "try_lock " + nm(o.addr) +
                                  (me.op_flag ? " [ok]" : " [busy]"));
                break;
            }
            case op_kind::mtx_unlock: {
                mutex_state& m = mutexes[o.addr];
                if (m.holder != me.tid)
                    fail("unlock of " + nm(o.addr) + " not held by T" +
                         std::to_string(me.tid));
                me.clk.c[me.tid] += 1;
                m.msg.join(me.clk);
                m.holder = -1;
                tline(me.tid, "unlocks " + nm(o.addr));
                break;
            }
            case op_kind::cv_relock: {
                mutex_state& m = mutexes[o.addr];
                me.clk.c[me.tid] += 1;
                me.clk.join(m.msg);
                m.holder = me.tid;
                tline(me.tid, "wakes, reacquires " + nm(o.addr));
                break;
            }
            case op_kind::cv_notify: {
                cv_state& c = cvs[o.addr];
                me.clk.c[me.tid] += 1;
                const bool all = o.target != 0;
                const std::size_t n =
                    all ? c.waiters.size() : std::min<std::size_t>(1, c.waiters.size());
                for (std::size_t i = 0; i < n; ++i) {
                    const cv_waiter w = c.waiters[i];
                    per_thread& wt = *threads[static_cast<std::size_t>(w.tid)];
                    wt.st = tstate::runnable;
                    wt.has_pending = true;
                    wt.pending = op_desc{};
                    wt.pending.kind = op_kind::cv_relock;
                    wt.pending.addr = w.mtx;
                }
                c.waiters.erase(c.waiters.begin(),
                                c.waiters.begin() + static_cast<long>(n));
                tline(me.tid, (all ? "notify_all " : "notify_one ") +
                                  nm(o.addr) + " (wakes " +
                                  std::to_string(n) + ")");
                break;
            }
            case op_kind::spawn: {
                me.clk.c[me.tid] += 1;
                const int child = register_thread(&me);
                me.op_result = static_cast<std::uint64_t>(child);
                tline(me.tid, "spawns T" + std::to_string(child));
                break;
            }
            case op_kind::join_: {
                me.clk.c[me.tid] += 1;
                me.clk.join(
                    threads[static_cast<std::size_t>(o.target)]->clk);
                tline(me.tid, "joins T" + std::to_string(o.target));
                break;
            }
            case op_kind::yield_:
                me.clk.c[me.tid] += 1;
                tline(me.tid, "yields");
                break;
            case op_kind::cv_wait:
                break;  // handled by the two-stage path in on_cv_wait
        }
    }

    void perform_load(per_thread& me, const op_desc& o, int choice) {
        var_state& v = vars[o.addr];
        const std::uint32_t n = static_cast<std::uint32_t>(v.hist.size());
        const std::uint32_t lo = read_floor(me, v, o.addr);
        const int count =
            o.mo == std::memory_order_seq_cst ? 1 : static_cast<int>(n - lo);
        if (choice >= count)
            fail("internal: stale read choice out of range on " + nm(o.addr));
        const std::uint32_t idx = n - 1 - static_cast<std::uint32_t>(choice);
        const store_rec s = v.hist[idx];
        me.clk.c[me.tid] += 1;
        if (o.mo == std::memory_order_seq_cst) me.clk.join(sc_clock);
        if (acquire_part(o.mo)) me.clk.join(s.msg);
        else me.acq_pending.join(s.msg);
        if (o.mo == std::memory_order_seq_cst) sc_clock.join(me.clk);
        auto& fl = me.floor[o.addr];
        fl = std::max(fl, idx);
        me.op_result = s.bits;
        std::string line = "load  " + nm(o.addr) + " -> " +
                           std::to_string(s.bits) + " (" + mo_name(o.mo) + ")";
        if (idx + 1 < n)
            line += " [stale: " + std::to_string(n - 1 - idx) + " newer]";
        tline(me.tid, line);
    }

    void commit_store(per_thread& me, const op_desc& o, std::uint64_t bits,
                      const vclock* carried) {
        // Caller has already ticked the clock and done the acquire half.
        var_state& v = vars[o.addr];
        vclock msg;
        if (carried != nullptr) msg = *carried;  // release-sequence carry
        if (release_part(o.mo)) msg.join(me.clk);
        else if (me.has_rel_fence) msg.join(me.rel_fence);
        if (o.mo == std::memory_order_seq_cst) sc_clock.join(me.clk);
        v.hist.push_back(store_rec{bits, me.tid, me.clk.c[me.tid], msg});
        me.floor[o.addr] = static_cast<std::uint32_t>(v.hist.size() - 1);
    }

    void perform_store(per_thread& me, const op_desc& o) {
        me.clk.c[me.tid] += 1;
        if (o.mo == std::memory_order_seq_cst) me.clk.join(sc_clock);
        commit_store(me, o, o.operand, nullptr);
        tline(me.tid, "store " + nm(o.addr) + " = " +
                          std::to_string(o.operand) + " (" + mo_name(o.mo) +
                          ")");
    }

    void perform_rmw(per_thread& me, const op_desc& o) {
        var_state& v = vars[o.addr];
        const store_rec s = v.hist.back();  // RMWs read the newest store
        me.clk.c[me.tid] += 1;
        if (o.mo == std::memory_order_seq_cst) me.clk.join(sc_clock);
        if (acquire_part(o.mo)) me.clk.join(s.msg);
        else me.acq_pending.join(s.msg);
        const std::uint64_t nb = o.fn(s.bits, o.operand);
        commit_store(me, o, nb, &s.msg);
        me.op_result = s.bits;
        tline(me.tid, "rmw   " + nm(o.addr) + ": " + std::to_string(s.bits) +
                          " -> " + std::to_string(nb) + " (" + mo_name(o.mo) +
                          ")");
    }

    void perform_cas(per_thread& me, const op_desc& o) {
        var_state& v = vars[o.addr];
        const store_rec s = v.hist.back();
        me.clk.c[me.tid] += 1;
        if (s.bits == o.expected) {
            if (o.mo == std::memory_order_seq_cst) me.clk.join(sc_clock);
            if (acquire_part(o.mo)) me.clk.join(s.msg);
            else me.acq_pending.join(s.msg);
            commit_store(me, o, o.desired, &s.msg);
            me.op_flag = true;
            me.op_result = s.bits;
            tline(me.tid, "cas   " + nm(o.addr) + ": " +
                              std::to_string(s.bits) + " -> " +
                              std::to_string(o.desired) + " (" +
                              mo_name(o.mo) + ") [ok]");
        } else {
            if (o.mo2 == std::memory_order_seq_cst) me.clk.join(sc_clock);
            if (acquire_part(o.mo2)) me.clk.join(s.msg);
            else me.acq_pending.join(s.msg);
            if (o.mo2 == std::memory_order_seq_cst) sc_clock.join(me.clk);
            auto& fl = me.floor[o.addr];
            fl = std::max(fl,
                          static_cast<std::uint32_t>(v.hist.size() - 1));
            me.op_flag = false;
            me.op_result = s.bits;
            tline(me.tid, "cas   " + nm(o.addr) + ": expected " +
                              std::to_string(o.expected) + ", found " +
                              std::to_string(s.bits) + " (" +
                              mo_name(o.mo2) + ") [fail]");
        }
    }

    void perform_fence(per_thread& me, const op_desc& o) {
        me.clk.c[me.tid] += 1;
        if (acquire_part(o.mo)) me.clk.join(me.acq_pending);
        if (o.mo == std::memory_order_seq_cst) me.clk.join(sc_clock);
        if (release_part(o.mo)) {
            me.rel_fence = me.clk;
            me.has_rel_fence = true;
        }
        if (o.mo == std::memory_order_seq_cst) sc_clock.join(me.clk);
        tline(me.tid, std::string("fence (") + mo_name(o.mo) + ")");
    }

    // ---------------- the schedule point ----------------

    /// Post-abort semantics: threads of a failed execution finish by
    /// unwinding, and destructors on that path (unique_lock, ws_deque's
    /// drain) still reach the shim.  Those calls must not throw and must
    /// not schedule — they fall through against the committed mirror
    /// values so teardown terminates.  Spawning, however, is always plain
    /// user code and must stop the thread, so it rethrows.
    std::uint64_t passthrough(per_thread& me, const op_desc& op) {
        switch (op.kind) {
            case op_kind::spawn:
                throw execution_aborted{};
            case op_kind::cas:
                me.op_flag = op.init == op.expected;
                me.op_result = op.init;
                break;
            case op_kind::mtx_try_lock:
                me.op_flag = true;  // let teardown proceed
                break;
            default:
                me.op_result = op.init;
                break;
        }
        return me.op_result;
    }

    std::uint64_t schedule_and_perform(op_desc op) {
        per_thread& me = *t_self;
        std::unique_lock<std::mutex> lk(mu);
        if (abort) return passthrough(me, op);
        if (is_mem(op.kind)) ensure_var(op.addr, op.init);
        if (is_mutexish(op.kind)) mutexes.try_emplace(op.addr);
        if (op.kind == op_kind::cv_notify) cvs.try_emplace(op.addr);
        me.pending = op;
        me.has_pending = true;
        me.st = tstate::runnable;
        decide_and_grant(lk);
        wait_for_grant(lk, me);
        me.st = tstate::running;
        me.has_pending = false;
        perform(me, op);
        return me.op_result;
    }

    void do_cv_wait(const void* cvp, const void* m) {
        per_thread& me = *t_self;
        std::unique_lock<std::mutex> lk(mu);
        if (abort) throw execution_aborted{};
        cvs.try_emplace(cvp);
        mutexes.try_emplace(m);
        op_desc op;
        op.kind = op_kind::cv_wait;
        op.addr = cvp;
        op.addr2 = m;
        me.pending = op;
        me.has_pending = true;
        me.st = tstate::runnable;
        decide_and_grant(lk);
        wait_for_grant(lk, me);
        me.has_pending = false;
        // Stage 1: atomically release the mutex and park on the cv.
        ++step;
        mutex_state& ms = mutexes[m];
        if (ms.holder != me.tid)
            fail("cv wait on " + nm(cvp) + " without holding " + nm(m));
        me.clk.c[me.tid] += 1;
        ms.msg.join(me.clk);
        ms.holder = -1;
        me.st = tstate::cv_waiting;
        cvs[cvp].waiters.push_back(cv_waiter{me.tid, m});
        tline(me.tid, "waits on " + nm(cvp) + " (releases " + nm(m) + ")");
        decide_and_grant(lk);
        // Stage 2: a notify re-arms us with a cv_relock pending op; being
        // granted implies the mutex was free.
        wait_for_grant(lk, me);
        me.st = tstate::running;
        me.has_pending = false;
        ++step;
        perform(me, op_desc{op_kind::cv_relock, m});
    }

    // ---------------- execution driver ----------------

    void reset_exec() {
        threads.clear();
        vars.clear();
        mutexes.clear();
        cvs.clear();
        sc_clock = vclock{};
        taken.clear();
        trace.clear();
        step = 0;
        live = 0;
        last_granted = -1;
        preemptions = 0;
        abort = false;
        finished = false;
        exec_failed = false;
        fail_reason.clear();
        if (pct_mode) {
            rng = pct_seed;
            change_points.clear();
            const int horizon = std::max(last_len, 16);
            for (int i = 0; i + 1 < opts.pct_depth; ++i)
                change_points.push_back(
                    1 + static_cast<int>(splitmix64(rng) %
                                         static_cast<unsigned>(horizon)));
            pct_low = -1;
        }
    }

    static void trampoline(controller* c, int tid) {
        t_ctrl = c;
        bool aborted = false;
        per_thread* me = nullptr;
        {
            std::unique_lock<std::mutex> lk(c->mu);
            me = c->threads[static_cast<std::size_t>(tid)].get();
            t_self = me;
            try {
                c->wait_for_grant(lk, *me);
                me->st = tstate::running;
                me->has_pending = false;
                c->perform(*me, op_desc{});  // begin
            } catch (execution_aborted&) {
                aborted = true;
            }
        }
        if (!aborted) {
            try {
                me->fn();
            } catch (execution_aborted&) {
                aborted = true;
            }
        }
        std::unique_lock<std::mutex> lk(c->mu);
        me->st = tstate::done;
        me->has_pending = false;
        me->clk.c[me->tid] += 1;
        c->live -= 1;
        if (!c->abort) c->tline(tid, "exits");
        if (c->live == 0) {
            c->finished = true;
            c->cv.notify_all();
        } else if (!c->abort) {
            try {
                c->decide_and_grant(lk);
            } catch (execution_aborted&) {
            }
        }
        t_self = nullptr;
        t_ctrl = nullptr;
    }

    void run_one() {
        reset_exec();
        {
            std::unique_lock<std::mutex> lk(mu);
            register_thread(nullptr);  // tid 0 = the body
            threads[0]->fn = *body;
        }
        std::thread os0(&controller::trampoline, this, 0);
        {
            std::unique_lock<std::mutex> lk(mu);
            try {
                decide_and_grant(lk);  // grant T0's begin
            } catch (execution_aborted&) {
            }
            cv.wait(lk, [&] { return finished; });
        }
        os0.join();
        last_len = std::max(8, static_cast<int>(taken.size()));
    }

    void backtrack() {
        while (!stack.empty() &&
               stack.back().cur + 1 >= stack.back().alts.size())
            stack.pop_back();
        if (!stack.empty()) stack.back().cur += 1;
    }

    std::string make_token() const {
        if (pct_mode) return "pct:" + std::to_string(pct_seed);
        std::string t = "dfs:";
        for (std::size_t i = 0; i < taken.size(); ++i) {
            if (i != 0) t += ',';
            t += std::to_string(taken[i].tid) + "." +
                 std::to_string(taken[i].choice);
        }
        return t;
    }

    result finish_failed() {
        result r;
        r.failed = true;
        r.executions = executions;
        r.reason = fail_reason;
        r.trace = trace;
        r.replay = make_token();
        r.seed = pct_mode ? pct_seed : 0;
        if (!opts.quiet) {
            std::fprintf(stderr,
                         "amt::model FAILURE after %ld execution(s): %s\n"
                         "%s  replay token: %s\n",
                         executions, r.reason.c_str(), r.trace.c_str(),
                         r.replay.c_str());
        }
        return r;
    }

    result run() {
        if (opts.replay != nullptr) return run_replay();
        if (opts.mode == options::mode_t::random) {
            pct_mode = true;
            std::uint64_t s = opts.seed;
            for (int i = 0; i < opts.iterations; ++i) {
                pct_seed = splitmix64(s);
                run_one();
                ++executions;
                if (exec_failed) return finish_failed();
            }
            result r;
            r.executions = executions;
            return r;
        }
        for (;;) {
            run_one();
            ++executions;
            if (exec_failed) return finish_failed();
            backtrack();
            if (stack.empty()) {
                result r;
                r.complete = true;
                r.executions = executions;
                return r;
            }
            if (executions >= opts.max_executions) {
                result r;
                r.executions = executions;
                return r;
            }
        }
    }

    result run_replay() {
        const char* tok = opts.replay;
        if (std::strncmp(tok, "pct:", 4) == 0) {
            pct_mode = true;
            pct_seed = std::strtoull(tok + 4, nullptr, 10);
            run_one();
            ++executions;
            if (exec_failed) return finish_failed();
        } else if (std::strncmp(tok, "dfs:", 4) == 0) {
            dfs_replay = true;
            const char* p = tok + 4;
            while (*p != '\0') {
                char* end = nullptr;
                const long tid = std::strtol(p, &end, 10);
                long choice = 0;
                if (*end == '.') choice = std::strtol(end + 1, &end, 10);
                forced.push_back(
                    alt{static_cast<int>(tid), static_cast<int>(choice)});
                p = (*end == ',') ? end + 1 : end;
            }
            run_one();
            ++executions;
            if (exec_failed) return finish_failed();
        } else {
            result r;
            r.failed = true;
            r.reason = std::string("unrecognized replay token: ") + tok;
            return r;
        }
        result r;  // replay ran clean — report "did not reproduce"
        r.executions = executions;
        return r;
    }
};

}  // namespace

// ======================= public API =======================

result check(const options& opts, std::function<void()> body) {
    std::lock_guard<std::mutex> g(g_check_mu);
    controller c;
    c.opts = opts;
    c.body = &body;
    return c.run();
}

void model_assert(bool cond, const char* msg) {
    if (cond) return;
    if (t_self == nullptr) {
        std::fprintf(stderr, "amt::model_assert outside execution: %s\n", msg);
        std::abort();
    }
    controller& c = *t_ctrl;
    std::unique_lock<std::mutex> lk(c.mu);
    if (c.abort) throw execution_aborted{};
    c.tline(t_self->tid, std::string("ASSERT FAILS: ") + msg);
    c.fail(std::string("assertion failed: ") + msg);
}

bool active() noexcept { return t_self != nullptr; }

void yield() {
    if (t_self == nullptr) return;
    op_desc o;
    o.kind = op_kind::yield_;
    t_ctrl->schedule_and_perform(o);
}

void set_name(const void* addr, const char* nm) {
    if (t_self == nullptr) return;
    std::lock_guard<std::mutex> lk(t_ctrl->mu);
    t_ctrl->names[addr] = nm;
}

// ======================= model::thread =======================

thread::thread(std::function<void()> fn) {
    if (t_self == nullptr) {
        std::fprintf(stderr,
                     "amt::model::thread spawned outside model::check()\n");
        std::abort();
    }
    controller* c = t_ctrl;
    op_desc o;
    o.kind = op_kind::spawn;
    tid_ = static_cast<int>(c->schedule_and_perform(o));
    // Only this thread runs until its next schedule point, so the child
    // cannot execute before its body is installed below — and even if its
    // begin grant already landed, the trampoline's wait predicate sees it.
    {
        std::lock_guard<std::mutex> lk(c->mu);
        c->threads[static_cast<std::size_t>(tid_)]->fn = std::move(fn);
    }
    os_ = std::thread(&controller::trampoline, c, tid_);
}

thread::thread(thread&& other) noexcept
    : os_(std::move(other.os_)),
      tid_(other.tid_),
      model_joined_(other.model_joined_) {
    other.tid_ = -1;
    other.model_joined_ = true;
}

thread& thread::operator=(thread&& other) noexcept {
    if (this != &other) {
        if (os_.joinable()) os_.join();
        os_ = std::move(other.os_);
        tid_ = other.tid_;
        model_joined_ = other.model_joined_;
        other.tid_ = -1;
        other.model_joined_ = true;
    }
    return *this;
}

thread::~thread() {
    // Normal executions must model-join first; aborted executions unwind
    // through here, and the OS join below drains the child (it wakes on
    // the abort broadcast and exits).
    if (os_.joinable()) os_.join();
}

void thread::join() {
    op_desc o;
    o.kind = op_kind::join_;
    o.target = tid_;
    t_ctrl->schedule_and_perform(o);  // enabled only once the target is done
    model_joined_ = true;
    if (os_.joinable()) os_.join();
}

// ======================= shim hooks =======================

namespace detail {

bool in_execution() noexcept { return t_self != nullptr; }

std::uint64_t on_load(const void* addr, std::uint64_t init, memory_order mo) {
    op_desc o;
    o.kind = op_kind::load;
    o.addr = addr;
    o.mo = mo;
    o.init = init;
    return t_ctrl->schedule_and_perform(o);
}

void on_store(const void* addr, std::uint64_t init, std::uint64_t bits,
              memory_order mo) {
    op_desc o;
    o.kind = op_kind::store;
    o.addr = addr;
    o.mo = mo;
    o.init = init;
    o.operand = bits;
    t_ctrl->schedule_and_perform(o);
}

std::uint64_t on_rmw(const void* addr, std::uint64_t init, rmw_fn f,
                     std::uint64_t operand, memory_order mo) {
    op_desc o;
    o.kind = op_kind::rmw;
    o.addr = addr;
    o.mo = mo;
    o.init = init;
    o.operand = operand;
    o.fn = f;
    return t_ctrl->schedule_and_perform(o);
}

bool on_cas(const void* addr, std::uint64_t init, std::uint64_t& expected,
            std::uint64_t desired, memory_order success,
            memory_order failure) {
    op_desc o;
    o.kind = op_kind::cas;
    o.addr = addr;
    o.mo = success;
    o.mo2 = failure;
    o.init = init;
    o.desired = desired;
    o.expected = expected;
    const std::uint64_t found = t_ctrl->schedule_and_perform(o);
    const bool ok = t_self->op_flag;
    if (!ok) expected = found;
    return ok;
}

void on_fence(memory_order mo) {
    op_desc o;
    o.kind = op_kind::fence;
    o.mo = mo;
    t_ctrl->schedule_and_perform(o);
}

void on_mutex_lock(const void* m) {
    op_desc o;
    o.kind = op_kind::mtx_lock;
    o.addr = m;
    t_ctrl->schedule_and_perform(o);
}

bool on_mutex_try_lock(const void* m) {
    op_desc o;
    o.kind = op_kind::mtx_try_lock;
    o.addr = m;
    t_ctrl->schedule_and_perform(o);
    return t_self->op_flag;
}

void on_mutex_unlock(const void* m) {
    op_desc o;
    o.kind = op_kind::mtx_unlock;
    o.addr = m;
    try {
        t_ctrl->schedule_and_perform(o);
    } catch (execution_aborted&) {
        // Reached while unwinding an aborted execution (unique_lock
        // destructors): swallow — mutual exclusion is moot past abort, and
        // a throw here would escape a destructor.
    }
}

void on_cv_wait(const void* cvp, const void* m) { t_ctrl->do_cv_wait(cvp, m); }

void on_cv_notify(const void* cvp, bool all) {
    op_desc o;
    o.kind = op_kind::cv_notify;
    o.addr = cvp;
    o.target = all ? 1 : 0;
    try {
        t_ctrl->schedule_and_perform(o);
    } catch (execution_aborted&) {
        // Like unlock: notify may run from cleanup paths during abort.
    }
}

}  // namespace detail
}  // namespace amt::model

#endif  // AMT_MODEL_CHECK
