// amt/trace.hpp
//
// Task-level tracing: per-thread, cache-line-padded, lock-free ring buffers
// of fixed-size trace events, stamped with amt::clock — the analogue of
// HPX's APEX/OTF2 task tracing, scoped to what the paper's Figure 11
// analysis actually needs.  Workers record task spans (labelled by the
// upper layers via annotate_task), successful steals, coalesced
// steal-search/idle gap spans and barrier waits; a writer drains every ring
// into Chrome trace-event JSON (loadable in Perfetto / chrome://tracing)
// and into a per-phase utilization report attributing productive / steal /
// idle / barrier time to each leapfrog phase.
//
// Cost model, matching the single-writer relaxed_counter discipline:
//
//   * disarmed (default): every probe is one relaxed atomic load and a
//     predictable branch — measured <1% on the task-graph iteration, see
//     bench/trace_overhead.
//   * AMT_TRACE_DISABLE defined: probes are empty inline functions, zero
//     instructions on the task hot path.
//   * armed: one steady_clock read per span endpoint plus a single-writer
//     ring push (no lock prefix, no allocation).  Ring overflow drops the
//     event and bumps a per-ring drop counter — recording never blocks.
//
// Arming: trace::arm() / trace::disarm(), or the AMT_TRACE environment
// variable at process start (any value other than "" or "0"), mirroring
// AMT_HAZARD_TRACK.  arm()/disarm() must not race with in-flight tasks of
// a running graph — quiesce first, exactly like fault::arm().
//
// Overflow semantics: rings keep the *first* capacity events (a
// deterministic prefix of the run) and count the rest in dropped(); the
// drop total is surfaced in the utilization report.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "amt/atomic.hpp"
#include "amt/config.hpp"
#include "amt/counters.hpp"

namespace amt::trace {

/// What a trace event records.  Spans carry a duration; steal,
/// continuation_ready and mark are instants (duration 0).
enum class event_kind : std::uint8_t {
    task_span,     ///< one task body execution (labelled via annotate_task)
    halo_span,     ///< dist-driver pack/unpack, nested inside a task span
    barrier_span,  ///< a thread blocked in a barrier get()/wait
    search_span,   ///< deque empty: actively stealing (never parked)
    idle_span,     ///< deque empty: parked on the wakeup cv at least once
    phase_span,    ///< one leapfrog phase window (driver barrier stamps)
    checkpoint_span,  ///< checkpoint-pack work, nested inside a task span
    steal,         ///< successful steal from a victim deque
    continuation_ready,  ///< a stage spawner fired (barrier became ready)
    mark,          ///< point annotation (cycle boundaries, watchdog stalls)
};

/// Fixed-size trace record.  `name` must point to storage that outlives the
/// runtime (string literals / interned site labels — the same contract as
/// fault::probe sites).  Timestamps are nanoseconds relative to the trace
/// epoch established by arm().
struct event {
    std::int64_t ts_ns = 0;
    std::int64_t dur_ns = 0;
    const char* name = nullptr;
    std::int32_t arg = -1;
    event_kind kind = event_kind::mark;
};

namespace detail {
extern amt::atomic<bool> g_armed;
struct task_label {
    const char* name = nullptr;
    std::int32_t arg = -1;
};
void annotate_slow(const char* name, std::int32_t arg) noexcept;
task_label take_label_slow() noexcept;
void emit(event_kind kind, const char* name, std::int64_t ts_ns,
          std::int64_t dur_ns, std::int32_t arg) noexcept;
std::int64_t now_ns_slow() noexcept;
}  // namespace detail

#if defined(AMT_TRACE_DISABLE)

/// Compiled out: probes vanish entirely.
inline constexpr bool compiled_in = false;
[[nodiscard]] inline bool enabled() noexcept { return false; }
inline void annotate_task(const char*, std::int32_t) noexcept {}
[[nodiscard]] inline detail::task_label take_task_label() noexcept {
    return {};
}
[[nodiscard]] inline std::int64_t now_ns() noexcept { return 0; }
inline void emit_span(event_kind, const char*, std::int64_t, std::int64_t,
                      std::int32_t = -1) noexcept {}
inline void emit_span(event_kind, const char*, clock::time_point,
                      clock::time_point, std::int32_t = -1) noexcept {}
inline void instant(event_kind, const char*, std::int32_t = -1) noexcept {}
[[nodiscard]] inline std::int64_t to_ns(clock::time_point) noexcept {
    return 0;
}

#else

inline constexpr bool compiled_in = true;

/// True while tracing is armed.  The one check on every disarmed probe.
[[nodiscard]] inline bool enabled() noexcept {
    return detail::g_armed.load(amt::memory_order_relaxed);
}

/// Labels the *currently executing* task: the scheduler emits exactly one
/// task span per execution and names it from the last annotation the body
/// left behind (first annotation wins, so a body that inlines further
/// completions keeps its own label).  Called by the wave builders' guarded
/// wrappers with the wave site and partition index.
inline void annotate_task(const char* name, std::int32_t arg) noexcept {
    if (enabled()) detail::annotate_slow(name, arg);
}

/// Scheduler side of the handshake: takes and clears the pending label.
[[nodiscard]] inline detail::task_label take_task_label() noexcept {
    return detail::take_label_slow();
}

/// Nanoseconds since the trace epoch (arm time).
[[nodiscard]] inline std::int64_t now_ns() noexcept {
    return detail::now_ns_slow();
}

[[nodiscard]] std::int64_t to_ns(clock::time_point tp) noexcept;

/// Records a span on the calling thread's ring.  No-op when disarmed.
inline void emit_span(event_kind kind, const char* name, std::int64_t ts_ns,
                      std::int64_t end_ns, std::int32_t arg = -1) noexcept {
    if (enabled()) detail::emit(kind, name, ts_ns, end_ns - ts_ns, arg);
}
void emit_span(event_kind kind, const char* name, clock::time_point begin,
               clock::time_point end, std::int32_t arg = -1) noexcept;

/// Records an instant event (duration 0) on the calling thread's ring.
inline void instant(event_kind kind, const char* name,
                    std::int32_t arg = -1) noexcept {
    if (enabled()) detail::emit(kind, name, detail::now_ns_slow(), 0, arg);
}

#endif  // AMT_TRACE_DISABLE

/// RAII span: stamps begin at construction, emits at destruction.  Costs
/// one relaxed load when disarmed; nothing when compiled out.
class scoped_span {
public:
    explicit scoped_span(event_kind kind, const char* name,
                         std::int32_t arg = -1) noexcept {
        if (enabled()) {
            kind_ = kind;
            name_ = name;
            arg_ = arg;
            t0_ = now_ns();
            active_ = true;
        }
    }
    scoped_span(const scoped_span&) = delete;
    scoped_span& operator=(const scoped_span&) = delete;
    ~scoped_span() {
        if (active_) emit_span(kind_, name_, t0_, now_ns(), arg_);
    }

private:
    std::int64_t t0_ = 0;
    const char* name_ = nullptr;
    std::int32_t arg_ = -1;
    event_kind kind_ = event_kind::mark;
    bool active_ = false;
};

/// Point annotation on the calling thread ("cycle", "stall:<site>", ...).
inline void mark(const char* name, std::int32_t arg = -1) noexcept {
    instant(event_kind::mark, name, arg);
}

// ---- arming and ring management -----------------------------------------

/// Starts recording.  Establishes the trace epoch when the rings are empty
/// (so a reset() + arm() restarts time at zero).  Also armed at process
/// start by AMT_TRACE (any value other than "" or "0").
void arm();

/// Stops recording.  Already-recorded events stay drainable.
void disarm();
[[nodiscard]] bool armed() noexcept;

/// Drops every ring and event and re-opens thread registration.  Call at a
/// quiescent point only (no in-flight tasks).
void reset();

/// Events each per-thread ring can hold before dropping (keep-first
/// semantics).  Takes effect for rings created *after* the call; call
/// before arm().  The default (65536) holds several hundred reduced-run
/// iterations per worker.
void set_ring_capacity(std::size_t events);
inline constexpr std::size_t default_ring_capacity = 65536;

/// Names the calling thread in the trace ("main", "worker3", ...).  The
/// scheduler names its workers automatically; external threads that want a
/// stable name call this once.  Unnamed threads appear as "threadK".
void set_thread_name(const std::string& name);

/// Events dropped on ring overflow since the last reset(), over all rings.
[[nodiscard]] std::uint64_t dropped_total() noexcept;

/// Records one leapfrog-phase window with explicit timestamps (the driver
/// computes them from its barrier-completion stamps after the fact).  Goes
/// to a dedicated "phases" pseudo-thread ring so retroactive spans can
/// never violate begin/end nesting on a real thread's timeline.
void emit_phase(const char* name, std::int64_t ts_ns, std::int64_t dur_ns,
                std::int32_t arg = -1) noexcept;

// ---- draining and writers ------------------------------------------------

/// One thread's drained timeline, in emission order.
struct thread_events {
    std::string name;
    std::vector<event> events;
    std::uint64_t dropped = 0;
};

/// Everything recorded since the last reset().  drain() copies under the
/// single-writer protocol (it reads each ring's published prefix), so it is
/// safe at any quiescent point — typically after the runtime is destroyed.
struct trace_snapshot {
    std::vector<thread_events> threads;
    std::uint64_t dropped = 0;
};
[[nodiscard]] trace_snapshot drain();

/// Chrome trace-event JSON ("X" complete events plus "M" thread-name
/// metadata; ts/dur in microseconds).  Loadable in Perfetto.
void write_chrome_trace(std::ostream& os, const trace_snapshot& snap);
bool write_chrome_trace_file(const std::string& path,
                             const trace_snapshot& snap);

// ---- per-phase utilization attribution ----------------------------------

/// Worker-seconds of one phase, summed over that phase's windows across all
/// traced iterations.  productive = task spans, steal = unparked search
/// gaps, idle = parked gaps, barrier = gap time running into the window's
/// closing barrier (the tail wait for stragglers).
struct phase_utilization {
    std::string name;
    double window_s = 0.0;  ///< summed window wall time (one worker)
    double productive_s = 0.0;
    double steal_s = 0.0;
    double idle_s = 0.0;
    double barrier_s = 0.0;
    /// Worker-seconds spent packing checkpoint regions in this phase.
    /// Checkpoint spans are nested inside pack task spans, so this is a
    /// *subset* of productive_s (not a fifth coverage category) — it makes
    /// the overlapped packing visible without changing the coverage math.
    double checkpoint_s = 0.0;
    std::uint64_t tasks = 0;
    std::uint64_t steals = 0;

    [[nodiscard]] double utilization() const {
        const double denom =
            productive_s + steal_s + idle_s + barrier_s;
        return denom > 0.0 ? productive_s / denom : 0.0;
    }
};

/// The per-phase attribution over a drained trace.  The four category
/// totals sum to wall_s * workers up to scheduler bookkeeping slivers
/// (unattributed_s, kept well under the 2% acceptance slack).
struct utilization_report {
    std::size_t workers = 0;
    double wall_s = 0.0;   ///< first phase-window begin to last window end
    double span_s = 0.0;   ///< full trace extent (first to last event)
    std::vector<phase_utilization> phases;
    double productive_s = 0.0;
    double steal_s = 0.0;
    double idle_s = 0.0;
    double barrier_s = 0.0;
    double checkpoint_s = 0.0;  ///< subset of productive_s (see above)
    double unattributed_s = 0.0;
    std::uint64_t tasks = 0;
    std::uint64_t steals = 0;
    std::uint64_t dropped = 0;

    [[nodiscard]] double accounted_s() const {
        return productive_s + steal_s + idle_s + barrier_s;
    }
    /// accounted / (wall * workers) — the acceptance check wants >= 0.98.
    [[nodiscard]] double coverage() const {
        const double denom = wall_s * static_cast<double>(workers);
        return denom > 0.0 ? accounted_s() / denom : 0.0;
    }
    [[nodiscard]] double utilization() const {
        const double denom = wall_s * static_cast<double>(workers);
        return denom > 0.0 ? productive_s / denom : 0.0;
    }
};

/// Attributes worker time to phases.  Runs without phase spans too (e.g.
/// the foreach driver): the whole trace extent becomes one "run" window.
[[nodiscard]] utilization_report build_utilization(
    const trace_snapshot& snap);

void write_utilization_text(std::ostream& os, const utilization_report& r);
void write_utilization_json(std::ostream& os, const utilization_report& r);

/// Writes JSON when `path` ends in ".json", text otherwise.
bool write_utilization_file(const std::string& path,
                            const utilization_report& r);

}  // namespace amt::trace
