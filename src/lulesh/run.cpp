// lulesh/run.cpp — the main iteration loop, mirroring the reference main():
// TimeIncrement followed by LagrangeLeapFrog each cycle, until stoptime or
// the iteration cap.

#include <chrono>
#include <sstream>
#include <string>

#include "amt/fault.hpp"
#include "lulesh/driver.hpp"
#include "lulesh/kernels.hpp"

namespace lulesh {

namespace {

std::string describe_failure(const char* what, int cycle, real_t dt) {
    std::ostringstream os;
    os << what << " (cycle " << cycle << ", dt " << dt << ")";
    return os.str();
}

}  // namespace

run_result run_simulation(domain& d, driver& drv, int max_cycles) {
    run_result result;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        while (d.time_ < d.stoptime && d.cycle < max_cycles) {
            kernels::time_increment(d);
            // Publish the cycle being computed so an epoch-targeted fault
            // plan fires in exactly one deterministic iteration.
            amt::fault::set_epoch(d.cycle);
            drv.advance(d);
        }
    } catch (const simulation_error& err) {
        result.run_status = err.code();
        result.error_message = describe_failure(err.what(), d.cycle, d.deltatime);
    } catch (const amt::fault::injected_fault& err) {
        result.run_status = status::task_fault;
        result.error_message = describe_failure(err.what(), d.cycle, d.deltatime);
    }
    const auto t1 = std::chrono::steady_clock::now();
    result.cycles = d.cycle;
    result.final_time = d.time_;
    result.final_dt = d.deltatime;
    result.final_origin_energy = d.e[0];
    result.elapsed_seconds = std::chrono::duration<double>(t1 - t0).count();
    return result;
}

}  // namespace lulesh
