// tests/core/test_critical_path.cpp — the LULESH-aware critical-path
// analyzer (core/critical_path.hpp): phase binning over a profiled
// compiled iteration, the longest-chain / slack arithmetic, and the exact
// text/JSON agreement the round-trip validator
// (scripts/validate_critical_path.py) depends on.

#include "core/critical_path.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "amt/amt.hpp"
#include "lulesh/driver.hpp"

namespace {

using lulesh::analyze_critical_path;
using lulesh::critical_path_report;
using lulesh::domain;
using lulesh::options;
using lulesh::phase_profile;
using lulesh::taskgraph_driver;

struct profiled_run {
    std::unique_ptr<domain> dom;
    std::unique_ptr<amt::runtime> rt;
    std::unique_ptr<taskgraph_driver> drv;
    int iters = 0;
};

profiled_run run_profiled(int iters, bool profile = true) {
    profiled_run pr;
    options o;
    o.size = 8;
    o.num_regions = 4;
    pr.dom = std::make_unique<domain>(o);
    pr.rt = std::make_unique<amt::runtime>(2);
    pr.drv = std::make_unique<taskgraph_driver>(*pr.rt, lulesh::partition_sizes{64, 64});
    pr.drv->enable_node_profiling(profile);
    const auto rr = lulesh::run_simulation(*pr.dom, *pr.drv, iters);
    EXPECT_EQ(rr.run_status, lulesh::status::ok);
    pr.iters = iters;
    return pr;
}

TEST(CriticalPath, AnalyzeProfiledCompiledIteration) {
    const auto pr = run_profiled(6);
    ASSERT_NE(pr.drv->compiled(), nullptr);
    const critical_path_report r =
        analyze_critical_path(*pr.drv->compiled(), 2);

    EXPECT_GT(r.iterations, 0u);
    EXPECT_LE(r.iterations, static_cast<std::uint64_t>(pr.iters));
    EXPECT_EQ(r.workers, 2u);
    EXPECT_GT(r.nodes, 0u);
    EXPECT_GT(r.work_ns, 0.0);
    EXPECT_GT(r.critical_path_ns, 0.0);
    // The longest chain can never exceed the total work, and the bound
    // work/critical-path is the ideal speedup by definition.
    EXPECT_LE(r.critical_path_ns, r.work_ns + 1.0);
    EXPECT_NEAR(r.ideal_speedup, r.work_ns / r.critical_path_ns, 1e-6);
    EXPECT_GE(r.ideal_speedup, 1.0 - 1e-9);

    // The reported path is a real node sequence whose mean costs sum to
    // the critical-path length, every node flagged.
    ASSERT_FALSE(r.critical_path.empty());
    double path_sum = 0.0;
    for (const auto& t : r.critical_path) {
        EXPECT_TRUE(t.on_critical_path);
        path_sum += t.mean_ns;
    }
    EXPECT_NEAR(path_sum, r.critical_path_ns,
                1e-6 * std::max(1.0, r.critical_path_ns));
}

TEST(CriticalPath, PhaseBinningCoversEveryComputePhase) {
    const auto pr = run_profiled(6);
    const critical_path_report r =
        analyze_critical_path(*pr.drv->compiled(), 2);

    double phase_work = 0.0;
    for (std::size_t p = 0; p < phase_profile::num_phases; ++p) {
        const auto& ph = r.phases[p];
        EXPECT_STREQ(ph.name, phase_profile::name(p));
        EXPECT_GT(ph.tasks, 0u) << ph.name;
        EXPECT_GT(ph.work_ns, 0.0) << ph.name;
        EXPECT_GE(ph.chain_ns, 0.0);
        // work / chain feeds a worker count; chain <= work within a phase.
        EXPECT_LE(ph.chain_ns, ph.work_ns + 1.0) << ph.name;
        EXPECT_GE(ph.parallelism, 1.0 - 1e-9) << ph.name;
        EXPECT_GE(ph.slack_ns, 0.0) << ph.name;
        phase_work += ph.work_ns;
    }
    // Phase work excludes only the barrier nodes, so it accounts for
    // almost all of the iteration's compute.
    EXPECT_LE(phase_work, r.work_ns + 1.0);
    EXPECT_GT(phase_work, 0.5 * r.work_ns);
}

TEST(CriticalPath, TopKIsBoundedAndSortedByMeanCost) {
    const auto pr = run_profiled(6);
    const critical_path_report r =
        analyze_critical_path(*pr.drv->compiled(), 2, 5);
    ASSERT_LE(r.top.size(), 5u);
    ASSERT_FALSE(r.top.empty());
    for (std::size_t i = 1; i < r.top.size(); ++i) {
        EXPECT_GE(r.top[i - 1].mean_ns, r.top[i].mean_ns);
    }
}

TEST(CriticalPath, UnprofiledRunReportsZeroIterations) {
    const auto pr = run_profiled(4, /*profile=*/false);
    ASSERT_NE(pr.drv->compiled(), nullptr);
    const critical_path_report r =
        analyze_critical_path(*pr.drv->compiled(), 2);
    EXPECT_EQ(r.iterations, 0u);
    std::ostringstream os;
    write_critical_path_text(os, r);
    EXPECT_NE(os.str().find("no profiled replays"), std::string::npos);
}

// The exact agreement contract: durations cross both writers as the same
// llround()ed integers and ratios as the same %.4f strings, so the JSON
// validator can compare text and JSON without tolerances.
TEST(CriticalPath, TextAndJsonRenderIdenticalNumbers) {
    const auto pr = run_profiled(6);
    const critical_path_report r =
        analyze_critical_path(*pr.drv->compiled(), 2);

    std::ostringstream text_os, json_os;
    write_critical_path_text(text_os, r);
    write_critical_path_json(json_os, r);
    const std::string text = text_os.str();
    const std::string json = json_os.str();

    const auto ns = [](double v) {
        return std::to_string(std::llround(v));
    };
    EXPECT_NE(text.find("iteration work:  " + ns(r.work_ns) + " ns"),
              std::string::npos);
    EXPECT_NE(json.find("\"work_ns\":" + ns(r.work_ns)), std::string::npos);
    EXPECT_NE(text.find("critical path:   " + ns(r.critical_path_ns)),
              std::string::npos);
    EXPECT_NE(json.find("\"critical_path_ns\":" + ns(r.critical_path_ns)),
              std::string::npos);

    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.4f", r.ideal_speedup);
    EXPECT_NE(text.find(std::string("ideal speedup:   ") + ratio + "x"),
              std::string::npos);
    EXPECT_NE(json.find(std::string("\"ideal_speedup\":") + ratio),
              std::string::npos);

    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"critical_path_len\":" +
                        std::to_string(r.critical_path.size())),
              std::string::npos);
}

}  // namespace
