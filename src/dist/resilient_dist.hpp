// dist/resilient_dist.hpp
//
// Fail-soft distributed runs: coordinated rollback-and-replay over the
// per-slab checkpoint chains.  The fail-stop dist layer turns any slab
// failure into a terminal exit; this wrapper turns the *recoverable* ones —
// an injected task fault, a slab death flagged by the failure detector, a
// halo CRC failure that exhausted its channel-level retries — into a
// cluster-wide rollback:
//
//   1. The failed iteration settles (dist_driver::advance only throws after
//      every slab's chain resolved), so the cluster is quiescent.
//   2. If the driver attributed the failure to one slab
//      (dist_driver::last_failure), that slab's domain is rebuilt from
//      scratch — its memory is presumed lost — and restored from its chain.
//   3. The halo fabric is re-wired (cluster::reopen_channels) and every
//      slab is rolled back to the *same committed cycle*: the newest cycle
//      every in-memory chain holds, the same consistent-cycle rule the
//      on-disk loader (load_cluster_chains) applies.  A corrupt chain
//      record lowers the target for everyone; a corrupt base falls back to
//      the pristine entry snapshot.
//   4. The loop replays.  A transient fault's first replay runs at the
//      unchanged dt — checkpoints are bitwise and every exchange mode is
//      deterministic, so recovery is bitwise identical to a fault-free run
//      (tests verify this).  Repeat failures of the same cycle, and
//      deterministic physics failures, halve dt first.
//
// Recovery attempts per incident are bounded by max_recoveries; exhausting
// the budget ends the run with the same status (and process exit code) the
// fail-stop path would have produced — degradation never invents new
// failure modes.  See docs/resilience.md for the recovery matrix.

#pragma once

#include <functional>
#include <limits>
#include <string>

#include "dist/driver_dist.hpp"

namespace lulesh::dist {

struct dist_resilience_options {
    /// Checkpoint every K successful cycles.  K <= 0 keeps only the entry
    /// snapshot — still recoverable, at full-replay cost.
    int checkpoint_every = 10;

    /// Recovery budget per incident (failing cycle).  0 disables recovery:
    /// the first failure ends the run exactly like the fail-stop path.
    int max_recoveries = 3;

    /// When non-empty, every slab's chain is mirrored to
    /// slab_chain_path(checkpoint_path, i) with the crash-consistent v3
    /// protocol, so a process restart can resume via load_cluster_chains.
    std::string checkpoint_path;

    /// Test seam: invoked on each slab's finished record bytes just before
    /// the record is committed to that slab's chain.  Corruption tests flip
    /// bytes here to prove the consistent-cycle rollback truncates the bad
    /// chain instead of restoring corrupt state.
    std::function<void(index_t slab, std::string&)> record_hook;
};

struct dist_resilient_result {
    run_result result;

    int recoveries = 0;         ///< coordinated rollback-and-replay attempts
    int checkpoints = 0;        ///< cluster checkpoints after the entry one
    int dt_halvings = 0;        ///< replays that reduced dt first
    int entry_fallbacks = 0;    ///< rollbacks that lost the whole chain and
                                ///< restored the pristine entry snapshot
    int slab_rebuilds = 0;      ///< dead slabs rebuilt from scratch
    int last_rollback_cycle = -1;  ///< cycle the last rollback restored
};

/// Runs `drv` on `c` to stoptime / `max_cycles` with coordinated rollback
/// recovery as described above.  Exceptions other than simulation_error,
/// injected faults, and the halo-fabric channel_closed cascade are not
/// retryable and propagate.  Works with the futurized and eager exchange
/// modes (the bulk-synchronous mode has no channel fabric to re-wire, but
/// rollback and replay still apply).
dist_resilient_result run_resilient(
    cluster& c, dist_driver& drv, const dist_resilience_options& opt,
    int max_cycles = std::numeric_limits<int>::max());

}  // namespace lulesh::dist
