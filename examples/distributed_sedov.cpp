// examples/distributed_sedov.cpp
//
// The paper's future-work direction, runnable: the Sedov problem decomposed
// into z-slabs that exchange halos through channels, in both exchange
// styles — futurized (slabs overlap freely, HPX-style) and bulk-synchronous
// (global barrier per wave, MPI-style) — and a check that both match the
// single-domain solution exactly.
//
//   ./distributed_sedov -s 12 -i 50 -t 4        # 4 slabs by default
//   ./distributed_sedov -s 16 -i 80 -t 2 -r 21

#include <chrono>
#include <cmath>
#include <iostream>

#include "amt/amt.hpp"
#include "dist/cluster.hpp"
#include "dist/driver_dist.hpp"
#include "dist/halo_audit.hpp"
#include "dist/resilient_dist.hpp"
#include "lulesh/driver.hpp"
#include "lulesh/validate.hpp"

namespace {

/// Max |e − single-domain| over every slab slice — 0.0 means bitwise.
lulesh::real_t max_energy_diff(lulesh::dist::cluster& c,
                               const lulesh::domain& global) {
    lulesh::real_t max_diff = 0.0;
    for (lulesh::index_t s = 0; s < c.num_slabs(); ++s) {
        const auto& d = c.slab(s);
        const lulesh::index_t eoff = d.elem_offset();
        for (lulesh::index_t e = 0; e < d.numElem(); ++e) {
            max_diff = std::max(
                max_diff,
                std::fabs(d.e[static_cast<std::size_t>(e)] -
                          global.e[static_cast<std::size_t>(eoff + e)]));
        }
    }
    return max_diff;
}

}  // namespace

int main(int argc, char** argv) {
    lulesh::cli_options cli;
    try {
        cli = lulesh::parse_cli(argc, argv);
    } catch (const std::exception& err) {
        std::cerr << err.what() << "\n" << lulesh::usage_text(argv[0]);
        return 1;
    }
    if (cli.show_help) {
        std::cout << lulesh::usage_text(argv[0])
                  << "  (-t selects both the worker-thread and slab count "
                     "here)\n";
        return 0;
    }
    if (cli.problem.max_cycles == std::numeric_limits<int>::max()) {
        cli.problem.max_cycles = 50;
    }
    const std::size_t threads =
        cli.threads != 0 ? cli.threads
                         : std::max(1u, std::thread::hardware_concurrency());
    const auto num_slabs = static_cast<lulesh::index_t>(
        std::min<std::size_t>(threads, static_cast<std::size_t>(cli.problem.size)));
    const auto parts = cli.partitions.value_or(
        lulesh::partition_sizes::tuned_for(cli.problem.size));

    std::cout << "Distributed Sedov: size " << cli.problem.size << "^3 over "
              << num_slabs << " slabs, " << threads << " worker threads, "
              << cli.problem.max_cycles << " iterations\n\n";

    if (cli.audit_graph) {
        // Prove each slab's wave graph *plus* its halo pack/unpack tasks
        // race-free for this exact decomposition before trusting any
        // exchange mode with a run.
        lulesh::dist::cluster probe(cli.problem, num_slabs);
        const auto audits = lulesh::dist::audit_cluster(probe, parts);
        std::cout << lulesh::dist::format_cluster_audit(audits);
        if (!lulesh::dist::cluster_audit_ok(audits)) {
            return lulesh::exit_code_for(lulesh::status::hazard);
        }
        std::cout << "\n";
    }

    // Ground truth: single-domain serial run.
    lulesh::domain global(cli.problem);
    {
        lulesh::serial_driver drv;
        lulesh::run_simulation(global, drv, cli.problem.max_cycles);
    }

    const bool want_trace =
        !cli.trace_file.empty() || !cli.utilization_report_file.empty();
    if (want_trace) {
        if (!amt::trace::compiled_in) {
            std::cerr << "lulesh: tracing was compiled out "
                         "(AMT_TRACE_DISABLE); rebuild to use --trace\n";
            return 1;
        }
        amt::trace::set_thread_name("main");
        amt::trace::arm();
    }

    amt::runtime rt(threads);
    for (const auto mode : {lulesh::dist::dist_driver::exchange_mode::eager,
                            lulesh::dist::dist_driver::exchange_mode::futurized,
                            lulesh::dist::dist_driver::exchange_mode::bulk_synchronous}) {
        lulesh::dist::cluster c(cli.problem, num_slabs);
        lulesh::dist::dist_driver drv(
            rt, parts, mode,
            std::chrono::milliseconds(cli.halo_timeout_ms));
        const auto result =
            lulesh::dist::run_simulation(c, drv, cli.problem.max_cycles);

        // Validate every slab slice against the single-domain solution.
        const lulesh::real_t max_diff = max_energy_diff(c, global);
        std::cout << drv.name() << ": " << result.cycles << " cycles in "
                  << result.elapsed_seconds << " s, origin energy "
                  << result.final_origin_energy
                  << ", max |e - single-domain| = " << max_diff
                  << (max_diff == 0.0 ? "  (bitwise identical)" : "") << "\n";
    }

    int exit_status = 0;
    if (cli.checkpoint_every > 0) {
        // Fail-soft mode: the futurized exchange under the failure detector
        // and the channel-level retry layer, with coordinated rollback over
        // per-slab checkpoint chains.  Fault-injection campaigns (slab_kill,
        // halo_drop, halo_corrupt sites — see docs/resilience.md) recover
        // bitwise-identically here instead of exiting.
        amt::resilience().reset();
        lulesh::dist::cluster c(cli.problem, num_slabs);
        lulesh::dist::dist_driver drv(
            rt, parts, lulesh::dist::dist_driver::exchange_mode::futurized,
            std::chrono::milliseconds(cli.halo_timeout_ms),
            lulesh::dist::retry_policy{});
        lulesh::dist::dist_resilience_options ropt;
        ropt.checkpoint_every = cli.checkpoint_every;
        ropt.max_recoveries = cli.max_recoveries;
        ropt.checkpoint_path = cli.checkpoint_save;
        const auto rr =
            lulesh::dist::run_resilient(c, drv, ropt, cli.problem.max_cycles);
        const auto& rc = amt::resilience();
        std::cout << "dist_resilient: " << rr.result.cycles << " cycles in "
                  << rr.result.elapsed_seconds << " s, origin energy "
                  << rr.result.final_origin_energy
                  << ", max |e - single-domain| = " << max_energy_diff(c, global)
                  << "\n  recoveries " << rr.recoveries << " (slab rebuilds "
                  << rr.slab_rebuilds << ", entry fallbacks "
                  << rr.entry_fallbacks << ", dt halvings " << rr.dt_halvings
                  << "), checkpoints " << rr.checkpoints
                  << "\n  counters: crc_failures " << rc.halo_crc_failures.load()
                  << ", retries " << rc.halo_retries.load() << ", resends "
                  << rc.halo_resends.load() << ", drops "
                  << rc.halo_drops.load() << ", slab_deaths "
                  << rc.slab_deaths.load() << ", heartbeats "
                  << rc.heartbeats.load() << "\n";
        if (rr.result.run_status != lulesh::status::ok) {
            std::cerr << "dist_resilient: " << rr.result.error_message << "\n";
            exit_status = lulesh::exit_code_for(rr.result.run_status);
        }
    }

    if (want_trace) {
        // All exchange modes have completed and every future was
        // consumed — the rings are quiescent even though the runtime is
        // still alive.
        amt::trace::disarm();
        const auto snap = amt::trace::drain();
        if (!cli.trace_file.empty()) {
            if (!amt::trace::write_chrome_trace_file(cli.trace_file, snap)) {
                std::cerr << "lulesh: cannot write trace file '"
                          << cli.trace_file << "'\n";
                return 1;
            }
            std::cout << "Trace written to '" << cli.trace_file << "'\n";
        }
        if (!cli.utilization_report_file.empty()) {
            const auto report = amt::trace::build_utilization(snap);
            if (!amt::trace::write_utilization_file(
                    cli.utilization_report_file, report)) {
                std::cerr << "lulesh: cannot write utilization report '"
                          << cli.utilization_report_file << "'\n";
                return 1;
            }
            std::cout << "Utilization report written to '"
                      << cli.utilization_report_file << "'\n";
        }
    }

    std::cout << "\nper-slab plane ranges:\n";
    lulesh::dist::cluster census(cli.problem, num_slabs);
    for (lulesh::index_t s = 0; s < census.num_slabs(); ++s) {
        const auto& ext = census.slab(s).slab();
        std::cout << "  slab " << s << ": planes [" << ext.plane_begin << ", "
                  << ext.plane_end << ") — " << census.slab(s).numElem()
                  << " elements\n";
    }
    return exit_status;
}
