// core/access.hpp
//
// Declarative access sets for the task-graph waves — the foundation of the
// hazard auditor.  Every task of the five leapfrog waves (graph_waves.cpp)
// declares which domain fields it reads and writes and over which index
// ranges, derived from the kernel signatures in lulesh/kernels.hpp.  Two
// consumers:
//
//   * the static audit pass (core/graph_audit.*) walks the declarative
//     model of one iteration and proves that every read-write and
//     write-write overlap between tasks is ordered by a declared
//     continuation edge or a surviving when_all barrier — turning the
//     paper's hand-reasoned "the elided dependencies are element-local"
//     claim (trick T2) into a checkable property;
//
//   * the dynamic shadow-epoch tracker (core/hazard.*) stamps the declared
//     sets of in-flight tasks into shadow arrays and flags overlapping
//     stamps as races — and flags task bodies touching indices outside
//     their declaration, validating the declarations themselves.
//
// Index sets are intentionally *exact*, not conservative: an access is a
// contiguous interval of the field's index space or an indirect slice of a
// region element list, optionally expanded by the connectivity closure the
// kernel actually follows (element→corner-node lists, node→element-corner
// lists, element→face-neighbor links).  Exactness is what lets the auditor
// prove disjointness instead of merely failing to find an overlap.

#pragma once

#include <cstdint>
#include <vector>

#include "amt/hazard.hpp"
#include "lulesh/domain.hpp"
#include "lulesh/fields.hpp"
#include "lulesh/options.hpp"

namespace lulesh::graph {

// The field catalog (field, space, field_space, field_name) lives in
// lulesh/fields.hpp so the kernels can reference it for their hazard touch
// probes without depending on this layer; re-exported here for the graph
// model's consumers.
using lulesh::field;
using lulesh::field_name;
using lulesh::field_space;
using lulesh::num_fields;
using lulesh::space;

enum class mode : std::uint8_t { read, write };

/// Connectivity closure applied to an access's base index set — the
/// neighborhood the kernel actually dereferences.
enum class closure : std::uint8_t {
    none,           ///< exactly the base set
    elem_nodes,     ///< the 8 nodelist() nodes of each element in the set
    node_corners,   ///< the nodeElemCornerList() positions of each node
    face_neighbors  ///< the set plus its lxim/lxip/letam/letap/lzetam/lzetap
                    ///< face-adjacent elements
};

/// One declared access: `m` over field `f`, base set either the interval
/// [lo, hi) of the field's space or — when `list` is non-null — the
/// indirect element slice list[lo..hi), expanded by closure `c`.
struct access {
    field f;
    mode m;
    index_t lo = 0;
    index_t hi = 0;
    const index_t* list = nullptr;
    closure c = closure::none;
};

/// Expands `a` against the domain connectivity, invoking `visit(index)` for
/// every concrete index of the field's space the access covers.  Duplicates
/// may be visited (closures of adjacent entities overlap); visitors must be
/// idempotent per task.
template <class Visit>
void expand_access(const access& a, const domain& d, Visit&& visit) {
    auto base = [&](index_t id) {
        switch (a.c) {
            case closure::none:
                if (field_space(a.f) == space::corner) {
                    for (index_t c = 0; c < 8; ++c) visit(id * 8 + c);
                } else {
                    visit(id);
                }
                break;
            case closure::elem_nodes: {
                const index_t* nl = d.nodelist(id);
                for (int c = 0; c < 8; ++c) visit(nl[c]);
                break;
            }
            case closure::node_corners: {
                const index_t n = d.nodeElemCount(id);
                const index_t* corners = d.nodeElemCornerList(id);
                for (index_t c = 0; c < n; ++c) visit(corners[c]);
                break;
            }
            case closure::face_neighbors: {
                const auto k = static_cast<std::size_t>(id);
                visit(id);
                visit(d.lxim[k]);
                visit(d.lxip[k]);
                visit(d.letam[k]);
                visit(d.letap[k]);
                visit(d.lzetam[k]);
                visit(d.lzetap[k]);
                break;
            }
        }
    };
    if (a.list != nullptr) {
        for (index_t i = a.lo; i < a.hi; ++i) base(a.list[i]);
    } else {
        for (index_t i = a.lo; i < a.hi; ++i) base(i);
    }
}

/// Extent of a field's index space on this domain (`slots` supplies the
/// wave-5 partial count, which is not a domain property).
std::size_t space_extent(space s, const domain& d, std::size_t slots);

// --- per-task access declarations ----------------------------------------
//
// One function per distinct task body spawned by graph_waves.cpp, mirroring
// the kernel signatures it fuses.  Ranges are the same [lo, hi) the builder
// hands the kernels; region tasks additionally carry the region's element
// list.  Keep these in lockstep with the bodies: the shadow tracker flags a
// body that touches outside its declaration, and the adversarial audit
// tests flag a declaration that shrinks below what the chaining needs.

/// Wave 1, stress chain: force_stress_chunk(d, lo, hi).
std::vector<access> force_stress_accesses(index_t lo, index_t hi);

/// Wave 1, hourglass chain: force_hourglass_chunk(d, lo, hi).
std::vector<access> force_hourglass_accesses(index_t lo, index_t hi);

/// Wave 2, link 1: gather_forces + calc_acceleration +
/// apply_acceleration_bc_masked over nodes [lo, hi).
std::vector<access> node_gather_accesses(index_t lo, index_t hi);

/// Wave 2, link 2 (continuation): velocity_position_chunk over [lo, hi).
std::vector<access> node_velpos_accesses(index_t lo, index_t hi);

/// Wave 3: calc_kinematics + calc_lagrange_deviatoric +
/// calc_monotonic_q_gradients + check_qstop + apply_material_vnewc.
std::vector<access> elem_wave_accesses(index_t lo, index_t hi);

/// Wave 4, link 1: calc_monotonic_q_region over list[lo..hi).
std::vector<access> region_monoq_accesses(const index_t* list, index_t lo,
                                          index_t hi);

/// Wave 4, link 2 (continuation): eval_eos_chunk over list[lo..hi).
std::vector<access> region_eos_accesses(const index_t* list, index_t lo,
                                        index_t hi);

/// Wave 4, independent: update_volumes over [lo, hi).
std::vector<access> volume_update_accesses(index_t lo, index_t hi);

/// Wave 5: calc_time_constraints over list[lo..hi) into partial `slot`.
std::vector<access> constraint_accesses(const index_t* list, index_t lo,
                                        index_t hi, index_t slot);

// --- the declarative iteration model --------------------------------------

/// One task of the modelled iteration.
struct task_decl {
    const char* site = nullptr;  ///< wave_site label
    index_t partition = 0;       ///< partition ordinal within the wave
    index_t lo = 0;              ///< primary range, for reporting
    index_t hi = 0;
    int stage = 0;               ///< barrier interval the task runs in (0-4)
    std::vector<access> accesses;
    std::vector<int> deps;       ///< tasks ordered *before* this one by a
                                 ///< declared continuation edge (task ids)
    int stage_last = -1;         ///< last stage the task may still be running
                                 ///< in (inclusive); -1 means == stage.  Only
                                 ///< checkpoint pack tasks span stages: they
                                 ///< start with stage 0 and are joined into
                                 ///< the barrier before the first wave that
                                 ///< writes their field.
};

/// The pre-built graph of one leapfrog iteration: tasks grouped into
/// `num_stages` barrier intervals (the surviving when_all barriers order
/// stage i entirely before stage i+1; within a stage only `deps` edges
/// order tasks).
struct graph_model {
    std::vector<task_decl> tasks;
    int num_stages = 0;
    std::size_t num_slots = 0;  ///< extent of the dt_partial space
};

/// Builds the declarative model of one taskgraph_driver iteration on `d`
/// with partition sizes `parts` — the same chunk decomposition, chain
/// edges, and barrier structure graph_waves.cpp spawns.
graph_model build_iteration_model(const domain& d, partition_sizes parts);

/// Appends the overlapped checkpoint-packing tasks the task-graph driver
/// spawns when the resilient loop hands it a capture: one read-only task
/// per checkpointed field, modelled conservatively over the field's full
/// extent.  Node-field packs run within stage 0 (they are joined into the
/// barrier before the node wave writes coordinates/velocities); elem-field
/// packs span stages 0-2 (joined before the region/volume wave writes
/// e/p/q/ss/v).  The audit over this extended model is the proof that
/// packing never races the compute it overlaps.
void add_checkpoint_pack_tasks(graph_model& m, const domain& d);

// --- bridges to the dynamic tracker and the NaN sentinel -------------------

/// Extents of every field's index space on `d`, indexed by field value —
/// the arena layout for amt::hazard::bind_arena.
std::vector<std::size_t> arena_extents(const domain& d, std::size_t slots);

/// Expands a task's declared accesses into the tracker's flat interval
/// form (corner sets become index*8 intervals, closures become per-entity
/// point intervals, merged by normalize()).
amt::hazard::access_set expand_to_hazard_set(const std::vector<access>& accs,
                                             const domain& d);

/// The backing array of a real-valued field, or nullptr for index/mask
/// fields (symm_mask, elem_bc) and the slot space — used by the NaN scan.
const real_t* field_data(const domain& d, field f) noexcept;

/// Scans the *written* intervals of `accs` for non-finite values; returns
/// the offending field or field::count when clean.
field scan_written_for_nonfinite(const std::vector<access>& accs,
                                 const domain& d);

}  // namespace lulesh::graph
