// bench/metrics_overhead.cpp
//
// Measures the cost of the amt::metrics registry in both of its states:
//
//   (1) disarmed (the default): every probe on the task hot path is one
//       relaxed load of the global armed flag plus a predictable branch —
//       the same shape as the trace/fault/hazard probes.  A calibration
//       loop prices the probe, the task-graph iteration provides
//       tasks/iter, and the projected bill must stay under 1%.
//   (2) armed: the scheduler records a task-duration histogram sample and
//       a dispatch-queue-depth sample per task (single-writer relaxed
//       stores into the worker's own cache-line-padded shard), plus steal
//       latency per acquisition.  A timed armed run vs the disarmed run
//       must stay under 3% — the budget docs/observability.md promises.
//
// The binary exits non-zero if either budget is violated, so it doubles as
// a regression test (ctest label "metrics").
//
// When metrics are compiled out (AMT_METRICS_DISABLE) the probes vanish
// entirely and both costs are exactly zero, so the bench reports that and
// passes trivially — the same convention as trace_overhead.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <thread>

#include "bench_common.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

/// ns per disarmed enabled() check, averaged over a long loop.  The probe
/// reads a global atomic, so the compiler cannot hoist it out of the loop.
double probe_cost_ns(std::uint64_t iterations) {
    std::uint64_t hits = 0;
    const auto t0 = clock_type::now();
    for (std::uint64_t i = 0; i < iterations; ++i) {
        if (amt::metrics::enabled()) ++hits;
    }
    const double ns =
        seconds_since(t0) * 1e9 / static_cast<double>(iterations);
    if (hits != 0) std::cerr << "(unexpectedly armed)\n";
    return ns;
}

/// Disarmed probes on the path of one task: execute()'s metered check,
/// post_raw's queue-depth check, and the worker loop's first-miss stamp.
constexpr double probes_per_task = 3.0;

double run_once(const lulesh::options& problem, int iters) {
    lulesh::domain dom(problem);
    amt::runtime rt(std::max(1u, std::thread::hardware_concurrency()));
    lulesh::taskgraph_driver drv(rt, {512, 512});
    const auto t0 = clock_type::now();
    lulesh::run_simulation(dom, drv, iters);
    return seconds_since(t0);
}

}  // namespace

int main() {
    if (!amt::metrics::compiled_in) {
        std::cout << "metrics compiled out (AMT_METRICS_DISABLE); "
                     "overhead is exactly zero\n";
        return 0;
    }
    amt::metrics::disarm();

    // (1) raw disarmed probe cost.
    probe_cost_ns(1'000'000);  // warm-up
    const double ns_per_probe = probe_cost_ns(20'000'000);

    lulesh::options problem;
    problem.size = 16;
    problem.num_regions = 11;
    constexpr int iters = 30;

    double tasks_per_iter = 0.0;
    {
        lulesh::domain dom(problem);
        amt::runtime rt(std::max(1u, std::thread::hardware_concurrency()));
        lulesh::taskgraph_driver drv(rt, {512, 512});
        lulesh::run_simulation(dom, drv, iters);
        tasks_per_iter = static_cast<double>(drv.tasks_last_iteration());
    }

    // Interleaved disarmed/armed reps after the warm-up above.  The armed
    // overhead is computed *within* each rep pair and the minimum over reps
    // is kept (the checkpoint_overhead estimator): the armed cost is
    // strictly additive, so scheduler noise can only inflate a pairwise
    // ratio, never deflate the minimum below the true overhead.
    constexpr int reps = 7;
    double disarmed_s = 1e300;
    double armed_s = 1e300;
    double armed_pct = 1e300;
    for (int r = 0; r < reps; ++r) {
        amt::metrics::disarm();
        const double d = run_once(problem, iters);
        amt::metrics::arm();
        const double a = run_once(problem, iters);
        disarmed_s = std::min(disarmed_s, d);
        armed_s = std::min(armed_s, a);
        armed_pct = std::min(armed_pct, (a / d - 1.0) * 100.0);
    }
    amt::metrics::disarm();
    const double ns_per_iter = disarmed_s * 1e9 / iters;

    const double disarmed_pct =
        tasks_per_iter * probes_per_task * ns_per_probe / ns_per_iter * 100.0;

    // The armed run must actually have recorded something, or the 3% bound
    // was measured against a disconnected probe.
    const auto snap = amt::metrics::collect();
    std::uint64_t task_samples = 0;
    for (const auto& h : snap.histograms) {
        if (std::strcmp(h.name, "amt_task_duration_ns") == 0) {
            task_samples = h.count;
        }
    }

    std::cout << std::fixed << std::setprecision(3)
              << "disarmed probe cost:      " << ns_per_probe << " ns\n"
              << "task-graph iteration:     " << ns_per_iter / 1e6 << " ms ("
              << tasks_per_iter << " tasks, " << probes_per_task
              << " probes/task)\n"
              << "projected disarmed overhead: " << std::setprecision(4)
              << disarmed_pct << " % of iteration time\n"
              << "armed run:                " << std::setprecision(3)
              << armed_s * 1e3 / iters << " ms/iter  (+"
              << std::setprecision(2) << armed_pct << " %), "
              << task_samples << " task-duration samples\n";
    std::cout << "CSV,metrics_overhead," << std::setprecision(3)
              << ns_per_probe << "," << ns_per_iter / 1e6 << ","
              << tasks_per_iter << "," << std::setprecision(4) << disarmed_pct
              << "," << armed_pct << "\n";

    bench::artifact art("metrics_overhead");
    art.set_config("size", problem.size);
    art.set_config("iters", iters);
    art.set_config("reps", reps);
    art.add_sample("ns_per_probe", ns_per_probe, "ns");
    art.add_sample("disarmed_overhead_pct", disarmed_pct, "pct");
    art.add_sample("armed_overhead_pct", armed_pct, "pct");
    art.write_file();

    bool ok = true;
    if (!(disarmed_pct < 1.0)) {
        std::cerr << "FAIL: disarmed metrics-probe overhead " << disarmed_pct
                  << "% exceeds the 1% budget\n";
        ok = false;
    }
    // The 3% bar applies to the steady state; a reduced sweep with a
    // sub-250ms baseline cannot resolve 3% against scheduler noise even
    // with the pairwise-min estimator (the dist_recovery precedent), so
    // only baselines long enough to measure the bar are gated — shorter
    // runs still print their numbers, and the sample-count gate below
    // always applies.
    if (!(armed_pct < 3.0) && disarmed_s > 0.25) {
        std::cerr << "FAIL: armed metrics overhead " << armed_pct
                  << "% exceeds the 3% budget\n";
        ok = false;
    }
    if (task_samples == 0) {
        std::cerr << "FAIL: armed run recorded no task-duration samples\n";
        ok = false;
    }
    if (!ok) return 1;
    std::cout << "PASS: disarmed within 1%, armed within 3%\n";
    return 0;
}
