#!/usr/bin/env bash
# Reduced evaluation (the analogue of the paper artifact's run-reduced.sh):
# scaled-down sweeps of every figure/table that finish in a few minutes on a
# small machine.  Results land in results/ as plain text with CSV rows.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

echo "== Figure 9: runtime vs threads =="
./build/bench/fig9_runtime_vs_threads | tee results/fig9.txt
echo "== Figure 10: speed-up vs regions =="
./build/bench/fig10_speedup_regions | tee results/fig10.txt
echo "== Figure 11: productive-time ratio =="
./build/bench/fig11_utilization | tee results/fig11.txt
echo "== Table I: partition sweep =="
./build/bench/table1_partition_sweep | tee results/table1.txt
echo "== Ablation =="
./build/bench/ablation_tricks | tee results/ablation.txt
echo "== Extension: distributed halo exchange =="
./build/bench/dist_scaling | tee results/dist.txt
echo "== Phase breakdown =="
./build/bench/phase_breakdown | tee results/phase.txt
echo "== Fault-probe overhead (<1% budget) =="
./build/bench/fault_overhead | tee results/fault_overhead.txt
echo "== Hazard-probe overhead (<1% budget) =="
./build/bench/hazard_overhead | tee results/hazard_overhead.txt
echo "== Trace-probe overhead (<1% budget, drop-not-block) =="
./build/bench/trace_overhead | tee results/trace_overhead.txt
echo "== Checkpoint overhead at every-cycle cadence (<5% budget) =="
./build/bench/checkpoint_overhead | tee results/checkpoint_overhead.txt

# Task tracer smoke: a traced run producing the checked-in Chrome trace and
# the per-phase utilization report, both validated (structure, monotonic
# per-thread timestamps, span nesting, coverage within 2%) — see
# docs/observability.md.
echo "== Task trace + per-phase utilization =="
./build/examples/lulesh_app -s 8 -i 10 -t 2 -d taskgraph \
  --trace=results/trace_smoke.json \
  --utilization-report=results/utilization_phase.txt
./build/examples/lulesh_app -s 8 -i 10 -t 2 -d taskgraph \
  --utilization-report=results/utilization_phase.json --quiet
python3 scripts/validate_trace.py results/trace_smoke.json \
  --report results/utilization_phase.json

# Source-level lint: task/future misuse (dangling captures, blocking gets,
# undeclared kernel accesses, mutable statics, discarded futures) against
# the checked-in empty baseline — docs/static-analysis.md.
echo "== amtlint (task/future misuse) =="
scripts/lint.sh | tee results/amtlint.txt

# Static graph audit: prove the barrier-elision is race-free for every
# driver/size the reduced suite exercises (the run itself is one cycle; the
# audit happens at startup and fails the command with exit code 6 on any
# unordered overlap).  The dist invocations additionally audit every slab's
# halo pack/unpack tasks (src/dist/halo_audit.*).
echo "== Graph hazard audit =="
{
  for s in 10 16 24; do
    ./build/examples/lulesh_app --audit-graph -s "$s" -i 1 -d taskgraph
  done
  ./build/examples/lulesh_app --audit-graph -s 16 -i 1 -d taskgraph -p 64 64
  ./build/examples/lulesh_app --audit-graph -s 16 -i 1 -d taskgraph -p 512 512
  ./build/examples/distributed_sedov --audit-graph -s 8 -i 2 -t 3
  ./build/examples/distributed_sedov --audit-graph -s 8 -i 2 -t 8 -p 64 64
} | tee results/graph_audit.txt

# Resilience/fault suite under ASan+UBSan, when the sanitize preset has been
# configured (cmake --preset sanitize && cmake --build build-sanitize).
if [ -d build-sanitize ]; then
  echo "== Sanitized resilience suite (ctest -L sanitize) =="
  ctest --test-dir build-sanitize -L sanitize --output-on-failure |
    tee results/sanitize.txt
else
  echo "(skipping sanitized suite: configure with 'cmake --preset sanitize')"
fi

# Scheduler/task-graph concurrency suite under ThreadSanitizer, when the
# tsan preset has been configured (cmake --preset tsan && cmake --build
# build-tsan) — the dynamic witness for the graph auditor's static
# race-freedom proof.
if [ -d build-tsan ]; then
  echo "== ThreadSanitizer concurrency suite (ctest -L tsan) =="
  ctest --test-dir build-tsan -L tsan --output-on-failure |
    tee results/tsan.txt
else
  echo "(skipping TSan suite: configure with 'cmake --preset tsan')"
fi

echo
echo "All reduced-sweep results written to results/."
echo "Summarize with: python3 scripts/generate_tables.py results/*.txt"
