// core/graph_waves.hpp
//
// The five task waves of one leapfrog iteration, as reusable builders: the
// single-domain taskgraph_driver chains them with when_all barriers, and the
// multi-domain dist_driver chains one instance per slab with halo-exchange
// steps in between.  Each builder spawns its tasks on the given runtime and
// returns the per-task futures plus the number of tasks created.

#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "amt/amt.hpp"
#include "lulesh/domain.hpp"
#include "lulesh/kernels.hpp"

namespace lulesh::graph {

struct wave {
    std::vector<amt::future<void>> futures;
    std::size_t tasks = 0;
};

/// Shared error flags, aggregated by tasks and checked at iteration end.
struct error_flags {
    std::shared_ptr<std::atomic<bool>> volume_ok =
        std::make_shared<std::atomic<bool>>(true);
    std::shared_ptr<std::atomic<bool>> qstop_ok =
        std::make_shared<std::atomic<bool>>(true);

    void reset() {
        volume_ok->store(true, std::memory_order_relaxed);
        qstop_ok->store(true, std::memory_order_relaxed);
    }
};

/// Wave 1 — corner forces: stress chains ∥ hourglass chains over element
/// partitions of size `p_nodal` (paper trick T4: both launched together).
wave spawn_force_wave(amt::runtime& rt, domain& d, index_t p_nodal,
                      const error_flags& flags);

/// Force tasks restricted to elements [elem_lo, elem_hi) — used by the
/// eager halo exchange to gate boundary-plane sends on just the boundary
/// tasks instead of the whole wave.
wave spawn_force_wave_range(amt::runtime& rt, domain& d, index_t elem_lo,
                            index_t elem_hi, index_t p_nodal,
                            const error_flags& flags);

/// Wave 2 — node chains: gather+acceleration+BC, then velocity→position as
/// a continuation (tricks T2+T3), over node partitions of size `p_nodal`.
wave spawn_node_wave(amt::runtime& rt, domain& d, index_t p_nodal, real_t dt);

/// Wave 3 — element kinematics + strain deviators + monotonic-Q gradients +
/// qstop check + EOS pre-clamp, fused per element partition (T3).
wave spawn_elem_wave(amt::runtime& rt, domain& d, index_t p_elems, real_t dt,
                     const error_flags& flags);

/// Wave-3 tasks restricted to elements [elem_lo, elem_hi) (eager delv_zeta
/// exchange).
wave spawn_elem_wave_range(amt::runtime& rt, domain& d, index_t elem_lo,
                           index_t elem_hi, index_t p_elems, real_t dt,
                           const error_flags& flags);

/// Wave 4 — per-region monotonic-Q → EOS chains (T2+T4+T5, all regions
/// launched together) plus the independent volume update.
wave spawn_region_wave(amt::runtime& rt, domain& d, index_t p_elems);

/// Number of constraint partial slots wave 5 will fill for this domain.
std::size_t constraint_slot_count(const domain& d, index_t p_elems);

/// Wave 5 — Courant/hydro constraint partials, one slot per (region, chunk),
/// written into `partials[0 .. constraint_slot_count)`.
wave spawn_constraint_wave(amt::runtime& rt, domain& d, index_t p_elems,
                           kernels::dt_constraints* partials);

}  // namespace lulesh::graph
