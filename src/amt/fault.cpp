// amt/fault.cpp — fault-injection plan evaluation.
//
// The probe fast path (disarmed) is entirely in the header; this file holds
// the armed slow path.  The active plan is written only inside arm() —
// before g_armed flips to true with release ordering — so probes that
// observe g_armed == true (acquire) see a fully published plan without
// taking a lock.  See the concurrency contract in fault.hpp.

#include "amt/fault.hpp"

#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>

namespace amt::fault {

namespace detail {

amt::atomic<bool> g_armed{false};

namespace {

struct fault_state {
    // Written only by arm() while g_armed is false (see file header).
    plan active;

    // Lock-free bookkeeping read/written by concurrent probes.
    amt::atomic<std::int64_t> budget{0};
    amt::atomic<std::uint64_t> next_index{0};
    amt::atomic<std::uint64_t> probes{0};
    amt::atomic<std::uint64_t> injections{0};
    amt::atomic<std::int64_t> epoch{-1};

    // arm/disarm serialization.
    std::mutex arm_mu;

    // Stall machinery: parked probes wait on the condvar; release_stalls()
    // bumps the generation.
    std::mutex stall_mu;
    std::condition_variable stall_cv;
    std::uint64_t stall_generation = 0;
    int stalled = 0;
};

fault_state& state() {
    static fault_state s;
    return s;
}

/// splitmix64 — tiny, statistically solid mixer; the draw for probe `idx`
/// depends only on (seed, idx).
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

double uniform01(std::uint64_t seed, std::uint64_t idx) {
    // 53 high-quality bits → [0, 1).
    return static_cast<double>(mix64(seed ^ mix64(idx)) >> 11) * 0x1.0p-53;
}

void stall_here(std::chrono::milliseconds timeout) {
    fault_state& s = state();
    std::unique_lock lk(s.stall_mu);
    const std::uint64_t my_generation = s.stall_generation;
    ++s.stalled;
    s.stall_cv.wait_for(lk, timeout, [&s, my_generation] {
        return s.stall_generation != my_generation ||
               !g_armed.load(amt::memory_order_acquire);
    });
    --s.stalled;
}

}  // namespace

namespace {

/// Shared matching + budget claim for probe_slow()/decide_slow().  Returns
/// whether this evaluation injects; `idx_out` receives the probe index the
/// draw used (for the exception message).
bool match_and_claim(fault_state& s, const char* site, std::uint64_t& idx_out) {
    s.probes.fetch_add(1, amt::memory_order_relaxed);

    const plan& p = s.active;
    if (p.epoch >= 0 && s.epoch.load(amt::memory_order_relaxed) != p.epoch) {
        return false;
    }
    if (!p.site.empty() && p.site != site) return false;

    const std::uint64_t idx = s.next_index.fetch_add(1, amt::memory_order_relaxed);
    idx_out = idx;
    if (p.probability < 1.0 && uniform01(p.seed, idx) >= p.probability) {
        return false;
    }

    // Claim one unit of the injection budget; losing the race means another
    // probe got the last one.
    if (s.budget.fetch_sub(1, amt::memory_order_acq_rel) <= 0) return false;

    s.injections.fetch_add(1, amt::memory_order_relaxed);
    return true;
}

}  // namespace

void probe_slow(const char* site) {
    fault_state& s = state();
    std::uint64_t idx = 0;
    if (!match_and_claim(s, site, idx)) return;

    const plan& p = s.active;
    switch (p.kind) {
        case action::delay:
            std::this_thread::sleep_for(p.delay);
            return;
        case action::stall:
            stall_here(p.stall_timeout);
            return;
        case action::throw_exception:
            break;
    }
    throw injected_fault(
        "amt::fault: injected fault at site '" + std::string(site) +
        "' (epoch " + std::to_string(s.epoch.load(amt::memory_order_relaxed)) +
        ", probe index " + std::to_string(idx) + ")");
}

bool decide_slow(const char* site) {
    fault_state& s = state();
    std::uint64_t idx = 0;
    if (!match_and_claim(s, site, idx)) return false;

    const plan& p = s.active;
    switch (p.kind) {
        case action::delay:
            std::this_thread::sleep_for(p.delay);
            return false;
        case action::stall:
            stall_here(p.stall_timeout);
            return false;
        case action::throw_exception:
            break;
    }
    // The caller models the fault (drop/corrupt the message) itself.
    return true;
}

}  // namespace detail

void arm(const plan& p) {
    auto& s = detail::state();
    std::lock_guard lk(s.arm_mu);
    detail::g_armed.store(false, amt::memory_order_release);
    s.active = p;
    s.budget.store(p.max_injections >= 0
                       ? p.max_injections
                       : std::numeric_limits<std::int64_t>::max(),
                   amt::memory_order_relaxed);
    s.next_index.store(0, amt::memory_order_relaxed);
    detail::g_armed.store(true, amt::memory_order_release);
}

void disarm() {
    auto& s = detail::state();
    std::lock_guard lk(s.arm_mu);
    detail::g_armed.store(false, amt::memory_order_release);
    // Wake parked stalls: their predicate observes g_armed == false.
    {
        std::lock_guard stall_lk(s.stall_mu);
        ++s.stall_generation;
    }
    s.stall_cv.notify_all();
}

stats snapshot() {
    auto& s = detail::state();
    return {s.probes.load(amt::memory_order_relaxed),
            s.injections.load(amt::memory_order_relaxed)};
}

void reset_stats() {
    auto& s = detail::state();
    s.probes.store(0, amt::memory_order_relaxed);
    s.injections.store(0, amt::memory_order_relaxed);
}

void set_epoch(std::int64_t epoch) noexcept {
    detail::state().epoch.store(epoch, amt::memory_order_relaxed);
}

std::int64_t epoch() noexcept {
    return detail::state().epoch.load(amt::memory_order_relaxed);
}

void release_stalls() {
    auto& s = detail::state();
    {
        std::lock_guard lk(s.stall_mu);
        ++s.stall_generation;
    }
    s.stall_cv.notify_all();
}

int stalled_now() {
    auto& s = detail::state();
    std::lock_guard lk(s.stall_mu);
    return s.stalled;
}

}  // namespace amt::fault
