// amt/deque.hpp
//
// Chase-Lev work-stealing deque.
//
// Single owner thread pushes and pops at the bottom (LIFO — keeps the
// working set hot in cache); any number of thief threads steal from the top
// (FIFO — steals the oldest, typically largest-granularity work).  This is
// the memory-model-correct formulation from Lê, Pop, Cohen & Nardelli,
// "Correct and Efficient Work-Stealing for Weak Memory Models" (PPoPP'13).
//
// Slots hold raw `task_base*`; ownership is transferred to whichever thread
// successfully removes an element.  Rings retired by `grow()` are kept alive
// until the deque is destroyed because a concurrent thief may still be
// reading the old ring's slots; the per-ring footprint is small (pointers
// only) and growth is geometric, so total retained memory is at most 2x the
// peak ring size.

#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "amt/atomic.hpp"
#include "amt/config.hpp"
#include "amt/task.hpp"

namespace amt {

class ws_deque {
    struct ring {
        explicit ring(std::int64_t cap)
            : capacity(cap), mask(cap - 1),
              slots(std::make_unique<amt::atomic<task_base*>[]>(
                  static_cast<std::size_t>(cap))) {
            assert((cap & (cap - 1)) == 0 && "capacity must be a power of two");
        }

        task_base* load(std::int64_t i) const noexcept {
            return slots[static_cast<std::size_t>(i & mask)].load(
                amt::memory_order_relaxed);
        }
        void store(std::int64_t i, task_base* t) noexcept {
            slots[static_cast<std::size_t>(i & mask)].store(
                t, amt::memory_order_relaxed);
        }

        std::int64_t capacity;
        std::int64_t mask;
        std::unique_ptr<amt::atomic<task_base*>[]> slots;
    };

public:
    explicit ws_deque(
        std::size_t initial_capacity = initial_deque_capacity)
        : top_(0), bottom_(0) {
        rings_.push_back(
            std::make_unique<ring>(static_cast<std::int64_t>(initial_capacity)));
        active_.store(rings_.back().get(), amt::memory_order_relaxed);
    }

    ws_deque(const ws_deque&) = delete;
    ws_deque& operator=(const ws_deque&) = delete;

    ~ws_deque() {
        // Drain anything left so tasks are not leaked on shutdown.
        // Externally-owned tasks (compiled-graph nodes) are merely dropped:
        // their graph owns the storage.
        while (task_base* t = pop()) {
            if (t->scheduler_owned()) delete t;
        }
    }

    /// Owner only.  Takes ownership of `t`.
    void push(task_base* t) {
        std::int64_t b = bottom_.load(amt::memory_order_relaxed);
        std::int64_t tp = top_.load(amt::memory_order_acquire);
        ring* r = active_.load(amt::memory_order_relaxed);
        if (b - tp > r->capacity - 1) {
            r = grow(r, b, tp);
        }
        r->store(b, t);
        // The release fence pairs with the acquire load of `bottom_` in
        // steal(): a thief that observes the new bottom also observes the
        // slot contents.  TSan cannot see fence-carried edges, so under it
        // the release moves onto the store itself.
#if AMT_TSAN
        bottom_.store(b + 1, amt::memory_order_release);
#else
        amt::atomic_thread_fence(amt::memory_order_release);
        bottom_.store(b + 1, amt::memory_order_relaxed);
#endif
    }

    /// Owner only.  Returns nullptr when empty; otherwise transfers
    /// ownership to the caller.
    task_base* pop() {
        std::int64_t b = bottom_.load(amt::memory_order_relaxed) - 1;
        ring* r = active_.load(amt::memory_order_relaxed);
#if AMT_TSAN
        bottom_.store(b, amt::memory_order_seq_cst);
        std::int64_t t = top_.load(amt::memory_order_seq_cst);
#else
        bottom_.store(b, amt::memory_order_relaxed);
        amt::atomic_thread_fence(take_fence_order());
        std::int64_t t = top_.load(amt::memory_order_relaxed);
#endif

        task_base* result = nullptr;
        if (t <= b) {
            result = r->load(b);
            if (t == b) {
                // Last element: race against thieves via CAS on top.
                if (!top_.compare_exchange_strong(t, t + 1,
                                                  amt::memory_order_seq_cst,
                                                  amt::memory_order_relaxed)) {
                    result = nullptr;  // a thief won
                }
                bottom_.store(b + 1, amt::memory_order_relaxed);
            }
        } else {
            bottom_.store(b + 1, amt::memory_order_relaxed);
        }
        return result;
    }

    /// Thief side, any thread.  Returns nullptr when empty or when losing a
    /// race; otherwise transfers ownership to the caller.
    task_base* steal() {
#if AMT_TSAN
        std::int64_t t = top_.load(amt::memory_order_seq_cst);
        std::int64_t b = bottom_.load(amt::memory_order_seq_cst);
#else
        std::int64_t t = top_.load(amt::memory_order_acquire);
        amt::atomic_thread_fence(amt::memory_order_seq_cst);
        std::int64_t b = bottom_.load(amt::memory_order_acquire);
#endif

        task_base* result = nullptr;
        if (t < b) {
            ring* r = active_.load(amt::memory_order_consume);
            result = r->load(t);
            if (!top_.compare_exchange_strong(t, t + 1,
                                              amt::memory_order_seq_cst,
                                              amt::memory_order_relaxed)) {
                return nullptr;  // lost the race
            }
        }
        return result;
    }

    /// Approximate size; exact only when quiescent.
    std::size_t size_approx() const noexcept {
        std::int64_t b = bottom_.load(amt::memory_order_relaxed);
        std::int64_t t = top_.load(amt::memory_order_relaxed);
        return b > t ? static_cast<std::size_t>(b - t) : 0;
    }

    bool empty_approx() const noexcept { return size_approx() == 0; }

#if AMT_MODEL_CHECK
    /// Model-litmus seam: demotes pop()'s seq_cst fence to acq_rel so
    /// tests/model/test_model_deque.cpp can prove the checker catches the
    /// classic owner/thief double-take.  Does not exist in normal builds.
    static inline bool model_weaken_take_fence = false;
#endif

private:
    static amt::memory_order take_fence_order() noexcept {
#if AMT_MODEL_CHECK
        if (model_weaken_take_fence) return amt::memory_order_acq_rel;
#endif
        return amt::memory_order_seq_cst;
    }

    ring* grow(ring* old, std::int64_t b, std::int64_t t) {
        auto bigger = std::make_unique<ring>(old->capacity * 2);
        for (std::int64_t i = t; i < b; ++i) bigger->store(i, old->load(i));
        ring* raw = bigger.get();
        rings_.push_back(std::move(bigger));  // old ring retired, kept alive
        active_.store(raw, amt::memory_order_release);
        return raw;
    }

    alignas(cache_line_size) amt::atomic<std::int64_t> top_;
    alignas(cache_line_size) amt::atomic<std::int64_t> bottom_;
    alignas(cache_line_size) amt::atomic<ring*> active_;

    // Owner-only; append happens in grow() (owner context).
    std::vector<std::unique_ptr<ring>> rings_;
};

}  // namespace amt
