// Tests for the element → region decomposition and the EOS cost model.

#include <gtest/gtest.h>

#include <numeric>

#include "lulesh/domain.hpp"
#include "lulesh/kernels.hpp"

namespace {

using lulesh::domain;
using lulesh::index_t;
using lulesh::options;

options opts(index_t size, index_t regions, int cost = 1, int balance = 1) {
    options o;
    o.size = size;
    o.num_regions = regions;
    o.cost = cost;
    o.balance = balance;
    return o;
}

TEST(Regions, EveryElementAssignedExactlyOnce) {
    const domain d(opts(8, 11));
    std::vector<int> seen(static_cast<std::size_t>(d.numElem()), 0);
    for (index_t r = 0; r < d.numReg(); ++r) {
        for (index_t e : d.regElemList(r)) {
            ASSERT_GE(e, 0);
            ASSERT_LT(e, d.numElem());
            ++seen[static_cast<std::size_t>(e)];
        }
    }
    for (index_t e = 0; e < d.numElem(); ++e) {
        EXPECT_EQ(seen[static_cast<std::size_t>(e)], 1) << "element " << e;
    }
}

TEST(Regions, RegNumMatchesLists) {
    const domain d(opts(6, 7));
    for (index_t r = 0; r < d.numReg(); ++r) {
        for (index_t e : d.regElemList(r)) {
            EXPECT_EQ(d.regNum(e), r);
        }
    }
}

TEST(Regions, SingleRegionGetsEverything) {
    const domain d(opts(5, 1));
    EXPECT_EQ(d.numReg(), 1);
    EXPECT_EQ(static_cast<index_t>(d.regElemList(0).size()), d.numElem());
}

TEST(Regions, RequestedCountIsHonored) {
    for (index_t r : {2, 11, 16, 21}) {
        const domain d(opts(10, r));
        EXPECT_EQ(d.numReg(), r);
    }
}

TEST(Regions, AssignmentIsDeterministic) {
    const domain a(opts(8, 11));
    const domain b(opts(8, 11));
    for (index_t e = 0; e < a.numElem(); ++e) {
        EXPECT_EQ(a.regNum(e), b.regNum(e));
    }
}

TEST(Regions, DifferentSeedGivesDifferentMap) {
    options o1 = opts(8, 11);
    options o2 = opts(8, 11);
    o2.region_seed = 42;
    const domain a(o1);
    const domain b(o2);
    int differing = 0;
    for (index_t e = 0; e < a.numElem(); ++e) {
        if (a.regNum(e) != b.regNum(e)) ++differing;
    }
    EXPECT_GT(differing, 0);
}

TEST(Regions, RunsAreContiguous) {
    // The reference assigns consecutive runs of elements to each region;
    // verify the run-length structure (at least some multi-element runs).
    const domain d(opts(10, 11));
    int runs = 0;
    int run_elems = 0;
    index_t last = -1;
    for (index_t e = 0; e < d.numElem(); ++e) {
        if (d.regNum(e) != last) {
            ++runs;
            last = d.regNum(e);
        }
        ++run_elems;
    }
    EXPECT_LT(runs, d.numElem() / 2) << "regions should come in runs";
}

TEST(Regions, MostRegionsNonEmptyAtRealisticSizes) {
    const domain d(opts(12, 11));
    int non_empty = 0;
    for (index_t r = 0; r < d.numReg(); ++r) {
        if (!d.regElemList(r).empty()) ++non_empty;
    }
    EXPECT_GE(non_empty, 10);
}

TEST(RegionCost, DefaultTiersMatchPaper) {
    // 11 regions, cost 1: first 5 regions 1x, next 5 regions 2x, last 1
    // region 20x — the paper's "2x for 45%, 20x for 5%".
    const domain d(opts(6, 11, /*cost=*/1));
    namespace k = lulesh::kernels;
    for (index_t r = 0; r < 5; ++r) EXPECT_EQ(k::eos_rep_for_region(d, r), 1);
    for (index_t r = 5; r < 10; ++r) EXPECT_EQ(k::eos_rep_for_region(d, r), 2);
    EXPECT_EQ(k::eos_rep_for_region(d, 10), 20);
}

TEST(RegionCost, CostFlagScalesExpensiveTiers) {
    const domain d(opts(6, 11, /*cost=*/3));
    namespace k = lulesh::kernels;
    EXPECT_EQ(k::eos_rep_for_region(d, 0), 1);
    EXPECT_EQ(k::eos_rep_for_region(d, 7), 4);    // 1 + cost
    EXPECT_EQ(k::eos_rep_for_region(d, 10), 40);  // 10 * (1 + cost)
}

TEST(RegionCost, TwentyOneRegions) {
    const domain d(opts(6, 21));
    namespace k = lulesh::kernels;
    // floor(21/2)=10 cheap; 21-(36/20=1)=20 → regions 10..19 are 2x; region
    // 20 is 20x.
    EXPECT_EQ(k::eos_rep_for_region(d, 9), 1);
    EXPECT_EQ(k::eos_rep_for_region(d, 10), 2);
    EXPECT_EQ(k::eos_rep_for_region(d, 19), 2);
    EXPECT_EQ(k::eos_rep_for_region(d, 20), 20);
}

TEST(RegionBalance, HigherBalanceSkewsSizes) {
    // With balance = 3, later regions get picked far more often.
    const domain flat(opts(10, 8, 1, /*balance=*/0));
    const domain skew(opts(10, 8, 1, /*balance=*/3));

    auto spread = [](const domain& d) {
        std::size_t mn = SIZE_MAX, mx = 0;
        for (index_t r = 0; r < d.numReg(); ++r) {
            mn = std::min(mn, d.regElemList(r).size());
            mx = std::max(mx, d.regElemList(r).size());
        }
        return std::pair{mn, mx};
    };
    const auto [fmn, fmx] = spread(flat);
    const auto [smn, smx] = spread(skew);
    // Skewed distribution should have a wider size range than flat.
    EXPECT_GT(smx - smn, (fmx - fmn) / 2);
    EXPECT_GT(smx, fmx / 2);
}

}  // namespace
