#!/usr/bin/env bash
# Paper-exact evaluation (the analogue of run-full.sh): sizes 45-150 and
# threads 1-48 with the AE appendix's iteration caps.  Takes hours; intended
# for a >= 16-core machine.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results/full

./build/bench/fig9_runtime_vs_threads --full | tee results/full/fig9.txt
./build/bench/fig10_speedup_regions --full | tee results/full/fig10.txt
./build/bench/fig11_utilization --full | tee results/full/fig11.txt
./build/bench/table1_partition_sweep --full | tee results/full/table1.txt

echo "Full-sweep results written to results/full/."
