// lulesh/kernels_eos.cpp — equation of state: the region-wise energy /
// pressure / viscosity update pipeline (reference EvalEOSForElems /
// CalcEnergyForElems / CalcPressureForElems / CalcSoundSpeedForElems).
//
// Region cost imbalance is modelled exactly as in the reference: the cheap
// half of the regions evaluates the pipeline once, the middle tier
// (1 + cost) times, and the most expensive ~5% of regions 10 * (1 + cost)
// times.  With the default cost = 1 this is the paper's "doubles the
// computation for 45% of the regions, and increases it even by twenty times
// for 5%".

#include <cmath>

#include "lulesh/kernels.hpp"

namespace lulesh::kernels {

void eos_scratch::resize(std::size_t n) {
    e_old.resize(n);
    delvc.resize(n);
    p_old.resize(n);
    q_old.resize(n);
    qq_old.resize(n);
    ql_old.resize(n);
    compression.resize(n);
    comp_half_step.resize(n);
    work.resize(n);
    p_new.resize(n);
    e_new.resize(n);
    q_new.resize(n);
    bvc.resize(n);
    pbvc.resize(n);
    p_half_step.resize(n);
}

int eos_rep_for_region(const domain& d, index_t r) {
    const index_t num_reg = d.numReg();
    if (r < num_reg / 2) return 1;
    if (r < (num_reg - (num_reg + 15) / 20)) return 1 + d.cost();
    return 10 * (1 + d.cost());
}

void eos_gather_e(const domain& d, const index_t* list, index_t lo, index_t hi,
                  eos_scratch& s) {
    for (index_t i = lo; i < hi; ++i) {
        s.e_old[static_cast<std::size_t>(i)] =
            d.e[static_cast<std::size_t>(list[i])];
    }
}

void eos_gather_delv(const domain& d, const index_t* list, index_t lo,
                     index_t hi, eos_scratch& s) {
    for (index_t i = lo; i < hi; ++i) {
        s.delvc[static_cast<std::size_t>(i)] =
            d.delv[static_cast<std::size_t>(list[i])];
    }
}

void eos_gather_p(const domain& d, const index_t* list, index_t lo, index_t hi,
                  eos_scratch& s) {
    for (index_t i = lo; i < hi; ++i) {
        s.p_old[static_cast<std::size_t>(i)] =
            d.p[static_cast<std::size_t>(list[i])];
    }
}

void eos_gather_q(const domain& d, const index_t* list, index_t lo, index_t hi,
                  eos_scratch& s) {
    for (index_t i = lo; i < hi; ++i) {
        s.q_old[static_cast<std::size_t>(i)] =
            d.q[static_cast<std::size_t>(list[i])];
    }
}

void eos_gather_qq_ql(const domain& d, const index_t* list, index_t lo,
                      index_t hi, eos_scratch& s) {
    for (index_t i = lo; i < hi; ++i) {
        const auto z = static_cast<std::size_t>(list[i]);
        const auto j = static_cast<std::size_t>(i);
        s.qq_old[j] = d.qq[z];
        s.ql_old[j] = d.ql[z];
    }
}

void eos_compression(const domain& d, const index_t* list, index_t lo,
                     index_t hi, eos_scratch& s) {
    for (index_t i = lo; i < hi; ++i) {
        const auto z = static_cast<std::size_t>(list[i]);
        const auto j = static_cast<std::size_t>(i);
        const real_t vnewc = d.vnewc[z];
        s.compression[j] = real_t(1.0) / vnewc - real_t(1.0);
        const real_t vchalf = vnewc - s.delvc[j] * real_t(0.5);
        s.comp_half_step[j] = real_t(1.0) / vchalf - real_t(1.0);
    }
}

void eos_clamp_vmin(const domain& d, const index_t* list, index_t lo,
                    index_t hi, eos_scratch& s) {
    const real_t eosvmin = d.eosvmin;
    if (eosvmin == real_t(0.0)) return;
    for (index_t i = lo; i < hi; ++i) {
        const auto z = static_cast<std::size_t>(list[i]);
        const auto j = static_cast<std::size_t>(i);
        if (d.vnewc[z] <= eosvmin) {  // impossible due to prior clamp, but...
            s.comp_half_step[j] = s.compression[j];
        }
    }
}

void eos_clamp_vmax(const domain& d, const index_t* list, index_t lo,
                    index_t hi, eos_scratch& s) {
    const real_t eosvmax = d.eosvmax;
    if (eosvmax == real_t(0.0)) return;
    for (index_t i = lo; i < hi; ++i) {
        const auto z = static_cast<std::size_t>(list[i]);
        const auto j = static_cast<std::size_t>(i);
        if (d.vnewc[z] >= eosvmax) {  // impossible due to prior clamp, but...
            s.p_old[j] = real_t(0.0);
            s.compression[j] = real_t(0.0);
            s.comp_half_step[j] = real_t(0.0);
        }
    }
}

void eos_zero_work(index_t lo, index_t hi, eos_scratch& s) {
    for (index_t i = lo; i < hi; ++i) {
        s.work[static_cast<std::size_t>(i)] = real_t(0.0);
    }
}

void energy_step1(const domain& d, index_t lo, index_t hi, eos_scratch& s) {
    const real_t emin = d.emin;
    for (index_t i = lo; i < hi; ++i) {
        const auto j = static_cast<std::size_t>(i);
        s.e_new[j] = s.e_old[j] -
                     real_t(0.5) * s.delvc[j] * (s.p_old[j] + s.q_old[j]) +
                     real_t(0.5) * s.work[j];
        if (s.e_new[j] < emin) s.e_new[j] = emin;
    }
}

void pressure_bvc(index_t lo, index_t hi, const real_t* compression,
                  real_t* bvc, real_t* pbvc) {
    const real_t c1s = real_t(2.0) / real_t(3.0);
    for (index_t i = lo; i < hi; ++i) {
        bvc[i] = c1s * (compression[i] + real_t(1.0));
        pbvc[i] = c1s;
    }
}

void pressure_p(const domain& d, const index_t* list, index_t lo, index_t hi,
                real_t* p_out, const real_t* bvc, const real_t* e) {
    const real_t p_cut = d.p_cut;
    const real_t eosvmax = d.eosvmax;
    const real_t pmin = d.pmin;
    for (index_t i = lo; i < hi; ++i) {
        p_out[i] = bvc[i] * e[i];
        if (std::fabs(p_out[i]) < p_cut) p_out[i] = real_t(0.0);
        if (d.vnewc[static_cast<std::size_t>(list[i])] >= eosvmax) {
            p_out[i] = real_t(0.0);
        }
        if (p_out[i] < pmin) p_out[i] = pmin;
    }
}

void energy_q_half(const domain& d, index_t lo, index_t hi, eos_scratch& s) {
    const real_t rho0 = d.refdens;
    for (index_t i = lo; i < hi; ++i) {
        const auto j = static_cast<std::size_t>(i);
        const real_t vhalf = real_t(1.0) / (real_t(1.0) + s.comp_half_step[j]);

        if (s.delvc[j] > real_t(0.0)) {
            s.q_new[j] = real_t(0.0);
        } else {
            real_t ssc = (s.pbvc[j] * s.e_new[j] +
                          vhalf * vhalf * s.bvc[j] * s.p_half_step[j]) /
                         rho0;
            if (ssc <= real_t(.1111111e-36)) {
                ssc = real_t(.3333333e-18);
            } else {
                ssc = std::sqrt(ssc);
            }
            s.q_new[j] = ssc * s.ql_old[j] + s.qq_old[j];
        }

        s.e_new[j] = s.e_new[j] +
                     real_t(0.5) * s.delvc[j] *
                         (real_t(3.0) * (s.p_old[j] + s.q_old[j]) -
                          real_t(4.0) * (s.p_half_step[j] + s.q_new[j]));
    }
}

void energy_step2(const domain& d, index_t lo, index_t hi, eos_scratch& s) {
    const real_t e_cut = d.e_cut;
    const real_t emin = d.emin;
    for (index_t i = lo; i < hi; ++i) {
        const auto j = static_cast<std::size_t>(i);
        s.e_new[j] += real_t(0.5) * s.work[j];
        if (std::fabs(s.e_new[j]) < e_cut) s.e_new[j] = real_t(0.0);
        if (s.e_new[j] < emin) s.e_new[j] = emin;
    }
}

void energy_step3(const domain& d, const index_t* list, index_t lo, index_t hi,
                  eos_scratch& s) {
    const real_t rho0 = d.refdens;
    const real_t e_cut = d.e_cut;
    const real_t emin = d.emin;
    const real_t sixth = real_t(1.0) / real_t(6.0);
    for (index_t i = lo; i < hi; ++i) {
        const auto j = static_cast<std::size_t>(i);
        const auto z = static_cast<std::size_t>(list[i]);
        real_t q_tilde;

        if (s.delvc[j] > real_t(0.0)) {
            q_tilde = real_t(0.0);
        } else {
            real_t ssc = (s.pbvc[j] * s.e_new[j] +
                          d.vnewc[z] * d.vnewc[z] * s.bvc[j] * s.p_new[j]) /
                         rho0;
            if (ssc <= real_t(.1111111e-36)) {
                ssc = real_t(.3333333e-18);
            } else {
                ssc = std::sqrt(ssc);
            }
            q_tilde = ssc * s.ql_old[j] + s.qq_old[j];
        }

        s.e_new[j] = s.e_new[j] -
                     (real_t(7.0) * (s.p_old[j] + s.q_old[j]) -
                      real_t(8.0) * (s.p_half_step[j] + s.q_new[j]) +
                      (s.p_new[j] + q_tilde)) *
                         s.delvc[j] * sixth;

        if (std::fabs(s.e_new[j]) < e_cut) s.e_new[j] = real_t(0.0);
        if (s.e_new[j] < emin) s.e_new[j] = emin;
    }
}

void energy_q_final(const domain& d, const index_t* list, index_t lo,
                    index_t hi, eos_scratch& s) {
    const real_t rho0 = d.refdens;
    const real_t q_cut = d.q_cut;
    for (index_t i = lo; i < hi; ++i) {
        const auto j = static_cast<std::size_t>(i);
        const auto z = static_cast<std::size_t>(list[i]);
        if (s.delvc[j] <= real_t(0.0)) {
            real_t ssc = (s.pbvc[j] * s.e_new[j] +
                          d.vnewc[z] * d.vnewc[z] * s.bvc[j] * s.p_new[j]) /
                         rho0;
            if (ssc <= real_t(.1111111e-36)) {
                ssc = real_t(.3333333e-18);
            } else {
                ssc = std::sqrt(ssc);
            }
            s.q_new[j] = ssc * s.ql_old[j] + s.qq_old[j];
            if (std::fabs(s.q_new[j]) < q_cut) s.q_new[j] = real_t(0.0);
        }
    }
}

void eos_store(domain& d, const index_t* list, index_t lo, index_t hi,
               const eos_scratch& s) {
    for (index_t i = lo; i < hi; ++i) {
        const auto j = static_cast<std::size_t>(i);
        const auto z = static_cast<std::size_t>(list[i]);
        d.p[z] = s.p_new[j];
        d.e[z] = s.e_new[j];
        d.q[z] = s.q_new[j];
    }
}

void eos_sound_speed(domain& d, const index_t* list, index_t lo, index_t hi,
                     const eos_scratch& s) {
    const real_t rho0 = d.refdens;
    for (index_t i = lo; i < hi; ++i) {
        const auto j = static_cast<std::size_t>(i);
        const auto z = static_cast<std::size_t>(list[i]);
        real_t ss_tmp = (s.pbvc[j] * s.e_new[j] +
                         d.vnewc[z] * d.vnewc[z] * s.bvc[j] * s.p_new[j]) /
                        rho0;
        if (ss_tmp <= real_t(1.111111e-36)) {
            ss_tmp = real_t(.3333333e-18);
        } else {
            ss_tmp = std::sqrt(ss_tmp);
        }
        d.ss[z] = ss_tmp;
    }
}

void eval_eos_chunk(domain& d, const index_t* list, index_t lo, index_t hi,
                    int rep, eos_scratch& s) {
    // The fused task body works on scratch indices [0, hi-lo); shift the list
    // pointer so phase kernels see local indices starting at zero.
    const index_t count = hi - lo;
    const index_t* chunk_list = list + lo;
    for (int r = 0; r < rep; ++r) {
        eos_gather_e(d, chunk_list, 0, count, s);
        eos_gather_delv(d, chunk_list, 0, count, s);
        eos_gather_p(d, chunk_list, 0, count, s);
        eos_gather_q(d, chunk_list, 0, count, s);
        eos_gather_qq_ql(d, chunk_list, 0, count, s);
        eos_compression(d, chunk_list, 0, count, s);
        eos_clamp_vmin(d, chunk_list, 0, count, s);
        eos_clamp_vmax(d, chunk_list, 0, count, s);
        eos_zero_work(0, count, s);

        energy_step1(d, 0, count, s);
        // pHalfStep (and the bvc/pbvc consumed by energy_q_half) come from
        // the half-step compression.
        pressure_bvc(0, count, s.comp_half_step.data(), s.bvc.data(),
                     s.pbvc.data());
        pressure_p(d, chunk_list, 0, count, s.p_half_step.data(), s.bvc.data(),
                   s.e_new.data());
        energy_q_half(d, 0, count, s);
        energy_step2(d, 0, count, s);
        pressure_bvc(0, count, s.compression.data(), s.bvc.data(),
                     s.pbvc.data());
        pressure_p(d, chunk_list, 0, count, s.p_new.data(), s.bvc.data(),
                   s.e_new.data());
        energy_step3(d, chunk_list, 0, count, s);
        pressure_bvc(0, count, s.compression.data(), s.bvc.data(),
                     s.pbvc.data());
        pressure_p(d, chunk_list, 0, count, s.p_new.data(), s.bvc.data(),
                   s.e_new.data());
        energy_q_final(d, chunk_list, 0, count, s);
    }
    eos_store(d, chunk_list, 0, count, s);
    eos_sound_speed(d, chunk_list, 0, count, s);
}

}  // namespace lulesh::kernels
