// amt/stop_token.hpp
//
// Cooperative cancellation in the style of std::stop_source/std::stop_token
// (and hpx::experimental the same): a `stop_source` owns a stop state,
// `stop_token`s observe it, and tasks poll `stop_requested()` at natural
// boundaries (task entry, loop chunks) to short-circuit work that has become
// pointless — e.g. the sibling partition tasks of a wave once one of them
// has failed.  Requesting a stop never interrupts a running task; it only
// asks politely, which is the only sound option for tasks that share mesh
// state.
//
// Deliberately minimal compared to std:: — no callbacks, no nostopstate —
// because the task-graph drivers only need the flag.  Copies of a source or
// token share the same state.

#pragma once

#include <memory>

#include "amt/atomic.hpp"

namespace amt {

namespace detail {
struct stop_state {
    amt::atomic<bool> requested{false};
};
}  // namespace detail

/// Observer half: cheap to copy into every task of a wave.
class stop_token {
public:
    /// A default-constructed token can never be stopped (stop_possible()
    /// is false), matching std::stop_token.
    stop_token() noexcept = default;

    [[nodiscard]] bool stop_possible() const noexcept {
        return state_ != nullptr;
    }
    [[nodiscard]] bool stop_requested() const noexcept {
        return state_ != nullptr &&
               state_->requested.load(amt::memory_order_acquire);
    }

private:
    friend class stop_source;
    explicit stop_token(std::shared_ptr<const detail::stop_state> st) noexcept
        : state_(std::move(st)) {}

    std::shared_ptr<const detail::stop_state> state_;
};

/// Owner half: the first failing task (or an external supervisor) calls
/// request_stop() and every token holder sees it.
class stop_source {
public:
    stop_source() : state_(std::make_shared<detail::stop_state>()) {}

    stop_source(const stop_source&) = default;
    stop_source& operator=(const stop_source&) = default;
    stop_source(stop_source&&) noexcept = default;
    stop_source& operator=(stop_source&&) noexcept = default;

    [[nodiscard]] stop_token get_token() const noexcept {
        return stop_token(state_);
    }

    /// Returns true if this call made the not-stopped → stopped transition.
    bool request_stop() noexcept {
        return !state_->requested.exchange(true, amt::memory_order_acq_rel);
    }

    [[nodiscard]] bool stop_requested() const noexcept {
        return state_->requested.load(amt::memory_order_acquire);
    }

private:
    std::shared_ptr<detail::stop_state> state_;
};

}  // namespace amt
