// Counter litmuses (amt/counters.hpp).  relaxed_counter documents a
// single-writer contract (add() is a relaxed load+store pair, not an RMW)
// and promises snapshot readers only staleness, never torn or time-warped
// values; shared_counter pays the fetch_add so any thread may bump it.
// The checker verifies both contracts and — by violating the single-writer
// rule on purpose — shows the lost-update that justifies shared_counter's
// existence.

#include <gtest/gtest.h>

#include "amt/counters.hpp"
#include "amt/model.hpp"

namespace {

using amt::model::check;
using amt::model::model_assert;
using amt::model::options;
using amt::model::result;

// Single-writer relaxed_counter: a snapshot reader racing the owner sees
// monotonically non-decreasing values bounded by what was written —
// stale is fine, backwards or invented is not.
TEST(ModelCounters, SingleWriterSnapshotsAreMonotoneAndBounded) {
    options o;
    o.quiet = true;
    const result r = check(o, [] {
        amt::relaxed_counter tasks;
        amt::model::thread owner([&] {
            tasks.add(1);
            tasks.add(1);
            tasks.add(1);
        });
        const std::uint64_t first = tasks.load();
        const std::uint64_t second = tasks.load();
        owner.join();
        model_assert(second >= first, "snapshot ran backwards");
        model_assert(second <= 3, "snapshot saw a value never written");
        model_assert(tasks.load() == 3,
                     "owner's adds lost despite single-writer discipline");
    });
    EXPECT_FALSE(r.failed) << r.reason << "\n" << r.trace;
    EXPECT_TRUE(r.complete);
}

// The documented hazard, demonstrated: two writers on a relaxed_counter
// lose updates (load+store pair is not atomic).  This is the interleaving
// the header's "single-writer" warning exists for.
TEST(ModelCounters, TwoWritersOnRelaxedCounterLoseUpdates) {
    options o;
    o.quiet = true;
    const result r = check(o, [] {
        amt::relaxed_counter c;
        amt::model::thread intruder([&] { c.add(1); });
        c.add(1);
        intruder.join();
        model_assert(c.load() == 2,
                     "two-writer relaxed_counter kept both updates");
    });
    ASSERT_TRUE(r.failed)
        << "the model must find the lost-update interleaving";
    EXPECT_NE(r.reason.find("relaxed_counter"), std::string::npos) << r.reason;
    EXPECT_FALSE(r.replay.empty());
}

// shared_counter under the same pressure: fetch_add makes both updates
// survive every interleaving.
TEST(ModelCounters, SharedCounterKeepsConcurrentUpdates) {
    options o;
    o.quiet = true;
    const result r = check(o, [] {
        amt::shared_counter c;
        amt::model::thread a([&] { c.add(1); });
        amt::model::thread b([&] { c.add(1); });
        a.join();
        b.join();
        model_assert(c.load() == 2, "shared_counter lost an update");
    });
    EXPECT_FALSE(r.failed) << r.reason << "\n" << r.trace;
    EXPECT_TRUE(r.complete);
}

// Snapshot consistency across a worker_counters block: the aggregator
// reads steals then steal_attempts while the owner bumps attempts before
// successes (probe first, then count the win).  A snapshot may be stale
// but must never show more successes than attempts... UNLESS it reads the
// two relaxed fields in the wrong order — which relaxed loads permit and
// the real snapshot code tolerates by contract.  The litmus pins down the
// exact guarantee: per-field monotonicity, not cross-field consistency.
TEST(ModelCounters, CrossFieldSnapshotIsOnlyPerFieldMonotone) {
    options o;
    o.quiet = true;
    o.max_executions = 60000;
    const result r = check(o, [] {
        amt::worker_counters wc;
        amt::model::thread owner([&] {
            wc.steal_attempts.add(1);
            wc.steals.add(1);  // success recorded after its attempt
        });
        const std::uint64_t s1 = wc.steals.load();
        const std::uint64_t a1 = wc.steal_attempts.load();
        const std::uint64_t s2 = wc.steals.load();
        const std::uint64_t a2 = wc.steal_attempts.load();
        owner.join();
        model_assert(s2 >= s1 && a2 >= a1, "per-field snapshot ran backwards");
        // Deliberately NOT asserting s1 <= a1: with relaxed loads the
        // reader may see the success before the attempt, and drain() in
        // trace.cpp must keep tolerating that.
        model_assert(wc.steals.load() == 1 && wc.steal_attempts.load() == 1,
                     "post-join totals wrong");
    });
    EXPECT_FALSE(r.failed) << r.reason << "\n" << r.trace;
}

}  // namespace
