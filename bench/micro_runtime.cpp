// bench/micro_runtime.cpp
//
// google-benchmark microbenchmarks of the runtime substrates: the costs the
// paper's tricks trade against each other — task spawn, continuation
// chaining, when_all fan-in, deque throughput, fork-join barrier cost, and
// the loop primitives of both runtimes on identical work.
//
// Also hosts the compiled-graph replay gate (`--replay-gate`): the same
// 64-chain x depth-5 iteration topology executed by re-arming a sealed
// amt::static_graph vs rebuilding the future/when_all web every iteration.
// The gate fails (non-zero exit) unless replay is >= 1.15x faster on 4
// workers AND allocation-free per iteration, so `ctest -L perf` keeps the
// replay advantage from regressing silently.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <new>
#include <string_view>
#include <vector>

#include "amt/amt.hpp"
#include "amt/static_graph.hpp"
#include "bench_artifact.hpp"
#include "ompsim/ompsim.hpp"

// Binary-local counting allocator: one relaxed increment per allocation,
// cheap enough to stay enabled for the ordinary benchmark mode too.  The
// replay gate reads it to report allocs/iteration for both execution modes.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

// GCC pairs new-expressions it inlines with the malloc-backed free() below
// and reports a mismatch; the pair IS matched — both global operators are
// replaced by this translation unit.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (size == 0) size = 1;
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    const auto a = static_cast<std::size_t>(align);
    if (size == 0) size = 1;
    size = (size + a - 1) / a * a;
    if (void* p = std::aligned_alloc(a, size)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace {

// ---------- amt primitives ----------

void BM_AmtTaskSpawnAndGet(benchmark::State& state) {
    amt::runtime rt(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto f = amt::async([] { return 1; });
        benchmark::DoNotOptimize(f.get());
    }
}
BENCHMARK(BM_AmtTaskSpawnAndGet)->Arg(1)->Arg(2);

void BM_AmtContinuationChain(benchmark::State& state) {
    amt::runtime rt(1);
    const int depth = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto f = amt::async([] { return 0; });
        for (int i = 0; i < depth; ++i) {
            f = f.then([](amt::future<int>&& v) { return v.get() + 1; });
        }
        benchmark::DoNotOptimize(f.get());
    }
    state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_AmtContinuationChain)->Arg(16)->Arg(128);

void BM_AmtWhenAllFanIn(benchmark::State& state) {
    amt::runtime rt(2);
    const int width = static_cast<int>(state.range(0));
    for (auto _ : state) {
        std::vector<amt::future<void>> fs;
        fs.reserve(static_cast<std::size_t>(width));
        for (int i = 0; i < width; ++i) fs.push_back(amt::async([] {}));
        amt::when_all_void(std::move(fs)).get();
    }
    state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_AmtWhenAllFanIn)->Arg(64)->Arg(512);

void BM_WsDequePushPop(benchmark::State& state) {
    amt::ws_deque d;
    for (auto _ : state) {
        d.push(amt::make_task([] {}).release());
        delete d.pop();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WsDequePushPop);

void BM_UniqueFunctionInvokeSmall(benchmark::State& state) {
    int x = 0;
    amt::unique_function<void()> f([&x] { ++x; });
    for (auto _ : state) f();
    benchmark::DoNotOptimize(x);
}
BENCHMARK(BM_UniqueFunctionInvokeSmall);

void BM_ChannelSetGet(benchmark::State& state) {
    amt::channel<int> ch;
    for (auto _ : state) {
        ch.set(1);
        benchmark::DoNotOptimize(ch.get().get());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelSetGet);

void BM_ChannelHaloPattern(benchmark::State& state) {
    // One plane-sized message per direction per "iteration", like the
    // distributed driver's corner exchange at s = 20 (400 elements/plane).
    amt::runtime rt(2);
    amt::channel<std::vector<double>> up;
    amt::channel<std::vector<double>> down;
    const std::size_t plane = 400 * 8 * 6;
    std::vector<double> buf(plane, 1.0);
    for (auto _ : state) {
        up.set(buf);
        down.set(buf);
        benchmark::DoNotOptimize(up.get().get());
        benchmark::DoNotOptimize(down.get().get());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * plane * sizeof(double)));
}
BENCHMARK(BM_ChannelHaloPattern);

void BM_LatchCountdown(benchmark::State& state) {
    for (auto _ : state) {
        amt::latch l(64);
        for (int i = 0; i < 64; ++i) l.count_down();
        l.wait();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_LatchCountdown);

// ---------- ompsim primitives ----------

void BM_OmpsimForkJoin(benchmark::State& state) {
    ompsim::team team(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        team.parallel_region([](ompsim::region_context&) {});
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OmpsimForkJoin)->Arg(1)->Arg(2)->Arg(4);

void BM_OmpsimBarrier(benchmark::State& state) {
    ompsim::team team(static_cast<std::size_t>(state.range(0)));
    const int rounds = 64;
    for (auto _ : state) {
        team.parallel_region([&](ompsim::region_context& ctx) {
            for (int i = 0; i < rounds; ++i) ctx.barrier();
        });
    }
    state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_OmpsimBarrier)->Arg(2)->Arg(4);

// ---------- loop primitives on identical work ----------

constexpr ompsim::index_t loop_n = 1 << 16;

void BM_OmpsimParallelFor(benchmark::State& state) {
    ompsim::team team(static_cast<std::size_t>(state.range(0)));
    std::vector<double> data(static_cast<std::size_t>(loop_n), 1.0);
    for (auto _ : state) {
        team.parallel_for(0, loop_n, [&data](ompsim::index_t i) {
            data[static_cast<std::size_t>(i)] *= 1.0000001;
        });
    }
    state.SetItemsProcessed(state.iterations() * loop_n);
}
BENCHMARK(BM_OmpsimParallelFor)->Arg(1)->Arg(2);

void BM_AmtBulkChunks(benchmark::State& state) {
    amt::runtime rt(static_cast<std::size_t>(state.range(0)));
    std::vector<double> data(static_cast<std::size_t>(loop_n), 1.0);
    for (auto _ : state) {
        auto wave = amt::bulk_async(
            rt, 0, loop_n, 4096, [&data](amt::index_t lo, amt::index_t hi) {
                for (amt::index_t i = lo; i < hi; ++i) {
                    data[static_cast<std::size_t>(i)] *= 1.0000001;
                }
            });
        amt::when_all_void(std::move(wave)).get();
    }
    state.SetItemsProcessed(state.iterations() * loop_n);
}
BENCHMARK(BM_AmtBulkChunks)->Arg(1)->Arg(2);

// The paper's central trade: four dependent loops as 4 barriers (Figure 5)
// vs per-chunk continuation chains with 1 barrier (Figure 6).

void BM_FourLoopsFourBarriers(benchmark::State& state) {
    amt::runtime rt(2);
    std::vector<double> data(static_cast<std::size_t>(loop_n), 1.0);
    auto body = [&data](amt::index_t lo, amt::index_t hi) {
        for (amt::index_t i = lo; i < hi; ++i) {
            data[static_cast<std::size_t>(i)] *= 1.0000001;
        }
    };
    for (auto _ : state) {
        for (int loop = 0; loop < 4; ++loop) {
            auto wave = amt::bulk_async(rt, 0, loop_n, 4096, body);
            amt::when_all_void(std::move(wave)).get();  // barrier per loop
        }
    }
    state.SetItemsProcessed(state.iterations() * loop_n * 4);
}
BENCHMARK(BM_FourLoopsFourBarriers);

void BM_FourLoopsChainedOneBarrier(benchmark::State& state) {
    amt::runtime rt(2);
    std::vector<double> data(static_cast<std::size_t>(loop_n), 1.0);
    for (auto _ : state) {
        std::vector<amt::future<void>> chains;
        for (amt::index_t lo = 0; lo < loop_n; lo += 4096) {
            const amt::index_t hi = std::min<amt::index_t>(lo + 4096, loop_n);
            auto body = [&data, lo, hi] {
                for (amt::index_t i = lo; i < hi; ++i) {
                    data[static_cast<std::size_t>(i)] *= 1.0000001;
                }
            };
            chains.push_back(amt::async(body)
                                 .then([body](amt::future<void>&& f) mutable {
                                     f.get();
                                     body();
                                 })
                                 .then([body](amt::future<void>&& f) mutable {
                                     f.get();
                                     body();
                                 })
                                 .then([body](amt::future<void>&& f) mutable {
                                     f.get();
                                     body();
                                 }));
        }
        amt::when_all_void(std::move(chains)).get();  // single barrier
    }
    state.SetItemsProcessed(state.iterations() * loop_n * 4);
}
BENCHMARK(BM_FourLoopsChainedOneBarrier);

// ---------- compiled-graph replay vs per-iteration build ----------

// The iteration shape shared by the benchmarks and the gate: `chains`
// independent dependency chains of `depth` tasks each — the static-graph
// analogue of the taskgraph driver's per-partition continuation chains.
constexpr int replay_chains = 64;
constexpr int replay_depth = 5;

/// One iteration in build mode: a fresh async + .then chain per lane, one
/// when_all barrier — allocating promises, continuations and the barrier
/// block every time.
void run_build_iteration(std::vector<double>& cells) {
    std::vector<amt::future<void>> fs;
    fs.reserve(replay_chains);
    for (int c = 0; c < replay_chains; ++c) {
        auto f = amt::async([&cells, c] { cells[static_cast<std::size_t>(c)] += 1.0; });
        for (int d = 1; d < replay_depth; ++d) {
            f = f.then([&cells, c](amt::future<void>&& prev) {
                prev.get();
                cells[static_cast<std::size_t>(c)] += 1.0;
            });
        }
        fs.push_back(std::move(f));
    }
    amt::when_all_void(std::move(fs)).get();
}

/// The same topology compiled once into a static graph for re-arm + replay.
void build_replay_graph(amt::static_graph& g, std::vector<double>& cells) {
    for (int c = 0; c < replay_chains; ++c) {
        amt::static_graph::node_id prev{};
        for (int d = 0; d < replay_depth; ++d) {
            const auto id = g.add_node(
                [&cells, c] { cells[static_cast<std::size_t>(c)] += 1.0; },
                "chain", c);
            if (d > 0) g.add_edge(prev, id);
            prev = id;
        }
    }
    g.seal();
}

void BM_GraphBuildEveryIteration(benchmark::State& state) {
    amt::runtime rt(static_cast<std::size_t>(state.range(0)));
    std::vector<double> cells(replay_chains, 0.0);
    const std::uint64_t a0 = g_alloc_count.load(std::memory_order_relaxed);
    for (auto _ : state) run_build_iteration(cells);
    const std::uint64_t a1 = g_alloc_count.load(std::memory_order_relaxed);
    benchmark::DoNotOptimize(cells.data());
    state.SetItemsProcessed(state.iterations() * replay_chains * replay_depth);
    state.counters["allocs/iter"] = benchmark::Counter(
        static_cast<double>(a1 - a0) /
        static_cast<double>(std::max<std::int64_t>(1, state.iterations())));
}
BENCHMARK(BM_GraphBuildEveryIteration)->Arg(1)->Arg(4);

void BM_GraphArmOnceReplayN(benchmark::State& state) {
    amt::runtime rt(static_cast<std::size_t>(state.range(0)));
    std::vector<double> cells(replay_chains, 0.0);
    amt::static_graph g;
    build_replay_graph(g, cells);
    g.run(rt);  // warm-up replay outside the timed loop
    const std::uint64_t a0 = g_alloc_count.load(std::memory_order_relaxed);
    for (auto _ : state) g.run(rt);
    const std::uint64_t a1 = g_alloc_count.load(std::memory_order_relaxed);
    benchmark::DoNotOptimize(cells.data());
    state.SetItemsProcessed(state.iterations() * replay_chains * replay_depth);
    state.counters["allocs/iter"] = benchmark::Counter(
        static_cast<double>(a1 - a0) /
        static_cast<double>(std::max<std::int64_t>(1, state.iterations())));
}
BENCHMARK(BM_GraphArmOnceReplayN)->Arg(1)->Arg(4);

// ---------- the ctest perf gate ----------

double median(std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/// Alternating-repetition measurement of one mode.  Returns {median
/// seconds per rep, median allocations per iteration}.
struct gate_sample {
    double seconds;
    double allocs_per_iter;
};

template <class RunIteration>
gate_sample measure_mode(int reps, int iters, RunIteration&& iteration) {
    std::vector<double> times, allocs;
    for (int r = 0; r < reps; ++r) {
        const std::uint64_t a0 = g_alloc_count.load(std::memory_order_relaxed);
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i) iteration();
        const auto t1 = std::chrono::steady_clock::now();
        const std::uint64_t a1 = g_alloc_count.load(std::memory_order_relaxed);
        times.push_back(std::chrono::duration<double>(t1 - t0).count());
        allocs.push_back(static_cast<double>(a1 - a0) / iters);
    }
    return {median(times), median(allocs)};
}

int run_replay_gate() {
    constexpr std::size_t workers = 4;
    constexpr int iters = 50;
    constexpr int reps = 5;
    constexpr double required_ratio = 1.15;
    const double tasks_per_iter = replay_chains * replay_depth;

    amt::runtime rt(workers);
    std::vector<double> cells(replay_chains, 0.0);
    amt::static_graph g;
    build_replay_graph(g, cells);

    // Warm up both paths (compile cost, task-pool population, branch
    // predictors) before any timed rep.
    for (int i = 0; i < 5; ++i) {
        g.run(rt);
        run_build_iteration(cells);
    }

    // Interleave reps of the two modes so frequency drift and co-scheduled
    // load hit both equally; the median per mode absorbs outlier reps.
    std::vector<double> replay_times, build_times, replay_allocs, build_allocs;
    for (int r = 0; r < reps; ++r) {
        const auto rs = measure_mode(1, iters, [&] { g.run(rt); });
        const auto bs =
            measure_mode(1, iters, [&] { run_build_iteration(cells); });
        replay_times.push_back(rs.seconds);
        replay_allocs.push_back(rs.allocs_per_iter);
        build_times.push_back(bs.seconds);
        build_allocs.push_back(bs.allocs_per_iter);
    }
    const double replay_s = median(replay_times);
    const double build_s = median(build_times);
    const double replay_ai = median(replay_allocs);
    const double build_ai = median(build_allocs);
    const double ratio = replay_s > 0 ? build_s / replay_s : 0.0;
    const double build_ns_task = build_s / iters / tasks_per_iter * 1e9;
    const double replay_ns_task = replay_s / iters / tasks_per_iter * 1e9;

    std::cout << "Compiled-graph replay gate: " << replay_chains
              << " chains x depth " << replay_depth << ", " << workers
              << " workers, " << iters << " iterations x " << reps
              << " reps\n"
              << "  build:  " << build_ns_task << " ns/task, " << build_ai
              << " allocs/iter\n"
              << "  replay: " << replay_ns_task << " ns/task, " << replay_ai
              << " allocs/iter\n"
              << "  ratio (build/replay): " << ratio << " (required >= "
              << required_ratio << ")\n";
    std::cout << "CSV,replay_gate," << workers << "," << iters << ","
              << build_ns_task << "," << replay_ns_task << "," << ratio << ","
              << build_ai << "," << replay_ai << "\n";

    bench::artifact art("micro_runtime");
    art.set_config("workers", static_cast<long long>(workers));
    art.set_config("iters", iters);
    art.set_config("reps", reps);
    art.add_sample("build_ns_per_task", build_ns_task, "ns");
    art.add_sample("replay_ns_per_task", replay_ns_task, "ns");
    art.add_sample("replay_speedup", ratio, "x", "higher");
    art.add_sample("replay_allocs_per_iter", replay_ai, "count");
    art.write_file();

    bool ok = true;
    if (ratio < required_ratio) {
        std::cerr << "FAIL: replay speedup " << ratio << " < "
                  << required_ratio << "\n";
        ok = false;
    }
    if (replay_ai != 0.0) {
        std::cerr << "FAIL: replay allocated " << replay_ai
                  << " times/iteration (expected 0)\n";
        ok = false;
    }
    return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--replay-gate") {
            return run_replay_gate();
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
