// amt/fault.hpp
//
// Deterministic, seedable fault injection for task execution — the testing
// half of the resilience story (the recovery half lives in
// lulesh/resilient_run).  Task bodies call fault::probe("<site>") at entry;
// an armed *plan* decides, deterministically from (seed, probe index, epoch,
// site), whether that probe
//
//   * throws fault::injected_fault   (a failed task),
//   * sleeps for a fixed delay       (a slow task / jittery worker), or
//   * stalls until released          (a hung worker, for watchdog tests).
//
// Cost model: when no plan is armed, probe() is a single relaxed atomic
// load and a predictable branch (measured <1% on the task-graph iteration,
// see bench/fault_overhead).  Defining AMT_FAULT_DISABLE at compile time
// removes even that, turning probe() into an empty inline function.
//
// Determinism: every probe that passes the site/epoch filters draws a
// uniform [0,1) value from splitmix64(seed, probe-index); the sequence of
// draws — and therefore the injection pattern — depends only on the plan,
// not on wall-clock or scheduling.  (Which *worker* executes the injected
// task is still up to the scheduler; the guarantee is that the k-th
// matching probe injects or not reproducibly.)
//
// Concurrency contract: probes may run concurrently with each other and
// with set_epoch()/release_stalls()/snapshot().  arm()/disarm() must not
// race with in-flight probes of a *running* task graph — quiesce (join the
// futures) first, exactly like the tests do between iterations.

#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "amt/atomic.hpp"

namespace amt::fault {

/// Thrown by an armed probe with action::throw_exception.  Deliberately not
/// derived from any lulesh error type: recovery code must treat it as "some
/// task failed", the same way it would treat a std::bad_alloc.
class injected_fault : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

enum class action {
    throw_exception,  ///< probe throws injected_fault
    delay,            ///< probe sleeps for plan::delay, then continues
    stall             ///< probe blocks until release_stalls()/disarm()
                      ///< (or plan::stall_timeout as a fail-safe)
};

/// What to inject, where, and when.  Arm at most one plan at a time.
struct plan {
    action kind = action::throw_exception;

    /// Only probes whose site string equals this match; empty matches all.
    std::string site;

    /// Only probes while the current epoch (see set_epoch — the run loops
    /// publish the simulation cycle) equals this match; -1 matches all.
    std::int64_t epoch = -1;

    /// Chance that a matching probe injects, drawn deterministically from
    /// (seed, probe index).  1.0 → the first matching probe injects.
    double probability = 1.0;
    std::uint64_t seed = 0;

    /// Total injections before the plan goes idle; -1 → unbounded.
    int max_injections = 1;

    /// Sleep duration for action::delay.
    std::chrono::milliseconds delay{5};

    /// Fail-safe for action::stall: a stalled probe returns after this even
    /// if nobody calls release_stalls(), so a forgotten release can never
    /// wedge a test binary forever.
    std::chrono::milliseconds stall_timeout{30000};
};

struct stats {
    std::uint64_t probes = 0;      ///< probes evaluated while armed
    std::uint64_t injections = 0;  ///< faults actually delivered
};

/// Installs `p` and starts injecting.  Resets the probe index and budget.
void arm(const plan& p);

/// Stops injecting and releases any probes parked in a stall.
void disarm();

[[nodiscard]] stats snapshot();
void reset_stats();

/// Publishes the current epoch (the run loops publish the cycle number
/// being computed).  Callable from any thread at any time.
void set_epoch(std::int64_t epoch) noexcept;
[[nodiscard]] std::int64_t epoch() noexcept;

/// Unblocks every probe currently parked in an action::stall injection.
/// The plan stays armed (budget permitting, later probes can stall again).
void release_stalls();

/// Probes currently parked in a stall (diagnostic, racy by nature).
[[nodiscard]] int stalled_now();

namespace detail {
extern amt::atomic<bool> g_armed;
void probe_slow(const char* site);
bool decide_slow(const char* site);
}  // namespace detail

#if defined(AMT_FAULT_DISABLE)

/// Compiled out: calls vanish entirely.
inline void probe(const char*) noexcept {}
[[nodiscard]] inline bool decide(const char*) noexcept { return false; }
inline constexpr bool compiled_in = false;

[[nodiscard]] inline bool armed() noexcept { return false; }

#else

/// Instrumentation point for task bodies.  One relaxed-ish load + branch
/// when disarmed.
inline void probe(const char* site) {
    if (detail::g_armed.load(amt::memory_order_acquire)) {
        detail::probe_slow(site);
    }
}
/// Non-throwing injection *decision* for instrumentation points that model
/// the fault themselves instead of raising an exception — e.g. the
/// distributed halo layer's `halo_drop` (swallow a message) and
/// `halo_corrupt` (flip a payload bit) sites.  Matching and budget
/// accounting are identical to probe(): a throw_exception-kind plan that
/// would have injected here returns true (consuming one unit of the
/// budget) and the caller applies its own effect; delay/stall plans
/// perform their usual side effect and return false, like probe().
[[nodiscard]] inline bool decide(const char* site) {
    if (detail::g_armed.load(amt::memory_order_acquire)) {
        return detail::decide_slow(site);
    }
    return false;
}

inline constexpr bool compiled_in = true;

[[nodiscard]] inline bool armed() noexcept {
    return detail::g_armed.load(amt::memory_order_acquire);
}

#endif

}  // namespace amt::fault
