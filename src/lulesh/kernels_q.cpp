// lulesh/kernels_q.cpp — artificial viscosity: monotonic Q gradients and the
// per-region monotonic Q evaluation.

#include <cmath>

#include "lulesh/kernels.hpp"

namespace lulesh::kernels {

void calc_monotonic_q_gradients(domain& d, index_t lo, index_t hi) {
    constexpr real_t ptiny = real_t(1.e-36);

    for (index_t i = lo; i < hi; ++i) {
        const index_t* nl = d.nodelist(i);
        const auto n0 = static_cast<std::size_t>(nl[0]);
        const auto n1 = static_cast<std::size_t>(nl[1]);
        const auto n2 = static_cast<std::size_t>(nl[2]);
        const auto n3 = static_cast<std::size_t>(nl[3]);
        const auto n4 = static_cast<std::size_t>(nl[4]);
        const auto n5 = static_cast<std::size_t>(nl[5]);
        const auto n6 = static_cast<std::size_t>(nl[6]);
        const auto n7 = static_cast<std::size_t>(nl[7]);

        const real_t x0 = d.x[n0], x1 = d.x[n1], x2 = d.x[n2], x3 = d.x[n3];
        const real_t x4 = d.x[n4], x5 = d.x[n5], x6 = d.x[n6], x7 = d.x[n7];
        const real_t y0 = d.y[n0], y1 = d.y[n1], y2 = d.y[n2], y3 = d.y[n3];
        const real_t y4 = d.y[n4], y5 = d.y[n5], y6 = d.y[n6], y7 = d.y[n7];
        const real_t z0 = d.z[n0], z1 = d.z[n1], z2 = d.z[n2], z3 = d.z[n3];
        const real_t z4 = d.z[n4], z5 = d.z[n5], z6 = d.z[n6], z7 = d.z[n7];

        const real_t xv0 = d.xd[n0], xv1 = d.xd[n1], xv2 = d.xd[n2],
                     xv3 = d.xd[n3], xv4 = d.xd[n4], xv5 = d.xd[n5],
                     xv6 = d.xd[n6], xv7 = d.xd[n7];
        const real_t yv0 = d.yd[n0], yv1 = d.yd[n1], yv2 = d.yd[n2],
                     yv3 = d.yd[n3], yv4 = d.yd[n4], yv5 = d.yd[n5],
                     yv6 = d.yd[n6], yv7 = d.yd[n7];
        const real_t zv0 = d.zd[n0], zv1 = d.zd[n1], zv2 = d.zd[n2],
                     zv3 = d.zd[n3], zv4 = d.zd[n4], zv5 = d.zd[n5],
                     zv6 = d.zd[n6], zv7 = d.zd[n7];

        const auto k = static_cast<std::size_t>(i);
        const real_t vol = d.volo[k] * d.vnew[k];
        const real_t norm = real_t(1.0) / (vol + ptiny);

        const real_t dxj = real_t(-0.25) * ((x0 + x1 + x5 + x4) - (x3 + x2 + x6 + x7));
        const real_t dyj = real_t(-0.25) * ((y0 + y1 + y5 + y4) - (y3 + y2 + y6 + y7));
        const real_t dzj = real_t(-0.25) * ((z0 + z1 + z5 + z4) - (z3 + z2 + z6 + z7));

        const real_t dxi = real_t(0.25) * ((x1 + x2 + x6 + x5) - (x0 + x3 + x7 + x4));
        const real_t dyi = real_t(0.25) * ((y1 + y2 + y6 + y5) - (y0 + y3 + y7 + y4));
        const real_t dzi = real_t(0.25) * ((z1 + z2 + z6 + z5) - (z0 + z3 + z7 + z4));

        const real_t dxk = real_t(0.25) * ((x4 + x5 + x6 + x7) - (x0 + x1 + x2 + x3));
        const real_t dyk = real_t(0.25) * ((y4 + y5 + y6 + y7) - (y0 + y1 + y2 + y3));
        const real_t dzk = real_t(0.25) * ((z4 + z5 + z6 + z7) - (z0 + z1 + z2 + z3));

        // zeta direction: i cross j
        {
            real_t ax = dyi * dzj - dzi * dyj;
            real_t ay = dzi * dxj - dxi * dzj;
            real_t az = dxi * dyj - dyi * dxj;

            d.delx_zeta[k] = vol / std::sqrt(ax * ax + ay * ay + az * az + ptiny);

            ax *= norm;
            ay *= norm;
            az *= norm;

            const real_t dxv = real_t(0.25) * ((xv4 + xv5 + xv6 + xv7) - (xv0 + xv1 + xv2 + xv3));
            const real_t dyv = real_t(0.25) * ((yv4 + yv5 + yv6 + yv7) - (yv0 + yv1 + yv2 + yv3));
            const real_t dzv = real_t(0.25) * ((zv4 + zv5 + zv6 + zv7) - (zv0 + zv1 + zv2 + zv3));

            d.delv_zeta[k] = ax * dxv + ay * dyv + az * dzv;
        }

        // xi direction: j cross k
        {
            real_t ax = dyj * dzk - dzj * dyk;
            real_t ay = dzj * dxk - dxj * dzk;
            real_t az = dxj * dyk - dyj * dxk;

            d.delx_xi[k] = vol / std::sqrt(ax * ax + ay * ay + az * az + ptiny);

            ax *= norm;
            ay *= norm;
            az *= norm;

            const real_t dxv = real_t(0.25) * ((xv1 + xv2 + xv6 + xv5) - (xv0 + xv3 + xv7 + xv4));
            const real_t dyv = real_t(0.25) * ((yv1 + yv2 + yv6 + yv5) - (yv0 + yv3 + yv7 + yv4));
            const real_t dzv = real_t(0.25) * ((zv1 + zv2 + zv6 + zv5) - (zv0 + zv3 + zv7 + zv4));

            d.delv_xi[k] = ax * dxv + ay * dyv + az * dzv;
        }

        // eta direction: k cross i
        {
            real_t ax = dyk * dzi - dzk * dyi;
            real_t ay = dzk * dxi - dxk * dzi;
            real_t az = dxk * dyi - dyk * dxi;

            d.delx_eta[k] = vol / std::sqrt(ax * ax + ay * ay + az * az + ptiny);

            ax *= norm;
            ay *= norm;
            az *= norm;

            const real_t dxv = real_t(-0.25) * ((xv0 + xv1 + xv5 + xv4) - (xv3 + xv2 + xv6 + xv7));
            const real_t dyv = real_t(-0.25) * ((yv0 + yv1 + yv5 + yv4) - (yv3 + yv2 + yv6 + yv7));
            const real_t dzv = real_t(-0.25) * ((zv0 + zv1 + zv5 + zv4) - (zv3 + zv2 + zv6 + zv7));

            d.delv_eta[k] = ax * dxv + ay * dyv + az * dzv;
        }
    }
}

void calc_monotonic_q_region(domain& d, const index_t* reg_elem_list,
                             index_t lo, index_t hi) {
    constexpr real_t ptiny = real_t(1.e-36);
    const real_t monoq_limiter_mult = d.monoq_limiter_mult;
    const real_t monoq_max_slope = d.monoq_max_slope;
    const real_t qlc_monoq = d.qlc_monoq;
    const real_t qqc_monoq = d.qqc_monoq;

    for (index_t idx = lo; idx < hi; ++idx) {
        const index_t i = reg_elem_list[idx];
        const auto k = static_cast<std::size_t>(i);
        const int bc_mask = d.elemBC[k];
        real_t delvm = 0, delvp = 0;

        // phixi
        real_t norm = real_t(1.0) / (d.delv_xi[k] + ptiny);
        switch (bc_mask & XI_M) {
            case XI_M_SYMM:
                delvm = d.delv_xi[k];
                break;
            case XI_M_FREE:
                delvm = real_t(0.0);
                break;
            default:
                delvm = d.delv_xi[static_cast<std::size_t>(d.lxim[k])];
                break;
        }
        switch (bc_mask & XI_P) {
            case XI_P_SYMM:
                delvp = d.delv_xi[k];
                break;
            case XI_P_FREE:
                delvp = real_t(0.0);
                break;
            default:
                delvp = d.delv_xi[static_cast<std::size_t>(d.lxip[k])];
                break;
        }

        delvm = delvm * norm;
        delvp = delvp * norm;

        real_t phixi = real_t(0.5) * (delvm + delvp);

        delvm *= monoq_limiter_mult;
        delvp *= monoq_limiter_mult;

        if (delvm < phixi) phixi = delvm;
        if (delvp < phixi) phixi = delvp;
        if (phixi < real_t(0.0)) phixi = real_t(0.0);
        if (phixi > monoq_max_slope) phixi = monoq_max_slope;

        // phieta
        norm = real_t(1.0) / (d.delv_eta[k] + ptiny);
        switch (bc_mask & ETA_M) {
            case ETA_M_SYMM:
                delvm = d.delv_eta[k];
                break;
            case ETA_M_FREE:
                delvm = real_t(0.0);
                break;
            default:
                delvm = d.delv_eta[static_cast<std::size_t>(d.letam[k])];
                break;
        }
        switch (bc_mask & ETA_P) {
            case ETA_P_SYMM:
                delvp = d.delv_eta[k];
                break;
            case ETA_P_FREE:
                delvp = real_t(0.0);
                break;
            default:
                delvp = d.delv_eta[static_cast<std::size_t>(d.letap[k])];
                break;
        }

        delvm = delvm * norm;
        delvp = delvp * norm;

        real_t phieta = real_t(0.5) * (delvm + delvp);

        delvm *= monoq_limiter_mult;
        delvp *= monoq_limiter_mult;

        if (delvm < phieta) phieta = delvm;
        if (delvp < phieta) phieta = delvp;
        if (phieta < real_t(0.0)) phieta = real_t(0.0);
        if (phieta > monoq_max_slope) phieta = monoq_max_slope;

        // phizeta
        norm = real_t(1.0) / (d.delv_zeta[k] + ptiny);
        switch (bc_mask & ZETA_M) {
            case ZETA_M_SYMM:
                delvm = d.delv_zeta[k];
                break;
            case ZETA_M_FREE:
                delvm = real_t(0.0);
                break;
            default:
                delvm = d.delv_zeta[static_cast<std::size_t>(d.lzetam[k])];
                break;
        }
        switch (bc_mask & ZETA_P) {
            case ZETA_P_SYMM:
                delvp = d.delv_zeta[k];
                break;
            case ZETA_P_FREE:
                delvp = real_t(0.0);
                break;
            default:
                delvp = d.delv_zeta[static_cast<std::size_t>(d.lzetap[k])];
                break;
        }

        delvm = delvm * norm;
        delvp = delvp * norm;

        real_t phizeta = real_t(0.5) * (delvm + delvp);

        delvm *= monoq_limiter_mult;
        delvp *= monoq_limiter_mult;

        if (delvm < phizeta) phizeta = delvm;
        if (delvp < phizeta) phizeta = delvp;
        if (phizeta < real_t(0.0)) phizeta = real_t(0.0);
        if (phizeta > monoq_max_slope) phizeta = monoq_max_slope;

        // Remove length scale.
        real_t qlin, qquad;
        if (d.vdov[k] > real_t(0.0)) {
            qlin = real_t(0.0);
            qquad = real_t(0.0);
        } else {
            real_t delvxxi = d.delv_xi[k] * d.delx_xi[k];
            real_t delvxeta = d.delv_eta[k] * d.delx_eta[k];
            real_t delvxzeta = d.delv_zeta[k] * d.delx_zeta[k];

            if (delvxxi > real_t(0.0)) delvxxi = real_t(0.0);
            if (delvxeta > real_t(0.0)) delvxeta = real_t(0.0);
            if (delvxzeta > real_t(0.0)) delvxzeta = real_t(0.0);

            const real_t rho = d.elemMass[k] / (d.volo[k] * d.vnew[k]);

            qlin = -qlc_monoq * rho *
                   (delvxxi * (real_t(1.0) - phixi) +
                    delvxeta * (real_t(1.0) - phieta) +
                    delvxzeta * (real_t(1.0) - phizeta));

            qquad = qqc_monoq * rho *
                    (delvxxi * delvxxi * (real_t(1.0) - phixi * phixi) +
                     delvxeta * delvxeta * (real_t(1.0) - phieta * phieta) +
                     delvxzeta * delvxzeta * (real_t(1.0) - phizeta * phizeta));
        }

        d.qq[k] = qquad;
        d.ql[k] = qlin;
    }
}

bool check_qstop(const domain& d, index_t lo, index_t hi) {
    const real_t qstop = d.qstop;
    for (index_t i = lo; i < hi; ++i) {
        if (d.q[static_cast<std::size_t>(i)] > qstop) return false;
    }
    return true;
}

}  // namespace lulesh::kernels
