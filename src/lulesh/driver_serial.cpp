// lulesh/driver_serial.cpp — single-threaded reference-ordered driver.

#include "amt/fault.hpp"
#include "lulesh/driver.hpp"
#include "lulesh/kernels.hpp"

namespace lulesh {

void serial_driver::advance(domain& d) {
    namespace k = kernels;
    // One injection site per iteration — enough for epoch-targeted fault
    // plans to hit a deterministic cycle in this driver too.
    amt::fault::probe("advance");
    const index_t ne = d.numElem();
    const index_t nn = d.numNode();
    const real_t dt = d.deltatime;

    // ---------------- LagrangeNodal ----------------
    const auto nes = static_cast<std::size_t>(ne);
    sigxx_.resize(nes);
    sigyy_.resize(nes);
    sigzz_.resize(nes);
    dvdx_.resize(nes * 8);
    dvdy_.resize(nes * 8);
    dvdz_.resize(nes * 8);
    x8n_.resize(nes * 8);
    y8n_.resize(nes * 8);
    z8n_.resize(nes * 8);
    determ_.resize(nes);

    k::init_stress_terms(d, 0, ne, sigxx_.data(), sigyy_.data(), sigzz_.data());
    if (!k::integrate_stress(d, 0, ne, sigxx_.data(), sigyy_.data(),
                             sigzz_.data())) {
        throw simulation_error(status::volume_error,
                               "non-positive Jacobian in stress integration");
    }
    if (!k::calc_hourglass_control(d, 0, ne, dvdx_.data(), dvdy_.data(),
                                   dvdz_.data(), x8n_.data(), y8n_.data(),
                                   z8n_.data(), determ_.data())) {
        throw simulation_error(status::volume_error,
                               "non-positive volume in hourglass control");
    }
    if (d.hgcoef > real_t(0.0)) {
        k::calc_fb_hourglass_force(d, 0, ne, dvdx_.data(), dvdy_.data(),
                                   dvdz_.data(), x8n_.data(), y8n_.data(),
                                   z8n_.data(), determ_.data(), d.hgcoef);
    }
    k::gather_forces(d, 0, nn);

    k::calc_acceleration(d, 0, nn);
    k::apply_acceleration_bc_x(d, 0, static_cast<index_t>(d.symmX.size()));
    k::apply_acceleration_bc_y(d, 0, static_cast<index_t>(d.symmY.size()));
    k::apply_acceleration_bc_z(d, 0, static_cast<index_t>(d.symmZ.size()));
    k::calc_velocity(d, 0, nn, dt);
    k::calc_position(d, 0, nn, dt);

    // ---------------- LagrangeElements ----------------
    k::calc_kinematics(d, 0, ne, dt);
    if (!k::calc_lagrange_deviatoric(d, 0, ne)) {
        throw simulation_error(status::volume_error,
                               "non-positive new volume in kinematics");
    }

    k::calc_monotonic_q_gradients(d, 0, ne);
    for (index_t r = 0; r < d.numReg(); ++r) {
        const auto& list = d.regElemList(r);
        k::calc_monotonic_q_region(d, list.data(), 0,
                                   static_cast<index_t>(list.size()));
    }
    if (!k::check_qstop(d, 0, ne)) {
        throw simulation_error(status::qstop_error,
                               "artificial viscosity exceeded qstop");
    }

    if (!k::apply_material_vnewc(d, 0, ne)) {
        throw simulation_error(status::volume_error,
                               "relative volume out of EOS range");
    }
    {
        k::eos_scratch scratch;
        for (index_t r = 0; r < d.numReg(); ++r) {
            const auto& list = d.regElemList(r);
            const auto count = static_cast<index_t>(list.size());
            if (count == 0) continue;
            scratch.resize(static_cast<std::size_t>(count));
            k::eval_eos_chunk(d, list.data(), 0, count,
                              k::eos_rep_for_region(d, r), scratch);
        }
    }
    k::update_volumes(d, 0, ne);

    // ---------------- time constraints ----------------
    kernels::dt_constraints c;
    for (index_t r = 0; r < d.numReg(); ++r) {
        const auto& list = d.regElemList(r);
        c = k::min_constraints(
            c, k::calc_time_constraints(d, list.data(), 0,
                                        static_cast<index_t>(list.size())));
    }
    d.dtcourant = c.dtcourant;
    d.dthydro = c.dthydro;
}

}  // namespace lulesh
