// lulesh/kernels_elem.cpp — LagrangeElements kernels: kinematics (new
// volumes, strain rates) and the end-of-step volume update.

#include <cmath>

#include "lulesh/elem_geometry.hpp"
#include "lulesh/fields.hpp"
#include "lulesh/kernels.hpp"

namespace lulesh::kernels {

void calc_kinematics(domain& d, index_t lo, index_t hi, real_t dt) {
    hazard_touch(field::vnew, true, lo, hi);
    hazard_touch(field::delv, true, lo, hi);
    hazard_touch(field::volo, false, lo, hi);
    hazard_touch(field::v, false, lo, hi);
    hazard_touch(field::arealg, true, lo, hi);
    hazard_touch(field::dxx, true, lo, hi);
    hazard_touch(field::dyy, true, lo, hi);
    hazard_touch(field::dzz, true, lo, hi);
    hazard_covers(field::x);   // corner gather through nodelist (elem_nodes)
    hazard_covers(field::y);
    hazard_covers(field::z);
    hazard_covers(field::xd);
    hazard_covers(field::yd);
    hazard_covers(field::zd);
    const real_t dt2 = real_t(0.5) * dt;
    for (index_t k = lo; k < hi; ++k) {
        real_t B[3][8];
        real_t D[6];
        real_t x_local[8], y_local[8], z_local[8];
        real_t xd_local[8], yd_local[8], zd_local[8];

        const index_t* nl = d.nodelist(k);
        for (int c = 0; c < 8; ++c) {
            const auto n = static_cast<std::size_t>(nl[c]);
            x_local[c] = d.x[n];
            y_local[c] = d.y[n];
            z_local[c] = d.z[n];
        }

        const auto i = static_cast<std::size_t>(k);

        // New relative volume and volume change.
        const real_t volume = geom::calc_elem_volume(x_local, y_local, z_local);
        const real_t relative_volume = volume / d.volo[i];
        d.vnew[i] = relative_volume;
        d.delv[i] = relative_volume - d.v[i];

        d.arealg[i] =
            geom::calc_elem_characteristic_length(x_local, y_local, z_local,
                                                  volume);

        for (int c = 0; c < 8; ++c) {
            const auto n = static_cast<std::size_t>(nl[c]);
            xd_local[c] = d.xd[n];
            yd_local[c] = d.yd[n];
            zd_local[c] = d.zd[n];
        }

        // Evaluate the velocity gradient at the half step: move the corner
        // coordinates back by dt/2.
        for (int c = 0; c < 8; ++c) {
            x_local[c] -= dt2 * xd_local[c];
            y_local[c] -= dt2 * yd_local[c];
            z_local[c] -= dt2 * zd_local[c];
        }

        real_t det_j = real_t(0.0);
        geom::calc_elem_shape_function_derivatives(x_local, y_local, z_local,
                                                   B, &det_j);
        geom::calc_elem_velocity_gradient(xd_local, yd_local, zd_local, B,
                                          det_j, D);

        d.dxx[i] = D[0];
        d.dyy[i] = D[1];
        d.dzz[i] = D[2];
    }
}

bool calc_lagrange_deviatoric(domain& d, index_t lo, index_t hi) {
    bool ok = true;
    for (index_t k = lo; k < hi; ++k) {
        const auto i = static_cast<std::size_t>(k);
        const real_t vdov_k = d.dxx[i] + d.dyy[i] + d.dzz[i];
        const real_t vdov_third = vdov_k / real_t(3.0);

        d.vdov[i] = vdov_k;
        d.dxx[i] -= vdov_third;
        d.dyy[i] -= vdov_third;
        d.dzz[i] -= vdov_third;

        if (d.vnew[i] <= real_t(0.0)) ok = false;
    }
    return ok;
}

bool apply_material_vnewc(domain& d, index_t lo, index_t hi) {
    const real_t eosvmin = d.eosvmin;
    const real_t eosvmax = d.eosvmax;
    bool ok = true;
    for (index_t k = lo; k < hi; ++k) {
        const auto i = static_cast<std::size_t>(k);
        real_t vc_new = d.vnew[i];
        if (eosvmin != real_t(0.0) && vc_new < eosvmin) vc_new = eosvmin;
        if (eosvmax != real_t(0.0) && vc_new > eosvmax) vc_new = eosvmax;
        d.vnewc[i] = vc_new;

        // Sanity check on the *current* relative volume (reference abort).
        real_t vc = d.v[i];
        if (eosvmin != real_t(0.0) && vc < eosvmin) vc = eosvmin;
        if (eosvmax != real_t(0.0) && vc > eosvmax) vc = eosvmax;
        if (vc <= real_t(0.0)) ok = false;
    }
    return ok;
}

void update_volumes(domain& d, index_t lo, index_t hi) {
    hazard_touch(field::vnew, false, lo, hi);
    hazard_touch(field::v, true, lo, hi);
    const real_t v_cut = d.v_cut;
    for (index_t k = lo; k < hi; ++k) {
        const auto i = static_cast<std::size_t>(k);
        real_t tmp_v = d.vnew[i];
        if (std::fabs(tmp_v - real_t(1.0)) < v_cut) tmp_v = real_t(1.0);
        d.v[i] = tmp_v;
    }
}

}  // namespace lulesh::kernels
