// bench/dist_scaling.cpp
//
// Extension benchmark for the paper's future-work claim ("we anticipate
// additional benefits from using the asynchronous mechanisms of HPX instead
// of the mostly synchronous data exchange mechanisms of MPI"): the
// multi-domain slab decomposition run with
//   * futurized halo exchange (per-slab progress, channel futures), vs
//   * bulk-synchronous exchange (a global barrier per wave, MPI-style),
// across slab counts, plus the single-domain task graph as the no-
// decomposition reference.  Both decomposed modes produce bitwise identical
// physics to the single-domain run (verified by the test suite), so the
// comparison is pure synchronization structure.

#include <chrono>
#include <cstdlib>

#include "bench_common.hpp"
#include "dist/cluster.hpp"
#include "dist/driver_dist.hpp"

namespace {

std::chrono::milliseconds g_halo_timeout{0};

double run_dist(const lulesh::options& problem, lulesh::index_t slabs,
                lulesh::dist::dist_driver::exchange_mode mode,
                std::size_t threads, lulesh::partition_sizes parts,
                int iters) {
    lulesh::dist::cluster c(problem, slabs);
    amt::runtime rt(threads);
    lulesh::dist::dist_driver drv(rt, parts, mode, g_halo_timeout);
    return lulesh::dist::run_simulation(c, drv, iters).elapsed_seconds;
}

/// The bench_common timing policy for the dist runner: one untimed warm-up,
/// then `reps` samples sorted ascending (front = min, middle = median).
std::vector<double> run_dist_reps(const lulesh::options& problem,
                                  lulesh::index_t slabs,
                                  lulesh::dist::dist_driver::exchange_mode mode,
                                  std::size_t threads,
                                  lulesh::partition_sizes parts, int iters,
                                  int reps) {
    run_dist(problem, slabs, mode, threads, parts, iters);
    std::vector<double> s;
    s.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        s.push_back(run_dist(problem, slabs, mode, threads, parts, iters));
    }
    std::sort(s.begin(), s.end());
    return s;
}

}  // namespace

int main(int argc, char** argv) {
    // bench::parse_sweep rejects flags it does not know, so --halo-timeout
    // (and its env twin LULESH_HALO_TIMEOUT) is peeled off the argv first.
    std::vector<char*> args;
    args.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--halo-timeout" && i + 1 < argc) {
            g_halo_timeout = std::chrono::milliseconds(std::atol(argv[++i]));
            continue;
        }
        if (arg.rfind("--halo-timeout=", 0) == 0) {
            g_halo_timeout = std::chrono::milliseconds(
                std::atol(arg.c_str() + std::string("--halo-timeout=").size()));
            continue;
        }
        args.push_back(argv[i]);
    }
    if (g_halo_timeout.count() == 0) {
        if (const char* raw = std::getenv("LULESH_HALO_TIMEOUT");
            raw != nullptr && *raw != '\0') {
            g_halo_timeout = std::chrono::milliseconds(std::atol(raw));
        }
    }

    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    bench::sweep_options sweep = bench::parse_sweep(
        static_cast<int>(args.size()), args.data(),
        {.sizes = {12},
         .threads = {static_cast<int>(std::min(4u, hw * 2))},
         .regions = {11},
         .iters = 30,
         .reps = 1});
    const auto threads = static_cast<std::size_t>(sweep.threads.front());

    std::cout << "=== Extension: multi-domain decomposition — eager vs "
                 "futurized vs bulk-synchronous halo exchange ===\n"
              << "threads: " << threads << ", iterations: " << sweep.iters
              << ", halo timeout: " << g_halo_timeout.count() << " ms\n\n";
    std::cout << std::left << std::setw(6) << "size" << std::setw(7) << "slabs"
              << std::setw(14) << "eager(s)" << std::setw(14)
              << "futurized(s)" << std::setw(14) << "bulk-sync(s)"
              << std::setw(12) << "eager/bsp" << "\n";

    bench::artifact art("dist_scaling");
    art.set_config("sizes", bench::join_ints(sweep.sizes));
    art.set_config("threads", static_cast<long long>(threads));
    art.set_config("iters", sweep.iters);
    art.set_config("reps", sweep.reps);
    art.set_config("halo_timeout_ms",
                   static_cast<long long>(g_halo_timeout.count()));

    std::vector<std::string> csv;
    for (int size : sweep.sizes) {
        lulesh::options problem;
        problem.size = static_cast<lulesh::index_t>(size);
        problem.num_regions = 11;
        const auto parts = bench::tuned_parts(size);

        // Single-domain reference.
        const auto single_reps = bench::run_config_reps(
            problem, "taskgraph", threads, parts, sweep.iters, sweep.reps);
        const auto single = single_reps.median();
        art.add_seconds(
            bench::metric_key("single_seconds", {{"s", size}}), single_reps);
        std::cout << std::left << std::setw(6) << size << std::setw(7) << 1
                  << std::setw(16) << std::setprecision(4) << single.seconds
                  << std::setw(16) << "-" << std::setw(12) << "-"
                  << "  (single domain)\n";

        for (lulesh::index_t slabs : {2, 4}) {
            if (slabs > problem.size) continue;
            const auto egr_reps = run_dist_reps(
                problem, slabs, lulesh::dist::dist_driver::exchange_mode::eager,
                threads, parts, sweep.iters, sweep.reps);
            const auto fut_reps = run_dist_reps(
                problem, slabs,
                lulesh::dist::dist_driver::exchange_mode::futurized, threads,
                parts, sweep.iters, sweep.reps);
            const auto bsp_reps = run_dist_reps(
                problem, slabs,
                lulesh::dist::dist_driver::exchange_mode::bulk_synchronous,
                threads, parts, sweep.iters, sweep.reps);
            const double egr = egr_reps[egr_reps.size() / 2];
            const double fut = fut_reps[fut_reps.size() / 2];
            const double bsp = bsp_reps[bsp_reps.size() / 2];
            const auto sl = static_cast<int>(slabs);
            for (const double v : egr_reps) {
                art.add_sample(bench::metric_key("eager_seconds",
                                                 {{"s", size}, {"sl", sl}}),
                               v);
            }
            for (const double v : fut_reps) {
                art.add_sample(bench::metric_key("futurized_seconds",
                                                 {{"s", size}, {"sl", sl}}),
                               v);
            }
            for (const double v : bsp_reps) {
                art.add_sample(bench::metric_key("bsp_seconds",
                                                 {{"s", size}, {"sl", sl}}),
                               v);
            }
            std::cout << std::left << std::setw(6) << size << std::setw(7)
                      << slabs << std::setw(14) << std::setprecision(4) << egr
                      << std::setw(14) << fut << std::setw(14) << bsp
                      << std::setw(12) << egr / bsp << "\n";
            std::ostringstream row;
            row << "CSV,dist," << size << "," << slabs << "," << egr << ","
                << fut << "," << bsp;
            csv.push_back(row.str());
        }
        std::cout << "\n";
    }
    std::cout << "# size,slabs,eager_seconds,futurized_seconds,bsp_seconds\n";
    for (const auto& row : csv) std::cout << row << "\n";
    art.write_file();
    return 0;
}
