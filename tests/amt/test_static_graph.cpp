// Tests for amt::static_graph: topology introspection, execution ordering,
// replay re-arming, error/stop semantics, and external dependency gating.

#include "amt/static_graph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "amt/scheduler.hpp"

namespace {

TEST(StaticGraph, TopologyIntrospection) {
    amt::static_graph g;
    const auto a = g.add_node([] {}, "a", 0);
    const auto b = g.add_node([] {}, "b", 1);
    const auto c = g.add_node([] {}, "c", 2);
    const auto d = g.add_node([] {}, "d", 3);
    g.add_edge(a, b);
    g.add_edge(a, c);
    g.add_edge(b, d);
    g.add_edge(c, d);
    EXPECT_FALSE(g.sealed());
    g.seal();
    EXPECT_TRUE(g.sealed());
    EXPECT_EQ(g.node_count(), 4u);
    EXPECT_EQ(g.edge_count(), 4u);
    EXPECT_EQ(g.dependency_count(a), 0u);
    EXPECT_EQ(g.dependency_count(b), 1u);
    EXPECT_EQ(g.dependency_count(d), 2u);
    EXPECT_TRUE(g.has_edge(a, b));
    EXPECT_TRUE(g.has_edge(c, d));
    EXPECT_FALSE(g.has_edge(b, c));
    EXPECT_FALSE(g.has_edge(d, a));
    EXPECT_EQ(g.successors(a).size(), 2u);
    EXPECT_EQ(g.successors(d).size(), 0u);
    EXPECT_STREQ(g.node_label(b), "b");
    EXPECT_EQ(g.node_arg(c), 2);
}

TEST(StaticGraph, DiamondRespectsDependencyOrder) {
    amt::runtime rt(4);
    amt::static_graph g;
    std::atomic<int> tick{0};
    int ta = 0, tb = 0, tc = 0, td = 0;
    const auto a = g.add_node([&] { ta = ++tick; });
    const auto b = g.add_node([&] { tb = ++tick; });
    const auto c = g.add_node([&] { tc = ++tick; });
    const auto d = g.add_node([&] { td = ++tick; });
    g.add_edge(a, b);
    g.add_edge(a, c);
    g.add_edge(b, d);
    g.add_edge(c, d);
    g.seal();
    g.run(rt);
    EXPECT_LT(ta, tb);
    EXPECT_LT(ta, tc);
    EXPECT_LT(tb, td);
    EXPECT_LT(tc, td);
    EXPECT_EQ(td, 4);
}

TEST(StaticGraph, ReplayReExecutesEveryNodeEachGeneration) {
    amt::runtime rt(2);
    amt::static_graph g;
    std::atomic<int> runs{0};
    std::vector<amt::static_graph::node_id> ids;
    for (int i = 0; i < 16; ++i) {
        ids.push_back(g.add_node([&runs] { runs.fetch_add(1); }));
    }
    // A little structure so re-arming exercises non-root nodes too.
    for (int i = 1; i < 16; ++i) {
        g.add_edge(ids[static_cast<std::size_t>(i - 1)],
                   ids[static_cast<std::size_t>(i)]);
    }
    g.seal();
    constexpr int replays = 5;
    for (int r = 0; r < replays; ++r) g.run(rt);
    EXPECT_EQ(runs.load(), 16 * replays);
    EXPECT_EQ(g.generation(), static_cast<std::uint64_t>(replays));
    for (const auto id : ids) {
        EXPECT_EQ(g.executions(id), static_cast<std::uint64_t>(replays));
    }
}

TEST(StaticGraph, BodyExceptionPropagatesSkipsSuccessorsAndRearmsClean) {
    amt::runtime rt(2);
    amt::static_graph g;
    std::atomic<int> gen{0};
    std::atomic<int> tail_runs{0};
    const auto head = g.add_node([&gen] { gen.fetch_add(1); });
    const auto mid = g.add_node([&gen] {
        if (gen.load() == 2) throw std::runtime_error("boom");
    });
    const auto tail = g.add_node([&tail_runs] { tail_runs.fetch_add(1); });
    g.add_edge(head, mid);
    g.add_edge(mid, tail);
    g.seal();

    g.run(rt);  // generation 1: clean
    EXPECT_EQ(tail_runs.load(), 1);
    EXPECT_THROW(g.run(rt), std::runtime_error);  // generation 2: mid throws
    // The graph drained fully (wait returned) but tail's body was skipped.
    EXPECT_EQ(tail_runs.load(), 1);
    EXPECT_TRUE(g.stop_requested());

    // Re-arm starts from fresh stop state: generation 3 runs everything.
    g.run(rt);
    EXPECT_FALSE(g.stop_requested());
    EXPECT_EQ(tail_runs.load(), 2);
    EXPECT_EQ(g.generation(), 3u);
    EXPECT_EQ(g.executions(head), 3u);
    EXPECT_EQ(g.executions(mid), 2u);   // the throwing run doesn't count
    EXPECT_EQ(g.executions(tail), 2u);  // the skipped run doesn't count
}

TEST(StaticGraph, RequestStopSkipsBodiesButCompletesTheReplay) {
    amt::runtime rt(1);
    amt::static_graph g;
    std::atomic<int> after{0};
    bool stopped_once = false;
    const auto a = g.add_node([&g, &stopped_once] {
        if (!stopped_once) {
            stopped_once = true;
            g.request_stop();
        }
    });
    const auto b = g.add_node([&after] { after.fetch_add(1); });
    g.add_edge(a, b);
    g.seal();
    g.run(rt);  // completes without throwing; b's body skipped
    EXPECT_EQ(after.load(), 0);
    g.run(rt);  // fresh stop state
    EXPECT_EQ(after.load(), 1);
}

TEST(StaticGraph, ExternalDependencyGatesARootPerReplay) {
    amt::runtime rt(2);
    amt::static_graph g;
    std::atomic<int> ran{0};
    const auto root = g.add_node([&ran] { ran.fetch_add(1); });
    g.seal();

    g.set_external_deps(root, 1);
    g.arm(rt);
    g.start();
    // Without the external satisfy the node can never run.
    EXPECT_EQ(ran.load(), 0);
    g.satisfy_external(root);
    g.wait();
    EXPECT_EQ(ran.load(), 1);

    // Gating is consumed per-arm: the next replay runs ungated.
    g.run(rt);
    EXPECT_EQ(ran.load(), 2);
}

TEST(StaticGraph, ExternalDependencyGatesAnInnerBarrierNode) {
    amt::runtime rt(2);
    amt::static_graph g;
    std::atomic<int> order{0};
    int t_pre = 0, t_gate = 0;
    const auto pre = g.add_node([&] { t_pre = ++order; });
    const auto gate = g.add_node([&] { t_gate = ++order; });
    g.add_edge(pre, gate);
    g.seal();
    g.set_external_deps(gate, 2);
    g.arm(rt);
    g.start();
    g.satisfy_external(gate);
    EXPECT_EQ(t_gate, 0);  // one of two externals still outstanding
    g.satisfy_external(gate);
    g.wait();
    EXPECT_GT(t_pre, 0);
    EXPECT_GT(t_gate, t_pre);
}

TEST(StaticGraph, EmptyGraphRunsTrivially) {
    amt::runtime rt(1);
    amt::static_graph g;
    g.seal();
    g.run(rt);
    g.run(rt);
    EXPECT_EQ(g.generation(), 2u);
}

TEST(StaticGraph, WaitFromWorkerThreadCooperates) {
    amt::runtime rt(1);
    amt::static_graph g;
    std::atomic<int> runs{0};
    for (int i = 0; i < 8; ++i) g.add_node([&runs] { runs.fetch_add(1); });
    g.seal();
    // run() called from inside a worker task: wait() must help execute
    // instead of deadlocking the only worker.
    std::atomic<bool> done{false};
    rt.post_fn([&] {
        g.run(rt);
        done.store(true);
    });
    while (!done.load()) rt.try_run_one();
    EXPECT_EQ(runs.load(), 8);
}

}  // namespace
