// lulesh/driver.hpp
//
// A driver advances the Lagrange leapfrog by one iteration.  All drivers
// execute the same kernels (see kernels.hpp) and therefore produce bitwise
// identical fields; they differ only in how the per-iteration work is
// decomposed and synchronized:
//
//   serial_driver        — every kernel over its full range, in order.
//   parallel_for_driver  — ompsim team, one statically-scheduled parallel
//                          loop + barrier per reference loop (the OpenMP
//                          reference baseline).
//   foreach_driver       — (src/core) amt runtime, hpx::for_each-style
//                          parallel loops with a barrier per loop; the naive
//                          HPX port the paper's related work shows to be
//                          slower than OpenMP.
//   taskgraph_driver     — (src/core) the paper's contribution: a
//                          pre-created task graph per iteration with
//                          continuation chains and few barriers.

#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "lulesh/domain.hpp"
#include "lulesh/options.hpp"
#include "lulesh/types.hpp"

namespace lulesh {

class dirty_tracker;   // lulesh/checkpoint_chain.hpp
class state_capture;   // lulesh/checkpoint_chain.hpp

/// Thrown when the simulation hits one of the reference's abort conditions.
class simulation_error : public std::runtime_error {
public:
    simulation_error(status code, const std::string& what)
        : std::runtime_error(what), code_(code) {}

    [[nodiscard]] status code() const noexcept { return code_; }

private:
    status code_;
};

class driver {
public:
    driver() = default;
    driver(const driver&) = delete;
    driver& operator=(const driver&) = delete;
    virtual ~driver() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// One LagrangeLeapFrog iteration at the domain's current deltatime:
    /// LagrangeNodal, LagrangeElements, CalcTimeConstraintsForElems.
    /// Throws simulation_error on a volume or qstop violation.
    virtual void advance(domain& d) = 0;

    /// Reports the (field × index-range) write-sets of one advance() to the
    /// incremental-checkpoint dirty tracker.  The default conservatively
    /// marks every checkpointed field over its full extent; the task-graph
    /// driver reports its declared per-task write-sets instead.
    virtual void record_dirty(dirty_tracker& t, const domain& d) const;

    /// Offers the driver a checkpoint capture to pack as tasks overlapped
    /// with its next advance().  Returns false (the default) when the
    /// driver does not overlap; the resilient loop then packs
    /// synchronously.  A driver that accepts must guarantee every region is
    /// packed from the pre-advance state (the task-graph driver joins packs
    /// into the barrier before the first wave that writes each field).
    virtual bool submit_overlapped_capture(std::shared_ptr<state_capture> cap);
};

/// Reference-ordered single-threaded driver; the ground truth for tests.
class serial_driver final : public driver {
public:
    [[nodiscard]] std::string name() const override { return "serial"; }
    void advance(domain& d) override;

private:
    // Persistent scratch mirroring the reference's per-call allocations.
    std::vector<real_t> sigxx_, sigyy_, sigzz_;
    std::vector<real_t> dvdx_, dvdy_, dvdz_, x8n_, y8n_, z8n_;
    std::vector<real_t> determ_;
};

/// Runs `drv` on `d` until stoptime or `max_cycles`, whichever comes first.
/// The iteration loop matches the reference main(): TimeIncrement, then
/// LagrangeLeapFrog.
run_result run_simulation(domain& d, driver& drv,
                          int max_cycles = std::numeric_limits<int>::max());

}  // namespace lulesh
