// Unit tests for individual LULESH kernels: node-wise updates, EOS phases,
// time constraints, and the time-increment controller.

#include <gtest/gtest.h>

#include <cmath>

#include "lulesh/domain.hpp"
#include "lulesh/driver.hpp"
#include "lulesh/kernels.hpp"

namespace {

using lulesh::domain;
using lulesh::index_t;
using lulesh::options;
using lulesh::real_t;
namespace k = lulesh::kernels;

options small_opts(index_t size = 4, index_t regions = 2) {
    options o;
    o.size = size;
    o.num_regions = regions;
    return o;
}

// ---------------- node kernels ----------------

TEST(NodeKernels, AccelerationIsForceOverMass) {
    domain d(small_opts());
    d.fx[5] = 10.0;
    d.fy[5] = -4.0;
    d.fz[5] = 2.0;
    k::calc_acceleration(d, 0, d.numNode());
    EXPECT_DOUBLE_EQ(d.xdd[5], 10.0 / d.nodalMass[5]);
    EXPECT_DOUBLE_EQ(d.ydd[5], -4.0 / d.nodalMass[5]);
    EXPECT_DOUBLE_EQ(d.zdd[5], 2.0 / d.nodalMass[5]);
}

TEST(NodeKernels, MaskedBcMatchesListBc) {
    domain a(small_opts());
    domain b(small_opts());
    for (index_t n = 0; n < a.numNode(); ++n) {
        const auto i = static_cast<std::size_t>(n);
        a.xdd[i] = b.xdd[i] = 1.0 + n;
        a.ydd[i] = b.ydd[i] = 2.0 + n;
        a.zdd[i] = b.zdd[i] = 3.0 + n;
    }
    k::apply_acceleration_bc_masked(a, 0, a.numNode());
    k::apply_acceleration_bc_x(b, 0, static_cast<index_t>(b.symmX.size()));
    k::apply_acceleration_bc_y(b, 0, static_cast<index_t>(b.symmY.size()));
    k::apply_acceleration_bc_z(b, 0, static_cast<index_t>(b.symmZ.size()));
    for (index_t n = 0; n < a.numNode(); ++n) {
        const auto i = static_cast<std::size_t>(n);
        EXPECT_EQ(a.xdd[i], b.xdd[i]) << "node " << n;
        EXPECT_EQ(a.ydd[i], b.ydd[i]) << "node " << n;
        EXPECT_EQ(a.zdd[i], b.zdd[i]) << "node " << n;
    }
}

TEST(NodeKernels, VelocityIntegratesAcceleration) {
    domain d(small_opts());
    d.xd[3] = 1.0;
    d.xdd[3] = 2.0;
    k::calc_velocity(d, 0, d.numNode(), 0.5);
    EXPECT_DOUBLE_EQ(d.xd[3], 2.0);
}

TEST(NodeKernels, VelocityCutSnapsSmallValuesToZero) {
    domain d(small_opts());
    d.xdd[3] = 1e-9;  // u_cut is 1e-7
    k::calc_velocity(d, 0, d.numNode(), 1.0);
    EXPECT_EQ(d.xd[3], 0.0);
}

TEST(NodeKernels, PositionIntegratesVelocity) {
    domain d(small_opts());
    const real_t x0 = d.x[7];
    d.xd[7] = 3.0;
    k::calc_position(d, 0, d.numNode(), 0.25);
    EXPECT_DOUBLE_EQ(d.x[7], x0 + 0.75);
}

TEST(NodeKernels, FusedVelocityPositionMatchesSeparate) {
    domain a(small_opts());
    domain b(small_opts());
    for (index_t n = 0; n < a.numNode(); ++n) {
        const auto i = static_cast<std::size_t>(n);
        a.xdd[i] = b.xdd[i] = 0.01 * n;
        a.ydd[i] = b.ydd[i] = -0.02 * n;
    }
    k::velocity_position_chunk(a, 0, a.numNode(), 0.1);
    k::calc_velocity(b, 0, b.numNode(), 0.1);
    k::calc_position(b, 0, b.numNode(), 0.1);
    for (std::size_t i = 0; i < a.x.size(); ++i) {
        EXPECT_EQ(a.x[i], b.x[i]);
        EXPECT_EQ(a.xd[i], b.xd[i]);
    }
}

TEST(ForceKernels, FusedChunksMatchLoopGranular) {
    // Run one force phase both ways on identical pre-evolved domains and
    // compare corner forces bitwise.
    options o = small_opts(6, 3);
    domain a(o);
    domain b(o);
    // Evolve a few steps serially to get a nontrivial state.
    lulesh::serial_driver drv;
    auto evolve = [&drv](domain& d) {
        for (int i = 0; i < 3; ++i) {
            k::time_increment(d);
            drv.advance(d);
        }
    };
    evolve(a);
    evolve(b);

    // a: fused chunk path; b: loop-granular path.
    const index_t ne = a.numElem();
    for (index_t lo = 0; lo < ne; lo += 7) {
        const index_t hi = std::min<index_t>(lo + 7, ne);
        ASSERT_TRUE(k::force_stress_chunk(a, lo, hi));
        ASSERT_TRUE(k::force_hourglass_chunk(a, lo, hi));
    }
    {
        const auto nes = static_cast<std::size_t>(ne);
        std::vector<real_t> sigxx(nes), sigyy(nes), sigzz(nes);
        std::vector<real_t> dvdx(nes * 8), dvdy(nes * 8), dvdz(nes * 8);
        std::vector<real_t> x8n(nes * 8), y8n(nes * 8), z8n(nes * 8);
        std::vector<real_t> determ(nes);
        k::init_stress_terms(b, 0, ne, sigxx.data(), sigyy.data(), sigzz.data());
        ASSERT_TRUE(k::integrate_stress(b, 0, ne, sigxx.data(), sigyy.data(),
                                        sigzz.data()));
        ASSERT_TRUE(k::calc_hourglass_control(b, 0, ne, dvdx.data(),
                                              dvdy.data(), dvdz.data(),
                                              x8n.data(), y8n.data(),
                                              z8n.data(), determ.data()));
        k::calc_fb_hourglass_force(b, 0, ne, dvdx.data(), dvdy.data(),
                                   dvdz.data(), x8n.data(), y8n.data(),
                                   z8n.data(), determ.data(), b.hgcoef);
    }
    for (std::size_t i = 0; i < a.fx_elem.size(); ++i) {
        ASSERT_EQ(a.fx_elem[i], b.fx_elem[i]) << "stress corner " << i;
        ASSERT_EQ(a.fx_elem_hg[i], b.fx_elem_hg[i]) << "hg corner " << i;
    }
}

TEST(ForceKernels, GatherSumsStressAndHourglass) {
    domain d(small_opts(2, 1));
    // Give node 0's single corner (elem 0, corner 0) known forces.
    d.fx_elem[0] = 1.5;
    d.fx_elem_hg[0] = 0.25;
    k::gather_forces(d, 0, 1);
    EXPECT_DOUBLE_EQ(d.fx[0], 1.75);
}

// ---------------- EOS phases ----------------

TEST(Eos, PressureIsTwoThirdsCompressedEnergy) {
    domain d(small_opts(2, 1));
    const index_t list[1] = {0};
    d.vnewc[0] = 1.0;
    real_t compression[1] = {0.5};
    real_t bvc[1], pbvc[1], p_out[1];
    real_t e[1] = {3.0};
    k::pressure_bvc(0, 1, compression, bvc, pbvc);
    EXPECT_DOUBLE_EQ(bvc[0], (2.0 / 3.0) * 1.5);
    EXPECT_DOUBLE_EQ(pbvc[0], 2.0 / 3.0);
    k::pressure_p(d, list, 0, 1, p_out, bvc, e);
    EXPECT_DOUBLE_EQ(p_out[0], 3.0);
}

TEST(Eos, PressureCutSnapsToZero) {
    domain d(small_opts(2, 1));
    const index_t list[1] = {0};
    d.vnewc[0] = 1.0;
    real_t bvc[1] = {2.0 / 3.0};
    real_t e[1] = {1e-8};  // below p_cut
    real_t p_out[1];
    k::pressure_p(d, list, 0, 1, p_out, bvc, e);
    EXPECT_EQ(p_out[0], 0.0);
}

TEST(Eos, PressureClampedToPmin) {
    domain d(small_opts(2, 1));
    const index_t list[1] = {0};
    d.vnewc[0] = 1.0;
    real_t bvc[1] = {2.0 / 3.0};
    real_t e[1] = {-5.0};
    real_t p_out[1];
    k::pressure_p(d, list, 0, 1, p_out, bvc, e);
    EXPECT_EQ(p_out[0], d.pmin);
}

TEST(Eos, EnergyStep1ClampsToEmin) {
    domain d(small_opts(2, 1));
    k::eos_scratch s;
    s.resize(1);
    s.e_old[0] = -1e20;
    s.delvc[0] = 0.0;
    s.p_old[0] = 0.0;
    s.q_old[0] = 0.0;
    s.work[0] = 0.0;
    k::energy_step1(d, 0, 1, s);
    EXPECT_EQ(s.e_new[0], d.emin);
}

TEST(Eos, ExpansionZeroesViscosity) {
    domain d(small_opts(2, 1));
    k::eos_scratch s;
    s.resize(1);
    s.delvc[0] = 0.5;  // expanding: q_new must be zero
    s.comp_half_step[0] = 0.0;
    s.e_new[0] = 1.0;
    s.pbvc[0] = 2.0 / 3.0;
    s.bvc[0] = 2.0 / 3.0;
    s.p_half_step[0] = 1.0;
    s.p_old[0] = 0.0;
    s.q_old[0] = 0.0;
    s.ql_old[0] = 5.0;
    s.qq_old[0] = 7.0;
    k::energy_q_half(d, 0, 1, s);
    EXPECT_EQ(s.q_new[0], 0.0);
}

TEST(Eos, CompressionViscosityUsesSoundSpeed) {
    domain d(small_opts(2, 1));
    k::eos_scratch s;
    s.resize(1);
    s.delvc[0] = -0.1;  // compressing
    s.comp_half_step[0] = 0.0;
    s.e_new[0] = 0.0;
    s.pbvc[0] = 0.0;
    s.bvc[0] = 1.0;
    s.p_half_step[0] = 1.0;  // ssc = sqrt(1 * 1 / 1) = 1
    s.p_old[0] = 0.0;
    s.q_old[0] = 0.0;
    s.ql_old[0] = 5.0;
    s.qq_old[0] = 7.0;
    k::energy_q_half(d, 0, 1, s);
    EXPECT_DOUBLE_EQ(s.q_new[0], 12.0);  // ssc * ql + qq
}

TEST(Eos, GatherPhasesReadRegionElements) {
    domain d(small_opts(3, 1));
    d.e[5] = 42.0;
    d.delv[5] = -0.25;
    d.p[5] = 3.0;
    d.q[5] = 1.0;
    d.qq[5] = 0.5;
    d.ql[5] = 0.25;
    const index_t list[2] = {5, 0};
    k::eos_scratch s;
    s.resize(2);
    k::eos_gather_e(d, list, 0, 2, s);
    k::eos_gather_delv(d, list, 0, 2, s);
    k::eos_gather_p(d, list, 0, 2, s);
    k::eos_gather_q(d, list, 0, 2, s);
    k::eos_gather_qq_ql(d, list, 0, 2, s);
    EXPECT_EQ(s.e_old[0], 42.0);
    EXPECT_EQ(s.delvc[0], -0.25);
    EXPECT_EQ(s.p_old[0], 3.0);
    EXPECT_EQ(s.q_old[0], 1.0);
    EXPECT_EQ(s.qq_old[0], 0.5);
    EXPECT_EQ(s.ql_old[0], 0.25);
    EXPECT_EQ(s.e_old[1], d.e[0]);
}

TEST(Eos, CompressionFormula) {
    domain d(small_opts(2, 1));
    d.vnewc[0] = 0.8;
    const index_t list[1] = {0};
    k::eos_scratch s;
    s.resize(1);
    s.delvc[0] = -0.2;
    k::eos_compression(d, list, 0, 1, s);
    EXPECT_NEAR(s.compression[0], 1.0 / 0.8 - 1.0, 1e-15);
    EXPECT_NEAR(s.comp_half_step[0], 1.0 / 0.9 - 1.0, 1e-15);
}

TEST(Eos, EvalChunkRepeatsAreIdempotentOnStore) {
    // rep > 1 repeats the *computation* but gathers from the same committed
    // state each time, so the stored result equals the rep = 1 result.
    options o = small_opts(4, 1);
    domain a(o);
    domain b(o);
    lulesh::serial_driver drv;
    for (int i = 0; i < 2; ++i) {
        k::time_increment(a);
        drv.advance(a);
        k::time_increment(b);
        drv.advance(b);
    }
    const auto& list = a.regElemList(0);
    const auto count = static_cast<index_t>(list.size());
    k::eos_scratch s;
    s.resize(static_cast<std::size_t>(count));
    k::eval_eos_chunk(a, list.data(), 0, count, 1, s);
    k::eval_eos_chunk(b, b.regElemList(0).data(), 0, count, 20, s);
    for (std::size_t i = 0; i < a.e.size(); ++i) {
        ASSERT_EQ(a.e[i], b.e[i]) << "elem " << i;
        ASSERT_EQ(a.p[i], b.p[i]);
        ASSERT_EQ(a.q[i], b.q[i]);
        ASSERT_EQ(a.ss[i], b.ss[i]);
    }
}

TEST(Eos, MaterialClampProducesVnewcInRange) {
    domain d(small_opts(3, 1));
    d.vnew[0] = 1e12;   // above eosvmax
    d.vnew[1] = 1e-12;  // below eosvmin
    d.vnew[2] = 0.9;
    EXPECT_TRUE(k::apply_material_vnewc(d, 0, d.numElem()));
    EXPECT_EQ(d.vnewc[0], d.eosvmax);
    EXPECT_EQ(d.vnewc[1], d.eosvmin);
    EXPECT_EQ(d.vnewc[2], 0.9);
}

TEST(Eos, MaterialClampFlagsNonPositiveVolume) {
    domain d(small_opts(3, 1));
    d.v[4] = -0.5;
    d.eosvmin = 0.0;  // disable the clamp so the error path triggers
    EXPECT_FALSE(k::apply_material_vnewc(d, 0, d.numElem()));
}

TEST(VolumeUpdate, SnapsNearUnityToOne) {
    domain d(small_opts(2, 1));
    d.vnew[0] = 1.0 + 1e-12;  // inside v_cut
    d.vnew[1] = 1.1;
    k::update_volumes(d, 0, d.numElem());
    EXPECT_EQ(d.v[0], 1.0);
    EXPECT_EQ(d.v[1], 1.1);
}

// ---------------- time constraints ----------------

TEST(Constraints, QuiescentElementsImposeNoConstraint) {
    domain d(small_opts(3, 1));
    const auto& list = d.regElemList(0);
    const auto c = k::calc_time_constraints(d, list.data(), 0,
                                            static_cast<index_t>(list.size()));
    EXPECT_EQ(c.dtcourant, 1.0e20);
    EXPECT_EQ(c.dthydro, 1.0e20);
}

TEST(Constraints, CourantUsesSoundSpeedAndLength) {
    domain d(small_opts(2, 1));
    d.vdov[0] = 1.0;  // deforming, positive: no qqc2 term
    d.ss[0] = 2.0;
    d.arealg[0] = 0.5;
    const index_t list[1] = {0};
    const auto c = k::calc_time_constraints(d, list, 0, 1);
    EXPECT_DOUBLE_EQ(c.dtcourant, 0.5 / 2.0);
}

TEST(Constraints, CompressionAddsViscosityTerm) {
    domain d(small_opts(2, 1));
    d.vdov[0] = -1.0;
    d.ss[0] = 2.0;
    d.arealg[0] = 0.5;
    const index_t list[1] = {0};
    const auto c = k::calc_time_constraints(d, list, 0, 1);
    const real_t qqc2 = 64.0 * d.qqc * d.qqc;
    const real_t expected = 0.5 / std::sqrt(4.0 + qqc2 * 0.25 * 1.0);
    EXPECT_DOUBLE_EQ(c.dtcourant, expected);
}

TEST(Constraints, HydroBoundsVolumeChangeRate) {
    domain d(small_opts(2, 1));
    d.vdov[0] = 0.5;
    const index_t list[1] = {0};
    const auto c = k::calc_time_constraints(d, list, 0, 1);
    EXPECT_NEAR(c.dthydro, d.dvovmax / 0.5, 1e-12);
}

TEST(Constraints, MinCombinesComponentWise) {
    k::dt_constraints a{1.0, 5.0};
    k::dt_constraints b{2.0, 3.0};
    const auto c = k::min_constraints(a, b);
    EXPECT_EQ(c.dtcourant, 1.0);
    EXPECT_EQ(c.dthydro, 3.0);
}

// ---------------- time increment ----------------

TEST(TimeIncrement, FirstCycleUsesInitialDeltatime) {
    domain d(small_opts());
    const real_t dt0 = d.deltatime;
    k::time_increment(d);
    EXPECT_EQ(d.deltatime, dt0);
    EXPECT_EQ(d.cycle, 1);
    EXPECT_DOUBLE_EQ(d.time_, dt0);
}

TEST(TimeIncrement, CourantHalvedHydroTwoThirds) {
    domain d(small_opts());
    d.cycle = 1;
    d.deltatime = 1e-8;
    d.dtcourant = 1e-6;
    d.dthydro = 1e20;
    // Unconstrained growth would be 5e-7; the ratio clamp caps at 1.2x.
    k::time_increment(d);
    EXPECT_NEAR(d.deltatime, 1.2e-8, 1e-20);

    domain e(small_opts());
    e.cycle = 1;
    e.deltatime = 4e-7;
    e.dtcourant = 1e20;
    e.dthydro = 6e-7;  // hydro * 2/3 = 4e-7: ratio 1.0, below multlb → keep
    k::time_increment(e);
    EXPECT_NEAR(e.deltatime, 4e-7, 1e-20);
}

TEST(TimeIncrement, ShrinksImmediatelyWhenConstraintDrops) {
    domain d(small_opts());
    d.cycle = 1;
    d.deltatime = 1e-6;
    d.dtcourant = 1e-7;  // newdt = 5e-8, ratio < 1: taken as-is
    d.dthydro = 1e20;
    k::time_increment(d);
    EXPECT_NEAR(d.deltatime, 5e-8, 1e-20);
}

TEST(TimeIncrement, GrowthLimitedToUpperBound) {
    domain d(small_opts());
    d.cycle = 1;
    d.deltatime = 1e-8;
    d.dtcourant = 1.0;  // would allow 0.5
    d.dthydro = 1e20;
    k::time_increment(d);
    EXPECT_NEAR(d.deltatime, 1.2e-8, 1e-22);  // olddt * deltatimemultub
}

TEST(TimeIncrement, SmallGrowthSnapsToOldDt) {
    domain d(small_opts());
    d.cycle = 1;
    d.deltatime = 1e-8;
    d.dtcourant = 2.1e-8;  // newdt = 1.05e-8, ratio 1.05 < multlb 1.1 → olddt
    d.dthydro = 1e20;
    k::time_increment(d);
    EXPECT_NEAR(d.deltatime, 1e-8, 1e-22);
}

TEST(TimeIncrement, CappedAtDtmax) {
    domain d(small_opts());
    d.cycle = 1;
    d.deltatime = 0.9e-2;
    d.deltatimemultub = 10.0;
    d.dtcourant = 1.0;
    d.dthydro = 1e20;
    d.stoptime = 1e3;  // keep targetdt out of the way
    k::time_increment(d);
    EXPECT_DOUBLE_EQ(d.deltatime, d.dtmax);
}

TEST(TimeIncrement, LastStepHitsStoptimeExactly) {
    domain d(small_opts());
    d.cycle = 1;
    d.time_ = 0.0099999;
    d.deltatime = 1e-5;
    d.dtcourant = 1e20;
    d.dthydro = 1e20;
    k::time_increment(d);
    EXPECT_DOUBLE_EQ(d.time_, d.stoptime);
}

TEST(TimeIncrement, FixedDtOverridesConstraints) {
    domain d(small_opts());
    d.dtfixed = 1e-7;
    d.cycle = 1;
    d.deltatime = 1e-8;
    d.dtcourant = 1e-20;
    k::time_increment(d);
    EXPECT_DOUBLE_EQ(d.deltatime, 1e-7);
}

TEST(TimeIncrement, TimeAdvancesMonotonicallyUntilStoptime) {
    domain d(small_opts());
    real_t last = 0.0;
    int cycles = 0;
    while (d.time_ < d.stoptime && cycles < 10000) {
        k::time_increment(d);
        EXPECT_GT(d.time_, last);
        last = d.time_;
        ++cycles;
    }
    EXPECT_DOUBLE_EQ(d.time_, d.stoptime);
    EXPECT_EQ(d.cycle, cycles);
}

}  // namespace
