// lulesh/resilient_run.hpp
//
// Checkpoint-based recovery wrapper around the plain iteration loop: works
// with any driver (serial, parallel_for, foreach, taskgraph).  The loop
// snapshots the simulation state every K cycles (in memory, optionally
// mirrored to an atomically-written file) and, when an iteration fails with
// an injected fault or a simulation_error, rolls the domain back to the
// last snapshot and retries:
//
//   * The first retry after an *injected* (transient) fault replays at the
//     unchanged dt.  Every driver is deterministic and checkpoints are
//     bitwise, so the recovered trajectory — and the final state — is
//     bitwise identical to a fault-free run (tests verify this).
//   * A repeat failure of the same incident, or any deterministic physics
//     failure (volume/qstop), halves dt before replaying; the reference's
//     dt-growth bound (deltatimemultub) restores the step size over the
//     following cycles once the run is healthy again.
//   * Retries are bounded per incident; exhausting them ends the run with
//     the mapped failure status instead of looping forever.
//
// An incident is one failing cycle: it ends when the run advances past it,
// at which point the retry budget re-arms for future faults.

#pragma once

#include <functional>
#include <limits>
#include <string>

#include "lulesh/driver.hpp"

namespace lulesh {

struct resilience_options {
    /// Snapshot the state every K successful cycles (K <= 0 keeps only the
    /// entry snapshot — still enough to recover, just a longer replay).
    int checkpoint_every = 10;

    /// Retry budget per incident (failing cycle); each retry rolls back to
    /// the last snapshot.
    int max_retries = 3;

    /// When non-empty, every snapshot is also written to this file with
    /// save_checkpoint_file's atomic temp+rename protocol, so a crash
    /// leaves either the previous or the new checkpoint, never a torn one.
    std::string checkpoint_path;

    /// Test seam: invoked on each in-memory snapshot right after it is
    /// taken, with the serialized bytes.  Corruption tests flip a byte here
    /// to prove that rollback detects the bad checksum and falls back to
    /// the previous snapshot instead of silently restoring corrupt state.
    std::function<void(std::string&)> snapshot_hook;
};

struct resilient_result {
    run_result result;

    int rollbacks = 0;            ///< rollback-and-retry attempts performed
    int checkpoints = 0;          ///< snapshots taken after the entry one
    int dt_halvings = 0;          ///< retries that reduced dt before replay
    int snapshot_fallbacks = 0;   ///< rollbacks that found the latest snapshot
                                  ///< corrupt and restored the previous one
};

/// Runs `drv` on `d` to stoptime / `max_cycles` with rollback recovery as
/// described above.  Exceptions other than injected faults and
/// simulation_error are not retryable and propagate to the caller.
///
/// The loop keeps the latest *and* the previous in-memory snapshot.  Every
/// checkpoint carries a CRC-32 over its payload, so a snapshot corrupted
/// after capture (bit rot, a bad copy) is detected when rollback tries to
/// restore it; the loop then falls back to the previous snapshot (counted
/// in snapshot_fallbacks) and replays from there.  Only if *both* are
/// corrupt does the checkpoint_error propagate.
resilient_result run_resilient(domain& d, driver& drv,
                               const resilience_options& opt,
                               int max_cycles = std::numeric_limits<int>::max());

}  // namespace lulesh
