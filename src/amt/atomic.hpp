// amt/atomic.hpp
//
// The runtime's atomics shim: every lock-free primitive in this tree uses
// `amt::atomic<T>` / `amt::atomic_flag` / `amt::atomic_thread_fence` (and
// `amt::mutex` / `amt::condition_variable` for the blocking primitives the
// model also schedules) instead of touching <atomic> directly.  amtlint
// rule AMT006 enforces the discipline tree-wide, so every piece of
// lock-free code — present and future — is model-checkable by
// construction.
//
// Two personalities, selected at configure time:
//
//   * Normal builds (AMT_MODEL_CHECK unset/0): pure aliases.
//     `amt::atomic<T>` IS `std::atomic<T>`, `amt::mutex` IS `std::mutex`,
//     and `amt::atomic_thread_fence` is an always-inlined forwarder.
//     Codegen is bit-for-bit what writing std:: directly produces; the
//     replay perf gate (bench/micro_runtime --replay-gate) runs against
//     this configuration.
//
//   * Model-check builds (preset "model", -DLULESH_MODEL_CHECK=ON):
//     `amt::atomic<T>` wraps the real std::atomic and routes every
//     load/store/RMW/CAS — with its declared memory_order — through the
//     amt::model schedule controller (amt/model.hpp) whenever the calling
//     thread is a registered model thread inside model::check().  Outside
//     a model execution the wrapper falls through to the real atomic, so
//     the whole tree still runs normally in this configuration.
//
// The model-build wrapper deliberately has NO defaulted memory_order
// parameters: building the "model" preset is how unannotated
// (implicitly seq_cst) call sites are surfaced for the ordering audit.
// Keep every call site explicitly annotated.
//
// T must be trivially copyable and at most 8 bytes (integers, enums,
// bools, raw pointers): the model's store-buffer history holds values as
// raw 64-bit images.  That covers every atomic in this runtime.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

#ifndef AMT_MODEL_CHECK
#define AMT_MODEL_CHECK 0
#endif

namespace amt {

/// Memory orders are always the std:: enumerators — the shim forwards the
/// declared order to the model controller, which interprets it.
using memory_order = std::memory_order;
inline constexpr memory_order memory_order_relaxed = std::memory_order_relaxed;
inline constexpr memory_order memory_order_consume = std::memory_order_consume;
inline constexpr memory_order memory_order_acquire = std::memory_order_acquire;
inline constexpr memory_order memory_order_release = std::memory_order_release;
inline constexpr memory_order memory_order_acq_rel = std::memory_order_acq_rel;
inline constexpr memory_order memory_order_seq_cst = std::memory_order_seq_cst;

#if !AMT_MODEL_CHECK

// ======================= normal build: aliases =======================

template <class T>
using atomic = std::atomic<T>;

using atomic_flag = std::atomic_flag;
using mutex = std::mutex;
using condition_variable = std::condition_variable;

inline void atomic_thread_fence(memory_order mo) noexcept {
    std::atomic_thread_fence(mo);
}

#else  // AMT_MODEL_CHECK

// ================== model build: controller-routed ==================

namespace model::detail {

/// True when the calling thread is a registered model thread inside an
/// active model::check() execution; only then do the wrappers route.
[[nodiscard]] bool in_execution() noexcept;

/// Hooks implemented by the schedule controller (amt/model.cpp).  `addr`
/// identifies the variable; `init` is the committed value the variable
/// held when the controller first saw it (used to seed the store history).
[[nodiscard]] std::uint64_t on_load(const void* addr, std::uint64_t init,
                                    memory_order mo);
void on_store(const void* addr, std::uint64_t init, std::uint64_t bits,
              memory_order mo);
using rmw_fn = std::uint64_t (*)(std::uint64_t, std::uint64_t);
[[nodiscard]] std::uint64_t on_rmw(const void* addr, std::uint64_t init,
                                   rmw_fn f, std::uint64_t operand,
                                   memory_order mo);
[[nodiscard]] bool on_cas(const void* addr, std::uint64_t init,
                          std::uint64_t& expected, std::uint64_t desired,
                          memory_order success, memory_order failure);
void on_fence(memory_order mo);
void on_mutex_lock(const void* m);
[[nodiscard]] bool on_mutex_try_lock(const void* m);
void on_mutex_unlock(const void* m);
void on_cv_wait(const void* cv, const void* m);
void on_cv_notify(const void* cv, bool all);

template <class T>
[[nodiscard]] constexpr std::uint64_t to_bits(T v) noexcept {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                  "amt::atomic<T>: T must be trivially copyable and fit in "
                  "the model's 64-bit value images");
    std::uint64_t bits = 0;
    __builtin_memcpy(&bits, &v, sizeof(T));
    return bits;
}

template <class T>
[[nodiscard]] constexpr T from_bits(std::uint64_t bits) noexcept {
    T v{};
    __builtin_memcpy(&v, &bits, sizeof(T));
    return v;
}

}  // namespace model::detail

/// Model-aware std::atomic<T> stand-in.  No defaulted memory orders: the
/// model preset is the build that flags implicit-seq_cst call sites.
template <class T>
class atomic {
public:
    constexpr atomic() noexcept : v_() {}
    constexpr atomic(T v) noexcept : v_(v) {}  // NOLINT(google-explicit-constructor)
    atomic(const atomic&) = delete;
    atomic& operator=(const atomic&) = delete;

    T load(memory_order mo) const {
        if (model::detail::in_execution()) {
            return model::detail::from_bits<T>(model::detail::on_load(
                this, model::detail::to_bits(v_.load(memory_order_relaxed)),
                mo));
        }
        return v_.load(mo);
    }

    void store(T v, memory_order mo) {
        if (model::detail::in_execution()) {
            model::detail::on_store(
                this, model::detail::to_bits(v_.load(memory_order_relaxed)),
                model::detail::to_bits(v), mo);
            v_.store(v, memory_order_relaxed);  // mirror for post-run reads
            return;
        }
        v_.store(v, mo);
    }

    T exchange(T v, memory_order mo) {
        return rmw([](std::uint64_t, std::uint64_t b) { return b; }, v, mo,
                   [&] { return v_.exchange(v, mo); });
    }

    T fetch_add(T v, memory_order mo)
        requires std::is_integral_v<T>
    {
        return rmw(
            [](std::uint64_t a, std::uint64_t b) {
                return model::detail::to_bits<T>(
                    static_cast<T>(model::detail::from_bits<T>(a) +
                                   model::detail::from_bits<T>(b)));
            },
            v, mo, [&] { return v_.fetch_add(v, mo); });
    }

    T fetch_sub(T v, memory_order mo)
        requires std::is_integral_v<T>
    {
        return rmw(
            [](std::uint64_t a, std::uint64_t b) {
                return model::detail::to_bits<T>(
                    static_cast<T>(model::detail::from_bits<T>(a) -
                                   model::detail::from_bits<T>(b)));
            },
            v, mo, [&] { return v_.fetch_sub(v, mo); });
    }

    T fetch_or(T v, memory_order mo)
        requires std::is_integral_v<T>
    {
        return rmw(
            [](std::uint64_t a, std::uint64_t b) {
                return model::detail::to_bits<T>(
                    static_cast<T>(model::detail::from_bits<T>(a) |
                                   model::detail::from_bits<T>(b)));
            },
            v, mo, [&] { return v_.fetch_or(v, mo); });
    }

    T fetch_and(T v, memory_order mo)
        requires std::is_integral_v<T>
    {
        return rmw(
            [](std::uint64_t a, std::uint64_t b) {
                return model::detail::to_bits<T>(
                    static_cast<T>(model::detail::from_bits<T>(a) &
                                   model::detail::from_bits<T>(b)));
            },
            v, mo, [&] { return v_.fetch_and(v, mo); });
    }

    bool compare_exchange_strong(T& expected, T desired, memory_order success,
                                 memory_order failure) {
        if (model::detail::in_execution()) {
            std::uint64_t exp = model::detail::to_bits(expected);
            const bool ok = model::detail::on_cas(
                this, model::detail::to_bits(v_.load(memory_order_relaxed)),
                exp, model::detail::to_bits(desired), success, failure);
            expected = model::detail::from_bits<T>(exp);
            if (ok) v_.store(desired, memory_order_relaxed);
            return ok;
        }
        return v_.compare_exchange_strong(expected, desired, success, failure);
    }

    bool compare_exchange_strong(T& expected, T desired,
                                 memory_order mo) {
        return compare_exchange_strong(expected, desired, mo,
                                       cas_failure_order(mo));
    }

    /// The model gives weak CAS strong semantics (no spurious failures):
    /// spurious failure is an *extra* behavior real hardware may exhibit,
    /// so omitting it can hide retry-loop bugs but never invents one.
    bool compare_exchange_weak(T& expected, T desired, memory_order success,
                               memory_order failure) {
        if (model::detail::in_execution()) {
            return compare_exchange_strong(expected, desired, success,
                                           failure);
        }
        return v_.compare_exchange_weak(expected, desired, success, failure);
    }

    bool compare_exchange_weak(T& expected, T desired,
                               memory_order mo) {
        return compare_exchange_weak(expected, desired, mo,
                                     cas_failure_order(mo));
    }

private:
    static constexpr memory_order cas_failure_order(memory_order mo) {
        if (mo == memory_order_acq_rel) return memory_order_acquire;
        if (mo == memory_order_release) return memory_order_relaxed;
        return mo;
    }

    template <class Fallback>
    T rmw(model::detail::rmw_fn f, T operand, memory_order mo,
          Fallback&& fallback) {
        if (model::detail::in_execution()) {
            const std::uint64_t old = model::detail::on_rmw(
                this, model::detail::to_bits(v_.load(memory_order_relaxed)),
                f, model::detail::to_bits(operand), mo);
            v_.store(model::detail::from_bits<T>(f(
                         old, model::detail::to_bits(operand))),
                     memory_order_relaxed);
            return model::detail::from_bits<T>(old);
        }
        return fallback();
    }

    std::atomic<T> v_;
};

/// std::atomic_flag stand-in on top of the model-aware atomic<bool>.
class atomic_flag {
public:
    constexpr atomic_flag() noexcept = default;
    atomic_flag(const atomic_flag&) = delete;
    atomic_flag& operator=(const atomic_flag&) = delete;

    bool test_and_set(memory_order mo) {
        return flag_.exchange(true, mo);
    }
    void clear(memory_order mo) { flag_.store(false, mo); }
    [[nodiscard]] bool test(memory_order mo) const {
        return flag_.load(mo);
    }

private:
    atomic<bool> flag_{false};
};

inline void atomic_thread_fence(memory_order mo) {
    if (model::detail::in_execution()) {
        model::detail::on_fence(mo);
        return;
    }
    std::atomic_thread_fence(mo);
}

/// Model-aware std::mutex stand-in.  Inside a model execution lock/unlock
/// become schedule points (a thread blocked on a held mutex is descheduled
/// until the holder releases it); outside one it is a plain mutex.
class mutex {
public:
    mutex() = default;
    mutex(const mutex&) = delete;
    mutex& operator=(const mutex&) = delete;

    void lock() {
        if (model::detail::in_execution()) {
            model::detail::on_mutex_lock(this);
            return;
        }
        fallback_.lock();
    }
    bool try_lock() {
        if (model::detail::in_execution()) {
            return model::detail::on_mutex_try_lock(this);
        }
        return fallback_.try_lock();
    }
    void unlock() {
        if (model::detail::in_execution()) {
            model::detail::on_mutex_unlock(this);
            return;
        }
        fallback_.unlock();
    }

private:
    std::mutex fallback_;
};

/// Model-aware std::condition_variable stand-in.  The model wakes waiters
/// only on notify (no spurious wakeups), so a lost notify in the code
/// under test shows up as a reported deadlock.
class condition_variable {
public:
    condition_variable() = default;
    condition_variable(const condition_variable&) = delete;
    condition_variable& operator=(const condition_variable&) = delete;

    template <class Lock>
    void wait(Lock& lk) {
        if (model::detail::in_execution()) {
            model::detail::on_cv_wait(this, lk.mutex());
            return;
        }
        fallback_.wait(lk);
    }

    template <class Lock, class Pred>
    void wait(Lock& lk, Pred pred) {
        while (!pred()) wait(lk);
    }

    /// Timed wait (the metrics reporter's interval sleep).  Under the
    /// model no clock advances, so an in-execution wait_for degenerates
    /// to wait-until-notified — a lost notify still reports as a
    /// deadlock instead of silently timing out.
    template <class Lock, class Rep, class Period, class Pred>
    bool wait_for(Lock& lk, const std::chrono::duration<Rep, Period>& d,
                  Pred pred) {
        if (model::detail::in_execution()) {
            while (!pred()) wait(lk);
            return true;
        }
        return fallback_.wait_for(lk, d, pred);
    }

    void notify_one() {
        if (model::detail::in_execution()) {
            model::detail::on_cv_notify(this, /*all=*/false);
            return;
        }
        fallback_.notify_one();
    }
    void notify_all() {
        if (model::detail::in_execution()) {
            model::detail::on_cv_notify(this, /*all=*/true);
            return;
        }
        fallback_.notify_all();
    }

private:
    std::condition_variable_any fallback_;
};

#endif  // AMT_MODEL_CHECK

}  // namespace amt
