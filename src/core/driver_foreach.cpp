// core/driver_foreach.cpp — naive for_each-style driver (ablation baseline).


#include "amt/atomic.hpp"
#include "core/driver_foreach.hpp"

namespace lulesh {

namespace {
namespace k = kernels;
}

template <class F>
void foreach_driver::pf(index_t n, F&& body) {
    // Chunking comparable to a parallel-algorithm default: a handful of
    // chunks per worker so the scheduler can balance, without the caller
    // tuning anything.
    const auto workers = static_cast<index_t>(rt_.num_workers());
    const index_t chunk = std::max<index_t>(1, n / (workers * 8));
    const char* site = trace_site_;
    auto wave = amt::bulk_async(
        rt_, 0, n, chunk,
        [body, site, chunk](amt::index_t lo, amt::index_t hi) mutable {
            amt::trace::annotate_task(
                site, static_cast<std::int32_t>(static_cast<std::int64_t>(lo) /
                                                static_cast<std::int64_t>(
                                                    chunk)));
            body(static_cast<index_t>(lo), static_cast<index_t>(hi));
        });
    amt::wait_all(wave);
    for (auto& f : wave) f.get();
}

void foreach_driver::advance(domain& d) {
    const index_t ne = d.numElem();
    const index_t nn = d.numNode();
    const real_t dt = d.deltatime;

    const auto nes = static_cast<std::size_t>(ne);
    sigxx_.resize(nes);
    sigyy_.resize(nes);
    sigzz_.resize(nes);
    dvdx_.resize(nes * 8);
    dvdy_.resize(nes * 8);
    dvdz_.resize(nes * 8);
    x8n_.resize(nes * 8);
    y8n_.resize(nes * 8);
    z8n_.resize(nes * 8);
    determ_.resize(nes);

    amt::atomic<bool> ok{true};
    auto require = [&ok](status code, const char* what) {
        if (!ok.load(amt::memory_order_relaxed)) {
            throw simulation_error(code, what);
        }
    };

    // ---------------- LagrangeNodal ----------------
    trace_site_ = "foreach:nodal";
    pf(ne, [&](index_t lo, index_t hi) {
        k::init_stress_terms(d, lo, hi, sigxx_.data(), sigyy_.data(),
                             sigzz_.data());
    });
    pf(ne, [&](index_t lo, index_t hi) {
        if (!k::integrate_stress(d, lo, hi, sigxx_.data(), sigyy_.data(),
                                 sigzz_.data())) {
            ok.store(false, amt::memory_order_relaxed);
        }
    });
    require(status::volume_error, "non-positive Jacobian in stress integration");

    pf(ne, [&](index_t lo, index_t hi) {
        if (!k::calc_hourglass_control(d, lo, hi, dvdx_.data(), dvdy_.data(),
                                       dvdz_.data(), x8n_.data(), y8n_.data(),
                                       z8n_.data(), determ_.data())) {
            ok.store(false, amt::memory_order_relaxed);
        }
    });
    require(status::volume_error, "non-positive volume in hourglass control");

    if (d.hgcoef > real_t(0.0)) {
        pf(ne, [&](index_t lo, index_t hi) {
            k::calc_fb_hourglass_force(d, lo, hi, dvdx_.data(), dvdy_.data(),
                                       dvdz_.data(), x8n_.data(), y8n_.data(),
                                       z8n_.data(), determ_.data(), d.hgcoef);
        });
    }

    pf(nn, [&](index_t lo, index_t hi) { k::gather_forces(d, lo, hi); });
    pf(nn, [&](index_t lo, index_t hi) { k::calc_acceleration(d, lo, hi); });
    pf(static_cast<index_t>(d.symmX.size()),
       [&](index_t lo, index_t hi) { k::apply_acceleration_bc_x(d, lo, hi); });
    pf(static_cast<index_t>(d.symmY.size()),
       [&](index_t lo, index_t hi) { k::apply_acceleration_bc_y(d, lo, hi); });
    pf(static_cast<index_t>(d.symmZ.size()),
       [&](index_t lo, index_t hi) { k::apply_acceleration_bc_z(d, lo, hi); });
    pf(nn, [&](index_t lo, index_t hi) { k::calc_velocity(d, lo, hi, dt); });
    pf(nn, [&](index_t lo, index_t hi) { k::calc_position(d, lo, hi, dt); });

    // ---------------- LagrangeElements ----------------
    trace_site_ = "foreach:elem";
    pf(ne, [&](index_t lo, index_t hi) { k::calc_kinematics(d, lo, hi, dt); });
    pf(ne, [&](index_t lo, index_t hi) {
        if (!k::calc_lagrange_deviatoric(d, lo, hi)) {
            ok.store(false, amt::memory_order_relaxed);
        }
    });
    require(status::volume_error, "non-positive new volume in kinematics");

    pf(ne, [&](index_t lo, index_t hi) {
        k::calc_monotonic_q_gradients(d, lo, hi);
    });
    for (index_t r = 0; r < d.numReg(); ++r) {
        const auto& list = d.regElemList(r);
        pf(static_cast<index_t>(list.size()), [&](index_t lo, index_t hi) {
            k::calc_monotonic_q_region(d, list.data(), lo, hi);
        });
    }
    pf(ne, [&](index_t lo, index_t hi) {
        if (!k::check_qstop(d, lo, hi)) {
            ok.store(false, amt::memory_order_relaxed);
        }
    });
    require(status::qstop_error, "artificial viscosity exceeded qstop");

    pf(ne, [&](index_t lo, index_t hi) {
        if (!k::apply_material_vnewc(d, lo, hi)) {
            ok.store(false, amt::memory_order_relaxed);
        }
    });
    require(status::volume_error, "relative volume out of EOS range");

    trace_site_ = "foreach:eos";
    for (index_t r = 0; r < d.numReg(); ++r) {
        const auto& list = d.regElemList(r);
        const auto count = static_cast<index_t>(list.size());
        if (count == 0) continue;
        eos_.resize(static_cast<std::size_t>(count));
        const index_t* lp = list.data();
        const int rep = k::eos_rep_for_region(d, r);
        for (int j = 0; j < rep; ++j) {
            pf(count, [&](index_t lo, index_t hi) { k::eos_gather_e(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::eos_gather_delv(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::eos_gather_p(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::eos_gather_q(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::eos_gather_qq_ql(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::eos_compression(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::eos_clamp_vmin(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::eos_clamp_vmax(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::eos_zero_work(lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::energy_step1(d, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) {
                k::pressure_bvc(lo, hi, eos_.comp_half_step.data(),
                                eos_.bvc.data(), eos_.pbvc.data());
            });
            pf(count, [&](index_t lo, index_t hi) {
                k::pressure_p(d, lp, lo, hi, eos_.p_half_step.data(),
                              eos_.bvc.data(), eos_.e_new.data());
            });
            pf(count, [&](index_t lo, index_t hi) { k::energy_q_half(d, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) { k::energy_step2(d, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) {
                k::pressure_bvc(lo, hi, eos_.compression.data(),
                                eos_.bvc.data(), eos_.pbvc.data());
            });
            pf(count, [&](index_t lo, index_t hi) {
                k::pressure_p(d, lp, lo, hi, eos_.p_new.data(),
                              eos_.bvc.data(), eos_.e_new.data());
            });
            pf(count, [&](index_t lo, index_t hi) { k::energy_step3(d, lp, lo, hi, eos_); });
            pf(count, [&](index_t lo, index_t hi) {
                k::pressure_bvc(lo, hi, eos_.compression.data(),
                                eos_.bvc.data(), eos_.pbvc.data());
            });
            pf(count, [&](index_t lo, index_t hi) {
                k::pressure_p(d, lp, lo, hi, eos_.p_new.data(),
                              eos_.bvc.data(), eos_.e_new.data());
            });
            pf(count, [&](index_t lo, index_t hi) { k::energy_q_final(d, lp, lo, hi, eos_); });
        }
        pf(count, [&](index_t lo, index_t hi) { k::eos_store(d, lp, lo, hi, eos_); });
        pf(count, [&](index_t lo, index_t hi) { k::eos_sound_speed(d, lp, lo, hi, eos_); });
    }

    pf(ne, [&](index_t lo, index_t hi) { k::update_volumes(d, lo, hi); });

    // ---------------- time constraints ----------------
    trace_site_ = "foreach:constraints";
    kernels::dt_constraints combined;
    for (index_t r = 0; r < d.numReg(); ++r) {
        const auto& list = d.regElemList(r);
        const auto count = static_cast<index_t>(list.size());
        if (count == 0) continue;
        const auto workers = static_cast<index_t>(rt_.num_workers());
        const index_t chunk = std::max<index_t>(1, count / (workers * 8));
        const auto slots =
            static_cast<std::size_t>((count + chunk - 1) / chunk);
        partials_.assign(slots, kernels::dt_constraints{});
        const index_t* lp = list.data();
        std::size_t slot = 0;
        std::vector<amt::future<void>> wave;
        wave.reserve(slots);
        for (index_t lo = 0; lo < count; lo += chunk) {
            const index_t hi = std::min<index_t>(lo + chunk, count);
            kernels::dt_constraints* out = &partials_[slot++];
            domain* dp = &d;
            const auto part = static_cast<std::int32_t>(slot - 1);
            wave.push_back(amt::async(rt_, [dp, lp, lo, hi, out, part] {
                amt::trace::annotate_task("foreach:constraints", part);
                *out = k::calc_time_constraints(*dp, lp, lo, hi);
            }));
        }
        amt::wait_all(wave);
        for (auto& f : wave) f.get();
        for (const auto& partial : partials_) {
            combined = k::min_constraints(combined, partial);
        }
    }
    d.dtcourant = combined.dtcourant;
    d.dthydro = combined.dthydro;
}

}  // namespace lulesh
