// amt/graph_profile.cpp — Kahn-order longest-path DP over the sealed CSR
// topology.  Cold path: runs once per report, not per replay.

#include "amt/graph_profile.hpp"

#include <algorithm>
#include <cassert>

namespace amt {

graph_profile profile_graph(const static_graph& g) {
    assert(g.sealed());
    const std::size_t n = g.node_count();

    graph_profile out;
    out.nodes.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto id = static_cast<static_graph::node_id>(i);
        auto& pn = out.nodes[i];
        pn.id = id;
        pn.label = g.node_label(id);
        pn.arg = g.node_arg(id);
        pn.total_ns = g.node_time_ns(id);
        pn.runs = g.node_timed_runs(id);
        pn.mean_ns = pn.runs > 0 ? static_cast<double>(pn.total_ns) /
                                       static_cast<double>(pn.runs)
                                 : 0.0;
        out.work_ns += pn.mean_ns;
    }
    if (n == 0) {
        out.ideal_speedup = 1.0;
        return out;
    }

    // Longest weighted path: process nodes in Kahn order, pushing the best
    // finishing time forward along the CSR successor lists.  `best_pred`
    // remembers the argmax edge for path reconstruction.
    constexpr auto no_pred = static_cast<static_graph::node_id>(-1);
    std::vector<double> dist(n, 0.0);
    std::vector<static_graph::node_id> best_pred(n, no_pred);
    std::vector<std::uint32_t> indeg(n);
    std::vector<static_graph::node_id> ready;
    ready.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto id = static_cast<static_graph::node_id>(i);
        indeg[i] = g.dependency_count(id);
        dist[i] = out.nodes[i].mean_ns;
        if (indeg[i] == 0) ready.push_back(id);
    }
    std::size_t processed = 0;
    for (std::size_t head = 0; head < ready.size(); ++head) {
        const auto v = ready[head];
        ++processed;
        for (const auto s : g.successors(v)) {
            const double through = dist[v] + out.nodes[s].mean_ns;
            if (through > dist[s]) {
                dist[s] = through;
                best_pred[s] = v;
            }
            if (--indeg[s] == 0) ready.push_back(s);
        }
    }
    assert(processed == n && "sealed graph must be acyclic");
    (void)processed;

    auto sink = static_cast<static_graph::node_id>(0);
    for (std::size_t i = 1; i < n; ++i) {
        if (dist[i] > dist[sink]) {
            sink = static_cast<static_graph::node_id>(i);
        }
    }
    out.critical_path_ns = dist[sink];
    for (auto v = sink; v != no_pred; v = best_pred[v]) {
        out.nodes[v].on_critical_path = true;
        out.critical_path.push_back(v);
    }
    std::reverse(out.critical_path.begin(), out.critical_path.end());

    out.ideal_speedup = out.critical_path_ns > 0.0
                            ? out.work_ns / out.critical_path_ns
                            : 1.0;
    return out;
}

std::vector<profiled_node> graph_profile::top(std::size_t k) const {
    std::vector<profiled_node> sorted = nodes;
    std::sort(sorted.begin(), sorted.end(),
              [](const profiled_node& a, const profiled_node& b) {
                  if (a.mean_ns != b.mean_ns) return a.mean_ns > b.mean_ns;
                  return a.id < b.id;
              });
    if (sorted.size() > k) sorted.resize(k);
    return sorted;
}

}  // namespace amt
