// core/autotune.hpp
//
// Runtime partition-size auto-tuning.  The paper derives its Table I
// partition sizes "through experimentation"; this utility automates that
// experiment: it runs a few timed leapfrog iterations per candidate pair on
// a scratch copy of the problem and returns the fastest configuration.  The
// scratch domain is discarded, so tuning does not disturb the caller's
// simulation state.

#pragma once

#include <vector>

#include "amt/amt.hpp"
#include "lulesh/options.hpp"

namespace lulesh {

struct autotune_options {
    /// Candidate partition sizes tried for both phases (all pairs).
    std::vector<index_t> candidates{512, 1024, 2048, 4096, 8192};
    /// Timed iterations per candidate pair (after one warm-up iteration).
    int iterations = 5;
    /// Repetitions per pair; the best (minimum) time is kept, which filters
    /// scheduling noise better than the mean for short measurements.
    int repetitions = 1;
};

struct autotune_result {
    partition_sizes best;
    double best_seconds = 0.0;       ///< time of the winning measurement
    double worst_seconds = 0.0;      ///< slowest candidate, for the spread
    int pairs_tried = 0;
};

/// Measures every candidate pair on a scratch domain built from `problem`
/// and returns the fastest.  `rt` supplies the workers (the same runtime
/// the real run will use, so the tuning reflects the deployment).
autotune_result autotune_partitions(amt::runtime& rt, const options& problem,
                                    const autotune_options& opts = {});

}  // namespace lulesh
