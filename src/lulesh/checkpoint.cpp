// lulesh/checkpoint.cpp — binary checkpoint/restart.

#include "lulesh/checkpoint.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "lulesh/checkpoint_chain.hpp"
#include "lulesh/crc32.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define LULESH_CHECKPOINT_HAVE_FSYNC 1
#endif

namespace lulesh {

namespace {

constexpr std::uint64_t checkpoint_magic = 0x4C554C4553485F31ULL;  // "LULESH_1"
// Version 2 added payload_crc: a CRC-32 over all field payload bytes, in
// write order, so a flipped bit anywhere in the payload is detected at load
// time instead of silently corrupting the restarted run.
constexpr std::uint32_t checkpoint_version = 2;

struct header {
    std::uint64_t magic = checkpoint_magic;
    std::uint32_t version = checkpoint_version;
    std::uint32_t payload_crc = 0;
    std::int32_t size = 0;
    std::int32_t plane_begin = 0;
    std::int32_t plane_end = 0;
    std::int32_t num_elem = 0;
    std::int32_t num_node = 0;
    std::int32_t cycle = 0;
    double time = 0;
    double deltatime = 0;
    double dtcourant = 0;
    double dthydro = 0;
};

void write_bytes(std::ostream& out, const void* p, std::size_t n) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    if (!out) throw checkpoint_error("lulesh: checkpoint write failed");
}

void read_bytes(std::istream& in, void* p, std::size_t n) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (!in || in.gcount() != static_cast<std::streamsize>(n)) {
        throw checkpoint_error("lulesh: checkpoint read failed (truncated?)");
    }
}

void write_field(std::ostream& out, const std::vector<real_t>& v,
                 std::size_t expect) {
    write_bytes(out, v.data(), expect * sizeof(real_t));
}

void read_field(std::istream& in, std::vector<real_t>& v, std::size_t expect,
                crc32& crc) {
    read_bytes(in, v.data(), expect * sizeof(real_t));
    crc.update(v.data(), expect * sizeof(real_t));
}

std::string hex32(std::uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08X", v);
    return buf;
}

/// CRC-32 over the field payload exactly as save_checkpoint writes it.
std::uint32_t payload_crc(const domain& d) {
    const auto nn = static_cast<std::size_t>(d.numNode());
    const auto ne = static_cast<std::size_t>(d.numElem());
    crc32 crc;
    for (const auto* f : {&d.x, &d.y, &d.z, &d.xd, &d.yd, &d.zd}) {
        crc.update(f->data(), nn * sizeof(real_t));
    }
    for (const auto* f : {&d.e, &d.p, &d.q, &d.v, &d.ss}) {
        crc.update(f->data(), ne * sizeof(real_t));
    }
    return crc.value();
}

}  // namespace

void save_checkpoint(const domain& d, std::ostream& out) {
    header h;
    h.size = d.size_per_edge();
    h.plane_begin = d.slab().plane_begin;
    h.plane_end = d.slab().plane_end;
    h.num_elem = d.numElem();
    h.num_node = d.numNode();
    h.cycle = d.cycle;
    h.time = d.time_;
    h.deltatime = d.deltatime;
    h.dtcourant = d.dtcourant;
    h.dthydro = d.dthydro;
    h.payload_crc = payload_crc(d);
    write_bytes(out, &h, sizeof(h));

    const auto nn = static_cast<std::size_t>(d.numNode());
    const auto ne = static_cast<std::size_t>(d.numElem());
    write_field(out, d.x, nn);
    write_field(out, d.y, nn);
    write_field(out, d.z, nn);
    write_field(out, d.xd, nn);
    write_field(out, d.yd, nn);
    write_field(out, d.zd, nn);
    write_field(out, d.e, ne);
    write_field(out, d.p, ne);
    write_field(out, d.q, ne);
    write_field(out, d.v, ne);
    write_field(out, d.ss, ne);
}

namespace {

/// `where` names the source for error messages: "" for an anonymous stream,
/// "in file '<path>'" for the file wrapper.
void load_checkpoint_impl(domain& d, std::istream& in,
                          const std::string& where) {
    header h;
    read_bytes(in, &h, sizeof(h));
    if (h.magic != checkpoint_magic) {
        throw checkpoint_error("lulesh: not a checkpoint" + where);
    }
    if (h.version != checkpoint_version) {
        throw checkpoint_error("lulesh: unsupported checkpoint version" +
                               where);
    }
    if (h.size != d.size_per_edge() || h.plane_begin != d.slab().plane_begin ||
        h.plane_end != d.slab().plane_end || h.num_elem != d.numElem() ||
        h.num_node != d.numNode()) {
        throw checkpoint_error("lulesh: checkpoint" + where +
                               " does not match this domain's shape");
    }

    const auto nn = static_cast<std::size_t>(d.numNode());
    const auto ne = static_cast<std::size_t>(d.numElem());
    crc32 crc;
    read_field(in, d.x, nn, crc);
    read_field(in, d.y, nn, crc);
    read_field(in, d.z, nn, crc);
    read_field(in, d.xd, nn, crc);
    read_field(in, d.yd, nn, crc);
    read_field(in, d.zd, nn, crc);
    read_field(in, d.e, ne, crc);
    read_field(in, d.p, ne, crc);
    read_field(in, d.q, ne, crc);
    read_field(in, d.v, ne, crc);
    read_field(in, d.ss, ne, crc);
    if (crc.value() != h.payload_crc) {
        // The domain's field vectors already hold the corrupt bytes at this
        // point; callers must treat the load as failed and restore from
        // elsewhere (resilient_run falls back to an older checkpoint).
        throw checkpoint_error(
            "lulesh: checkpoint payload checksum mismatch" + where +
            " (cycle " + std::to_string(h.cycle) + ", expected " +
            hex32(h.payload_crc) + ", actual " + hex32(crc.value()) + ")");
    }

    d.cycle = h.cycle;
    d.time_ = h.time;
    d.deltatime = h.deltatime;
    d.dtcourant = h.dtcourant;
    d.dthydro = h.dthydro;
}

}  // namespace

void load_checkpoint(domain& d, std::istream& in) {
    load_checkpoint_impl(d, in, "");
}

void save_checkpoint_file(const domain& d, const std::string& path) {
    // Atomic write protocol: stream into a sibling temp file, flush it to
    // stable storage, then rename over the destination.  A crash at any
    // point leaves either the old checkpoint or the new one — never a
    // truncated file (load_checkpoint rejects torn files anyway, but the
    // recovery loop must not lose its last good checkpoint to a crash
    // mid-save).
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw checkpoint_error("lulesh: cannot open '" + tmp +
                                   "' for writing");
        }
        try {
            save_checkpoint(d, out);
            out.flush();
            if (!out) throw checkpoint_error("lulesh: checkpoint write failed");
        } catch (...) {
            out.close();
            std::remove(tmp.c_str());
            throw;
        }
    }
#if LULESH_CHECKPOINT_HAVE_FSYNC
    const int fd = ::open(tmp.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
#endif
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw checkpoint_error("lulesh: cannot rename '" + tmp + "' to '" +
                               path + "'");
    }
}

void load_checkpoint_file(domain& d, const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw checkpoint_error("lulesh: cannot open '" + path + "' for reading");
    // The resilient loop's file mirror is a v3 chain; standalone
    // checkpoints are monolithic v2.  Both restore bitwise — dispatch on
    // the leading magic.
    if (stream_is_chain(in)) {
        restore_chain_stream(d, in, "file '" + path + "'");
    } else {
        load_checkpoint_impl(d, in, " in file '" + path + "'");
    }
}

}  // namespace lulesh
