// core/access.cpp — the declarative access sets of the five task waves and
// the model builder that mirrors graph_waves.cpp's spawn loops.
//
// Every declaration below is derived from the kernel bodies
// (lulesh/kernels_*.cpp); the dynamic shadow tracker cross-checks them at
// runtime (a kernel touching outside its declaration is an error), and the
// adversarial audit tests check that weakening them is caught.

#include "core/access.hpp"

#include <algorithm>
#include <cmath>

#include "core/graph_waves.hpp"
#include "lulesh/checkpoint_chain.hpp"

namespace lulesh::graph {

std::size_t space_extent(space s, const domain& d, std::size_t slots) {
    switch (s) {
        case space::node:
            return static_cast<std::size_t>(d.numNode());
        case space::elem:
            // At least numElem; delv_zeta can exceed it in dist slabs,
            // whose ghost planes live past the owned range (the halo audit
            // stamps those ghost indices).
            return std::max(static_cast<std::size_t>(d.numElem()),
                            d.delv_zeta.size());
        case space::corner:
            // Sized from the array, not numElem*8: dist slabs extend the
            // corner arrays with ghost planes.
            return d.fx_elem.size();
        case space::slot:
            return slots;
    }
    return 0;
}

const real_t* field_data(const domain& d, field f) noexcept {
    switch (f) {
        case field::x: return d.x.data();
        case field::y: return d.y.data();
        case field::z: return d.z.data();
        case field::xd: return d.xd.data();
        case field::yd: return d.yd.data();
        case field::zd: return d.zd.data();
        case field::xdd: return d.xdd.data();
        case field::ydd: return d.ydd.data();
        case field::zdd: return d.zdd.data();
        case field::fx: return d.fx.data();
        case field::fy: return d.fy.data();
        case field::fz: return d.fz.data();
        case field::nodal_mass: return d.nodalMass.data();
        case field::e: return d.e.data();
        case field::p: return d.p.data();
        case field::q: return d.q.data();
        case field::ql: return d.ql.data();
        case field::qq: return d.qq.data();
        case field::v: return d.v.data();
        case field::volo: return d.volo.data();
        case field::delv: return d.delv.data();
        case field::vdov: return d.vdov.data();
        case field::arealg: return d.arealg.data();
        case field::ss: return d.ss.data();
        case field::elem_mass: return d.elemMass.data();
        case field::dxx: return d.dxx.data();
        case field::dyy: return d.dyy.data();
        case field::dzz: return d.dzz.data();
        case field::delv_xi: return d.delv_xi.data();
        case field::delv_eta: return d.delv_eta.data();
        case field::delv_zeta: return d.delv_zeta.data();
        case field::delx_xi: return d.delx_xi.data();
        case field::delx_eta: return d.delx_eta.data();
        case field::delx_zeta: return d.delx_zeta.data();
        case field::vnew: return d.vnew.data();
        case field::vnewc: return d.vnewc.data();
        case field::fx_elem: return d.fx_elem.data();
        case field::fy_elem: return d.fy_elem.data();
        case field::fz_elem: return d.fz_elem.data();
        case field::fx_elem_hg: return d.fx_elem_hg.data();
        case field::fy_elem_hg: return d.fy_elem_hg.data();
        case field::fz_elem_hg: return d.fz_elem_hg.data();
        // Mask/flag and reduction-slot fields are not real_t arrays.
        case field::symm_mask:
        case field::elem_bc:
        case field::dt_partial:
        case field::count:
            return nullptr;
    }
    return nullptr;
}

// --- per-task access declarations ----------------------------------------

std::vector<access> force_stress_accesses(index_t lo, index_t hi) {
    // force_stress_chunk: stress terms from p and q, integrated over the
    // element's 8 corner nodes' coordinates, into the stress corner forces.
    return {
        {field::p, mode::read, lo, hi},
        {field::q, mode::read, lo, hi},
        {field::x, mode::read, lo, hi, nullptr, closure::elem_nodes},
        {field::y, mode::read, lo, hi, nullptr, closure::elem_nodes},
        {field::z, mode::read, lo, hi, nullptr, closure::elem_nodes},
        {field::fx_elem, mode::write, lo, hi},
        {field::fy_elem, mode::write, lo, hi},
        {field::fz_elem, mode::write, lo, hi},
    };
}

std::vector<access> force_hourglass_accesses(index_t lo, index_t hi) {
    return {
        {field::volo, mode::read, lo, hi},
        {field::v, mode::read, lo, hi},
        {field::ss, mode::read, lo, hi},
        {field::elem_mass, mode::read, lo, hi},
        {field::x, mode::read, lo, hi, nullptr, closure::elem_nodes},
        {field::y, mode::read, lo, hi, nullptr, closure::elem_nodes},
        {field::z, mode::read, lo, hi, nullptr, closure::elem_nodes},
        {field::xd, mode::read, lo, hi, nullptr, closure::elem_nodes},
        {field::yd, mode::read, lo, hi, nullptr, closure::elem_nodes},
        {field::zd, mode::read, lo, hi, nullptr, closure::elem_nodes},
        {field::fx_elem_hg, mode::write, lo, hi},
        {field::fy_elem_hg, mode::write, lo, hi},
        {field::fz_elem_hg, mode::write, lo, hi},
    };
}

std::vector<access> node_gather_accesses(index_t lo, index_t hi) {
    // gather_forces sums both corner-force components over each node's
    // element-corner list; calc_acceleration divides by nodalMass;
    // apply_acceleration_bc_masked zeroes accelerations on symmetry planes
    // (read-modify-write of xdd/ydd/zdd, covered by the write declaration).
    return {
        {field::fx_elem, mode::read, lo, hi, nullptr, closure::node_corners},
        {field::fy_elem, mode::read, lo, hi, nullptr, closure::node_corners},
        {field::fz_elem, mode::read, lo, hi, nullptr, closure::node_corners},
        {field::fx_elem_hg, mode::read, lo, hi, nullptr,
         closure::node_corners},
        {field::fy_elem_hg, mode::read, lo, hi, nullptr,
         closure::node_corners},
        {field::fz_elem_hg, mode::read, lo, hi, nullptr,
         closure::node_corners},
        {field::fx, mode::write, lo, hi},
        {field::fy, mode::write, lo, hi},
        {field::fz, mode::write, lo, hi},
        {field::nodal_mass, mode::read, lo, hi},
        {field::symm_mask, mode::read, lo, hi},
        {field::xdd, mode::write, lo, hi},
        {field::ydd, mode::write, lo, hi},
        {field::zdd, mode::write, lo, hi},
    };
}

std::vector<access> node_velpos_accesses(index_t lo, index_t hi) {
    return {
        {field::xdd, mode::read, lo, hi},
        {field::ydd, mode::read, lo, hi},
        {field::zdd, mode::read, lo, hi},
        {field::xd, mode::write, lo, hi},
        {field::yd, mode::write, lo, hi},
        {field::zd, mode::write, lo, hi},
        {field::x, mode::write, lo, hi},
        {field::y, mode::write, lo, hi},
        {field::z, mode::write, lo, hi},
    };
}

std::vector<access> elem_wave_accesses(index_t lo, index_t hi) {
    // calc_kinematics + calc_lagrange_deviatoric + calc_monotonic_q_gradients
    // + check_qstop + apply_material_vnewc, fused.
    return {
        {field::x, mode::read, lo, hi, nullptr, closure::elem_nodes},
        {field::y, mode::read, lo, hi, nullptr, closure::elem_nodes},
        {field::z, mode::read, lo, hi, nullptr, closure::elem_nodes},
        {field::xd, mode::read, lo, hi, nullptr, closure::elem_nodes},
        {field::yd, mode::read, lo, hi, nullptr, closure::elem_nodes},
        {field::zd, mode::read, lo, hi, nullptr, closure::elem_nodes},
        {field::v, mode::read, lo, hi},
        {field::volo, mode::read, lo, hi},
        {field::q, mode::read, lo, hi},  // check_qstop (previous EOS pass)
        {field::vnew, mode::write, lo, hi},
        {field::delv, mode::write, lo, hi},
        {field::arealg, mode::write, lo, hi},
        {field::dxx, mode::write, lo, hi},
        {field::dyy, mode::write, lo, hi},
        {field::dzz, mode::write, lo, hi},
        {field::vdov, mode::write, lo, hi},
        {field::delx_xi, mode::write, lo, hi},
        {field::delx_eta, mode::write, lo, hi},
        {field::delx_zeta, mode::write, lo, hi},
        {field::delv_xi, mode::write, lo, hi},
        {field::delv_eta, mode::write, lo, hi},
        {field::delv_zeta, mode::write, lo, hi},
        {field::vnewc, mode::write, lo, hi},
    };
}

std::vector<access> region_monoq_accesses(const index_t* list, index_t lo,
                                          index_t hi) {
    // calc_monotonic_q_region: the velocity gradients are read at the
    // element *and* its six face neighbors (the only non-element-local read
    // of the region wave — what makes monoq→EOS chaining per region legal
    // is that delv_* is never written after wave 3).
    return {
        {field::elem_bc, mode::read, lo, hi, list},
        {field::vdov, mode::read, lo, hi, list},
        {field::elem_mass, mode::read, lo, hi, list},
        {field::volo, mode::read, lo, hi, list},
        {field::vnew, mode::read, lo, hi, list},
        {field::delx_xi, mode::read, lo, hi, list},
        {field::delx_eta, mode::read, lo, hi, list},
        {field::delx_zeta, mode::read, lo, hi, list},
        {field::delv_xi, mode::read, lo, hi, list, closure::face_neighbors},
        {field::delv_eta, mode::read, lo, hi, list, closure::face_neighbors},
        {field::delv_zeta, mode::read, lo, hi, list, closure::face_neighbors},
        {field::qq, mode::write, lo, hi, list},
        {field::ql, mode::write, lo, hi, list},
    };
}

std::vector<access> region_eos_accesses(const index_t* list, index_t lo,
                                        index_t hi) {
    // eval_eos_chunk re-reads p/e/q of the previous step and overwrites
    // them (RMW, covered by the write declarations).
    return {
        {field::delv, mode::read, lo, hi, list},
        {field::qq, mode::read, lo, hi, list},
        {field::ql, mode::read, lo, hi, list},
        {field::vnewc, mode::read, lo, hi, list},
        {field::p, mode::write, lo, hi, list},
        {field::e, mode::write, lo, hi, list},
        {field::q, mode::write, lo, hi, list},
        {field::ss, mode::write, lo, hi, list},
    };
}

std::vector<access> volume_update_accesses(index_t lo, index_t hi) {
    return {
        {field::vnew, mode::read, lo, hi},
        {field::v, mode::write, lo, hi},
    };
}

std::vector<access> constraint_accesses(const index_t* list, index_t lo,
                                        index_t hi, index_t slot) {
    return {
        {field::arealg, mode::read, lo, hi, list},
        {field::ss, mode::read, lo, hi, list},
        {field::vdov, mode::read, lo, hi, list},
        {field::dt_partial, mode::write, slot, slot + 1},
    };
}

// --- the model builder -----------------------------------------------------

namespace model_site {
// Sub-site labels for the model's tasks: the runtime wave_site prefix plus
// the link within the wave, so a hazard report pinpoints the exact body.
inline constexpr const char* force_stress = "force.stress";
inline constexpr const char* force_hourglass = "force.hourglass";
inline constexpr const char* node_gather = "node.gather";
inline constexpr const char* node_velpos = "node.velpos";
inline constexpr const char* elem = "elem";
inline constexpr const char* region_monoq = "region_eos.monoq";
inline constexpr const char* region_eos = "region_eos.eos";
inline constexpr const char* region_volume = "region_eos.volume";
inline constexpr const char* constraints = "constraints";
inline constexpr const char* ckpt_pack_node = "ckpt.pack.node";
inline constexpr const char* ckpt_pack_elem = "ckpt.pack.elem";
}  // namespace model_site

graph_model build_iteration_model(const domain& d, partition_sizes parts) {
    graph_model m;
    const index_t ne = d.numElem();
    const index_t nn = d.numNode();
    const index_t pn = parts.nodal > 0 ? parts.nodal : ne;
    const index_t pe = parts.elems > 0 ? parts.elems : ne;

    auto add = [&m](const char* site, index_t partition, index_t lo,
                    index_t hi, int stage, std::vector<access> accs,
                    std::vector<int> deps = {}) {
        m.tasks.push_back({site, partition, lo, hi, stage, std::move(accs),
                           std::move(deps)});
        return static_cast<int>(m.tasks.size()) - 1;
    };

    // Stage 0 — force wave: stress ∥ hourglass per element chunk of p_nodal
    // (mirrors spawn_force_wave).
    index_t part = 0;
    for (index_t lo = 0; lo < ne; lo += pn, ++part) {
        const index_t hi = std::min<index_t>(lo + pn, ne);
        add(model_site::force_stress, part, lo, hi, 0,
            force_stress_accesses(lo, hi));
        add(model_site::force_hourglass, part, lo, hi, 0,
            force_hourglass_accesses(lo, hi));
    }

    // Stage 1 — node chains: gather→velpos continuation per node chunk
    // (spawn_node_wave).  The velpos link depends on its gather link; that
    // edge is what orders the xdd/ydd/zdd write→read within the stage.
    part = 0;
    for (index_t lo = 0; lo < nn; lo += pn, ++part) {
        const index_t hi = std::min<index_t>(lo + pn, nn);
        const int gather = add(model_site::node_gather, part, lo, hi, 1,
                               node_gather_accesses(lo, hi));
        add(model_site::node_velpos, part, lo, hi, 1,
            node_velpos_accesses(lo, hi), {gather});
    }

    // Stage 2 — fused element wave per p_elems chunk (spawn_elem_wave).
    part = 0;
    for (index_t lo = 0; lo < ne; lo += pe, ++part) {
        const index_t hi = std::min<index_t>(lo + pe, ne);
        add(model_site::elem, part, lo, hi, 2, elem_wave_accesses(lo, hi));
    }

    // Stage 3 — per-(region, chunk) monoq→EOS chains plus the independent
    // volume update (spawn_region_wave).
    part = 0;
    for (index_t r = 0; r < d.numReg(); ++r) {
        const auto& list = d.regElemList(r);
        const auto count = static_cast<index_t>(list.size());
        const index_t* lp = list.data();
        for (index_t lo = 0; lo < count; lo += pe, ++part) {
            const index_t hi = std::min<index_t>(lo + pe, count);
            const int monoq = add(model_site::region_monoq, part, lo, hi, 3,
                                  region_monoq_accesses(lp, lo, hi));
            add(model_site::region_eos, part, lo, hi, 3,
                region_eos_accesses(lp, lo, hi), {monoq});
        }
    }
    part = 0;
    for (index_t lo = 0; lo < ne; lo += pe, ++part) {
        const index_t hi = std::min<index_t>(lo + pe, ne);
        add(model_site::region_volume, part, lo, hi, 3,
            volume_update_accesses(lo, hi));
    }

    // Stage 4 — constraint partials, one slot per (region, chunk)
    // (spawn_constraint_wave).
    index_t slot = 0;
    for (index_t r = 0; r < d.numReg(); ++r) {
        const auto& list = d.regElemList(r);
        const auto count = static_cast<index_t>(list.size());
        const index_t* lp = list.data();
        for (index_t lo = 0; lo < count; lo += pe, ++slot) {
            const index_t hi = std::min<index_t>(lo + pe, count);
            add(model_site::constraints, slot, lo, hi, 4,
                constraint_accesses(lp, lo, hi, slot));
        }
    }

    m.num_stages = 5;
    m.num_slots = static_cast<std::size_t>(slot);
    return m;
}

void add_checkpoint_pack_tasks(graph_model& m, const domain& d) {
    // One read-only pack task per checkpointed field, spanning the stages
    // the runtime allows it to still be in flight (driver_taskgraph.cpp):
    // node packs are joined into barrier 1 — before the node wave (stage 1)
    // writes x/y/z/xd/yd/zd — so they occupy stage 0 only; elem packs are
    // joined into barrier 3½ ahead of the region wave (stage 3), the first
    // writer of e/p/q/ss/v, so they may run through stages 0-2.
    index_t part = 0;
    for (std::size_t s = 0; s < num_checkpoint_fields; ++s, ++part) {
        const field f = checkpoint_field_at(s);
        const bool node_field = field_space(f) == space::node;
        const index_t extent = node_field ? d.numNode() : d.numElem();
        task_decl t;
        t.site = node_field ? model_site::ckpt_pack_node
                            : model_site::ckpt_pack_elem;
        t.partition = part;
        t.lo = 0;
        t.hi = extent;
        t.stage = 0;
        t.stage_last = node_field ? 0 : 2;
        t.accesses = {{f, mode::read, 0, extent}};
        m.tasks.push_back(std::move(t));
    }
}

// --- bridges ---------------------------------------------------------------

std::vector<std::size_t> arena_extents(const domain& d, std::size_t slots) {
    std::vector<std::size_t> extents(num_fields);
    for (std::size_t f = 0; f < num_fields; ++f) {
        extents[f] = space_extent(field_space(static_cast<field>(f)), d,
                                  slots);
    }
    return extents;
}

amt::hazard::access_set expand_to_hazard_set(const std::vector<access>& accs,
                                             const domain& d) {
    amt::hazard::access_set set;
    for (const access& a : accs) {
        const bool write = a.m == mode::write;
        const int f = static_cast<int>(a.f);
        if (a.c == closure::none && a.list == nullptr) {
            // Contiguous interval — one entry, corner sets scaled to
            // corner positions.
            if (field_space(a.f) == space::corner) {
                set.add(f, write, static_cast<std::int64_t>(a.lo) * 8,
                        static_cast<std::int64_t>(a.hi) * 8);
            } else {
                set.add(f, write, a.lo, a.hi);
            }
            continue;
        }
        // expand_access yields concrete indices of the field's own space
        // (corner fields included), so points go in unscaled.
        expand_access(a, d, [&](index_t i) { set.add(f, write, i, i + 1); });
    }
    set.normalize();
    return set;
}

field scan_written_for_nonfinite(const std::vector<access>& accs,
                                 const domain& d) {
    for (const access& a : accs) {
        if (a.m != mode::write) continue;
        const real_t* data = field_data(d, a.f);
        if (data == nullptr) continue;
        bool bad = false;
        expand_access(a, d, [&](index_t i) {
            if (!std::isfinite(data[i])) bad = true;
        });
        if (bad) return a.f;
    }
    return field::count;
}

}  // namespace lulesh::graph
