// Unit tests for amt::unique_function — the move-only callable wrapper the
// scheduler stores task bodies and future continuations in.

#include "amt/unique_function.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace {

using amt::unique_function;

TEST(UniqueFunction, DefaultConstructedIsEmpty) {
    unique_function<void()> f;
    EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, NullptrConstructedIsEmpty) {
    unique_function<void()> f(nullptr);
    EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, InvokesSmallLambda) {
    int x = 0;
    unique_function<void()> f([&x] { x = 42; });
    ASSERT_TRUE(static_cast<bool>(f));
    f();
    EXPECT_EQ(x, 42);
}

TEST(UniqueFunction, ReturnsValue) {
    unique_function<int(int)> f([](int v) { return v * 2; });
    EXPECT_EQ(f(21), 42);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture) {
    auto p = std::make_unique<int>(7);
    unique_function<int()> f([p = std::move(p)] { return *p; });
    EXPECT_EQ(f(), 7);
}

TEST(UniqueFunction, MoveConstructTransfersCallable) {
    int calls = 0;
    unique_function<void()> f([&calls] { ++calls; });
    unique_function<void()> g(std::move(f));
    EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(static_cast<bool>(g));
    g();
    EXPECT_EQ(calls, 1);
}

TEST(UniqueFunction, MoveAssignReplacesCallable) {
    int a = 0;
    int b = 0;
    unique_function<void()> f([&a] { ++a; });
    unique_function<void()> g([&b] { ++b; });
    g = std::move(f);
    g();
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 0);
}

TEST(UniqueFunction, LargeCallableGoesToHeapAndWorks) {
    // Capture well beyond the SBO size to force the heap path.
    std::vector<double> big(64, 1.5);
    unique_function<double()> f([big] {
        double s = 0.0;
        for (double v : big) s += v;
        return s;
    });
    EXPECT_DOUBLE_EQ(f(), 96.0);
}

TEST(UniqueFunction, LargeCallableMoves) {
    std::vector<int> big(100, 3);
    unique_function<int()> f([big] { return big[0] + static_cast<int>(big.size()); });
    unique_function<int()> g(std::move(f));
    EXPECT_EQ(g(), 103);
}

TEST(UniqueFunction, DestructorReleasesCapturedState) {
    auto shared = std::make_shared<int>(5);
    std::weak_ptr<int> weak = shared;
    {
        unique_function<void()> f([shared] { (void)*shared; });
        shared.reset();
        EXPECT_FALSE(weak.expired());
    }
    EXPECT_TRUE(weak.expired());
}

TEST(UniqueFunction, ResetReleasesCapturedState) {
    auto shared = std::make_shared<int>(5);
    std::weak_ptr<int> weak = shared;
    unique_function<void()> f([shared] { (void)*shared; });
    shared.reset();
    f.reset();
    EXPECT_TRUE(weak.expired());
    EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, TakesArgumentsByValueAndReference) {
    unique_function<void(int&, int)> f([](int& out, int in) { out = in + 1; });
    int out = 0;
    f(out, 9);
    EXPECT_EQ(out, 10);
}

TEST(UniqueFunction, SelfContainedAfterSourceScopeEnds) {
    unique_function<std::string()> f;
    {
        std::string payload = "hello amt";
        f = unique_function<std::string()>([payload] { return payload; });
    }
    EXPECT_EQ(f(), "hello amt");
}

TEST(UniqueFunction, SwapExchangesCallables) {
    unique_function<int()> f([] { return 1; });
    unique_function<int()> g([] { return 2; });
    f.swap(g);
    EXPECT_EQ(f(), 2);
    EXPECT_EQ(g(), 1);
}

TEST(UniqueFunction, ManySequentialAssignmentsDoNotLeak) {
    auto shared = std::make_shared<int>(0);
    std::weak_ptr<int> weak = shared;
    unique_function<void()> f;
    for (int i = 0; i < 100; ++i) {
        f = unique_function<void()>([shared, i] { *shared = i; });
    }
    f();
    EXPECT_EQ(*shared, 99);
    shared.reset();
    f.reset();
    EXPECT_TRUE(weak.expired());
}

}  // namespace
