// Crash-consistency torture test for the v3 checkpoint chain: a forked
// child writes a chain (base + two delta appends) with a crash injected at
// a randomized byte offset; the parent then checks the surviving file.  The
// invariant under test is the commit-record protocol's whole promise:
// whatever byte the writer died at, the file either does not exist yet
// (crash before the base rename) or restores bitwise to one of the three
// committed states — never to a torn in-between.

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "lulesh/checkpoint.hpp"
#include "lulesh/checkpoint_chain.hpp"
#include "lulesh/driver.hpp"

namespace {

using lulesh::domain;
using lulesh::options;

options small_opts() {
    options o;
    o.size = 4;  // small: 200 forked trials must stay fast
    o.num_regions = 3;
    return o;
}

std::string serialized(const domain& d) {
    std::ostringstream os;
    lulesh::save_checkpoint(d, os);
    return os.str();
}

std::string pack_full(const domain& d, bool base) {
    lulesh::state_capture cap(d, lulesh::full_coverage(d), base);
    cap.pack_remaining();
    cap.wait_packed();
    return cap.take_record();
}

bool file_exists(const std::string& path) {
    return std::ifstream(path).good();
}

TEST(CheckpointTorture, CrashAtAnyByteLeavesALoadableChain) {
    const std::string path = "/tmp/lulesh_chain_torture.ckpt";

    // The three committed states: base at cycle 4, deltas at 8 and 12.
    domain d(small_opts());
    lulesh::serial_driver drv;
    lulesh::run_simulation(d, drv, 4);
    const std::string base = pack_full(d, /*base=*/true);
    const std::string s0 = serialized(d);
    lulesh::run_simulation(d, drv, 8);
    const std::string delta1 = pack_full(d, /*base=*/false);
    const std::string s1 = serialized(d);
    lulesh::run_simulation(d, drv, 12);
    const std::string delta2 = pack_full(d, /*base=*/false);
    const std::string s2 = serialized(d);

    const long long total =
        static_cast<long long>(base.size() + delta1.size() + delta2.size());

    std::mt19937 rng(20260808);
    std::uniform_int_distribution<long long> pick(0, total + 64);

    int survived_files = 0;
    for (int trial = 0; trial < 200; ++trial) {
        const long long crash_at = pick(rng);
        std::remove(path.c_str());
        std::remove((path + ".tmp").c_str());

        const pid_t pid = fork();
        ASSERT_GE(pid, 0) << "fork failed";
        if (pid == 0) {
            // Child: no gtest, no exceptions escaping — write the chain
            // with the crash seam armed and report via the exit code.
            lulesh::set_chain_crash_after_bytes(crash_at);
            try {
                lulesh::write_chain_file(path, {base});
                lulesh::append_chain_record_file(path, delta1);
                lulesh::append_chain_record_file(path, delta2);
            } catch (...) {
                ::_exit(3);
            }
            ::_exit(0);
        }

        int wstatus = 0;
        ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
        ASSERT_TRUE(WIFEXITED(wstatus)) << "child killed by signal, trial "
                                        << trial;
        const int code = WEXITSTATUS(wstatus);
        ASSERT_TRUE(code == 0 || code == 42)
            << "child exit " << code << ", trial " << trial;
        if (code == 0) {
            // Crash offset past the last byte: the full chain must be there.
            ASSERT_GE(crash_at, total);
        }

        if (!file_exists(path)) {
            // Only legal if the writer died before the base rename.
            ASSERT_EQ(code, 42) << "trial " << trial;
            ASSERT_LT(crash_at, static_cast<long long>(base.size()))
                << "trial " << trial;
            continue;
        }
        ++survived_files;
        domain restored(small_opts());
        ASSERT_NO_THROW(lulesh::load_checkpoint_file(restored, path))
            << "trial " << trial << " crash_at " << crash_at;
        const std::string got = serialized(restored);
        ASSERT_TRUE(got == s0 || got == s1 || got == s2)
            << "trial " << trial << " crash_at " << crash_at
            << " restored to a state that was never committed (cycle "
            << restored.cycle << ")";
    }
    // Sanity on the harness itself: most offsets land after the rename.
    EXPECT_GT(survived_files, 100);

    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
}

}  // namespace

#else

TEST(CheckpointTorture, SkippedOnNonUnixPlatforms) { GTEST_SKIP(); }

#endif
