// lulesh/regions.cpp — element → material-region assignment.
//
// Reproduces the reference's CreateRegionIndexSets: elements are assigned in
// random-length runs to randomly chosen regions, where the probability of a
// region is proportional to (region_index + 1)^balance and consecutive runs
// never pick the same region.  The reference uses libc rand(); we use a
// fixed 64-bit LCG so that region maps are identical across platforms (the
// substitution only changes *which* deterministic map is produced, not its
// statistics).

#include <cmath>

#include "lulesh/domain.hpp"

namespace lulesh {

namespace {

/// Deterministic stand-in for the reference's srand/rand pair.
class lcg {
public:
    explicit lcg(std::uint64_t seed) : state_(seed * 2862933555777941757ULL + 3037000493ULL) {}

    /// Uniform value in [0, bound); bound must be > 0.
    std::uint64_t next(std::uint64_t bound) {
        state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
        // Upper bits have the best statistical quality for an LCG.
        return (state_ >> 33) % bound;
    }

private:
    std::uint64_t state_;
};

}  // namespace

void build_regions(domain& d, const options& opts) {
    const index_t num_reg = opts.num_regions;
    const index_t num_elem = d.num_elem_;
    // The assignment is always generated for the *global* problem and then
    // sliced, so that slab decompositions see exactly the global region map.
    const index_t global_elems =
        d.slab().total_planes * d.elems_per_plane();
    const index_t offset = d.elem_offset();
    d.reg_num_list_.assign(static_cast<std::size_t>(num_elem), 0);
    d.reg_elem_list_.assign(static_cast<std::size_t>(num_reg), {});

    if (num_reg == 1) {
        auto& all = d.reg_elem_list_[0];
        all.resize(static_cast<std::size_t>(num_elem));
        for (index_t i = 0; i < num_elem; ++i) all[static_cast<std::size_t>(i)] = i;
        return;
    }

    lcg rng(opts.region_seed + 1);

    // Region weights: probability of region i proportional to (i+1)^balance.
    std::vector<std::uint64_t> bin_end(static_cast<std::size_t>(num_reg));
    std::uint64_t cost_denominator = 0;
    for (index_t i = 0; i < num_reg; ++i) {
        cost_denominator += static_cast<std::uint64_t>(
            std::pow(static_cast<double>(i + 1), static_cast<double>(opts.balance)));
        bin_end[static_cast<std::size_t>(i)] = cost_denominator;
    }

    std::vector<index_t> global_reg(static_cast<std::size_t>(global_elems), 0);
    index_t next_index = 0;
    index_t last_reg = -1;
    while (next_index < global_elems) {
        // Pick a region (biased by weight, never the same twice in a row).
        index_t region_num = -1;
        do {
            const std::uint64_t region_var = rng.next(cost_denominator);
            index_t i = 0;
            while (region_var >= bin_end[static_cast<std::size_t>(i)]) ++i;
            region_num = i;
        } while (region_num == last_reg);

        // Pick the run length from the reference's long-tailed distribution.
        const std::uint64_t bin_size = rng.next(1000);
        index_t elements;
        if (bin_size < 773) {
            elements = static_cast<index_t>(rng.next(15)) + 1;
        } else if (bin_size < 937) {
            elements = static_cast<index_t>(rng.next(16)) + 16;
        } else if (bin_size < 970) {
            elements = static_cast<index_t>(rng.next(32)) + 32;
        } else if (bin_size < 974) {
            elements = static_cast<index_t>(rng.next(64)) + 64;
        } else if (bin_size < 978) {
            elements = static_cast<index_t>(rng.next(128)) + 128;
        } else if (bin_size < 981) {
            elements = static_cast<index_t>(rng.next(256)) + 256;
        } else {
            elements = static_cast<index_t>(rng.next(1537)) + 512;
        }

        const index_t runto =
            std::min<index_t>(next_index + elements, global_elems);
        for (; next_index < runto; ++next_index) {
            global_reg[static_cast<std::size_t>(next_index)] = region_num;
        }
        last_reg = region_num;
    }

    for (index_t i = 0; i < num_elem; ++i) {
        const index_t r = global_reg[static_cast<std::size_t>(offset + i)];
        d.reg_num_list_[static_cast<std::size_t>(i)] = r;
        d.reg_elem_list_[static_cast<std::size_t>(r)].push_back(i);
    }
}

}  // namespace lulesh
