// Watchdog tests: a stalled wave task is detected within the deadline and
// reported with the wave it belongs to; healthy runs never trip it.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>

#include "amt/amt.hpp"
#include "amt/fault.hpp"
#include "core/driver_taskgraph.hpp"
#include "core/watchdog.hpp"
#include "lulesh/driver.hpp"
#include "lulesh/kernels.hpp"

namespace {

using lulesh::domain;
using lulesh::options;
using lulesh::watchdog;
using std::chrono::milliseconds;

options small_opts() {
    options o;
    o.size = 6;
    o.num_regions = 5;
    return o;
}

struct fault_guard {
    ~fault_guard() {
        amt::fault::disarm();
        amt::fault::reset_stats();
        amt::fault::set_epoch(-1);
    }
};

TEST(Watchdog, HealthyRunNeverFires) {
    amt::runtime rt(2);
    lulesh::taskgraph_driver drv(rt, {256, 256});
    watchdog wd(drv.progress(), milliseconds(5000), [](const auto&) {});

    domain d(small_opts());
    lulesh::run_simulation(d, drv, 5);
    wd.stop();
    EXPECT_FALSE(wd.fired());
}

TEST(Watchdog, DetectsStalledWaveTaskAndNamesTheWave) {
    fault_guard guard;
    // One worker: the injected stall freezes the whole graph, and the
    // reported site is exactly the stuck task's wave.
    amt::runtime rt(1);
    lulesh::taskgraph_driver drv(rt, {512, 512});

    // The callback plays the recovery role: release the stuck "worker" so
    // the iteration can complete and the test terminates cleanly.
    watchdog wd(drv.progress(), milliseconds(150),
                [](const watchdog::report&) { amt::fault::release_stalls(); },
                milliseconds(10));

    amt::fault::plan p;
    p.kind = amt::fault::action::stall;
    p.site = "elem";
    p.max_injections = 1;
    p.stall_timeout = std::chrono::seconds(60);  // watchdog must beat this
    amt::fault::arm(p);

    domain d(small_opts());
    lulesh::kernels::time_increment(d);
    drv.advance(d);  // would hang forever without the watchdog release
    amt::fault::disarm();
    wd.stop();

    ASSERT_TRUE(wd.fired());
    const auto rep = wd.last_report();
    EXPECT_EQ(rep.site, "elem");
    EXPECT_GT(rep.started, rep.finished);
    EXPECT_GE(rep.stalled_for, milliseconds(150));
    EXPECT_EQ(amt::fault::snapshot().injections, 1u);
}

TEST(Watchdog, StopIsIdempotent) {
    auto progress = std::make_shared<lulesh::graph::progress_state>();
    watchdog wd(progress, milliseconds(50), [](const auto&) {});
    wd.stop();
    wd.stop();  // second call and the destructor are both no-ops
    EXPECT_FALSE(wd.fired());
}

}  // namespace
