// Calibration litmuses for the amt::model schedule explorer itself: the
// classic store-buffering and message-passing shapes, plus the meta
// guarantees every other suite in tests/model leans on — that a
// deliberately broken ordering IS caught, that the failure carries a
// non-empty interleaving trace and replay token, and that feeding the
// token back reproduces the same failure deterministically.

#include <gtest/gtest.h>

#include "amt/atomic.hpp"
#include "amt/model.hpp"

namespace {

using amt::model::check;
using amt::model::model_assert;
using amt::model::options;
using amt::model::result;

// ---------------------------------------------------------------------------
// Store buffering (Dekker): with seq_cst both threads cannot read 0.

result run_sb(amt::memory_order store_mo, amt::memory_order load_mo,
              const options& o) {
    return check(o, [=] {
        amt::atomic<int> x{0};
        amt::atomic<int> y{0};
        int r0 = -1;
        int r1 = -1;
        amt::model::thread t([&] {
            y.store(1, store_mo);
            r1 = x.load(load_mo);
        });
        x.store(1, store_mo);
        r0 = y.load(load_mo);
        t.join();
        model_assert(r0 == 1 || r1 == 1, "store buffering: both loads saw 0");
    });
}

TEST(ModelBasic, StoreBufferingSeqCstIsClean) {
    options o;
    o.quiet = true;
    const result r =
        run_sb(amt::memory_order_seq_cst, amt::memory_order_seq_cst, o);
    EXPECT_FALSE(r.failed) << r.reason << "\n" << r.trace;
    EXPECT_TRUE(r.complete);
    EXPECT_GT(r.executions, 1);
}

// The broken-ordering self-test the whole harness is judged by: relaxed
// store buffering MUST fail, with a printable interleaving and a replay
// token that deterministically reproduces the failure.
TEST(ModelBasic, StoreBufferingRelaxedIsCaughtAndReplays) {
    options o;
    o.quiet = true;
    const result r =
        run_sb(amt::memory_order_relaxed, amt::memory_order_relaxed, o);
    ASSERT_TRUE(r.failed) << "relaxed SB must expose both-read-0";
    EXPECT_NE(r.reason.find("store buffering"), std::string::npos);
    EXPECT_FALSE(r.trace.empty());
    ASSERT_EQ(r.replay.rfind("dfs:", 0), 0u) << r.replay;

    options replay_o;
    replay_o.quiet = true;
    replay_o.replay = r.replay.c_str();
    const result again =
        run_sb(amt::memory_order_relaxed, amt::memory_order_relaxed, replay_o);
    ASSERT_TRUE(again.failed) << "replay token must reproduce the failure";
    EXPECT_EQ(again.reason, r.reason);
    EXPECT_EQ(again.replay, r.replay);
    EXPECT_EQ(again.executions, 1);
}

// ---------------------------------------------------------------------------
// Message passing: data word + release/acquire flag.

result run_mp(amt::memory_order store_mo, amt::memory_order load_mo,
              const options& o) {
    return check(o, [=] {
        amt::atomic<int> data{0};
        amt::atomic<int> flag{0};
        amt::model::thread producer([&] {
            data.store(42, amt::memory_order_relaxed);
            flag.store(1, store_mo);
        });
        if (flag.load(load_mo) == 1) {
            model_assert(data.load(amt::memory_order_relaxed) == 42,
                         "message passing: flag seen but data stale");
        }
        producer.join();
    });
}

TEST(ModelBasic, MessagePassingReleaseAcquireIsClean) {
    options o;
    o.quiet = true;
    const result r =
        run_mp(amt::memory_order_release, amt::memory_order_acquire, o);
    EXPECT_FALSE(r.failed) << r.reason << "\n" << r.trace;
    EXPECT_TRUE(r.complete);
}

TEST(ModelBasic, MessagePassingRelaxedIsCaught) {
    options o;
    o.quiet = true;
    const result r =
        run_mp(amt::memory_order_relaxed, amt::memory_order_relaxed, o);
    ASSERT_TRUE(r.failed);
    EXPECT_NE(r.reason.find("message passing"), std::string::npos);
    EXPECT_NE(r.trace.find("stale"), std::string::npos)
        << "trace should mark the stale read:\n"
        << r.trace;
}

// Fences: relaxed accesses bracketed by seq_cst fences restore SB order;
// weakening the fences to acq_rel is caught.
TEST(ModelBasic, SeqCstFencesRestoreStoreBufferingOrder) {
    auto run = [](amt::memory_order fence_mo) {
        options o;
        o.quiet = true;
        return check(o, [=] {
            amt::atomic<int> x{0};
            amt::atomic<int> y{0};
            int r0 = -1;
            int r1 = -1;
            amt::model::thread t([&] {
                y.store(1, amt::memory_order_relaxed);
                amt::atomic_thread_fence(fence_mo);
                r1 = x.load(amt::memory_order_relaxed);
            });
            x.store(1, amt::memory_order_relaxed);
            amt::atomic_thread_fence(fence_mo);
            r0 = y.load(amt::memory_order_relaxed);
            t.join();
            model_assert(r0 == 1 || r1 == 1, "fenced SB: both loads saw 0");
        });
    };
    const result good = run(amt::memory_order_seq_cst);
    EXPECT_FALSE(good.failed) << good.reason << "\n" << good.trace;
    EXPECT_TRUE(good.complete);
    const result bad = run(amt::memory_order_acq_rel);
    EXPECT_TRUE(bad.failed) << "acq_rel fences must not forbid SB";
}

// ---------------------------------------------------------------------------
// PCT random mode: finds the relaxed-SB bug and replays by seed.

TEST(ModelBasic, PctModeFindsAndReplaysBySeed) {
    options o;
    o.quiet = true;
    o.mode = options::mode_t::random;
    o.iterations = 500;
    const result r =
        run_sb(amt::memory_order_relaxed, amt::memory_order_relaxed, o);
    ASSERT_TRUE(r.failed) << "500 PCT iterations should hit relaxed SB";
    ASSERT_EQ(r.replay.rfind("pct:", 0), 0u) << r.replay;

    options replay_o;
    replay_o.quiet = true;
    replay_o.replay = r.replay.c_str();
    const result again =
        run_sb(amt::memory_order_relaxed, amt::memory_order_relaxed, replay_o);
    ASSERT_TRUE(again.failed) << "pct seed must reproduce deterministically";
    EXPECT_EQ(again.reason, r.reason);
}

// ---------------------------------------------------------------------------
// Coherence: two successive reads of one variable never run backwards,
// even fully relaxed (read-read coherence bounds the store-buffer model).
TEST(ModelBasic, RelaxedReadsStayCoherent) {
    options o;
    o.quiet = true;
    const result r = check(o, [] {
        amt::atomic<int> x{0};
        amt::model::thread w([&] {
            x.store(1, amt::memory_order_relaxed);
            x.store(2, amt::memory_order_relaxed);
        });
        const int a = x.load(amt::memory_order_relaxed);
        const int b = x.load(amt::memory_order_relaxed);
        w.join();
        model_assert(b >= a, "coherence: later read saw an earlier store");
    });
    EXPECT_FALSE(r.failed) << r.reason << "\n" << r.trace;
    EXPECT_TRUE(r.complete);
}

// Deadlock reporting: a waiter with no matching notify is reported as a
// deadlock (the model has no spurious wakeups), naming the parked thread.
TEST(ModelBasic, LostNotifyReportsDeadlock) {
    options o;
    o.quiet = true;
    const result r = check(o, [] {
        amt::mutex m;
        amt::condition_variable cv;
        amt::model::thread w([&] {
            std::unique_lock<amt::mutex> lk(m);
            cv.wait(lk);  // nobody notifies
        });
        w.join();
    });
    ASSERT_TRUE(r.failed);
    EXPECT_NE(r.reason.find("deadlock"), std::string::npos) << r.reason;
}

}  // namespace
