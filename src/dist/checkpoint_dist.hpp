// dist/checkpoint_dist.hpp
//
// Per-slab checkpoint chains for the multi-domain cluster.  Each slab owns
// its own v3 chain file — `path + ".slab" + i` — so a future multi-node
// deployment can write every slab's chain from the node that owns it with
// no global serialization point.  The records themselves are the same
// crash-consistent format as the single-domain chains (see
// lulesh/checkpoint_chain.hpp and docs/resilience.md): a torn write in any
// slab file costs only that slab's uncommitted tail, never the set.
//
// The dist layer has no per-slab dirty tracking yet, so delta records are
// conservative full-coverage captures; the chain format and the recovery
// semantics are identical regardless.

#pragma once

#include <string>

#include "dist/cluster.hpp"

namespace lulesh::dist {

/// Writes a fresh chain per slab (one base record each) with the atomic
/// temp+fsync+rename protocol.  Throws checkpoint_error on I/O failure.
void save_cluster_chains(cluster& c, const std::string& path);

/// Appends one committed delta record to every slab's chain file.  The
/// files must already exist (save_cluster_chains first).  A crash
/// mid-append leaves at most one slab with a torn tail, which restore
/// ignores.
void append_cluster_deltas(cluster& c, const std::string& path);

/// Restores every slab to the *same committed cycle* — the consistent-cycle
/// rule.  Per-slab longest-valid-prefix replay alone is not enough for a
/// cluster: a crash mid-append can leave slab A's chain one committed delta
/// ahead of slab B's torn one, and restoring each slab to its own newest
/// record would desynchronize the lockstep clock.  This loader reads every
/// slab's committed records first, picks the newest cycle *every* slab has
/// (the minimum of the per-slab chain heads), and replays each slab exactly
/// to that cycle.  A corrupt delta discovered during replay truncates that
/// slab's chain and lowers the target for everyone.  Throws
/// checkpoint_error — naming the offending slab file — if any slab has no
/// loadable committed base.
void load_cluster_chains(cluster& c, const std::string& path);

/// The chain file of slab `i` under `path`.
std::string slab_chain_path(const std::string& path, index_t i);

}  // namespace lulesh::dist
