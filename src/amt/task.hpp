// amt/task.hpp
//
// The unit of work handled by the scheduler.  A task is a heap-allocated,
// type-erased nullary callable.  The scheduler's queues store raw
// `task_base*` (the Chase-Lev deque needs trivially copyable slots); the
// owning side wraps them in `task_ptr` whenever ownership is unambiguous.

#pragma once

#include <cassert>
#include <memory>
#include <utility>

#include "amt/unique_function.hpp"

namespace amt {

/// Abstract base of all scheduled work items.
///
/// `execute()` is noexcept: tasks created through the public API (async,
/// then, bulk_async) route exceptions into the associated future's shared
/// state before reaching the scheduler, so an exception escaping here would
/// be a library bug and terminating is the correct response.
class task_base {
public:
    task_base() = default;
    task_base(const task_base&) = delete;
    task_base& operator=(const task_base&) = delete;
    virtual ~task_base() = default;

    virtual void execute() noexcept = 0;
};

using task_ptr = std::unique_ptr<task_base>;

namespace detail {

template <class F>
class callable_task final : public task_base {
public:
    explicit callable_task(F&& f) : fn_(std::move(f)) {}
    explicit callable_task(const F& f) : fn_(f) {}

    void execute() noexcept override { fn_(); }

private:
    F fn_;
};

}  // namespace detail

/// Wraps an arbitrary nullary callable into a heap-allocated task.
template <class F>
task_ptr make_task(F&& f) {
    using D = std::decay_t<F>;
    return std::make_unique<detail::callable_task<D>>(std::forward<F>(f));
}

}  // namespace amt
