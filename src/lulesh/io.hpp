// lulesh/io.hpp
//
// Plain-text field output for inspection and plotting: CSV dumps of element
// fields on a z-plane slice or over the whole mesh, and a radial profile of
// the blast (the reference ships a Silo/VisIt dump; CSV keeps this
// reproduction dependency-free while remaining scriptable).

#pragma once

#include <iosfwd>
#include <string>

#include "lulesh/domain.hpp"

namespace lulesh {

/// Writes `x,y,z,e,p,q,v,ss` rows (with header) for every element of the
/// local z-plane `plane` (element centers; plane in [0, local_planes)).
void dump_plane_csv(const domain& d, index_t plane, std::ostream& out);

/// Writes all elements (same columns) — size^3 rows.
void dump_elements_csv(const domain& d, std::ostream& out);

/// Writes `r,e_mean,p_mean,v_mean,count` rows binned by distance of the
/// element center from the origin; `bins` rows.
void dump_radial_profile_csv(const domain& d, int bins, std::ostream& out);

}  // namespace lulesh
